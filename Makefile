# MPICH-GQ reproduction — common tasks.

GO ?= go

.PHONY: all build vet lint lint-json test-analysis test test-short test-chaos bench bench-json bench-guard smoke-gqd results figures examples clean

all: build vet lint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...
	$(GO) test -race ./internal/metrics/... ./internal/sim/...
	$(GO) test -race -short ./internal/netsim/... ./internal/tcpsim/... ./internal/ctrlplane/...

# Custom analyzer suite (internal/analysis, driven by cmd/gqlint):
# determinism, poolownership, spanlifecycle, hotpathalloc, unitsafety,
# shardsafety. Must exit 0 on the whole tree; violations are either
# fixed or carry an inline //lint:ignore justification (stale
# directives are findings too). See docs/static-analysis.md.
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/gqlint ./...

# CI variant: same gate, but the full diagnostic inventory — including
# suppressed findings — is archived as JSON Lines for artifact upload.
GQLINT_JSON ?= gqlint-diagnostics.jsonl
lint-json:
	$(GO) vet ./...
	$(GO) run ./cmd/gqlint -json ./... > $(GQLINT_JSON)
	@echo "gqlint: $$(wc -l < $(GQLINT_JSON)) diagnostic record(s) in $(GQLINT_JSON)"

# The analyzer framework's own tests: loader, suppression/stale logic,
# call graph, summaries, each analyzer's // want fixtures.
test-analysis:
	$(GO) test ./internal/analysis/... ./cmd/gqlint/

test:
	$(GO) test ./... -timeout 1800s

# Skips the slow binary-search and ablation sweeps.
test-short:
	$(GO) test ./... -short -timeout 600s

# Chaos soak: control-plane crash/restart, lossy-channel, and MPI
# rank-failure tests under the race detector, plus the traced-figure
# determinism regressions (-parallel 1 vs 8 byte-identical, crash
# schedules included). Seeds are fixed in the tests, so runs are
# reproducible.
test-chaos:
	$(GO) test -race -count=1 -run 'Chaos|Soak|Crash|Breaker|Gate|TraceDeterministic' \
		./internal/ctrlplane/... ./internal/faults/... ./internal/gara/... ./internal/core/... \
		./internal/mpi/... ./internal/experiments/... \
		-timeout 900s

bench:
	$(GO) test -bench=. -benchmem -benchtime=1x -run xxx -timeout 1800s .

# Micro + macro benchmark trajectory for this PR, committed as JSON so
# future PRs can diff against it. Override BENCH_OUT for the next PR's
# file (bench-guard always picks the newest BENCH_PR<n>.json).
BENCH_OUT ?= BENCH_PR9.json
bench-json:
	{ $(GO) test -bench 'BenchmarkKernel|BenchmarkLinkForward|BenchmarkTCPTransfer' \
		-benchmem -run xxx ./internal/sim/ ./internal/netsim/ ./internal/tcpsim/ ; \
	  $(GO) test -bench 'BenchmarkFigure5|BenchmarkAdmissionStorm' -benchmem -benchtime=1x -run xxx -timeout 1800s . ; } \
		| $(GO) run ./cmd/benchjson > $(BENCH_OUT)
	cat $(BENCH_OUT)

# Fast CI guard: the packet-forward hot path must stay at 0 allocs/op,
# the kernel's pooled event path must stay allocation-free, and the
# guard benchmarks — including the full fluid-mode Figure 5 macro run
# — must not regress against the newest committed BENCH_PR<n>.json
# trajectory.
bench-guard:
	$(GO) test -run 'ZeroAlloc' -count=1 ./internal/sim/ ./internal/netsim/
	{ $(GO) test -bench 'BenchmarkKernelAfter$$|BenchmarkLinkForward' -benchmem -run xxx \
		./internal/sim/ ./internal/netsim/ ; \
	  $(GO) test -bench 'BenchmarkFigure5$$' -benchmem -benchtime=1x -run xxx -timeout 600s . ; } \
		| $(GO) run ./cmd/benchjson -guard

# End-to-end smoke of the gqd observability daemon: short live fig5
# run, every endpoint must answer 200 with a body, SIGTERM must shut
# down cleanly.
smoke-gqd:
	bash scripts/gqd_smoke.sh

# Paper-length regeneration of every table and figure (takes a while).
results:
	$(GO) run ./cmd/garnet -exp all -scale 1 -svgdir docs/figures > RESULTS.txt

# Figure regeneration for docs. The contention-sweep figures (fig5,
# fig6, fig7, figF) run their background traffic in hybrid fluid mode:
# same curves within the validated 2% bound, an order of magnitude
# less kernel work. Drop -fluid to regenerate the packet-level golden.
figures:
	$(GO) run ./cmd/garnet -exp fig1 -svgdir docs/figures >/dev/null
	$(GO) run ./cmd/garnet -exp fig5 -fluid -svgdir docs/figures >/dev/null
	$(GO) run ./cmd/garnet -exp fig6 -fluid -svgdir docs/figures >/dev/null
	$(GO) run ./cmd/garnet -exp fig7 -fluid -svgdir docs/figures >/dev/null
	$(GO) run ./cmd/garnet -exp fig8 -svgdir docs/figures >/dev/null
	$(GO) run ./cmd/garnet -exp fig9 -svgdir docs/figures >/dev/null
	$(GO) run ./cmd/garnet -exp figF -fluid -svgdir docs/figures >/dev/null
	$(GO) run ./cmd/garnet -exp figG -svgdir docs/figures >/dev/null
	$(GO) run ./cmd/garnet -exp figH -svgdir docs/figures >/dev/null
	$(GO) run ./cmd/garnet -exp figI -svgdir docs/figures >/dev/null

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/visualization
	$(GO) run ./examples/cpureserve
	$(GO) run ./examples/collectives
	$(GO) run ./examples/advance
	$(GO) run ./examples/selfhealing

clean:
	$(GO) clean ./...
