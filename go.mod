module mpichgq

go 1.22
