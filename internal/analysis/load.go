package analysis

import (
	"bufio"
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// A Package is one loaded, parsed, and type-checked package, ready to
// be handed to analyzers.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// A Loader parses and type-checks packages of the enclosing module.
// It resolves module-internal import paths itself (by mapping them
// onto the module root) and delegates standard-library imports to the
// compiler's source importer, so it needs neither a module proxy nor
// pre-built export data. Loaded packages are memoized, so shared
// dependencies (internal/sim, internal/units, ...) type-check once.
type Loader struct {
	Fset    *token.FileSet
	modRoot string
	modPath string
	// srcDir is the testdata GOPATH-style source root (<dir>/src) when
	// the loader was created on a testdata directory. Packages under it
	// get bare synthetic import paths ("a", "b/helper") and can import
	// each other by those paths, mirroring upstream analysistest.
	srcDir string

	// IncludeTests makes LoadDir also parse _test.go files (only the
	// in-package ones; external _test packages are skipped).
	IncludeTests bool

	byPath map[string]*Package
	byDir  map[string]*Package
	std    types.ImporterFrom
	// loading guards against import cycles during recursive loads.
	loading map[string]bool
}

// NewLoader creates a loader rooted at the module containing dir (it
// walks upward until it finds go.mod).
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("analysis: no go.mod found above %s", abs)
		}
		root = parent
	}
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			modPath = strings.TrimSpace(rest)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("analysis: no module directive in %s/go.mod", root)
	}
	fset := token.NewFileSet()
	l := &Loader{
		Fset:    fset,
		modRoot: root,
		modPath: modPath,
		byPath:  make(map[string]*Package),
		byDir:   make(map[string]*Package),
		loading: make(map[string]bool),
	}
	l.std = importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if src := filepath.Join(abs, "src"); dirExists(src) {
		l.srcDir = src
	}
	return l, nil
}

func dirExists(path string) bool {
	fi, err := os.Stat(path)
	return err == nil && fi.IsDir()
}

// ModuleRoot returns the directory containing go.mod.
func (l *Loader) ModuleRoot() string { return l.modRoot }

// ModulePath returns the module's import path.
func (l *Loader) ModulePath() string { return l.modPath }

// Import implements types.Importer. Module-internal paths are loaded
// from source under the module root; everything else (the standard
// library) goes through the source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.modPath || strings.HasPrefix(path, l.modPath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.modPath), "/")
		pkg, err := l.LoadDir(filepath.Join(l.modRoot, rel))
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	// Bare fixture imports resolve against the testdata src root, so
	// multi-package fixtures can import each other ("a" importing
	// "a/helper" or "b").
	if l.srcDir != "" {
		if dir := filepath.Join(l.srcDir, filepath.FromSlash(path)); dirExists(dir) {
			pkg, err := l.LoadDir(dir)
			if err != nil {
				return nil, err
			}
			return pkg.Types, nil
		}
	}
	return l.std.ImportFrom(path, l.modRoot, 0)
}

// LoadDir parses and type-checks the package in dir. The import path
// is derived from the directory's position relative to the module
// root; directories outside the normal package tree (testdata
// fixtures) keep a synthetic path so analyzers can still see it.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	if pkg, ok := l.byDir[abs]; ok {
		return pkg, nil
	}
	importPath := l.importPathFor(abs)
	if l.loading[abs] {
		return nil, fmt.Errorf("analysis: import cycle through %s", importPath)
	}
	l.loading[abs] = true
	defer delete(l.loading, abs)

	entries, err := os.ReadDir(abs)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		if !l.IncludeTests && strings.HasSuffix(name, "_test.go") {
			continue
		}
		if buildExcluded(filepath.Join(abs, name)) {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", abs)
	}

	var parsed []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(abs, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		parsed = append(parsed, f)
	}
	// Pick the package clause, preferring the non-external-test name:
	// files in package foo_test type-check against foo's exported API
	// and are out of scope for gqlint, so they are dropped rather than
	// failing the directory on a package-name mismatch.
	pkgName := ""
	for _, f := range parsed {
		if !strings.HasSuffix(f.Name.Name, "_test") {
			pkgName = f.Name.Name
			break
		}
	}
	if pkgName == "" {
		pkgName = parsed[0].Name.Name
	}
	var files []*ast.File
	for _, f := range parsed {
		switch {
		case f.Name.Name == pkgName:
			files = append(files, f)
		case strings.HasSuffix(f.Name.Name, "_test"):
			// external test package: skip
		default:
			return nil, fmt.Errorf("analysis: multiple packages in %s: %s and %s", abs, pkgName, f.Name.Name)
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no files in package %s", abs)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	var typeErr error
	conf := types.Config{
		Importer: l,
		Error: func(err error) {
			if typeErr == nil {
				typeErr = err
			}
		},
	}
	tpkg, err := conf.Check(importPath, l.Fset, files, info)
	if typeErr != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", importPath, typeErr)
	}
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", importPath, err)
	}

	pkg := &Package{
		ImportPath: importPath,
		Dir:        abs,
		Fset:       l.Fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}
	l.byDir[abs] = pkg
	l.byPath[importPath] = pkg
	return pkg, nil
}

func (l *Loader) importPathFor(abs string) string {
	// Packages under a testdata src root keep their src-relative path
	// as a synthetic import path ("a", "b/helper"), never a real module
	// path — fixtures must not look like the packages they mirror.
	if l.srcDir != "" {
		if rel, err := filepath.Rel(l.srcDir, abs); err == nil && rel != "." && !strings.HasPrefix(rel, "..") {
			return filepath.ToSlash(rel)
		}
	}
	rel, err := filepath.Rel(l.modRoot, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		// Outside the module (e.g. a testdata GOPATH layout): use the
		// directory name as a synthetic import path.
		return filepath.Base(abs)
	}
	if rel == "." {
		return l.modPath
	}
	return l.modPath + "/" + filepath.ToSlash(rel)
}

// LoadPatterns expands the package patterns (either directory paths or
// the `./...` wildcard form) into loaded packages. Directories without
// Go files, testdata trees, and dot-directories are skipped.
func (l *Loader) LoadPatterns(patterns []string) ([]*Package, error) {
	var dirs []string
	seen := make(map[string]bool)
	addDir := func(dir string) {
		abs, err := filepath.Abs(dir)
		if err != nil {
			return
		}
		if !seen[abs] {
			seen[abs] = true
			dirs = append(dirs, abs)
		}
	}
	for _, pat := range patterns {
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			root := rest
			if root == "" || root == "." {
				root = l.modRoot
			}
			err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				base := filepath.Base(path)
				if base == "testdata" || base == "vendor" || (strings.HasPrefix(base, ".") && path != root) || strings.HasPrefix(base, "_") {
					return filepath.SkipDir
				}
				if hasGoFiles(path) {
					addDir(path)
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
			continue
		}
		addDir(pat)
	}
	sort.Strings(dirs)
	var pkgs []*Package
	for _, dir := range dirs {
		pkg, err := l.LoadDir(dir)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// buildExcluded reports whether the file's //go:build constraint (in
// the header, before the package clause) excludes it from this build:
// `//go:build ignore` scripts, other-OS files, and so on. Tags are
// evaluated against the running toolchain's GOOS, GOARCH, and go1.N
// release tags; legacy // +build lines without a //go:build line are
// not interpreted. Unreadable files are left in so LoadDir reports the
// real error.
func buildExcluded(path string) bool {
	f, err := os.Open(path)
	if err != nil {
		return false
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "//") {
			if constraint.IsGoBuild(line) {
				expr, err := constraint.Parse(line)
				if err != nil {
					return false
				}
				return !expr.Eval(buildTagSatisfied)
			}
			continue
		}
		// First non-comment, non-blank line: the constraint window (and
		// with it the package clause or a /* block, which no gofmt'd
		// constraint follows) is over.
		return false
	}
	return false
}

func buildTagSatisfied(tag string) bool {
	switch tag {
	case runtime.GOOS, runtime.GOARCH, runtime.Compiler:
		return true
	}
	rest, ok := strings.CutPrefix(tag, "go1.")
	if !ok {
		return false
	}
	minor, err := strconv.Atoi(rest)
	if err != nil {
		return false
	}
	cur, err := strconv.Atoi(strings.SplitN(strings.TrimPrefix(runtime.Version(), "go1."), ".", 2)[0])
	if err != nil {
		// Development toolchains ("devel ..."): release tags unknown.
		return false
	}
	return minor <= cur
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasPrefix(name, ".") && !strings.HasPrefix(name, "_") && !strings.HasSuffix(name, "_test.go") &&
			!buildExcluded(filepath.Join(dir, name)) {
			return true
		}
	}
	return false
}
