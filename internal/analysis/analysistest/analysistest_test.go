package analysistest

import (
	"go/ast"
	"testing"

	"mpichgq/internal/analysis"
)

// boom reports every call to a function named Boom — the minimal
// analyzer that exercises the harness itself.
var boom = &analysis.Analyzer{
	Name: "boom",
	Doc:  "reports calls to functions named Boom",
	Run: func(pass *analysis.Pass) error {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				switch fun := call.Fun.(type) {
				case *ast.Ident:
					if fun.Name == "Boom" {
						pass.Reportf(call.Pos(), "call to Boom")
					}
				case *ast.SelectorExpr:
					if fun.Sel.Name == "Boom" {
						pass.Reportf(call.Pos(), "call to Boom")
					}
				}
				return true
			})
		}
		return nil
	},
}

// TestMultiFileAndMultiPackageFixtures is the harness regression test:
// wants must be collected across all files of a fixture package ("a"
// has two), and a fixture package may import another by its bare
// synthetic path ("b" imports "a") with wants checked per package.
func TestMultiFileAndMultiPackageFixtures(t *testing.T) {
	Run(t, "testdata", boom, "a", "b")
}
