// Package a is the analysistest self-test fixture: the boom analyzer
// reports every call to a function named Boom.
package a

func Boom() {}

func trigger() {
	Boom() // want `call to Boom`
}

func quiet() {}
