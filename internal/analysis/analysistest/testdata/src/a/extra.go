// Second file of package a: wants must be collected across every file
// of a fixture package, not just the first.
package a

func triggerAgain() {
	Boom() // want `call to Boom`
}
