// Package b imports fixture package a by its bare synthetic path: the
// multi-package fixture shape. The analyzer must see through the
// import and wants here must be checked independently of a's.
package b

import "a"

func cross() {
	a.Boom() // want `call to Boom`
}

func quiet() int {
	a.Boom() // want `call to Boom`
	return 0
}
