// Package analysistest runs an analyzer over testdata fixture
// packages and checks its diagnostics against // want annotations,
// mirroring golang.org/x/tools/go/analysis/analysistest.
//
// Fixture layout follows the upstream convention:
//
//	<analyzer>/testdata/src/<pkg>/*.go
//
// Each line that should produce a diagnostic carries a trailing
//
//	// want "regexp"
//
// comment (multiple quoted regexps for multiple diagnostics on one
// line). The test fails on any unmatched diagnostic or unsatisfied
// want. //lint:ignore directives are honoured, so fixtures can also
// prove that the suppression mechanism works.
package analysistest

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"mpichgq/internal/analysis"
)

// Run loads each fixture package under testdata/src and applies a to
// it, comparing diagnostics against // want annotations.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	loader, err := analysis.NewLoader(testdata)
	if err != nil {
		t.Fatalf("creating loader: %v", err)
	}
	for _, pkgName := range pkgs {
		dir := filepath.Join(testdata, "src", pkgName)
		pkg, err := loader.LoadDir(dir)
		if err != nil {
			t.Errorf("loading %s: %v", dir, err)
			continue
		}
		diags, err := analysis.Run(pkg, []*analysis.Analyzer{a})
		if err != nil {
			t.Errorf("running %s on %s: %v", a.Name, pkgName, err)
			continue
		}
		checkWants(t, pkg, diags)
	}
}

type want struct {
	re        *regexp.Regexp
	satisfied bool
}

var wantRE = regexp.MustCompile(`// want (.*)$`)

// Patterns may be double-quoted (with \" and \\ escapes) or
// backquoted (taken literally), as in upstream analysistest.
var quotedRE = regexp.MustCompile("`([^`]*)`" + `|"((?:[^"\\]|\\.)*)"`)

func checkWants(t *testing.T, pkg *analysis.Package, diags []analysis.Diagnostic) {
	t.Helper()
	// (file, line) -> expectations.
	wants := make(map[string][]*want)
	key := func(file string, line int) string { return fmt.Sprintf("%s:%d", file, line) }

	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, q := range quotedRE.FindAllStringSubmatch(m[1], -1) {
					pat := q[1] // backquoted: literal
					if q[1] == "" && q[2] != "" {
						var err error
						if pat, err = unquoteWant(q[2]); err != nil {
							t.Errorf("%s: bad want pattern %q: %v", pos, q[2], err)
							continue
						}
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Errorf("%s: bad want regexp %q: %v", pos, pat, err)
						continue
					}
					k := key(pos.Filename, pos.Line)
					wants[k] = append(wants[k], &want{re: re})
				}
			}
		}
	}

	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		k := key(pos.Filename, pos.Line)
		matched := false
		for _, w := range wants[k] {
			if !w.satisfied && w.re.MatchString(d.Message) {
				w.satisfied = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s: %s", pos, d.Analyzer, d.Message)
		}
	}
	for k, ws := range wants {
		for _, w := range ws {
			if !w.satisfied {
				t.Errorf("%s: no diagnostic matched want %q", k, w.re)
			}
		}
	}
}

// unquoteWant undoes the minimal escaping used inside want strings
// (\" and \\), leaving regexp metacharacters untouched.
func unquoteWant(s string) (string, error) {
	if !strings.ContainsRune(s, '\\') {
		return s, nil
	}
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' {
			if i+1 >= len(s) {
				return "", fmt.Errorf("trailing backslash")
			}
			i++
			switch s[i] {
			case '"', '\\':
				b.WriteByte(s[i])
			default:
				b.WriteByte('\\')
				b.WriteByte(s[i])
			}
			continue
		}
		b.WriteByte(s[i])
	}
	return b.String(), nil
}
