// Package shard is the seeded-violation fixture for the shardsafety
// analyzer. Kernel, Packet, and Network mirror internal/sim and
// internal/netsim structurally (a Kernel type, pooled *Packet values,
// a struct hanging off a *Kernel), which is how the analyzer
// recognises kernel-owned values.
package shard

import "time"

type Kernel struct {
	now time.Duration
}

func (k *Kernel) Now() time.Duration { return k.now }

type Packet struct {
	size int
	next *Packet
}

// Network hangs off a kernel, so it is kernel-owned too.
type Network struct {
	k    *Kernel
	free []*Packet
}

// bridge reaches into two kernels at once: cross-kernel traffic must
// go through sim.ShardExchange instead.
type bridge struct { // want `struct bridge owns 2 kernels; cross-kernel traffic must go through sim.ShardExchange`
	left  *Kernel
	right *Kernel
}

// exchange owns one kernel: fine.
type exchange struct {
	k   *Kernel
	dst int
}

// PostRemote is the sanctioned crossing point: sim.ShardExchange
// implementations may touch foreign state without findings.
var remoteInbox []*Packet

func (x *exchange) PostRemote(dst int, at time.Duration, payload any) {
	if p, ok := payload.(*Packet); ok {
		remoteInbox = append(remoteInbox, p) // exempt: inside PostRemote
	}
}

// --- package-level state ---

var pending []*Packet
var counter int

// init runs before any kernel exists: exempt.
func init() { counter = 1 }

func bumpCounter() {
	counter++ // want `package-level state counter is written outside init`
}

func stashGlobal(p *Packet) {
	pending = append(pending, p) // want `package-level state pending is written outside init` `kernel-owned p \(\*Packet\) is stored into package-level state`
}

var defaultKernel *Kernel

func installDefault(k *Kernel) {
	defaultKernel = k // want `package-level state defaultKernel is written outside init` `kernel-owned k \(\*Kernel\) is stored into package-level state`
}

// --- goroutines ---

func spawnWithPacket(n *Network, p *Packet) {
	go deliverAsync(n, p) // want `kernel-owned n \(\*Network\) escapes into a goroutine` `kernel-owned p \(\*Packet\) escapes into a goroutine`
}

func deliverAsync(n *Network, p *Packet) {
	n.free = append(n.free, p)
}

func spawnClosure(k *Kernel) {
	go func() { // want `kernel-owned k \(\*Kernel\) escapes into a goroutine`
		_ = k.Now()
	}()
}

func spawnMethod(k *Kernel) {
	go k.Now() // want `kernel-owned k \(\*Kernel\) escapes into a goroutine`
}

// Plain values are not kernel-owned: no finding for the int.
func spawnPlain(ch chan int, v int) {
	go func() { ch <- v }()
}

// --- interprocedural escapes through helpers ---

// consume stores its packet into package state two hops down.
func consume(p *Packet) { stashGlobal(p) } // want `kernel-owned p \(\*Packet\) reaches package-level state via stashGlobal`

func helperStoresGlobal(p *Packet) {
	consume(p) // want `kernel-owned p \(\*Packet\) reaches package-level state via consume`
}

func spawnHelper(p *Packet) {
	go func() { _ = p.size }() // want `kernel-owned p \(\*Packet\) escapes into a goroutine`
}

func helperGoCaptures(p *Packet) {
	spawnHelper(p) // want `kernel-owned p \(\*Packet\) escapes into a goroutine via spawnHelper`
}

// inspect only reads: no escape, no finding.
func inspect(p *Packet) int { return p.size }

func helperReadsOnly(p *Packet) {
	_ = inspect(p)
}

// --- correct code ---

// Kernel-owned state hanging off the kernel's own structures is the
// sanctioned shape.
func enqueue(n *Network, p *Packet) {
	n.free = append(n.free, p)
}

func localState(k *Kernel) time.Duration {
	sum := k.Now()
	sum += k.Now()
	return sum
}

func suppressedWrite() {
	//lint:ignore shardsafety fixture proving suppression works for this analyzer
	counter = 7
}
