// Package shardsafety enforces the single-kernel ownership invariant
// that the sharded-PDES refactor (ROADMAP: grid-scale topology)
// depends on: every piece of mutable simulation state belongs to
// exactly one kernel, and values owned by a kernel never leak to
// another execution context behind its back.
//
// Concretely, inside the kernel-driven packages it reports:
//
//   - writes to package-level variables outside init: package state is
//     shared by every kernel in a process, so a kernel callback that
//     mutates it breaks shard isolation (and determinism under any
//     partitioning).
//   - kernel-owned values (a *sim.Kernel, pooled packets and segments,
//     fluid flows, event payloads, or any struct that hangs off a
//     kernel) escaping into goroutines or package-level state — either
//     directly, or through a same-package helper whose interprocedural
//     summary (internal/analysis/summary) says the argument is
//     go-captured or stored globally.
//   - structs that own two kernels: cross-kernel traffic must flow
//     through the sanctioned sim.ShardExchange interface, never by
//     reaching into a second kernel's structures.
//
// Methods named PostRemote are exempt: they implement
// sim.ShardExchange, the one sanctioned crossing point, whose
// implementations necessarily touch another shard's state.
package shardsafety

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"mpichgq/internal/analysis"
	"mpichgq/internal/analysis/summary"
)

const doc = `enforce single-kernel ownership in kernel-driven packages

Reports package-level mutable state written outside init, kernel-owned
values (kernels, pooled packets/segments, fluid flows, event payloads,
kernel-bearing structs) escaping into goroutines or globals — directly
or through helpers — and structs owning two kernels. PostRemote methods
(sim.ShardExchange implementations) are the sanctioned crossing point
and are exempt.`

// Analyzer is the shardsafety pass.
var Analyzer = &analysis.Analyzer{
	Name: "shardsafety",
	Doc:  doc,
	Run:  run,
}

// scopedPackages is the kernel-driven set: packages whose code runs on
// (or schedules onto) a simulation kernel's event loop. Matches the
// determinism analyzer's scope plus the analysis fixtures (bare paths).
var scopedPackages = map[string]bool{
	"mpichgq/internal/sim":       true,
	"mpichgq/internal/netsim":    true,
	"mpichgq/internal/tcpsim":    true,
	"mpichgq/internal/diffserv":  true,
	"mpichgq/internal/gara":      true,
	"mpichgq/internal/ctrlplane": true,
	"mpichgq/internal/mpi":       true,
	"mpichgq/internal/faults":    true,
	"mpichgq/internal/spans":     true,
}

func scoped(importPath string) bool {
	// Bare paths (no slash) are analysistest fixture packages.
	return scopedPackages[importPath] || !strings.Contains(importPath, "/")
}

func run(pass *analysis.Pass) error {
	if !scoped(pass.ImportPath) {
		return nil
	}
	c := &checker{pass: pass, sums: summary.Compute(pass, nil)}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.GenDecl:
				c.genDecl(d)
			case *ast.FuncDecl:
				if d.Body == nil || exempt(d) {
					continue
				}
				c.funcDecl(d)
			}
		}
	}
	return nil
}

// exempt reports whether fn is outside shardsafety's jurisdiction:
// package init functions (they run before any kernel exists) and
// PostRemote methods (sim.ShardExchange implementations, the one
// sanctioned cross-shard crossing point).
func exempt(fn *ast.FuncDecl) bool {
	if fn.Recv == nil {
		return fn.Name.Name == "init"
	}
	return fn.Name.Name == "PostRemote"
}

type checker struct {
	pass *analysis.Pass
	sums *summary.Set
}

// genDecl checks type declarations for structs owning two kernels.
func (c *checker) genDecl(d *ast.GenDecl) {
	if d.Tok != token.TYPE {
		return
	}
	for _, spec := range d.Specs {
		ts, ok := spec.(*ast.TypeSpec)
		if !ok {
			continue
		}
		st, ok := ts.Type.(*ast.StructType)
		if !ok {
			continue
		}
		kernels := 0
		for _, field := range st.Fields.List {
			if !isKernelPtr(c.pass.TypeOf(field.Type)) {
				continue
			}
			n := len(field.Names)
			if n == 0 {
				n = 1 // embedded
			}
			kernels += n
		}
		if kernels > 1 {
			c.pass.Reportf(ts.Pos(),
				"struct %s owns %d kernels; cross-kernel traffic must go through sim.ShardExchange",
				ts.Name.Name, kernels)
		}
	}
}

func (c *checker) funcDecl(fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			c.assign(n)
		case *ast.IncDecStmt:
			if root := c.rootGlobal(n.X); root != nil {
				c.reportGlobalWrite(n.Pos(), root)
			}
		case *ast.GoStmt:
			c.goStmt(n)
			// Still descend: nested calls inside the goroutine's
			// arguments get their own checks.
		case *ast.CallExpr:
			c.call(n)
		}
		return true
	})
}

// assign reports writes to package-level variables and kernel-owned
// values landing in them.
func (c *checker) assign(s *ast.AssignStmt) {
	global := false
	for _, l := range s.Lhs {
		if root := c.rootGlobal(l); root != nil {
			c.reportGlobalWrite(l.Pos(), root)
			global = true
		}
	}
	if !global {
		return
	}
	for _, r := range s.Rhs {
		c.eachKernelOwnedIdent(r, func(id *ast.Ident, t types.Type) {
			c.pass.Reportf(id.Pos(),
				"kernel-owned %s (%s) is stored into package-level state; shard state must hang off its kernel",
				id.Name, typeLabel(t))
		})
	}
}

// goStmt reports kernel-owned values riding into a spawned goroutine —
// as call arguments, as the method receiver, or captured by the
// function literal's body. Findings anchor at the go statement, so one
// //lint:ignore directive covers every capture of a sanctioned spawn.
func (c *checker) goStmt(s *ast.GoStmt) {
	report := func(id *ast.Ident, t types.Type) {
		c.pass.Reportf(s.Pos(),
			"kernel-owned %s (%s) escapes into a goroutine; only its owning kernel may touch it",
			id.Name, typeLabel(t))
	}
	for _, arg := range s.Call.Args {
		c.eachKernelOwnedIdent(arg, report)
	}
	switch fun := ast.Unparen(s.Call.Fun).(type) {
	case *ast.SelectorExpr:
		c.eachKernelOwnedIdent(fun.X, report)
	case *ast.FuncLit:
		c.eachKernelOwnedIdent(fun.Body, report)
	}
}

// call applies the interprocedural step: an argument (or receiver) that
// a same-package helper's summary says is go-captured or stored into
// package-level state escapes the shard exactly as a direct go
// statement or global store would.
func (c *checker) call(call *ast.CallExpr) {
	fs := c.sums.Callee(call)
	if fs == nil || exempt(fs.Decl) {
		return
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		c.reportEscapeFacts(sel.X, fs.Recv, fs.Fn.Name())
	}
	for i, arg := range call.Args {
		facts, ok := fs.ArgFacts(i, len(call.Args), call.Ellipsis.IsValid())
		if !ok {
			continue
		}
		c.reportEscapeFacts(arg, facts, fs.Fn.Name())
	}
}

func (c *checker) reportEscapeFacts(arg ast.Expr, facts summary.Facts, callee string) {
	if facts&(summary.GoCaptured|summary.StoredGlobal) == 0 {
		return
	}
	id, ok := ast.Unparen(arg).(*ast.Ident)
	if !ok {
		return
	}
	t := c.pass.TypeOf(id)
	if !kernelOwned(t) {
		return
	}
	if facts&summary.GoCaptured != 0 {
		c.pass.Reportf(id.Pos(),
			"kernel-owned %s (%s) escapes into a goroutine via %s; only its owning kernel may touch it",
			id.Name, typeLabel(t), callee)
		return
	}
	c.pass.Reportf(id.Pos(),
		"kernel-owned %s (%s) reaches package-level state via %s; shard state must hang off its kernel",
		id.Name, typeLabel(t), callee)
}

// eachKernelOwnedIdent invokes f for every identifier under x that
// denotes a variable of kernel-owned type.
func (c *checker) eachKernelOwnedIdent(x ast.Node, f func(*ast.Ident, types.Type)) {
	seen := map[*types.Var]bool{}
	ast.Inspect(x, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := c.pass.ObjectOf(id).(*types.Var)
		if !ok || v.IsField() || seen[v] {
			return true
		}
		if t := c.pass.TypeOf(id); kernelOwned(t) {
			seen[v] = true
			f(id, t)
		}
		return true
	})
}

// rootGlobal returns the package-level variable a store through x
// mutates, or nil. The blank identifier is not a store.
func (c *checker) rootGlobal(x ast.Expr) *types.Var {
	for {
		switch e := x.(type) {
		case *ast.ParenExpr:
			x = e.X
		case *ast.SelectorExpr:
			x = e.X
		case *ast.IndexExpr:
			x = e.X
		case *ast.SliceExpr:
			x = e.X
		case *ast.StarExpr:
			x = e.X
		case *ast.Ident:
			if e.Name == "_" {
				return nil
			}
			v, _ := c.pass.ObjectOf(e).(*types.Var)
			if v != nil && v.Parent() == c.pass.Pkg.Scope() {
				return v
			}
			return nil
		default:
			return nil
		}
	}
}

func (c *checker) reportGlobalWrite(pos token.Pos, v *types.Var) {
	c.pass.Reportf(pos,
		"package-level state %s is written outside init; shard state must hang off its kernel",
		v.Name())
}

// kernelOwnedNames are the named types a simulation kernel owns
// outright: the kernel itself, its pooled event records, pooled network
// packets and TCP segments, and fluid flows. Matching is by type name
// so the analysistest fixtures (structural mirrors of the real types)
// are recognised the same way the real packages are.
var kernelOwnedNames = map[string]bool{
	"Kernel":    true,
	"event":     true,
	"Packet":    true,
	"packet":    true,
	"segment":   true,
	"FluidFlow": true,
}

// kernelOwned reports whether t is a type the single-kernel invariant
// protects: one of the kernel-owned named types, or a struct that
// hangs off a kernel (declares a *Kernel field, like netsim.Network or
// tcpsim.Stack).
func kernelOwned(t types.Type) bool {
	named := namedOf(t)
	if named == nil {
		return false
	}
	if kernelOwnedNames[named.Obj().Name()] {
		return true
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if isKernelPtr(st.Field(i).Type()) {
			return true
		}
	}
	return false
}

// isKernelPtr reports whether t is *Kernel (any package's — fixtures
// mirror the real type by name).
func isKernelPtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	return ok && named.Obj().Name() == "Kernel"
}

func namedOf(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

func typeLabel(t types.Type) string {
	if named := namedOf(t); named != nil {
		if _, isPtr := t.(*types.Pointer); isPtr {
			return "*" + named.Obj().Name()
		}
		return named.Obj().Name()
	}
	return t.String()
}
