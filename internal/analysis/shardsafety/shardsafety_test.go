package shardsafety

import (
	"testing"

	"mpichgq/internal/analysis/analysistest"
)

func TestShardSafety(t *testing.T) {
	analysistest.Run(t, "testdata", Analyzer, "shard")
}

func TestScope(t *testing.T) {
	for path, want := range map[string]bool{
		"mpichgq/internal/sim":      true,
		"mpichgq/internal/netsim":   true,
		"mpichgq/internal/faults":   true,
		"shard":                     true, // fixture package: bare path
		"mpichgq/internal/metrics":  false,
		"mpichgq/internal/analysis": false,
		"mpichgq/cmd/qsim":          false,
	} {
		if got := scoped(path); got != want {
			t.Errorf("scoped(%q) = %v, want %v", path, got, want)
		}
	}
}
