// Package summary computes interprocedural function summaries for the
// analyzers in internal/analysis.
//
// A summary answers, for each declared function of a package and each
// of its parameters (including the method receiver): does the
// parameter reach a settling call (a pool free, a span End), escape
// the function (stored, returned, aliased, sent, or passed to an
// unknown callee), land in package-level state, or get captured by a
// goroutine? Facts are may-facts — "on some path" — which is the
// polarity both the ownership engine (it must not miss a hand-off)
// and shardsafety (it must not miss an escape) need.
//
// Facts propagate through intra-package calls: if helper g stores its
// parameter into a global, then f calling g(p) stores p into a global
// too. Propagation runs over the callgraph's strongly connected
// components in callee-first order, iterating each component to a
// fixpoint, so mutual recursion converges (facts only ever grow, and
// the lattice is finite). Calls that do not statically resolve to a
// declared function of the same package contribute the conservative
// fact — the argument escapes — which is exactly the documented
// hand-off contract the per-function analyzers have always assumed.
package summary

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"mpichgq/internal/analysis"
	"mpichgq/internal/analysis/callgraph"
)

// Facts is a bitmask of may-facts about one function parameter.
type Facts uint8

const (
	// Escapes: the parameter is stored, returned, aliased, sent on a
	// channel, captured by a closure, or passed to an unknown callee —
	// ownership leaves the caller's sight.
	Escapes Facts = 1 << iota
	// StoredGlobal: the parameter is stored into package-level state
	// (directly, or transitively through an intra-package call).
	// Always accompanied by Escapes.
	StoredGlobal
	// GoCaptured: the parameter reaches a go statement — passed to the
	// spawned call or captured by its function literal. Always
	// accompanied by Escapes.
	GoCaptured
	// Settles: the parameter reaches the recognizer's settling call
	// (FreePacket, End, ...) on some path.
	Settles
)

// A Recognizer identifies the settling call of a resource discipline,
// returning the settled variable. poolownership passes its
// FreePacket/freeSeg matcher, spanlifecycle its End/EndStatus matcher.
type Recognizer struct {
	Name  string
	Match func(pass *analysis.Pass, call *ast.CallExpr) (*types.Var, bool)
}

// A FuncSummary holds the computed facts for one declared function.
type FuncSummary struct {
	Fn   *types.Func
	Decl *ast.FuncDecl

	// Recv holds the receiver's facts (zero for plain functions and
	// unnamed receivers).
	Recv Facts
	// Params holds per-parameter facts in declaration order.
	Params []Facts
	// Variadic marks a ...T final parameter; argument positions at or
	// beyond it cannot be mapped soundly and default to Escapes at the
	// call site.
	Variadic bool
	// WritesGlobals lists the package-level variables this function
	// assigns to (directly; reachability is the call graph's job),
	// sorted by name for determinism.
	WritesGlobals []*types.Var
	// SpawnsGoroutine marks a function containing a go statement.
	SpawnsGoroutine bool

	paramIdx map[*types.Var]int // receiver mapped to -1
	writes   map[*types.Var]bool
}

// A Set is the complete summary table for one package.
type Set struct {
	Pass   *analysis.Pass
	Graph  *callgraph.Graph
	ByFunc map[*types.Func]*FuncSummary
}

// Compute builds summaries for every declared function of the pass's
// package. rec may be nil when no settling discipline is tracked
// (shardsafety only needs escape facts).
func Compute(pass *analysis.Pass, rec *Recognizer) *Set {
	g := callgraph.Build(pass)
	s := &Set{Pass: pass, Graph: g, ByFunc: make(map[*types.Func]*FuncSummary, len(g.Nodes))}
	for _, n := range g.Nodes {
		s.ByFunc[n.Fn] = newFuncSummary(pass, n)
	}
	for _, comp := range g.SCCs() {
		for changed := true; changed; {
			changed = false
			for _, n := range comp {
				w := &walker{pass: pass, set: s, rec: rec, fs: s.ByFunc[n.Fn]}
				w.walkBody()
				changed = changed || w.changed
			}
		}
	}
	for _, fs := range s.ByFunc {
		fs.WritesGlobals = fs.WritesGlobals[:0]
		for v := range fs.writes {
			fs.WritesGlobals = append(fs.WritesGlobals, v)
		}
		sort.Slice(fs.WritesGlobals, func(i, j int) bool {
			return fs.WritesGlobals[i].Name() < fs.WritesGlobals[j].Name()
		})
	}
	return s
}

// Callee resolves call to the summary of the intra-package function it
// statically invokes, or nil.
func (s *Set) Callee(call *ast.CallExpr) *FuncSummary {
	fn := callgraph.CalleeOf(s.Pass, call)
	if fn == nil {
		return nil
	}
	return s.ByFunc[fn]
}

// Of returns the summary for fn, or nil.
func (s *Set) Of(fn *types.Func) *FuncSummary { return s.ByFunc[fn] }

// ArgFacts maps argument position i of a call with nargs arguments
// (hasEllipsis when the call uses f(xs...)) onto the callee's
// parameter facts. ok is false when the position cannot be mapped
// soundly — variadic overflow, an ellipsis spread, or an arity
// mismatch from a multi-value call — in which case the call site must
// fall back to the conservative escape.
func (fs *FuncSummary) ArgFacts(i, nargs int, hasEllipsis bool) (Facts, bool) {
	if hasEllipsis || nargs != len(fs.Params) && !(fs.Variadic && nargs >= len(fs.Params)-1) {
		return 0, false
	}
	if fs.Variadic && i >= len(fs.Params)-1 {
		return 0, false
	}
	if i < 0 || i >= len(fs.Params) {
		return 0, false
	}
	return fs.Params[i], true
}

func newFuncSummary(pass *analysis.Pass, n *callgraph.Node) *FuncSummary {
	fs := &FuncSummary{
		Fn:       n.Fn,
		Decl:     n.Decl,
		paramIdx: make(map[*types.Var]int),
		writes:   make(map[*types.Var]bool),
	}
	sig := n.Fn.Type().(*types.Signature)
	fs.Variadic = sig.Variadic()
	if n.Decl.Recv != nil {
		for _, field := range n.Decl.Recv.List {
			for _, name := range field.Names {
				if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
					fs.paramIdx[v] = -1
				}
			}
		}
	}
	idx := 0
	for _, field := range n.Decl.Type.Params.List {
		if len(field.Names) == 0 {
			idx++
			continue
		}
		for _, name := range field.Names {
			if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
				fs.paramIdx[v] = idx
			}
			idx++
		}
	}
	fs.Params = make([]Facts, idx)
	return fs
}

// walker recomputes one function's facts from its body and the current
// summaries of its callees, recording whether anything grew.
type walker struct {
	pass    *analysis.Pass
	set     *Set
	rec     *Recognizer
	fs      *FuncSummary
	changed bool
}

func (w *walker) walkBody() {
	for _, stmt := range w.fs.Decl.Body.List {
		w.stmt(stmt)
	}
}

func (w *walker) mark(v *types.Var, f Facts) {
	i, ok := w.fs.paramIdx[v]
	if !ok {
		return
	}
	var cur *Facts
	if i == -1 {
		cur = &w.fs.Recv
	} else {
		cur = &w.fs.Params[i]
	}
	if *cur&f != f {
		*cur |= f
		w.changed = true
	}
}

// markIdent applies f when x (after unwrapping parens) is a direct
// reference to a parameter.
func (w *walker) markIdent(x ast.Expr, f Facts) {
	if id, ok := ast.Unparen(x).(*ast.Ident); ok {
		if v, ok := w.pass.ObjectOf(id).(*types.Var); ok {
			w.mark(v, f)
		}
	}
}

// rootVar unwraps selectors, indexes, derefs, and slices to the base
// identifier's object: the variable a store through x ultimately
// mutates.
func (w *walker) rootVar(x ast.Expr) *types.Var {
	for {
		switch e := x.(type) {
		case *ast.ParenExpr:
			x = e.X
		case *ast.SelectorExpr:
			x = e.X
		case *ast.IndexExpr:
			x = e.X
		case *ast.SliceExpr:
			x = e.X
		case *ast.StarExpr:
			x = e.X
		case *ast.Ident:
			v, _ := w.pass.ObjectOf(e).(*types.Var)
			return v
		default:
			return nil
		}
	}
}

func (w *walker) isGlobal(v *types.Var) bool {
	return v != nil && v.Parent() == w.pass.Pkg.Scope()
}

func (w *walker) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		w.assign(s)
	case *ast.IncDecStmt:
		if root := w.rootVar(s.X); w.isGlobal(root) {
			w.noteWrite(root)
		}
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.markIdent(r, Escapes)
			w.expr(r, exprCtx{})
		}
	case *ast.SendStmt:
		w.markIdent(s.Value, Escapes)
		w.expr(s.Chan, exprCtx{})
		w.expr(s.Value, exprCtx{})
	case *ast.GoStmt:
		w.fs.SpawnsGoroutine = true
		w.goCall(s.Call)
	case *ast.DeferStmt:
		w.call(s.Call, exprCtx{})
	case *ast.ExprStmt:
		w.expr(s.X, exprCtx{})
	case *ast.BlockStmt:
		for _, inner := range s.List {
			w.stmt(inner)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		w.expr(s.Cond, exprCtx{})
		w.stmt(s.Body)
		if s.Else != nil {
			w.stmt(s.Else)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		if s.Cond != nil {
			w.expr(s.Cond, exprCtx{})
		}
		if s.Post != nil {
			w.stmt(s.Post)
		}
		w.stmt(s.Body)
	case *ast.RangeStmt:
		w.expr(s.X, exprCtx{})
		w.stmt(s.Body)
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		if s.Tag != nil {
			w.expr(s.Tag, exprCtx{})
		}
		w.stmt(s.Body)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		w.stmt(s.Assign)
		w.stmt(s.Body)
	case *ast.SelectStmt:
		w.stmt(s.Body)
	case *ast.CaseClause:
		for _, x := range s.List {
			w.expr(x, exprCtx{})
		}
		for _, inner := range s.Body {
			w.stmt(inner)
		}
	case *ast.CommClause:
		if s.Comm != nil {
			w.stmt(s.Comm)
		}
		for _, inner := range s.Body {
			w.stmt(inner)
		}
	case *ast.LabeledStmt:
		w.stmt(s.Stmt)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, val := range vs.Values {
						w.markIdent(val, Escapes) // x := p aliases p
						w.expr(val, exprCtx{})
					}
				}
			}
		}
	}
}

func (w *walker) noteWrite(v *types.Var) {
	if !w.fs.writes[v] {
		w.fs.writes[v] = true
		w.changed = true
	}
}

func (w *walker) assign(s *ast.AssignStmt) {
	// Writes: any Lhs whose root is a package-level variable.
	storedInGlobal := false
	for _, l := range s.Lhs {
		if root := w.rootVar(l); w.isGlobal(root) {
			w.noteWrite(root)
			storedInGlobal = true
		}
		w.expr(l, exprCtx{})
	}
	escapeFact := Escapes
	if storedInGlobal {
		escapeFact |= StoredGlobal
	}
	for _, r := range s.Rhs {
		// A parameter on the right of any assignment escapes: either
		// it is aliased into a new variable, or stored through a
		// structure. If the destination roots in a global, it lands in
		// package-level state.
		w.markIdent(r, escapeFact)
		// global = append(global, p, ...) stores the appended elements.
		if call, ok := ast.Unparen(r).(*ast.CallExpr); ok && storedInGlobal {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "append" {
				if _, isBuiltin := w.pass.ObjectOf(id).(*types.Builtin); isBuiltin {
					for _, arg := range call.Args[1:] {
						w.markIdent(arg, escapeFact)
					}
				}
			}
		}
		w.expr(r, exprCtx{storedGlobal: storedInGlobal})
	}
}

// exprCtx carries store context into subexpressions: inside the RHS of
// an assignment to a global, composite-literal elements and address-of
// operands land in package-level state too.
type exprCtx struct {
	storedGlobal bool
	inGoroutine  bool
}

func (c exprCtx) escapeFacts() Facts {
	f := Escapes
	if c.storedGlobal {
		f |= StoredGlobal
	}
	if c.inGoroutine {
		f |= GoCaptured
	}
	return f
}

func (w *walker) expr(x ast.Expr, ctx exprCtx) {
	if x == nil {
		return
	}
	switch x := x.(type) {
	case *ast.CallExpr:
		w.call(x, ctx)
	case *ast.FuncLit:
		// Closure capture: any parameter referenced inside escapes.
		f := Escapes
		if ctx.inGoroutine {
			f |= GoCaptured
		}
		ast.Inspect(x.Body, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if v, ok := w.pass.ObjectOf(id).(*types.Var); ok {
					w.mark(v, f)
				}
			}
			return true
		})
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			w.markIdent(x.X, ctx.escapeFacts())
		}
		w.expr(x.X, ctx)
	case *ast.CompositeLit:
		for _, elt := range x.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				w.markIdent(kv.Value, ctx.escapeFacts())
				w.expr(kv.Value, ctx)
				continue
			}
			w.markIdent(elt, ctx.escapeFacts())
			w.expr(elt, ctx)
		}
	case *ast.ParenExpr:
		w.expr(x.X, ctx)
	case *ast.SelectorExpr:
		w.expr(x.X, exprCtx{}) // field read: not an escape of the base
	case *ast.StarExpr:
		w.expr(x.X, exprCtx{})
	case *ast.IndexExpr:
		w.expr(x.X, exprCtx{})
		w.expr(x.Index, exprCtx{})
	case *ast.SliceExpr:
		w.expr(x.X, exprCtx{})
		w.expr(x.Low, exprCtx{})
		w.expr(x.High, exprCtx{})
		w.expr(x.Max, exprCtx{})
	case *ast.BinaryExpr:
		w.expr(x.X, exprCtx{})
		w.expr(x.Y, exprCtx{})
	case *ast.TypeAssertExpr:
		w.expr(x.X, exprCtx{})
	case *ast.KeyValueExpr:
		w.expr(x.Key, exprCtx{})
		w.expr(x.Value, exprCtx{})
	}
}

// call handles a (non-go) call expression: a settling call marks its
// variable Settles; a resolved intra-package callee propagates its
// parameter facts onto our parameters; an unknown callee makes every
// parameter argument escape.
func (w *walker) call(call *ast.CallExpr, ctx exprCtx) {
	if w.rec != nil {
		if v, ok := w.rec.Match(w.pass, call); ok {
			w.mark(v, Settles)
			// The settling call consumes its operand; other nested
			// arguments are still walked for their own effects.
			for _, arg := range call.Args {
				if id, isIdent := ast.Unparen(arg).(*ast.Ident); isIdent {
					if sv, _ := w.pass.ObjectOf(id).(*types.Var); sv == v {
						continue
					}
				}
				w.expr(arg, exprCtx{})
			}
			return
		}
	}

	fs := w.set.Callee(call)

	// Method receiver: propagate the callee's receiver facts when
	// known; an unknown method only reads its receiver (matching the
	// ownership engine's long-standing contract).
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if fs != nil {
			recvFacts := fs.Recv
			if ctx.inGoroutine {
				recvFacts |= Escapes | GoCaptured
			}
			w.markIdent(sel.X, recvFacts)
		}
		w.expr(sel.X, exprCtx{})
	} else {
		w.expr(call.Fun, ctx)
	}

	for i, arg := range call.Args {
		propagated := false
		if fs != nil {
			if facts, ok := fs.ArgFacts(i, len(call.Args), call.Ellipsis.IsValid()); ok {
				f := facts
				if ctx.inGoroutine {
					f |= GoCaptured
					if facts != 0 {
						f |= Escapes
					}
				}
				w.markIdent(arg, f)
				propagated = true
			}
		}
		if !propagated {
			// Unknown callee or unmappable position: the argument
			// escapes into it.
			w.markIdent(arg, ctx.escapeFacts())
		}
		w.expr(arg, ctx.withoutStore())
	}
}

func (c exprCtx) withoutStore() exprCtx { return exprCtx{inGoroutine: c.inGoroutine} }

// goCall handles `go f(args)` / `go func(){...}()`: everything that
// flows in is captured by the new goroutine.
func (w *walker) goCall(call *ast.CallExpr) {
	ctx := exprCtx{inGoroutine: true}
	if fl, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		w.expr(fl, ctx)
	} else if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		// go x.Method(...): the receiver rides into the goroutine.
		w.markIdent(sel.X, Escapes|GoCaptured)
		w.expr(sel.X, exprCtx{})
	}
	for _, arg := range call.Args {
		w.markIdent(arg, Escapes|GoCaptured)
		w.expr(arg, ctx.withoutStore())
	}
}
