// Package a is the fixture for the summary package. Function names
// state the expected facts; summary_test.go asserts them.
package a

type packet struct {
	size int
	next *packet
}

type pool struct {
	free []*packet
	held *packet
}

func (n *pool) AllocPacket() *packet { return &packet{} }
func (n *pool) FreePacket(p *packet) { n.free = append(n.free, p) }

// --- settling facts ---

// freesDirect settles param #1 by calling the pool free directly.
func freesDirect(n *pool, p *packet) { n.FreePacket(p) }

// freesViaHelper settles param #1 transitively through freesDirect.
func freesViaHelper(n *pool, p *packet) { freesDirect(n, p) }

// freesMutualA / freesMutualB form an SCC that settles on the base
// case; the fixpoint must mark both as settling.
func freesMutualA(n *pool, p *packet, depth int) {
	if depth <= 0 {
		n.FreePacket(p)
		return
	}
	freesMutualB(n, p, depth-1)
}

func freesMutualB(n *pool, p *packet, depth int) { freesMutualA(n, p, depth) }

// readsOnly must carry no facts: it neither settles nor escapes its
// parameter.
func readsOnly(p *packet) int { return p.size }

// readsViaHelper reads through readsOnly: still no facts.
func readsViaHelper(p *packet) int { return readsOnly(p) }

// --- escape facts ---

// storesInReceiver escapes param #0 into the receiver's struct.
func (n *pool) storesInReceiver(p *packet) { n.held = p }

// returnsParam escapes param #0 to the caller.
func returnsParam(p *packet) *packet { return p }

// aliasesParam escapes param #0 by aliasing it.
func aliasesParam(p *packet) {
	q := p
	_ = q
}

// passesToUnknown escapes param #0 into a function value.
func passesToUnknown(p *packet, sink func(*packet)) { sink(p) }

// capturedByClosure escapes param #0 into a closure.
func capturedByClosure(p *packet, run func(func())) {
	run(func() { p.size++ })
}

// --- global facts ---

var (
	held     *packet
	registry = map[string]*packet{}
	pending  []*packet
	counter  int
)

// storesGlobalDirect stores param #0 into package-level state.
func storesGlobalDirect(p *packet) { held = p }

// storesGlobalMap stores param #0 into a package-level map.
func storesGlobalMap(name string, p *packet) { registry[name] = p }

// storesGlobalAppend stores param #0 via append into a global slice.
func storesGlobalAppend(p *packet) { pending = append(pending, p) }

// storesGlobalViaHelper stores param #0 transitively.
func storesGlobalViaHelper(p *packet) { storesGlobalDirect(p) }

// bumpsCounter writes a global without any parameter involvement.
func bumpsCounter() { counter++ }

// --- goroutine facts ---

// spawnsWithArg passes param #0 into a goroutine.
func spawnsWithArg(p *packet) { go consume(p) }

// spawnsWithCapture captures param #0 in a goroutine closure.
func spawnsWithCapture(p *packet) {
	go func() { p.size++ }()
}

// spawnsViaHelper reaches a goroutine transitively.
func spawnsViaHelper(p *packet) { spawnsWithArg(p) }

func consume(p *packet) { held = p }

// variadicSink is variadic: call sites cannot map positions soundly.
func variadicSink(ps ...*packet) {}
