package summary

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"testing"

	"mpichgq/internal/analysis"
)

// fixtureSet computes summaries over the testdata package with a
// FreePacket recognizer mirroring poolownership's.
func fixtureSet(t *testing.T) *Set {
	t.Helper()
	loader, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(loader.ModuleRoot(), "internal", "analysis", "summary", "testdata", "src", "a")
	pkg, err := loader.LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	pass := &analysis.Pass{
		Fset:       pkg.Fset,
		Files:      pkg.Files,
		Pkg:        pkg.Types,
		TypesInfo:  pkg.Info,
		ImportPath: pkg.ImportPath,
	}
	rec := &Recognizer{
		Name: "free",
		Match: func(pass *analysis.Pass, call *ast.CallExpr) (*types.Var, bool) {
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "FreePacket" || len(call.Args) != 1 {
				return nil, false
			}
			id, ok := call.Args[0].(*ast.Ident)
			if !ok {
				return nil, false
			}
			v, _ := pass.ObjectOf(id).(*types.Var)
			return v, v != nil
		},
	}
	return Compute(pass, rec)
}

func summaryByName(t *testing.T, s *Set, name string) *FuncSummary {
	t.Helper()
	for fn, fs := range s.ByFunc {
		if fn.Name() == name {
			return fs
		}
	}
	t.Fatalf("no summary for %q", name)
	return nil
}

func TestSettleFacts(t *testing.T) {
	s := fixtureSet(t)
	cases := []struct {
		fn    string
		param int
		want  Facts
	}{
		{"freesDirect", 1, Settles},
		{"freesViaHelper", 1, Settles}, // through one helper
		{"freesMutualA", 1, Settles},   // SCC fixpoint
		{"freesMutualB", 1, Settles},   // SCC fixpoint
		{"readsOnly", 0, 0},            // pure read
		{"readsViaHelper", 0, 0},       // pure read through a helper
		{"returnsParam", 0, Escapes},
		{"aliasesParam", 0, Escapes},
		{"passesToUnknown", 0, Escapes},
		{"capturedByClosure", 0, Escapes},
		{"storesGlobalDirect", 0, Escapes | StoredGlobal},
		{"storesGlobalMap", 1, Escapes | StoredGlobal},
		{"storesGlobalAppend", 0, Escapes | StoredGlobal},
		{"storesGlobalViaHelper", 0, Escapes | StoredGlobal},
		{"spawnsWithArg", 0, Escapes | GoCaptured},
		{"spawnsWithCapture", 0, Escapes | GoCaptured},
		{"spawnsViaHelper", 0, Escapes | GoCaptured},
	}
	for _, c := range cases {
		fs := summaryByName(t, s, c.fn)
		if got := fs.Params[c.param]; got != c.want {
			t.Errorf("%s param %d: facts = %b, want %b", c.fn, c.param, got, c.want)
		}
	}
}

func TestReceiverFacts(t *testing.T) {
	s := fixtureSet(t)
	// storesInReceiver: p goes into n.held — param escapes, receiver
	// is merely written through (a write through the receiver is not
	// an escape of the receiver).
	fs := summaryByName(t, s, "storesInReceiver")
	if got := fs.Params[0]; got != Escapes {
		t.Errorf("storesInReceiver param 0: facts = %b, want Escapes", got)
	}
	if fs.Recv != 0 {
		t.Errorf("storesInReceiver recv: facts = %b, want none", fs.Recv)
	}
	// FreePacket itself: its parameter escapes into the freelist.
	fp := summaryByName(t, s, "FreePacket")
	if got := fp.Params[0]; got&Escapes == 0 {
		t.Errorf("FreePacket param 0: facts = %b, want Escapes set", got)
	}
}

func TestGlobalWrites(t *testing.T) {
	s := fixtureSet(t)
	cases := map[string][]string{
		"bumpsCounter":       {"counter"},
		"storesGlobalDirect": {"held"},
		"storesGlobalMap":    {"registry"},
		"storesGlobalAppend": {"pending"},
		"readsOnly":          nil,
		// transitive writes are the call graph's job, not the local set
		"storesGlobalViaHelper": nil,
	}
	for fn, want := range cases {
		fs := summaryByName(t, s, fn)
		var got []string
		for _, v := range fs.WritesGlobals {
			got = append(got, v.Name())
		}
		if len(got) != len(want) {
			t.Errorf("%s writes %v, want %v", fn, got, want)
			continue
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("%s writes %v, want %v", fn, got, want)
			}
		}
	}
	if fs := summaryByName(t, s, "spawnsWithArg"); !fs.SpawnsGoroutine {
		t.Error("spawnsWithArg: SpawnsGoroutine not set")
	}
}

func TestArgFactsMapping(t *testing.T) {
	s := fixtureSet(t)
	fd := summaryByName(t, s, "freesDirect")
	if _, ok := fd.ArgFacts(1, 2, false); !ok {
		t.Error("freesDirect arg 1 of 2 should map")
	}
	if _, ok := fd.ArgFacts(1, 1, false); ok {
		t.Error("arity mismatch must not map")
	}
	if _, ok := fd.ArgFacts(1, 2, true); ok {
		t.Error("ellipsis call must not map")
	}
	vs := summaryByName(t, s, "variadicSink")
	if !vs.Variadic {
		t.Error("variadicSink: Variadic not set")
	}
	if _, ok := vs.ArgFacts(0, 3, false); ok {
		t.Error("variadic positions must not map")
	}
}
