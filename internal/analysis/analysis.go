// Package analysis is a small, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis API surface that gqlint needs.
//
// The container this repository builds in has no module proxy access,
// so the real x/tools analysis framework is unavailable; this package
// provides the same shape — an Analyzer with a Run function over a
// type-checked Pass, Diagnostics with positions, and a multichecker
// driver (cmd/gqlint) — using only the standard library's go/ast,
// go/parser, and go/types. Analyzers written against this package are
// deliberately API-compatible in spirit with x/tools analyzers so they
// can be ported if the dependency ever becomes available.
//
// The suite enforces the simulator's invariants (see
// docs/static-analysis.md for the catalogue):
//
//   - determinism:   no wall-clock, ambient randomness, goroutines, or
//     map-iteration-ordered event emission in kernel-driven packages.
//   - poolownership: every Network.AllocPacket / Stack.allocSeg result
//     is freed or handed off exactly once on every path.
//   - hotpathalloc:  no per-event closure allocation on the pooled
//     AtFunc/AfterFunc/AfterPrioFunc scheduling path.
//   - unitsafety:    no dimension-mixing arithmetic or bare numeric
//     literals where internal/units (or time.Duration) types are
//     expected.
//   - spanlifecycle: every Tracer.Begin result reaches End/EndStatus
//     or a handoff on every path.
//   - shardsafety:   single-kernel ownership in kernel-driven packages
//     — the invariant the sharded-PDES refactor depends on.
//
// The ownership analyses are interprocedural within a package: the
// callgraph and summary subpackages compute per-function may-facts
// (settles, escapes, stored-global, go-captured) to a fixpoint over
// strongly connected components, and analyzers refine their call-site
// treatment with them.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// An Analyzer describes one static check. It mirrors the x/tools
// analysis.Analyzer struct: Name appears in diagnostics and in
// //lint:ignore directives, Doc is shown by `gqlint -help`, and Run is
// invoked once per type-checked package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// A Pass provides one analyzer with one type-checked package and a
// sink for diagnostics. Exactly like the x/tools Pass, all syntax and
// type information refer to the shared FileSet.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// ImportPath is the path the package was loaded under. For
	// testdata fixture packages this is the bare directory name.
	ImportPath string

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the static type of e, or nil if unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.TypesInfo.TypeOf(e) }

// ObjectOf returns the object denoted by ident, or nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if o := p.TypesInfo.Defs[id]; o != nil {
		return o
	}
	return p.TypesInfo.Uses[id]
}

// A Diagnostic is one finding, positioned in the shared FileSet.
// Suppressed marks findings silenced by a //lint:ignore directive;
// Run drops them, RunAll keeps them marked so drivers can audit the
// suppression inventory (gqlint -json emits them).
type Diagnostic struct {
	Pos        token.Pos
	Analyzer   string
	Message    string
	Suppressed bool
}

// Run applies each analyzer to pkg and returns the diagnostics that
// survive //lint:ignore suppression, sorted by position.
func Run(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	diags, err := RunAll(pkg, analyzers)
	if err != nil {
		return nil, err
	}
	kept := diags[:0]
	for _, d := range diags {
		if !d.Suppressed {
			kept = append(kept, d)
		}
	}
	return kept, nil
}

// RunAll applies each analyzer to pkg and returns every diagnostic,
// sorted by position, with suppressed findings marked rather than
// dropped.
func RunAll(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:   a,
			Fset:       pkg.Fset,
			Files:      pkg.Files,
			Pkg:        pkg.Types,
			TypesInfo:  pkg.Info,
			ImportPath: pkg.ImportPath,
			diags:      &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.ImportPath, err)
		}
	}
	MarkSuppressed(pkg, diags)
	sort.Slice(diags, func(i, j int) bool {
		if diags[i].Pos != diags[j].Pos {
			return diags[i].Pos < diags[j].Pos
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}

// DirectlyImports reports whether the package under analysis imports
// path (directly, not transitively).
func (p *Pass) DirectlyImports(path string) bool {
	for _, imp := range p.Pkg.Imports() {
		if imp.Path() == path {
			return true
		}
	}
	return false
}
