package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule lays out a throwaway module and returns its root.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	files["go.mod"] = "module example.test/tmp\n\ngo 1.22\n"
	for name, content := range files {
		path := filepath.Join(root, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func TestLoadDirUnparseableFile(t *testing.T) {
	root := writeModule(t, map[string]string{
		"p/good.go":   "package p\n\nfunc ok() {}\n",
		"p/broken.go": "package p\n\nfunc oops( {\n",
	})
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	_, err = l.LoadDir(filepath.Join(root, "p"))
	if err == nil {
		t.Fatal("LoadDir succeeded on a package with a syntax error")
	}
	if !strings.Contains(err.Error(), "broken.go") {
		t.Errorf("error does not name the broken file: %v", err)
	}
}

func TestLoadDirSkipsBuildExcludedFiles(t *testing.T) {
	root := writeModule(t, map[string]string{
		"p/p.go": "package p\n\nfunc ok() {}\n",
		// A generator script: different package name, would fail the
		// multiple-packages check if not excluded.
		"p/gen.go": "//go:build ignore\n\npackage main\n\nfunc main() {}\n",
		// Wrong OS: references an API that does not exist anywhere.
		"p/other_os.go": "//go:build plan9 && !plan9dummy\n\npackage p\n\nfunc osSpecific() { missingFunc() }\n",
	})
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := l.LoadDir(filepath.Join(root, "p"))
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	if len(pkg.Files) != 1 {
		t.Errorf("loaded %d files, want 1 (constrained files excluded)", len(pkg.Files))
	}
}

func TestLoadDirKeepsSatisfiedConstraints(t *testing.T) {
	root := writeModule(t, map[string]string{
		"p/p.go": "package p\n\nfunc ok() {}\n",
		// Satisfied on any toolchain this repo supports.
		"p/new.go": "//go:build go1.21\n\npackage p\n\nfunc newAPI() {}\n",
	})
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := l.LoadDir(filepath.Join(root, "p"))
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	if len(pkg.Files) != 2 {
		t.Errorf("loaded %d files, want 2 (go1.21 constraint is satisfied)", len(pkg.Files))
	}
}

func TestLoadPatternsSkipsVendor(t *testing.T) {
	root := writeModule(t, map[string]string{
		"p/p.go":                        "package p\n\nfunc ok() {}\n",
		"vendor/example.com/dep/dep.go": "package dep\n\nfunc Dep() {}\n",
	})
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.LoadPatterns([]string{root + "/..."})
	if err != nil {
		t.Fatalf("LoadPatterns: %v", err)
	}
	for _, pkg := range pkgs {
		if strings.Contains(pkg.Dir, "vendor") {
			t.Errorf("vendored package loaded: %s", pkg.Dir)
		}
	}
	if len(pkgs) != 1 {
		t.Errorf("loaded %d packages, want 1", len(pkgs))
	}
}

func TestLoadPatternsSkipsIgnoreOnlyDirs(t *testing.T) {
	root := writeModule(t, map[string]string{
		"p/p.go":       "package p\n\nfunc ok() {}\n",
		"tools/gen.go": "//go:build ignore\n\npackage main\n\nfunc main() {}\n",
	})
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.LoadPatterns([]string{root + "/..."})
	if err != nil {
		t.Fatalf("LoadPatterns: %v", err)
	}
	if len(pkgs) != 1 {
		t.Errorf("loaded %d packages, want 1 (ignore-only dir skipped)", len(pkgs))
	}
}

func TestLoadDirEmptyDir(t *testing.T) {
	root := writeModule(t, map[string]string{
		"p/p.go": "package p\n",
	})
	if err := os.MkdirAll(filepath.Join(root, "empty"), 0o755); err != nil {
		t.Fatal(err)
	}
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.LoadDir(filepath.Join(root, "empty")); err == nil {
		t.Error("LoadDir succeeded on a directory with no Go files")
	}
}

func TestLoaderFixtureSrcImports(t *testing.T) {
	// A testdata GOPATH layout: package "b" imports bare path "a", the
	// multi-package fixture shape analysistest relies on.
	root := writeModule(t, map[string]string{
		"testdata/src/a/a.go": "package a\n\nfunc Shared() int { return 1 }\n",
		"testdata/src/b/b.go": "package b\n\nimport \"a\"\n\nfunc uses() int { return a.Shared() }\n",
	})
	l, err := NewLoader(filepath.Join(root, "testdata"))
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := l.LoadDir(filepath.Join(root, "testdata", "src", "b"))
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	if pkg.ImportPath != "b" {
		t.Errorf("import path = %q, want %q", pkg.ImportPath, "b")
	}
	var imports []string
	for _, imp := range pkg.Types.Imports() {
		imports = append(imports, imp.Path())
	}
	if len(imports) != 1 || imports[0] != "a" {
		t.Errorf("imports = %v, want [a]", imports)
	}
}
