// Package ownership is a flow-sensitive may-analysis engine for
// exactly-once resource disciplines: a tracked allocation must, on
// every control-flow path, reach exactly one settling call or a
// consuming handoff (passed to a call, stored into a structure,
// returned, or captured by a closure).
//
// The engine walks function bodies over the AST (the x/tools SSA
// package is unavailable in this build environment), tracking each
// local variable bound to an allocation through branches, loops, and
// early returns, joining states at merges. Aliasing (y := p, &p) and
// closure capture are treated as handoffs — the analysis gives up
// rather than guess, so it reports no false positives from aliasing,
// at the cost of missing leaks through aliases.
//
// When Rules.Summaries is set, calls to functions declared in the same
// package are interpreted through their interprocedural summaries
// (internal/analysis/summary) instead of the blanket hand-off
// contract: a helper that settles its parameter (frees the packet,
// ends the span) settles the tracked variable at the call site — so a
// later duplicate settle is a reported double free — a helper that
// stores or otherwise escapes it is a hand-off as before, and a helper
// that merely reads it leaves ownership with the caller, so dropping
// the resource after such a call is now a reported leak. Calls that do
// not resolve to a declared same-package function keep the
// conservative hand-off behaviour.
//
// What counts as an allocation and what settles it are supplied by
// the caller through Rules; poolownership (packet/segment freelists)
// and spanlifecycle (causal span Begin/End) are both thin
// configurations of this engine.
package ownership

import (
	"go/ast"
	"go/token"
	"go/types"

	"mpichgq/internal/analysis"
	"mpichgq/internal/analysis/summary"
)

// Rules configures the engine for one resource discipline.
type Rules struct {
	// Alloc reports whether expr is a tracked allocation; what labels
	// the allocation in diagnostics (e.g. "AllocPacket", "Begin").
	Alloc func(pass *analysis.Pass, expr ast.Expr) (what string, ok bool)
	// Settle reports whether call settles a tracked variable,
	// returning the variable and the settling call's name.
	Settle func(pass *analysis.Pass, call *ast.CallExpr) (v *types.Var, name string, ok bool)
	// SettleName names the settling operation(s) in leak diagnostics
	// for a given allocation label (e.g. "FreePacket", "End or
	// EndStatus").
	SettleName func(what string) string
	// ReportDouble reports a second settle of the same allocation,
	// annotated with DoubleNote. Leave false when settling is
	// idempotent by design.
	ReportDouble bool
	DoubleNote   string
	// ReportDiscard reports an allocation evaluated and discarded as a
	// bare statement (never bound, never settled).
	ReportDiscard bool
	// Summaries, when set, refines calls to same-package functions
	// through their interprocedural summaries: settle-through-helper
	// settles, escape-through-helper hands off, and a read-only callee
	// leaves ownership with the caller. The summary set must be
	// computed for the same pass with a recognizer matching Settle.
	Summaries *summary.Set
}

// Run applies the discipline described by r to every function in the
// pass.
func Run(pass *analysis.Pass, r Rules) error {
	for _, f := range pass.Files {
		if analysis.IsGeneratedFile(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			fd, ok := n.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				return true
			}
			a := &interp{pass: pass, rules: r}
			out := a.execBlock(fd.Body, make(env))
			a.leakCheck(out, fd.Body.Rbrace)
			return true
		})
	}
	return nil
}

// Ownership state bits. Escape is modelled by dropping the variable
// from the environment entirely.
const (
	owned    = 1 << iota // allocation may still be owned here
	released             // allocation may already have been settled
)

// track is the abstract state of one allocation.
type track struct {
	mask     int
	allocPos token.Pos
	what     string
	reported bool // one leak report per allocation is enough
}

type env map[*types.Var]*track

func (e env) clone() env {
	out := make(env, len(e))
	for v, t := range e {
		cp := *t
		out[v] = &cp
	}
	return out
}

// join merges two may-states. A variable missing from either side has
// escaped on that path; keeping it tracked would risk false reports,
// so it is dropped. reported is sticky across both branches.
func join(a, b env) env {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	out := make(env)
	for v, ta := range a {
		if tb, ok := b[v]; ok {
			out[v] = &track{
				mask:     ta.mask | tb.mask,
				allocPos: ta.allocPos,
				what:     ta.what,
				reported: ta.reported || tb.reported,
			}
		}
	}
	return out
}

// interp walks one function body, maintaining the ownership
// environment along each path.
type interp struct {
	pass  *analysis.Pass
	rules Rules
	// loops tracks, for each enclosing loop, which variables were
	// already live at loop entry and how many switch statements have
	// opened since (a bare break inside those targets the switch, not
	// the loop).
	loops []*loopFrame
}

type loopFrame struct {
	atEntry     map[*types.Var]bool
	switchDepth int
}

func (a *interp) leakCheck(e env, at token.Pos) {
	for _, t := range e {
		if t.mask&owned != 0 && !t.reported {
			t.reported = true
			pos := a.pass.Fset.Position(at)
			a.pass.Reportf(t.allocPos, "%s result may leak: this path (line %d) reaches neither %s nor a consuming handoff", t.what, pos.Line, a.rules.SettleName(t.what))
		}
	}
}

// execBlock runs the statements of b over e. Variables first tracked
// inside b are leak-checked when b ends normally, mirroring Go's
// lexical scoping. Returns nil when every path through b terminates.
func (a *interp) execBlock(b *ast.BlockStmt, e env) env {
	before := make(map[*types.Var]bool, len(e))
	for v := range e {
		before[v] = true
	}
	cur := e
	for _, s := range b.List {
		cur = a.exec(s, cur)
		if cur == nil {
			return nil
		}
	}
	// Scope exit: anything allocated in this block and still owned can
	// never be settled later.
	scoped := make(env)
	for v, t := range cur {
		if !before[v] {
			scoped[v] = t
			delete(cur, v)
		}
	}
	a.leakCheck(scoped, b.Rbrace)
	return cur
}

// exec interprets one statement, returning the outgoing environment
// or nil if the statement terminates the path.
func (a *interp) exec(s ast.Stmt, e env) env {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return a.execBlock(s, e)

	case *ast.ExprStmt:
		if a.rules.ReportDiscard {
			if what, ok := a.rules.Alloc(a.pass, s.X); ok {
				a.pass.Reportf(s.X.Pos(), "%s result is discarded without %s", what, a.rules.SettleName(what))
			}
		}
		if a.isTerminalCall(s.X) {
			a.scanExpr(s.X, e)
			return nil
		}
		a.scanExpr(s.X, e)
		return e

	case *ast.AssignStmt:
		return a.execAssign(s, e)

	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, val := range vs.Values {
						a.scanExpr(val, e)
					}
				}
			}
		}
		return e

	case *ast.IfStmt:
		if s.Init != nil {
			e = a.exec(s.Init, e)
			if e == nil {
				return nil
			}
		}
		a.scanExpr(s.Cond, e)
		thenEnv := a.execBlock(s.Body, e.clone())
		var elseEnv env
		if s.Else != nil {
			elseEnv = a.exec(s.Else, e.clone())
		} else {
			elseEnv = e
		}
		return join(thenEnv, elseEnv)

	case *ast.ForStmt:
		if s.Init != nil {
			e = a.exec(s.Init, e)
			if e == nil {
				return nil
			}
		}
		if s.Cond != nil {
			a.scanExpr(s.Cond, e)
		}
		// One symbolic iteration joined with zero iterations.
		a.pushLoop(e)
		body := a.execBlock(s.Body, e.clone())
		a.popLoop()
		if body != nil && s.Post != nil {
			body = a.exec(s.Post, body)
		}
		if s.Cond == nil {
			// A condition-less for loop never falls through: it exits
			// only via break or return, both checked on their own
			// paths. Treating the code below as unreachable
			// under-approximates — no false leaks from a
			// zero-iteration path that cannot be taken.
			return nil
		}
		return join(e, body)

	case *ast.RangeStmt:
		a.scanExpr(s.X, e)
		a.pushLoop(e)
		body := a.execBlock(s.Body, e.clone())
		a.popLoop()
		return join(e, body)

	case *ast.ReturnStmt:
		// Returning the pointer is a handoff to the caller.
		for _, r := range s.Results {
			a.escapeIfTracked(r, e)
			a.scanExpr(r, e)
		}
		a.leakCheck(e, s.Pos())
		return nil

	case *ast.SwitchStmt:
		if s.Init != nil {
			e = a.exec(s.Init, e)
			if e == nil {
				return nil
			}
		}
		if s.Tag != nil {
			a.scanExpr(s.Tag, e)
		}
		return a.execCases(s.Body, e, hasDefault(s.Body))

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			e = a.exec(s.Init, e)
			if e == nil {
				return nil
			}
		}
		return a.execCases(s.Body, e, hasDefault(s.Body))

	case *ast.SelectStmt:
		return a.execCases(s.Body, e, true)

	case *ast.DeferStmt:
		a.scanExpr(s.Call, e)
		return e

	case *ast.GoStmt:
		a.scanExpr(s.Call, e)
		return e

	case *ast.SendStmt:
		a.escapeIfTracked(s.Value, e)
		a.scanExpr(s.Chan, e)
		a.scanExpr(s.Value, e)
		return e

	case *ast.LabeledStmt:
		return a.exec(s.Stmt, e)

	case *ast.BranchStmt:
		// continue (and break, when it targets the loop rather than an
		// intervening switch) ends the iteration: anything allocated
		// since loop entry dies in scope and must be settled by now.
		if len(a.loops) > 0 {
			frame := a.loops[len(a.loops)-1]
			targetsLoop := s.Tok == token.CONTINUE ||
				(s.Tok == token.BREAK && frame.switchDepth == 0)
			if targetsLoop && s.Label == nil {
				iter := make(env)
				for v, t := range e {
					if !frame.atEntry[v] {
						iter[v] = t
					}
				}
				a.leakCheck(iter, s.Pos())
			}
		}
		// In all cases the straight-line path ends here; treating
		// goto/fallthrough as termination under-approximates (no false
		// leaks).
		return nil

	case *ast.IncDecStmt:
		a.scanExpr(s.X, e)
		return e

	default:
		return e
	}
}

func (a *interp) pushLoop(e env) {
	entry := make(map[*types.Var]bool, len(e))
	for v := range e {
		entry[v] = true
	}
	a.loops = append(a.loops, &loopFrame{atEntry: entry})
}

func (a *interp) popLoop() { a.loops = a.loops[:len(a.loops)-1] }

// execCases joins all case-clause bodies of a switch/select, plus the
// fallthrough-free "no case taken" path unless a default exists.
func (a *interp) execCases(body *ast.BlockStmt, e env, exhaustive bool) env {
	if len(a.loops) > 0 {
		frame := a.loops[len(a.loops)-1]
		frame.switchDepth++
		defer func() { frame.switchDepth-- }()
	}
	var out env
	if !exhaustive {
		out = e
	}
	for _, c := range body.List {
		var stmts []ast.Stmt
		switch c := c.(type) {
		case *ast.CaseClause:
			for _, x := range c.List {
				a.scanExpr(x, e)
			}
			stmts = c.Body
		case *ast.CommClause:
			branch := e.clone()
			if c.Comm != nil {
				branch = a.exec(c.Comm, branch)
			}
			if branch != nil {
				branch = a.execStmts(c.Body, branch)
			}
			out = join(out, branch)
			continue
		}
		out = join(out, a.execStmts(stmts, e.clone()))
	}
	return out
}

func (a *interp) execStmts(stmts []ast.Stmt, e env) env {
	for _, s := range stmts {
		e = a.exec(s, e)
		if e == nil {
			return nil
		}
	}
	return e
}

func (a *interp) execAssign(s *ast.AssignStmt, e env) env {
	// RHS first: settles, handoffs, and nested allocations.
	for _, r := range s.Rhs {
		a.scanExpr(r, e)
	}
	for i, l := range s.Lhs {
		var rhs ast.Expr
		if len(s.Rhs) == len(s.Lhs) {
			rhs = s.Rhs[i]
		}
		lid, lok := l.(*ast.Ident)
		if !lok {
			// p.field = x / m[k] = x: storing a tracked pointer into a
			// structure is a handoff.
			if rhs != nil {
				a.escapeIfTracked(rhs, e)
			}
			a.scanExpr(l, e)
			continue
		}
		if rhs != nil {
			// y := p aliases the allocation; give up on it.
			a.escapeIfTracked(rhs, e)
		}
		lv, _ := a.pass.ObjectOf(lid).(*types.Var)
		if lv != nil {
			if t, ok := e[lv]; ok && t.mask&owned != 0 && !t.reported {
				// Overwriting the only reference while still owning it.
				t.reported = true
				a.pass.Reportf(t.allocPos, "%s result may leak: %s is reassigned on line %d while still owning the allocation", t.what, lid.Name, a.pass.Fset.Position(s.Pos()).Line)
			}
			delete(e, lv)
			if rhs != nil {
				if what, ok := a.rules.Alloc(a.pass, rhs); ok {
					e[lv] = &track{mask: owned, allocPos: rhs.Pos(), what: what}
				}
			}
		}
	}
	return e
}

// applySummary interprets a call through the callee's interprocedural
// summary, when one is available. Returns false when the call must
// fall back to the conservative hand-off treatment.
func (a *interp) applySummary(call *ast.CallExpr, e env) bool {
	if a.rules.Summaries == nil {
		return false
	}
	fs := a.rules.Summaries.Callee(call)
	if fs == nil {
		return false
	}

	// Method receiver: a callee that settles its receiver on every
	// summarised path settles the tracked variable; anything else
	// keeps the long-standing receiver-is-only-read treatment (fluent
	// setters return their receiver, which must not count as an
	// escape).
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if v := trackedIdent(a.pass, sel.X, e); v != nil &&
			fs.Recv&summary.Settles != 0 && fs.Recv&summary.Escapes == 0 {
			a.settleTracked(call, v, fs.Fn.Name(), e)
		} else {
			a.scanExpr(sel.X, e)
		}
	} else {
		a.scanExpr(call.Fun, e)
	}

	for i, arg := range call.Args {
		v := trackedIdent(a.pass, arg, e)
		if v == nil {
			a.scanExpr(arg, e)
			continue
		}
		facts, mapped := fs.ArgFacts(i, len(call.Args), call.Ellipsis.IsValid())
		switch {
		case !mapped || facts&summary.Escapes != 0:
			// Unmappable position or the callee escapes it: hand-off,
			// exactly as before.
			delete(e, v)
		case facts&summary.Settles != 0:
			// The callee settles it (frees the packet, ends the span).
			a.settleTracked(call, v, fs.Fn.Name(), e)
		default:
			// Read-only callee: ownership stays with the caller, so a
			// later drop is still a leak.
		}
	}
	return true
}

// settleTracked marks v settled at call, reporting a double settle
// when the discipline forbids one.
func (a *interp) settleTracked(call *ast.CallExpr, v *types.Var, callee string, e env) {
	t, ok := e[v]
	if !ok {
		return
	}
	if t.mask&released != 0 && a.rules.ReportDouble {
		a.pass.Reportf(call.Pos(), "%s settles this %s result again (%s)", callee, t.what, a.rules.DoubleNote)
	}
	t.mask = released
}

// trackedIdent returns the tracked variable x directly refers to, or
// nil.
func trackedIdent(pass *analysis.Pass, x ast.Expr, e env) *types.Var {
	id, ok := ast.Unparen(x).(*ast.Ident)
	if !ok {
		return nil
	}
	v, _ := pass.ObjectOf(id).(*types.Var)
	if v == nil {
		return nil
	}
	if _, tracked := e[v]; !tracked {
		return nil
	}
	return v
}

// escapeIfTracked drops x from the environment when it is a tracked
// variable: ownership has been handed off and the analysis stops
// second-guessing it.
func (a *interp) escapeIfTracked(x ast.Expr, e env) {
	if id, ok := x.(*ast.Ident); ok {
		if v, ok := a.pass.ObjectOf(id).(*types.Var); ok {
			delete(e, v)
		}
	}
}

// scanExpr processes settles, handoffs, and escapes inside one
// expression tree.
func (a *interp) scanExpr(x ast.Expr, e env) {
	if x == nil {
		return
	}
	switch x := x.(type) {
	case *ast.CallExpr:
		if v, name, ok := a.rules.Settle(a.pass, x); ok {
			if t, tracked := e[v]; tracked {
				if t.mask&released != 0 && a.rules.ReportDouble {
					a.pass.Reportf(x.Pos(), "%s may be called twice for the same %s result (%s)", name, t.what, a.rules.DoubleNote)
				}
				t.mask = released
				return
			}
			// Settling an untracked value: outside this analysis.
			for _, arg := range x.Args {
				a.scanExpr(arg, e)
			}
			return
		}
		if a.applySummary(x, e) {
			return
		}
		// Receiver is only read; arguments hand off ownership.
		a.scanExpr(x.Fun, e)
		for _, arg := range x.Args {
			a.escapeIfTracked(arg, e)
			a.scanExpr(arg, e)
		}

	case *ast.UnaryExpr:
		if x.Op == token.AND {
			// &p aliases the variable; give up.
			a.escapeIfTracked(x.X, e)
		}
		a.scanExpr(x.X, e)

	case *ast.FuncLit:
		// Captured by a closure: ownership may flow anywhere.
		ast.Inspect(x.Body, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				a.escapeIfTracked(id, e)
			}
			return true
		})

	case *ast.CompositeLit:
		for _, elt := range x.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				a.escapeIfTracked(kv.Value, e)
				a.scanExpr(kv.Value, e)
				continue
			}
			a.escapeIfTracked(elt, e)
			a.scanExpr(elt, e)
		}

	case *ast.ParenExpr:
		a.scanExpr(x.X, e)
	case *ast.SelectorExpr:
		a.scanExpr(x.X, e) // field read: not a handoff
	case *ast.StarExpr:
		a.scanExpr(x.X, e)
	case *ast.IndexExpr:
		a.scanExpr(x.X, e)
		a.scanExpr(x.Index, e)
	case *ast.SliceExpr:
		a.scanExpr(x.X, e)
		a.scanExpr(x.Low, e)
		a.scanExpr(x.High, e)
		a.scanExpr(x.Max, e)
	case *ast.BinaryExpr:
		a.scanExpr(x.X, e)
		a.scanExpr(x.Y, e)
	case *ast.TypeAssertExpr:
		a.scanExpr(x.X, e)
	case *ast.KeyValueExpr:
		a.scanExpr(x.Key, e)
		a.scanExpr(x.Value, e)
	}
}

// isTerminalCall reports whether x is a call that never returns
// (panic, or testing's Fatal family via t.Fatal/Fatalf), ending the
// current path without a leak check: crash paths may drop tracked
// resources.
func (a *interp) isTerminalCall(x ast.Expr) bool {
	call, ok := x.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		switch fun.Sel.Name {
		case "Fatal", "Fatalf", "Exit", "Fatalln":
			return true
		}
	}
	return false
}

func hasDefault(body *ast.BlockStmt) bool {
	for _, c := range body.List {
		switch c := c.(type) {
		case *ast.CaseClause:
			if c.List == nil {
				return true
			}
		case *ast.CommClause:
			if c.Comm == nil {
				return true
			}
		}
	}
	return false
}
