// Package a is the fixture for the callgraph package: a small mix of
// plain functions, methods, mutual recursion, and dynamic calls that
// must not produce edges.
package a

type worker struct{ n int }

func (w *worker) step() { w.n++ }

func (w *worker) run(rounds int) {
	for i := 0; i < rounds; i++ {
		w.step()
	}
	finish(w)
}

func finish(w *worker) { report(w.n) }

func report(n int) {}

// Mutual recursion: ping and pong form one SCC.
func ping(n int) {
	if n > 0 {
		pong(n - 1)
	}
}

func pong(n int) { ping(n) }

// Dynamic calls: no edges.
func dynamic(fn func(), w interface{ Do() }) {
	fn()
	w.Do()
}

// root calls into both halves of the graph.
func root(w *worker) {
	w.run(3)
	ping(2)
}
