// Package callgraph builds the intra-package static call graph that
// the interprocedural summary layer (internal/analysis/summary) runs
// over.
//
// Nodes are the package's own declared functions and methods; edges
// are call sites whose callee statically resolves to another declared
// function of the same package. Calls through function values,
// interface methods, or into other packages have no edge — the
// summary layer treats those callees as unknown and falls back to the
// conservative hand-off contract, exactly as the per-function
// analyzers always have.
//
// The graph exposes its strongly connected components in callee-first
// (reverse topological) order, which is the evaluation order a
// fixpoint over function summaries needs: by the time a component is
// summarised, every function it calls outside the component already
// has a stable summary, and mutual recursion inside the component is
// iterated to a local fixpoint.
package callgraph

import (
	"go/ast"
	"go/types"

	"mpichgq/internal/analysis"
)

// A Node is one declared function or method of the package under
// analysis.
type Node struct {
	Fn   *types.Func
	Decl *ast.FuncDecl

	// Out lists static intra-package callees (deduplicated); In the
	// reverse edges.
	Out []*Node
	In  []*Node

	outSet map[*Node]bool
	// Tarjan bookkeeping.
	index, lowlink int
	onStack        bool
}

// A Graph is the intra-package call graph.
type Graph struct {
	// ByFunc maps each declared function object to its node.
	ByFunc map[*types.Func]*Node
	// Nodes holds every node in source declaration order, which keeps
	// everything downstream (SCC order, summary iteration, reported
	// diagnostics) deterministic.
	Nodes []*Node
}

// Build constructs the call graph for the pass's package.
func Build(pass *analysis.Pass) *Graph {
	g := &Graph{ByFunc: make(map[*types.Func]*Node)}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			n := &Node{Fn: fn, Decl: fd, outSet: make(map[*Node]bool)}
			g.ByFunc[fn] = n
			g.Nodes = append(g.Nodes, n)
		}
	}
	for _, n := range g.Nodes {
		ast.Inspect(n.Decl.Body, func(x ast.Node) bool {
			call, ok := x.(*ast.CallExpr)
			if !ok {
				return true
			}
			if callee := CalleeOf(pass, call); callee != nil {
				if target, ok := g.ByFunc[callee]; ok && !n.outSet[target] {
					n.outSet[target] = true
					n.Out = append(n.Out, target)
					target.In = append(target.In, n)
				}
			}
			return true
		})
	}
	return g
}

// CalleeOf resolves a call expression to the declared function or
// method it statically invokes, or nil when the callee is dynamic
// (function value, interface method) or not a function at all.
// Generic instantiations resolve to their origin declaration.
func CalleeOf(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		// Method calls and package-qualified calls both resolve
		// through the selector; interface methods resolve to the
		// interface's *types.Func, which never matches a declared
		// node, so they fall out naturally.
		id = fun.Sel
	default:
		return nil
	}
	fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
	if !ok {
		return nil
	}
	return fn.Origin()
}

// SCCs returns the graph's strongly connected components in
// callee-first order: every edge that leaves a component points to a
// component that appears earlier in the returned slice. Within a
// component, nodes keep declaration order.
func (g *Graph) SCCs() [][]*Node {
	// Tarjan's algorithm; the natural emission order of Tarjan (a
	// component is emitted only after every component it can reach)
	// is exactly the callee-first order required.
	var (
		sccs  [][]*Node
		stack []*Node
		next  = 1
	)
	var strongconnect func(n *Node)
	strongconnect = func(n *Node) {
		n.index, n.lowlink = next, next
		next++
		stack = append(stack, n)
		n.onStack = true
		for _, m := range n.Out {
			if m.index == 0 {
				strongconnect(m)
				if m.lowlink < n.lowlink {
					n.lowlink = m.lowlink
				}
			} else if m.onStack && m.index < n.lowlink {
				n.lowlink = m.index
			}
		}
		if n.lowlink == n.index {
			var comp []*Node
			for {
				m := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				m.onStack = false
				comp = append(comp, m)
				if m == n {
					break
				}
			}
			// Restore declaration order inside the component for
			// deterministic fixpoint iteration.
			ordered := make([]*Node, 0, len(comp))
			for _, cand := range g.Nodes {
				for _, c := range comp {
					if c == cand {
						ordered = append(ordered, cand)
						break
					}
				}
			}
			sccs = append(sccs, ordered)
		}
	}
	for _, n := range g.Nodes {
		if n.index == 0 {
			strongconnect(n)
		}
	}
	return sccs
}
