package callgraph

import (
	"path/filepath"
	"testing"

	"mpichgq/internal/analysis"
)

func buildFixture(t *testing.T) *Graph {
	t.Helper()
	loader, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(loader.ModuleRoot(), "internal", "analysis", "callgraph", "testdata", "src", "a")
	pkg, err := loader.LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	pass := &analysis.Pass{
		Fset:       pkg.Fset,
		Files:      pkg.Files,
		Pkg:        pkg.Types,
		TypesInfo:  pkg.Info,
		ImportPath: pkg.ImportPath,
	}
	return Build(pass)
}

func nodeByName(t *testing.T, g *Graph, name string) *Node {
	t.Helper()
	for _, n := range g.Nodes {
		if n.Fn.Name() == name {
			return n
		}
	}
	t.Fatalf("no node named %q", name)
	return nil
}

func callees(n *Node) map[string]bool {
	out := make(map[string]bool, len(n.Out))
	for _, m := range n.Out {
		out[m.Fn.Name()] = true
	}
	return out
}

func TestBuildEdges(t *testing.T) {
	g := buildFixture(t)
	if len(g.Nodes) != 8 {
		t.Errorf("got %d nodes, want 8", len(g.Nodes))
	}
	cases := []struct {
		fn   string
		out  []string
		none []string
	}{
		{"run", []string{"step", "finish"}, nil},
		{"finish", []string{"report"}, nil},
		{"ping", []string{"pong"}, nil},
		{"pong", []string{"ping"}, nil},
		{"dynamic", nil, []string{"step", "report"}}, // dynamic calls: no edges
		{"root", []string{"run", "ping"}, nil},
	}
	for _, c := range cases {
		n := nodeByName(t, g, c.fn)
		got := callees(n)
		for _, want := range c.out {
			if !got[want] {
				t.Errorf("%s: missing edge to %s (got %v)", c.fn, want, got)
			}
		}
		if c.out == nil && len(got) != 0 {
			t.Errorf("%s: expected no callees, got %v", c.fn, got)
		}
	}
	// Reverse edges.
	step := nodeByName(t, g, "step")
	if len(step.In) != 1 || step.In[0].Fn.Name() != "run" {
		t.Errorf("step.In = %v", step.In)
	}
}

func TestSCCsCalleeFirst(t *testing.T) {
	g := buildFixture(t)
	sccs := g.SCCs()

	// Every node appears exactly once.
	seen := make(map[*Node]int)
	for i, comp := range sccs {
		if len(comp) == 0 {
			t.Fatalf("empty SCC at %d", i)
		}
		for _, n := range comp {
			if _, dup := seen[n]; dup {
				t.Errorf("node %s in two SCCs", n.Fn.Name())
			}
			seen[n] = i
		}
	}
	if len(seen) != len(g.Nodes) {
		t.Errorf("SCCs cover %d of %d nodes", len(seen), len(g.Nodes))
	}

	// ping and pong share a component; everything else is singleton.
	ping := nodeByName(t, g, "ping")
	pong := nodeByName(t, g, "pong")
	if seen[ping] != seen[pong] {
		t.Errorf("ping (scc %d) and pong (scc %d) should share an SCC", seen[ping], seen[pong])
	}
	if got := len(sccs[seen[ping]]); got != 2 {
		t.Errorf("ping/pong SCC has %d members, want 2", got)
	}

	// Callee-first: every edge points into the same or an earlier SCC.
	for _, comp := range sccs {
		for _, n := range comp {
			for _, m := range n.Out {
				if seen[m] > seen[n] {
					t.Errorf("edge %s -> %s violates callee-first order (scc %d -> %d)",
						n.Fn.Name(), m.Fn.Name(), seen[n], seen[m])
				}
			}
		}
	}
}
