// Package unitsafety defines an analyzer guarding the dimensional
// conventions of internal/units.
//
// The reproduction moves three physical dimensions through the code —
// data sizes (units.ByteSize), bandwidths (units.BitRate), and time
// (time.Duration, which doubles as the simulation tick) — all of which
// are defined types over plain numbers, so Go's type system stops
// cross-dimension addition but happily allows the three classic
// mistakes this analyzer targets:
//
//   - squaring a dimension: d * time.Second where d is already a
//     Duration (the result is duration², off by a factor of 10⁹), or
//     size * size, rate * rate;
//   - cross-dimension conversion: units.ByteSize(x.Bits()) or
//     units.BitRate(sz) — rebranding bits as bytes or a size as a
//     rate without the scale factor or a time base. Rescaling goes
//     through the provided helpers (TimeToSend, BytesIn, RateOf,
//     Bits) or an explicit float computation;
//   - bare numeric literals where a dimensioned parameter is
//     expected: f(1500) with a ByteSize or Duration parameter
//     compiles, but 1500 of what? Bytes? Nanoseconds? Spell it
//     1500*units.Byte or 1500*time.Millisecond.
package unitsafety

import (
	"go/ast"
	"go/token"
	"go/types"

	"mpichgq/internal/analysis"
)

// Analyzer reports dimension-mixing arithmetic and unitless literals.
var Analyzer = &analysis.Analyzer{
	Name: "unitsafety",
	Doc: `flag arithmetic mixing internal/units dimensions and bare literals passed as dimensioned values

Reports multiplication of two dimensioned values of the same unit
(bytes x bytes, duration x duration), direct conversions between
different dimensions (ByteSize <-> BitRate, .Bits() into ByteSize),
and nonzero numeric literals passed directly where a units.ByteSize,
units.BitRate, or time.Duration parameter is expected. Scale literals
with the unit constants instead: 64 * units.KB, 10 * units.Mbps,
250 * time.Millisecond.`,
	Run: run,
}

// dimensioned type identity: (package path, type name).
type dim struct{ path, name string }

var dims = map[dim]string{
	{"mpichgq/internal/units", "ByteSize"}: "data size",
	{"mpichgq/internal/units", "BitRate"}:  "bandwidth",
	{"time", "Duration"}:                   "time",
}

func dimOf(t types.Type) (dim, string, bool) {
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return dim{}, "", false
	}
	d := dim{named.Obj().Pkg().Path(), named.Obj().Name()}
	kind, ok := dims[d]
	return d, kind, ok
}

func run(pass *analysis.Pass) error {
	// The units package itself defines the conversions.
	if pass.ImportPath == "mpichgq/internal/units" {
		return nil
	}
	for _, f := range pass.Files {
		if analysis.IsGeneratedFile(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				checkMul(pass, n)
			case *ast.CallExpr:
				if checkConversion(pass, n) {
					return true
				}
				checkLiteralArgs(pass, n)
			}
			return true
		})
	}
	return nil
}

// dimensionedValue reports whether e carries its dimension as a value
// (as opposed to a dimensionless count that merely has the type).
// Untyped constants and explicit conversions from plain numbers — the
// time.Duration(n) * time.Second idiom — are counts, not quantities.
func dimensionedValue(pass *analysis.Pass, e ast.Expr) (string, bool) {
	e = ast.Unparen(e)
	tv, ok := pass.TypesInfo.Types[e]
	if !ok {
		return "", false
	}
	_, kind, ok := dimOf(tv.Type)
	if !ok {
		return "", false
	}
	if tv.Value != nil {
		// A typed constant like time.Second or units.KB is a genuine
		// quantity; an untyped 2 that got converted is a count.
		if call, ok := e.(*ast.CallExpr); ok && conversionFromPlain(pass, call) {
			return "", false
		}
		if id, ok := e.(*ast.Ident); ok {
			return kind, declaredDim(pass, id)
		}
		if sel, ok := e.(*ast.SelectorExpr); ok {
			return kind, declaredDim(pass, sel.Sel)
		}
		// Literal constant folded to the dimension (e.g. 2): count.
		return "", false
	}
	if call, ok := e.(*ast.CallExpr); ok && conversionFromPlain(pass, call) {
		return "", false
	}
	return kind, true
}

// declaredDim reports whether the constant identifier was declared
// with a dimensioned type (units.KB) rather than inferred (const n =
// 2).
func declaredDim(pass *analysis.Pass, id *ast.Ident) bool {
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		return false
	}
	_, _, ok := dimOf(obj.Type())
	return ok
}

// conversionFromPlain reports whether call is a conversion T(x) where
// x is a plain (non-dimensioned) number.
func conversionFromPlain(pass *analysis.Pass, call *ast.CallExpr) bool {
	if len(call.Args) != 1 {
		return false
	}
	if tv, ok := pass.TypesInfo.Types[call.Fun]; !ok || !tv.IsType() {
		return false
	}
	argT := pass.TypeOf(call.Args[0])
	if argT == nil {
		return false
	}
	_, _, argDim := dimOf(argT)
	return !argDim
}

func checkMul(pass *analysis.Pass, b *ast.BinaryExpr) {
	if b.Op != token.MUL {
		return
	}
	xKind, xDim := dimensionedValue(pass, b.X)
	yKind, yDim := dimensionedValue(pass, b.Y)
	if xDim && yDim {
		pass.Reportf(b.OpPos, "multiplying two %s values yields %s²: one operand must be a dimensionless count (use an untyped constant or convert a plain number)", xKind, yKind)
	}
}

// checkConversion flags T1(expr-of-T2) where T1 and T2 are different
// dimensions, and ByteSize(x.Bits()) which silently rebrands bits as
// bytes. Returns true when call is a conversion (so literal-argument
// checking is skipped).
func checkConversion(pass *analysis.Pass, call *ast.CallExpr) bool {
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || !tv.IsType() || len(call.Args) != 1 {
		return false
	}
	dstD, dstKind, dstOK := dimOf(tv.Type)
	if !dstOK {
		return true
	}
	arg := ast.Unparen(call.Args[0])
	if srcT := pass.TypeOf(arg); srcT != nil {
		if srcD, srcKind, ok := dimOf(srcT); ok && srcD != dstD {
			pass.Reportf(call.Pos(), "direct conversion from %s (%s) to %s (%s) drops the scale factor: use the units helpers (TimeToSend, BytesIn, RateOf) or an explicit computation", srcD.name, srcKind, dstD.name, dstKind)
			return true
		}
	}
	if dstD.name == "ByteSize" {
		if inner, ok := arg.(*ast.CallExpr); ok {
			if sel, ok := inner.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Bits" {
				if selection := pass.TypesInfo.Selections[sel]; selection != nil && selection.Kind() == types.MethodVal {
					pass.Reportf(call.Pos(), "ByteSize(x.Bits()) treats bits as bytes (off by 8x): divide by 8 or keep the value in bits")
				}
			}
		}
	}
	return true
}

// checkLiteralArgs flags bare numeric literals passed where a
// dimensioned parameter is declared. Zero is always allowed (it is
// the same quantity in every unit).
func checkLiteralArgs(pass *analysis.Pass, call *ast.CallExpr) {
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || tv.IsType() {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if s, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				pt = s.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil {
			continue
		}
		d, kind, ok := dimOf(pt)
		if !ok {
			continue
		}
		if lit, ok := bareLiteral(arg); ok && lit != "0" {
			pass.Reportf(arg.Pos(), "bare numeric literal %s passed as %s (%s): scale it with a unit constant (e.g. %s)", lit, d.name, kind, exampleFor(d))
		}
	}
}

// bareLiteral matches an integer/float literal, optionally negated.
func bareLiteral(e ast.Expr) (string, bool) {
	e = ast.Unparen(e)
	if u, ok := e.(*ast.UnaryExpr); ok && (u.Op == token.SUB || u.Op == token.ADD) {
		if s, ok := bareLiteral(u.X); ok {
			return u.Op.String() + s, true
		}
		return "", false
	}
	lit, ok := e.(*ast.BasicLit)
	if !ok || (lit.Kind != token.INT && lit.Kind != token.FLOAT) {
		return "", false
	}
	return lit.Value, true
}

func exampleFor(d dim) string {
	switch d.name {
	case "ByteSize":
		return "64 * units.KB"
	case "BitRate":
		return "10 * units.Mbps"
	default:
		return "250 * time.Millisecond"
	}
}
