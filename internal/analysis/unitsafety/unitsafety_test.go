package unitsafety_test

import (
	"testing"

	"mpichgq/internal/analysis/analysistest"
	"mpichgq/internal/analysis/unitsafety"
)

func TestUnitSafety(t *testing.T) {
	analysistest.Run(t, "testdata", unitsafety.Analyzer, "a")
}
