// Package a is the seeded-violation fixture for the unitsafety
// analyzer, using the real internal/units types.
package a

import (
	"time"

	"mpichgq/internal/units"
)

func send(size units.ByteSize, rate units.BitRate, every time.Duration) {}

func dimensionSquaring(d time.Duration, sz units.ByteSize, r units.BitRate) {
	_ = d * time.Second                // want `multiplying two time values yields time²`
	_ = sz * units.KB                  // want `multiplying two data size values yields data size²`
	_ = r * units.Mbps                 // want `multiplying two bandwidth values yields bandwidth²`
	_ = d * d                          // want `multiplying two time values yields time²`
	_ = 2 * d                          // ok: untyped count
	_ = sz * 3                         // ok: untyped count
	_ = time.Duration(4) * time.Second // ok: converted plain count
	_ = d / time.Second                // ok: division rescales, it does not square
}

func crossDimension(sz units.ByteSize, r units.BitRate, d time.Duration) {
	_ = units.BitRate(sz)         // want `direct conversion from ByteSize \(data size\) to BitRate \(bandwidth\)`
	_ = units.ByteSize(r)         // want `direct conversion from BitRate \(bandwidth\) to ByteSize \(data size\)`
	_ = time.Duration(sz)         // want `direct conversion from ByteSize \(data size\) to Duration \(time\)`
	_ = units.ByteSize(sz.Bits()) // want `ByteSize\(x.Bits\(\)\) treats bits as bytes`
	_ = units.ByteSize(1500)      // ok: typing a plain number
	_ = r.TimeToSend(sz)          // ok: dimension-aware helper
	_ = units.RateOf(sz, d)       // ok: dimension-aware helper
}

func bareLiterals() {
	send(1500, 10*units.Mbps, time.Second)                 // want `bare numeric literal 1500 passed as ByteSize \(data size\)`
	send(64*units.KB, 1e6, time.Second)                    // want `bare numeric literal 1e6 passed as BitRate \(bandwidth\)`
	send(64*units.KB, 10*units.Mbps, 250)                  // want `bare numeric literal 250 passed as Duration \(time\)`
	send(0, 0, 0)                                          // ok: zero is unitless
	send(64*units.KB, 10*units.Mbps, 250*time.Millisecond) // ok
}

func suppressed() {
	//lint:ignore unitsafety fixture proves suppression works here too
	send(1500, 10*units.Mbps, time.Second)
}
