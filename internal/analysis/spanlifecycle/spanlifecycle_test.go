package spanlifecycle_test

import (
	"testing"

	"mpichgq/internal/analysis/analysistest"
	"mpichgq/internal/analysis/spanlifecycle"
)

func TestSpanLifecycle(t *testing.T) {
	analysistest.Run(t, "testdata", spanlifecycle.Analyzer, "a")
}
