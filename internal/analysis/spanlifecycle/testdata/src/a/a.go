// Package a is the seeded-violation fixture for the spanlifecycle
// analyzer. The tracer types mirror internal/spans structurally (a
// Begin method returning *Span, fluent setters, End/EndStatus), which
// is how the analyzer recognises the lifecycle.
package a

type Status uint8

type Span struct {
	open bool
}

func (s *Span) Int(key string, v int64) *Span  { return s }
func (s *Span) Str(key, val string) *Span      { return s }
func (s *Span) SetStatus(st Status) *Span      { return s }
func (s *Span) End()                           {}
func (s *Span) EndStatus(st Status)            {}
func (s *Span) SpanID() uint64                 { return 0 }

type Tracer struct{}

func (t *Tracer) Begin(trace uint64, parent uint64, name, subject string) *Span {
	return &Span{open: true}
}

type holder struct {
	sp *Span
}

// consume stores the span for a later phase to close — a real
// hand-off under the interprocedural engine, like the multi-phase
// lifecycles in gara/tcpsim.
var parked *Span

func consume(sp *Span) { parked = sp }

// --- leaks ---

func straightLineLeak(tr *Tracer) {
	sp := tr.Begin(1, 0, "op", "subj") // want `Begin result may leak`
	sp.Int("k", 1)
}

func earlyReturnLeak(tr *Tracer, fail bool) {
	sp := tr.Begin(1, 0, "op", "subj") // want `Begin result may leak: this path \(line 47\)`
	if fail {
		return // leaks sp
	}
	sp.End()
}

func branchLeak(tr *Tracer, ok bool) {
	sp := tr.Begin(1, 0, "op", "subj") // want `Begin result may leak`
	if ok {
		sp.EndStatus(Status(1))
	}
	// fallthrough path never closes sp
}

func chainedAllocLeak(tr *Tracer) {
	sp := tr.Begin(1, 0, "op", "subj").Int("k", 1) // want `Begin result may leak`
	_ = sp.SpanID()
}

func loopScopeLeak(tr *Tracer, n int, skip []bool) {
	for i := 0; i < n; i++ {
		sp := tr.Begin(1, 0, "op", "subj") // want `Begin result may leak`
		if skip[i] {
			continue // leaks this iteration's span
		}
		sp.End()
	}
}

func reassignLeak(tr *Tracer) {
	sp := tr.Begin(1, 0, "op", "subj") // want `Begin result may leak: sp is reassigned`
	sp = tr.Begin(2, 0, "op", "subj")
	sp.End()
}

func discardedBegin(tr *Tracer) {
	tr.Begin(1, 0, "op", "subj") // want `Begin result is discarded without End/EndStatus`
}

func discardedFluentChain(tr *Tracer) {
	tr.Begin(1, 0, "op", "subj").Int("k", 1) // want `Begin result is discarded without End/EndStatus`
}

// --- correct lifecycles ---

func straightLine(tr *Tracer) {
	sp := tr.Begin(1, 0, "op", "subj")
	sp.Int("k", 1)
	sp.End()
}

func fluentOneliner(tr *Tracer) {
	tr.Begin(1, 0, "op", "subj").Int("k", 1).EndStatus(Status(2))
}

func chainClose(tr *Tracer) {
	sp := tr.Begin(1, 0, "op", "subj")
	sp.Int("k", 1).End() // closing through the fluent chain settles sp
}

func deferredClose(tr *Tracer) (err error) {
	sp := tr.Begin(1, 0, "op", "subj")
	defer sp.End()
	return nil
}

func branchesBothClose(tr *Tracer, ok bool) {
	sp := tr.Begin(1, 0, "op", "subj")
	if ok {
		sp.End()
		return
	}
	sp.EndStatus(Status(3))
}

func fieldHandoff(tr *Tracer, h *holder) {
	// Stored for a later phase to close: h now owns the span.
	h.sp = tr.Begin(1, 0, "op", "subj")
}

func localThenFieldHandoff(tr *Tracer, h *holder) {
	sp := tr.Begin(1, 0, "op", "subj")
	sp.Int("k", 1)
	h.sp = sp
}

func callHandoff(tr *Tracer) {
	sp := tr.Begin(1, 0, "op", "subj")
	consume(sp)
}

func returnHandoff(tr *Tracer) *Span {
	sp := tr.Begin(1, 0, "op", "subj")
	return sp
}

func closureHandoff(tr *Tracer, run func(func())) {
	sp := tr.Begin(1, 0, "op", "subj")
	run(func() { sp.End() })
}

func doubleCloseAllowed(tr *Tracer, retry bool) {
	// End is idempotent: closing twice must not be reported.
	sp := tr.Begin(1, 0, "op", "subj")
	if retry {
		sp.EndStatus(Status(1))
	}
	sp.End()
}

func suppressedLeak(tr *Tracer) {
	//lint:ignore spanlifecycle fixture proving the suppression mechanism works
	sp := tr.Begin(1, 0, "op", "subj")
	sp.Int("k", 1)
}
