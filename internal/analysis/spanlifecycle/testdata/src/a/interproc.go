// Interprocedural cases: End/EndStatus tracked through same-package
// helpers, across fixture files.
package a

// closeSpan ends its span: callers have settled it.
func closeSpan(sp *Span) { sp.End() }

// closeWithStatus settles through a fluent chain inside the helper.
func closeWithStatus(sp *Span, st Status) {
	sp.Int("status", int64(st)).EndStatus(st)
}

// closeNested settles two helper hops deep.
func closeNested(sp *Span) { closeSpan(sp) }

// peek only reads the span: the close obligation stays with the
// caller.
func peek(sp *Span) uint64 { return sp.SpanID() }

// --- leaks only an interprocedural pass can catch ---

func readOnlyHelperLeak(tr *Tracer) {
	sp := tr.Begin(1, 0, "op", "subj") // want `Begin result may leak`
	_ = peek(sp)                       // peek does not close sp
}

func peekThenReturnLeak(tr *Tracer, fail bool) {
	sp := tr.Begin(1, 0, "op", "subj") // want `Begin result may leak: this path \(line 31\)`
	if fail {
		_ = peek(sp)
		return // peek did not consume sp: this path leaks the span
	}
	sp.End()
}

// --- closes through helpers settle ---

func endViaHelper(tr *Tracer) {
	sp := tr.Begin(1, 0, "op", "subj")
	closeSpan(sp) // helper ends it: settled
}

func endViaHelperChain(tr *Tracer) {
	sp := tr.Begin(1, 0, "op", "subj")
	closeNested(sp) // settled two hops deep
}

func endViaStatusHelper(tr *Tracer) {
	sp := tr.Begin(1, 0, "op", "subj")
	closeWithStatus(sp, Status(2))
}

func peekThenEnd(tr *Tracer) {
	sp := tr.Begin(1, 0, "op", "subj")
	_ = peek(sp) // read-only: still ours
	sp.End()
}

// doubleCloseThroughHelperAllowed: End is idempotent, so settling via
// a helper and then closing directly is fine.
func doubleCloseThroughHelperAllowed(tr *Tracer) {
	sp := tr.Begin(1, 0, "op", "subj")
	closeSpan(sp)
	sp.End()
}
