// Package spanlifecycle defines an analyzer enforcing the causal-span
// lifecycle discipline from docs/observability.md.
//
// Every span opened with Tracer.Begin must, on every control-flow
// path, either be closed with End/EndStatus or handed off (stored in
// a struct field for a later phase to close, passed to a call,
// returned, or captured by a closure). A span that is begun and then
// dropped stays "active" forever: it never reaches the completed-span
// ring, silently vanishes from trace queries, and inflates the
// tracer's Active() count — the tracing layer's equivalent of a goroutine
// leak. Because End is idempotent by design, closing twice is not an
// error; only the never-closed path is.
//
// The flow-sensitive tracking lives in the shared ownership engine
// (internal/analysis/ownership); this package supplies the span
// recognition rules:
//
//   - an allocation is a call whose result is a *Span and whose
//     method chain is rooted at a Begin method — so the fluent form
//     tr.Begin(...).Int("k", v) is tracked just like a plain Begin;
//   - a settle is an End or EndStatus method call whose receiver
//     chain is rooted at the tracked variable (sp.Int(1).End()
//     settles sp);
//   - a bare Begin chain discarded as a statement without a
//     terminating End/EndStatus is reported immediately.
package spanlifecycle

import (
	"go/ast"
	"go/types"

	"mpichgq/internal/analysis"
	"mpichgq/internal/analysis/ownership"
	"mpichgq/internal/analysis/summary"
)

// Analyzer reports span-lifecycle violations.
var Analyzer = &analysis.Analyzer{
	Name: "spanlifecycle",
	Doc: `enforce that every Tracer.Begin span is Ended or handed off on all paths

Tracks every local bound to a Begin call (including fluent
Begin(...).Int(...) chains) and reports:

  - a leak when some path reaches a return (or the end of the
    variable's scope) with the span neither Ended nor handed off;
  - a Begin chain evaluated as a bare statement whose result is
    discarded without End/EndStatus.

Storing the span in a struct field, passing it to a call, or
returning it counts as a handoff; the receiver becomes responsible
for closing it. End is idempotent, so double-close is not checked.`,
	Run: run,
}

var endMethods = map[string]bool{
	"End":       true,
	"EndStatus": true,
}

func run(pass *analysis.Pass) error {
	// Interprocedural summaries track End/EndStatus through
	// same-package helpers: closeWith(sp, st) settles the span, while
	// a helper that only reads it leaves the close obligation — and
	// the leak report — with the caller.
	sums := summary.Compute(pass, &summary.Recognizer{
		Name: "end",
		Match: func(pass *analysis.Pass, call *ast.CallExpr) (*types.Var, bool) {
			v, _, ok := endCall(pass, call)
			return v, ok
		},
	})
	return ownership.Run(pass, ownership.Rules{
		Alloc:         beginCall,
		Settle:        endCall,
		SettleName:    func(string) string { return "End/EndStatus" },
		ReportDiscard: true,
		Summaries:     sums,
	})
}

// isSpanPtr reports whether t is a pointer to a named type called
// Span — the tracer handle type (matched structurally so testdata
// fixtures can define their own).
func isSpanPtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	return ok && named.Obj().Name() == "Span"
}

// beginCall reports whether expr is a span-opening call: a method
// chain returning *Span whose root is a Begin method. The chain walk
// lets fluent attribute setters (Int, Str, SetStatus) ride along;
// a chain terminated by End/EndStatus returns nothing and is
// therefore never an allocation.
func beginCall(pass *analysis.Pass, expr ast.Expr) (string, bool) {
	call, ok := expr.(*ast.CallExpr)
	if !ok || !isSpanPtr(pass.TypesInfo.TypeOf(call)) {
		return "", false
	}
	for {
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return "", false
		}
		selection := pass.TypesInfo.Selections[sel]
		if selection == nil || selection.Kind() != types.MethodVal {
			return "", false
		}
		if sel.Sel.Name == "Begin" {
			return "Begin", true
		}
		// A fluent setter: keep walking toward the chain root. Only a
		// *Span-valued receiver call can continue the chain.
		inner, ok := sel.X.(*ast.CallExpr)
		if !ok || !isSpanPtr(pass.TypesInfo.TypeOf(inner)) {
			return "", false
		}
		call = inner
	}
}

// endCall matches sp.End() / sp.EndStatus(st) — including through a
// fluent chain like sp.Int(1).End() — and returns the closed span
// variable.
func endCall(pass *analysis.Pass, call *ast.CallExpr) (*types.Var, string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !endMethods[sel.Sel.Name] {
		return nil, "", false
	}
	selection := pass.TypesInfo.Selections[sel]
	if selection == nil || selection.Kind() != types.MethodVal || !isSpanPtr(selection.Recv()) {
		return nil, "", false
	}
	// Unwind the receiver chain to its root identifier.
	recv := sel.X
	for {
		switch x := recv.(type) {
		case *ast.CallExpr:
			// Only a fluent *Span-valued setter continues the chain.
			inner, ok := x.Fun.(*ast.SelectorExpr)
			if !ok || !isSpanPtr(pass.TypesInfo.TypeOf(x)) {
				return nil, "", false
			}
			recv = inner.X
		case *ast.ParenExpr:
			recv = x.X
		case *ast.Ident:
			v, _ := pass.ObjectOf(x).(*types.Var)
			if v == nil {
				return nil, "", false
			}
			return v, sel.Sel.Name, true
		default:
			return nil, "", false
		}
	}
}
