package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Suppression policy: a finding may be silenced with
//
//	//lint:ignore <analyzer>[,<analyzer>...] <justification>
//
// either at the end of the offending line or on the line immediately
// above it. The justification is mandatory — a bare directive does not
// suppress anything — and "*" matches every analyzer. The catalogue of
// accepted suppressions lives in docs/static-analysis.md; CI treats an
// unjustified or stale directive as reviewable like any other code.
//
// A directive that no longer silences anything is itself a finding:
// StaleSuppressions reports it, so dead directives get deleted instead
// of quietly granting future violations a free pass.

type suppression struct {
	analyzers []string // nil means malformed (ignored)
}

func (s suppression) matches(name string) bool {
	for _, a := range s.analyzers {
		if a == "*" || a == name {
			return true
		}
	}
	return false
}

// parseSuppression extracts a directive from a single comment's text.
func parseSuppression(text string) (suppression, bool) {
	rest, ok := strings.CutPrefix(strings.TrimSpace(text), "//lint:ignore ")
	if !ok {
		return suppression{}, false
	}
	fields := strings.Fields(rest)
	if len(fields) < 2 {
		// No justification: directive is inert by policy.
		return suppression{}, false
	}
	return suppression{analyzers: strings.Split(fields[0], ",")}, true
}

// A directive is one parsed //lint:ignore comment, with the (file,
// line) span it covers: its own line (trailing-comment form) and the
// following line (standalone form).
type directive struct {
	pos       token.Pos
	file      string
	line      int
	analyzers []string
}

func (d *directive) covers(file string, line int) bool {
	return d.file == file && (line == d.line || line == d.line+1)
}

// collectDirectives parses every //lint:ignore directive in pkg, in
// file/position order.
func collectDirectives(pkg *Package) []*directive {
	var out []*directive
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				s, ok := parseSuppression(c.Text)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				out = append(out, &directive{
					pos:       c.Pos(),
					file:      pos.Filename,
					line:      pos.Line,
					analyzers: s.analyzers,
				})
			}
		}
	}
	return out
}

// MarkSuppressed sets Suppressed on every diagnostic covered by a
// matching //lint:ignore directive, in place.
func MarkSuppressed(pkg *Package, diags []Diagnostic) {
	dirs := collectDirectives(pkg)
	if len(dirs) == 0 {
		return
	}
	for i := range diags {
		pos := pkg.Fset.Position(diags[i].Pos)
		for _, d := range dirs {
			if d.covers(pos.Filename, pos.Line) && (suppression{d.analyzers}).matches(diags[i].Analyzer) {
				diags[i].Suppressed = true
				break
			}
		}
	}
}

// Suppress filters diags through the package's //lint:ignore
// directives.
func Suppress(pkg *Package, diags []Diagnostic) []Diagnostic {
	MarkSuppressed(pkg, diags)
	out := diags[:0]
	for _, d := range diags {
		if !d.Suppressed {
			out = append(out, d)
		}
	}
	return out
}

// StaleSuppressions reports //lint:ignore directives in pkg that did
// not suppress any diagnostic in diags (which must be RunAll output:
// suppressed findings marked, not dropped). ran lists the analyzers
// that actually executed; a directive naming an analyzer that did not
// run is skipped — its finding may simply not have been looked for.
// When complete is true, ran is the full registered set, so a directive
// naming an analyzer outside it is reported as naming an unknown
// analyzer (a typo would otherwise silently suppress nothing forever).
// Returned diagnostics carry the virtual analyzer name "suppression".
func StaleSuppressions(pkg *Package, diags []Diagnostic, ran []string, complete bool) []Diagnostic {
	ranSet := make(map[string]bool, len(ran))
	for _, name := range ran {
		ranSet[name] = true
	}
	var out []Diagnostic
	for _, dir := range collectDirectives(pkg) {
		checkable := true
		unknown := ""
		for _, name := range dir.analyzers {
			if name == "*" {
				// A blanket directive is checkable against whatever ran.
				continue
			}
			if !ranSet[name] {
				if complete {
					unknown = name
				} else {
					checkable = false
				}
				break
			}
		}
		if unknown != "" {
			out = append(out, Diagnostic{
				Pos:      dir.pos,
				Analyzer: "suppression",
				Message:  fmt.Sprintf("//lint:ignore names unknown analyzer %q; fix the name or delete the directive", unknown),
			})
			continue
		}
		if !checkable {
			continue
		}
		used := false
		for i := range diags {
			if !diags[i].Suppressed {
				continue
			}
			pos := pkg.Fset.Position(diags[i].Pos)
			if dir.covers(pos.Filename, pos.Line) && (suppression{dir.analyzers}).matches(diags[i].Analyzer) {
				used = true
				break
			}
		}
		if !used {
			out = append(out, Diagnostic{
				Pos:      dir.pos,
				Analyzer: "suppression",
				Message: fmt.Sprintf("stale //lint:ignore %s directive: it suppresses nothing; delete it",
					strings.Join(dir.analyzers, ",")),
			})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos < out[j].Pos })
	return out
}

// IsGeneratedFile reports whether f carries the standard "Code
// generated ... DO NOT EDIT." marker; gqlint skips such files.
func IsGeneratedFile(f *ast.File) bool {
	for _, cg := range f.Comments {
		if cg.Pos() > f.Package {
			break
		}
		for _, c := range cg.List {
			t := c.Text
			if strings.HasPrefix(t, "// Code generated ") && strings.HasSuffix(t, " DO NOT EDIT.") {
				return true
			}
		}
	}
	return false
}
