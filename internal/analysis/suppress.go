package analysis

import (
	"go/ast"
	"strings"
)

// Suppression policy: a finding may be silenced with
//
//	//lint:ignore <analyzer>[,<analyzer>...] <justification>
//
// either at the end of the offending line or on the line immediately
// above it. The justification is mandatory — a bare directive does not
// suppress anything — and "*" matches every analyzer. The catalogue of
// accepted suppressions lives in docs/static-analysis.md; CI treats an
// unjustified or stale directive as reviewable like any other code.

type suppression struct {
	analyzers []string // nil means malformed (ignored)
}

func (s suppression) matches(name string) bool {
	for _, a := range s.analyzers {
		if a == "*" || a == name {
			return true
		}
	}
	return false
}

// parseSuppression extracts a directive from a single comment's text.
func parseSuppression(text string) (suppression, bool) {
	rest, ok := strings.CutPrefix(strings.TrimSpace(text), "//lint:ignore ")
	if !ok {
		return suppression{}, false
	}
	fields := strings.Fields(rest)
	if len(fields) < 2 {
		// No justification: directive is inert by policy.
		return suppression{}, false
	}
	return suppression{analyzers: strings.Split(fields[0], ",")}, true
}

// Suppress filters diags through the package's //lint:ignore
// directives.
func Suppress(pkg *Package, diags []Diagnostic) []Diagnostic {
	// file -> line -> directives that cover that line.
	covered := make(map[string]map[int][]suppression)
	add := func(file string, line int, s suppression) {
		m := covered[file]
		if m == nil {
			m = make(map[int][]suppression)
			covered[file] = m
		}
		m[line] = append(m[line], s)
	}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				s, ok := parseSuppression(c.Text)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				// The directive covers its own line (trailing-comment
				// form) and the following line (standalone form).
				add(pos.Filename, pos.Line, s)
				add(pos.Filename, pos.Line+1, s)
			}
		}
	}
	if len(covered) == 0 {
		return diags
	}
	out := diags[:0]
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		dropped := false
		for _, s := range covered[pos.Filename][pos.Line] {
			if s.matches(d.Analyzer) {
				dropped = true
				break
			}
		}
		if !dropped {
			out = append(out, d)
		}
	}
	return out
}

// IsGeneratedFile reports whether f carries the standard "Code
// generated ... DO NOT EDIT." marker; gqlint skips such files.
func IsGeneratedFile(f *ast.File) bool {
	for _, cg := range f.Comments {
		if cg.Pos() > f.Package {
			break
		}
		for _, c := range cg.List {
			t := c.Text
			if strings.HasPrefix(t, "// Code generated ") && strings.HasSuffix(t, " DO NOT EDIT.") {
				return true
			}
		}
	}
	return false
}
