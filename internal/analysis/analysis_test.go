package analysis

import (
	"go/ast"
	"path/filepath"
	"strings"
	"testing"
)

func load(t *testing.T, dir string) (*Loader, *Package) {
	t.Helper()
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := l.LoadDir(filepath.Join(l.ModuleRoot(), dir))
	if err != nil {
		t.Fatal(err)
	}
	return l, pkg
}

func TestLoaderResolvesModuleAndStdlib(t *testing.T) {
	l, pkg := load(t, "internal/netsim")
	if pkg.ImportPath != "mpichgq/internal/netsim" {
		t.Errorf("import path = %q", pkg.ImportPath)
	}
	if pkg.Types.Name() != "netsim" {
		t.Errorf("package name = %q", pkg.Types.Name())
	}
	// Both a module-internal and a stdlib import must have resolved.
	var gotSim, gotTime bool
	for _, imp := range pkg.Types.Imports() {
		switch imp.Path() {
		case "mpichgq/internal/sim":
			gotSim = true
		case "time":
			gotTime = true
		}
	}
	if !gotSim || !gotTime {
		t.Errorf("imports missing: sim=%v time=%v", gotSim, gotTime)
	}
	// Loading again must hit the memo, not re-typecheck.
	again, err := l.LoadDir(filepath.Join(l.ModuleRoot(), "internal/netsim"))
	if err != nil {
		t.Fatal(err)
	}
	if again != pkg {
		t.Error("second LoadDir returned a different *Package")
	}
}

func TestLoaderSkipsExternalTestPackages(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	l.IncludeTests = true
	// internal/gara has both in-package and package gara_test files;
	// the loader must keep the former and drop the latter.
	pkg, err := l.LoadDir(filepath.Join(l.ModuleRoot(), "internal", "gara"))
	if err != nil {
		t.Fatal(err)
	}
	if pkg.Types.Name() != "gara" {
		t.Errorf("package name = %q", pkg.Types.Name())
	}
}

func TestLoadPatternsSkipsTestdata(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.LoadPatterns([]string{filepath.Join(l.ModuleRoot(), "internal", "analysis") + "/..."})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pkgs {
		if strings.Contains(p.Dir, "testdata") {
			t.Errorf("testdata package loaded: %s", p.Dir)
		}
	}
	if len(pkgs) < 5 {
		t.Errorf("expected the analysis tree (framework + analyzers), got %d packages", len(pkgs))
	}
}

func TestParseSuppression(t *testing.T) {
	cases := []struct {
		text    string
		ok      bool
		matches []string
	}{
		{"//lint:ignore determinism goroutine is the kernel itself", true, []string{"determinism"}},
		{"//lint:ignore determinism,unitsafety shared justification", true, []string{"determinism", "unitsafety"}},
		{"//lint:ignore * blanket with reason", true, []string{"determinism", "poolownership", "anything"}},
		{"//lint:ignore determinism", false, nil}, // no justification: inert
		{"// regular comment", false, nil},
		{"//lint:ignore", false, nil},
	}
	for _, c := range cases {
		s, ok := parseSuppression(c.text)
		if ok != c.ok {
			t.Errorf("%q: ok = %v, want %v", c.text, ok, c.ok)
			continue
		}
		for _, name := range c.matches {
			if !s.matches(name) {
				t.Errorf("%q should suppress %q", c.text, name)
			}
		}
	}
	if s, ok := parseSuppression("//lint:ignore determinism reason"); !ok || s.matches("unitsafety") {
		t.Error("single-analyzer directive must not suppress other analyzers")
	}
}

func TestIsGeneratedFile(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := l.LoadDir(filepath.Join(l.ModuleRoot(), "internal", "units"))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range pkg.Files {
		if IsGeneratedFile(f) {
			t.Errorf("%s misdetected as generated", l.Fset.Position(f.Package).Filename)
		}
	}
	if IsGeneratedFile(&ast.File{}) {
		t.Error("empty file detected as generated")
	}
}
