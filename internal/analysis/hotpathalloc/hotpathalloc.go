// Package hotpathalloc defines an analyzer that keeps the pooled
// event-scheduling path allocation-free.
//
// PR 4 added closure-free scheduling variants — Kernel.AtFunc,
// Kernel.AfterFunc, Kernel.AfterPrioFunc — whose whole point is that
// the callback is a prebound package-level function of the form
// func(a0, a1 any) and the two arguments ride inside the pooled event
// struct. Passing a function literal (or a method value, which the
// compiler also materialises as a closure) to one of these APIs
// silently re-introduces one heap allocation per scheduled event and
// defeats the pool; the bench-guard job only catches the regression
// if the affected path happens to be benchmarked. This analyzer
// catches it at every call site.
package hotpathalloc

import (
	"go/ast"
	"go/types"

	"mpichgq/internal/analysis"
)

// Analyzer reports closure allocations on pooled scheduling paths.
var Analyzer = &analysis.Analyzer{
	Name: "hotpathalloc",
	Doc: `forbid function literals and method values as the callback of AtFunc/AfterFunc/AfterPrioFunc

These kernel APIs exist so hot paths can schedule events with zero
allocations: the callback must be a prebound package-level function
(or struct-field function value) of type func(a0, a1 any), with the
receiver and payload passed as the two scheduling arguments. A
function literal allocates a closure per event whenever it captures
variables, and a method value (x.Method used as a value) always
allocates. Hoist the callback to package level and pass state via
a0/a1, e.g.:

    func onTimer(a0, a1 any) { a0.(*Conn).fire(a1.(int)) }
    k.AfterFunc(d, onTimer, c, seq)`,
	Run: run,
}

// pooledFuncs are the closure-free scheduling entry points; the
// callback is always their first func-typed parameter.
var pooledFuncs = map[string]bool{
	"AtFunc":        true,
	"AfterFunc":     true,
	"AfterPrioFunc": true,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if analysis.IsGeneratedFile(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name, ok := pooledCall(pass, call)
			if !ok {
				return true
			}
			for _, arg := range call.Args {
				t := pass.TypeOf(arg)
				if t == nil {
					continue
				}
				if _, isFunc := t.Underlying().(*types.Signature); !isFunc {
					continue
				}
				checkCallback(pass, name, arg)
			}
			return true
		})
	}
	return nil
}

// pooledCall reports whether call invokes one of the pooled
// scheduling methods (on any receiver declared in this module, so
// wrappers with the same contract are covered too).
func pooledCall(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !pooledFuncs[sel.Sel.Name] {
		return "", false
	}
	selection := pass.TypesInfo.Selections[sel]
	if selection == nil || selection.Kind() != types.MethodVal {
		return "", false
	}
	return sel.Sel.Name, true
}

func checkCallback(pass *analysis.Pass, api string, arg ast.Expr) {
	switch arg := arg.(type) {
	case *ast.FuncLit:
		if captures(pass, arg) {
			pass.Reportf(arg.Pos(), "function literal passed to %s captures variables and allocates a closure per event: hoist it to a package-level func(a0, a1 any) and pass the state via the scheduling arguments", api)
		} else {
			pass.Reportf(arg.Pos(), "function literal passed to %s: even capture-free literals belong at package level so the pooled path stays auditable (and a later captured variable doesn't silently start allocating)", api)
		}
	case *ast.SelectorExpr:
		// x.Method used as a value allocates a bound-method closure.
		if selection := pass.TypesInfo.Selections[arg]; selection != nil && selection.Kind() == types.MethodVal {
			pass.Reportf(arg.Pos(), "method value %s passed to %s allocates a bound-method closure per event: use a package-level func(a0, a1 any) and pass the receiver as a scheduling argument", arg.Sel.Name, api)
		}
	case *ast.ParenExpr:
		checkCallback(pass, api, arg.X)
	}
}

// captures reports whether the function literal references any
// identifier declared outside its own body (a closure capture).
func captures(pass *analysis.Pass, lit *ast.FuncLit) bool {
	declaredInside := make(map[types.Object]bool)
	ast.Inspect(lit, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := pass.TypesInfo.Defs[id]; obj != nil {
				declaredInside[obj] = true
			}
		}
		return true
	})
	capt := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || capt {
			return !capt
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil || declaredInside[obj] {
			return true
		}
		v, ok := obj.(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		// Package-level variables are not captures.
		if v.Parent() == pass.Pkg.Scope() || v.Parent() == types.Universe {
			return true
		}
		capt = true
		return false
	})
	return capt
}
