package hotpathalloc_test

import (
	"testing"

	"mpichgq/internal/analysis/analysistest"
	"mpichgq/internal/analysis/hotpathalloc"
)

func TestHotPathAlloc(t *testing.T) {
	analysistest.Run(t, "testdata", hotpathalloc.Analyzer, "a")
}
