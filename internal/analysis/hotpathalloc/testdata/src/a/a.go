// Package a is the seeded-violation fixture for the hotpathalloc
// analyzer, scheduling against the real kernel API.
package a

import (
	"time"

	"mpichgq/internal/sim"
)

type conn struct {
	k   *sim.Kernel
	seq int
}

func (c *conn) fire(seq int) {}

// onTimer is the prebound form the pooled path wants.
func onTimer(a0, a1 any) { a0.(*conn).fire(a1.(int)) }

func schedule(c *conn, d time.Duration) {
	// ok: prebound package-level function, state via a0/a1.
	c.k.AfterFunc(d, onTimer, c, c.seq)
	c.k.AtFunc(d, sim.PrioNet, onTimer, c, c.seq)
	c.k.AfterPrioFunc(d, sim.PrioLate, onTimer, c, c.seq)

	// ok: the closure-taking APIs are the designated slow path.
	c.k.After(d, func() { c.fire(c.seq) })

	c.k.AfterFunc(d, func(a0, a1 any) { // want `function literal passed to AfterFunc captures variables`
		c.fire(c.seq)
	}, nil, nil)

	c.k.AtFunc(d, sim.PrioNet, func(a0, a1 any) { // want `function literal passed to AtFunc: even capture-free`
		a0.(*conn).fire(a1.(int))
	}, c, c.seq)

	c.k.AfterPrioFunc(d, sim.PrioLate, c.boundMethod, c, c.seq) // want `method value boundMethod passed to AfterPrioFunc allocates`
}

func (c *conn) boundMethod(a0, a1 any) {}

func suppressed(c *conn, d time.Duration) {
	//lint:ignore hotpathalloc fixture proves suppression works here too
	c.k.AfterFunc(d, func(a0, a1 any) { c.fire(0) }, nil, nil)
}
