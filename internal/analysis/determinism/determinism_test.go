package determinism_test

import (
	"testing"

	"mpichgq/internal/analysis/analysistest"
	"mpichgq/internal/analysis/determinism"
)

func TestDeterminism(t *testing.T) {
	analysistest.Run(t, "testdata", determinism.Analyzer, "a", "b")
}
