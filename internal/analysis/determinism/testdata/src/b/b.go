// Package b is the negative fixture: it does not import the
// simulation kernel, so it is not kernel-driven and the determinism
// analyzer must stay silent even though it uses wall-clock time,
// ambient randomness, and goroutines.
package b

import (
	"math/rand"
	"time"
)

func Wall() time.Time { return time.Now() } // ok: not kernel-driven

func Roll() int { return rand.Intn(6) } // ok: not kernel-driven

func Spawn(f func()) { go f() } // ok: not kernel-driven
