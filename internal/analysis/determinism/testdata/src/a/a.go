// Package a is a seeded-violation fixture for the determinism
// analyzer: it imports the simulation kernel, making it kernel-driven.
package a

import (
	"math/rand"
	"sort"
	"time"

	"mpichgq/internal/netsim"
	"mpichgq/internal/sim"
)

type server struct {
	k     *sim.Kernel
	peers map[string]*sim.Kernel
}

func (s *server) wallClock() time.Duration {
	start := time.Now()     // want `time.Now reads the wall clock`
	_ = time.Since(start)   // want `time.Since reads the wall clock`
	time.Sleep(time.Second) // want `time.Sleep reads the wall clock`
	<-time.After(time.Hour) // want `time.After reads the wall clock`
	return s.k.Now()        // ok: simulated clock
}

func (s *server) ambientRand() int {
	rand.Shuffle(3, func(i, j int) {}) // want `rand.Shuffle uses the ambient math/rand source`
	return rand.Intn(10)               // want `rand.Intn uses the ambient math/rand source`
}

func (s *server) unseeded(src rand.Source) *rand.Rand {
	_ = rand.New(src)                   // want `rand.New without a visible rand.NewSource`
	return rand.New(rand.NewSource(42)) // ok: visibly seeded
}

func (s *server) goroutine() {
	go s.wallClock() // want `go statement in kernel-driven package`
}

func (s *server) spawnOK() {
	s.k.Spawn("proc", func(ctx *sim.Ctx) {}) // ok: kernel-admitted process
}

func (s *server) mapOrder(d time.Duration) {
	for _, peer := range s.peers {
		peer.After(d, func() {}) // want `After called while ranging over a map`
	}
	// ok: sorted iteration
	names := make([]string, 0, len(s.peers))
	for name := range s.peers {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		s.peers[name].After(d, func() {})
	}
}

func (s *server) fluidMapOrder(flows map[string]*netsim.FluidFlow) {
	for _, fl := range flows {
		fl.SetRate(0) // want `SetRate called while ranging over a map`
	}
	for _, fl := range flows {
		fl.Stop() // want `Stop called while ranging over a map`
	}
	// ok: sorted iteration
	names := make([]string, 0, len(flows))
	for name := range flows {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		flows[name].Stop()
	}
}

func (s *server) suppressed() {
	//lint:ignore determinism fixture proves the suppression mechanism works
	go s.wallClock()
}

func (s *server) bareDirectiveDoesNotSuppress() {
	//lint:ignore determinism
	go s.wallClock() // want `go statement in kernel-driven package`
}
