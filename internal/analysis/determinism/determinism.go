// Package determinism defines an analyzer that keeps kernel-driven
// packages bit-deterministic.
//
// Every figure in the paper reproduction is regenerated from a root
// seed, and the regression suite asserts byte-identical output across
// -parallel settings. That only holds while simulation code draws no
// wall-clock time, no ambient randomness, spawns no raw goroutines,
// and never lets Go's randomized map iteration order decide the order
// in which events are scheduled or RPCs are emitted. This analyzer
// turns those conventions into compile-time errors for every package
// that sits on the simulation kernel.
package determinism

import (
	"go/ast"
	"go/types"
	"strings"

	"mpichgq/internal/analysis"
)

// Analyzer reports nondeterminism hazards in kernel-driven packages.
var Analyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc: `forbid wall-clock, ambient randomness, goroutines, and map-ordered event emission in kernel-driven packages

A package is kernel-driven when it imports the simulation kernel
(mpichgq/internal/sim) or one of the simulators built on it (netsim,
tcpsim). In such packages the analyzer reports:

  - references to wall-clock functions (time.Now, time.Since,
    time.Sleep, time.After, ...): simulated time comes from
    Kernel.Now;
  - math/rand package-level functions (the ambient, globally seeded
    source) and rand.New with a source that is not visibly
    rand.NewSource(seed): randomness must flow from the root seed via
    sim.RNG / experiments.DeriveSeed;
  - go statements: concurrency belongs to Kernel.Spawn, which admits
    one runnable process at a time;
  - range over a map whose body schedules events or emits RPCs /
    flight-recorder events: iteration order would leak into the event
    sequence. Collect and sort keys first.`,
	Run: run,
}

// kernelPkgs are import paths whose presence marks a package as
// kernel-driven.
var kernelPkgs = []string{
	"mpichgq/internal/sim",
	"mpichgq/internal/netsim",
	"mpichgq/internal/tcpsim",
}

// wallClockFns are time-package functions that read or wait on the
// host's clock. time.Unix, time.Date etc. are pure and stay legal.
var wallClockFns = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "Tick": true, "NewTimer": true, "NewTicker": true,
	"AfterFunc": true,
}

// emissionMethods are methods whose call order is observable in the
// simulation trace: kernel scheduling, process spawning, flight
// recorder emission, control-plane RPC transmission, and the fluid
// flow lifecycle (Start/Stop/SetRate emit flight-recorder events and
// trigger the rate solver, whose per-flow EvFluidRate emissions follow
// call order).
var emissionMethods = map[string]bool{
	"Schedule": true, "At": true, "AtFunc": true, "After": true,
	"AfterFunc": true, "AfterPrio": true, "AfterPrioFunc": true,
	"Spawn": true, "Emit": true, "call": true, "transmit": true,
	"Start": true, "Stop": true, "SetRate": true, "refreshFluid": true,
}

func run(pass *analysis.Pass) error {
	if !kernelDriven(pass) {
		return nil
	}
	for _, f := range pass.Files {
		if analysis.IsGeneratedFile(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				checkSelector(pass, n)
			case *ast.CallExpr:
				checkRandNew(pass, n)
			case *ast.GoStmt:
				pass.Reportf(n.Pos(), "go statement in kernel-driven package: goroutine interleaving is nondeterministic; use Kernel.Spawn (one runnable process at a time)")
			case *ast.RangeStmt:
				checkMapRange(pass, n)
			}
			return true
		})
	}
	return nil
}

func kernelDriven(pass *analysis.Pass) bool {
	for _, p := range kernelPkgs {
		if pass.ImportPath == p || pass.DirectlyImports(p) {
			return true
		}
	}
	return false
}

// pkgFunc returns the package path and name if obj is a package-level
// function.
func pkgFunc(obj types.Object) (string, string, bool) {
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return "", "", false
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return "", "", false
	}
	return fn.Pkg().Path(), fn.Name(), true
}

func checkSelector(pass *analysis.Pass, sel *ast.SelectorExpr) {
	obj := pass.TypesInfo.Uses[sel.Sel]
	if obj == nil {
		return
	}
	path, name, ok := pkgFunc(obj)
	if !ok {
		return
	}
	switch path {
	case "time":
		if wallClockFns[name] {
			pass.Reportf(sel.Pos(), "time.%s reads the wall clock: simulation time must come from Kernel.Now so runs are bit-reproducible", name)
		}
	case "math/rand", "math/rand/v2":
		switch name {
		case "New", "NewSource", "NewPCG", "NewChaCha8":
			// Checked at the enclosing call site so the seed
			// expression is visible.
		default:
			pass.Reportf(sel.Pos(), "rand.%s uses the ambient math/rand source: derive randomness from the root seed via sim.RNG or experiments.DeriveSeed", name)
		}
	}
}

// checkRandNew validates rand.New(...) call sites: the source argument
// must be a literal rand.NewSource(...) / rand.NewPCG(...) call, so the
// seed's provenance is visible at the call site.
func checkRandNew(pass *analysis.Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	obj := pass.TypesInfo.Uses[sel.Sel]
	if obj == nil {
		return
	}
	path, name, ok := pkgFunc(obj)
	if !ok || (path != "math/rand" && path != "math/rand/v2") || name != "New" {
		return
	}
	if len(call.Args) >= 1 {
		if inner, ok := call.Args[0].(*ast.CallExpr); ok {
			if isel, ok := inner.Fun.(*ast.SelectorExpr); ok {
				if iobj := pass.TypesInfo.Uses[isel.Sel]; iobj != nil {
					if ipath, iname, ok := pkgFunc(iobj); ok &&
						(ipath == "math/rand" || ipath == "math/rand/v2") &&
						(iname == "NewSource" || iname == "NewPCG" || iname == "NewChaCha8") {
						return // visibly seeded
					}
				}
			}
		}
	}
	pass.Reportf(call.Pos(), "rand.New without a visible rand.NewSource(seed): seed provenance must be auditable (derive from the root seed)")
}

func checkMapRange(pass *analysis.Pass, rs *ast.RangeStmt) {
	t := pass.TypeOf(rs.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		selection := pass.TypesInfo.Selections[sel]
		if selection == nil || selection.Kind() != types.MethodVal {
			return true
		}
		fn := selection.Obj().(*types.Func)
		if !emissionMethods[fn.Name()] {
			return true
		}
		if fn.Pkg() == nil || !strings.HasPrefix(fn.Pkg().Path(), "mpichgq/") {
			return true
		}
		pass.Reportf(call.Pos(), "%s called while ranging over a map: Go's random iteration order leaks into the event sequence and breaks bit-determinism; collect and sort the keys first", fn.Name())
		return true
	})
}
