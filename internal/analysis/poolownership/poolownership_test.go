package poolownership_test

import (
	"testing"

	"mpichgq/internal/analysis/analysistest"
	"mpichgq/internal/analysis/poolownership"
)

func TestPoolOwnership(t *testing.T) {
	analysistest.Run(t, "testdata", poolownership.Analyzer, "a", "seg")
}
