// Package poolownership defines an analyzer enforcing the packet- and
// segment-pool ownership discipline from docs/performance.md.
//
// PR 4 made steady-state packet traffic allocation-free by recycling
// Packet and segment structs through freelists. That only works under
// an exactly-once ownership rule: every Network.AllocPacket /
// Stack.allocSeg result must, on every control-flow path, reach
// exactly one of
//
//   - the matching free (Network.FreePacket / Stack.freeSeg), or
//   - a consuming handoff (passed to a send/deliver/enqueue call,
//     stored into a struct, slice, map, or channel, or returned).
//
// Leaking a pooled struct quietly re-introduces per-packet garbage;
// freeing one twice aliases two live packets onto one struct and
// corrupts a simulation far from the bug. The flow-sensitive tracking
// itself lives in the shared ownership engine
// (internal/analysis/ownership); this package supplies the alloc/free
// recognition rules.
package poolownership

import (
	"go/ast"
	"go/types"

	"mpichgq/internal/analysis"
	"mpichgq/internal/analysis/ownership"
	"mpichgq/internal/analysis/summary"
)

// Analyzer reports pool-ownership violations.
var Analyzer = &analysis.Analyzer{
	Name: "poolownership",
	Doc: `enforce exactly-once free/handoff of pooled packet and segment allocations

Tracks every local bound to Network.AllocPacket or Stack.allocSeg and
reports:

  - a leak when some path reaches a return (or the end of the
    variable's scope) with the allocation neither freed nor handed
    off;
  - a double free when FreePacket/freeSeg may be reached twice for
    the same allocation.

Passing the pointer to any call, storing it, or returning it counts
as a consuming handoff; the callee becomes the owner.`,
	Run: run,
}

// allocMethods maps pool-allocation method names to their matching
// free method, which is how alloc/free pairs are recognised across
// netsim (Packet pool) and tcpsim (segment pool).
var allocMethods = map[string]string{
	"AllocPacket": "FreePacket",
	"allocSeg":    "freeSeg",
}

var freeMethods = map[string]bool{
	"FreePacket": true,
	"freeSeg":    true,
}

func run(pass *analysis.Pass) error {
	// Interprocedural summaries let the ownership engine see through
	// same-package helpers: a freeAndLog(pkt) helper settles the
	// packet (so a second free is a reported double free), and a
	// helper that merely inspects it leaves ownership — and the leak
	// obligation — with the caller.
	sums := summary.Compute(pass, &summary.Recognizer{
		Name: "free",
		Match: func(pass *analysis.Pass, call *ast.CallExpr) (*types.Var, bool) {
			v, _, ok := freeCall(pass, call)
			return v, ok
		},
	})
	return ownership.Run(pass, ownership.Rules{
		Alloc:        allocCall,
		Settle:       freeCall,
		SettleName:   func(what string) string { return allocMethods[what] },
		ReportDouble: true,
		DoubleNote:   "double free corrupts the freelist",
		Summaries:    sums,
	})
}

// allocCall reports whether expr is a pool-allocation method call.
func allocCall(pass *analysis.Pass, expr ast.Expr) (string, bool) {
	call, ok := expr.(*ast.CallExpr)
	if !ok {
		return "", false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	if _, isAlloc := allocMethods[sel.Sel.Name]; !isAlloc {
		return "", false
	}
	// Must resolve to a method (not a field or standalone func).
	if selection := pass.TypesInfo.Selections[sel]; selection == nil || selection.Kind() != types.MethodVal {
		return "", false
	}
	return sel.Sel.Name, true
}

// freeCall matches recv.FreePacket(p) / s.freeSeg(seg) and returns the
// freed variable.
func freeCall(pass *analysis.Pass, call *ast.CallExpr) (*types.Var, string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !freeMethods[sel.Sel.Name] || len(call.Args) != 1 {
		return nil, "", false
	}
	if selection := pass.TypesInfo.Selections[sel]; selection == nil || selection.Kind() != types.MethodVal {
		return nil, "", false
	}
	id, ok := call.Args[0].(*ast.Ident)
	if !ok {
		return nil, "", false
	}
	v, _ := pass.ObjectOf(id).(*types.Var)
	if v == nil {
		return nil, "", false
	}
	return v, sel.Sel.Name, true
}
