// Package a is the seeded-violation fixture for the poolownership
// analyzer. The pool type mirrors netsim.Network's packet pool and
// tcpsim.Stack's segment pool by method name, which is how the
// analyzer recognises alloc/free pairs.
package a

type packet struct {
	size int
	next *packet
}

type pool struct {
	free []*packet
	held *packet
}

func (n *pool) AllocPacket() *packet { return &packet{} }
func (n *pool) FreePacket(p *packet) { n.free = append(n.free, p) }

// deliver consumes the packet (stores it), so passing to it is a real
// hand-off under the interprocedural engine — mirroring netsim's
// deliver/enqueue helpers, which always store or free.
func (n *pool) deliver(p *packet) { n.held = p }

// --- leaks ---

func straightLineLeak(n *pool) {
	p := n.AllocPacket() // want `AllocPacket result may leak`
	p.size = 64
}

func earlyReturnLeak(n *pool, drop bool) {
	p := n.AllocPacket() // want `AllocPacket result may leak: this path \(line 35\)`
	if drop {
		return // leaks p
	}
	n.FreePacket(p)
}

func branchLeak(n *pool, ok bool) {
	p := n.AllocPacket() // want `AllocPacket result may leak`
	if ok {
		n.FreePacket(p)
	}
	// fallthrough path still owns p
}

func loopScopeLeak(n *pool, count int, drop []bool) {
	for i := 0; i < count; i++ {
		p := n.AllocPacket() // want `AllocPacket result may leak`
		if drop[i] {
			continue // leaks this iteration's packet
		}
		n.deliver(p)
	}
}

func reassignLeak(n *pool) {
	p := n.AllocPacket() // want `AllocPacket result may leak: p is reassigned`
	p = n.AllocPacket()
	n.FreePacket(p)
}

// --- double frees ---

func doubleFree(n *pool) {
	p := n.AllocPacket()
	n.FreePacket(p)
	n.FreePacket(p) // want `FreePacket may be called twice`
}

func branchDoubleFree(n *pool, early bool) {
	p := n.AllocPacket()
	if early {
		n.FreePacket(p)
	}
	n.FreePacket(p) // want `FreePacket may be called twice`
}

// --- correct code ---

func freedOnEveryPath(n *pool, drop bool) {
	p := n.AllocPacket()
	if drop {
		n.FreePacket(p)
		return
	}
	p.size = 64
	n.FreePacket(p)
}

func handoff(n *pool) {
	p := n.AllocPacket()
	p.size = 64
	n.deliver(p) // ownership transferred to the callee
}

func returned(n *pool) *packet {
	p := n.AllocPacket()
	return p // ownership transferred to the caller
}

func storedInStruct(n *pool) {
	p := n.AllocPacket()
	n.held = p // stored: the structure now owns it
}

func deferredFree(n *pool) {
	p := n.AllocPacket()
	defer n.FreePacket(p)
	p.size = 64
}

func switchFree(n *pool, mode int) {
	p := n.AllocPacket()
	switch mode {
	case 0:
		n.FreePacket(p)
	default:
		n.deliver(p)
	}
}

func panicPathMayDrop(n *pool, bad bool) {
	p := n.AllocPacket()
	if bad {
		panic("crash paths may drop pooled structs")
	}
	n.FreePacket(p)
}

func suppressedLeak(n *pool) {
	//lint:ignore poolownership fixture proves suppression works for this analyzer too
	p := n.AllocPacket()
	p.size = 1
}
