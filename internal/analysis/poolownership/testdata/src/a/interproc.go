// Interprocedural cases: the summary layer tracks frees and hand-offs
// through same-package helpers, including across fixture files (this
// file's functions call helpers defined here and types from a.go).
package a

// freeAndLog frees its packet — callers passing a packet here have
// settled it, exactly as if they called FreePacket themselves.
func freeAndLog(n *pool, p *packet) {
	n.FreePacket(p)
}

// recycle settles transitively: two helper hops deep.
func recycle(n *pool, p *packet) {
	freeAndLog(n, p)
}

// inspect only reads the packet: ownership stays with the caller.
func inspect(p *packet) int {
	return p.size
}

// stash consumes: the packet lands in package state.
var stashed *packet

func stash(p *packet) { stashed = p }

// --- leaks only an interprocedural pass can catch ---

func readOnlyHelperLeak(n *pool) {
	p := n.AllocPacket() // want `AllocPacket result may leak`
	_ = inspect(p)       // inspect only reads p: the free obligation stays here
}

func readOnlyThenEarlyReturnLeak(n *pool, drop bool) {
	p := n.AllocPacket() // want `AllocPacket result may leak: this path \(line 38\)`
	if drop {
		_ = inspect(p)
		return // inspect did not consume p: this path leaks it
	}
	n.FreePacket(p)
}

// --- frees through helpers are settles, not blind hand-offs ---

func freeViaHelper(n *pool) {
	p := n.AllocPacket()
	freeAndLog(n, p) // helper frees: settled, no leak
}

func freeViaHelperChain(n *pool) {
	p := n.AllocPacket()
	recycle(n, p) // settled two hops deep
}

func doubleFreeViaHelper(n *pool) {
	p := n.AllocPacket()
	freeAndLog(n, p)
	n.FreePacket(p) // want `FreePacket may be called twice`
}

func helperThenHelperDoubleFree(n *pool) {
	p := n.AllocPacket()
	freeAndLog(n, p)
	recycle(n, p) // want `recycle settles this AllocPacket result again`
}

// --- consuming helpers still hand off ---

func stashHandoff(n *pool) {
	p := n.AllocPacket()
	stash(p) // stored in package state: hand-off, no leak here
}

func readThenFree(n *pool) {
	p := n.AllocPacket()
	_ = inspect(p) // read-only: still ours
	n.FreePacket(p)
}

// --- mutual recursion through the SCC fixpoint ---

func pingFree(n *pool, p *packet, depth int) {
	if depth <= 0 {
		n.FreePacket(p)
		return
	}
	pongFree(n, p, depth-1)
}

func pongFree(n *pool, p *packet, depth int) {
	pingFree(n, p, depth)
}

func mutualRecursionFree(n *pool) {
	p := n.AllocPacket()
	pingFree(n, p, 3) // the ping/pong SCC settles p
}
