// Package seg exercises the tcpsim-style segment pool spelling
// (allocSeg/freeSeg) of the ownership rules.
package seg

type segment struct{ len int }

type stack struct {
	free     []*segment
	inflight *segment
}

func (s *stack) allocSeg() *segment { return &segment{} }
func (s *stack) freeSeg(g *segment) { s.free = append(s.free, g) }

// transmit consumes the segment (stores it for retransmission), so
// passing to it hands ownership off, as in the real tcpsim.
func (s *stack) transmit(g *segment) { s.inflight = g }

func leak(s *stack, skip bool) {
	g := s.allocSeg() // want `allocSeg result may leak`
	if skip {
		return
	}
	s.freeSeg(g)
}

func doubleFree(s *stack) {
	g := s.allocSeg()
	s.freeSeg(g)
	s.freeSeg(g) // want `freeSeg may be called twice`
}

func ok(s *stack, retx bool) {
	g := s.allocSeg()
	if retx {
		s.transmit(g)
		return
	}
	s.freeSeg(g)
}
