package analysis

import (
	"go/token"
	"path/filepath"
	"strings"
	"testing"
)

const suppressFixture = `package p

func a() int {
	//lint:ignore testcheck covered finding on the next line
	return 1
}

func b() int {
	//lint:ignore testcheck nothing fires here anymore
	return 2
}

func c() int {
	//lint:ignore testcheck
	return 3
}

func d() int {
	//lint:ignore othercheck analyzer not run this session
	return 4
}

func e() int {
	//lint:ignore nosuchcheck typo'd analyzer name
	return 5
}

func f() int {
	//lint:ignore * blanket directive with nothing underneath
	return 6
}

func g() int {
	//lint:ignore testcheck finding is two lines down, out of range

	return 7
}
`

// loadSuppressFixture loads the fixture and returns the package plus a
// line lookup for statements ("return 1" -> line number).
func loadSuppressFixture(t *testing.T) (*Package, func(string) int) {
	t.Helper()
	root := writeModule(t, map[string]string{"p/p.go": suppressFixture})
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := l.LoadDir(filepath.Join(root, "p"))
	if err != nil {
		t.Fatal(err)
	}
	lineOf := func(substr string) int {
		for i, line := range strings.Split(suppressFixture, "\n") {
			if strings.Contains(line, substr) {
				return i + 1
			}
		}
		t.Fatalf("fixture has no line containing %q", substr)
		return 0
	}
	return pkg, lineOf
}

func posAtLine(pkg *Package, line int) token.Pos {
	return pkg.Fset.File(pkg.Files[0].Package).LineStart(line)
}

func TestMarkSuppressed(t *testing.T) {
	pkg, lineOf := loadSuppressFixture(t)
	diags := []Diagnostic{
		{Pos: posAtLine(pkg, lineOf("return 1")), Analyzer: "testcheck", Message: "finding in a"},
		// Covered by c's directive line-wise, but that directive has no
		// justification, so it is inert.
		{Pos: posAtLine(pkg, lineOf("return 3")), Analyzer: "testcheck", Message: "finding in c"},
		// g's directive is two lines above the finding: out of range.
		{Pos: posAtLine(pkg, lineOf("return 7")), Analyzer: "testcheck", Message: "finding in g"},
		// Wrong analyzer under a's style of directive: d's directive names
		// othercheck, the finding is from testcheck.
		{Pos: posAtLine(pkg, lineOf("return 4")), Analyzer: "testcheck", Message: "finding in d"},
	}
	MarkSuppressed(pkg, diags)
	want := []bool{true, false, false, false}
	for i, w := range want {
		if diags[i].Suppressed != w {
			t.Errorf("diag %d (%s): suppressed = %v, want %v", i, diags[i].Message, diags[i].Suppressed, w)
		}
	}
}

func TestStaleSuppressions(t *testing.T) {
	pkg, lineOf := loadSuppressFixture(t)
	diags := []Diagnostic{
		{Pos: posAtLine(pkg, lineOf("return 1")), Analyzer: "testcheck", Message: "finding in a"},
		{Pos: posAtLine(pkg, lineOf("return 7")), Analyzer: "testcheck", Message: "finding in g"},
	}
	MarkSuppressed(pkg, diags)

	staleLines := func(stale []Diagnostic) []int {
		var lines []int
		for _, d := range stale {
			lines = append(lines, pkg.Fset.Position(d.Pos).Line)
		}
		return lines
	}

	// Partial run: only testcheck executed. Directives naming other
	// analyzers are skipped; b, f (blanket), and g (wrong line) are
	// stale. c's directive has no justification and is inert, so it is
	// not a directive at all.
	stale := StaleSuppressions(pkg, diags, []string{"testcheck"}, false)
	wantLines := []int{
		lineOf("nothing fires here anymore"),
		lineOf("blanket directive"),
		lineOf("two lines down"),
	}
	got := staleLines(stale)
	if len(got) != len(wantLines) {
		t.Fatalf("partial run: stale at lines %v, want %v", got, wantLines)
	}
	for i := range wantLines {
		if got[i] != wantLines[i] {
			t.Errorf("partial run: stale[%d] at line %d, want %d", i, got[i], wantLines[i])
		}
	}

	// Complete run: the same three plus the two directives naming
	// analyzers outside the registered set, reported as unknown.
	stale = StaleSuppressions(pkg, diags, []string{"testcheck"}, true)
	if len(stale) != 5 {
		t.Fatalf("complete run: %d stale findings, want 5: %v", len(stale), staleLines(stale))
	}
	unknown := 0
	for _, d := range stale {
		if d.Analyzer != "suppression" {
			t.Errorf("stale finding has analyzer %q, want %q", d.Analyzer, "suppression")
		}
		if strings.Contains(d.Message, "unknown analyzer") {
			unknown++
		}
	}
	if unknown != 2 {
		t.Errorf("complete run: %d unknown-analyzer findings, want 2", unknown)
	}
}

func TestStaleSuppressionsAllLive(t *testing.T) {
	pkg, lineOf := loadSuppressFixture(t)
	// Every justified directive suppresses something: nothing stale.
	var diags []Diagnostic
	for _, stmt := range []string{"return 1", "return 2", "return 4", "return 5", "return 6"} {
		diags = append(diags, Diagnostic{Pos: posAtLine(pkg, lineOf(stmt)), Analyzer: "testcheck", Message: "finding"})
	}
	diags = append(diags, Diagnostic{Pos: posAtLine(pkg, lineOf("return 4")), Analyzer: "othercheck", Message: "finding"})
	diags = append(diags, Diagnostic{Pos: posAtLine(pkg, lineOf("return 5")), Analyzer: "nosuchcheck", Message: "finding"})
	// g's directive can never cover its finding (wrong line): drop g
	// from this scenario by suppressing nothing there — instead place a
	// finding on the directive's own line (trailing-comment form).
	diags = append(diags, Diagnostic{Pos: posAtLine(pkg, lineOf("two lines down")), Analyzer: "testcheck", Message: "finding"})
	MarkSuppressed(pkg, diags)
	stale := StaleSuppressions(pkg, diags, []string{"testcheck", "othercheck", "nosuchcheck"}, true)
	if len(stale) != 0 {
		var lines []int
		for _, d := range stale {
			lines = append(lines, pkg.Fset.Position(d.Pos).Line)
		}
		t.Errorf("stale findings at lines %v, want none", lines)
	}
}
