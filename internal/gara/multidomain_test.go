package gara

import (
	"testing"
	"time"

	"mpichgq/internal/diffserv"
	"mpichgq/internal/netsim"
	"mpichgq/internal/sim"
	"mpichgq/internal/units"
)

// twoDomains builds
//
//	hostA - e1 - c1 ===border=== c2 - e2 - hostB
//
// with domain 1 owning {hostA-e1, e1-c1, border} and domain 2 owning
// {c2-e2, e2-hostB}, each with its own Gara and scoped NetworkRM.
type twoDomainRig struct {
	k            *sim.Kernel
	net          *netsim.Network
	hostA, hostB *netsim.Node
	c1, c2       *netsim.Node
	border       *netsim.Link
	g1, g2       *Gara
	rm1, rm2     *NetworkRM
	md           *MultiDomain
}

func newTwoDomains() *twoDomainRig {
	k := sim.New(1)
	n := netsim.New(k)
	hostA, e1, c1 := n.AddNode("hostA"), n.AddNode("e1"), n.AddNode("c1")
	c2, e2, hostB := n.AddNode("c2"), n.AddNode("e2"), n.AddNode("hostB")
	l1 := n.Connect(hostA, e1, 100*units.Mbps, time.Millisecond)
	l2 := n.Connect(e1, c1, 100*units.Mbps, time.Millisecond)
	border := n.Connect(c1, c2, 50*units.Mbps, 2*time.Millisecond)
	l4 := n.Connect(c2, e2, 100*units.Mbps, time.Millisecond)
	l5 := n.Connect(e2, hostB, 100*units.Mbps, time.Millisecond)
	n.ComputeRoutes()

	dom1 := diffserv.NewDomain(k)
	dom1.EnableEFAll(e1, c1)
	dom2 := diffserv.NewDomain(k)
	dom2.EnableEFAll(c2, e2)

	rm1 := NewNetworkRM(n, dom1, 0.5)
	rm1.Scope = LinkScope(l1, l2, border)
	rm2 := NewNetworkRM(n, dom2, 0.5)
	rm2.Scope = LinkScope(l4, l5)

	g1, g2 := New(k), New(k)
	g1.Register(rm1)
	g2.Register(rm2)
	return &twoDomainRig{
		k: k, net: n, hostA: hostA, hostB: hostB, c1: c1, c2: c2,
		border: border, g1: g1, g2: g2, rm1: rm1, rm2: rm2,
		md: NewMultiDomain(g1, g2),
	}
}

func (r *twoDomainRig) spec(bw units.BitRate) Spec {
	return Spec{
		Type:      ResourceNetwork,
		Flow:      diffserv.MatchHostPair(r.hostA.Addr(), r.hostB.Addr(), netsim.ProtoUDP),
		Bandwidth: bw,
	}
}

func TestMultiDomainReserveBooksBothSegments(t *testing.T) {
	r := newTwoDomains()
	rs, err := r.md.Reserve(r.spec(10 * units.Mbps))
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 {
		t.Fatalf("segments = %d, want one per domain", len(rs))
	}
	// Domain 1 booked the border link; domain 2 booked its leg.
	if r.rm1.Utilization(r.border, r.k.Now()) == 0 {
		t.Fatal("domain 1 did not book the border link")
	}
	if r.rm2.Utilization(r.net.Links()[3], r.k.Now()) == 0 {
		t.Fatal("domain 2 did not book its segment")
	}
	// Only the originating domain installed an edge rule.
	if r.rm1.Enforcement(rs[0]) == nil {
		t.Fatal("originating domain should install edge marking")
	}
	if r.rm2.Enforcement(rs[1]) != nil {
		t.Fatal("transit/destination domain must not re-mark")
	}
	CancelAll(rs)
	if r.rm1.Utilization(r.border, r.k.Now()) != 0 {
		t.Fatal("cancel did not release domain 1 capacity")
	}
}

func TestMultiDomainRollsBackOnDownstreamRefusal(t *testing.T) {
	r := newTwoDomains()
	// Fill domain 2's e2-hostB EF share (0.5*100 = 50 Mb/s).
	hb := r.hostB.Addr()
	c2a := r.c2.Addr()
	_ = c2a
	pre, err := r.g2.Reserve(Spec{
		Type:      ResourceNetwork,
		Flow:      diffserv.MatchHostPair(r.net.Node("e2").Addr(), hb, netsim.ProtoTCP),
		Bandwidth: 45 * units.Mbps,
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = pre
	// End-to-end 10 Mb/s still fits (45+10 > 50 refuses).
	if _, err := r.md.Reserve(r.spec(10 * units.Mbps)); err == nil {
		t.Fatal("downstream refusal expected")
	}
	// Domain 1 must hold nothing after rollback.
	if r.rm1.Utilization(r.border, r.k.Now()) != 0 {
		t.Fatal("rollback left capacity booked in domain 1")
	}
}

func TestMultiDomainEndToEndProtection(t *testing.T) {
	r := newTwoDomains()
	rs, err := r.md.Reserve(r.spec(10 * units.Mbps))
	if err != nil {
		t.Fatal(err)
	}
	defer CancelAll(rs)
	// Blast both domains' shared links best effort.
	blastTo := func(from, to *netsim.Node, port netsim.Port) {
		sock, err := from.UDPStack().Bind(0)
		if err != nil {
			t.Fatal(err)
		}
		to.UDPStack() // ensure sink stack exists (drops are fine)
		r.k.Spawn("blast", func(ctx *sim.Ctx) {
			gap := (60 * units.Mbps).TimeToSend(1028)
			for ctx.Now() < 10*time.Second {
				sock.SendTo(to.Addr(), port, 1000, nil)
				ctx.Sleep(gap)
			}
		})
	}
	blastTo(r.net.Node("e1"), r.net.Node("e2"), 9000) // crosses the 50 Mb/s border
	var rx int64
	sink, err := r.hostB.UDPStack().Bind(700)
	if err != nil {
		t.Fatal(err)
	}
	r.k.Spawn("sink", func(ctx *sim.Ctx) {
		for {
			dg, err := sink.Recv(ctx)
			if err != nil {
				return
			}
			rx += int64(dg.Len)
		}
	})
	src, err := r.hostA.UDPStack().Bind(0)
	if err != nil {
		t.Fatal(err)
	}
	r.k.Spawn("prem", func(ctx *sim.Ctx) {
		gap := (9 * units.Mbps).TimeToSend(1028)
		for ctx.Now() < 10*time.Second {
			src.SendTo(r.hostB.Addr(), 700, 1000, nil)
			ctx.Sleep(gap)
		}
	})
	if err := r.k.RunUntil(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	rate := units.RateOf(units.ByteSize(rx), 10*time.Second)
	if rate < 8*units.Mbps {
		t.Fatalf("cross-domain premium flow achieved %v, want ~9 Mb/s", rate)
	}
}

func TestMultiDomainNoOwningDomain(t *testing.T) {
	r := newTwoDomains()
	// A flow entirely inside domain 2, requested through a
	// coordinator that only knows domain 1's Gara.
	md := NewMultiDomain(r.g1)
	spec := Spec{
		Type:      ResourceNetwork,
		Flow:      diffserv.MatchHostPair(r.net.Node("e2").Addr(), r.hostB.Addr(), netsim.ProtoTCP),
		Bandwidth: units.Mbps,
	}
	if _, err := md.Reserve(spec); err == nil {
		t.Fatal("no owning domain should be an error")
	}
}
