package gara

import (
	"fmt"
	"sort"
	"time"

	"mpichgq/internal/diffserv"
	"mpichgq/internal/netsim"
	"mpichgq/internal/sim"
	"mpichgq/internal/units"
)

// NetworkRM is GARA's Differentiated Services resource manager plus
// bandwidth broker: it performs per-link admission control against the
// EF share of each link on the flow's path, and enforces admitted
// reservations by installing token-bucket classifier rules at the edge
// router's ingress interface.
type NetworkRM struct {
	k          *sim.Kernel
	net        *netsim.Network
	domain     *diffserv.Domain
	efFraction float64
	// tables book EF capacity per transmit direction: the key is the
	// egress interface, so a full-duplex link offers its EF share
	// independently in each direction.
	tables map[*netsim.Iface]*SlotTable

	// DepthDivisor is the bucket policy used when a spec does not fix
	// a depth: depth = bandwidth / DepthDivisor (§4.3's
	// bandwidth/40 default).
	DepthDivisor int
	// Exceed is the policer's out-of-profile action (drop, per the
	// testbed configuration).
	Exceed diffserv.ExceedAction
	// Scope restricts this manager to the links its administrative
	// domain owns; nil owns everything. With a scope set, Admit books
	// only in-scope hops (ErrNotInDomain when there are none) and
	// Activate installs edge marking only when the flow *originates*
	// in this domain — transit domains honor the upstream marking.
	Scope Scope
	// Name identifies this manager in flight-recorder events and
	// metrics labels ("netrm" by default; multi-domain setups name
	// each RM after its domain).
	Name string
	// Journal, when set, write-ahead logs every booking operation so
	// Recover can rebuild the RM's state after Crash. Nil disables
	// journaling (the healthy-path default: zero overhead).
	Journal *Journal

	// active tracks reservations currently enforced, so topology
	// changes can re-validate their booked paths.
	active map[uint64]*Reservation
	// attach holds per-reservation enforcement state keyed by id —
	// the state a crash wipes and Recover rebuilds.
	attach map[uint64]*netAttachment
	// leases tracks prepared (uncommitted) bookings by absolute lease
	// expiry, so recovery can reconcile half-prepared bookings.
	leases map[uint64]time.Duration
}

// netAttachment is the NetworkRM's per-reservation enforcement state,
// kept in NetworkRM.attach keyed by reservation id: the full path
// booked at admission (for health checks after topology changes) and
// the installed edge rule, nil for transit segments.
type netAttachment struct {
	hops []*netsim.Iface
	fr   *diffserv.FlowReservation
}

// NewNetworkRM returns a manager that admits EF reservations up to
// efFraction of each link's rate (the broker's anti-starvation limit:
// "the number of expedited packets must be carefully limited").
func NewNetworkRM(net *netsim.Network, domain *diffserv.Domain, efFraction float64) *NetworkRM {
	if efFraction <= 0 || efFraction > 1 {
		panic(fmt.Sprintf("gara: EF fraction %v out of (0, 1]", efFraction))
	}
	rm := &NetworkRM{
		k:            net.Kernel(),
		net:          net,
		domain:       domain,
		efFraction:   efFraction,
		tables:       make(map[*netsim.Iface]*SlotTable),
		DepthDivisor: diffserv.NormalBucketDivisor,
		Exceed:       diffserv.ExceedDrop,
		Name:         "netrm",
		active:       make(map[uint64]*Reservation),
		attach:       make(map[uint64]*netAttachment),
		leases:       make(map[uint64]time.Duration),
	}
	// Re-validate enforced reservations whenever the topology changes.
	// Healthy runs never trigger this: links only change state under
	// fault injection.
	net.OnTopologyChange(rm.checkPaths)
	return rm
}

// Type implements ResourceManager.
func (rm *NetworkRM) Type() ResourceType { return ResourceNetwork }

func (rm *NetworkRM) table(out *netsim.Iface) *SlotTable {
	st := rm.tables[out]
	if st == nil {
		st = NewSlotTable(float64(out.Link().Rate()) * rm.efFraction)
		rm.tables[out] = st
	}
	return st
}

// Table exposes one transmit direction's slot table (for inspection
// tools): the table of the given egress interface.
func (rm *NetworkRM) Table(out *netsim.Iface) *SlotTable { return rm.table(out) }

// path walks the routing tables from src to dst, returning the egress
// interfaces traversed (the capacity consumed, per direction) and the
// ingress interface of the first router (where edge classification
// and policing happen).
func (rm *NetworkRM) path(src, dst netsim.Addr) ([]*netsim.Iface, *netsim.Iface, error) {
	var srcNode *netsim.Node
	for _, nd := range rm.net.Nodes() {
		if nd.Addr() == src {
			srcNode = nd
			break
		}
	}
	if srcNode == nil {
		return nil, nil, fmt.Errorf("gara: unknown source address %d", src)
	}
	var hops []*netsim.Iface
	var edgeIngress *netsim.Iface
	node := srcNode
	for node.Addr() != dst {
		out := node.RouteTo(dst)
		if out == nil {
			return nil, nil, fmt.Errorf("gara: no route from %q toward %d", node.Name(), dst)
		}
		if !out.Link().Up() {
			// Bandwidth cannot be promised across a dead link; with
			// static routing this makes admission (and reattach) fail
			// until the link returns or routes are recomputed.
			return nil, nil, fmt.Errorf("gara: link %s on the path is down", out.Link().Name())
		}
		hops = append(hops, out)
		if edgeIngress == nil {
			edgeIngress = out.Peer()
		}
		node = out.Peer().Node()
		if len(hops) > len(rm.net.Nodes()) {
			return nil, nil, fmt.Errorf("gara: routing loop toward %d", dst)
		}
	}
	if len(hops) == 0 {
		return nil, nil, fmt.Errorf("gara: source and destination are the same node")
	}
	return hops, edgeIngress, nil
}

func specPath(spec Spec) (netsim.Addr, netsim.Addr, error) {
	if spec.Flow.Src == nil || spec.Flow.Dst == nil {
		return 0, 0, fmt.Errorf("gara: network spec must pin flow source and destination")
	}
	return *spec.Flow.Src, *spec.Flow.Dst, nil
}

// Admit implements ResourceManager: book spec.Bandwidth on every link
// of the path for the reservation window.
func (rm *NetworkRM) Admit(r *Reservation) error {
	spec := r.spec
	if spec.Bandwidth <= 0 {
		return fmt.Errorf("gara: non-positive bandwidth %v", spec.Bandwidth)
	}
	src, dst, err := specPath(spec)
	if err != nil {
		return err
	}
	hops, _, err := rm.path(src, dst)
	if err != nil {
		return err
	}
	hops = rm.owned(hops)
	if len(hops) == 0 {
		return ErrNotInDomain
	}
	var booked []*netsim.Iface
	for _, out := range hops {
		if err := rm.table(out).Insert(r.id, r.start, r.end, float64(spec.Bandwidth)); err != nil {
			for _, b := range booked {
				rm.table(b).Remove(r.id)
			}
			return fmt.Errorf("gara: admission failed on link %s: %w", out.Link().Name(), err)
		}
		booked = append(booked, out)
	}
	rm.journal(JournalRecord{Op: OpBook, ID: r.id, Spec: spec, Start: r.start, End: r.end})
	return nil
}

// Release implements ResourceManager.
func (rm *NetworkRM) Release(r *Reservation) {
	removed := false
	for _, st := range rm.tables {
		if st.Remove(r.id) {
			removed = true
		}
	}
	delete(rm.leases, r.id)
	if removed {
		rm.journal(JournalRecord{Op: OpRelease, ID: r.id})
	}
}

// depthFor computes the token bucket depth for a spec.
func (rm *NetworkRM) depthFor(spec Spec) units.ByteSize {
	if spec.BucketDepth > 0 {
		return spec.BucketDepth
	}
	return diffserv.DepthForRate(spec.Bandwidth, rm.DepthDivisor)
}

// Activate implements ResourceManager: install the classify+mark+
// police rule at the edge ingress. Scoped managers only do this when
// the flow originates in their domain; transit segments need no rule
// (packets arrive already marked EF and ride the aggregate).
func (rm *NetworkRM) Activate(r *Reservation) error {
	src, dst, err := specPath(r.spec)
	if err != nil {
		return err
	}
	hops, edgeIngress, err := rm.path(src, dst)
	if err != nil {
		return err
	}
	att := &netAttachment{hops: hops}
	if rm.Scope == nil || rm.Scope(hops[0]) {
		att.fr = rm.domain.ReserveFlow(edgeIngress, r.spec.Flow, r.spec.Bandwidth, rm.depthFor(r.spec), rm.Exceed)
	}
	// Transit domains install no rule but still track the reservation:
	// their booked hops can break too.
	rm.attach[r.id] = att
	rm.active[r.id] = r
	rm.journal(JournalRecord{Op: OpActivate, ID: r.id, Edge: att.fr != nil})
	return nil
}

// Enforcement returns the edge rule installed for r, or nil (transit
// segment or not active). Inspection/test helper.
func (rm *NetworkRM) Enforcement(r *Reservation) *diffserv.FlowReservation {
	if att := rm.attach[r.id]; att != nil {
		return att.fr
	}
	return nil
}

// owned filters hops to this manager's scope.
func (rm *NetworkRM) owned(hops []*netsim.Iface) []*netsim.Iface {
	if rm.Scope == nil {
		return hops
	}
	var out []*netsim.Iface
	for _, h := range hops {
		if rm.Scope(h) {
			out = append(out, h)
		}
	}
	return out
}

// Deactivate implements ResourceManager.
func (rm *NetworkRM) Deactivate(r *Reservation) {
	att := rm.attach[r.id]
	if att == nil && rm.active[r.id] == nil {
		return
	}
	delete(rm.active, r.id)
	delete(rm.attach, r.id)
	if att != nil && att.fr != nil {
		att.fr.Remove()
		att.fr = nil
	}
	rm.journal(JournalRecord{Op: OpDeactivate, ID: r.id})
}

// Modify implements ResourceManager: rebook the path slots at the new
// bandwidth/window and retune the installed token bucket in place.
// The flow itself (endpoints) may not change.
func (rm *NetworkRM) Modify(r *Reservation, spec Spec) error {
	oldSrc, oldDst, _ := specPath(r.spec)
	newSrc, newDst, err := specPath(spec)
	if err != nil {
		return err
	}
	if oldSrc != newSrc || oldDst != newDst {
		return fmt.Errorf("gara: cannot modify a reservation's endpoints")
	}
	hops, _, err := rm.path(newSrc, newDst)
	if err != nil {
		return err
	}
	hops = rm.owned(hops)
	now := rm.k.Now()
	start, end := spec.window(now)
	if r.state == StateActive {
		start = r.start // enforcement already began
	}
	var done []*netsim.Iface
	for _, out := range hops {
		if err := rm.table(out).Update(r.id, start, end, float64(spec.Bandwidth)); err != nil {
			for _, d := range done {
				rm.table(d).Update(r.id, r.start, r.end, float64(r.spec.Bandwidth))
			}
			return err
		}
		done = append(done, out)
	}
	r.spec = spec
	r.start, r.end = start, end
	rm.journal(JournalRecord{Op: OpBook, ID: r.id, Spec: spec, Start: start, End: end})
	if r.state == StateActive {
		if fr := rm.Enforcement(r); fr != nil {
			fr.SetRate(spec.Bandwidth)
			fr.SetDepth(rm.depthFor(spec))
		}
		r.endTimer.Cancel()
		r.armEnd()
	}
	return nil
}

// checkPaths re-validates every enforced reservation after a topology
// change: a reservation whose booked path contains a down link, or
// whose current route no longer matches the booked hops, is degraded
// (enforcement removed, capacity released). Reservations are visited
// in id order so fault handling stays deterministic.
func (rm *NetworkRM) checkPaths() {
	ids := make([]uint64, 0, len(rm.active))
	for id := range rm.active {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		r := rm.active[id]
		if r == nil || r.state != StateActive {
			continue
		}
		if !rm.pathHealthy(r) {
			r.Degrade() // Deactivate drops it from rm.active
		}
	}
}

// pathHealthy reports whether r's booked hops are all in service and
// still what the routing tables would choose.
func (rm *NetworkRM) pathHealthy(r *Reservation) bool {
	att := rm.attach[r.id]
	if att == nil {
		return true // nothing booked to go stale
	}
	for _, out := range att.hops {
		if !out.Link().Up() {
			return false
		}
	}
	src, dst, err := specPath(r.spec)
	if err != nil {
		return true
	}
	hops, _, err := rm.path(src, dst)
	if err != nil {
		return false // destination became unreachable
	}
	if len(hops) != len(att.hops) {
		return false
	}
	for i := range hops {
		if hops[i] != att.hops[i] {
			return false
		}
	}
	return true
}

// Reattach implements Reattacher: re-admit the reservation on the
// current path for the remainder of its window and reinstall edge
// enforcement. Fails (leaving the reservation degraded and unbooked)
// when the surviving path lacks EF capacity.
func (rm *NetworkRM) Reattach(r *Reservation) error {
	src, dst, err := specPath(r.spec)
	if err != nil {
		return err
	}
	hops, edgeIngress, err := rm.path(src, dst)
	if err != nil {
		return err
	}
	owned := rm.owned(hops)
	if len(owned) == 0 {
		return ErrNotInDomain
	}
	start := r.start
	if now := rm.k.Now(); start < now {
		start = now // book only the remaining window
	}
	var booked []*netsim.Iface
	for _, out := range owned {
		if err := rm.table(out).Insert(r.id, start, r.end, float64(r.spec.Bandwidth)); err != nil {
			for _, b := range booked {
				rm.table(b).Remove(r.id)
			}
			return fmt.Errorf("gara: reattach failed on link %s: %w", out.Link().Name(), err)
		}
		booked = append(booked, out)
	}
	att := &netAttachment{hops: hops}
	if rm.Scope == nil || rm.Scope(hops[0]) {
		att.fr = rm.domain.ReserveFlow(edgeIngress, r.spec.Flow, r.spec.Bandwidth, rm.depthFor(r.spec), rm.Exceed)
	}
	rm.attach[r.id] = att
	rm.active[r.id] = r
	rm.journal(JournalRecord{Op: OpBook, ID: r.id, Spec: r.spec, Start: start, End: r.end})
	rm.journal(JournalRecord{Op: OpActivate, ID: r.id, Edge: att.fr != nil})
	return nil
}

// Utilization reports the EF commitment on link l at time t as a
// fraction of the link's EF capacity — the maximum over its two
// transmit directions.
func (rm *NetworkRM) Utilization(l *netsim.Link, t time.Duration) float64 {
	util := func(out *netsim.Iface) float64 {
		st := rm.table(out)
		if st.Capacity() == 0 {
			return 0
		}
		return st.CommittedAt(t) / st.Capacity()
	}
	a, b := util(l.A()), util(l.B())
	if a > b {
		return a
	}
	return b
}
