package gara

import (
	"testing"
	"time"

	"mpichgq/internal/sim"
	"mpichgq/internal/units"
)

func TestStorageModify(t *testing.T) {
	r := newRig()
	res, err := r.g.Reserve(Spec{Type: ResourceStorage, Store: r.dpss, ReadRate: 40 * units.Mbps})
	if err != nil {
		t.Fatal(err)
	}
	spec := res.Spec()
	spec.ReadRate = 80 * units.Mbps
	if err := res.Modify(spec); err != nil {
		t.Fatal(err)
	}
	if r.dpss.ReservedRate() != 80*units.Mbps {
		t.Fatalf("reserved = %v, want 80 Mb/s", r.dpss.ReservedRate())
	}
	// Beyond capacity: rejected, old rate intact.
	spec.ReadRate = 200 * units.Mbps
	if err := res.Modify(spec); err == nil {
		t.Fatal("over-capacity modify should fail")
	}
	if r.dpss.ReservedRate() != 80*units.Mbps {
		t.Fatal("failed modify changed enforcement")
	}
	// Moving between servers is rejected.
	other := NewDPSS(r.k, "dpss2", 100*units.Mbps)
	spec.Store = other
	spec.ReadRate = 10 * units.Mbps
	if err := res.Modify(spec); err == nil {
		t.Fatal("moving a storage reservation should fail")
	}
}

func TestCPUModify(t *testing.T) {
	r := newRig()
	task := r.cpu.NewTask("app")
	res, err := r.g.Reserve(Spec{Type: ResourceCPU, Task: task, Fraction: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	spec := res.Spec()
	spec.Fraction = 0.8
	if err := res.Modify(spec); err != nil {
		t.Fatal(err)
	}
	if task.Reservation() != 0.8 {
		t.Fatalf("DSRT share = %v, want 0.8", task.Reservation())
	}
	spec.Fraction = 1.5
	if err := res.Modify(spec); err == nil {
		t.Fatal("fraction above 0.95 should fail")
	}
	other := r.cpu.NewTask("other")
	spec.Task = other
	spec.Fraction = 0.2
	if err := res.Modify(spec); err == nil {
		t.Fatal("moving a CPU reservation between tasks should fail")
	}
}

func TestAdvanceCancelBeforeStart(t *testing.T) {
	r := newRig()
	spec := r.netSpec(4 * units.Mbps)
	spec.Start = 10 * time.Second
	spec.Duration = 10 * time.Second
	res, err := r.g.Reserve(spec)
	if err != nil {
		t.Fatal(err)
	}
	res.Cancel()
	if res.State() != StateCancelled {
		t.Fatalf("state = %v", res.State())
	}
	// The start timer must not fire enforcement later.
	r.k.RunUntil(15 * time.Second)
	edgeIngress := r.net.Links()[0].IfaceOn(r.net.Node("edge"))
	if len(r.domain.Classifier(edgeIngress).Rules()) != 0 {
		t.Fatal("cancelled advance reservation was enforced")
	}
	// And the capacity is free.
	if _, err := r.g.Reserve(r.netSpec(5 * units.Mbps)); err != nil {
		t.Fatalf("capacity not freed: %v", err)
	}
}

func TestModifyExtendsDuration(t *testing.T) {
	r := newRig()
	spec := r.netSpec(2 * units.Mbps)
	spec.Duration = 10 * time.Second
	res, err := r.g.Reserve(spec)
	if err != nil {
		t.Fatal(err)
	}
	spec2 := res.Spec()
	spec2.Duration = 30 * time.Second
	if err := res.Modify(spec2); err != nil {
		t.Fatal(err)
	}
	r.k.RunUntil(15 * time.Second)
	if res.State() != StateActive {
		t.Fatalf("state at 15s = %v, want still active after extension", res.State())
	}
	r.k.RunUntil(31 * time.Second)
	if res.State() != StateExpired {
		t.Fatalf("state at 31s = %v, want expired", res.State())
	}
}

func TestDPSSStarvedBestEffortWaits(t *testing.T) {
	r := newRig()
	// Reserve the whole server; a best-effort session must block
	// until capacity frees.
	res, err := r.g.Reserve(Spec{Type: ResourceStorage, Store: r.dpss, ReadRate: 100 * units.Mbps})
	if err != nil {
		t.Fatal(err)
	}
	be := r.dpss.Open("be")
	var done time.Duration
	r.k.Spawn("reader", func(ctx *sim.Ctx) {
		if err := be.Read(ctx, 1250*units.KB); err != nil { // 10 Mbit
			t.Error(err)
			return
		}
		done = ctx.Now()
	})
	r.k.After(time.Second, func() { res.Cancel() })
	if err := r.k.RunUntil(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	// Blocked for ~1 s, then 10 Mbit at 100 Mb/s = 0.1 s.
	if done < time.Second || done > 1500*time.Millisecond {
		t.Fatalf("starved read finished at %v, want shortly after 1s", done)
	}
	if be.BytesRead() != 1250*units.KB {
		t.Fatalf("bytes read = %v", be.BytesRead())
	}
}

func TestReservationWindowAccessors(t *testing.T) {
	r := newRig()
	spec := r.netSpec(units.Mbps)
	spec.Start = 5 * time.Second
	spec.Duration = 5 * time.Second
	res, err := r.g.Reserve(spec)
	if err != nil {
		t.Fatal(err)
	}
	s, e := res.Window()
	if s != 5*time.Second || e != 10*time.Second {
		t.Fatalf("window = [%v, %v)", s, e)
	}
	if res.ID() == 0 {
		t.Fatal("reservation id should be non-zero")
	}
}

func TestCoReserveTypeMix(t *testing.T) {
	r := newRig()
	task := r.cpu.NewTask("app")
	rs, err := r.g.CoReserve(
		r.netSpec(2*units.Mbps),
		Spec{Type: ResourceCPU, Task: task, Fraction: 0.3},
		Spec{Type: ResourceStorage, Store: r.dpss, ReadRate: 10 * units.Mbps},
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 3 {
		t.Fatalf("co-reserved %d, want 3", len(rs))
	}
	for _, res := range rs {
		if res.State() != StateActive {
			t.Fatalf("state = %v", res.State())
		}
		res.Cancel()
	}
	if r.dpss.ReservedRate() != 0 || task.Reservation() != 0 {
		t.Fatal("cancel did not release all resources")
	}
}
