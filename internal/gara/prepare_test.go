package gara

import (
	"errors"
	"testing"
	"time"

	"mpichgq/internal/units"
)

func (r *twoDomainRig) borderEF() float64 {
	return r.rm1.Utilization(r.border, r.k.Now())
}

func TestPrepareCommitLifecycle(t *testing.T) {
	r := newTwoDomains()
	p, err := r.g1.Prepare(r.spec(10*units.Mbps), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if p.State() != PrepareHeld {
		t.Fatalf("state = %v, want held", p.State())
	}
	// Capacity is booked during the hold, but nothing is enforced yet.
	if r.borderEF() == 0 {
		t.Fatal("prepare should book capacity")
	}
	if p.Reservation() != nil {
		t.Fatal("no reservation handle before commit")
	}
	res, err := p.Commit()
	if err != nil {
		t.Fatal(err)
	}
	if res.State() != StateActive {
		t.Fatalf("committed reservation state = %v, want active", res.State())
	}
	if r.rm1.Enforcement(res) == nil {
		t.Fatal("commit should install edge enforcement")
	}
	if p.Reservation() != res {
		t.Fatal("Reservation() should return the committed handle")
	}
	// A second commit is refused.
	if _, err := p.Commit(); !errors.Is(err, ErrNotPrepared) {
		t.Fatalf("second commit error = %v, want ErrNotPrepared", err)
	}
	res.Cancel()
	if r.borderEF() != 0 {
		t.Fatal("cancel did not release capacity")
	}
}

func TestPrepareLeaseExpiryReclaims(t *testing.T) {
	r := newTwoDomains()
	p, err := r.g1.Prepare(r.spec(10*units.Mbps), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if r.borderEF() == 0 {
		t.Fatal("prepare should book capacity")
	}
	// Never commit; run past the lease.
	if err := r.k.RunUntil(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if p.State() != PrepareExpired {
		t.Fatalf("state = %v, want expired", p.State())
	}
	if r.borderEF() != 0 {
		t.Fatal("expired lease left capacity booked")
	}
	if _, err := p.Commit(); !errors.Is(err, ErrLeaseExpired) {
		t.Fatalf("commit after expiry error = %v, want ErrLeaseExpired", err)
	}
	if v, _ := r.k.Metrics().CounterValue("gara_leases_expired_total"); v != 1 {
		t.Fatalf("gara_leases_expired_total = %d, want 1", v)
	}
}

func TestPrepareAbortIdempotent(t *testing.T) {
	r := newTwoDomains()
	p, err := r.g1.Prepare(r.spec(10*units.Mbps), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	p.Abort()
	if p.State() != PrepareAborted {
		t.Fatalf("state = %v, want aborted", p.State())
	}
	if r.borderEF() != 0 {
		t.Fatal("abort did not release capacity")
	}
	p.Abort() // no-op
	// The cancelled lease timer must not reclaim anything later.
	if err := r.k.RunUntil(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if v, _ := r.k.Metrics().CounterValue("gara_prepare_aborts_total"); v != 1 {
		t.Fatalf("gara_prepare_aborts_total = %d, want 1", v)
	}
	if v, _ := r.k.Metrics().CounterValue("gara_leases_expired_total"); v != 0 {
		t.Fatalf("aborted prepare must not also expire; expired = %d", v)
	}
}

func TestPrepareAdvanceReservationCommitsToPending(t *testing.T) {
	r := newTwoDomains()
	spec := r.spec(10 * units.Mbps)
	spec.Start = 5 * time.Second
	spec.Duration = 10 * time.Second
	p, err := r.g1.Prepare(spec, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Commit()
	if err != nil {
		t.Fatal(err)
	}
	if res.State() != StatePending {
		t.Fatalf("advance reservation state = %v, want pending", res.State())
	}
	if err := r.k.RunUntil(6 * time.Second); err != nil {
		t.Fatal(err)
	}
	if res.State() != StateActive {
		t.Fatalf("state at start time = %v, want active", res.State())
	}
	res.Cancel()
}

// Satellite: MultiDomain rollback must not leak even when the refusing
// domain comes last — and because rollback is an Abort of leased
// prepares, a rollback message that never lands is still reclaimed by
// lease expiry (exercised in TestMultiDomainCrashMidReserve).
func TestMultiDomainTwoPhaseRollbackReleasesLeases(t *testing.T) {
	r := newTwoDomains()
	// Fill domain 2's EF share so its prepare refuses the next flow.
	if _, err := r.g2.Reserve(r.spec(45 * units.Mbps)); err != nil {
		t.Fatal(err)
	}
	if _, err := r.md.Reserve(r.spec(10 * units.Mbps)); err == nil {
		t.Fatal("downstream refusal expected")
	}
	if r.borderEF() != 0 {
		t.Fatal("rollback left capacity booked in domain 1")
	}
	if len(r.rm1.Leases()) != 0 || len(r.rm2.Leases()) != 0 {
		t.Fatal("rollback left outstanding leases")
	}
	reg := r.k.Metrics()
	if v, _ := reg.CounterValue("gara_prepare_aborts_total"); v == 0 {
		t.Fatal("rollback should go through the abort path")
	}
}
