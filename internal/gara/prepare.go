package gara

import (
	"errors"
	"fmt"
	"time"

	"mpichgq/internal/metrics"
	"mpichgq/internal/sim"
	"mpichgq/internal/spans"
)

// Two-phase reservation support. GARA's co-reservations span "resources
// [in] multiple administrative domains" (§4.2) reached over wide-area
// control channels that can lose messages or crash mid-protocol. A
// plain Reserve immediately holds capacity forever; if the coordinator
// dies between booking segment 1 and segment 2, segment 1 leaks. The
// prepare/commit split bounds that exposure: a prepared reservation
// holds slot-table capacity only under a lease — if no commit arrives
// before the lease expires, the capacity is reclaimed automatically.

// DefaultLeaseTTL is the prepare-lease length used when a caller does
// not pick one: long enough for a wide-area commit round plus retries,
// short enough that an orphaned segment frees its capacity quickly.
const DefaultLeaseTTL = 5 * time.Second

// PrepareState is a Prepared reservation's lifecycle state.
type PrepareState int

// Prepared lifecycle states.
const (
	// PrepareHeld: capacity is booked under a live lease, awaiting
	// Commit or Abort.
	PrepareHeld PrepareState = iota
	// PrepareCommitted: the reservation went on to its normal
	// lifecycle (Pending or Active).
	PrepareCommitted
	// PrepareAborted: the capacity was released by Abort (or a failed
	// Commit activation).
	PrepareAborted
	// PrepareExpired: the lease ran out before Commit; the capacity
	// was reclaimed.
	PrepareExpired
)

func (s PrepareState) String() string {
	switch s {
	case PrepareHeld:
		return "held"
	case PrepareCommitted:
		return "committed"
	case PrepareAborted:
		return "aborted"
	case PrepareExpired:
		return "expired"
	default:
		return fmt.Sprintf("prepare-state(%d)", int(s))
	}
}

// Errors returned by the two-phase operations.
var (
	ErrLeaseExpired = errors.New("gara: prepared reservation's lease expired")
	ErrNotPrepared  = errors.New("gara: reservation is not in the prepared state")
)

// LeaseNoter is implemented by resource managers that track prepared
// leases — the NetworkRM journals them so a post-crash Recover can
// reconcile half-prepared bookings against lease expiry.
type LeaseNoter interface {
	// NoteLease records that id's booking is held under a lease ending
	// at leaseEnd.
	NoteLease(id uint64, leaseEnd time.Duration)
	// NoteCommit records that id's lease was converted into a durable
	// booking.
	NoteCommit(id uint64)
}

// Prepared is phase one of a two-phase reservation: capacity is booked
// in the slot table, but enforcement has not begun and the booking
// only survives until its lease expires. Commit promotes it to a full
// Reservation; Abort (or expiry) releases it.
type Prepared struct {
	g        *Gara
	r        *Reservation
	state    PrepareState
	leaseEnd time.Duration
	timer    sim.Timer
	// span covers the lease window: Begin at Prepare, End at Commit
	// (ok), Abort / failed activation (failed), or expiry (leaked).
	span *spans.Span
}

// Prepare books capacity for spec under a lease of the given TTL
// without starting enforcement (phase one of a two-phase
// co-reservation). A non-positive ttl uses DefaultLeaseTTL. The
// booking is reclaimed automatically if neither Commit nor Abort
// arrives before the lease ends.
func (g *Gara) Prepare(spec Spec, ttl time.Duration) (*Prepared, error) {
	rm := g.managers[spec.Type]
	if rm == nil {
		return nil, fmt.Errorf("%w %q", ErrNoManager, spec.Type)
	}
	if ttl <= 0 {
		ttl = DefaultLeaseTTL
	}
	g.nextID++
	r := &Reservation{g: g, id: g.nextID, spec: spec, rm: rm}
	r.start, r.end = spec.window(g.k.Now())
	trace, parent := g.spanFor(r.id)
	sp := g.tr.Begin(trace, parent, "gara.prepare", string(spec.Type))
	sp.Int("res", int64(r.id))
	if err := rm.Admit(r); err != nil {
		g.mRejects.Inc()
		g.rec.Emit(metrics.EvAdmissionReject, string(spec.Type), 0, 0, 0)
		sp.EndStatus(spans.StatusFailed)
		return nil, err
	}
	p := &Prepared{g: g, r: r, leaseEnd: g.k.Now() + ttl}
	p.span = g.tr.Begin(trace, sp.SpanID(), "gara.lease", string(spec.Type))
	p.span.Int("res", int64(r.id)).Int("ttl_ns", int64(ttl))
	if ln, ok := rm.(LeaseNoter); ok {
		ln.NoteLease(r.id, p.leaseEnd)
	}
	p.timer = g.k.At(p.leaseEnd, sim.PrioNormal, p.expire)
	g.mPrepares.Inc()
	sp.End()
	return p, nil
}

// ID returns the underlying reservation id (the slot-table key the
// booking is held under).
func (p *Prepared) ID() uint64 { return p.r.id }

// Spec returns the prepared specification.
func (p *Prepared) Spec() Spec { return p.r.spec }

// State returns the prepare-phase state.
func (p *Prepared) State() PrepareState { return p.state }

// LeaseEnd returns the absolute time the lease expires.
func (p *Prepared) LeaseEnd() time.Duration { return p.leaseEnd }

// Reservation returns the committed reservation handle, or nil before
// a successful Commit.
func (p *Prepared) Reservation() *Reservation {
	if p.state != PrepareCommitted {
		return nil
	}
	return p.r
}

// expire is the lease timer callback: reclaim the booking so an
// orphaned prepare (coordinator crash, lost abort) cannot leak booked
// capacity.
func (p *Prepared) expire() {
	if p.state != PrepareHeld {
		return
	}
	p.state = PrepareExpired
	p.r.rm.Release(p.r)
	p.g.mLeaseExpired.Inc()
	p.g.rec.Emit(metrics.EvCtrlLease, "expired", int64(p.r.id), 0, 0)
	p.span.EndStatus(spans.StatusLeaked)
}

// Commit is phase two: the booking becomes a normal reservation
// (Active immediately, or Pending until its start time). Returns
// ErrLeaseExpired if the lease already ran out, ErrNotPrepared after
// an Abort or a second Commit, or the manager's activation error — in
// which case the booked capacity has been released.
func (p *Prepared) Commit() (*Reservation, error) {
	switch p.state {
	case PrepareHeld:
	case PrepareExpired:
		return nil, ErrLeaseExpired
	default:
		return nil, ErrNotPrepared
	}
	p.timer.Cancel()
	if ln, ok := p.r.rm.(LeaseNoter); ok {
		ln.NoteCommit(p.r.id)
	}
	if err := p.r.begin(); err != nil {
		p.state = PrepareAborted
		p.span.EndStatus(spans.StatusFailed)
		return nil, err
	}
	p.state = PrepareCommitted
	p.g.mCommits.Inc()
	p.g.mReserved.Inc()
	p.span.End()
	return p.r, nil
}

// Abort releases the prepared capacity. Idempotent; a no-op once
// committed, aborted, or expired.
func (p *Prepared) Abort() {
	if p.state != PrepareHeld {
		return
	}
	p.state = PrepareAborted
	p.timer.Cancel()
	p.r.rm.Release(p.r)
	p.g.mAborts.Inc()
	p.span.EndStatus(spans.StatusFailed)
}
