package gara

import (
	"errors"
	"fmt"

	"mpichgq/internal/netsim"
)

// Multi-domain co-reservation: GARA "uses mechanisms provided by the
// Globus toolkit to address resource discovery and security issues
// when resources span multiple administrative domains" (§4.2), and
// GARNET itself connected to the ESnet and MREN testbeds. Here each
// administrative domain runs its own Gara with a *scoped* NetworkRM
// that owns a subset of links; a MultiDomain coordinator splits an
// end-to-end request into per-domain segment reservations, all or
// nothing.

// ErrNotInDomain is returned by a scoped NetworkRM when a flow's path
// does not traverse any link the domain owns.
var ErrNotInDomain = errors.New("gara: flow path does not enter this domain")

// Scope restricts a NetworkRM to the links it administers. Nil means
// the RM owns every link (single-domain deployment).
type Scope func(*netsim.Iface) bool

// LinkScope builds a Scope from an explicit link set.
func LinkScope(links ...*netsim.Link) Scope {
	owned := make(map[*netsim.Link]bool, len(links))
	for _, l := range links {
		owned[l] = true
	}
	return func(ifc *netsim.Iface) bool { return owned[ifc.Link()] }
}

// MultiDomain coordinates end-to-end reservations across domains.
type MultiDomain struct {
	domains []*Gara
}

// NewMultiDomain returns a coordinator over the given domain Garas
// (each registered with a scoped NetworkRM).
func NewMultiDomain(domains ...*Gara) *MultiDomain {
	if len(domains) == 0 {
		panic("gara: MultiDomain needs at least one domain")
	}
	return &MultiDomain{domains: domains}
}

// Reserve books spec in every domain the flow traverses: domains whose
// scope the path never enters are skipped; any admission failure rolls
// back the segments already booked. At least one domain must admit.
func (m *MultiDomain) Reserve(spec Spec) ([]*Reservation, error) {
	var got []*Reservation
	admitted := 0
	for i, g := range m.domains {
		r, err := g.Reserve(spec)
		if err != nil {
			if errors.Is(err, ErrNotInDomain) {
				continue
			}
			for _, prev := range got {
				prev.Cancel()
			}
			return nil, fmt.Errorf("gara: domain %d refused: %w", i, err)
		}
		got = append(got, r)
		admitted++
	}
	if admitted == 0 {
		return nil, fmt.Errorf("gara: no domain owns any hop of the flow's path")
	}
	return got, nil
}

// CancelAll cancels every segment of a multi-domain reservation.
func CancelAll(rs []*Reservation) {
	for _, r := range rs {
		r.Cancel()
	}
}
