package gara

import (
	"errors"
	"fmt"
	"time"

	"mpichgq/internal/netsim"
)

// Multi-domain co-reservation: GARA "uses mechanisms provided by the
// Globus toolkit to address resource discovery and security issues
// when resources span multiple administrative domains" (§4.2), and
// GARNET itself connected to the ESnet and MREN testbeds. Here each
// administrative domain runs its own Gara with a *scoped* NetworkRM
// that owns a subset of links; a MultiDomain coordinator splits an
// end-to-end request into per-domain segment reservations, all or
// nothing.

// ErrNotInDomain is returned by a scoped NetworkRM when a flow's path
// does not traverse any link the domain owns.
var ErrNotInDomain = errors.New("gara: flow path does not enter this domain")

// Scope restricts a NetworkRM to the links it administers. Nil means
// the RM owns every link (single-domain deployment).
type Scope func(*netsim.Iface) bool

// LinkScope builds a Scope from an explicit link set.
func LinkScope(links ...*netsim.Link) Scope {
	owned := make(map[*netsim.Link]bool, len(links))
	for _, l := range links {
		owned[l] = true
	}
	return func(ifc *netsim.Iface) bool { return owned[ifc.Link()] }
}

// MultiDomain coordinates end-to-end reservations across domains using
// a two-phase prepare/commit protocol: phase one books every segment
// under a lease TTL, phase two commits them all. A coordinator (or
// domain) crash between the phases cannot leak booked bandwidth — the
// un-committed segments' leases expire and the capacity is reclaimed
// by each domain on its own.
type MultiDomain struct {
	domains []*Gara
	// LeaseTTL is the prepare-lease length used for phase one; zero
	// means DefaultLeaseTTL.
	LeaseTTL time.Duration
}

// NewMultiDomain returns a coordinator over the given domain Garas
// (each registered with a scoped NetworkRM).
func NewMultiDomain(domains ...*Gara) *MultiDomain {
	if len(domains) == 0 {
		panic("gara: MultiDomain needs at least one domain")
	}
	return &MultiDomain{domains: domains}
}

// Prepare runs phase one only: book spec under a lease in every domain
// the flow traverses (domains the path never enters are skipped). On
// any refusal the already-prepared segments are aborted. At least one
// domain must admit.
func (m *MultiDomain) Prepare(spec Spec) ([]*Prepared, error) {
	var prepared []*Prepared
	for i, g := range m.domains {
		p, err := g.Prepare(spec, m.LeaseTTL)
		if err != nil {
			if errors.Is(err, ErrNotInDomain) {
				continue
			}
			// Explicit rollback; even if an Abort were lost (a crashed
			// domain), the segment's lease expiry reclaims it.
			for _, prev := range prepared {
				prev.Abort()
			}
			return nil, fmt.Errorf("gara: domain %d refused: %w", i, err)
		}
		prepared = append(prepared, p)
	}
	if len(prepared) == 0 {
		return nil, fmt.Errorf("gara: no domain owns any hop of the flow's path")
	}
	return prepared, nil
}

// Commit runs phase two over prepared segments: commit each in order.
// A commit failure cancels the segments already committed and aborts
// the rest.
func (m *MultiDomain) Commit(prepared []*Prepared) ([]*Reservation, error) {
	var got []*Reservation
	for i, p := range prepared {
		r, err := p.Commit()
		if err != nil {
			for _, prev := range got {
				prev.Cancel()
			}
			for _, rest := range prepared[i+1:] {
				rest.Abort()
			}
			return nil, fmt.Errorf("gara: commit failed in segment %d: %w", i, err)
		}
		got = append(got, r)
	}
	return got, nil
}

// Reserve books spec in every domain the flow traverses, all or
// nothing: prepare every segment under a lease, then commit them all.
// Any prepare refusal aborts the segments already prepared; a commit
// failure cancels committed segments and aborts the remainder. Either
// way no capacity outlives a failed Reserve — and if rollback itself
// is cut short (a domain crash), the lease TTL reclaims the orphan.
func (m *MultiDomain) Reserve(spec Spec) ([]*Reservation, error) {
	prepared, err := m.Prepare(spec)
	if err != nil {
		return nil, err
	}
	return m.Commit(prepared)
}

// CancelAll cancels every segment of a multi-domain reservation.
func CancelAll(rs []*Reservation) {
	for _, r := range rs {
		r.Cancel()
	}
}
