package gara

import (
	"testing"
	"time"

	"mpichgq/internal/units"
)

func TestLinkFailureDegradesReservation(t *testing.T) {
	r := newRig()
	res, err := r.g.Reserve(r.netSpec(4 * units.Mbps))
	if err != nil {
		t.Fatal(err)
	}
	var states []State
	res.OnChange(func(_ *Reservation, s State) { states = append(states, s) })

	r.bott.SetUp(false)
	if res.State() != StateDegraded {
		t.Fatalf("state after link failure = %v, want degraded", res.State())
	}
	// Degrading must release booked capacity and remove enforcement:
	// unbooked premium traffic must not keep riding EF.
	if got := r.netRM.Utilization(r.bott, r.k.Now()); got != 0 {
		t.Fatalf("bottleneck EF utilization after degrade = %v, want 0", got)
	}
	if r.netRM.Enforcement(res) != nil {
		t.Fatal("edge rule still installed after degrade")
	}
	// Repeated transitions must not re-degrade.
	r.bott.SetUp(false)
	if len(states) != 1 || states[0] != StateDegraded {
		t.Fatalf("transitions = %v, want [degraded]", states)
	}

	// Repair after the link returns.
	r.bott.SetUp(true)
	if err := res.Reattach(); err != nil {
		t.Fatalf("reattach after recovery: %v", err)
	}
	if res.State() != StateActive {
		t.Fatalf("state after reattach = %v, want active", res.State())
	}
	if got := r.netRM.Utilization(r.bott, r.k.Now()); got == 0 {
		t.Fatal("reattach did not rebook the bottleneck")
	}
	if r.netRM.Enforcement(res) == nil {
		t.Fatal("reattach did not reinstall the edge rule")
	}

	res.Cancel()
	if got := r.netRM.Utilization(r.bott, r.k.Now()); got != 0 {
		t.Fatalf("utilization after cancel = %v, want 0", got)
	}
}

func TestReattachFailsWithoutCapacity(t *testing.T) {
	r := newRig()
	res, err := r.g.Reserve(r.netSpec(4 * units.Mbps))
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Reattach(); err != ErrNotDegraded {
		t.Fatalf("reattach on active reservation = %v, want ErrNotDegraded", err)
	}
	r.bott.SetUp(false)
	r.bott.SetUp(true)
	if res.State() != StateDegraded {
		t.Fatalf("state = %v, want degraded", res.State())
	}
	// Someone else takes the EF capacity (5 Mb/s cap on the
	// bottleneck) while the reservation is degraded.
	squatter, err := r.g.Reserve(r.netSpec(5 * units.Mbps))
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Reattach(); err == nil {
		t.Fatal("reattach should fail: EF capacity is taken")
	}
	if res.State() != StateDegraded {
		t.Fatalf("failed reattach left state %v, want degraded", res.State())
	}
	// Capacity frees up: the retry succeeds.
	squatter.Cancel()
	if err := res.Reattach(); err != nil {
		t.Fatalf("reattach after capacity freed: %v", err)
	}
	if res.State() != StateActive {
		t.Fatalf("state = %v, want active", res.State())
	}
}

func TestDegradedReservationExpires(t *testing.T) {
	r := newRig()
	spec := r.netSpec(2 * units.Mbps)
	spec.Duration = 10 * time.Second
	res, err := r.g.Reserve(spec)
	if err != nil {
		t.Fatal(err)
	}
	r.k.After(5*time.Second, func() { r.bott.SetUp(false) })
	if err := r.k.Run(); err != nil {
		t.Fatal(err)
	}
	if res.State() != StateExpired {
		t.Fatalf("state = %v, want expired (window ran out while degraded)", res.State())
	}
}
