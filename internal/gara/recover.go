package gara

import (
	"fmt"
	"sort"
	"time"

	"mpichgq/internal/metrics"
	"mpichgq/internal/netsim"
	"mpichgq/internal/sim"
)

// Crash-recovery support for the NetworkRM. A resource manager with a
// Journal write-ahead logs every booking operation; Crash models the
// RM process dying (slot tables, enforcement rules, lease and session
// state all lost — the journal, standing in for disk, survives) and
// Recover replays the journal to rebuild the exact pre-crash booking
// set, re-install edge enforcement, and reconcile half-prepared
// bookings against lease expiry so an orphaned prepare cannot leak
// capacity across a crash.

// journal appends rec to the write-ahead log, if journaling is on.
func (rm *NetworkRM) journal(rec JournalRecord) {
	if rm.Journal != nil {
		rm.Journal.append(rec)
	}
}

// NoteLease implements LeaseNoter: record that id's booking is held
// under a prepare lease ending at leaseEnd.
func (rm *NetworkRM) NoteLease(id uint64, leaseEnd time.Duration) {
	rm.leases[id] = leaseEnd
	rm.journal(JournalRecord{Op: OpLease, ID: id, LeaseEnd: leaseEnd})
}

// NoteCommit implements LeaseNoter: id's lease became a durable
// booking.
func (rm *NetworkRM) NoteCommit(id uint64) {
	delete(rm.leases, id)
	rm.journal(JournalRecord{Op: OpCommit, ID: id})
}

// Leases returns a copy of the outstanding prepare leases (reservation
// id → absolute expiry). Inspection helper for gqctl and tests.
func (rm *NetworkRM) Leases() map[uint64]time.Duration {
	out := make(map[uint64]time.Duration, len(rm.leases))
	for id, end := range rm.leases {
		out[id] = end
	}
	return out
}

// Crash simulates the resource manager process dying: slot tables,
// installed enforcement rules, the active-reservation set, and lease
// tracking are all lost. The Journal — the stand-in for durable
// storage — survives, as does the netsim topology (routers keep
// forwarding; only the control state that *maintains* enforcement is
// gone, so the rules are torn down as the process's session state
// evaporates). Call Recover to rebuild.
func (rm *NetworkRM) Crash() {
	ids := make([]uint64, 0, len(rm.attach))
	for id := range rm.attach {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		if att := rm.attach[id]; att.fr != nil {
			att.fr.Remove()
		}
	}
	rm.tables = make(map[*netsim.Iface]*SlotTable)
	rm.attach = make(map[uint64]*netAttachment)
	rm.active = make(map[uint64]*Reservation)
	rm.leases = make(map[uint64]time.Duration)
	reg := rm.k.Metrics()
	reg.Counter("netrm_crashes_total",
		"simulated resource-manager crashes", "rm", rm.Name).Inc()
	reg.Events().Emit(metrics.EvCtrlCrash, rm.Name, 0, 0, 0)
}

// RecoverStats summarizes what a journal replay rebuilt.
type RecoverStats struct {
	// Rebooked: bookings re-inserted into the slot tables.
	Rebooked int
	// Reclaimed: uncommitted bookings whose lease had already expired,
	// released instead of rebooked.
	Reclaimed int
	// Reinstalled: edge enforcement rules re-installed.
	Reinstalled int
	// Dropped: bookings that could not be restored (window already
	// over, or no viable path after the crash) and were released.
	Dropped int
}

// Recover replays the write-ahead journal after a Crash: every booking
// the journal proves was live is re-inserted into the slot tables on
// the current routes, edge enforcement is re-installed for activated
// reservations, and uncommitted prepare leases are reconciled — an
// already-expired lease is reclaimed on the spot, a still-live one is
// rebooked with a fresh reclaim timer. Reservation handles held by
// callers are not re-linked automatically (the coordinator re-adopts
// them via Adopt); ids are processed in order so recovery is
// deterministic.
func (rm *NetworkRM) Recover() (RecoverStats, error) {
	if rm.Journal == nil {
		return RecoverStats{}, fmt.Errorf("gara: %s has no journal to recover from", rm.Name)
	}
	now := rm.k.Now()
	states := rm.Journal.replay()
	ids := make([]uint64, 0, len(states))
	for id := range states {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	var stats RecoverStats
	for _, id := range ids {
		st := states[id]
		if !st.booked {
			continue // released before the crash
		}
		if st.leaseEnd > 0 && !st.committed && st.leaseEnd <= now {
			// Prepared but never committed, and the lease ran out while
			// the RM was down: reclaim rather than resurrect.
			stats.Reclaimed++
			rm.journal(JournalRecord{Op: OpRelease, ID: id})
			rm.k.Metrics().Events().Emit(metrics.EvCtrlLease, "reclaimed", int64(id), 0, 0)
			continue
		}
		if st.end <= now {
			// The reservation window ended during the outage.
			stats.Dropped++
			rm.journal(JournalRecord{Op: OpRelease, ID: id})
			continue
		}
		src, dst, err := specPath(st.spec)
		if err != nil {
			stats.Dropped++
			rm.journal(JournalRecord{Op: OpRelease, ID: id})
			continue
		}
		hops, edgeIngress, err := rm.path(src, dst)
		if err != nil {
			// No viable path anymore; the booking cannot be honored.
			stats.Dropped++
			rm.journal(JournalRecord{Op: OpRelease, ID: id})
			continue
		}
		owned := rm.owned(hops)
		rebooked, failed := []*netsim.Iface{}, false
		for _, out := range owned {
			if err := rm.table(out).Insert(id, st.start, st.end, float64(st.spec.Bandwidth)); err != nil {
				failed = true
				break
			}
			rebooked = append(rebooked, out)
		}
		if failed || len(owned) == 0 {
			for _, b := range rebooked {
				rm.table(b).Remove(id)
			}
			stats.Dropped++
			rm.journal(JournalRecord{Op: OpRelease, ID: id})
			continue
		}
		stats.Rebooked++
		if st.leaseEnd > 0 && !st.committed {
			// Still-live prepare lease: restore it and re-arm the
			// reclaim timer the crash destroyed.
			rm.leases[id] = st.leaseEnd
			leaseID := id
			rm.k.At(st.leaseEnd, sim.PrioNormal, func() { rm.reclaimLease(leaseID) })
		}
		if st.activated {
			att := &netAttachment{hops: hops}
			if st.edge {
				att.fr = rm.domain.ReserveFlow(edgeIngress, st.spec.Flow, st.spec.Bandwidth,
					rm.depthFor(st.spec), rm.Exceed)
				stats.Reinstalled++
			}
			rm.attach[id] = att
		}
	}
	reg := rm.k.Metrics()
	lbl := []string{"rm", rm.Name}
	reg.Counter("netrm_recover_rebooked_total",
		"bookings rebuilt from the journal after a crash", lbl...).Add(int64(stats.Rebooked))
	reg.Counter("netrm_recover_reclaimed_total",
		"expired prepare leases reclaimed during recovery", lbl...).Add(int64(stats.Reclaimed))
	reg.Counter("netrm_recover_reinstalled_total",
		"edge enforcement rules re-installed during recovery", lbl...).Add(int64(stats.Reinstalled))
	reg.Counter("netrm_recover_dropped_total",
		"journaled bookings unrecoverable (window over or path gone)", lbl...).Add(int64(stats.Dropped))
	reg.Events().Emit(metrics.EvCtrlRecover, rm.Name,
		int64(stats.Rebooked), int64(stats.Reclaimed), int64(stats.Reinstalled))
	return stats, nil
}

// reclaimLease is the recovery-armed lease timer callback: if id is
// still an uncommitted prepare when its lease ends, release its booked
// capacity. A commit (NoteCommit) or release in the meantime removes
// the lease entry and makes this a no-op.
func (rm *NetworkRM) reclaimLease(id uint64) {
	if _, live := rm.leases[id]; !live {
		return
	}
	delete(rm.leases, id)
	for _, st := range rm.tables {
		st.Remove(id)
	}
	rm.journal(JournalRecord{Op: OpRelease, ID: id})
	reg := rm.k.Metrics()
	reg.Counter("netrm_leases_reclaimed_total",
		"prepare leases reclaimed by the RM's own timer", "rm", rm.Name).Inc()
	reg.Events().Emit(metrics.EvCtrlLease, "reclaimed", int64(id), 0, 0)
}

// Adopt re-links a caller-held reservation handle into the recovered
// RM's active set (so topology changes re-validate its path again).
// A no-op for handles the journal did not restore.
func (rm *NetworkRM) Adopt(r *Reservation) {
	if _, ok := rm.attach[r.id]; ok {
		rm.active[r.id] = r
	}
}

// ReleaseID releases a reservation by id alone — booking, lease, and
// enforcement — for cancels that outlived their handle (the handle
// died with a crashed server; journal recovery rebuilt the booking).
// It reports whether anything was booked.
func (rm *NetworkRM) ReleaseID(id uint64) bool {
	removed := false
	for _, st := range rm.tables {
		if st.Remove(id) {
			removed = true
		}
	}
	delete(rm.leases, id)
	if att := rm.attach[id]; att != nil {
		if att.fr != nil {
			att.fr.Remove()
		}
		delete(rm.attach, id)
	}
	delete(rm.active, id)
	if removed {
		rm.journal(JournalRecord{Op: OpRelease, ID: id})
	}
	return removed
}
