package gara

import (
	"reflect"
	"testing"
	"time"

	"mpichgq/internal/netsim"
	"mpichgq/internal/units"
)

// tableSnapshots captures every per-direction slot table of rm across
// the network's links, in canonical form.
func tableSnapshots(r *twoDomainRig, rm *NetworkRM) map[*netsim.Iface][]Slot {
	out := make(map[*netsim.Iface][]Slot)
	for _, l := range r.net.Links() {
		for _, ifc := range []*netsim.Iface{l.A(), l.B()} {
			if snap := rm.Table(ifc).Snapshot(); len(snap) > 0 {
				out[ifc] = snap
			}
		}
	}
	return out
}

func TestNetworkRMCrashRecoverRestoresSlotTables(t *testing.T) {
	r := newTwoDomains()
	r.rm1.Journal = NewJournal()
	r.rm1.Name = "dom1"

	res1, err := r.g1.Reserve(r.spec(10 * units.Mbps))
	if err != nil {
		t.Fatal(err)
	}
	res2, err := r.g1.Reserve(r.spec(5 * units.Mbps))
	if err != nil {
		t.Fatal(err)
	}
	pre := tableSnapshots(r, r.rm1)
	if len(pre) == 0 {
		t.Fatal("expected booked tables before the crash")
	}
	seqBefore := r.rm1.Journal.LastSeq()

	r.rm1.Crash()
	if r.rm1.Utilization(r.border, r.k.Now()) != 0 {
		t.Fatal("crash should wipe the slot tables")
	}
	if r.rm1.Enforcement(res1) != nil {
		t.Fatal("crash should drop enforcement state")
	}

	stats, err := r.rm1.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rebooked != 2 {
		t.Fatalf("rebooked = %d, want 2", stats.Rebooked)
	}
	if stats.Reinstalled != 2 {
		t.Fatalf("reinstalled = %d, want 2 edge rules", stats.Reinstalled)
	}
	if stats.Reclaimed != 0 || stats.Dropped != 0 {
		t.Fatalf("unexpected reclaim/drop: %+v", stats)
	}
	post := tableSnapshots(r, r.rm1)
	if !reflect.DeepEqual(pre, post) {
		t.Fatalf("recovered slot tables differ from pre-crash:\npre:  %v\npost: %v", pre, post)
	}
	if r.rm1.Enforcement(res1) == nil || r.rm1.Enforcement(res2) == nil {
		t.Fatal("recover should re-install edge enforcement")
	}
	// Recovery is itself journaled only for reclaims/drops; a clean
	// replay appends nothing.
	if got := r.rm1.Journal.LastSeq(); got != seqBefore {
		t.Fatalf("clean recovery should not grow the journal: %d -> %d", seqBefore, got)
	}
	// Asserted via metrics, per the acceptance criteria.
	reg := r.k.Metrics()
	if v, _ := reg.CounterValue("netrm_crashes_total", "rm", "dom1"); v != 1 {
		t.Fatalf("netrm_crashes_total = %d, want 1", v)
	}
	if v, _ := reg.CounterValue("netrm_recover_rebooked_total", "rm", "dom1"); v != 2 {
		t.Fatalf("netrm_recover_rebooked_total = %d, want 2", v)
	}
	if v, _ := reg.CounterValue("netrm_recover_reinstalled_total", "rm", "dom1"); v != 2 {
		t.Fatalf("netrm_recover_reinstalled_total = %d, want 2", v)
	}

	// Adopt re-links the handles so topology checks see them again.
	r.rm1.Adopt(res1)
	r.rm1.Adopt(res2)
	res1.Cancel()
	res2.Cancel()
	if r.rm1.Utilization(r.border, r.k.Now()) != 0 {
		t.Fatal("cancel after recovery did not release capacity")
	}
}

// The chaos acceptance test: a domain RM crashes mid-MultiDomain
// reservation (after prepare, before commit) and the coordinator dies
// with it. No booked bandwidth may outlive the lease TTL, in either
// the crashed domain (journal recovery reconciles against the lease)
// or the surviving one (its own lease timer fires).
func TestMultiDomainCrashMidReserve(t *testing.T) {
	r := newTwoDomains()
	r.rm1.Name, r.rm2.Name = "dom1", "dom2"
	r.rm2.Journal = NewJournal()
	r.md.LeaseTTL = time.Second

	prepared, err := r.md.Prepare(r.spec(10 * units.Mbps))
	if err != nil {
		t.Fatal(err)
	}
	if len(prepared) != 2 {
		t.Fatalf("prepared segments = %d, want 2", len(prepared))
	}
	// Domain 2 crashes mid-protocol; the coordinator never commits or
	// aborts (it "died" too — handles are simply abandoned).
	r.rm2.Crash()

	// Domain 2 restarts quickly and replays its journal: the prepared
	// booking is still inside its lease, so it is restored — with a
	// fresh reclaim timer.
	if err := r.k.RunUntil(200 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	stats, err := r.rm2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rebooked != 1 {
		t.Fatalf("rebooked = %d, want the in-lease prepared booking", stats.Rebooked)
	}
	if len(r.rm2.Leases()) != 1 {
		t.Fatal("recovered RM should track the outstanding lease")
	}

	// No commit ever arrives. After the TTL both domains must be clean.
	if err := r.k.RunUntil(3 * time.Second); err != nil {
		t.Fatal(err)
	}
	now := r.k.Now()
	if u := r.rm1.Utilization(r.border, now); u != 0 {
		t.Fatalf("domain 1 leaked %.3f of border EF capacity", u)
	}
	for _, l := range r.net.Links() {
		if u := r.rm2.Utilization(l, now); u != 0 {
			t.Fatalf("domain 2 leaked %.3f on %s", u, l.Name())
		}
	}
	if len(r.rm2.Leases()) != 0 {
		t.Fatal("lease outlived its TTL")
	}
	// Every journaled booking ends in a release: replay folds to empty.
	for id, st := range r.rm2.Journal.replay() {
		if st.booked {
			t.Fatalf("journal still shows id %d booked after reclaim", id)
		}
	}
	if v, _ := r.k.Metrics().CounterValue("gara_leases_expired_total"); v == 0 {
		t.Fatal("surviving domain's lease should expire via the gara timer")
	}
}

// A crash that outlasts the lease: recovery must reclaim, not
// resurrect, the orphaned prepare.
func TestRecoverReclaimsExpiredLease(t *testing.T) {
	r := newTwoDomains()
	r.rm2.Name = "dom2"
	r.rm2.Journal = NewJournal()

	p, err := r.g2.Prepare(r.spec(10*units.Mbps), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	r.rm2.Crash()
	// Stay down past the lease. The gara-side expiry timer fires while
	// the RM is down (its Release is a no-op against wiped tables).
	if err := r.k.RunUntil(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	stats, err := r.rm2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Reclaimed != 1 || stats.Rebooked != 0 {
		t.Fatalf("stats = %+v, want 1 reclaimed / 0 rebooked", stats)
	}
	for _, l := range r.net.Links() {
		if u := r.rm2.Utilization(l, r.k.Now()); u != 0 {
			t.Fatalf("expired lease resurrected on %s", l.Name())
		}
	}
	if v, _ := r.k.Metrics().CounterValue("netrm_recover_reclaimed_total", "rm", "dom2"); v != 1 {
		t.Fatalf("netrm_recover_reclaimed_total = %d, want 1", v)
	}
	_ = p
}
