package gara

import "time"

// The reservation journal is the NetworkRM's write-ahead log: every
// state-changing operation (booking, lease, commit, activation,
// release) appends a record before the caller proceeds, so an RM that
// crashes with its slot tables in memory can rebuild them exactly by
// replay (NetworkRM.Recover). In this simulation the journal is an
// in-memory slice standing in for durable storage: NetworkRM.Crash
// wipes the RM's tables and enforcement state but leaves the journal
// intact, the same way a real broker loses its process memory but not
// its disk.

// JournalOp discriminates journal records.
type JournalOp uint8

// Journal operations.
const (
	// OpBook: capacity was booked for ID over [Start, End) at
	// Spec.Bandwidth (admission, reattach, or a Modify rebooking —
	// the latest OpBook for an id wins on replay).
	OpBook JournalOp = iota + 1
	// OpLease: ID's booking is held under a prepare lease ending at
	// LeaseEnd.
	OpLease
	// OpCommit: ID's lease was converted into a durable booking.
	OpCommit
	// OpActivate: enforcement began for ID; Edge records whether an
	// edge classifier rule was installed (false for transit segments).
	OpActivate
	// OpDeactivate: enforcement ended for ID.
	OpDeactivate
	// OpRelease: ID's booking was removed.
	OpRelease
)

func (op JournalOp) String() string {
	switch op {
	case OpBook:
		return "book"
	case OpLease:
		return "lease"
	case OpCommit:
		return "commit"
	case OpActivate:
		return "activate"
	case OpDeactivate:
		return "deactivate"
	case OpRelease:
		return "release"
	default:
		return "unknown"
	}
}

// JournalRecord is one write-ahead log entry. Records carry plain
// data — everything Recover needs to rebuild slot tables and
// re-install enforcement — never live handles.
type JournalRecord struct {
	Seq        uint64
	Op         JournalOp
	ID         uint64
	Spec       Spec          // OpBook: the booked specification
	Start, End time.Duration // OpBook: the booked window
	LeaseEnd   time.Duration // OpLease: absolute lease expiry
	Edge       bool          // OpActivate: an edge rule was installed
}

// Journal is an append-only reservation log with monotonic sequence
// numbers.
type Journal struct {
	recs []JournalRecord
	seq  uint64
}

// NewJournal returns an empty journal.
func NewJournal() *Journal { return &Journal{} }

// append stamps rec with the next sequence number and stores it.
func (j *Journal) append(rec JournalRecord) uint64 {
	j.seq++
	rec.Seq = j.seq
	j.recs = append(j.recs, rec)
	return rec.Seq
}

// LastSeq returns the sequence number of the newest record (0 when
// empty).
func (j *Journal) LastSeq() uint64 { return j.seq }

// Len returns the number of records.
func (j *Journal) Len() int { return len(j.recs) }

// Records returns a copy of the log, oldest first.
func (j *Journal) Records() []JournalRecord {
	out := make([]JournalRecord, len(j.recs))
	copy(out, j.recs)
	return out
}

// replayState is the folded per-reservation state a journal replay
// produces.
type replayState struct {
	spec       Spec
	start, end time.Duration
	booked     bool
	leaseEnd   time.Duration // 0 = no live lease
	committed  bool
	activated  bool
	edge       bool
}

// replay folds the log into per-id states (the exact booking set the
// RM held when the last record was written).
func (j *Journal) replay() map[uint64]*replayState {
	states := make(map[uint64]*replayState)
	get := func(id uint64) *replayState {
		st := states[id]
		if st == nil {
			st = &replayState{}
			states[id] = st
		}
		return st
	}
	for _, rec := range j.recs {
		st := get(rec.ID)
		switch rec.Op {
		case OpBook:
			st.booked = true
			st.spec = rec.Spec
			st.start, st.end = rec.Start, rec.End
		case OpLease:
			st.leaseEnd = rec.LeaseEnd
		case OpCommit:
			st.committed = true
			st.leaseEnd = 0
		case OpActivate:
			st.activated = true
			st.edge = rec.Edge
		case OpDeactivate:
			st.activated = false
		case OpRelease:
			*st = replayState{}
		}
	}
	return states
}
