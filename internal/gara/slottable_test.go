package gara

import (
	"testing"
	"testing/quick"
	"time"

	"mpichgq/internal/sim"
)

func TestSlotTableBasicAdmission(t *testing.T) {
	st := NewSlotTable(100)
	if err := st.Insert(1, 0, 10*time.Second, 60); err != nil {
		t.Fatal(err)
	}
	if err := st.Insert(2, 0, 10*time.Second, 50); err == nil {
		t.Fatal("60+50 should exceed capacity 100")
	}
	if err := st.Insert(2, 0, 10*time.Second, 40); err != nil {
		t.Fatal(err)
	}
	if got := st.CommittedAt(5 * time.Second); got != 100 {
		t.Fatalf("committed = %v, want 100", got)
	}
}

func TestSlotTableNonOverlappingIntervals(t *testing.T) {
	st := NewSlotTable(100)
	if err := st.Insert(1, 0, 10*time.Second, 100); err != nil {
		t.Fatal(err)
	}
	// Disjoint interval: full capacity available again.
	if err := st.Insert(2, 10*time.Second, 20*time.Second, 100); err != nil {
		t.Fatal(err)
	}
	// Overlapping both: must fail.
	if err := st.Insert(3, 5*time.Second, 15*time.Second, 1); err == nil {
		t.Fatal("overlap should be rejected")
	}
}

func TestSlotTablePartialOverlapBoundaries(t *testing.T) {
	st := NewSlotTable(100)
	st.Insert(1, 5*time.Second, 10*time.Second, 80)
	// Candidate [0, 7s) overlaps [5s,10s): 30+80 > 100 at t=5s even
	// though t=0 is clear.
	if st.Available(0, 7*time.Second, 30) {
		t.Fatal("boundary-interior overload not detected")
	}
	if !st.Available(0, 5*time.Second, 30) {
		t.Fatal("[0,5s) should be admissible")
	}
}

func TestSlotTableRemove(t *testing.T) {
	st := NewSlotTable(100)
	st.Insert(1, 0, Forever, 70)
	if !st.Remove(1) {
		t.Fatal("remove existing should report true")
	}
	if st.Remove(1) {
		t.Fatal("double remove should report false")
	}
	if err := st.Insert(2, 0, Forever, 100); err != nil {
		t.Fatalf("capacity not freed: %v", err)
	}
}

func TestSlotTableUpdateRollsBack(t *testing.T) {
	st := NewSlotTable(100)
	st.Insert(1, 0, Forever, 50)
	st.Insert(2, 0, Forever, 40)
	// Growing id 2 to 60 exceeds capacity; original must survive.
	if err := st.Update(2, 0, Forever, 60); err == nil {
		t.Fatal("update should fail")
	}
	if got := st.CommittedAt(time.Second); got != 90 {
		t.Fatalf("committed after failed update = %v, want 90", got)
	}
	if err := st.Update(2, 0, Forever, 50); err != nil {
		t.Fatal(err)
	}
	if got := st.CommittedAt(time.Second); got != 100 {
		t.Fatalf("committed after update = %v, want 100", got)
	}
}

func TestSlotTableTrim(t *testing.T) {
	st := NewSlotTable(10)
	st.Insert(1, 0, time.Second, 5)
	st.Insert(2, 0, Forever, 5)
	st.TrimBefore(2 * time.Second)
	if st.Len() != 1 {
		t.Fatalf("len after trim = %d, want 1", st.Len())
	}
}

// Property: random admit/remove sequences never oversubscribe at any
// sampled instant.
func TestSlotTableNeverOversubscribedProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := sim.NewRNG(seed)
		st := NewSlotTable(100)
		var ids []uint64
		var id uint64
		for op := 0; op < 100; op++ {
			if rng.Intn(3) == 0 && len(ids) > 0 {
				i := rng.Intn(len(ids))
				st.Remove(ids[i])
				ids = append(ids[:i], ids[i+1:]...)
				continue
			}
			id++
			start := time.Duration(rng.Intn(100)) * time.Second
			end := start + time.Duration(rng.Intn(50)+1)*time.Second
			amt := float64(rng.Intn(60) + 1)
			if st.Insert(id, start, end, amt) == nil {
				ids = append(ids, id)
			}
		}
		for probe := time.Duration(0); probe < 150*time.Second; probe += time.Second {
			if st.CommittedAt(probe) > 100+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
