// Package gara implements the General-purpose Architecture for
// Reservation and Allocation: flow-specific QoS specification, secure
// immediate and advance co-reservation, online monitoring and control,
// and policy-driven management of multiple resource types (networks,
// CPUs, storage) behind one uniform reservation API.
//
// The implementation follows §4.2 of the paper: a resource manager
// "uses a slot table to keep track of reservations and invokes
// resource-specific operations to enforce reservations. Requests ...
// result in calls to functions that add, modify, or delete slot table
// entries; timer-based callbacks generate call-outs to
// resource-specific routines to enable and cancel reservations."
package gara

import (
	"fmt"
	"sort"
	"time"
)

// Forever marks a reservation with no scheduled end.
const Forever = time.Duration(1<<62 - 1)

// slot is one admitted reservation interval on a capacity timeline.
type slot struct {
	id         uint64
	start, end time.Duration
	amount     float64
}

// SlotTable tracks capacity commitments over time for one resource.
// The invariant it enforces: at every instant, the sum of admitted
// amounts never exceeds Capacity.
type SlotTable struct {
	capacity float64
	slots    []slot
}

// NewSlotTable returns a table with the given total capacity.
func NewSlotTable(capacity float64) *SlotTable {
	if capacity < 0 {
		panic("gara: negative slot table capacity")
	}
	return &SlotTable{capacity: capacity}
}

// Capacity returns the table's total capacity.
func (st *SlotTable) Capacity() float64 { return st.capacity }

// CommittedAt returns the total amount committed at instant t.
func (st *SlotTable) CommittedAt(t time.Duration) float64 {
	sum := 0.0
	for _, s := range st.slots {
		if s.start <= t && t < s.end {
			sum += s.amount
		}
	}
	return sum
}

// Available reports whether amount can be admitted over [start, end).
func (st *SlotTable) Available(start, end time.Duration, amount float64) bool {
	if amount > st.capacity {
		return false
	}
	// Peak commitment over an interval changes only at slot
	// boundaries; check the candidate's start and every boundary
	// inside the interval.
	if st.CommittedAt(start)+amount > st.capacity+1e-9 {
		return false
	}
	for _, s := range st.slots {
		for _, edge := range []time.Duration{s.start, s.end} {
			if edge > start && edge < end {
				if st.CommittedAt(edge)+amount > st.capacity+1e-9 {
					return false
				}
			}
		}
	}
	return true
}

// Insert admits amount over [start, end) under id. It fails if the
// interval is invalid or capacity would be exceeded.
func (st *SlotTable) Insert(id uint64, start, end time.Duration, amount float64) error {
	if end <= start {
		return fmt.Errorf("gara: empty slot interval [%v, %v)", start, end)
	}
	if amount < 0 {
		return fmt.Errorf("gara: negative slot amount %v", amount)
	}
	if !st.Available(start, end, amount) {
		return fmt.Errorf("gara: slot table full: %v over [%v, %v) exceeds capacity %v",
			amount, start, end, st.capacity)
	}
	st.slots = append(st.slots, slot{id: id, start: start, end: end, amount: amount})
	return nil
}

// Remove deletes all slots with the given id; it reports whether any
// existed.
func (st *SlotTable) Remove(id uint64) bool {
	kept := st.slots[:0]
	removed := false
	for _, s := range st.slots {
		if s.id == id {
			removed = true
			continue
		}
		kept = append(kept, s)
	}
	st.slots = kept
	return removed
}

// Update atomically replaces id's slots with a new (start, end,
// amount); on admission failure the original slots are restored.
func (st *SlotTable) Update(id uint64, start, end time.Duration, amount float64) error {
	var saved []slot
	kept := st.slots[:0]
	for _, s := range st.slots {
		if s.id == id {
			saved = append(saved, s)
			continue
		}
		kept = append(kept, s)
	}
	st.slots = kept
	if err := st.Insert(id, start, end, amount); err != nil {
		st.slots = append(st.slots, saved...)
		return err
	}
	return nil
}

// TrimBefore discards slots that ended at or before t (bookkeeping for
// long-running simulations).
func (st *SlotTable) TrimBefore(t time.Duration) {
	kept := st.slots[:0]
	for _, s := range st.slots {
		if s.end > t {
			kept = append(kept, s)
		}
	}
	st.slots = kept
}

// Len returns the number of live slots.
func (st *SlotTable) Len() int { return len(st.slots) }

// Slot is an exported view of one admitted interval, as returned by
// Snapshot.
type Slot struct {
	ID         uint64
	Start, End time.Duration
	Amount     float64
}

// Snapshot returns the live slots sorted by (ID, Start) — a canonical
// form two tables can be compared in, regardless of insertion order
// (used by crash-recovery tests to assert a rebuilt table matches the
// original).
func (st *SlotTable) Snapshot() []Slot {
	out := make([]Slot, 0, len(st.slots))
	for _, s := range st.slots {
		out = append(out, Slot{ID: s.id, Start: s.start, End: s.end, Amount: s.amount})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].ID != out[j].ID {
			return out[i].ID < out[j].ID
		}
		return out[i].Start < out[j].Start
	})
	return out
}
