package gara

import (
	"testing"
	"time"

	"mpichgq/internal/metrics"
	"mpichgq/internal/sim"
	"mpichgq/internal/units"
)

// stateEvents returns the reservation-state flight-recorder subjects
// emitted for reservation id, in emission order.
func stateEvents(k *sim.Kernel, id uint64) []string {
	var out []string
	for _, e := range k.Metrics().Events().Snapshot() {
		if e.Type == metrics.EvReservationState && e.V1 == int64(id) {
			out = append(out, e.Subject)
		}
	}
	return out
}

func wantStates(t *testing.T, k *sim.Kernel, id uint64, want ...string) {
	t.Helper()
	got := stateEvents(k, id)
	if len(got) != len(want) {
		t.Fatalf("state events = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("state events = %v, want %v", got, want)
		}
	}
}

func TestModifyWhilePending(t *testing.T) {
	r := newRig()
	spec := r.netSpec(2 * units.Mbps)
	spec.Start = 10 * time.Second
	spec.Duration = 5 * time.Second
	res, err := r.g.Reserve(spec)
	if err != nil {
		t.Fatal(err)
	}
	wantStates(t, r.k, res.ID(), "pending")

	bigger := r.netSpec(4 * units.Mbps)
	bigger.Start = 10 * time.Second
	bigger.Duration = 5 * time.Second
	if err := res.Modify(bigger); err != nil {
		t.Fatalf("modify while pending: %v", err)
	}
	if res.State() != StatePending {
		t.Fatalf("state after pending modify = %v, want pending", res.State())
	}
	if res.Spec().Bandwidth != 4*units.Mbps {
		t.Fatalf("spec bandwidth = %v, want 4Mb/s", res.Spec().Bandwidth)
	}
	// Modify does not transition; activation still happens at start.
	wantStates(t, r.k, res.ID(), "pending")
	r.k.RunUntil(11 * time.Second)
	if res.State() != StateActive {
		t.Fatalf("state at t=11s = %v, want active", res.State())
	}
	wantStates(t, r.k, res.ID(), "pending", "active")
}

func TestModifyWhileActive(t *testing.T) {
	r := newRig()
	res, err := r.g.Reserve(r.netSpec(2 * units.Mbps))
	if err != nil {
		t.Fatal(err)
	}
	wantStates(t, r.k, res.ID(), "active")
	if err := res.Modify(r.netSpec(3 * units.Mbps)); err != nil {
		t.Fatalf("modify while active: %v", err)
	}
	if res.State() != StateActive {
		t.Fatalf("state after active modify = %v, want active", res.State())
	}
	if res.Spec().Bandwidth != 3*units.Mbps {
		t.Fatalf("spec bandwidth = %v, want 3Mb/s", res.Spec().Bandwidth)
	}
	// An in-place modify is not a lifecycle transition.
	wantStates(t, r.k, res.ID(), "active")
}

func TestModifyAfterExpiry(t *testing.T) {
	r := newRig()
	spec := r.netSpec(2 * units.Mbps)
	spec.Start = time.Second
	spec.Duration = 2 * time.Second
	res, err := r.g.Reserve(spec)
	if err != nil {
		t.Fatal(err)
	}
	r.k.RunUntil(4 * time.Second)
	if res.State() != StateExpired {
		t.Fatalf("state at t=4s = %v, want expired", res.State())
	}
	if err := res.Modify(r.netSpec(units.Mbps)); err != ErrNotModifiable {
		t.Fatalf("modify after expiry = %v, want ErrNotModifiable", err)
	}
	wantStates(t, r.k, res.ID(), "pending", "active", "expired")
}

func TestModifyAfterCancel(t *testing.T) {
	r := newRig()
	res, err := r.g.Reserve(r.netSpec(2 * units.Mbps))
	if err != nil {
		t.Fatal(err)
	}
	res.Cancel()
	if err := res.Modify(r.netSpec(units.Mbps)); err != ErrNotModifiable {
		t.Fatalf("modify after cancel = %v, want ErrNotModifiable", err)
	}
	wantStates(t, r.k, res.ID(), "active", "cancelled")
	// A failed modify emits nothing further and Cancel stays idempotent.
	res.Cancel()
	wantStates(t, r.k, res.ID(), "active", "cancelled")
}
