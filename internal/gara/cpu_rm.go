package gara

import (
	"fmt"

	"mpichgq/internal/dsrt"
)

// CPURM is GARA's resource manager for the DSRT soft-real-time CPU
// scheduler: advance bookings live in a per-CPU slot table; activation
// installs the reservation into DSRT.
type CPURM struct {
	tables map[*dsrt.CPU]*SlotTable
}

// MaxCPUReservation is DSRT's admission ceiling per processor.
const MaxCPUReservation = 0.95

// NewCPURM returns an empty CPU resource manager.
func NewCPURM() *CPURM {
	return &CPURM{tables: make(map[*dsrt.CPU]*SlotTable)}
}

// Type implements ResourceManager.
func (rm *CPURM) Type() ResourceType { return ResourceCPU }

func (rm *CPURM) table(c *dsrt.CPU) *SlotTable {
	st := rm.tables[c]
	if st == nil {
		st = NewSlotTable(MaxCPUReservation)
		rm.tables[c] = st
	}
	return st
}

func cpuOf(r *Reservation) (*dsrt.Task, error) {
	if r.spec.Task == nil {
		return nil, fmt.Errorf("gara: CPU spec has no task")
	}
	return r.spec.Task, nil
}

// Admit implements ResourceManager.
func (rm *CPURM) Admit(r *Reservation) error {
	task, err := cpuOf(r)
	if err != nil {
		return err
	}
	if r.spec.Fraction <= 0 || r.spec.Fraction > MaxCPUReservation {
		return fmt.Errorf("gara: CPU fraction %.2f out of (0, %.2f]", r.spec.Fraction, MaxCPUReservation)
	}
	return rm.table(taskCPU(task)).Insert(r.id, r.start, r.end, r.spec.Fraction)
}

// Release implements ResourceManager.
func (rm *CPURM) Release(r *Reservation) {
	for _, st := range rm.tables {
		st.Remove(r.id)
	}
}

// Activate implements ResourceManager.
func (rm *CPURM) Activate(r *Reservation) error {
	task, err := cpuOf(r)
	if err != nil {
		return err
	}
	return task.SetReservation(r.spec.Fraction)
}

// Deactivate implements ResourceManager.
func (rm *CPURM) Deactivate(r *Reservation) {
	if task := r.spec.Task; task != nil {
		// Ignore the error: clearing to zero always passes admission.
		_ = task.SetReservation(0)
	}
}

// Modify implements ResourceManager: rebook the fraction and, if
// active, retune DSRT.
func (rm *CPURM) Modify(r *Reservation, spec Spec) error {
	if spec.Task != r.spec.Task {
		return fmt.Errorf("gara: cannot move a CPU reservation between tasks")
	}
	task, err := cpuOf(r)
	if err != nil {
		return err
	}
	if spec.Fraction <= 0 || spec.Fraction > MaxCPUReservation {
		return fmt.Errorf("gara: CPU fraction %.2f out of (0, %.2f]", spec.Fraction, MaxCPUReservation)
	}
	now := r.g.k.Now()
	start, end := spec.window(now)
	if r.state == StateActive {
		start = r.start
	}
	if err := rm.table(taskCPU(task)).Update(r.id, start, end, spec.Fraction); err != nil {
		return err
	}
	r.spec = spec
	r.start, r.end = start, end
	if r.state == StateActive {
		if err := task.SetReservation(spec.Fraction); err != nil {
			return err
		}
		r.endTimer.Cancel()
		r.armEnd()
	}
	return nil
}

func taskCPU(task *dsrt.Task) *dsrt.CPU { return task.CPU() }
