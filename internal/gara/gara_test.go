package gara

import (
	"testing"
	"time"

	"mpichgq/internal/diffserv"
	"mpichgq/internal/dsrt"
	"mpichgq/internal/netsim"
	"mpichgq/internal/sim"
	"mpichgq/internal/units"
)

// rig is a small testbed: a --- edge === core --- b with a 10 Mb/s
// bottleneck, plus a CPU and a DPSS server, all behind one Gara.
type rig struct {
	k      *sim.Kernel
	net    *netsim.Network
	a, b   *netsim.Node
	bott   *netsim.Link
	domain *diffserv.Domain
	g      *Gara
	netRM  *NetworkRM
	cpu    *dsrt.CPU
	dpss   *DPSS
}

func newRig() *rig {
	k := sim.New(1)
	n := netsim.New(k)
	a, edge, core, b := n.AddNode("a"), n.AddNode("edge"), n.AddNode("core"), n.AddNode("b")
	n.Connect(a, edge, 100*units.Mbps, time.Millisecond)
	bott := n.Connect(edge, core, 10*units.Mbps, time.Millisecond)
	n.Connect(core, b, 100*units.Mbps, time.Millisecond)
	n.ComputeRoutes()
	domain := diffserv.NewDomain(k)
	domain.EnableEFAll(edge, core)
	g := New(k)
	netRM := NewNetworkRM(n, domain, 0.5) // EF limited to 5 Mb/s of the bottleneck
	g.Register(netRM)
	g.Register(NewCPURM())
	g.Register(NewStorageRM())
	return &rig{
		k: k, net: n, a: a, b: b, bott: bott, domain: domain,
		g: g, netRM: netRM,
		cpu:  dsrt.NewCPU(k, "host-a"),
		dpss: NewDPSS(k, "dpss", 100*units.Mbps),
	}
}

func (r *rig) netSpec(bw units.BitRate) Spec {
	return Spec{
		Type:      ResourceNetwork,
		Flow:      diffserv.MatchHostPair(r.a.Addr(), r.b.Addr(), netsim.ProtoTCP),
		Bandwidth: bw,
	}
}

func TestImmediateNetworkReservation(t *testing.T) {
	r := newRig()
	res, err := r.g.Reserve(r.netSpec(2 * units.Mbps))
	if err != nil {
		t.Fatal(err)
	}
	if res.State() != StateActive {
		t.Fatalf("state = %v, want active", res.State())
	}
	// The rule must be installed on the edge router's ingress (the
	// iface on "edge" facing "a").
	edgeIngress := r.net.Links()[0].IfaceOn(r.net.Node("edge"))
	if len(r.domain.Classifier(edgeIngress).Rules()) != 1 {
		t.Fatal("classifier rule not installed at edge ingress")
	}
	res.Cancel()
	if res.State() != StateCancelled {
		t.Fatalf("state after cancel = %v", res.State())
	}
	if len(r.domain.Classifier(edgeIngress).Rules()) != 0 {
		t.Fatal("rule not removed on cancel")
	}
}

func TestAdmissionControlOnBottleneck(t *testing.T) {
	r := newRig()
	// EF capacity = 5 Mb/s. First 4 Mb/s passes, next 2 Mb/s fails.
	if _, err := r.g.Reserve(r.netSpec(4 * units.Mbps)); err != nil {
		t.Fatal(err)
	}
	if _, err := r.g.Reserve(r.netSpec(2 * units.Mbps)); err == nil {
		t.Fatal("4+2 Mb/s should exceed the 5 Mb/s EF share")
	}
	if _, err := r.g.Reserve(r.netSpec(1 * units.Mbps)); err != nil {
		t.Fatalf("4+1 Mb/s should be admitted: %v", err)
	}
	if u := r.netRM.Utilization(r.bott, r.k.Now()); u != 1.0 {
		t.Fatalf("utilization = %v, want 1.0", u)
	}
}

func TestAdvanceReservationLifecycle(t *testing.T) {
	r := newRig()
	spec := r.netSpec(2 * units.Mbps)
	spec.Start = 10 * time.Second
	spec.Duration = 5 * time.Second
	res, err := r.g.Reserve(spec)
	if err != nil {
		t.Fatal(err)
	}
	var transitions []State
	res.OnChange(func(_ *Reservation, s State) { transitions = append(transitions, s) })
	if res.State() != StatePending {
		t.Fatalf("state = %v, want pending", res.State())
	}
	r.k.RunUntil(11 * time.Second)
	if res.State() != StateActive {
		t.Fatalf("state at t=11s = %v, want active", res.State())
	}
	r.k.RunUntil(16 * time.Second)
	if res.State() != StateExpired {
		t.Fatalf("state at t=16s = %v, want expired", res.State())
	}
	if len(transitions) != 2 || transitions[0] != StateActive || transitions[1] != StateExpired {
		t.Fatalf("transitions = %v, want [active expired]", transitions)
	}
	// Capacity is free again after expiry.
	if _, err := r.g.Reserve(r.netSpec(5 * units.Mbps)); err != nil {
		t.Fatalf("capacity not released after expiry: %v", err)
	}
}

func TestAdvanceWindowConflicts(t *testing.T) {
	r := newRig()
	spec := r.netSpec(4 * units.Mbps)
	spec.Start = 10 * time.Second
	spec.Duration = 10 * time.Second
	if _, err := r.g.Reserve(spec); err != nil {
		t.Fatal(err)
	}
	// Overlapping advance window: rejected.
	spec2 := r.netSpec(4 * units.Mbps)
	spec2.Start = 15 * time.Second
	spec2.Duration = 10 * time.Second
	if _, err := r.g.Reserve(spec2); err == nil {
		t.Fatal("overlapping advance reservation should fail")
	}
	// Disjoint window: accepted.
	spec3 := r.netSpec(4 * units.Mbps)
	spec3.Start = 20 * time.Second
	spec3.Duration = 10 * time.Second
	if _, err := r.g.Reserve(spec3); err != nil {
		t.Fatalf("disjoint advance reservation should pass: %v", err)
	}
}

func TestModifyBandwidth(t *testing.T) {
	r := newRig()
	res, err := r.g.Reserve(r.netSpec(2 * units.Mbps))
	if err != nil {
		t.Fatal(err)
	}
	spec := r.netSpec(4 * units.Mbps)
	if err := res.Modify(spec); err != nil {
		t.Fatal(err)
	}
	fr := r.netRM.Enforcement(res)
	if fr.Rate() != 4*units.Mbps {
		t.Fatalf("bucket rate = %v, want 4Mb/s", fr.Rate())
	}
	// Beyond EF capacity: rejected, old spec intact.
	if err := res.Modify(r.netSpec(6 * units.Mbps)); err == nil {
		t.Fatal("modify beyond capacity should fail")
	}
	if fr.Rate() != 4*units.Mbps {
		t.Fatal("failed modify must not change enforcement")
	}
	if res.Spec().Bandwidth != 4*units.Mbps {
		t.Fatal("failed modify must not change spec")
	}
}

func TestModifyCancelledFails(t *testing.T) {
	r := newRig()
	res, _ := r.g.Reserve(r.netSpec(units.Mbps))
	res.Cancel()
	if err := res.Modify(r.netSpec(2 * units.Mbps)); err != ErrNotModifiable {
		t.Fatalf("modify after cancel = %v, want ErrNotModifiable", err)
	}
}

func TestCPUReservationViaGara(t *testing.T) {
	r := newRig()
	task := r.cpu.NewTask("app")
	res, err := r.g.Reserve(Spec{Type: ResourceCPU, Task: task, Fraction: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if task.Reservation() != 0.9 {
		t.Fatalf("DSRT reservation = %v, want 0.9", task.Reservation())
	}
	res.Cancel()
	if task.Reservation() != 0 {
		t.Fatal("reservation not cleared on cancel")
	}
}

func TestCPUAdmissionAcrossReservations(t *testing.T) {
	r := newRig()
	t1 := r.cpu.NewTask("t1")
	t2 := r.cpu.NewTask("t2")
	if _, err := r.g.Reserve(Spec{Type: ResourceCPU, Task: t1, Fraction: 0.6}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.g.Reserve(Spec{Type: ResourceCPU, Task: t2, Fraction: 0.5}); err == nil {
		t.Fatal("0.6+0.5 on one CPU should be rejected")
	}
	if _, err := r.g.Reserve(Spec{Type: ResourceCPU, Task: t2, Fraction: 0.3}); err != nil {
		t.Fatal(err)
	}
}

func TestStorageReservation(t *testing.T) {
	r := newRig()
	res, err := r.g.Reserve(Spec{Type: ResourceStorage, Store: r.dpss, ReadRate: 60 * units.Mbps})
	if err != nil {
		t.Fatal(err)
	}
	if r.dpss.ReservedRate() != 60*units.Mbps {
		t.Fatalf("reserved = %v, want 60Mb/s", r.dpss.ReservedRate())
	}
	if _, err := r.g.Reserve(Spec{Type: ResourceStorage, Store: r.dpss, ReadRate: 50 * units.Mbps}); err == nil {
		t.Fatal("60+50 over 100 Mb/s should fail")
	}
	s, ok := Session(res)
	if !ok {
		t.Fatal("active storage reservation should expose a session")
	}
	var readDone time.Duration
	r.k.Spawn("reader", func(ctx *sim.Ctx) {
		// 7.5 MB at 60 Mb/s = 1 s.
		if err := s.Read(ctx, 7500*units.KB); err != nil {
			t.Error(err)
			return
		}
		readDone = ctx.Now()
	})
	if err := r.k.Run(); err != nil {
		t.Fatal(err)
	}
	if readDone != time.Second {
		t.Fatalf("read finished at %v, want 1s", readDone)
	}
	res.Cancel()
	if r.dpss.ReservedRate() != 0 {
		t.Fatal("reservation not released")
	}
}

func TestDPSSBestEffortSharing(t *testing.T) {
	r := newRig()
	s1 := r.dpss.Open("be1")
	s2 := r.dpss.Open("be2")
	if s1.Rate() != 50*units.Mbps || s2.Rate() != 50*units.Mbps {
		t.Fatalf("best-effort rates = %v/%v, want 50Mb/s each", s1.Rate(), s2.Rate())
	}
	s2.Close()
	if s1.Rate() != 100*units.Mbps {
		t.Fatalf("rate after peer close = %v, want 100Mb/s", s1.Rate())
	}
}

func TestCoReserveAllOrNothing(t *testing.T) {
	r := newRig()
	task := r.cpu.NewTask("app")
	// CPU part is fine, network part exceeds EF capacity: both must
	// fail, leaving no residue.
	_, err := r.g.CoReserve(
		Spec{Type: ResourceCPU, Task: task, Fraction: 0.5},
		r.netSpec(50*units.Mbps),
	)
	if err == nil {
		t.Fatal("co-reservation should fail")
	}
	if task.Reservation() != 0 {
		t.Fatal("failed co-reservation left CPU reservation behind")
	}
	// Both fit: succeeds.
	rs, err := r.g.CoReserve(
		Spec{Type: ResourceCPU, Task: task, Fraction: 0.5},
		r.netSpec(3*units.Mbps),
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 || rs[0].State() != StateActive || rs[1].State() != StateActive {
		t.Fatal("co-reservation should yield two active handles")
	}
}

func TestReserveUnknownTypeFails(t *testing.T) {
	k := sim.New(1)
	g := New(k)
	if _, err := g.Reserve(Spec{Type: "tape"}); err == nil {
		t.Fatal("unknown resource type should fail")
	}
}

func TestNetworkSpecValidation(t *testing.T) {
	r := newRig()
	// Missing endpoints.
	if _, err := r.g.Reserve(Spec{Type: ResourceNetwork, Bandwidth: units.Mbps}); err == nil {
		t.Fatal("spec without endpoints should fail")
	}
	// Zero bandwidth.
	spec := r.netSpec(0)
	if _, err := r.g.Reserve(spec); err == nil {
		t.Fatal("zero bandwidth should fail")
	}
}

func TestBucketDepthPolicy(t *testing.T) {
	r := newRig()
	res, err := r.g.Reserve(r.netSpec(4 * units.Mbps))
	if err != nil {
		t.Fatal(err)
	}
	fr := r.netRM.Enforcement(res)
	want := diffserv.DepthForRate(4*units.Mbps, diffserv.NormalBucketDivisor)
	if fr.Depth() != want {
		t.Fatalf("default depth = %v, want %v (bandwidth/40)", fr.Depth(), want)
	}
	res.Cancel()
	// Explicit override.
	spec := r.netSpec(4 * units.Mbps)
	spec.BucketDepth = 99999
	res2, err := r.g.Reserve(spec)
	if err != nil {
		t.Fatal(err)
	}
	if r.netRM.Enforcement(res2).Depth() != 99999 {
		t.Fatal("explicit depth not honoured")
	}
}
