package gara

import (
	"errors"
	"fmt"
	"time"

	"mpichgq/internal/diffserv"
	"mpichgq/internal/dsrt"
	"mpichgq/internal/metrics"
	"mpichgq/internal/sim"
	"mpichgq/internal/spans"
	"mpichgq/internal/units"
)

// ResourceType names a class of reservable resource.
type ResourceType string

// The resource types the paper's GARA deployment managed.
const (
	// ResourceNetwork is premium (EF) network bandwidth via the DS
	// resource manager.
	ResourceNetwork ResourceType = "network"
	// ResourceCPU is a soft-real-time CPU share via the DSRT
	// resource manager.
	ResourceCPU ResourceType = "cpu"
	// ResourceStorage is read bandwidth on a DPSS-style network
	// storage server.
	ResourceStorage ResourceType = "storage"
)

// State is a reservation's lifecycle state.
type State int

// Reservation lifecycle states.
const (
	// StatePending: admitted advance reservation, start time not yet
	// reached.
	StatePending State = iota
	// StateActive: enforcement is in effect.
	StateActive
	// StateExpired: the reservation's scheduled end passed.
	StateExpired
	// StateCancelled: the holder cancelled the reservation.
	StateCancelled
	// StateDegraded: the reserved path no longer exists (link failure
	// or reroute); enforcement has been torn down and booked capacity
	// released, but the handle stays repairable via Reattach.
	// Appended after the original states so their values — baked into
	// metrics and loops — are unchanged.
	StateDegraded
)

func (s State) String() string {
	switch s {
	case StatePending:
		return "pending"
	case StateActive:
		return "active"
	case StateExpired:
		return "expired"
	case StateCancelled:
		return "cancelled"
	case StateDegraded:
		return "degraded"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Errors returned by reservation operations.
var (
	ErrNoManager     = errors.New("gara: no resource manager for type")
	ErrNotModifiable = errors.New("gara: reservation not in a modifiable state")
	ErrNotDegraded   = errors.New("gara: reservation is not degraded")
	ErrNoReattach    = errors.New("gara: resource manager cannot reattach")
)

// Class ranks a reservation request for admission under overload.
// The slot table itself is class-blind — capacity is capacity — but
// the control plane's brownout mode sheds lower classes first so
// premium admission degrades last (see internal/ctrlplane).
type Class uint8

const (
	// ClassBestEffort is background work: first to shed.
	ClassBestEffort Class = iota
	// ClassNormal is interactive work without a guarantee.
	ClassNormal
	// ClassPremium carries a QoS guarantee: shed only when the broker
	// is saturated outright.
	ClassPremium
)

// String names the class for metrics labels and operator output.
func (c Class) String() string {
	switch c {
	case ClassPremium:
		return "premium"
	case ClassNormal:
		return "normal"
	default:
		return "besteffort"
	}
}

// Spec describes a requested reservation. Type selects the resource
// manager; the manager reads its own fields and ignores the rest.
type Spec struct {
	Type ResourceType
	// Class ranks the request for overload shedding (default
	// ClassBestEffort — unranked traffic yields first).
	Class Class
	// Start is the absolute virtual start time. A Start at or before
	// "now" is an immediate reservation; later is an advance
	// reservation.
	Start time.Duration
	// Duration of enforcement; 0 or Forever means until cancelled.
	Duration time.Duration

	// Network fields.
	Flow      diffserv.Match // must pin Src and Dst for path lookup
	Bandwidth units.BitRate
	// BucketDepth overrides the manager's depth policy when non-zero.
	BucketDepth units.ByteSize

	// CPU fields.
	Task     *dsrt.Task
	Fraction float64

	// Storage fields.
	Store    *DPSS
	ReadRate units.BitRate
}

// window returns the absolute [start, end) of the spec given now.
func (s Spec) window(now time.Duration) (time.Duration, time.Duration) {
	start := s.Start
	if start < now {
		start = now
	}
	if s.Duration <= 0 || s.Duration == Forever {
		return start, Forever
	}
	return start, start + s.Duration
}

// ResourceManager is the uniform interface GARA drives. Admit performs
// admission control and books slot-table capacity; Activate and
// Deactivate enforce; Modify rebooks and re-enforces.
type ResourceManager interface {
	Type() ResourceType
	// Admit books capacity for r.Spec and returns an error if the
	// request cannot be satisfied.
	Admit(r *Reservation) error
	// Release frees the booked capacity.
	Release(r *Reservation)
	// Activate begins enforcement (install router rules, set CPU
	// shares, ...).
	Activate(r *Reservation) error
	// Deactivate ends enforcement.
	Deactivate(r *Reservation)
	// Modify atomically rebooks and (if active) re-enforces r with
	// the new spec.
	Modify(r *Reservation, spec Spec) error
}

// Gara is the reservation front end: one instance per administrative
// domain, dispatching to registered resource managers.
type Gara struct {
	k        *sim.Kernel
	managers map[ResourceType]ResourceManager
	nextID   uint64

	mTransitions  [5]*metrics.Counter // indexed by State
	mRejects      *metrics.Counter
	mReserved     *metrics.Counter
	mPrepares     *metrics.Counter
	mCommits      *metrics.Counter
	mAborts       *metrics.Counter
	mLeaseExpired *metrics.Counter
	rec           *metrics.Recorder
	tr            *spans.Tracer
	// spanCtx is the propagation context reservation spans parent
	// under; the ctrlplane server installs it around each dispatched
	// request so a lease span links to the RPC that created it.
	spanCtx spans.Context
}

// New returns a Gara with no managers registered.
func New(k *sim.Kernel) *Gara {
	g := &Gara{k: k, managers: make(map[ResourceType]ResourceManager)}
	reg := k.Metrics()
	for s := StatePending; s <= StateDegraded; s++ {
		g.mTransitions[s] = reg.Counter("gara_state_transitions_total",
			"reservation lifecycle transitions", "state", s.String())
	}
	g.mRejects = reg.Counter("gara_admission_rejects_total",
		"reservation requests refused by admission control")
	g.mReserved = reg.Counter("gara_reservations_total",
		"reservations admitted")
	g.mPrepares = reg.Counter("gara_prepares_total",
		"two-phase reservations prepared (capacity held under lease)")
	g.mCommits = reg.Counter("gara_prepare_commits_total",
		"prepared reservations committed")
	g.mAborts = reg.Counter("gara_prepare_aborts_total",
		"prepared reservations aborted before commit")
	g.mLeaseExpired = reg.Counter("gara_leases_expired_total",
		"prepared reservations reclaimed by lease expiry")
	g.rec = reg.Events()
	g.tr = k.Tracer()
	return g
}

// SetSpanContext installs the trace context that subsequent
// reservation spans parent under, returning the previous context so
// callers can restore it. The ctrlplane server brackets each
// dispatched request with this, which is safe because the kernel
// admits one runnable goroutine at a time.
func (g *Gara) SetSpanContext(c spans.Context) spans.Context {
	prev := g.spanCtx
	g.spanCtx = c
	return prev
}

// spanFor returns the (trace, parent) a new span about reservation id
// should use: the installed propagation context if one is set, else a
// fresh trace derived from the reservation ID.
func (g *Gara) spanFor(id uint64) (spans.TraceID, spans.SpanID) {
	if g.spanCtx.Valid() {
		return g.spanCtx.Trace, g.spanCtx.Parent
	}
	return spans.DeriveTrace(spans.NSReservation, id), 0
}

// Register installs a resource manager. Only certain elements of the
// generic machinery need replacing to support a new resource type.
func (g *Gara) Register(rm ResourceManager) {
	if _, dup := g.managers[rm.Type()]; dup {
		panic(fmt.Sprintf("gara: duplicate manager for %q", rm.Type()))
	}
	g.managers[rm.Type()] = rm
}

// Manager returns the registered manager for a type, or nil.
func (g *Gara) Manager(t ResourceType) ResourceManager { return g.managers[t] }

// Kernel returns the simulation kernel.
func (g *Gara) Kernel() *sim.Kernel { return g.k }

// Reservation is the opaque handle returned by Reserve: it allows the
// holder to modify, cancel, and monitor the reservation.
type Reservation struct {
	g     *Gara
	id    uint64
	spec  Spec
	state State
	rm    ResourceManager

	start, end time.Duration
	startTimer sim.Timer
	endTimer   sim.Timer
	callbacks  []func(*Reservation, State)

	// rmData carries the manager's enforcement attachment (e.g. the
	// installed diffserv.FlowReservation).
	rmData any
}

// ID returns the reservation's unique id (also its slot-table key).
func (r *Reservation) ID() uint64 { return r.id }

// Spec returns the current specification.
func (r *Reservation) Spec() Spec { return r.spec }

// State returns the current lifecycle state.
func (r *Reservation) State() State { return r.state }

// Window returns the absolute enforcement window.
func (r *Reservation) Window() (start, end time.Duration) { return r.start, r.end }

// OnChange registers a callback invoked on every state transition —
// GARA's "callback mechanism in which a user's function is called
// every time the state of the reservation changes in an interesting
// way".
func (r *Reservation) OnChange(fn func(*Reservation, State)) {
	r.callbacks = append(r.callbacks, fn)
}

func (r *Reservation) transition(s State) {
	r.state = s
	if s >= StatePending && s <= StateDegraded {
		r.g.mTransitions[s].Inc()
	}
	r.g.rec.Emit(metrics.EvReservationState, s.String(), int64(r.id), 0, 0)
	for _, fn := range r.callbacks {
		fn(r, s)
	}
}

// Reserve requests an immediate or advance reservation. On success the
// returned handle is Pending (advance) or Active (immediate).
func (g *Gara) Reserve(spec Spec) (*Reservation, error) {
	rm := g.managers[spec.Type]
	if rm == nil {
		return nil, fmt.Errorf("%w %q", ErrNoManager, spec.Type)
	}
	g.nextID++
	r := &Reservation{g: g, id: g.nextID, spec: spec, rm: rm}
	r.start, r.end = spec.window(g.k.Now())
	trace, parent := g.spanFor(r.id)
	sp := g.tr.Begin(trace, parent, "gara.reserve", string(spec.Type))
	sp.Int("res", int64(r.id))
	if err := rm.Admit(r); err != nil {
		g.mRejects.Inc()
		g.rec.Emit(metrics.EvAdmissionReject, string(spec.Type), 0, 0, 0)
		sp.EndStatus(spans.StatusFailed)
		return nil, err
	}
	g.mReserved.Inc()
	if err := r.begin(); err != nil {
		sp.EndStatus(spans.StatusFailed)
		return nil, err
	}
	sp.End()
	return r, nil
}

// begin starts an admitted reservation's lifecycle: immediate
// activation (or, for an advance reservation, a Pending state with a
// start timer). Shared by Reserve and Prepared.Commit. On an
// immediate-activation failure the booked capacity is released and
// the error returned.
func (r *Reservation) begin() error {
	g := r.g
	if r.start <= g.k.Now() {
		if err := r.rm.Activate(r); err != nil {
			r.rm.Release(r)
			return err
		}
		// A fresh handle has no callbacks yet, so transition only
		// records the state and its metrics.
		r.transition(StateActive)
		r.armEnd()
		return nil
	}
	r.transition(StatePending)
	r.startTimer = g.k.At(r.start, sim.PrioNormal, func() {
		if r.state != StatePending {
			return
		}
		if err := r.rm.Activate(r); err != nil {
			// Enforcement failed at start time; release and report.
			r.rm.Release(r)
			r.transition(StateCancelled)
			return
		}
		r.transition(StateActive)
		r.armEnd()
	})
	return nil
}

func (r *Reservation) armEnd() {
	if r.end == Forever {
		return
	}
	r.endTimer = r.g.k.At(r.end, sim.PrioNormal, func() {
		switch r.state {
		case StateActive:
			r.rm.Deactivate(r)
			r.rm.Release(r)
			r.transition(StateExpired)
		case StateDegraded:
			// Enforcement and capacity were already torn down when the
			// reservation degraded; the window just runs out.
			r.transition(StateExpired)
		}
	})
}

// Degrade marks an Active reservation as degraded: enforcement is
// removed and booked capacity released, but the handle — unlike a
// cancelled one — can be repaired with Reattach. Resource managers
// call this when the reserved path no longer exists; an unbooked flow
// must not keep riding EF ("the number of expedited packets must be
// carefully limited"). Idempotent; a no-op unless Active.
func (r *Reservation) Degrade() {
	if r.state != StateActive {
		return
	}
	r.rm.Deactivate(r)
	r.rm.Release(r)
	r.transition(StateDegraded)
}

// Reattacher is implemented by resource managers that can repair a
// degraded reservation in place: re-admit it against the current
// topology and reinstall enforcement.
type Reattacher interface {
	Reattach(r *Reservation) error
}

// Reattach repairs a degraded reservation: the manager re-admits it on
// the current path for the remainder of the window and resumes
// enforcement, and the reservation returns to Active. Returns
// ErrNotDegraded if the reservation is not degraded, ErrNoReattach if
// the manager cannot repair, or the manager's admission error (e.g.
// the surviving path lacks capacity) — in which case the reservation
// stays Degraded and the caller may retry later.
func (r *Reservation) Reattach() error {
	if r.state != StateDegraded {
		return ErrNotDegraded
	}
	ra, ok := r.rm.(Reattacher)
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoReattach, r.rm.Type())
	}
	if err := ra.Reattach(r); err != nil {
		return err
	}
	r.transition(StateActive)
	return nil
}

// Modify changes the reservation in place (e.g. a new bandwidth). The
// resource type may not change. Allowed while Pending or Active.
func (r *Reservation) Modify(spec Spec) error {
	if r.state != StatePending && r.state != StateActive {
		return ErrNotModifiable
	}
	if spec.Type != r.spec.Type {
		return fmt.Errorf("gara: cannot change resource type %q -> %q", r.spec.Type, spec.Type)
	}
	return r.rm.Modify(r, spec)
}

// Cancel releases the reservation. Idempotent.
func (r *Reservation) Cancel() {
	if r.state != StatePending && r.state != StateActive && r.state != StateDegraded {
		return
	}
	r.startTimer.Cancel()
	r.endTimer.Cancel()
	if r.state == StateActive {
		r.rm.Deactivate(r)
	}
	// A degraded reservation holds no capacity, but Release is
	// idempotent, so call it unconditionally.
	r.rm.Release(r)
	r.transition(StateCancelled)
}

// Probe checks whether spec could be admitted right now, without
// holding any capacity: it books and immediately releases. Resource
// selection at program startup uses this to compare candidate
// placements before committing.
func (g *Gara) Probe(spec Spec) error {
	rm := g.managers[spec.Type]
	if rm == nil {
		return fmt.Errorf("%w %q", ErrNoManager, spec.Type)
	}
	g.nextID++
	r := &Reservation{g: g, id: g.nextID, spec: spec, rm: rm}
	r.start, r.end = spec.window(g.k.Now())
	if err := rm.Admit(r); err != nil {
		return err
	}
	rm.Release(r)
	return nil
}

// CoReserve atomically requests several reservations: either all are
// admitted or none are ("co-reservation of CPU, network, and other
// resources needed for end-to-end performance").
func (g *Gara) CoReserve(specs ...Spec) ([]*Reservation, error) {
	var got []*Reservation
	for _, spec := range specs {
		r, err := g.Reserve(spec)
		if err != nil {
			for _, prev := range got {
				prev.Cancel()
			}
			return nil, fmt.Errorf("gara: co-reservation failed on %q: %w", spec.Type, err)
		}
		got = append(got, r)
	}
	return got, nil
}
