package gara

import (
	"fmt"
	"time"

	"mpichgq/internal/sim"
	"mpichgq/internal/units"
)

// DPSS simulates the Distributed Parallel Storage System, the
// network-storage resource GARA managed alongside networks and CPUs.
// It is a rate-limited block server: total read capacity is shared by
// sessions, with reserved sessions guaranteed their rate and
// best-effort sessions splitting the remainder equally.
type DPSS struct {
	k        *sim.Kernel
	name     string
	capacity units.BitRate
	reserved units.BitRate
	sessions []*DPSSSession
}

// NewDPSS returns a storage server with the given aggregate read
// capacity.
func NewDPSS(k *sim.Kernel, name string, capacity units.BitRate) *DPSS {
	if capacity <= 0 {
		panic("gara: non-positive DPSS capacity")
	}
	return &DPSS{k: k, name: name, capacity: capacity}
}

// Name returns the server's name.
func (d *DPSS) Name() string { return d.name }

// Capacity returns the server's aggregate read capacity.
func (d *DPSS) Capacity() units.BitRate { return d.capacity }

// ReservedRate returns the sum of active session reservations.
func (d *DPSS) ReservedRate() units.BitRate { return d.reserved }

// Open starts a best-effort session.
func (d *DPSS) Open(name string) *DPSSSession {
	s := &DPSSSession{d: d, name: name}
	d.sessions = append(d.sessions, s)
	return s
}

// DPSSSession is one client's connection to the storage server.
type DPSSSession struct {
	d         *DPSS
	name      string
	rate      units.BitRate // reserved rate; 0 = best effort
	closed    bool
	bytesRead int64
}

// Rate returns the session's current effective read rate.
func (s *DPSSSession) Rate() units.BitRate {
	if s.closed {
		return 0
	}
	if s.rate > 0 {
		return s.rate
	}
	// Best effort: split the unreserved capacity equally.
	free := s.d.capacity - s.d.reserved
	if free <= 0 {
		return 0
	}
	n := 0
	for _, x := range s.d.sessions {
		if !x.closed && x.rate == 0 {
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return free / units.BitRate(n)
}

// Read blocks the calling process while n bytes stream from the server
// at the session's current rate.
func (s *DPSSSession) Read(ctx *sim.Ctx, n units.ByteSize) error {
	if s.closed {
		return fmt.Errorf("gara: DPSS session %q closed", s.name)
	}
	rate := s.Rate()
	if rate <= 0 {
		// Starved best-effort session: poll until capacity appears.
		for rate <= 0 {
			ctx.Sleep(10 * time.Millisecond)
			if s.closed {
				return fmt.Errorf("gara: DPSS session %q closed", s.name)
			}
			rate = s.Rate()
		}
	}
	ctx.Sleep(rate.TimeToSend(n))
	s.bytesRead += int64(n)
	return nil
}

// BytesRead returns the session's cumulative bytes.
func (s *DPSSSession) BytesRead() units.ByteSize { return units.ByteSize(s.bytesRead) }

// Close ends the session, releasing any reservation.
func (s *DPSSSession) Close() {
	if s.closed {
		return
	}
	if s.rate > 0 {
		s.d.reserved -= s.rate
		s.rate = 0
	}
	s.closed = true
}

// setReserved installs or clears a rate reservation on the session.
func (s *DPSSSession) setReserved(rate units.BitRate) error {
	if s.closed {
		return fmt.Errorf("gara: DPSS session %q closed", s.name)
	}
	newTotal := s.d.reserved - s.rate + rate
	if newTotal > s.d.capacity {
		return fmt.Errorf("gara: DPSS reservation %v exceeds capacity %v", newTotal, s.d.capacity)
	}
	s.d.reserved = newTotal
	s.rate = rate
	return nil
}

// StorageRM is GARA's resource manager for DPSS servers.
type StorageRM struct {
	tables map[*DPSS]*SlotTable
}

// NewStorageRM returns an empty storage resource manager.
func NewStorageRM() *StorageRM {
	return &StorageRM{tables: make(map[*DPSS]*SlotTable)}
}

// Type implements ResourceManager.
func (rm *StorageRM) Type() ResourceType { return ResourceStorage }

func (rm *StorageRM) table(d *DPSS) *SlotTable {
	st := rm.tables[d]
	if st == nil {
		st = NewSlotTable(float64(d.capacity))
		rm.tables[d] = st
	}
	return st
}

func storageOf(spec Spec) (*DPSS, error) {
	if spec.Store == nil {
		return nil, fmt.Errorf("gara: storage spec has no server")
	}
	return spec.Store, nil
}

// Admit implements ResourceManager.
func (rm *StorageRM) Admit(r *Reservation) error {
	d, err := storageOf(r.spec)
	if err != nil {
		return err
	}
	if r.spec.ReadRate <= 0 {
		return fmt.Errorf("gara: non-positive storage rate %v", r.spec.ReadRate)
	}
	return rm.table(d).Insert(r.id, r.start, r.end, float64(r.spec.ReadRate))
}

// Release implements ResourceManager.
func (rm *StorageRM) Release(r *Reservation) {
	for _, st := range rm.tables {
		st.Remove(r.id)
	}
}

// Activate implements ResourceManager: open a reserved session.
func (rm *StorageRM) Activate(r *Reservation) error {
	d, err := storageOf(r.spec)
	if err != nil {
		return err
	}
	s := d.Open(fmt.Sprintf("gara-%d", r.id))
	if err := s.setReserved(r.spec.ReadRate); err != nil {
		s.Close()
		return err
	}
	r.rmData = s
	return nil
}

// Deactivate implements ResourceManager.
func (rm *StorageRM) Deactivate(r *Reservation) {
	if s, ok := r.rmData.(*DPSSSession); ok && s != nil {
		s.Close()
		r.rmData = nil
	}
}

// Modify implements ResourceManager.
func (rm *StorageRM) Modify(r *Reservation, spec Spec) error {
	if spec.Store != r.spec.Store {
		return fmt.Errorf("gara: cannot move a storage reservation between servers")
	}
	d, err := storageOf(spec)
	if err != nil {
		return err
	}
	if spec.ReadRate <= 0 {
		return fmt.Errorf("gara: non-positive storage rate %v", spec.ReadRate)
	}
	now := r.g.k.Now()
	start, end := spec.window(now)
	if r.state == StateActive {
		start = r.start
	}
	if err := rm.table(d).Update(r.id, start, end, float64(spec.ReadRate)); err != nil {
		return err
	}
	r.spec = spec
	r.start, r.end = start, end
	if r.state == StateActive {
		if s, ok := r.rmData.(*DPSSSession); ok && s != nil {
			if err := s.setReserved(spec.ReadRate); err != nil {
				return err
			}
		}
		r.endTimer.Cancel()
		r.armEnd()
	}
	return nil
}

// Session returns the live session backing an active reservation.
func Session(r *Reservation) (*DPSSSession, bool) {
	s, ok := r.rmData.(*DPSSSession)
	return s, ok && s != nil
}
