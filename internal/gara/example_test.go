package gara_test

import (
	"fmt"
	"time"

	"mpichgq/internal/diffserv"
	"mpichgq/internal/gara"
	"mpichgq/internal/garnet"
	"mpichgq/internal/netsim"
	"mpichgq/internal/units"
)

// An advance reservation is admitted against the slot table, activates
// at its start time, and expires at its end — with callbacks at each
// transition.
func Example_advanceReservation() {
	tb := garnet.New(1)
	res, err := tb.Gara.Reserve(gara.Spec{
		Type:      gara.ResourceNetwork,
		Flow:      diffserv.MatchHostPair(tb.PremSrc.Addr(), tb.PremDst.Addr(), netsim.ProtoTCP),
		Bandwidth: 40 * units.Mbps,
		Start:     10 * time.Second,
		Duration:  10 * time.Second,
	})
	if err != nil {
		panic(err)
	}
	res.OnChange(func(r *gara.Reservation, s gara.State) {
		fmt.Printf("t=%v: %v\n", tb.K.Now(), s)
	})
	fmt.Printf("t=%v: %v\n", tb.K.Now(), res.State())
	tb.K.RunUntil(30 * time.Second)
	// Output:
	// t=0s: pending
	// t=10s: active
	// t=20s: expired
}
