package dsrt

import (
	"math"
	"testing"
	"time"

	"mpichgq/internal/sim"
)

func almost(a, b time.Duration, tol time.Duration) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= tol
}

func TestSoloTaskFullSpeed(t *testing.T) {
	k := sim.New(1)
	cpu := NewCPU(k, "host")
	task := cpu.NewTask("app")
	var done time.Duration
	k.Spawn("app", func(ctx *sim.Ctx) {
		task.Compute(ctx, time.Second)
		done = ctx.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !almost(done, time.Second, time.Millisecond) {
		t.Fatalf("solo task finished at %v, want 1s", done)
	}
}

func TestTwoTasksFairShare(t *testing.T) {
	k := sim.New(1)
	cpu := NewCPU(k, "host")
	var done [2]time.Duration
	for i := 0; i < 2; i++ {
		i := i
		task := cpu.NewTask("t")
		k.Spawn("t", func(ctx *sim.Ctx) {
			task.Compute(ctx, time.Second)
			done[i] = ctx.Now()
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// Two equal tasks, each needing 1 CPU-second at share 0.5: both
	// finish at ~2 s.
	for i, d := range done {
		if !almost(d, 2*time.Second, 10*time.Millisecond) {
			t.Fatalf("task %d finished at %v, want ~2s", i, d)
		}
	}
}

func TestReservationProtectsTask(t *testing.T) {
	k := sim.New(1)
	cpu := NewCPU(k, "host")
	app := cpu.NewTask("app")
	hog := cpu.NewTask("hog")
	if err := app.SetReservation(0.9); err != nil {
		t.Fatal(err)
	}
	var appDone time.Duration
	k.Spawn("app", func(ctx *sim.Ctx) {
		app.Compute(ctx, 900*time.Millisecond)
		appDone = ctx.Now()
	})
	k.Spawn("hog", func(ctx *sim.Ctx) {
		for ctx.Now() < 5*time.Second {
			hog.Compute(ctx, 10*time.Millisecond)
		}
	})
	if err := k.RunUntil(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	// At 0.9 share, 0.9 CPU-seconds takes ~1 s despite the hog.
	if !almost(appDone, time.Second, 50*time.Millisecond) {
		t.Fatalf("reserved task finished at %v, want ~1s", appDone)
	}
}

func TestContentionWithoutReservation(t *testing.T) {
	k := sim.New(1)
	cpu := NewCPU(k, "host")
	app := cpu.NewTask("app")
	hog := cpu.NewTask("hog")
	var appDone time.Duration
	k.Spawn("app", func(ctx *sim.Ctx) {
		app.Compute(ctx, 900*time.Millisecond)
		appDone = ctx.Now()
	})
	k.Spawn("hog", func(ctx *sim.Ctx) {
		for ctx.Now() < 5*time.Second {
			hog.Compute(ctx, 10*time.Millisecond)
		}
	})
	if err := k.RunUntil(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	// Fair share 0.5: 0.9 CPU-seconds takes ~1.8 s.
	if !almost(appDone, 1800*time.Millisecond, 100*time.Millisecond) {
		t.Fatalf("contended task finished at %v, want ~1.8s", appDone)
	}
}

func TestAdmissionControl(t *testing.T) {
	k := sim.New(1)
	cpu := NewCPU(k, "host")
	a := cpu.NewTask("a")
	b := cpu.NewTask("b")
	if err := a.SetReservation(0.6); err != nil {
		t.Fatal(err)
	}
	if err := b.SetReservation(0.5); err == nil {
		t.Fatal("0.6+0.5 should be rejected")
	}
	if err := b.SetReservation(0.3); err != nil {
		t.Fatalf("0.6+0.3 should be admitted: %v", err)
	}
	if err := a.SetReservation(0.96); err == nil {
		t.Fatal("reservation above 0.95 should be rejected")
	}
	if err := a.SetReservation(0); err != nil {
		t.Fatal(err)
	}
	if a.Reservation() != 0 {
		t.Fatal("clearing reservation failed")
	}
}

func TestWorkConservationReservedAlone(t *testing.T) {
	// A reserved task alone on the CPU gets the whole CPU, not just
	// its reservation.
	k := sim.New(1)
	cpu := NewCPU(k, "host")
	task := cpu.NewTask("app")
	task.SetReservation(0.5)
	var done time.Duration
	k.Spawn("app", func(ctx *sim.Ctx) {
		task.Compute(ctx, time.Second)
		done = ctx.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !almost(done, time.Second, 10*time.Millisecond) {
		t.Fatalf("reserved solo task finished at %v, want 1s (work conserving)", done)
	}
}

func TestMidComputationReservation(t *testing.T) {
	// Reservation granted halfway through a computation speeds up the
	// remainder (the Figure 8 scenario).
	k := sim.New(1)
	cpu := NewCPU(k, "host")
	app := cpu.NewTask("app")
	hog := cpu.NewTask("hog")
	var appDone time.Duration
	k.Spawn("app", func(ctx *sim.Ctx) {
		app.Compute(ctx, time.Second)
		appDone = ctx.Now()
	})
	k.Spawn("hog", func(ctx *sim.Ctx) {
		for ctx.Now() < 10*time.Second {
			hog.Compute(ctx, 10*time.Millisecond)
		}
	})
	k.After(time.Second, func() {
		if err := app.SetReservation(0.9); err != nil {
			t.Error(err)
		}
	})
	if err := k.RunUntil(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	// First second at share 0.5 → 0.5 done; remaining 0.5 at 0.9 →
	// ~0.556 s more. Total ~1.556 s.
	if !almost(appDone, 1556*time.Millisecond, 60*time.Millisecond) {
		t.Fatalf("finished at %v, want ~1.556s", appDone)
	}
}

func TestUsedAccounting(t *testing.T) {
	k := sim.New(1)
	cpu := NewCPU(k, "host")
	a := cpu.NewTask("a")
	b := cpu.NewTask("b")
	k.Spawn("a", func(ctx *sim.Ctx) { a.Compute(ctx, 500*time.Millisecond) })
	k.Spawn("b", func(ctx *sim.Ctx) { b.Compute(ctx, 500*time.Millisecond) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !almost(a.Used(), 500*time.Millisecond, time.Millisecond) {
		t.Fatalf("a used %v, want 500ms", a.Used())
	}
	if !almost(b.Used(), 500*time.Millisecond, time.Millisecond) {
		t.Fatalf("b used %v, want 500ms", b.Used())
	}
}

func TestCloseReleasesBlockedCompute(t *testing.T) {
	k := sim.New(1)
	cpu := NewCPU(k, "host")
	a := cpu.NewTask("a")
	hog := cpu.NewTask("hog")
	returned := false
	k.Spawn("a", func(ctx *sim.Ctx) {
		a.Compute(ctx, time.Hour)
		returned = true
	})
	k.Spawn("hog", func(ctx *sim.Ctx) {
		for ctx.Now() < 2*time.Second {
			hog.Compute(ctx, 10*time.Millisecond)
		}
	})
	k.After(time.Second, func() { a.Close() })
	if err := k.RunUntil(3 * time.Second); err != nil {
		t.Fatal(err)
	}
	if !returned {
		t.Fatal("Compute did not return after Close")
	}
}

func TestCloseFreesShareForOthers(t *testing.T) {
	k := sim.New(1)
	cpu := NewCPU(k, "host")
	a := cpu.NewTask("a")
	b := cpu.NewTask("b")
	var bDone time.Duration
	k.Spawn("a", func(ctx *sim.Ctx) { a.Compute(ctx, time.Hour) })
	k.Spawn("b", func(ctx *sim.Ctx) {
		b.Compute(ctx, time.Second)
		bDone = ctx.Now()
	})
	k.After(time.Second, func() { a.Close() })
	if err := k.RunUntil(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	// First second at 0.5 → 0.5 done; then full speed → 0.5 s more.
	if !almost(bDone, 1500*time.Millisecond, 20*time.Millisecond) {
		t.Fatalf("b finished at %v, want ~1.5s", bDone)
	}
}

func TestOverlappingComputePanics(t *testing.T) {
	k := sim.New(1)
	cpu := NewCPU(k, "host")
	a := cpu.NewTask("a")
	k.Spawn("p1", func(ctx *sim.Ctx) { a.Compute(ctx, time.Second) })
	k.Spawn("p2", func(ctx *sim.Ctx) { a.Compute(ctx, time.Second) })
	if err := k.Run(); err == nil {
		t.Fatal("expected captured panic for overlapping Compute")
	}
}

func TestShareAndLoad(t *testing.T) {
	k := sim.New(1)
	cpu := NewCPU(k, "host")
	a := cpu.NewTask("a")
	b := cpu.NewTask("b")
	a.SetReservation(0.7)
	k.Spawn("a", func(ctx *sim.Ctx) { a.Compute(ctx, 10*time.Second) })
	k.Spawn("b", func(ctx *sim.Ctx) { b.Compute(ctx, 10*time.Second) })
	k.After(time.Second, func() {
		if math.Abs(a.Share()-0.7) > 1e-9 {
			t.Errorf("a share = %v, want 0.7", a.Share())
		}
		if math.Abs(b.Share()-0.3) > 1e-9 {
			t.Errorf("b share = %v, want 0.3", b.Share())
		}
		n, res := cpu.Load()
		if n != 2 || math.Abs(res-0.7) > 1e-9 {
			t.Errorf("load = %d/%v, want 2/0.7", n, res)
		}
	})
	if err := k.RunUntil(2 * time.Second); err != nil {
		t.Fatal(err)
	}
}

func TestManyTasksEqualShares(t *testing.T) {
	k := sim.New(1)
	cpu := NewCPU(k, "host")
	const n = 5
	var done [n]time.Duration
	for i := 0; i < n; i++ {
		i := i
		task := cpu.NewTask("t")
		k.Spawn("t", func(ctx *sim.Ctx) {
			task.Compute(ctx, time.Second)
			done[i] = ctx.Now()
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i, d := range done {
		if !almost(d, n*time.Second, 20*time.Millisecond) {
			t.Fatalf("task %d finished at %v, want ~%ds", i, d, n)
		}
	}
}

func TestSMPParallelTasks(t *testing.T) {
	// 4 tasks on a 4-way SMP: all run at full speed simultaneously.
	k := sim.New(1)
	cpu := NewSMP(k, "smp", 4)
	if cpu.Capacity() != 4 {
		t.Fatalf("capacity = %v", cpu.Capacity())
	}
	var done [4]time.Duration
	for i := 0; i < 4; i++ {
		i := i
		task := cpu.NewTask("t")
		k.Spawn("t", func(ctx *sim.Ctx) {
			task.Compute(ctx, time.Second)
			done[i] = ctx.Now()
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i, d := range done {
		if !almost(d, time.Second, 5*time.Millisecond) {
			t.Fatalf("task %d finished at %v, want 1s (no sharing on SMP)", i, d)
		}
	}
}

func TestSMPOversubscribed(t *testing.T) {
	// 8 tasks on a 4-way SMP: each gets half a processor.
	k := sim.New(1)
	cpu := NewSMP(k, "smp", 4)
	var done [8]time.Duration
	for i := 0; i < 8; i++ {
		i := i
		task := cpu.NewTask("t")
		k.Spawn("t", func(ctx *sim.Ctx) {
			task.Compute(ctx, time.Second)
			done[i] = ctx.Now()
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i, d := range done {
		if !almost(d, 2*time.Second, 20*time.Millisecond) {
			t.Fatalf("task %d finished at %v, want ~2s", i, d)
		}
	}
}

func TestSMPSingleTaskCappedAtOneProcessor(t *testing.T) {
	// One task on a big SMP still runs at 1x, not Nx.
	k := sim.New(1)
	cpu := NewSMP(k, "smp", 8)
	task := cpu.NewTask("solo")
	var done time.Duration
	k.Spawn("solo", func(ctx *sim.Ctx) {
		task.Compute(ctx, time.Second)
		done = ctx.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !almost(done, time.Second, time.Millisecond) {
		t.Fatalf("solo task on SMP finished at %v, want exactly 1s", done)
	}
}

func TestSMPAdmissionScalesWithCapacity(t *testing.T) {
	k := sim.New(1)
	cpu := NewSMP(k, "smp", 2)
	a, b := cpu.NewTask("a"), cpu.NewTask("b")
	// 0.9 + 0.9 = 1.8 <= 0.95*2.
	if err := a.SetReservation(0.9); err != nil {
		t.Fatal(err)
	}
	if err := b.SetReservation(0.9); err != nil {
		t.Fatal(err)
	}
	c := cpu.NewTask("c")
	if err := c.SetReservation(0.2); err == nil {
		t.Fatal("1.8+0.2 > 1.9 should be rejected")
	}
}
