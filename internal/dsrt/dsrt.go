// Package dsrt simulates the Dynamic Soft Real-Time CPU scheduler
// (Chu & Nahrstedt) used by the paper for CPU reservations (§5.5).
//
// Each host has a CPU with unit capacity, shared by tasks under a
// fluid processor-sharing model:
//
//   - A task with a soft-real-time reservation of fraction f receives
//     at least f of the CPU whenever it is runnable ("DSRT works by
//     overriding the Unix scheduler and performing soft real-time
//     scheduling of select processes").
//   - Unreserved runnable tasks share the remaining capacity equally,
//     like a time-sharing Unix scheduler.
//   - The model is work-conserving: capacity left idle by one class is
//     redistributed to the other.
//
// Tasks consume CPU by calling Compute(work): the call blocks the
// simulated process for work/share of virtual time. Applications use
// this for their own computation (e.g. rendering a frame) and the
// globus-io layer uses it for per-byte socket copy costs, which is how
// CPU contention throttles network throughput in Figures 8 and 9.
package dsrt

import (
	"fmt"
	"time"

	"mpichgq/internal/metrics"
	"mpichgq/internal/sim"
)

// CPU is a host processor (or SMP processor set) shared by tasks.
// Capacity is the number of processors; a single task can use at most
// one processor's worth (1.0) — tasks are not internally parallel.
type CPU struct {
	k        *sim.Kernel
	name     string
	capacity float64
	tasks    []*Task

	mComputations *metrics.Counter
	mDeadlineMiss *metrics.Counter
	rec           *metrics.Recorder
}

// NewCPU returns a single-processor CPU named name on kernel k.
func NewCPU(k *sim.Kernel, name string) *CPU {
	return NewSMP(k, name, 1)
}

// NewSMP returns an n-processor host, like the paper's "8-processor
// multiprocessors" (§3). n tasks run at full speed before any sharing
// begins.
func NewSMP(k *sim.Kernel, name string, n int) *CPU {
	if n < 1 {
		panic("dsrt: SMP needs at least one processor")
	}
	reg := k.Metrics()
	return &CPU{
		k: k, name: name, capacity: float64(n),
		mComputations: reg.Counter("dsrt_computations_total",
			"completed Compute calls", "cpu", name),
		mDeadlineMiss: reg.Counter("dsrt_deadline_misses_total",
			"reserved computations that overran their promised rate", "cpu", name),
		rec: reg.Events(),
	}
}

// Name returns the CPU's name.
func (c *CPU) Name() string { return c.name }

// Capacity returns the number of processors.
func (c *CPU) Capacity() float64 { return c.capacity }

// Task is a schedulable entity (one process's CPU principal).
type Task struct {
	cpu      *CPU
	name     string
	reserved float64 // soft-RT fraction; 0 = best effort
	closed   bool

	// Active computation state.
	computing  bool
	remaining  float64 // work-seconds still owed
	rate       float64 // current share of the CPU
	lastUpdate time.Duration
	timer      sim.Timer
	done       *sim.Cond

	// Deadline accounting for the current Compute call.
	computeStart time.Duration
	computeWork  float64 // work-seconds requested

	usedSeconds float64 // cumulative CPU-seconds consumed
}

// NewTask registers a best-effort task on the CPU.
func (c *CPU) NewTask(name string) *Task {
	t := &Task{cpu: c, name: name, done: sim.NewCond(c.k)}
	c.tasks = append(c.tasks, t)
	return t
}

// Name returns the task name.
func (t *Task) Name() string { return t.name }

// CPU returns the processor the task is scheduled on.
func (t *Task) CPU() *CPU { return t.cpu }

// Reservation returns the task's current soft-RT fraction.
func (t *Task) Reservation() float64 { return t.reserved }

// SetReservation grants the task a soft-real-time share (0 clears the
// reservation). The sum of reservations across a CPU may not exceed
// 0.95; DSRT keeps headroom so the system stays responsive.
func (t *Task) SetReservation(frac float64) error {
	if t.closed {
		return fmt.Errorf("dsrt: task %q closed", t.name)
	}
	if frac < 0 || frac > 0.95 {
		return fmt.Errorf("dsrt: reservation %.2f out of range [0, 0.95]", frac)
	}
	total := frac
	for _, x := range t.cpu.tasks {
		if x != t && !x.closed {
			total += x.reserved
		}
	}
	if limit := 0.95 * t.cpu.capacity; total > limit {
		return fmt.Errorf("dsrt: admission control: total reservation %.2f would exceed %.2f", total, limit)
	}
	t.reserved = frac
	t.cpu.recompute()
	return nil
}

// Compute blocks the calling process until the task has received work
// seconds of CPU time at its scheduled share.
func (t *Task) Compute(ctx *sim.Ctx, work time.Duration) {
	if work <= 0 || t.closed {
		return
	}
	if t.computing {
		panic(fmt.Sprintf("dsrt: task %q has overlapping Compute calls", t.name))
	}
	t.computing = true
	t.remaining = work.Seconds()
	t.lastUpdate = t.cpu.k.Now()
	t.computeStart = t.lastUpdate
	t.computeWork = t.remaining
	t.cpu.recompute()
	t.done.Wait(ctx)
}

// Used returns the task's cumulative CPU-seconds.
func (t *Task) Used() time.Duration {
	t.settle(t.cpu.k.Now())
	return time.Duration(t.usedSeconds * float64(time.Second))
}

// Share returns the task's current scheduled CPU share (0 when idle).
func (t *Task) Share() float64 {
	if !t.computing {
		return 0
	}
	return t.rate
}

// Close deregisters the task. Any in-flight Compute is abandoned (the
// blocked process is released).
func (t *Task) Close() {
	if t.closed {
		return
	}
	t.closed = true
	t.timer.Cancel()
	if t.computing {
		t.computing = false
		t.done.Broadcast()
	}
	for i, x := range t.cpu.tasks {
		if x == t {
			t.cpu.tasks = append(t.cpu.tasks[:i], t.cpu.tasks[i+1:]...)
			break
		}
	}
	t.cpu.recompute()
}

// settle charges elapsed time against the task's remaining work.
func (t *Task) settle(now time.Duration) {
	if !t.computing || now <= t.lastUpdate {
		return
	}
	dt := (now - t.lastUpdate).Seconds()
	used := dt * t.rate
	if used > t.remaining {
		used = t.remaining
	}
	t.remaining -= used
	t.usedSeconds += used
	t.lastUpdate = now
}

// recompute settles all tasks, reassigns shares, and reschedules
// completion timers. Called on every scheduling event.
func (c *CPU) recompute() {
	now := c.k.Now()
	var runnable []*Task
	for _, t := range c.tasks {
		t.settle(now)
		if t.computing && t.remaining <= 1e-12 {
			// Finished exactly at a boundary; complete below.
			t.finish()
			continue
		}
		if t.computing {
			runnable = append(runnable, t)
		}
	}
	totalRes := 0.0
	unreserved := 0
	for _, t := range runnable {
		if t.reserved > 0 {
			totalRes += t.reserved
		} else {
			unreserved++
		}
	}
	leftover := c.capacity - totalRes
	if leftover < 0 {
		leftover = 0
	}
	for _, t := range runnable {
		switch {
		case t.reserved > 0 && unreserved > 0:
			t.rate = t.reserved
		case t.reserved > 0:
			// Work conservation: reserved tasks split idle capacity
			// in proportion to their reservations.
			t.rate = t.reserved + leftover*(t.reserved/totalRes)
		default:
			t.rate = leftover / float64(unreserved)
		}
		// A single task cannot run faster than one processor.
		if t.rate > 1 {
			t.rate = 1
		}
		t.lastUpdate = now
		t.timer.Cancel()
		if t.rate > 0 {
			eta := time.Duration(t.remaining / t.rate * float64(time.Second))
			if eta < time.Nanosecond {
				eta = time.Nanosecond
			}
			tt := t
			t.timer = c.k.After(eta, func() {
				tt.settle(c.k.Now())
				if tt.computing && tt.remaining <= 1e-9 {
					tt.finish()
					c.recompute()
				}
			})
		}
	}
}

// finish completes the task's current computation.
func (t *Task) finish() {
	t.computing = false
	t.remaining = 0
	t.timer.Cancel()
	t.cpu.mComputations.Inc()
	// A reservation of fraction f promises the work completes within
	// work/f wall time; anything beyond (plus 1% scheduling slack) is
	// a soft-deadline miss — DSRT's QoS violation signal.
	if t.reserved > 0 && t.computeWork > 0 {
		elapsed := (t.cpu.k.Now() - t.computeStart).Seconds()
		allowed := t.computeWork / t.reserved * 1.01
		if elapsed > allowed {
			t.cpu.mDeadlineMiss.Inc()
			t.cpu.rec.Emit(metrics.EvDeadlineMiss, t.name,
				int64(elapsed*float64(time.Second)),
				int64(allowed*float64(time.Second)), 0)
		}
	}
	t.done.Signal()
}

// Load returns the number of currently runnable tasks and the sum of
// active reservations among them.
func (c *CPU) Load() (runnable int, reserved float64) {
	for _, t := range c.tasks {
		if t.computing {
			runnable++
			reserved += t.reserved
		}
	}
	return
}
