package mpi

import (
	"fmt"
	"sort"

	"mpichgq/internal/netsim"
	"mpichgq/internal/sim"
	"mpichgq/internal/units"
)

// Comm is an MPI communicator: a group of processes with a unique
// communication context, so messages sent in one communicator cannot
// be received in another. Intercommunicators additionally partition
// the group into a local and a remote side.
type Comm struct {
	job   *Job
	ctxID int   // point-to-point context; ctxID+1 is the collective context
	group []int // global ranks; index = local rank

	// Intercommunicator fields: when inter is true, group holds the
	// two-party pair [low, high].
	inter bool

	attrs map[Keyval]any
}

// Size returns the number of processes in the communicator.
func (c *Comm) Size() int { return len(c.group) }

// Group returns the global ranks of the members (local rank order).
func (c *Comm) Group() []int {
	out := make([]int, len(c.group))
	copy(out, c.group)
	return out
}

// IsInter reports whether this is a two-party intercommunicator.
func (c *Comm) IsInter() bool { return c.inter }

// Context returns the communicator's context id (diagnostics).
func (c *Comm) Context() int { return c.ctxID }

// globalRank translates a local rank to a world rank.
func (c *Comm) globalRank(local int) (int, error) {
	if local < 0 || local >= len(c.group) {
		return 0, fmt.Errorf("mpi: rank %d out of range for communicator of size %d", local, len(c.group))
	}
	return c.group[local], nil
}

// localRank translates a world rank to this communicator's local rank
// (-1 if not a member).
func (c *Comm) localRank(global int) int {
	for i, g := range c.group {
		if g == global {
			return i
		}
	}
	return -1
}

// RankIn returns the calling rank's local rank in c (-1 if not a
// member).
func (r *Rank) RankIn(c *Comm) int { return c.localRank(r.id) }

// CommSplit partitions comm: every member calls it with a color and a
// key; members with the same color form a new communicator, ordered by
// (key, old rank). A negative color yields nil (MPI_UNDEFINED).
//
// This is a collective call: all members of comm must call it the same
// number of times.
func (r *Rank) CommSplit(ctx *sim.Ctx, comm *Comm, color, key int) (*Comm, error) {
	me := comm.localRank(r.id)
	if me < 0 {
		return nil, fmt.Errorf("mpi: rank %d not in communicator", r.id)
	}
	// Allgather (color, key) pairs over the parent communicator.
	pairs, err := r.Allgather(ctx, comm, []float64{float64(color), float64(key)})
	if err != nil {
		return nil, err
	}
	epoch := r.splitEpoch[comm.ctxID]
	r.splitEpoch[comm.ctxID]++
	if color < 0 {
		return nil, nil
	}
	type member struct{ gRank, key int }
	var members []member
	for i := 0; i < comm.Size(); i++ {
		c := int(pairs[2*i])
		k := int(pairs[2*i+1])
		if c == color {
			members = append(members, member{gRank: comm.group[i], key: k})
		}
	}
	sort.Slice(members, func(i, j int) bool {
		if members[i].key != members[j].key {
			return members[i].key < members[j].key
		}
		return members[i].gRank < members[j].gRank
	})
	group := make([]int, len(members))
	for i, m := range members {
		group[i] = m.gRank
	}
	ctxKey := fmt.Sprintf("split:%d:%d:%d", comm.ctxID, epoch, color)
	return &Comm{job: r.job, ctxID: r.job.allocCtx(ctxKey), group: group}, nil
}

// CommDup duplicates comm with a fresh context (collective).
func (r *Rank) CommDup(ctx *sim.Ctx, comm *Comm) (*Comm, error) {
	// Synchronize members so the epoch counters stay aligned.
	if err := r.Barrier(ctx, comm); err != nil {
		return nil, err
	}
	epoch := r.splitEpoch[comm.ctxID]
	r.splitEpoch[comm.ctxID]++
	ctxKey := fmt.Sprintf("dup:%d:%d", comm.ctxID, epoch)
	return &Comm{job: r.job, ctxID: r.job.allocCtx(ctxKey), group: comm.Group()}, nil
}

// PairComm builds the two-party intercommunicator MPICH-GQ attaches
// QoS to: both endpoints call it with the other's world rank. The
// same pair may create several distinct intercommunicators (each call
// pairs with the matching call on the peer).
func (r *Rank) PairComm(ctx *sim.Ctx, peer int) (*Comm, error) {
	if peer == r.id {
		return nil, fmt.Errorf("mpi: cannot pair a rank with itself")
	}
	if peer < 0 || peer >= r.job.Size() {
		return nil, fmt.Errorf("mpi: peer %d out of range", peer)
	}
	lo, hi := r.id, peer
	if lo > hi {
		lo, hi = hi, lo
	}
	ek := [3]int{lo, hi, 0}
	epoch := r.pairEpoch[ek]
	r.pairEpoch[ek]++
	ctxKey := fmt.Sprintf("pair:%d:%d:%d", lo, hi, epoch)
	c := &Comm{job: r.job, ctxID: r.job.allocCtx(ctxKey), group: []int{lo, hi}, inter: true}
	// Handshake on the new context so both sides exist before use.
	other := c.localRank(peer)
	if _, err := r.SendRecv(ctx, c, other, tagPairSync, units.Byte, nil, other, tagPairSync); err != nil {
		return nil, err
	}
	return c, nil
}

// tagPairSync is the reserved tag for PairComm handshakes.
const tagPairSync = 1<<30 - 1

// FlowEndpoint identifies one directed transport flow of a
// communicator, the information an external QoS agent needs
// ("basically port and machine names").
type FlowEndpoint struct {
	SrcNode netsim.Addr
	DstNode netsim.Addr
	SrcPort netsim.Port
	DstPort netsim.Port
}

// Endpoints extracts the directed flow 5-tuples between the calling
// rank and every other member of comm. MPICH-GQ hands these to GARA
// to bind reservations to the actual sockets.
func (r *Rank) Endpoints(comm *Comm) []FlowEndpoint {
	var out []FlowEndpoint
	for _, g := range comm.group {
		if g == r.id {
			continue
		}
		conn := r.conns[g]
		if conn == nil {
			continue
		}
		c := conn.Conn()
		out = append(out, FlowEndpoint{
			SrcNode: c.LocalAddr(),
			DstNode: c.RemoteAddr(),
			SrcPort: c.LocalPort(),
			DstPort: c.RemotePort(),
		})
	}
	return out
}

// Keyval identifies a communicator attribute, as created by
// KeyvalCreate (MPI_Keyval_create).
type Keyval int

type keyvalInfo struct {
	name  string
	onPut func(r *Rank, c *Comm, val any) error
}

// KeyvalCreate registers an attribute key. onPut, if non-nil, runs
// every time AttrPut stores a value under this key — the hook through
// which "the action of putting the attribute actually triggers the
// request for QoS".
func (j *Job) KeyvalCreate(name string, onPut func(r *Rank, c *Comm, val any) error) Keyval {
	j.nextKV++
	kv := j.nextKV
	j.keyvals[kv] = &keyvalInfo{name: name, onPut: onPut}
	return kv
}

// AttrPut stores val under kv on the communicator and fires the
// keyval's trigger. The error (e.g. a failed reservation) is returned
// to the caller; the attribute is stored regardless so AttrGet can
// report status.
func (r *Rank) AttrPut(c *Comm, kv Keyval, val any) error {
	info := r.job.keyvals[kv]
	if info == nil {
		return fmt.Errorf("mpi: unknown keyval %d", kv)
	}
	if c.attrs == nil {
		c.attrs = make(map[Keyval]any)
	}
	c.attrs[kv] = val
	if info.onPut != nil {
		return info.onPut(r, c, val)
	}
	return nil
}

// AttrGet retrieves the value stored under kv (flag false if absent),
// matching MPI_Attr_get's out-parameter style.
func (c *Comm) AttrGet(kv Keyval) (val any, flag bool) {
	val, flag = c.attrs[kv]
	return
}

// AttrDelete removes the attribute.
func (c *Comm) AttrDelete(kv Keyval) { delete(c.attrs, kv) }
