package mpi

import (
	"errors"
	"testing"
	"time"

	"mpichgq/internal/faults"
	"mpichgq/internal/netsim"
	"mpichgq/internal/sim"
	"mpichgq/internal/tcpsim"
	"mpichgq/internal/units"
)

// testJobNet is testJob, additionally returning the network and the
// switch node so tests can attach spare hosts or apply fault
// scenarios.
func testJobNet(n int, opts JobOptions) (*sim.Kernel, *netsim.Network, *netsim.Node, *Job) {
	k := sim.New(1)
	net := netsim.New(k)
	sw := net.AddNode("switch")
	hosts := make([]*Host, n)
	for i := 0; i < n; i++ {
		nd := net.AddNode(nodeName(i))
		net.Connect(nd, sw, 100*units.Mbps, 100*time.Microsecond)
		hosts[i] = NewHost(nd, tcpsim.DefaultOptions())
	}
	net.ComputeRoutes()
	return k, net, sw, NewJob(k, hosts, opts)
}

// TestCrashFailsPendingRecv: a blocked directed receive from a rank
// that crashes completes with the typed rank-failure error, and the
// failed-process group reports the crash.
func TestCrashFailsPendingRecv(t *testing.T) {
	k, _, _, j := testJobNet(3, JobOptions{})
	var recvErr error
	var group []int
	j.Start(func(ctx *sim.Ctx, r *Rank) {
		if r.ID() != 1 {
			ctx.Sleep(5 * time.Second) // rank 2 sends nothing, then exits
			return
		}
		_, recvErr = r.Recv(ctx, r.World(), 2, 0)
		group = r.CommGroupFailed(r.World())
	})
	k.At(time.Second, sim.PrioNormal, func() { j.CrashRank(2) })
	if err := k.RunUntil(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(recvErr, ErrRankFailed) {
		t.Fatalf("recv error = %v, want ErrRankFailed", recvErr)
	}
	var rf *RankFailedError
	if !errors.As(recvErr, &rf) || rf.Rank != 2 {
		t.Fatalf("recv error = %v, want *RankFailedError{Rank: 2}", recvErr)
	}
	if len(group) != 1 || group[0] != 2 {
		t.Fatalf("CommGroupFailed = %v, want [2]", group)
	}
	if got := j.FailedRanks(); len(got) != 1 || got[0] != 2 {
		t.Fatalf("FailedRanks = %v, want [2]", got)
	}
}

// TestWildcardRecvFailsOnMemberCrash: an outstanding MPI_ANY_SOURCE
// receive completes with error as soon as any communicator member
// fails — the failed rank might have been the intended sender.
func TestWildcardRecvFailsOnMemberCrash(t *testing.T) {
	k, _, _, j := testJobNet(3, JobOptions{})
	var recvErr error
	j.Start(func(ctx *sim.Ctx, r *Rank) {
		if r.ID() != 0 {
			ctx.Sleep(5 * time.Second)
			return
		}
		_, recvErr = r.Recv(ctx, r.World(), AnySource, AnyTag)
	})
	k.At(time.Second, sim.PrioNormal, func() { j.CrashRank(2) })
	if err := k.RunUntil(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	var rf *RankFailedError
	if !errors.As(recvErr, &rf) || rf.Rank != 2 {
		t.Fatalf("wildcard recv error = %v, want *RankFailedError{Rank: 2}", recvErr)
	}
}

// TestRendezvousSenderFailsWhenReceiverCrashes: a rendezvous send
// blocked on clear-to-send fails (rather than hangs) when the
// receiver dies before matching.
func TestRendezvousSenderFailsWhenReceiverCrashes(t *testing.T) {
	k, _, _, j := testJobNet(2, JobOptions{})
	var sendErr error
	j.Start(func(ctx *sim.Ctx, r *Rank) {
		if r.ID() != 0 {
			ctx.Sleep(5 * time.Second) // never posts the receive
			return
		}
		sendErr = r.Send(ctx, r.World(), 1, 0, units.MB, nil)
	})
	k.At(time.Second, sim.PrioNormal, func() { j.CrashRank(1) })
	if err := k.RunUntil(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(sendErr, ErrRankFailed) {
		t.Fatalf("rendezvous send error = %v, want ErrRankFailed", sendErr)
	}
}

// TestRendezvousReceiverFailsWhenSenderCrashes: a receiver blocked
// waiting for announced rendezvous data fails when the sender dies
// between RTS and the data.
func TestRendezvousReceiverFailsWhenSenderCrashes(t *testing.T) {
	k, _, _, j := testJobNet(2, JobOptions{})
	var recvErr error
	recvErrSet := false
	j.Start(func(ctx *sim.Ctx, r *Rank) {
		w := r.World()
		if r.ID() == 0 {
			// 8 MB at 100 Mb/s takes ~0.7 s; the crash at 100 ms lands
			// mid-transfer, after the CTS.
			_ = r.Send(ctx, w, 1, 0, 8*units.MB, nil)
			return
		}
		_, recvErr = r.Recv(ctx, w, 0, 0)
		recvErrSet = true
	})
	k.At(100*time.Millisecond, sim.PrioNormal, func() { j.CrashRank(0) })
	if err := k.RunUntil(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if !recvErrSet {
		t.Fatal("receiver still blocked after sender crash")
	}
	if !errors.Is(recvErr, ErrRankFailed) {
		t.Fatalf("recv error = %v, want ErrRankFailed", recvErr)
	}
}

// TestBcastPartialFailure: a binomial-tree broadcast with one crashed
// leaf fails on the rank whose tree edge touches the failure (the
// leaf's parent) while the other ranks complete — "some but not
// necessarily all processes return errors".
func TestBcastPartialFailure(t *testing.T) {
	k, _, _, j := testJobNet(4, JobOptions{})
	errs := make([]error, 4)
	done := make([]bool, 4)
	j.Start(func(ctx *sim.Ctx, r *Rank) {
		if r.ID() == 3 {
			ctx.Sleep(10 * time.Second)
			return
		}
		ctx.Sleep(2 * time.Second) // let the crash land first
		_, errs[r.ID()] = r.Bcast(ctx, r.World(), 0, 10*units.KB, "payload")
		done[r.ID()] = true
	})
	k.At(time.Second, sim.PrioNormal, func() { j.CrashRank(3) })
	if err := k.RunUntil(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	for _, id := range []int{0, 1, 2} {
		if !done[id] {
			t.Fatalf("rank %d still blocked in Bcast", id)
		}
	}
	// In the 4-rank binomial tree rooted at 0, rank 2 relays to rank 3.
	if errs[0] != nil || errs[1] != nil {
		t.Fatalf("ranks off the failed edge errored: rank0=%v rank1=%v", errs[0], errs[1])
	}
	if !errors.Is(errs[2], ErrRankFailed) {
		t.Fatalf("rank 2 (parent of crashed leaf) error = %v, want ErrRankFailed", errs[2])
	}
}

// TestCheckpointRestartResume: a worker checkpointing every few steps
// is crashed and restarted via the fault-scenario actions; the new
// incarnation resumes from the last checkpoint and finishes the
// remaining steps without redoing completed work more than one
// checkpoint interval back.
func TestCheckpointRestartResume(t *testing.T) {
	const steps = 20
	k, net, _, j := testJobNet(2, JobOptions{})
	var firstStep = -1 // first step executed by incarnation 1
	var finalEpoch int
	completed := false
	j.Start(func(ctx *sim.Ctx, r *Rank) {
		w := r.World()
		if r.ID() == 0 {
			// Coordinator: receive step acks until the worker finishes,
			// tolerating the crash window.
			got := 0
			for got < steps {
				m, err := r.Recv(ctx, w, 1, 0)
				if err != nil {
					ctx.Sleep(100 * time.Millisecond)
					continue
				}
				if m.Data.(int) >= steps-1 {
					break
				}
				got++
			}
			completed = true
			return
		}
		step := 0
		if ck, ok := r.LastCheckpoint(); ok {
			step = ck.Step
			if firstStep < 0 {
				firstStep = step
			}
		}
		for ; step < steps; step++ {
			r.Compute(ctx, 100*time.Millisecond)
			if r.Crashed() {
				return
			}
			if (step+1)%4 == 0 {
				r.SaveCheckpoint(ctx, step+1, nil)
			}
			if err := r.Send(ctx, w, 0, 0, units.KB, step); err != nil {
				return
			}
		}
		finalEpoch = r.Epoch()
	})
	faults.NewScenario("ckpt-restart").
		RankCrash(time.Second, "rank-1").
		RankRestart(1500*time.Millisecond, "rank-1").
		MustApplyTargets(net, faults.Targets{Ranks: j})
	if err := k.RunUntil(time.Minute); err != nil {
		t.Fatal(err)
	}
	if !completed {
		t.Fatal("job never completed after restart")
	}
	if finalEpoch != 1 {
		t.Fatalf("final incarnation epoch = %d, want 1", finalEpoch)
	}
	// The crash lands around step 9-10 (100 ms per step); the last
	// checkpoint then is step 8: the restart must resume from a
	// checkpoint, not from scratch.
	if firstStep <= 0 {
		t.Fatalf("restarted incarnation resumed at step %d, want a checkpointed step > 0", firstStep)
	}
	if firstStep%4 != 0 {
		t.Fatalf("restart resumed at step %d, not a checkpoint boundary", firstStep)
	}
}

// TestRestartOnFreshHost: a crashed rank restarted on a spare node
// (new TCP stack, new address) rejoins the mesh and communicates.
func TestRestartOnFreshHost(t *testing.T) {
	k, net, sw, j := testJobNet(2, JobOptions{})
	spare := net.AddNode("spare-host")
	net.Connect(spare, sw, 100*units.Mbps, 100*time.Microsecond)
	net.ComputeRoutes()
	spareHost := NewHost(spare, tcpsim.DefaultOptions())

	delivered := -1
	j.Start(func(ctx *sim.Ctx, r *Rank) {
		w := r.World()
		if r.ID() == 0 {
			for {
				m, err := r.Recv(ctx, w, 1, 0)
				if err != nil {
					ctx.Sleep(100 * time.Millisecond)
					continue
				}
				if m.Data.(int) == 99 {
					delivered = 99
					return
				}
			}
		}
		if r.Epoch() == 0 {
			ctx.Sleep(time.Hour) // first incarnation idles until crashed
			return
		}
		// Restarted on the spare host: prove the new path works.
		if r.Host().Node.Name() != "spare-host" {
			t.Errorf("restarted on %q, want spare-host", r.Host().Node.Name())
		}
		_ = r.Send(ctx, w, 0, 0, units.KB, 99)
	})
	k.At(time.Second, sim.PrioNormal, func() { j.CrashRank(1) })
	k.At(2*time.Second, sim.PrioNormal, func() { j.RestartRank(1, spareHost) })
	if err := k.RunUntil(time.Minute); err != nil {
		t.Fatal(err)
	}
	if delivered != 99 {
		t.Fatal("message from the fresh-host incarnation never arrived")
	}
}

// TestRankFailureChaosSoak drives a 4-rank ring workload through a
// seeded exponential crash/restart schedule and checks the
// fault-tolerance contract end to end: no surviving rank ever hangs on
// communication with a failed rank (the run keeps making progress to
// the horizon), and the mesh keeps carrying traffic after restarts.
func TestRankFailureChaosSoak(t *testing.T) {
	const horizon = 2 * time.Minute
	k, net, _, j := testJobNet(4, JobOptions{})
	progress := make([]int, 4) // successful round-trips per rank
	j.Start(func(ctx *sim.Ctx, r *Rank) {
		w := r.World()
		n := j.Size()
		dest := (r.ID() + 1) % n
		src := (r.ID() + n - 1) % n
		for ctx.Now() < horizon && !r.Crashed() {
			if err := r.Send(ctx, w, dest, 0, 64*units.KB, r.ID()); err != nil {
				ctx.Sleep(50 * time.Millisecond)
				continue
			}
			if _, err := r.Recv(ctx, w, src, 0); err != nil {
				ctx.Sleep(50 * time.Millisecond)
				continue
			}
			progress[r.ID()]++
			ctx.Sleep(10 * time.Millisecond)
		}
	})
	sc := faults.RankMTBF(sim.NewRNG(7),
		[]string{"rank-0", "rank-1", "rank-2", "rank-3"},
		20*time.Second, 2*time.Second, horizon)
	sc.MustApplyTargets(net, faults.Targets{Ranks: j})
	if err := k.RunUntil(horizon); err != nil {
		t.Fatal(err)
	}
	if k.Now() < horizon {
		t.Fatalf("simulation stalled at %v before the %v horizon", k.Now(), horizon)
	}
	for id, p := range progress {
		if p == 0 {
			t.Errorf("rank %d made no progress across the whole soak", id)
		}
	}
	// The schedule repairs every crash before the horizon, so the job
	// must end with an empty failed group.
	if got := j.FailedRanks(); len(got) != 0 {
		t.Fatalf("failed ranks at horizon: %v, want none", got)
	}
}
