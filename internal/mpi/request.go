package mpi

import (
	"fmt"

	"mpichgq/internal/sim"
	"mpichgq/internal/units"
)

// Request is a handle to a nonblocking operation (MPI_Request).
type Request struct {
	done bool
	err  error
	msg  *Message // for receives
	cond *sim.Cond
}

// Done reports completion without blocking (MPI_Test).
func (q *Request) Done() bool { return q.done }

// Wait blocks until the operation completes and returns its error
// (MPI_Wait).
func (q *Request) Wait(ctx *sim.Ctx) error {
	for !q.done {
		q.cond.Wait(ctx)
	}
	return q.err
}

// Message returns the received message after Wait on an Irecv request.
func (q *Request) Message() *Message { return q.msg }

func (q *Request) complete(msg *Message, err error) {
	q.msg = msg
	q.err = err
	q.done = true
	q.cond.Broadcast()
}

// Isend starts a nonblocking send. The data is handed to a background
// helper process; Wait returns once the send has standard-mode
// completed (buffered or delivered).
func (r *Rank) Isend(ctx *sim.Ctx, comm *Comm, dest, tag int, n units.ByteSize, data any) (*Request, error) {
	if _, err := comm.globalRank(dest); err != nil {
		return nil, err
	}
	q := &Request{cond: sim.NewCond(r.job.k)}
	r.job.k.Spawn(fmt.Sprintf("mpi-isend-%d", r.id), func(sctx *sim.Ctx) {
		err := r.Send(sctx, comm, dest, tag, n, data)
		q.complete(nil, err)
	})
	return q, nil
}

// Irecv starts a nonblocking receive.
func (r *Rank) Irecv(ctx *sim.Ctx, comm *Comm, src, tag int) (*Request, error) {
	if src != AnySource {
		if _, err := comm.globalRank(src); err != nil {
			return nil, err
		}
	}
	q := &Request{cond: sim.NewCond(r.job.k)}
	r.job.k.Spawn(fmt.Sprintf("mpi-irecv-%d", r.id), func(rctx *sim.Ctx) {
		msg, err := r.Recv(rctx, comm, src, tag)
		q.complete(msg, err)
	})
	return q, nil
}

// WaitAll waits for every request and returns the first error.
func WaitAll(ctx *sim.Ctx, reqs ...*Request) error {
	var first error
	for _, q := range reqs {
		if err := q.Wait(ctx); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// PersistentRequest is a reusable communication request
// (MPI_Send_init / MPI_Recv_init): the envelope is fixed once, then
// Start/Wait cycles repeat it — the classic idiom for fixed
// communication patterns like halo exchanges.
type PersistentRequest struct {
	rank *Rank
	send bool
	comm *Comm
	peer int // dest or src
	tag  int
	size units.ByteSize
	data any

	cur *Request
}

// SendInit creates a persistent send request. Data set here is sent
// on every Start; SetData replaces it between iterations.
func (r *Rank) SendInit(comm *Comm, dest, tag int, n units.ByteSize, data any) (*PersistentRequest, error) {
	if _, err := comm.globalRank(dest); err != nil {
		return nil, err
	}
	return &PersistentRequest{rank: r, send: true, comm: comm, peer: dest, tag: tag, size: n, data: data}, nil
}

// RecvInit creates a persistent receive request.
func (r *Rank) RecvInit(comm *Comm, src, tag int) (*PersistentRequest, error) {
	if src != AnySource {
		if _, err := comm.globalRank(src); err != nil {
			return nil, err
		}
	}
	return &PersistentRequest{rank: r, comm: comm, peer: src, tag: tag}, nil
}

// SetData replaces the payload sent by the next Start (send requests
// only).
func (p *PersistentRequest) SetData(n units.ByteSize, data any) {
	p.size = n
	p.data = data
}

// Start begins one iteration of the persistent operation. Starting an
// already-active request is an error (MPI semantics).
func (p *PersistentRequest) Start(ctx *sim.Ctx) error {
	if p.cur != nil && !p.cur.Done() {
		return fmt.Errorf("mpi: persistent request started while active")
	}
	var err error
	if p.send {
		p.cur, err = p.rank.Isend(ctx, p.comm, p.peer, p.tag, p.size, p.data)
	} else {
		p.cur, err = p.rank.Irecv(ctx, p.comm, p.peer, p.tag)
	}
	return err
}

// Wait blocks until the current iteration completes. For receives the
// message is available afterwards via Message.
func (p *PersistentRequest) Wait(ctx *sim.Ctx) error {
	if p.cur == nil {
		return fmt.Errorf("mpi: persistent request waited before Start")
	}
	return p.cur.Wait(ctx)
}

// Message returns the last completed receive's message.
func (p *PersistentRequest) Message() *Message {
	if p.cur == nil {
		return nil
	}
	return p.cur.Message()
}
