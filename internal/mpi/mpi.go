// Package mpi implements the subset of the Message Passing Interface
// that MPICH-GQ builds on: ranks, intracommunicators and two-party
// intercommunicators with isolated contexts, blocking and nonblocking
// point-to-point operations with eager and rendezvous protocols,
// binomial-tree collectives, and — centrally for this paper — the MPI
// attribute mechanism (keyvals, AttrPut/AttrGet) through which
// applications specify QoS without leaving the MPI standard.
//
// Transport is TCP (tcpsim) through the globus-io wrapper, mirroring
// MPICH-G2's TCP device: one connection per rank pair, established at
// startup, with messages framed as stream markers.
package mpi

import (
	"fmt"
	"time"

	"mpichgq/internal/dsrt"
	"mpichgq/internal/globusio"
	"mpichgq/internal/metrics"
	"mpichgq/internal/netsim"
	"mpichgq/internal/sim"
	"mpichgq/internal/tcpsim"
	"mpichgq/internal/units"
)

// Host binds a rank to its execution resources: a network node with a
// TCP stack and a CPU.
type Host struct {
	Node *netsim.Node
	TCP  *tcpsim.Stack
	CPU  *dsrt.CPU
}

// NewHost builds a Host on node nd, creating the TCP stack and CPU.
func NewHost(nd *netsim.Node, tcpOpts tcpsim.Options) *Host {
	return &Host{
		Node: nd,
		TCP:  tcpsim.NewStack(nd, tcpOpts),
		CPU:  dsrt.NewCPU(nd.Network().Kernel(), nd.Name()),
	}
}

// JobOptions tune an MPI job.
type JobOptions struct {
	// BasePort: rank i listens on BasePort+i. Default 5000.
	BasePort netsim.Port
	// EagerThreshold: messages at or below go eager; above use
	// rendezvous. Default 128 KB (MPICH TCP device era default).
	EagerThreshold units.ByteSize
	// CopyCostPerKB charges each rank's CPU for socket copies (0 =
	// free I/O).
	CopyCostPerKB time.Duration
	// SockBuf overrides both socket buffer sizes on MPI connections
	// when non-zero (the §5.5 tuning knob).
	SockBuf units.ByteSize
	// Shaper enables end-system traffic shaping on all MPI
	// connections (the §5.4 extension).
	Shaper *globusio.ShaperConfig
}

func (o JobOptions) withDefaults() JobOptions {
	if o.BasePort == 0 {
		o.BasePort = 5000
	}
	if o.EagerThreshold == 0 {
		o.EagerThreshold = 128 * units.KB
	}
	return o
}

// envelopeSize is the wire overhead of one message header.
const envelopeSize = 64 * units.Byte

// Job is one MPI application: size ranks bound to hosts.
type Job struct {
	k     *sim.Kernel
	hosts []*Host
	ranks []*Rank
	opts  JobOptions

	world    *Comm
	nextCtx  int
	ctxAlloc map[string]int // deterministic collective ctx allocation

	// main is the application entry point, retained so restarted rank
	// incarnations can re-run it.
	main func(ctx *sim.Ctx, r *Rank)

	ready int
	// initSkips counts ranks that crashed before completing MPI_Init;
	// they count toward the init barrier so the survivors still start.
	initSkips int
	started   bool
	goCond    *sim.Cond

	// Fault-tolerance state (see ft.go).
	failed     map[int]bool // currently failed world ranks
	restarting map[int]bool // ranks mid-rejoin
	restarts   int          // total restarts (0 = mesh never changed)
	observers  []func(rank int, ev RankEvent)
	errhandler Errhandler
	restartOn  func(rank int) *Host
	ckpts      map[int]Checkpoint // latest application checkpoint per rank
	inits      map[int]Checkpoint // MPI_Init-time system snapshot per rank

	keyvals map[Keyval]*keyvalInfo
	nextKV  Keyval
}

// NewJob creates a job with one rank per host entry (a host may appear
// multiple times to co-locate ranks).
func NewJob(k *sim.Kernel, hosts []*Host, opts JobOptions) *Job {
	if len(hosts) < 1 {
		panic("mpi: job needs at least one rank")
	}
	j := &Job{
		k:          k,
		hosts:      hosts,
		opts:       opts.withDefaults(),
		nextCtx:    2, // 0/1 belong to the world communicator
		ctxAlloc:   make(map[string]int),
		goCond:     sim.NewCond(k),
		failed:     make(map[int]bool),
		restarting: make(map[int]bool),
		ckpts:      make(map[int]Checkpoint),
		inits:      make(map[int]Checkpoint),
		keyvals:    make(map[Keyval]*keyvalInfo),
	}
	group := make([]int, len(hosts))
	for i := range group {
		group[i] = i
	}
	j.world = &Comm{job: j, ctxID: 0, group: group}
	for i, h := range hosts {
		j.ranks = append(j.ranks, newRank(j, i, h))
	}
	return j
}

// Size returns the number of ranks.
func (j *Job) Size() int { return len(j.ranks) }

// Rank returns rank i's handle (valid after NewJob, usable after
// Start).
func (j *Job) Rank(i int) *Rank { return j.ranks[i] }

// World returns the world communicator.
func (j *Job) World() *Comm { return j.world }

// Kernel returns the simulation kernel.
func (j *Job) Kernel() *sim.Kernel { return j.k }

// Start launches every rank: connections are established all-to-all,
// then main runs on each rank's process. Call once. The main function
// is retained: restarted rank incarnations re-run it, recovering
// their state from LastCheckpoint.
func (j *Job) Start(main func(ctx *sim.Ctx, r *Rank)) {
	j.main = main
	for _, r := range j.ranks {
		r := r
		j.k.Spawn(fmt.Sprintf("mpi-rank-%d", r.id), func(ctx *sim.Ctx) {
			if !r.setup(ctx) {
				// Crashed during wiring; a restart re-enters through
				// RestartRank's own process.
				r.done = true
				return
			}
			// Wait for every rank to finish wiring (MPI_Init). Ranks
			// that crashed mid-wiring count via initSkips so the
			// survivors are not stuck at the barrier.
			r.inited = true
			j.ready++
			j.maybeGo()
			for !j.started {
				j.goCond.Wait(ctx)
			}
			main(ctx, r)
			r.done = true
		})
	}
}

// maybeGo releases the init barrier once every rank has either wired
// up or crashed trying.
func (j *Job) maybeGo() {
	if !j.started && j.ready+j.initSkips >= len(j.ranks) {
		j.started = true
		j.goCond.Broadcast()
	}
}

// Done reports whether every rank's main has returned.
func (j *Job) Done() bool {
	for _, r := range j.ranks {
		if !r.done {
			return false
		}
	}
	return true
}

// allocCtx deterministically assigns a pair of context ids for a
// collective communicator-creation call: every participant passes the
// same key and receives the same ids.
func (j *Job) allocCtx(key string) int {
	if id, ok := j.ctxAlloc[key]; ok {
		return id
	}
	id := j.nextCtx
	j.nextCtx += 2
	j.ctxAlloc[key] = id
	return id
}

// Rank is one MPI process.
type Rank struct {
	job  *Job
	id   int
	host *Host
	task *dsrt.Task
	done bool

	// Fault-tolerance state (see ft.go). epoch counts incarnations;
	// crashed marks the current incarnation dead; inited records that
	// MPI_Init completed; wired signals connection-mesh changes.
	crashed bool
	epoch   int
	inited  bool
	wired   *sim.Cond

	listener  *tcpsim.Listener
	conns     map[int]*globusio.IO
	finalized bool

	// Matching engine.
	unexpected []*envelope
	posted     []*postedRecv
	matchedRdv []*envelope // matched rendezvous envelopes awaiting data
	rdvPending map[uint64]*rdvSend
	nextRdvSeq uint64

	// Per-destination send sequence counters (diagnostics).
	sent, received uint64

	splitEpoch map[int]int // per-source-comm CommSplit call counter
	pairEpoch  map[[3]int]int
	worldComm  *Comm
	deadPeers  map[int]bool

	// cm caches per-communicator metric handles, keyed by context id.
	cm map[int]*commMetrics
}

// commMetrics bundles the handles for one (rank, communicator) pair.
// Resolved lazily on first traffic; the underlying series are shared
// through the registry, so an experiment can read them back with
// Registry.CounterValue using the same name and labels.
type commMetrics struct {
	subject   string // interned "rank-N" event subject
	sentMsgs  *metrics.Counter
	sentBytes *metrics.Counter
	recvMsgs  *metrics.Counter
	recvBytes *metrics.Counter
	latency   *metrics.Histogram
}

// commMetrics returns (creating on first use) the handles for ctxID.
func (r *Rank) commMetrics(ctxID int) *commMetrics {
	if m := r.cm[ctxID]; m != nil {
		return m
	}
	reg := r.job.k.Metrics()
	rank := fmt.Sprintf("%d", r.id)
	comm := fmt.Sprintf("%d", ctxID)
	m := &commMetrics{
		subject: r.task.Name(),
		sentMsgs: reg.Counter("mpi_sent_messages_total",
			"point-to-point messages sent", "rank", rank, "comm", comm),
		sentBytes: reg.Counter("mpi_sent_bytes_total",
			"point-to-point payload bytes sent", "rank", rank, "comm", comm),
		recvMsgs: reg.Counter("mpi_recv_messages_total",
			"point-to-point messages received", "rank", rank, "comm", comm),
		recvBytes: reg.Counter("mpi_recv_bytes_total",
			"point-to-point payload bytes received", "rank", rank, "comm", comm),
		latency: reg.Histogram("mpi_message_latency_seconds",
			"send-to-receive one-way message latency",
			metrics.DefLatencyBuckets, "rank", rank, "comm", comm),
	}
	if r.cm == nil {
		r.cm = make(map[int]*commMetrics)
	}
	r.cm[ctxID] = m
	return m
}

// RecvBytesCounter exposes the rank's received-payload-bytes counter
// on comm, letting harnesses (e.g. the Figure 5 throughput sweep)
// measure goodput straight from the metrics layer.
func (r *Rank) RecvBytesCounter(comm *Comm) *metrics.Counter {
	return r.commMetrics(comm.ctxID).recvBytes
}

func newRank(j *Job, id int, h *Host) *Rank {
	return &Rank{
		job:        j,
		id:         id,
		host:       h,
		task:       h.CPU.NewTask(fmt.Sprintf("rank-%d", id)),
		wired:      sim.NewCond(j.k),
		conns:      make(map[int]*globusio.IO),
		rdvPending: make(map[uint64]*rdvSend),
		splitEpoch: make(map[int]int),
		pairEpoch:  make(map[[3]int]int),
	}
}

// ID returns the rank's world rank.
func (r *Rank) ID() int { return r.id }

// Host returns the rank's execution host.
func (r *Rank) Host() *Host { return r.host }

// Task returns the rank's DSRT CPU task, for application-level compute
// and for CPU reservations.
func (r *Rank) Task() *dsrt.Task { return r.task }

// World returns this rank's view of the world communicator. Each rank
// has its own handle (attributes are process-local in MPI), all
// sharing context 0 and the full group.
func (r *Rank) World() *Comm {
	if r.worldComm == nil {
		r.worldComm = &Comm{job: r.job, ctxID: 0, group: r.job.world.group}
	}
	return r.worldComm
}

// Compute burns CPU time on the rank's task (application "work").
func (r *Rank) Compute(ctx *sim.Ctx, work time.Duration) {
	r.task.Compute(ctx, work)
}

// port returns the listen port of rank i.
func (j *Job) port(i int) netsim.Port {
	return j.opts.BasePort + netsim.Port(i)
}

// ioConfig builds the globus-io wrapper configuration for this rank.
func (r *Rank) ioConfig() globusio.Config {
	return globusio.Config{
		Task:          r.task,
		CopyCostPerKB: r.job.opts.CopyCostPerKB,
		Shaper:        r.job.opts.Shaper,
	}
}

// hello is the first message on every MPI connection, identifying the
// dialing rank.
type hello struct{ from int }

// setup wires this rank to all others: dial every lower rank, accept
// from every higher rank. The accept loop persists for the rank's
// lifetime so restarted peers can reconnect. Returns false if this
// rank was crashed while wiring.
func (r *Rank) setup(ctx *sim.Ctx) bool {
	l, err := r.host.TCP.Listen(r.job.port(r.id))
	if err != nil {
		panic(fmt.Sprintf("mpi: rank %d listen: %v", r.id, err))
	}
	r.listener = l
	ctx.SpawnChild(fmt.Sprintf("mpi-accept-%d", r.id), func(actx *sim.Ctx) {
		r.acceptLoop(actx, l)
	})
	for peer := 0; peer < r.id; peer++ {
		if r.job.failed[peer] {
			continue // crashed before we could dial; nothing to wire
		}
		if !r.dialPeer(ctx, peer) {
			return false
		}
	}
	for !r.crashed && !r.wiredUp() {
		r.wired.Wait(ctx)
	}
	return !r.crashed
}

// acceptLoop accepts peer connections for the life of the listener
// (until Finalize or a crash closes it): the initial higher-rank
// dials, and reconnects from restarted peers.
func (r *Rank) acceptLoop(actx *sim.Ctx, l *tcpsim.Listener) {
	for {
		c, err := l.Accept(actx)
		if err != nil {
			return // listener closed
		}
		io := globusio.Wrap(r.job.k, c, r.ioConfig())
		r.applySockBuf(io)
		_, obj, err := io.ReadMsg(actx)
		if err != nil {
			// Dialer died between connect and hello.
			io.Close()
			continue
		}
		peer := obj.(hello).from
		r.registerConn(actx, peer, io)
	}
}

// dialPeer connects to peer and sends the hello. Returns false only
// if this rank crashed mid-dial; a peer that crashed under the dial
// is skipped (its failure surfaces through the failed set instead).
func (r *Rank) dialPeer(ctx *sim.Ctx, peer int) bool {
	c, err := r.host.TCP.Dial(ctx, r.job.hosts[peer].Node.Addr(), r.job.port(peer))
	if err != nil {
		if r.crashed {
			return false
		}
		if r.job.failed[peer] {
			return true
		}
		panic(fmt.Sprintf("mpi: rank %d dial %d: %v", r.id, peer, err))
	}
	io := globusio.Wrap(r.job.k, c, r.ioConfig())
	r.applySockBuf(io)
	if err := io.WriteMsg(ctx, int64ToSize(int64(envelopeSize)), hello{from: r.id}); err != nil {
		if r.crashed {
			return false
		}
		if r.job.failed[peer] {
			io.Close()
			return true
		}
		panic(fmt.Sprintf("mpi: rank %d hello to %d: %v", r.id, peer, err))
	}
	r.registerConn(ctx, peer, io)
	return true
}

// wiredUp reports whether this rank holds a connection to every
// currently-live peer.
func (r *Rank) wiredUp() bool {
	for p := 0; p < r.job.Size(); p++ {
		if p == r.id || r.job.failed[p] {
			continue
		}
		if r.conns[p] == nil {
			return false
		}
	}
	return true
}

func int64ToSize(n int64) units.ByteSize { return units.ByteSize(n) }

func (r *Rank) applySockBuf(io *globusio.IO) {
	if b := r.job.opts.SockBuf; b > 0 {
		io.SetSockBufs(b, b)
	}
}

// registerConn records the connection and starts its reader (the
// progress engine for that peer). A rank has exactly one live
// incarnation, so in a job that has seen restarts the newest
// connection for a peer wins; in a restart-free job a duplicate is
// still the wiring bug it always was.
func (r *Rank) registerConn(ctx *sim.Ctx, peer int, io *globusio.IO) {
	if old := r.conns[peer]; old != nil {
		if r.job.restarts == 0 {
			panic(fmt.Sprintf("mpi: rank %d has duplicate connection to %d", r.id, peer))
		}
		old.Close() // stale connection from the peer's previous incarnation
	}
	delete(r.deadPeers, peer)
	r.conns[peer] = io
	r.wired.Broadcast()
	ctx.SpawnChild(fmt.Sprintf("mpi-reader-%d<-%d", r.id, peer), func(rctx *sim.Ctx) {
		r.readerLoop(rctx, peer, io)
	})
}

// Conn returns the wrapped connection to a peer world rank (nil for
// self). Exposed so the QoS layer can bind flows to reservations.
func (r *Rank) Conn(peer int) *globusio.IO { return r.conns[peer] }

// Wtime returns elapsed virtual time in seconds (MPI_Wtime).
func (r *Rank) Wtime(ctx *sim.Ctx) float64 { return ctx.Now().Seconds() }

// Finalize performs a clean shutdown (MPI_Finalize): a world barrier,
// then every connection is drained and closed and the listener shut
// down. Communication after Finalize fails.
func (r *Rank) Finalize(ctx *sim.Ctx) error {
	if r.finalized {
		return fmt.Errorf("mpi: rank %d already finalized", r.id)
	}
	if err := r.Barrier(ctx, r.World()); err != nil {
		return err
	}
	r.finalized = true
	for peer, conn := range r.conns {
		// Drain may fail if the peer closed first; proceed to Close
		// regardless — teardown is best effort past the barrier.
		_ = conn.Drain(ctx)
		conn.Close()
		delete(r.conns, peer)
	}
	if r.listener != nil {
		r.listener.Close()
		r.listener = nil
	}
	r.task.Close()
	return nil
}

// Finalized reports whether Finalize completed.
func (r *Rank) Finalized() bool { return r.finalized }
