// Fault tolerance: rank crash/restart, failed-process groups, error
// handlers, and checkpointing — the MPICH fault-tolerance model
// (MPI_ERRORS_RETURN semantics) applied to this simulation.
//
// The contract, following MPICH's Fault_Tolerance spec:
//
//   - A crashed rank's process dies abruptly: its connections abort,
//     its listener closes, its CPU task is released.
//   - Communication with a failed rank returns a typed error
//     (*RankFailedError, errors.Is-able against ErrRankFailed) instead
//     of hanging: sends fail fast, outstanding receives complete with
//     error, and wildcard (AnySource) receives complete with error as
//     soon as any member of the communicator has failed.
//   - Collectives fail on the ranks whose tree edges touch the failed
//     process; other ranks may complete normally ("some but not
//     necessarily all processes return errors").
//   - CommGroupFailed reports the failed-process group of a
//     communicator, so applications can reason about who is gone.
//   - A crashed rank can be restarted (same host or a fresh one): a
//     new incarnation rejoins the job's connection mesh and re-runs
//     the application main, which recovers its state from the last
//     checkpoint (SaveCheckpoint / LastCheckpoint).
package mpi

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"mpichgq/internal/faults"
	"mpichgq/internal/globusio"
	"mpichgq/internal/metrics"
	"mpichgq/internal/sim"
	"mpichgq/internal/spans"
)

// ErrRankFailed is the errors.Is target for all rank-failure errors.
var ErrRankFailed = errors.New("mpi: rank failed")

// RankFailedError reports that communication involved a failed rank
// (MPI_ERR_OTHER under MPI_ERRORS_RETURN). Rank is the world rank of
// the failed process — the peer, or the calling rank itself when its
// own process was crashed mid-operation.
type RankFailedError struct{ Rank int }

func (e *RankFailedError) Error() string {
	return fmt.Sprintf("mpi: rank %d failed", e.Rank)
}

// Is makes errors.Is(err, ErrRankFailed) match any rank failure.
func (e *RankFailedError) Is(target error) bool { return target == ErrRankFailed }

// Errhandler selects how communication errors surface
// (MPI_Errhandler_set on the world communicator).
type Errhandler int

const (
	// ErrorsReturn (the default here, unlike the MPI standard) returns
	// typed errors from communication calls so the application can
	// react — the mode the fault-tolerance model requires.
	ErrorsReturn Errhandler = iota
	// ErrorsAreFatal panics the calling process on any rank-failure
	// error, the MPI default for jobs that opt out of fault handling.
	ErrorsAreFatal
)

// SetErrhandler selects the job-wide error handler.
func (j *Job) SetErrhandler(h Errhandler) { j.errhandler = h }

// handleErr applies the job's error handler to a communication error.
func (r *Rank) handleErr(err error) error {
	if err != nil && r.job.errhandler == ErrorsAreFatal && errors.Is(err, ErrRankFailed) {
		panic(fmt.Sprintf("mpi: rank %d: %v (MPI_ERRORS_ARE_FATAL)", r.id, err))
	}
	return err
}

// RankEvent is a rank lifecycle transition delivered to observers.
type RankEvent int

const (
	// RankCrashed: the rank's process died.
	RankCrashed RankEvent = iota
	// RankRestarted: a new incarnation of the rank rejoined the job
	// (its connection mesh is being re-established; messages to it
	// will be delivered once wiring completes).
	RankRestarted
)

// Notify registers an observer for rank lifecycle events. Observers
// run synchronously at the transition (kernel context): keep them
// cheap — set a flag, record a timestamp — and do no blocking calls.
func (j *Job) Notify(fn func(rank int, ev RankEvent)) {
	j.observers = append(j.observers, fn)
}

func (j *Job) notifyRank(rank int, ev RankEvent) {
	for _, fn := range j.observers {
		fn(rank, ev)
	}
}

// Failed reports whether world rank i is currently failed.
func (j *Job) Failed(i int) bool { return j.failed[i] }

// FailedRanks returns the currently failed world ranks, sorted.
func (j *Job) FailedRanks() []int {
	var out []int
	for i := range j.failed {
		out = append(out, i)
	}
	sort.Ints(out)
	return out
}

// CommGroupFailed returns the failed-process group of c as local
// ranks, sorted (MPIX_Comm_group_failed). Empty means every member is
// alive.
func (r *Rank) CommGroupFailed(c *Comm) []int {
	var out []int
	for local, g := range c.group {
		if r.job.failed[g] {
			out = append(out, local)
		}
	}
	return out
}

// Crashed reports whether this rank's current incarnation has been
// crashed. Application mains should treat any communication error as
// a signal to return promptly; Crashed lets compute-only loops notice
// too.
func (r *Rank) Crashed() bool { return r.crashed }

// Epoch returns the rank's incarnation number: 0 for the original
// process, incremented by each restart.
func (r *Rank) Epoch() int { return r.epoch }

// rankTrace is the deterministic trace ID for rank i's lifecycle
// spans.
func (j *Job) rankTrace(i int) spans.TraceID {
	return spans.DeriveTrace(spans.NSRank, uint64(i))
}

// CrashRank fails world rank i immediately: its pending operations
// complete with *RankFailedError, its connections abort (so every
// peer's progress engine observes the failure), and its listener and
// CPU task are released. Safe to call from kernel context (fault
// injection events). Crashing an already-failed or finalized rank is
// a no-op.
func (j *Job) CrashRank(i int) {
	r := j.ranks[i]
	if r.crashed || r.finalized {
		return
	}
	r.crashed = true
	j.failed[i] = true
	j.k.Metrics().Events().Emit(metrics.EvRankCrash, r.task.Name(), int64(i), int64(r.epoch), 0)
	j.k.Tracer().Begin(j.rankTrace(i), 0, "rank.crash", r.task.Name()).
		Int("rank", int64(i)).Int("epoch", int64(r.epoch)).
		EndStatus(spans.StatusFailed)
	// Fail the rank's own outstanding operations so its blocked process
	// wakes, observes the error, and returns.
	r.failAllLocal(&RankFailedError{Rank: i})
	// Abort transport in deterministic (sorted-peer) order.
	for peer := 0; peer < j.Size(); peer++ {
		if conn := r.conns[peer]; conn != nil {
			conn.Close()
			delete(r.conns, peer)
		}
	}
	if r.listener != nil {
		r.listener.Close()
		r.listener = nil
	}
	r.task.Close()
	// The rank counts toward the init barrier even though it will never
	// reach it; its expected connections are gone, so re-check every
	// rank's wiring wait.
	if !r.inited {
		j.initSkips++
		j.maybeGo()
	}
	for _, rr := range j.ranks {
		rr.wired.Broadcast()
	}
	j.notifyRank(i, RankCrashed)
}

// failAllLocal completes every outstanding operation on this rank with
// err: posted receives, rendezvous sends awaiting CTS, and matched or
// unexpected rendezvous envelopes whose data will never arrive.
func (r *Rank) failAllLocal(err error) {
	for _, p := range r.posted {
		p.err = err
		p.cond.Broadcast()
	}
	r.posted = nil
	for _, s := range r.rdvPending {
		if !s.cts {
			s.err = err
			s.cond.Broadcast()
		}
	}
	failEnv := func(e *envelope) {
		if !e.arrived && e.ready != nil && e.err == nil {
			e.err = err
			e.ready.Broadcast()
		}
	}
	for _, e := range r.matchedRdv {
		failEnv(e)
	}
	for _, e := range r.unexpected {
		failEnv(e)
	}
}

// RestartOn installs a host policy for fault-injected restarts
// (faults.RankTarget.RankRestart): fn returns the host the named rank
// should restart on, nil meaning "same host as before". Without a
// policy, restarts reuse the rank's previous host.
func (j *Job) RestartOn(fn func(rank int) *Host) { j.restartOn = fn }

// RestartRank brings a crashed rank back as a fresh incarnation on h
// (nil = the rank's previous host, reusing its node, TCP stack, and
// CPU). The new process re-wires connections to every live peer and
// then re-runs the job's main function, which is expected to recover
// from LastCheckpoint. Restarting a live rank is a no-op.
func (j *Job) RestartRank(i int, h *Host) {
	r := j.ranks[i]
	if !r.crashed {
		return
	}
	if h == nil {
		h = r.host
	}
	r.host = h
	j.hosts[i] = h // peers resolve dial addresses through the host table
	r.task = h.CPU.NewTask(fmt.Sprintf("rank-%d", i))
	// Reset the transport and matching engine. Communicator handles,
	// context allocations, and split/pair epoch counters survive: the
	// application recovers its comm handles through the init-state
	// checkpoint instead of re-running collective creation calls.
	r.conns = make(map[int]*globusio.IO)
	r.unexpected, r.posted, r.matchedRdv = nil, nil, nil
	r.rdvPending = make(map[uint64]*rdvSend)
	r.deadPeers = nil
	r.epoch++
	r.crashed = false
	delete(j.failed, i)
	j.restarts++
	j.restarting[i] = true
	// The rank is alive again: peers' directed receives from it should
	// block for the reconnect instead of failing fast.
	for _, rr := range j.ranks {
		if rr != r {
			delete(rr.deadPeers, i)
		}
	}
	epoch := r.epoch
	j.k.Spawn(fmt.Sprintf("mpi-rank-%d-r%d", i, epoch), func(ctx *sim.Ctx) {
		span := j.k.Tracer().Begin(j.rankTrace(i), 0, "rank.restart", r.task.Name())
		span.Int("rank", int64(i)).Int("epoch", int64(epoch))
		r.rejoin(ctx)
		span.End()
		delete(j.restarting, i)
		j.k.Metrics().Events().Emit(metrics.EvRankRestart, r.task.Name(), int64(i), int64(epoch), 0)
		j.notifyRank(i, RankRestarted)
		if !j.started {
			// Crashed before MPI_Init completed: wait for the job to go.
			for !j.started {
				j.goCond.Wait(ctx)
			}
		}
		j.main(ctx, r)
		r.done = true
	})
}

// rejoin re-establishes the restarted rank's connection mesh: listen
// on the rank's well-known port, dial every live peer (keeping the
// lower-dials-higher rule toward peers that are themselves mid-
// restart, so no pair dials twice), and wait until every live peer is
// wired.
func (r *Rank) rejoin(ctx *sim.Ctx) {
	j := r.job
	l, err := r.host.TCP.Listen(j.port(r.id))
	if err != nil {
		panic(fmt.Sprintf("mpi: rank %d relisten: %v", r.id, err))
	}
	r.listener = l
	ctx.SpawnChild(fmt.Sprintf("mpi-accept-%d-r%d", r.id, r.epoch), func(actx *sim.Ctx) {
		r.acceptLoop(actx, l)
	})
	for peer := 0; peer < j.Size(); peer++ {
		if peer == r.id || j.failed[peer] || j.ranks[peer].finalized {
			continue
		}
		if j.restarting[peer] && peer > r.id {
			// The higher restarting peer dials us.
			continue
		}
		if !r.dialPeer(ctx, peer) {
			return // crashed again mid-rejoin
		}
	}
	for !r.crashed && !r.wiredUp() {
		r.wired.Wait(ctx)
	}
}

// Checkpoint is one saved rank state snapshot.
type Checkpoint struct {
	// Rank is the world rank the snapshot belongs to.
	Rank int
	// Epoch is the incarnation that saved it.
	Epoch int
	// Step is the application-defined progress marker (0 for the
	// init-state snapshot).
	Step int
	// State is the application payload.
	State any
	// At is the sim time the snapshot was taken.
	At time.Duration
}

// SaveInitState stores the rank's MPI_Init-time system snapshot:
// state every incarnation needs regardless of checkpointing policy —
// typically the communicator handles created during startup. It is
// always retained; LastCheckpoint falls back to it when no
// application checkpoint exists (the "no checkpointing" restart mode,
// which replays from step 0).
func (r *Rank) SaveInitState(state any) {
	if _, ok := r.job.inits[r.id]; ok {
		return // restarted incarnations keep the original snapshot
	}
	r.job.inits[r.id] = Checkpoint{Rank: r.id, Epoch: r.epoch, State: state, At: r.job.k.Now()}
}

// SaveCheckpoint stores a periodic application checkpoint at the
// given progress step, replacing the previous one (only the latest is
// kept — restart recovers from the last checkpoint).
func (r *Rank) SaveCheckpoint(ctx *sim.Ctx, step int, state any) {
	r.job.ckpts[r.id] = Checkpoint{
		Rank: r.id, Epoch: r.epoch, Step: step, State: state, At: r.job.k.Now(),
	}
	r.job.k.Metrics().Events().Emit(metrics.EvRankCkpt, r.task.Name(), int64(r.id), int64(step), 0)
}

// LastCheckpoint returns the rank's most recent snapshot: the latest
// SaveCheckpoint if any, else the SaveInitState snapshot, else
// ok=false (first incarnation, nothing saved yet).
func (r *Rank) LastCheckpoint() (Checkpoint, bool) {
	if c, ok := r.job.ckpts[r.id]; ok {
		return c, true
	}
	c, ok := r.job.inits[r.id]
	return c, ok
}

// RankTarget implements faults.RankResolver, so an mpi.Job can be
// handed to faults.Scenario.ApplyTargets directly: scenario rank
// names are task names ("rank-3").
func (j *Job) RankTarget(name string) faults.RankTarget {
	for i := range j.ranks {
		if fmt.Sprintf("rank-%d", i) == name {
			return rankTarget{j: j, i: i}
		}
	}
	return nil
}

// rankTarget adapts one rank to the faults.RankTarget interface.
type rankTarget struct {
	j *Job
	i int
}

// RankCrash implements faults.RankTarget.
func (t rankTarget) RankCrash() { t.j.CrashRank(t.i) }

// RankRestart implements faults.RankTarget: the restart host comes
// from the job's RestartOn policy (default: same host).
func (t rankTarget) RankRestart() {
	var h *Host
	if t.j.restartOn != nil {
		h = t.j.restartOn(t.i)
	}
	t.j.RestartRank(t.i, h)
}
