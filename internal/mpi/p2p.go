package mpi

import (
	"errors"
	"fmt"
	"io"
	"time"

	"mpichgq/internal/globusio"
	"mpichgq/internal/metrics"
	"mpichgq/internal/sim"
	"mpichgq/internal/units"
)

// Wildcards for Recv source and tag.
const (
	AnySource = -1
	AnyTag    = -1
)

// ErrRankFinished is returned when a communication partner's
// connection has shut down.
var ErrRankFinished = errors.New("mpi: peer connection closed")

// Message is a received point-to-point message.
type Message struct {
	Src  int // sender's rank in the communicator used for Recv
	Tag  int
	Len  units.ByteSize
	Data any
}

// wireKind discriminates protocol messages on a connection.
type wireKind uint8

const (
	kindEager wireKind = iota
	kindRTS
	kindCTS
	kindRdvData
)

// wireMsg is the marker object carried in the TCP stream for every
// MPI-level message.
type wireMsg struct {
	kind wireKind
	src  int // global rank of sender
	ctx  int // communicator context id
	tag  int
	size units.ByteSize
	data any
	seq  uint64 // rendezvous transaction id
	// sentAt is the sim time Send was called, carried so the receiver
	// can observe one-way latency.
	sentAt time.Duration
}

// envelope is a message known to the receiver (arrived eagerly, or
// announced by RTS with data still in flight).
type envelope struct {
	src     int // global rank
	ctx     int
	tag     int
	size    units.ByteSize
	data    any
	arrived bool      // data present
	rdvSeq  uint64    // for RTS envelopes
	rdvFrom int       // global rank to send CTS to
	matched bool      // a posted recv claimed it
	ready   *sim.Cond // signalled when data arrives (rendezvous)
	// err marks a rendezvous envelope whose data will never arrive
	// (the sender died between RTS and data); signalled via ready.
	err    error
	sentAt time.Duration
}

// postedRecv is a blocked or nonblocking receive awaiting a match.
type postedRecv struct {
	src  int // global rank or AnySource
	ctx  int
	tag  int
	env  *envelope
	err  error
	cond *sim.Cond
}

// peerDown fails pending and future receives from a finished or
// failed peer, and releases rendezvous senders waiting on its
// clear-to-send. A cleanly finalized peer yields ErrRankFinished and
// leaves wildcard receives alone; a crashed peer yields the typed
// *RankFailedError and also completes wildcard (AnySource) receives
// with error, per the MPICH fault-tolerance model. conn identifies
// the connection whose reader observed the shutdown: if a newer
// connection to the peer has already replaced it (the peer
// restarted), the teardown is stale and skipped.
func (r *Rank) peerDown(peer int, conn *globusio.IO) {
	if cur := r.conns[peer]; cur != nil && cur != conn {
		return // superseded by the peer's new incarnation
	} else if cur != nil {
		delete(r.conns, peer)
	}
	if r.deadPeers == nil {
		r.deadPeers = make(map[int]bool)
	}
	r.deadPeers[peer] = true
	r.wired.Broadcast() // wake senders blocked on the reconnect window
	err := error(ErrRankFinished)
	crashed := r.job.failed[peer]
	if crashed {
		err = &RankFailedError{Rank: peer}
	}
	kept := r.posted[:0]
	for _, p := range r.posted {
		if p.src == peer || (crashed && p.src == AnySource) {
			p.err = err
			p.cond.Broadcast()
			continue
		}
		kept = append(kept, p)
	}
	r.posted = kept
	for _, s := range r.rdvPending {
		if s.peer == peer && !s.cts {
			s.err = err
			s.cond.Broadcast()
		}
	}
	// Rendezvous envelopes announced by the dead peer whose data will
	// never arrive: fail them so blocked receivers wake.
	failEnv := func(e *envelope) {
		if e.src == peer && !e.arrived && e.ready != nil && e.err == nil {
			e.err = err
			e.ready.Broadcast()
		}
	}
	for _, e := range r.matchedRdv {
		failEnv(e)
	}
	for _, e := range r.unexpected {
		failEnv(e)
	}
}

// rdvSend tracks a sender-side rendezvous awaiting CTS.
type rdvSend struct {
	peer int
	cond *sim.Cond
	cts  bool
	err  error
}

// readerLoop is the per-peer progress engine: it turns stream markers
// into envelopes and drives the rendezvous protocol. When the peer's
// connection shuts down (clean or not), pending receives from that
// peer fail with ErrRankFinished rather than hanging.
func (r *Rank) readerLoop(ctx *sim.Ctx, peer int, conn *globusio.IO) {
	defer r.peerDown(peer, conn)
	for {
		_, obj, err := conn.ReadMsg(ctx)
		if err != nil {
			_ = io.EOF // clean and unclean shutdown treated alike
			return
		}
		m, ok := obj.(wireMsg)
		if !ok {
			panic(fmt.Sprintf("mpi: rank %d got non-wire object %T", r.id, obj))
		}
		switch m.kind {
		case kindEager:
			r.received++
			r.deliver(&envelope{
				src: m.src, ctx: m.ctx, tag: m.tag,
				size: m.size, data: m.data, arrived: true, sentAt: m.sentAt,
			})
		case kindRTS:
			env := &envelope{
				src: m.src, ctx: m.ctx, tag: m.tag,
				size: m.size, rdvSeq: m.seq, rdvFrom: m.src,
				ready: sim.NewCond(r.job.k), sentAt: m.sentAt,
			}
			r.deliver(env)
		case kindCTS:
			if s := r.rdvPending[m.seq]; s != nil {
				s.cts = true
				s.cond.Broadcast()
			}
		case kindRdvData:
			r.received++
			r.completeRdv(m)
		}
	}
}

// deliver matches an incoming envelope against posted receives or
// queues it as unexpected.
func (r *Rank) deliver(env *envelope) {
	for i, p := range r.posted {
		if p.matches(env) {
			r.posted = append(r.posted[:i], r.posted[i+1:]...)
			p.env = env
			env.matched = true
			r.maybeCTS(env)
			p.cond.Broadcast()
			return
		}
	}
	r.unexpected = append(r.unexpected, env)
}

// maybeCTS sends clear-to-send for a matched rendezvous envelope.
func (r *Rank) maybeCTS(env *envelope) {
	if env.arrived || env.ready == nil {
		return
	}
	// Send CTS from a helper process (we may be in kernel context).
	peer := env.rdvFrom
	seq := env.rdvSeq
	r.job.k.Spawn(fmt.Sprintf("mpi-cts-%d->%d", r.id, peer), func(ctx *sim.Ctx) {
		conn := r.conns[peer]
		if conn == nil {
			return
		}
		conn.WriteMsg(ctx, envelopeSize, wireMsg{kind: kindCTS, src: r.id, seq: seq})
	})
}

// completeRdv attaches arrived rendezvous data to its envelope.
func (r *Rank) completeRdv(m wireMsg) {
	// The envelope is either in unexpected or already matched by a
	// posted recv; find by (src, seq).
	if env := r.findRdv(m.src, m.seq); env != nil {
		env.data = m.data
		env.arrived = true
		if env.ready != nil {
			env.ready.Broadcast()
		}
		return
	}
	// Under failures the envelope may be legitimately gone: a crash
	// fails matched envelopes and the blocked Recv drops them, but
	// in-flight data can still be readable ahead of the connection
	// teardown. Drop the stray; in a healthy job it is a protocol bug.
	if r.crashed || len(r.job.failed) > 0 || r.job.restarts > 0 {
		return
	}
	panic(fmt.Sprintf("mpi: rank %d got rendezvous data with no envelope (src=%d seq=%d)", r.id, m.src, m.seq))
}

func (r *Rank) findRdv(src int, seq uint64) *envelope {
	for _, e := range r.unexpected {
		if e.src == src && e.rdvSeq == seq && e.ready != nil && !e.arrived {
			return e
		}
	}
	for _, p := range r.posted {
		if p.env != nil && p.env.src == src && p.env.rdvSeq == seq {
			return p.env
		}
	}
	// Matched envelopes held by blocked Recv calls.
	for _, e := range r.matchedRdv {
		if e.src == src && e.rdvSeq == seq && !e.arrived {
			return e
		}
	}
	return nil
}

func (p *postedRecv) matches(env *envelope) bool {
	if env.matched {
		return false
	}
	if p.ctx != env.ctx {
		return false
	}
	if p.src != AnySource && p.src != env.src {
		return false
	}
	if p.tag != AnyTag && p.tag != env.tag {
		return false
	}
	return true
}

// Send transmits n bytes with data attached to (dest, tag) on comm,
// blocking until the message is handed to the transport (standard-mode
// semantics: buffered locally or matched remotely).
func (r *Rank) Send(ctx *sim.Ctx, comm *Comm, dest, tag int, n units.ByteSize, data any) error {
	if n < 0 {
		return fmt.Errorf("mpi: negative message size %d", n)
	}
	gdest, err := comm.globalRank(dest)
	if err != nil {
		return err
	}
	if r.crashed {
		return r.handleErr(&RankFailedError{Rank: r.id})
	}
	if gdest != r.id && r.job.failed[gdest] {
		return r.handleErr(&RankFailedError{Rank: gdest})
	}
	now := r.job.k.Now()
	cm := r.commMetrics(comm.ctxID)
	if gdest == r.id {
		// Self-send: deliver directly.
		r.sent++
		r.received++
		cm.sentMsgs.Inc()
		cm.sentBytes.Add(int64(n))
		r.deliver(&envelope{src: r.id, ctx: comm.ctxID, tag: tag, size: n, data: data, arrived: true, sentAt: now})
		return nil
	}
	conn := r.conns[gdest]
	// A restarted job may catch the peer mid-rejoin: it is alive (not
	// failed, not finished) but its connection is still being wired.
	// Block until the mesh change resolves — a registered connection, the
	// peer's failure, or our own crash all broadcast wired.
	for conn == nil && !r.crashed && r.job.restarts > 0 &&
		!r.job.failed[gdest] && !r.deadPeers[gdest] {
		r.wired.Wait(ctx)
		conn = r.conns[gdest]
	}
	if r.crashed {
		return r.handleErr(&RankFailedError{Rank: r.id})
	}
	if conn == nil {
		if r.job.failed[gdest] {
			return r.handleErr(&RankFailedError{Rank: gdest})
		}
		if r.deadPeers[gdest] {
			return r.handleErr(ErrRankFinished)
		}
		return fmt.Errorf("mpi: rank %d has no connection to %d", r.id, gdest)
	}
	r.sent++
	cm.sentMsgs.Inc()
	cm.sentBytes.Add(int64(n))
	if n <= r.job.opts.EagerThreshold {
		if err := conn.WriteMsg(ctx, envelopeSize+n, wireMsg{
			kind: kindEager, src: r.id, ctx: comm.ctxID, tag: tag, size: n, data: data, sentAt: now,
		}); err != nil {
			return r.handleErr(r.commFail(gdest, err))
		}
		return nil
	}
	// Rendezvous: RTS, wait for CTS, then bulk data.
	r.nextRdvSeq++
	seq := r.nextRdvSeq
	pend := &rdvSend{peer: gdest, cond: sim.NewCond(r.job.k)}
	r.rdvPending[seq] = pend
	if err := conn.WriteMsg(ctx, envelopeSize, wireMsg{
		kind: kindRTS, src: r.id, ctx: comm.ctxID, tag: tag, size: n, seq: seq, sentAt: now,
	}); err != nil {
		delete(r.rdvPending, seq)
		return r.handleErr(r.commFail(gdest, err))
	}
	for !pend.cts && pend.err == nil {
		pend.cond.Wait(ctx)
	}
	delete(r.rdvPending, seq)
	if pend.err != nil {
		return r.handleErr(pend.err)
	}
	if err := conn.WriteMsg(ctx, envelopeSize+n, wireMsg{
		kind: kindRdvData, src: r.id, size: n, data: data, seq: seq,
	}); err != nil {
		return r.handleErr(r.commFail(gdest, err))
	}
	return nil
}

// commFail maps a transport-level write error to the MPI-level cause:
// the local rank crashed mid-call, the peer is in the failed group, or
// (otherwise) the raw transport error.
func (r *Rank) commFail(peer int, err error) error {
	if r.crashed {
		return &RankFailedError{Rank: r.id}
	}
	if r.job.failed[peer] {
		return &RankFailedError{Rank: peer}
	}
	return err
}

// Recv blocks until a message matching (src, tag) on comm arrives and
// returns it. src may be AnySource and tag AnyTag.
func (r *Rank) Recv(ctx *sim.Ctx, comm *Comm, src, tag int) (*Message, error) {
	gsrc := src
	if src != AnySource {
		var err error
		gsrc, err = comm.globalRank(src)
		if err != nil {
			return nil, err
		}
	}
	env, err := r.matchOrWait(ctx, comm, gsrc, tag)
	if err != nil {
		return nil, r.handleErr(err)
	}
	// Rendezvous: data may still be in flight.
	if !env.arrived {
		r.matchedRdv = append(r.matchedRdv, env)
		for !env.arrived && env.err == nil {
			env.ready.Wait(ctx)
		}
		r.dropMatchedRdv(env)
		if env.err != nil {
			return nil, r.handleErr(env.err)
		}
	}
	r.observeRecv(comm.ctxID, env)
	return &Message{
		Src:  comm.localRank(env.src),
		Tag:  env.tag,
		Len:  env.size,
		Data: env.data,
	}, nil
}

// observeRecv records delivery metrics: per-communicator message and
// byte counters, the one-way latency histogram, and an EvMPIRecv
// flight-recorder event.
func (r *Rank) observeRecv(ctxID int, env *envelope) {
	cm := r.commMetrics(ctxID)
	cm.recvMsgs.Inc()
	cm.recvBytes.Add(int64(env.size))
	lat := r.job.k.Now() - env.sentAt
	cm.latency.Observe(lat.Seconds())
	r.job.k.Metrics().Events().Emit(metrics.EvMPIRecv, cm.subject,
		int64(env.size), int64(ctxID), int64(lat))
}

// matchOrWait finds the first matching unexpected envelope or posts a
// receive and blocks. It fails fast when the awaited peer's
// connection has shut down or the peer is in the failed-process
// group; a wildcard receive fails when any rank in the communicator's
// group has failed (MPI_ANY_SOURCE cannot complete safely — the
// failed rank might have been the intended sender).
func (r *Rank) matchOrWait(ctx *sim.Ctx, comm *Comm, gsrc, tag int) (*envelope, error) {
	ctxID := comm.ctxID
	if r.crashed {
		return nil, &RankFailedError{Rank: r.id}
	}
	for i, e := range r.unexpected {
		p := postedRecv{src: gsrc, ctx: ctxID, tag: tag}
		if p.matches(e) {
			r.unexpected = append(r.unexpected[:i], r.unexpected[i+1:]...)
			e.matched = true
			r.maybeCTS(e)
			return e, nil
		}
	}
	if gsrc != AnySource && gsrc != r.id {
		if r.job.failed[gsrc] {
			return nil, &RankFailedError{Rank: gsrc}
		}
		if r.deadPeers[gsrc] {
			return nil, ErrRankFinished
		}
	}
	if gsrc == AnySource && len(r.job.failed) > 0 {
		for _, g := range comm.group {
			if g != r.id && r.job.failed[g] {
				return nil, &RankFailedError{Rank: g}
			}
		}
	}
	p := &postedRecv{src: gsrc, ctx: ctxID, tag: tag, cond: sim.NewCond(r.job.k)}
	r.posted = append(r.posted, p)
	for p.env == nil && p.err == nil {
		p.cond.Wait(ctx)
	}
	if p.err != nil {
		return nil, p.err
	}
	return p.env, nil
}

func (r *Rank) dropMatchedRdv(env *envelope) {
	for i, e := range r.matchedRdv {
		if e == env {
			r.matchedRdv = append(r.matchedRdv[:i], r.matchedRdv[i+1:]...)
			return
		}
	}
}

// Probe reports whether a matching message is available without
// receiving it.
func (r *Rank) Probe(comm *Comm, src, tag int) bool {
	gsrc := src
	if src != AnySource {
		var err error
		gsrc, err = comm.globalRank(src)
		if err != nil {
			return false
		}
	}
	p := postedRecv{src: gsrc, ctx: comm.ctxID, tag: tag}
	for _, e := range r.unexpected {
		if p.matches(e) {
			return true
		}
	}
	return false
}

// SendRecv performs a blocking exchange: send to dest then receive
// from src (issued concurrently to avoid deadlock on symmetric
// exchanges).
func (r *Rank) SendRecv(ctx *sim.Ctx, comm *Comm, dest, sendTag int, n units.ByteSize, data any, src, recvTag int) (*Message, error) {
	req, err := r.Isend(ctx, comm, dest, sendTag, n, data)
	if err != nil {
		return nil, err
	}
	msg, err := r.Recv(ctx, comm, src, recvTag)
	if err != nil {
		return nil, err
	}
	if err := req.Wait(ctx); err != nil {
		return nil, err
	}
	return msg, nil
}
