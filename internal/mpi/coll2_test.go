package mpi

import (
	"testing"
	"time"

	"mpichgq/internal/sim"
	"mpichgq/internal/units"
)

func TestAlltoall(t *testing.T) {
	for _, n := range []int{2, 3, 4, 5, 8} {
		n := n
		k, j := testJob(n, JobOptions{})
		results := make([][][]float64, n)
		j.Start(func(ctx *sim.Ctx, r *Rank) {
			parts := make([][]float64, n)
			for i := range parts {
				// Rank r sends {r*10 + i} to rank i.
				parts[i] = []float64{float64(r.ID()*10 + i)}
			}
			out, err := r.Alltoall(ctx, r.World(), parts)
			if err != nil {
				t.Error(err)
				return
			}
			results[r.ID()] = out
		})
		if err := k.RunUntil(time.Minute); err != nil {
			t.Fatal(err)
		}
		for me := 0; me < n; me++ {
			for src := 0; src < n; src++ {
				want := float64(src*10 + me)
				if results[me] == nil || len(results[me][src]) != 1 || results[me][src][0] != want {
					t.Fatalf("n=%d: rank %d slot %d = %v, want [%v]", n, me, src, results[me][src], want)
				}
			}
		}
	}
}

func TestScanPrefixSums(t *testing.T) {
	const n = 5
	k, j := testJob(n, JobOptions{})
	var got [n]float64
	j.Start(func(ctx *sim.Ctx, r *Rank) {
		out, err := r.Scan(ctx, r.World(), []float64{float64(r.ID() + 1)}, OpSum)
		if err != nil {
			t.Error(err)
			return
		}
		got[r.ID()] = out[0]
	})
	if err := k.RunUntil(time.Minute); err != nil {
		t.Fatal(err)
	}
	// Inclusive prefix sums of 1..5: 1, 3, 6, 10, 15.
	want := []float64{1, 3, 6, 10, 15}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("scan = %v, want %v", got, want)
		}
	}
}

func TestReduceScatter(t *testing.T) {
	const n = 4
	k, j := testJob(n, JobOptions{})
	var got [n][]float64
	j.Start(func(ctx *sim.Ctx, r *Rank) {
		// Every rank contributes [1, 2, ..., 8] (n*2 elements).
		vec := make([]float64, 2*n)
		for i := range vec {
			vec[i] = float64(i + 1)
		}
		out, err := r.ReduceScatter(ctx, r.World(), vec, OpSum)
		if err != nil {
			t.Error(err)
			return
		}
		got[r.ID()] = out
	})
	if err := k.RunUntil(time.Minute); err != nil {
		t.Fatal(err)
	}
	// Sum over 4 ranks: 4*(i+1); rank i gets elements [2i, 2i+2).
	for i := 0; i < n; i++ {
		want0 := float64(4 * (2*i + 1))
		want1 := float64(4 * (2*i + 2))
		if len(got[i]) != 2 || got[i][0] != want0 || got[i][1] != want1 {
			t.Fatalf("rank %d chunk = %v, want [%v %v]", i, got[i], want0, want1)
		}
	}
}

func TestReduceScatterBadLength(t *testing.T) {
	k, j := testJob(3, JobOptions{})
	var gotErr error
	j.Start(func(ctx *sim.Ctx, r *Rank) {
		if r.ID() == 0 {
			_, gotErr = r.ReduceScatter(ctx, r.World(), []float64{1, 2}, OpSum)
		}
	})
	if err := k.RunUntil(time.Minute); err != nil {
		t.Fatal(err)
	}
	if gotErr == nil {
		t.Fatal("indivisible vector length should error")
	}
}

func TestGathervHeterogeneous(t *testing.T) {
	const n = 3
	k, j := testJob(n, JobOptions{})
	var got []float64
	j.Start(func(ctx *sim.Ctx, r *Rank) {
		// Rank i contributes i+1 elements, all equal to i.
		vec := make([]float64, r.ID()+1)
		for i := range vec {
			vec[i] = float64(r.ID())
		}
		out, err := r.Gatherv(ctx, r.World(), 0, vec)
		if err != nil {
			t.Error(err)
			return
		}
		if r.ID() == 0 {
			got = out
		}
	})
	if err := k.RunUntil(time.Minute); err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 1, 1, 2, 2, 2}
	if len(got) != len(want) {
		t.Fatalf("gatherv = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("gatherv = %v, want %v", got, want)
		}
	}
}

func TestPersistentRequests(t *testing.T) {
	k, j := testJob(2, JobOptions{})
	var got []int
	j.Start(func(ctx *sim.Ctx, r *Rank) {
		w := r.World()
		const iters = 5
		if r.ID() == 0 {
			ps, err := r.SendInit(w, 1, 3, 10*units.KB, nil)
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < iters; i++ {
				ps.SetData(10*units.KB, i)
				if err := ps.Start(ctx); err != nil {
					t.Error(err)
					return
				}
				if err := ps.Wait(ctx); err != nil {
					t.Error(err)
					return
				}
			}
		} else {
			pr, err := r.RecvInit(w, 0, 3)
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < iters; i++ {
				if err := pr.Start(ctx); err != nil {
					t.Error(err)
					return
				}
				if err := pr.Wait(ctx); err != nil {
					t.Error(err)
					return
				}
				got = append(got, pr.Message().Data.(int))
			}
		}
	})
	if err := k.RunUntil(time.Minute); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("persistent recv order = %v", got)
		}
	}
}

func TestPersistentStartWhileActiveFails(t *testing.T) {
	k, j := testJob(2, JobOptions{})
	var startErr error
	j.Start(func(ctx *sim.Ctx, r *Rank) {
		if r.ID() != 0 {
			return
		}
		pr, err := r.RecvInit(r.World(), 1, 0)
		if err != nil {
			t.Error(err)
			return
		}
		if err := pr.Start(ctx); err != nil {
			t.Error(err)
			return
		}
		startErr = pr.Start(ctx) // still active: no message will come
	})
	if err := k.RunUntil(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if startErr == nil {
		t.Fatal("double Start should error")
	}
}

func TestCommDupIsolatesContext(t *testing.T) {
	k, j := testJob(2, JobOptions{})
	var viaDup, viaOrig *Message
	j.Start(func(ctx *sim.Ctx, r *Rank) {
		w := r.World()
		dup, err := r.CommDup(ctx, w)
		if err != nil {
			t.Error(err)
			return
		}
		if dup.Context() == w.Context() {
			t.Error("dup must get a fresh context")
			return
		}
		switch r.ID() {
		case 0:
			r.Send(ctx, w, 1, 5, units.KB, "orig")
			r.Send(ctx, dup, 1, 5, units.KB, "dup")
		case 1:
			var err error
			viaDup, err = r.Recv(ctx, dup, 0, 5)
			if err != nil {
				t.Error(err)
				return
			}
			viaOrig, err = r.Recv(ctx, w, 0, 5)
			if err != nil {
				t.Error(err)
			}
		}
	})
	if err := k.RunUntil(time.Minute); err != nil {
		t.Fatal(err)
	}
	if viaDup == nil || viaDup.Data != "dup" || viaOrig == nil || viaOrig.Data != "orig" {
		t.Fatalf("dup=%+v orig=%+v", viaDup, viaOrig)
	}
}
