package mpi

import (
	"testing"
	"time"

	"mpichgq/internal/sim"
	"mpichgq/internal/units"
)

// TestSoak16Ranks runs a randomized mixed workload — pt2pt rings with
// random sizes (crossing the eager/rendezvous threshold both ways),
// collectives, and barriers — across 16 ranks, checking global
// invariants at each round.
func TestSoak16Ranks(t *testing.T) {
	const n = 16
	const rounds = 15
	k, j := testJob(n, JobOptions{EagerThreshold: 32 * units.KB})
	rng := sim.NewRNG(99)
	sizes := make([]units.ByteSize, rounds)
	for i := range sizes {
		sizes[i] = units.ByteSize(rng.Intn(100_000) + 1) // 1 B .. 100 KB
	}
	errs := 0
	j.Start(func(ctx *sim.Ctx, r *Rank) {
		w := r.World()
		me := r.ID()
		for round := 0; round < rounds; round++ {
			size := sizes[round]
			// Ring shift: send to the right, receive from the left,
			// payload carries (sender, round) for validation.
			right := (me + 1) % n
			left := (me - 1 + n) % n
			msg, err := r.SendRecv(ctx, w, right, round, size, [2]int{me, round}, left, round)
			if err != nil {
				t.Error(err)
				errs++
				return
			}
			got := msg.Data.([2]int)
			if got[0] != left || got[1] != round || msg.Len != size {
				t.Errorf("round %d rank %d: got %v len %v", round, me, got, msg.Len)
				errs++
				return
			}
			// Global sum invariant.
			sum, err := r.Allreduce(ctx, w, []float64{float64(me)}, OpSum)
			if err != nil {
				t.Error(err)
				errs++
				return
			}
			if sum[0] != float64(n*(n-1)/2) {
				t.Errorf("round %d: allreduce sum %v", round, sum[0])
				errs++
				return
			}
			if err := r.Barrier(ctx, w); err != nil {
				t.Error(err)
				errs++
				return
			}
		}
		if err := r.Finalize(ctx); err != nil {
			t.Error(err)
		}
	})
	if err := k.RunUntil(5 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if !j.Done() {
		t.Fatalf("soak did not complete (blocked: %v)", k.BlockedProcs())
	}
	if errs > 0 {
		t.Fatalf("%d errors", errs)
	}
}

func TestRecvFromFinishedRankFails(t *testing.T) {
	k, j := testJob(2, JobOptions{})
	var recvErr error
	j.Start(func(ctx *sim.Ctx, r *Rank) {
		if r.ID() == 1 {
			// Finish immediately without sending anything. Finalize
			// needs a barrier, which needs the peer — so just close
			// the connection directly, like a crashed rank.
			r.Conn(0).Close()
			return
		}
		// Rank 0 waits for a message that can never come.
		_, recvErr = r.Recv(ctx, r.World(), 1, 0)
	})
	if err := k.RunUntil(time.Minute); err != nil {
		t.Fatal(err)
	}
	if recvErr != ErrRankFinished {
		t.Fatalf("recv from dead peer = %v, want ErrRankFinished", recvErr)
	}
	if !j.Done() {
		t.Fatal("job hung on a dead peer")
	}
}

func TestRendezvousSendToDeadPeerFails(t *testing.T) {
	k, j := testJob(2, JobOptions{EagerThreshold: units.KB})
	var sendErr error
	j.Start(func(ctx *sim.Ctx, r *Rank) {
		if r.ID() == 1 {
			// Die without ever posting the receive (no CTS).
			ctx.Sleep(100 * time.Millisecond)
			r.Conn(0).Close()
			return
		}
		sendErr = r.Send(ctx, r.World(), 1, 0, 100*units.KB, nil)
	})
	if err := k.RunUntil(time.Minute); err != nil {
		t.Fatal(err)
	}
	if sendErr != ErrRankFinished {
		t.Fatalf("rendezvous send to dead peer = %v, want ErrRankFinished", sendErr)
	}
	if !j.Done() {
		t.Fatal("sender hung on dead peer's CTS")
	}
}
