package mpi

import (
	"testing"
	"time"

	"mpichgq/internal/sim"
	"mpichgq/internal/units"
)

// TestWildcardRecvRacesEagerAndRendezvous posts MPI_ANY_SOURCE
// receives at a receiver while one peer streams eager messages and
// another streams rendezvous messages at it concurrently. Every
// message must be delivered exactly once with the correct source and
// length, regardless of which protocol wins each match.
func TestWildcardRecvRacesEagerAndRendezvous(t *testing.T) {
	const perSender = 12
	k, j := testJob(3, JobOptions{EagerThreshold: 16 * units.KB})
	eager := 4 * units.KB    // below threshold: eager protocol
	rdv := 256 * units.KB    // above threshold: RTS/CTS rendezvous
	got := map[int][]int{}   // src -> sequence numbers in arrival order
	var lens = map[int]units.ByteSize{}
	j.Start(func(ctx *sim.Ctx, r *Rank) {
		w := r.World()
		switch r.ID() {
		case 1:
			for i := 0; i < perSender; i++ {
				if err := r.Send(ctx, w, 0, 7, eager, i); err != nil {
					t.Errorf("eager send %d: %v", i, err)
				}
			}
		case 2:
			for i := 0; i < perSender; i++ {
				if err := r.Send(ctx, w, 0, 7, rdv, i); err != nil {
					t.Errorf("rendezvous send %d: %v", i, err)
				}
			}
		case 0:
			for i := 0; i < 2*perSender; i++ {
				m, err := r.Recv(ctx, w, AnySource, 7)
				if err != nil {
					t.Errorf("wildcard recv %d: %v", i, err)
					return
				}
				got[m.Src] = append(got[m.Src], m.Data.(int))
				lens[m.Src] = m.Len
			}
		}
	})
	if err := k.RunUntil(time.Minute); err != nil {
		t.Fatal(err)
	}
	if !j.Done() {
		t.Fatal("job did not complete")
	}
	for src, want := range map[int]units.ByteSize{1: eager, 2: rdv} {
		seqs := got[src]
		if len(seqs) != perSender {
			t.Fatalf("src %d delivered %d messages, want %d: %v", src, len(seqs), perSender, seqs)
		}
		// Per-source (non-overtaking) order must hold even under
		// wildcard matching with mixed protocols.
		for i, s := range seqs {
			if s != i {
				t.Fatalf("src %d out of order at %d: %v", src, i, seqs)
			}
		}
		if lens[src] != want {
			t.Fatalf("src %d message length %v, want %v", src, lens[src], want)
		}
	}
}

// TestWildcardIrecvRacesMixedProtocols is the nonblocking variant:
// pre-posted ANY_SOURCE Irecvs race an eager sender against a
// rendezvous sender that both fire at time zero.
func TestWildcardIrecvRacesMixedProtocols(t *testing.T) {
	const perSender = 6
	k, j := testJob(3, JobOptions{EagerThreshold: 8 * units.KB})
	counts := map[int]int{}
	j.Start(func(ctx *sim.Ctx, r *Rank) {
		w := r.World()
		switch r.ID() {
		case 1:
			for i := 0; i < perSender; i++ {
				if err := r.Send(ctx, w, 0, 3, units.KB, i); err != nil {
					t.Errorf("eager send: %v", err)
				}
			}
		case 2:
			for i := 0; i < perSender; i++ {
				if err := r.Send(ctx, w, 0, 3, 64*units.KB, i); err != nil {
					t.Errorf("rendezvous send: %v", err)
				}
			}
		case 0:
			reqs := make([]*Request, 0, 2*perSender)
			for i := 0; i < 2*perSender; i++ {
				rq, err := r.Irecv(ctx, w, AnySource, 3)
				if err != nil {
					t.Errorf("irecv: %v", err)
					return
				}
				reqs = append(reqs, rq)
			}
			for _, rq := range reqs {
				if err := rq.Wait(ctx); err != nil {
					t.Errorf("wait: %v", err)
					return
				}
				counts[rq.Message().Src]++
			}
		}
	})
	if err := k.RunUntil(time.Minute); err != nil {
		t.Fatal(err)
	}
	if !j.Done() {
		t.Fatal("job did not complete")
	}
	if counts[1] != perSender || counts[2] != perSender {
		t.Fatalf("delivery counts = %v, want %d from each sender", counts, perSender)
	}
}
