package mpi

import (
	"testing"
	"time"

	"mpichgq/internal/netsim"
	"mpichgq/internal/sim"
	"mpichgq/internal/tcpsim"
	"mpichgq/internal/units"
)

// twoSiteJob builds a 2-site topology: siteSize ranks on hosts behind
// switch A, siteSize behind switch B, with a constrained wide link
// between the switches. Returns the job and the wide link.
func twoSiteJob(siteSize int, wanRate units.BitRate) (*sim.Kernel, *Job, *netsim.Link) {
	k := sim.New(1)
	net := netsim.New(k)
	swA := net.AddNode("swA")
	swB := net.AddNode("swB")
	wan := net.Connect(swA, swB, wanRate, 5*time.Millisecond)
	hosts := make([]*Host, 0, 2*siteSize)
	for i := 0; i < siteSize; i++ {
		nd := net.AddNode("a" + itoa(i))
		net.Connect(nd, swA, 1000*units.Mbps, 50*time.Microsecond)
		hosts = append(hosts, NewHost(nd, tcpsim.DefaultOptions()))
	}
	for i := 0; i < siteSize; i++ {
		nd := net.AddNode("b" + itoa(i))
		net.Connect(nd, swB, 1000*units.Mbps, 50*time.Microsecond)
		hosts = append(hosts, NewHost(nd, tcpsim.DefaultOptions()))
	}
	net.ComputeRoutes()
	return k, NewJob(k, hosts, JobOptions{}), wan
}

// siteMap returns the site assignment for a two-site job.
func siteMap(siteSize int) []int {
	m := make([]int, 2*siteSize)
	for i := range m {
		m[i] = i / siteSize
	}
	return m
}

func TestTopoBcastCorrect(t *testing.T) {
	const siteSize = 3
	k, j, _ := twoSiteJob(siteSize, 100*units.Mbps)
	var got [2 * siteSize]any
	j.Start(func(ctx *sim.Ctx, r *Rank) {
		topo, err := r.NewTopo(ctx, r.World(), siteMap(siteSize))
		if err != nil {
			t.Error(err)
			return
		}
		var data any
		if r.ID() == 4 { // a non-leader root in site 1
			data = "payload"
		}
		out, err := r.TopoBcast(ctx, topo, 4, 50*units.KB, data)
		if err != nil {
			t.Error(err)
			return
		}
		got[r.ID()] = out
	})
	if err := k.RunUntil(time.Minute); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != "payload" {
			t.Fatalf("rank %d got %v", i, v)
		}
	}
}

func TestTopoReduceCorrect(t *testing.T) {
	const siteSize = 3
	k, j, _ := twoSiteJob(siteSize, 100*units.Mbps)
	var result []float64
	j.Start(func(ctx *sim.Ctx, r *Rank) {
		topo, err := r.NewTopo(ctx, r.World(), siteMap(siteSize))
		if err != nil {
			t.Error(err)
			return
		}
		out, err := r.TopoReduce(ctx, topo, 5, []float64{float64(r.ID() + 1)}, OpSum)
		if err != nil {
			t.Error(err)
			return
		}
		if r.ID() == 5 {
			result = out
		}
	})
	if err := k.RunUntil(time.Minute); err != nil {
		t.Fatal(err)
	}
	// Sum 1..6 = 21.
	if len(result) != 1 || result[0] != 21 {
		t.Fatalf("reduce = %v, want [21]", result)
	}
}

func TestTopoAllreduceAndBarrier(t *testing.T) {
	const siteSize = 2
	k, j, _ := twoSiteJob(siteSize, 100*units.Mbps)
	var sums [2 * siteSize]float64
	done := 0
	j.Start(func(ctx *sim.Ctx, r *Rank) {
		topo, err := r.NewTopo(ctx, r.World(), siteMap(siteSize))
		if err != nil {
			t.Error(err)
			return
		}
		out, err := r.TopoAllreduce(ctx, topo, []float64{float64(r.ID())}, OpMax)
		if err != nil {
			t.Error(err)
			return
		}
		sums[r.ID()] = out[0]
		if err := r.TopoBarrier(ctx, topo); err != nil {
			t.Error(err)
			return
		}
		done++
	})
	if err := k.RunUntil(time.Minute); err != nil {
		t.Fatal(err)
	}
	for i, v := range sums {
		if v != 3 {
			t.Fatalf("rank %d allreduce = %v, want 3", i, v)
		}
	}
	if done != 2*siteSize {
		t.Fatalf("barrier done = %d", done)
	}
}

// interleavedJob places even ranks at site A and odd ranks at site B
// — the layout where a site-oblivious binomial tree crosses the wide
// area repeatedly.
func interleavedJob(n int, wanRate units.BitRate) (*sim.Kernel, *Job, *netsim.Link, []int) {
	k := sim.New(1)
	net := netsim.New(k)
	swA := net.AddNode("swA")
	swB := net.AddNode("swB")
	wan := net.Connect(swA, swB, wanRate, 5*time.Millisecond)
	hosts := make([]*Host, n)
	site := make([]int, n)
	for i := 0; i < n; i++ {
		sw := swA
		site[i] = i % 2
		if site[i] == 1 {
			sw = swB
		}
		nd := net.AddNode("h" + itoa(i))
		net.Connect(nd, sw, 1000*units.Mbps, 50*time.Microsecond)
		hosts[i] = NewHost(nd, tcpsim.DefaultOptions())
	}
	net.ComputeRoutes()
	return k, NewJob(k, hosts, JobOptions{}), wan, site
}

func TestTopoBcastCrossesWideLinkOnce(t *testing.T) {
	// With interleaved placement, the payload must traverse the wide
	// link exactly once per topology-aware broadcast (2 sites),
	// versus several crossings for the site-oblivious binomial tree.
	const n = 8
	const payload = 100 * units.KB
	wideBytes := func(topoAware bool) int64 {
		k, j, wan, site := interleavedJob(n, 100*units.Mbps)
		j.Start(func(ctx *sim.Ctx, r *Rank) {
			if topoAware {
				topo, err := r.NewTopo(ctx, r.World(), site)
				if err != nil {
					t.Error(err)
					return
				}
				if _, err := r.TopoBcast(ctx, topo, 0, payload, "x"); err != nil {
					t.Error(err)
				}
			} else {
				if _, err := r.Bcast(ctx, r.World(), 0, payload, "x"); err != nil {
					t.Error(err)
				}
			}
		})
		if err := k.RunUntil(time.Minute); err != nil {
			t.Fatal(err)
		}
		return wan.A().Stats().TxBytes + wan.B().Stats().TxBytes
	}
	flat := wideBytes(false)
	aware := wideBytes(true)
	if aware > int64(payload)*3/2 {
		t.Fatalf("topology-aware bcast moved %d wide bytes, want ~one payload (%d)", aware, payload)
	}
	if flat < 2*int64(payload) {
		t.Fatalf("flat bcast moved %d wide bytes, expected multiple payload crossings", flat)
	}
}
