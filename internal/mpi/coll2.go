package mpi

import (
	"fmt"

	"mpichgq/internal/sim"
)

// Additional collectives: Alltoall, Scan, ReduceScatter. Like the
// core set they run on the communicator's collective context.

// Collective wire tags (continued).
const (
	tagAlltoall = 1<<20 + 5
	tagScan     = 1<<20 + 6
	tagRedScat  = 1<<20 + 7
)

// Alltoall delivers parts[i] (one slice per member, rank order) to
// member i and returns the rank-ordered slices received from every
// member. Rounds follow a ring schedule (send to me+round, receive
// from me-round), which stays symmetric for every communicator size.
func (r *Rank) Alltoall(ctx *sim.Ctx, comm *Comm, parts [][]float64) ([][]float64, error) {
	size := comm.Size()
	me := comm.localRank(r.id)
	if me < 0 {
		return nil, fmt.Errorf("mpi: rank %d not in communicator", r.id)
	}
	if len(parts) != size {
		return nil, fmt.Errorf("mpi: alltoall needs %d parts, got %d", size, len(parts))
	}
	cc := collComm(comm)
	out := make([][]float64, size)
	out[me] = parts[me]
	for round := 1; round < size; round++ {
		dest := (me + round) % size
		src := (me - round + size) % size
		req, err := r.Isend(ctx, cc, dest, tagAlltoall+round, vecSize(parts[dest]), parts[dest])
		if err != nil {
			return nil, err
		}
		msg, err := r.Recv(ctx, cc, src, tagAlltoall+round)
		if err != nil {
			return nil, err
		}
		if err := req.Wait(ctx); err != nil {
			return nil, err
		}
		out[src] = msg.Data.([]float64)
	}
	return out, nil
}

// Scan computes the inclusive prefix reduction: rank i receives
// op(vec_0, ..., vec_i). Linear chain, as in MPICH's default.
func (r *Rank) Scan(ctx *sim.Ctx, comm *Comm, vec []float64, op ReduceOp) ([]float64, error) {
	size := comm.Size()
	me := comm.localRank(r.id)
	if me < 0 {
		return nil, fmt.Errorf("mpi: rank %d not in communicator", r.id)
	}
	cc := collComm(comm)
	acc := append([]float64(nil), vec...)
	if me > 0 {
		msg, err := r.Recv(ctx, cc, me-1, tagScan)
		if err != nil {
			return nil, err
		}
		acc = op(msg.Data.([]float64), acc)
	}
	if me < size-1 {
		if err := r.Send(ctx, cc, me+1, tagScan, vecSize(acc), acc); err != nil {
			return nil, err
		}
	}
	return acc, nil
}

// ReduceScatter reduces the concatenation of every member's vec
// elementwise and scatters equal chunks: with vec of length size*k,
// rank i receives elements [i*k, (i+1)*k) of the reduction.
func (r *Rank) ReduceScatter(ctx *sim.Ctx, comm *Comm, vec []float64, op ReduceOp) ([]float64, error) {
	size := comm.Size()
	me := comm.localRank(r.id)
	if me < 0 {
		return nil, fmt.Errorf("mpi: rank %d not in communicator", r.id)
	}
	if len(vec)%size != 0 {
		return nil, fmt.Errorf("mpi: reduce-scatter vector length %d not divisible by %d", len(vec), size)
	}
	// Reduce to rank 0, then scatter chunks (simple and correct; a
	// butterfly would halve the traffic for large vectors).
	acc, err := r.Reduce(ctx, comm, 0, vec, op)
	if err != nil {
		return nil, err
	}
	k := len(vec) / size
	var parts [][]float64
	if me == 0 {
		parts = make([][]float64, size)
		for i := 0; i < size; i++ {
			parts[i] = acc[i*k : (i+1)*k]
		}
	}
	return r.Scatter(ctx, comm, 0, parts)
}

// Gatherv is Gather with per-rank vector lengths (lengths need not
// match across ranks); root receives the rank-ordered concatenation.
func (r *Rank) Gatherv(ctx *sim.Ctx, comm *Comm, root int, vec []float64) ([]float64, error) {
	// The fixed-length Gather already handles heterogeneous lengths
	// (slices carry their own length); expose the intent explicitly.
	return r.Gather(ctx, comm, root, vec)
}
