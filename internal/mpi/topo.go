package mpi

import (
	"fmt"

	"mpichgq/internal/sim"
	"mpichgq/internal/units"
)

// Topology-aware collectives, after Karonis et al. ("Exploiting
// hierarchy in parallel computer networks to optimize collective
// operation performance", IPDPS 2000 — the paper's reference [23] and
// part of the same MPICH-G effort): ranks are grouped into sites, and
// collectives route through one leader per site so the constrained
// wide-area links are crossed a minimal number of times.

// Topo is a communicator annotated with site membership.
type Topo struct {
	comm *Comm
	// site[i] is the site id of the communicator's local rank i.
	site []int
	// local is this rank's site-local communicator; leaders is the
	// inter-site communicator of site leaders (nil on non-leaders).
	local   *Comm
	leaders *Comm
}

// Comm returns the underlying communicator.
func (t *Topo) Comm() *Comm { return t.comm }

// Sites returns the number of distinct sites.
func (t *Topo) Sites() int {
	seen := map[int]bool{}
	for _, s := range t.site {
		seen[s] = true
	}
	return len(seen)
}

// NewTopo builds the topology structure over comm. Every member must
// call it with the same site slice (one entry per communicator rank,
// arbitrary non-negative site ids). It is collective: two CommSplits.
func (r *Rank) NewTopo(ctx *sim.Ctx, comm *Comm, site []int) (*Topo, error) {
	if len(site) != comm.Size() {
		return nil, fmt.Errorf("mpi: topo needs %d site entries, got %d", comm.Size(), len(site))
	}
	me := comm.localRank(r.id)
	if me < 0 {
		return nil, fmt.Errorf("mpi: rank %d not in communicator", r.id)
	}
	for _, s := range site {
		if s < 0 {
			return nil, fmt.Errorf("mpi: negative site id %d", s)
		}
	}
	local, err := r.CommSplit(ctx, comm, site[me], me)
	if err != nil {
		return nil, err
	}
	// The site leader is the member with the lowest communicator rank
	// in each site; leaders form their own communicator.
	leaderColor := -1
	if r.isLeader(comm, site, me) {
		leaderColor = 0
	}
	leaders, err := r.CommSplit(ctx, comm, leaderColor, me)
	if err != nil {
		return nil, err
	}
	return &Topo{comm: comm, site: append([]int(nil), site...), local: local, leaders: leaders}, nil
}

func (r *Rank) isLeader(comm *Comm, site []int, me int) bool {
	for i := 0; i < me; i++ {
		if site[i] == site[me] {
			return false
		}
	}
	return true
}

// leaderOf returns the communicator rank of the leader of rank i's
// site.
func (t *Topo) leaderOf(i int) int {
	for j := 0; j < len(t.site); j++ {
		if t.site[j] == t.site[i] {
			return j
		}
	}
	return i
}

// TopoBcast broadcasts n bytes from root: root sends to its own site
// leader's group first? No — root relays to site leaders over the
// wide area (once per remote site), then each leader broadcasts
// locally. The wide link carries the payload exactly (sites-1) times,
// versus O(log p) crossings for a site-oblivious binomial tree.
func (r *Rank) TopoBcast(ctx *sim.Ctx, t *Topo, root int, n units.ByteSize, data any) (any, error) {
	me := t.comm.localRank(r.id)
	if me < 0 {
		return nil, fmt.Errorf("mpi: rank %d not in communicator", r.id)
	}
	if root < 0 || root >= t.comm.Size() {
		return nil, fmt.Errorf("mpi: invalid bcast root %d", root)
	}
	rootLeader := t.leaderOf(root)
	// Phase 0: root hands the data to its site leader (local hop).
	if me == root && me != rootLeader {
		if err := r.Send(ctx, t.comm, rootLeader, tagBcast, n, data); err != nil {
			return nil, err
		}
	}
	if me == rootLeader && me != root {
		msg, err := r.Recv(ctx, t.comm, root, tagBcast)
		if err != nil {
			return nil, err
		}
		data, n = msg.Data, msg.Len
	}
	// Phase 1: the root's leader broadcasts across the leader
	// communicator (one wide-area transfer per remote site).
	if t.leaders != nil {
		lroot := t.leaders.localRank(t.comm.group[rootLeader])
		out, err := r.Bcast(ctx, t.leaders, lroot, n, data)
		if err != nil {
			return nil, err
		}
		data = out
	}
	// Phase 2: each leader broadcasts within its site.
	out, err := r.Bcast(ctx, t.local, 0, n, data)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// TopoReduce reduces vec to root: local reduction to each site leader,
// leader reduction across the wide area, then a local hop to root if
// root is not its site's leader.
func (r *Rank) TopoReduce(ctx *sim.Ctx, t *Topo, root int, vec []float64, op ReduceOp) ([]float64, error) {
	me := t.comm.localRank(r.id)
	if me < 0 {
		return nil, fmt.Errorf("mpi: rank %d not in communicator", r.id)
	}
	if root < 0 || root >= t.comm.Size() {
		return nil, fmt.Errorf("mpi: invalid reduce root %d", root)
	}
	rootLeader := t.leaderOf(root)
	// Phase 1: reduce within each site to the local leader (local
	// rank 0 of the site communicator).
	partial, err := r.Reduce(ctx, t.local, 0, vec, op)
	if err != nil {
		return nil, err
	}
	// Phase 2: reduce across leaders to the root's site leader.
	var acc []float64
	if t.leaders != nil {
		lroot := t.leaders.localRank(t.comm.group[rootLeader])
		acc, err = r.Reduce(ctx, t.leaders, lroot, partial, op)
		if err != nil {
			return nil, err
		}
	} else {
		acc = partial
	}
	// Phase 3: local hop from the leader to root if they differ.
	if rootLeader != root {
		if me == rootLeader {
			if err := r.Send(ctx, t.comm, root, tagReduce, vecSize(acc), acc); err != nil {
				return nil, err
			}
			return nil, nil
		}
		if me == root {
			msg, err := r.Recv(ctx, t.comm, rootLeader, tagReduce)
			if err != nil {
				return nil, err
			}
			return msg.Data.([]float64), nil
		}
	}
	if me == root {
		return acc, nil
	}
	return nil, nil
}

// TopoAllreduce is TopoReduce to rank 0 followed by TopoBcast.
func (r *Rank) TopoAllreduce(ctx *sim.Ctx, t *Topo, vec []float64, op ReduceOp) ([]float64, error) {
	acc, err := r.TopoReduce(ctx, t, 0, vec, op)
	if err != nil {
		return nil, err
	}
	out, err := r.TopoBcast(ctx, t, 0, vecSize(vec), acc)
	if err != nil {
		return nil, err
	}
	return out.([]float64), nil
}

// TopoBarrier synchronizes through the hierarchy: local reduce, leader
// barrier, local release.
func (r *Rank) TopoBarrier(ctx *sim.Ctx, t *Topo) error {
	if _, err := r.Reduce(ctx, t.local, 0, []float64{1}, OpSum); err != nil {
		return err
	}
	if t.leaders != nil {
		if err := r.Barrier(ctx, t.leaders); err != nil {
			return err
		}
	}
	_, err := r.Bcast(ctx, t.local, 0, units.Byte, nil)
	return err
}
