package mpi

import (
	"testing"
	"time"

	"mpichgq/internal/netsim"
	"mpichgq/internal/sim"
	"mpichgq/internal/tcpsim"
	"mpichgq/internal/units"
)

// testJob builds an n-rank job, one rank per host, hosts joined
// through a single 100 Mb/s switch node.
func testJob(n int, opts JobOptions) (*sim.Kernel, *Job) {
	k := sim.New(1)
	net := netsim.New(k)
	sw := net.AddNode("switch")
	hosts := make([]*Host, n)
	for i := 0; i < n; i++ {
		nd := net.AddNode(nodeName(i))
		net.Connect(nd, sw, 100*units.Mbps, 100*time.Microsecond)
		hosts[i] = NewHost(nd, tcpsim.DefaultOptions())
	}
	net.ComputeRoutes()
	return k, NewJob(k, hosts, opts)
}

func nodeName(i int) string { return string(rune('a'+i%26)) + "-host" + itoa(i) }

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}

func TestSendRecvBasic(t *testing.T) {
	k, j := testJob(2, JobOptions{})
	var got *Message
	j.Start(func(ctx *sim.Ctx, r *Rank) {
		w := r.World()
		switch r.ID() {
		case 0:
			if err := r.Send(ctx, w, 1, 7, 10*units.KB, "hi"); err != nil {
				t.Error(err)
			}
		case 1:
			msg, err := r.Recv(ctx, w, 0, 7)
			if err != nil {
				t.Error(err)
				return
			}
			got = msg
		}
	})
	if err := k.RunUntil(time.Minute); err != nil {
		t.Fatal(err)
	}
	if !j.Done() {
		t.Fatal("job did not finish")
	}
	if got == nil || got.Src != 0 || got.Tag != 7 || got.Len != 10*units.KB || got.Data != "hi" {
		t.Fatalf("got %+v", got)
	}
}

func TestMessageOrderingSameSource(t *testing.T) {
	k, j := testJob(2, JobOptions{})
	var order []int
	j.Start(func(ctx *sim.Ctx, r *Rank) {
		w := r.World()
		if r.ID() == 0 {
			for i := 0; i < 20; i++ {
				if err := r.Send(ctx, w, 1, 5, units.KB, i); err != nil {
					t.Error(err)
				}
			}
		} else {
			for i := 0; i < 20; i++ {
				msg, err := r.Recv(ctx, w, 0, 5)
				if err != nil {
					t.Error(err)
					return
				}
				order = append(order, msg.Data.(int))
			}
		}
	})
	if err := k.RunUntil(time.Minute); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("non-overtaking violated: %v", order)
		}
	}
}

func TestTagAndSourceMatching(t *testing.T) {
	k, j := testJob(3, JobOptions{})
	var fromTag2, fromRank2 *Message
	j.Start(func(ctx *sim.Ctx, r *Rank) {
		w := r.World()
		switch r.ID() {
		case 0:
			// Receive tag 2 first even though tag 1 arrives first.
			m1, err := r.Recv(ctx, w, 1, 2)
			if err != nil {
				t.Error(err)
				return
			}
			fromTag2 = m1
			m2, err := r.Recv(ctx, w, AnySource, AnyTag)
			if err != nil {
				t.Error(err)
				return
			}
			fromRank2 = m2
		case 1:
			r.Send(ctx, w, 0, 1, units.KB, "tag1")
			r.Send(ctx, w, 0, 2, units.KB, "tag2")
		case 2:
			// Quiet third rank.
		}
	})
	if err := k.RunUntil(time.Minute); err != nil {
		t.Fatal(err)
	}
	if fromTag2 == nil || fromTag2.Data != "tag2" {
		t.Fatalf("tag matching failed: %+v", fromTag2)
	}
	if fromRank2 == nil || fromRank2.Data != "tag1" {
		t.Fatalf("wildcard recv got %+v, want tag1", fromRank2)
	}
}

func TestSelfSend(t *testing.T) {
	k, j := testJob(1, JobOptions{})
	var got *Message
	j.Start(func(ctx *sim.Ctx, r *Rank) {
		w := r.World()
		if err := r.Send(ctx, w, 0, 3, units.KB, 42); err != nil {
			t.Error(err)
			return
		}
		msg, err := r.Recv(ctx, w, 0, 3)
		if err != nil {
			t.Error(err)
			return
		}
		got = msg
	})
	if err := k.RunUntil(time.Minute); err != nil {
		t.Fatal(err)
	}
	if got == nil || got.Data != 42 {
		t.Fatalf("self-send got %+v", got)
	}
}

func TestRendezvousLargeMessage(t *testing.T) {
	k, j := testJob(2, JobOptions{EagerThreshold: 16 * units.KB})
	var got *Message
	j.Start(func(ctx *sim.Ctx, r *Rank) {
		w := r.World()
		switch r.ID() {
		case 0:
			if err := r.Send(ctx, w, 1, 9, 500*units.KB, "big"); err != nil {
				t.Error(err)
			}
		case 1:
			// Delay posting the receive so the RTS is unexpected.
			ctx.Sleep(100 * time.Millisecond)
			msg, err := r.Recv(ctx, w, 0, 9)
			if err != nil {
				t.Error(err)
				return
			}
			got = msg
		}
	})
	if err := k.RunUntil(time.Minute); err != nil {
		t.Fatal(err)
	}
	if got == nil || got.Len != 500*units.KB || got.Data != "big" {
		t.Fatalf("rendezvous got %+v", got)
	}
}

func TestRendezvousRecvPostedFirst(t *testing.T) {
	k, j := testJob(2, JobOptions{EagerThreshold: units.KB})
	var got *Message
	j.Start(func(ctx *sim.Ctx, r *Rank) {
		w := r.World()
		switch r.ID() {
		case 0:
			ctx.Sleep(100 * time.Millisecond)
			if err := r.Send(ctx, w, 1, 9, 100*units.KB, "late"); err != nil {
				t.Error(err)
			}
		case 1:
			msg, err := r.Recv(ctx, w, 0, 9)
			if err != nil {
				t.Error(err)
				return
			}
			got = msg
		}
	})
	if err := k.RunUntil(time.Minute); err != nil {
		t.Fatal(err)
	}
	if got == nil || got.Data != "late" {
		t.Fatalf("got %+v", got)
	}
}

func TestIsendIrecvWaitAll(t *testing.T) {
	k, j := testJob(2, JobOptions{})
	var got []*Message
	j.Start(func(ctx *sim.Ctx, r *Rank) {
		w := r.World()
		switch r.ID() {
		case 0:
			var reqs []*Request
			for i := 0; i < 5; i++ {
				q, err := r.Isend(ctx, w, 1, i, 10*units.KB, i)
				if err != nil {
					t.Error(err)
					return
				}
				reqs = append(reqs, q)
			}
			if err := WaitAll(ctx, reqs...); err != nil {
				t.Error(err)
			}
		case 1:
			var reqs []*Request
			for i := 0; i < 5; i++ {
				q, err := r.Irecv(ctx, w, 0, i)
				if err != nil {
					t.Error(err)
					return
				}
				reqs = append(reqs, q)
			}
			if err := WaitAll(ctx, reqs...); err != nil {
				t.Error(err)
				return
			}
			for _, q := range reqs {
				got = append(got, q.Message())
			}
		}
	})
	if err := k.RunUntil(time.Minute); err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("got %d messages", len(got))
	}
	for i, m := range got {
		if m.Tag != i || m.Data.(int) != i {
			t.Fatalf("message %d = %+v", i, m)
		}
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	const n = 5
	k, j := testJob(n, JobOptions{})
	var after [n]time.Duration
	j.Start(func(ctx *sim.Ctx, r *Rank) {
		// Stagger entry; everyone leaves after the last entry.
		ctx.Sleep(time.Duration(r.ID()) * 100 * time.Millisecond)
		if err := r.Barrier(ctx, r.World()); err != nil {
			t.Error(err)
			return
		}
		after[r.ID()] = ctx.Now()
	})
	if err := k.RunUntil(time.Minute); err != nil {
		t.Fatal(err)
	}
	latest := time.Duration((n - 1) * 100 * int(time.Millisecond))
	for i, at := range after {
		if at < latest {
			t.Fatalf("rank %d left barrier at %v, before last entry %v", i, at, latest)
		}
	}
}

func TestBcastAllRanks(t *testing.T) {
	const n = 7
	k, j := testJob(n, JobOptions{})
	var got [n]any
	j.Start(func(ctx *sim.Ctx, r *Rank) {
		var data any
		if r.ID() == 2 {
			data = "payload"
		}
		out, err := r.Bcast(ctx, r.World(), 2, 50*units.KB, data)
		if err != nil {
			t.Error(err)
			return
		}
		got[r.ID()] = out
	})
	if err := k.RunUntil(time.Minute); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != "payload" {
			t.Fatalf("rank %d got %v", i, v)
		}
	}
}

func TestReduceAndAllreduce(t *testing.T) {
	const n = 6
	k, j := testJob(n, JobOptions{})
	var reduced []float64
	var all [n][]float64
	j.Start(func(ctx *sim.Ctx, r *Rank) {
		vec := []float64{float64(r.ID() + 1), 1}
		out, err := r.Reduce(ctx, r.World(), 0, vec, OpSum)
		if err != nil {
			t.Error(err)
			return
		}
		if r.ID() == 0 {
			reduced = out
		}
		got, err := r.Allreduce(ctx, r.World(), vec, OpMax)
		if err != nil {
			t.Error(err)
			return
		}
		all[r.ID()] = got
	})
	if err := k.RunUntil(time.Minute); err != nil {
		t.Fatal(err)
	}
	// Sum of 1..6 = 21, count = 6.
	if reduced == nil || reduced[0] != 21 || reduced[1] != 6 {
		t.Fatalf("reduce = %v", reduced)
	}
	for i, v := range all {
		if v == nil || v[0] != 6 || v[1] != 1 {
			t.Fatalf("allreduce rank %d = %v", i, v)
		}
	}
}

func TestGatherScatterAllgather(t *testing.T) {
	const n = 4
	k, j := testJob(n, JobOptions{})
	var gathered []float64
	var scattered [n][]float64
	var allgathered [n][]float64
	j.Start(func(ctx *sim.Ctx, r *Rank) {
		w := r.World()
		out, err := r.Gather(ctx, w, 1, []float64{float64(r.ID())})
		if err != nil {
			t.Error(err)
			return
		}
		if r.ID() == 1 {
			gathered = out
		}
		var parts [][]float64
		if r.ID() == 0 {
			parts = [][]float64{{0}, {10}, {20}, {30}}
		}
		part, err := r.Scatter(ctx, w, 0, parts)
		if err != nil {
			t.Error(err)
			return
		}
		scattered[r.ID()] = part
		ag, err := r.Allgather(ctx, w, []float64{float64(r.ID() * 100)})
		if err != nil {
			t.Error(err)
			return
		}
		allgathered[r.ID()] = ag
	})
	if err := k.RunUntil(time.Minute); err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 1, 2, 3}
	for i := range want {
		if gathered[i] != want[i] {
			t.Fatalf("gather = %v", gathered)
		}
	}
	for i := range scattered {
		if len(scattered[i]) != 1 || scattered[i][0] != float64(i*10) {
			t.Fatalf("scatter rank %d = %v", i, scattered[i])
		}
	}
	for i := range allgathered {
		for q := 0; q < n; q++ {
			if allgathered[i][q] != float64(q*100) {
				t.Fatalf("allgather rank %d = %v", i, allgathered[i])
			}
		}
	}
}

func TestCommSplitIsolation(t *testing.T) {
	const n = 4
	k, j := testJob(n, JobOptions{})
	var sizes [n]int
	var sums [n]float64
	j.Start(func(ctx *sim.Ctx, r *Rank) {
		// Even ranks and odd ranks form separate communicators.
		sub, err := r.CommSplit(ctx, r.World(), r.ID()%2, r.ID())
		if err != nil {
			t.Error(err)
			return
		}
		sizes[r.ID()] = sub.Size()
		out, err := r.Allreduce(ctx, sub, []float64{float64(r.ID())}, OpSum)
		if err != nil {
			t.Error(err)
			return
		}
		sums[r.ID()] = out[0]
	})
	if err := k.RunUntil(time.Minute); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if sizes[i] != 2 {
			t.Fatalf("rank %d split size = %d", i, sizes[i])
		}
		want := 2.0 // 0+2
		if i%2 == 1 {
			want = 4.0 // 1+3
		}
		if sums[i] != want {
			t.Fatalf("rank %d sub-sum = %v, want %v", i, sums[i], want)
		}
	}
}

func TestCommSplitUndefined(t *testing.T) {
	k, j := testJob(2, JobOptions{})
	var r0Comm *Comm
	var r1Nil bool
	j.Start(func(ctx *sim.Ctx, r *Rank) {
		color := 0
		if r.ID() == 1 {
			color = -1 // MPI_UNDEFINED
		}
		sub, err := r.CommSplit(ctx, r.World(), color, 0)
		if err != nil {
			t.Error(err)
			return
		}
		if r.ID() == 0 {
			r0Comm = sub
		} else {
			r1Nil = sub == nil
		}
	})
	if err := k.RunUntil(time.Minute); err != nil {
		t.Fatal(err)
	}
	if r0Comm == nil || r0Comm.Size() != 1 {
		t.Fatal("rank 0 should get a singleton communicator")
	}
	if !r1Nil {
		t.Fatal("rank 1 should get nil for negative color")
	}
}

func TestPairCommAndContextIsolation(t *testing.T) {
	k, j := testJob(2, JobOptions{})
	var viaWorld, viaPair *Message
	j.Start(func(ctx *sim.Ctx, r *Rank) {
		w := r.World()
		pc, err := r.PairComm(ctx, 1-r.ID())
		if err != nil {
			t.Error(err)
			return
		}
		if !pc.IsInter() || pc.Size() != 2 {
			t.Errorf("pair comm = %+v", pc)
		}
		switch r.ID() {
		case 0:
			// Same tag on two contexts must not cross.
			r.Send(ctx, w, 1, 5, units.KB, "world")
			r.Send(ctx, pc, pc.localRank(1), 5, units.KB, "pair")
		case 1:
			viaPair, err = r.Recv(ctx, pc, pc.localRank(0), 5)
			if err != nil {
				t.Error(err)
				return
			}
			viaWorld, err = r.Recv(ctx, w, 0, 5)
			if err != nil {
				t.Error(err)
			}
		}
	})
	if err := k.RunUntil(time.Minute); err != nil {
		t.Fatal(err)
	}
	if viaPair == nil || viaPair.Data != "pair" {
		t.Fatalf("pair context got %+v", viaPair)
	}
	if viaWorld == nil || viaWorld.Data != "world" {
		t.Fatalf("world context got %+v", viaWorld)
	}
}

func TestAttributesAndTrigger(t *testing.T) {
	k, j := testJob(2, JobOptions{})
	var triggered []string
	kv := j.KeyvalCreate("qos", func(r *Rank, c *Comm, val any) error {
		triggered = append(triggered, val.(string))
		return nil
	})
	plain := j.KeyvalCreate("plain", nil)
	var got any
	var flag, missing bool
	j.Start(func(ctx *sim.Ctx, r *Rank) {
		if r.ID() != 0 {
			return
		}
		w := r.World()
		if err := r.AttrPut(w, kv, "premium"); err != nil {
			t.Error(err)
		}
		if err := r.AttrPut(w, plain, "untriggered"); err != nil {
			t.Error(err)
		}
		got, flag = w.AttrGet(kv)
		_, missing = w.AttrGet(Keyval(99))
		w.AttrDelete(kv)
		_, flag2 := w.AttrGet(kv)
		if flag2 {
			t.Error("attribute survived delete")
		}
	})
	if err := k.RunUntil(time.Minute); err != nil {
		t.Fatal(err)
	}
	if len(triggered) != 1 || triggered[0] != "premium" {
		t.Fatalf("trigger fired %v", triggered)
	}
	if !flag || got != "premium" {
		t.Fatalf("AttrGet = %v/%v", got, flag)
	}
	if missing {
		t.Fatal("unknown keyval should report flag=false")
	}
}

func TestEndpointsExposeFlows(t *testing.T) {
	k, j := testJob(2, JobOptions{})
	var eps []FlowEndpoint
	j.Start(func(ctx *sim.Ctx, r *Rank) {
		if r.ID() == 0 {
			pc, err := r.PairComm(ctx, 1)
			if err != nil {
				t.Error(err)
				return
			}
			eps = r.Endpoints(pc)
		} else {
			r.PairComm(ctx, 0)
		}
	})
	if err := k.RunUntil(time.Minute); err != nil {
		t.Fatal(err)
	}
	if len(eps) != 1 {
		t.Fatalf("endpoints = %d, want 1", len(eps))
	}
	if eps[0].SrcNode == eps[0].DstNode {
		t.Fatal("endpoint addresses should differ")
	}
}

func TestPingPongManyRounds(t *testing.T) {
	k, j := testJob(2, JobOptions{})
	rounds := 0
	j.Start(func(ctx *sim.Ctx, r *Rank) {
		w := r.World()
		const msg = 15 * units.KB
		for i := 0; i < 50; i++ {
			if r.ID() == 0 {
				if err := r.Send(ctx, w, 1, 0, msg, nil); err != nil {
					t.Error(err)
					return
				}
				if _, err := r.Recv(ctx, w, 1, 0); err != nil {
					t.Error(err)
					return
				}
				rounds++
			} else {
				if _, err := r.Recv(ctx, w, 0, 0); err != nil {
					t.Error(err)
					return
				}
				if err := r.Send(ctx, w, 0, 0, msg, nil); err != nil {
					t.Error(err)
					return
				}
			}
		}
	})
	if err := k.RunUntil(time.Minute); err != nil {
		t.Fatal(err)
	}
	if rounds != 50 {
		t.Fatalf("completed %d rounds, want 50", rounds)
	}
	if !j.Done() {
		t.Fatal("job not done")
	}
}

func TestColocatedRanksOneHost(t *testing.T) {
	// Two ranks share one host (same node/TCP/CPU): messages flow via
	// loopback-less same-node connection... they still go through the
	// network layer, which requires distinct nodes. Co-location here
	// means same CPU but distinct nodes is the common case; this test
	// uses one Host object twice to exercise port separation.
	k := sim.New(1)
	net := netsim.New(k)
	a := net.AddNode("a")
	b := net.AddNode("b")
	net.Connect(a, b, 100*units.Mbps, time.Millisecond)
	net.ComputeRoutes()
	ha := NewHost(a, tcpsim.DefaultOptions())
	hb := NewHost(b, tcpsim.DefaultOptions())
	j := NewJob(k, []*Host{ha, hb, ha}, JobOptions{})
	sum := 0
	j.Start(func(ctx *sim.Ctx, r *Rank) {
		w := r.World()
		if r.ID() == 0 {
			r.Send(ctx, w, 2, 1, units.KB, 11)
		} else if r.ID() == 2 {
			m, err := r.Recv(ctx, w, 0, 1)
			if err != nil {
				t.Error(err)
				return
			}
			sum = m.Data.(int)
		}
	})
	if err := k.RunUntil(time.Minute); err != nil {
		t.Fatal(err)
	}
	if sum != 11 {
		t.Fatalf("co-located transfer got %d", sum)
	}
}

func TestFinalizeTearsDownCleanly(t *testing.T) {
	k, j := testJob(3, JobOptions{})
	j.Start(func(ctx *sim.Ctx, r *Rank) {
		w := r.World()
		// A little traffic first.
		if r.ID() == 0 {
			r.Send(ctx, w, 1, 0, 10*units.KB, nil)
		} else if r.ID() == 1 {
			r.Recv(ctx, w, 0, 0)
		}
		if err := r.Finalize(ctx); err != nil {
			t.Error(err)
			return
		}
		if !r.Finalized() {
			t.Error("Finalized() false after Finalize")
		}
		if err := r.Finalize(ctx); err == nil {
			t.Error("double Finalize should error")
		}
	})
	if err := k.RunUntil(time.Minute); err != nil {
		t.Fatal(err)
	}
	if !j.Done() {
		t.Fatal("job incomplete")
	}
	// All TCP connections torn down on every host.
	for i := 0; i < j.Size(); i++ {
		if n := j.Rank(i).Host().TCP.ConnCount(); n != 0 {
			t.Fatalf("rank %d leaked %d connections", i, n)
		}
	}
}

func TestWtimeAdvances(t *testing.T) {
	k, j := testJob(1, JobOptions{})
	var t0, t1 float64
	j.Start(func(ctx *sim.Ctx, r *Rank) {
		t0 = r.Wtime(ctx)
		ctx.Sleep(1500 * time.Millisecond)
		t1 = r.Wtime(ctx)
	})
	if err := k.RunUntil(time.Minute); err != nil {
		t.Fatal(err)
	}
	if t1-t0 < 1.499 || t1-t0 > 1.501 {
		t.Fatalf("Wtime delta = %v, want 1.5", t1-t0)
	}
}
