package mpi

import (
	"fmt"

	"mpichgq/internal/sim"
	"mpichgq/internal/units"
)

// Collective operations run on the communicator's collective context
// (ctxID+1) so they never interfere with user point-to-point traffic,
// the standard MPICH arrangement.

// collComm returns a shadow communicator on the collective context.
func collComm(c *Comm) *Comm {
	return &Comm{job: c.job, ctxID: c.ctxID + 1, group: c.group, inter: c.inter}
}

// Collective wire tags.
const (
	tagBarrier = 1 << 20
	tagBcast   = 1<<20 + 1
	tagReduce  = 1<<20 + 2
	tagGather  = 1<<20 + 3
	tagScatter = 1<<20 + 4
)

// Barrier blocks until every member of comm has entered it
// (dissemination algorithm, ceil(log2 n) rounds).
func (r *Rank) Barrier(ctx *sim.Ctx, comm *Comm) error {
	size := comm.Size()
	if size == 1 {
		return nil
	}
	cc := collComm(comm)
	me := comm.localRank(r.id)
	if me < 0 {
		return fmt.Errorf("mpi: rank %d not in communicator", r.id)
	}
	for dist := 1; dist < size; dist <<= 1 {
		to := (me + dist) % size
		from := (me - dist + size) % size
		if _, err := r.SendRecv(ctx, cc, to, tagBarrier+dist, units.Byte, nil, from, tagBarrier+dist); err != nil {
			return err
		}
	}
	return nil
}

// Bcast distributes n bytes of data from root to every member over a
// binomial tree, returning the data on every rank.
func (r *Rank) Bcast(ctx *sim.Ctx, comm *Comm, root int, n units.ByteSize, data any) (any, error) {
	size := comm.Size()
	me := comm.localRank(r.id)
	if me < 0 {
		return nil, fmt.Errorf("mpi: rank %d not in communicator", r.id)
	}
	if root < 0 || root >= size {
		return nil, fmt.Errorf("mpi: invalid bcast root %d", root)
	}
	if size == 1 {
		return data, nil
	}
	cc := collComm(comm)
	rel := (me - root + size) % size
	// Receive phase: find my parent.
	mask := 1
	for mask < size {
		if rel&mask != 0 {
			parent := (me - mask + size) % size
			msg, err := r.Recv(ctx, cc, parent, tagBcast)
			if err != nil {
				return nil, err
			}
			data = msg.Data
			n = msg.Len
			break
		}
		mask <<= 1
	}
	// Send phase: relay to children.
	mask >>= 1
	for mask > 0 {
		if rel+mask < size {
			child := (me + mask) % size
			if err := r.Send(ctx, cc, child, tagBcast, n, data); err != nil {
				return nil, err
			}
		}
		mask >>= 1
	}
	return data, nil
}

// ReduceOp combines two vectors elementwise.
type ReduceOp func(a, b []float64) []float64

// OpSum adds vectors elementwise.
func OpSum(a, b []float64) []float64 {
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] + b[i]
	}
	return out
}

// OpMax takes the elementwise maximum.
func OpMax(a, b []float64) []float64 {
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i]
		if b[i] > out[i] {
			out[i] = b[i]
		}
	}
	return out
}

// OpMin takes the elementwise minimum.
func OpMin(a, b []float64) []float64 {
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i]
		if b[i] < out[i] {
			out[i] = b[i]
		}
	}
	return out
}

// vecSize is the wire size of a float64 vector.
func vecSize(v []float64) units.ByteSize { return units.ByteSize(8 * len(v)) }

// Reduce combines vec across comm with op; the result lands on root
// (other ranks get nil). Binomial-tree reduction.
func (r *Rank) Reduce(ctx *sim.Ctx, comm *Comm, root int, vec []float64, op ReduceOp) ([]float64, error) {
	size := comm.Size()
	me := comm.localRank(r.id)
	if me < 0 {
		return nil, fmt.Errorf("mpi: rank %d not in communicator", r.id)
	}
	if root < 0 || root >= size {
		return nil, fmt.Errorf("mpi: invalid reduce root %d", root)
	}
	cc := collComm(comm)
	rel := (me - root + size) % size
	acc := append([]float64(nil), vec...)
	for mask := 1; mask < size; mask <<= 1 {
		if rel&mask != 0 {
			parent := (me - mask + size) % size
			if err := r.Send(ctx, cc, parent, tagReduce, vecSize(acc), acc); err != nil {
				return nil, err
			}
			return nil, nil
		}
		src := rel | mask
		if src < size {
			from := (src + root) % size
			msg, err := r.Recv(ctx, cc, from, tagReduce)
			if err != nil {
				return nil, err
			}
			acc = op(acc, msg.Data.([]float64))
		}
	}
	return acc, nil
}

// Allreduce combines vec across comm and returns the result on every
// rank (Reduce to local root 0 then Bcast).
func (r *Rank) Allreduce(ctx *sim.Ctx, comm *Comm, vec []float64, op ReduceOp) ([]float64, error) {
	acc, err := r.Reduce(ctx, comm, 0, vec, op)
	if err != nil {
		return nil, err
	}
	out, err := r.Bcast(ctx, comm, 0, vecSize(vec), acc)
	if err != nil {
		return nil, err
	}
	return out.([]float64), nil
}

// Gather concatenates each member's vector on root in rank order
// (other ranks get nil).
func (r *Rank) Gather(ctx *sim.Ctx, comm *Comm, root int, vec []float64) ([]float64, error) {
	size := comm.Size()
	me := comm.localRank(r.id)
	if me < 0 {
		return nil, fmt.Errorf("mpi: rank %d not in communicator", r.id)
	}
	if root < 0 || root >= size {
		return nil, fmt.Errorf("mpi: invalid gather root %d", root)
	}
	cc := collComm(comm)
	if me != root {
		return nil, r.Send(ctx, cc, root, tagGather, vecSize(vec), vec)
	}
	out := make([]float64, 0, size*len(vec))
	parts := make([][]float64, size)
	parts[me] = vec
	for i := 0; i < size; i++ {
		if i == me {
			continue
		}
		msg, err := r.Recv(ctx, cc, i, tagGather)
		if err != nil {
			return nil, err
		}
		parts[i] = msg.Data.([]float64)
	}
	for _, p := range parts {
		out = append(out, p...)
	}
	return out, nil
}

// Allgather returns the rank-ordered concatenation of every member's
// vector on every rank.
func (r *Rank) Allgather(ctx *sim.Ctx, comm *Comm, vec []float64) ([]float64, error) {
	all, err := r.Gather(ctx, comm, 0, vec)
	if err != nil {
		return nil, err
	}
	out, err := r.Bcast(ctx, comm, 0, vecSize(vec)*units.ByteSize(comm.Size()), all)
	if err != nil {
		return nil, err
	}
	return out.([]float64), nil
}

// Scatter splits parts (root only; one slice per member, rank order)
// and delivers each member its piece.
func (r *Rank) Scatter(ctx *sim.Ctx, comm *Comm, root int, parts [][]float64) ([]float64, error) {
	size := comm.Size()
	me := comm.localRank(r.id)
	if me < 0 {
		return nil, fmt.Errorf("mpi: rank %d not in communicator", r.id)
	}
	if root < 0 || root >= size {
		return nil, fmt.Errorf("mpi: invalid scatter root %d", root)
	}
	cc := collComm(comm)
	if me == root {
		if len(parts) != size {
			return nil, fmt.Errorf("mpi: scatter needs %d parts, got %d", size, len(parts))
		}
		for i := 0; i < size; i++ {
			if i == me {
				continue
			}
			if err := r.Send(ctx, cc, i, tagScatter, vecSize(parts[i]), parts[i]); err != nil {
				return nil, err
			}
		}
		return parts[me], nil
	}
	msg, err := r.Recv(ctx, cc, root, tagScatter)
	if err != nil {
		return nil, err
	}
	return msg.Data.([]float64), nil
}
