package garnet

import (
	"strings"
	"testing"
	"time"

	"mpichgq/internal/diffserv"
	"mpichgq/internal/gara"
	"mpichgq/internal/mpi"
	"mpichgq/internal/netsim"
	"mpichgq/internal/sim"
	"mpichgq/internal/tcpsim"
	"mpichgq/internal/trafficgen"
	"mpichgq/internal/units"
)

func TestTopologyConnectivity(t *testing.T) {
	tb := New(1)
	// Every host pair must be routable.
	hosts := []*netsim.Node{tb.PremSrc, tb.PremDst, tb.CompSrc, tb.CompDst}
	for _, a := range hosts {
		for _, b := range hosts {
			if a == b {
				continue
			}
			if a.RouteTo(b.Addr()) == nil {
				t.Fatalf("no route %s -> %s", a.Name(), b.Name())
			}
		}
	}
	if tb.RTT() != 2*time.Millisecond {
		t.Fatalf("RTT = %v, want 2ms", tb.RTT())
	}
	if !strings.Contains(tb.Topology(), "edge1-core") {
		t.Fatal("topology rendering missing bottleneck")
	}
}

func TestPremiumPathCrossesBottleneck(t *testing.T) {
	tb := New(1)
	// Send a UDP packet prem-src -> prem-dst and verify it transits
	// edge1-core.
	src := tb.PremSrc.UDPStack()
	tb.PremDst.UDPStack()
	sock, _ := src.Bind(0)
	sock.SendTo(tb.PremDst.Addr(), 9, 100, nil)
	if err := tb.K.Run(); err != nil {
		t.Fatal(err)
	}
	if tb.Bottleneck.IfaceOn(tb.Edge1).Stats().TxPackets != 1 {
		t.Fatal("premium traffic did not cross the bottleneck")
	}
}

func TestGaraReservationOnTestbed(t *testing.T) {
	tb := New(1)
	spec := gara.Spec{
		Type:      gara.ResourceNetwork,
		Flow:      diffserv.MatchHostPair(tb.PremSrc.Addr(), tb.PremDst.Addr(), netsim.ProtoTCP),
		Bandwidth: 40 * units.Mbps,
	}
	res, err := tb.Gara.Reserve(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.State() != gara.StateActive {
		t.Fatalf("state = %v", res.State())
	}
	// EF capacity: 0.7 * 155 Mb/s = 108.5 Mb/s per link.
	if _, err := tb.Gara.Reserve(spec); err != nil {
		t.Fatalf("second 40 Mb/s should fit: %v", err)
	}
	spec.Bandwidth = 50 * units.Mbps
	if _, err := tb.Gara.Reserve(spec); err == nil {
		t.Fatal("40+40+50 should exceed the 108.5 Mb/s EF share")
	}
}

func TestMPIPairRunsOnTestbed(t *testing.T) {
	tb := New(1)
	job := tb.NewMPIPair(tcpsim.DefaultOptions(), mpi.JobOptions{})
	rounds := 0
	job.Start(func(ctx *sim.Ctx, r *mpi.Rank) {
		w := r.World()
		for i := 0; i < 10; i++ {
			if r.ID() == 0 {
				r.Send(ctx, w, 1, 0, 10*units.KB, nil)
				r.Recv(ctx, w, 1, 0)
				rounds++
			} else {
				r.Recv(ctx, w, 0, 0)
				r.Send(ctx, w, 0, 0, 10*units.KB, nil)
			}
		}
	})
	if err := tb.K.RunUntil(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if rounds != 10 {
		t.Fatalf("rounds = %d, want 10", rounds)
	}
}

func TestAddSite(t *testing.T) {
	tb := New(1)
	remote := tb.AddSite("anl-wan", 45*units.Mbps, 5*time.Millisecond)
	src := tb.PremSrc.UDPStack()
	remote.UDPStack()
	sock, _ := src.Bind(0)
	ok, err := sock.SendTo(remote.Addr(), 9, 100, nil)
	if err != nil || !ok {
		t.Fatalf("send to remote site: ok=%v err=%v", ok, err)
	}
	delivered := false
	k := tb.K
	rsock, _ := remote.UDPStack().Bind(9)
	k.Spawn("sink", func(ctx *sim.Ctx) {
		if _, err := rsock.Recv(ctx); err == nil {
			delivered = true
		}
	})
	// First packet was sent before the sink bound; send another.
	k.After(time.Millisecond*50, func() { sock.SendTo(remote.Addr(), 9, 100, nil) })
	if err := k.RunUntil(time.Second); err != nil {
		t.Fatal(err)
	}
	if !delivered {
		t.Fatal("wide-area site unreachable")
	}
}

func TestWideAreaPremiumAcrossSites(t *testing.T) {
	// A premium flow from the local testbed to a remote site behind a
	// constrained 45 Mb/s WAN link, while the blaster congests the
	// local bottleneck AND a local best-effort flow competes on the
	// WAN link. The premium flow must hold its reservation end to
	// end; only the EF share of the thin WAN link is admissible.
	tb := New(1)
	remote := tb.AddSite("wan", 45*units.Mbps, 5*time.Millisecond)

	bl := &trafficgen.UDPBlaster{Rate: 160 * units.Mbps, Jitter: 0.1}
	if err := bl.Run(tb.CompSrc, tb.CompDst, 9000); err != nil {
		t.Fatal(err)
	}
	// Cross-WAN best-effort competition.
	bl2 := &trafficgen.UDPBlaster{Rate: 60 * units.Mbps, Jitter: 0.1}
	if err := bl2.Run(tb.CompSrc, remote, 9001); err != nil {
		t.Fatal(err)
	}

	// EF share of the WAN link: 0.7*45 = 31.5 Mb/s. A 40 Mb/s request
	// must be refused; 20 Mb/s is admissible.
	sa := tcpsim.NewStack(tb.PremSrc, tcpsim.DefaultOptions())
	sr := tcpsim.NewStack(remote, tcpsim.DefaultOptions())
	var rx units.ByteSize
	tb.K.Spawn("server", func(ctx *sim.Ctx) {
		l, err := sr.Listen(700)
		if err != nil {
			t.Error(err)
			return
		}
		c, err := l.Accept(ctx)
		if err != nil {
			return
		}
		for {
			n, err := c.Read(ctx, 256*units.KB)
			rx += n
			if err != nil {
				return
			}
		}
	})
	tb.K.Spawn("client", func(ctx *sim.Ctx) {
		c, err := sa.Dial(ctx, remote.Addr(), 700)
		if err != nil {
			t.Error(err)
			return
		}
		big := gara.Spec{
			Type: gara.ResourceNetwork,
			Flow: diffserv.MatchFlow(c.FlowKey()), Bandwidth: 40 * units.Mbps,
		}
		if _, err := tb.Gara.Reserve(big); err == nil {
			t.Error("40 Mb/s should exceed the WAN link's EF share")
		}
		ok := big
		ok.Bandwidth = 20 * units.Mbps
		if _, err := tb.Gara.Reserve(ok); err != nil {
			t.Errorf("20 Mb/s should be admitted: %v", err)
			return
		}
		// Stream paced at 18 Mb/s for 10 s.
		gap := (18 * units.Mbps).TimeToSend(6250)
		for ctx.Now() < 10*time.Second {
			if err := c.Write(ctx, 6250); err != nil {
				return
			}
			ctx.Sleep(gap)
		}
	})
	if err := tb.K.RunUntil(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	rate := units.RateOf(rx, 10*time.Second)
	if rate < 15*units.Mbps {
		t.Fatalf("wide-area premium flow achieved %v, want ~18 Mb/s", rate)
	}
}
