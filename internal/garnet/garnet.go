// Package garnet builds the Globus Advance Reservation Network
// Testbed of §5.1/Figure 4: premium and competitive source/destination
// hosts around three Cisco-7507-class routers, with EF priority
// queueing on every router port and a GARA instance (DS network
// manager, DSRT CPU manager, DPSS storage manager) managing the
// domain.
//
//	premSrc ─┐                        ┌─ premDst
//	         edge1 ── core ── edge2 ──┤
//	compSrc ─┘                        └─ compDst
//
// Within GARNET the routers are connected by OC3 ATM (155 Mb/s); end
// systems attach by switched Fast Ethernet or OC3. Link delays are
// sized so the end-to-end delay is "on the order of a millisecond or
// two", matching the bandwidth×delay bucket arithmetic of §4.3.
package garnet

import (
	"fmt"
	"time"

	"mpichgq/internal/diffserv"
	"mpichgq/internal/gara"
	"mpichgq/internal/mpi"
	"mpichgq/internal/netsim"
	"mpichgq/internal/sim"
	"mpichgq/internal/tcpsim"
	"mpichgq/internal/units"
)

// Options configure the testbed build.
type Options struct {
	// LinkRate is the router-to-router (OC3) rate. Default 155 Mb/s.
	LinkRate units.BitRate
	// AccessRate is the host-to-edge rate. Default 155 Mb/s (OC3
	// attachment, so a single competitive host can overwhelm the
	// core path like the paper's UDP generator).
	AccessRate units.BitRate
	// HopDelay is the one-way delay per link. Default 250 µs, giving
	// a ~2 ms round trip across the testbed.
	HopDelay time.Duration
	// EFFraction caps EF reservations per link. Default 0.7.
	EFFraction float64
	// Seed for the simulation kernel. Default 1.
	Seed int64
	// BackupPaths adds a lower-capacity standby path around the
	// edge1-core bottleneck (via a "backup" router), gives every
	// AddSite a second WAN path, and enables automatic re-routing so
	// traffic fails over when a primary link goes down. Off by
	// default: the paper's testbed is single-homed, and static routing
	// keeps healthy-run results byte-identical.
	BackupPaths bool
	// BackupRate is the bottleneck standby path's capacity (default
	// LinkRate/4). Site backup paths use a quarter of their own WAN
	// rate.
	BackupRate units.BitRate
}

func (o Options) withDefaults() Options {
	if o.LinkRate == 0 {
		o.LinkRate = 155 * units.Mbps
	}
	if o.AccessRate == 0 {
		o.AccessRate = 155 * units.Mbps
	}
	if o.HopDelay == 0 {
		o.HopDelay = 250 * time.Microsecond
	}
	if o.EFFraction == 0 {
		o.EFFraction = 0.7
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Testbed is a built GARNET instance.
type Testbed struct {
	K   *sim.Kernel
	Net *netsim.Network

	PremSrc, PremDst   *netsim.Node
	CompSrc, CompDst   *netsim.Node
	Edge1, Core, Edge2 *netsim.Node
	// Backup is the standby router parallel to the bottleneck; nil
	// unless Options.BackupPaths.
	Backup *netsim.Node

	// Bottleneck is the edge1-core link every cross-testbed flow
	// shares.
	Bottleneck *netsim.Link

	Domain *diffserv.Domain
	Gara   *gara.Gara
	NetRM  *gara.NetworkRM
	CPURM  *gara.CPURM

	opts Options
}

// New builds the testbed with defaults.
func New(seed int64) *Testbed {
	return NewWithOptions(Options{Seed: seed})
}

// NewWithOptions builds the testbed.
func NewWithOptions(o Options) *Testbed {
	o = o.withDefaults()
	k := sim.New(o.Seed)
	n := netsim.New(k)
	tb := &Testbed{K: k, Net: n, opts: o}

	tb.PremSrc = n.AddNode("prem-src")
	tb.CompSrc = n.AddNode("comp-src")
	tb.PremDst = n.AddNode("prem-dst")
	tb.CompDst = n.AddNode("comp-dst")
	tb.Edge1 = n.AddNode("edge1")
	tb.Core = n.AddNode("core")
	tb.Edge2 = n.AddNode("edge2")

	n.Connect(tb.PremSrc, tb.Edge1, o.AccessRate, o.HopDelay)
	n.Connect(tb.CompSrc, tb.Edge1, o.AccessRate, o.HopDelay)
	tb.Bottleneck = n.Connect(tb.Edge1, tb.Core, o.LinkRate, o.HopDelay)
	n.Connect(tb.Core, tb.Edge2, o.LinkRate, o.HopDelay)
	n.Connect(tb.Edge2, tb.PremDst, o.AccessRate, o.HopDelay)
	n.Connect(tb.Edge2, tb.CompDst, o.AccessRate, o.HopDelay)
	if o.BackupPaths {
		// Standby path around the bottleneck. Connected after the
		// primary links and one hop longer, so shortest-path routing
		// only chooses it when the bottleneck is down.
		bakRate := o.BackupRate
		if bakRate == 0 {
			bakRate = o.LinkRate / 4
		}
		tb.Backup = n.AddNode("backup")
		n.Connect(tb.Edge1, tb.Backup, bakRate, o.HopDelay)
		n.Connect(tb.Backup, tb.Core, bakRate, o.HopDelay)
		n.SetAutoReroute(true)
	}
	n.ComputeRoutes()

	tb.Domain = diffserv.NewDomain(k)
	tb.Domain.EnableEFAll(tb.Edge1, tb.Core, tb.Edge2)
	if tb.Backup != nil {
		tb.Domain.EnableEFAll(tb.Backup)
	}

	tb.Gara = gara.New(k)
	tb.NetRM = gara.NewNetworkRM(n, tb.Domain, o.EFFraction)
	tb.CPURM = gara.NewCPURM()
	tb.Gara.Register(tb.NetRM)
	tb.Gara.Register(tb.CPURM)
	tb.Gara.Register(gara.NewStorageRM())
	return tb
}

// Options returns the options the testbed was built with.
func (tb *Testbed) Options() Options { return tb.opts }

// RTT returns the round-trip propagation delay between the premium
// hosts (4 hops each way).
func (tb *Testbed) RTT() time.Duration { return 8 * tb.opts.HopDelay }

// AddSite attaches a remote site (an extra edge router plus host) to
// the core over a constrained wide-area link, like GARNET's ESnet and
// MREN attachments.
func (tb *Testbed) AddSite(name string, wanRate units.BitRate, wanDelay time.Duration) *netsim.Node {
	edge := tb.Net.AddNode(name + "-edge")
	host := tb.Net.AddNode(name + "-host")
	tb.Net.Connect(tb.Core, edge, wanRate, wanDelay)
	tb.Net.Connect(edge, host, tb.opts.AccessRate, tb.opts.HopDelay)
	if tb.opts.BackupPaths {
		// Second WAN path at a quarter of the primary's capacity,
		// one hop longer so it only carries traffic during failover.
		bak := tb.Net.AddNode(name + "-bak")
		tb.Net.Connect(tb.Core, bak, wanRate/4, wanDelay)
		tb.Net.Connect(bak, edge, wanRate/4, wanDelay)
		tb.Domain.EnableEFAll(bak)
		// The failover variant must enforce reservations along the
		// whole protected path, so the core's new WAN-facing ports
		// (toward this site's edge and backup routers) get priority
		// queues too. EnableEF is idempotent for the ports that
		// already have them. The single-homed testbed keeps the
		// paper's plain-FIFO core ports.
		tb.Domain.EnableEFAll(tb.Core)
	}
	tb.Net.ComputeRoutes()
	tb.Domain.EnableEFAll(edge)
	return host
}

// NewMPIPair builds a two-rank MPI job: rank 0 on the premium source,
// rank 1 on the premium destination.
func (tb *Testbed) NewMPIPair(tcpOpts tcpsim.Options, jobOpts mpi.JobOptions) *mpi.Job {
	h0 := mpi.NewHost(tb.PremSrc, tcpOpts)
	h1 := mpi.NewHost(tb.PremDst, tcpOpts)
	return mpi.NewJob(tb.K, []*mpi.Host{h0, h1}, jobOpts)
}

// NewMPIJob builds an MPI job over explicit nodes (one rank per node
// entry). A node appearing several times co-locates ranks on one
// host: they share its TCP stack and CPU.
func (tb *Testbed) NewMPIJob(nodes []*netsim.Node, tcpOpts tcpsim.Options, jobOpts mpi.JobOptions) *mpi.Job {
	byNode := make(map[*netsim.Node]*mpi.Host)
	hosts := make([]*mpi.Host, len(nodes))
	for i, nd := range nodes {
		h := byNode[nd]
		if h == nil {
			h = mpi.NewHost(nd, tcpOpts)
			byNode[nd] = h
		}
		hosts[i] = h
	}
	return mpi.NewJob(tb.K, hosts, jobOpts)
}

// Topology renders the testbed's nodes and links for cmd/garnet
// -topology.
func (tb *Testbed) Topology() string {
	s := "GARNET testbed topology:\n"
	for _, l := range tb.Net.Links() {
		s += fmt.Sprintf("  %-20s %8s  %v one-way\n", l.Name(), l.Rate(), l.Delay())
	}
	return s
}
