package broker

import (
	"strings"
	"testing"
	"time"

	"mpichgq/internal/diffserv"
	"mpichgq/internal/dsrt"
	"mpichgq/internal/faults"
	"mpichgq/internal/gara"
	"mpichgq/internal/garnet"
	"mpichgq/internal/netsim"
	"mpichgq/internal/units"
)

func netSpec(tb *garnet.Testbed, bw units.BitRate) gara.Spec {
	return gara.Spec{
		Type:      gara.ResourceNetwork,
		Flow:      diffserv.MatchHostPair(tb.PremSrc.Addr(), tb.PremDst.Addr(), netsim.ProtoTCP),
		Bandwidth: bw,
		Duration:  time.Minute,
	}
}

func TestBandwidthQuota(t *testing.T) {
	tb := garnet.New(1)
	b := New(tb.Gara, Policy{MaxBandwidth: 10 * units.Mbps, MaxDuration: time.Hour})
	if _, err := b.Request("alice", netSpec(tb, 6*units.Mbps)); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Request("alice", netSpec(tb, 6*units.Mbps)); err == nil {
		t.Fatal("6+6 over a 10 Mb/s quota should be denied")
	}
	if _, err := b.Request("alice", netSpec(tb, 4*units.Mbps)); err != nil {
		t.Fatalf("6+4 should fit the quota: %v", err)
	}
	// Quotas are per principal.
	if _, err := b.Request("bob", netSpec(tb, 10*units.Mbps)); err != nil {
		t.Fatalf("bob has his own quota: %v", err)
	}
	bw, _ := b.Usage("alice")
	if bw != 10*units.Mbps {
		t.Fatalf("alice usage = %v, want 10 Mb/s", bw)
	}
}

func TestDurationAndAdvanceLimits(t *testing.T) {
	tb := garnet.New(1)
	b := New(tb.Gara, Policy{
		MaxBandwidth: 100 * units.Mbps,
		MaxDuration:  10 * time.Minute,
		MaxAdvance:   time.Hour,
	})
	spec := netSpec(tb, units.Mbps)
	spec.Duration = time.Hour
	if _, err := b.Request("alice", spec); err == nil {
		t.Fatal("over-long reservation should be denied")
	}
	spec.Duration = 0 // indefinite
	if _, err := b.Request("alice", spec); err == nil {
		t.Fatal("indefinite reservation should be denied under a duration cap")
	}
	spec.Duration = 5 * time.Minute
	spec.Start = 2 * time.Hour
	if _, err := b.Request("alice", spec); err == nil {
		t.Fatal("too-far-advance reservation should be denied")
	}
	spec.Start = 30 * time.Minute
	if _, err := b.Request("alice", spec); err != nil {
		t.Fatalf("in-horizon advance reservation should pass: %v", err)
	}
}

func TestCancelFreesQuota(t *testing.T) {
	tb := garnet.New(1)
	b := New(tb.Gara, Policy{MaxBandwidth: 10 * units.Mbps, MaxDuration: time.Hour})
	r, err := b.Request("alice", netSpec(tb, 10*units.Mbps))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Request("alice", netSpec(tb, units.Mbps)); err == nil {
		t.Fatal("quota full")
	}
	b.Cancel("alice", r)
	if _, err := b.Request("alice", netSpec(tb, 10*units.Mbps)); err != nil {
		t.Fatalf("quota not freed by cancel: %v", err)
	}
}

func TestExpiryFreesQuota(t *testing.T) {
	tb := garnet.New(1)
	b := New(tb.Gara, Policy{MaxBandwidth: 10 * units.Mbps, MaxDuration: time.Hour})
	spec := netSpec(tb, 10*units.Mbps)
	spec.Duration = 10 * time.Second
	if _, err := b.Request("alice", spec); err != nil {
		t.Fatal(err)
	}
	tb.K.RunUntil(11 * time.Second)
	if _, err := b.Request("alice", netSpec(tb, 10*units.Mbps)); err != nil {
		t.Fatalf("quota not freed by expiry: %v", err)
	}
}

func TestCPUQuota(t *testing.T) {
	tb := garnet.New(1)
	b := New(tb.Gara, Policy{MaxCPUFraction: 0.8, MaxDuration: time.Hour})
	host := garnetCPUTask(tb)
	spec := gara.Spec{Type: gara.ResourceCPU, Task: host, Fraction: 0.5, Duration: time.Minute}
	if _, err := b.Request("alice", spec); err != nil {
		t.Fatal(err)
	}
	spec.Fraction = 0.4
	if _, err := b.Request("alice", spec); err == nil {
		t.Fatal("0.5+0.4 over a 0.8 CPU quota should be denied")
	}
}

func TestPerPrincipalPolicyOverride(t *testing.T) {
	tb := garnet.New(1)
	b := New(tb.Gara, Policy{MaxBandwidth: units.Mbps, MaxDuration: time.Hour})
	b.SetPolicy("vip", Policy{MaxBandwidth: 100 * units.Mbps, MaxDuration: time.Hour})
	if _, err := b.Request("pleb", netSpec(tb, 2*units.Mbps)); err == nil {
		t.Fatal("default quota should deny 2 Mb/s")
	}
	if _, err := b.Request("vip", netSpec(tb, 50*units.Mbps)); err != nil {
		t.Fatalf("vip policy should admit: %v", err)
	}
}

func TestDecisionLog(t *testing.T) {
	tb := garnet.New(1)
	b := New(tb.Gara, Policy{MaxBandwidth: 10 * units.Mbps, MaxDuration: time.Hour})
	b.Request("alice", netSpec(tb, 6*units.Mbps))
	b.Request("alice", netSpec(tb, 6*units.Mbps)) // denied
	log := b.Decisions()
	if len(log) != 2 {
		t.Fatalf("log entries = %d, want 2", len(log))
	}
	if !log[0].Granted || log[1].Granted {
		t.Fatalf("log = %+v", log)
	}
	if log[1].Reason == "" {
		t.Fatal("denial should carry a reason")
	}
}

// Quota reconciliation: a degraded reservation (fault on the reserved
// path) holds no capacity, so its quota is released while it stays
// tracked for repair; a repaired handle is charged again; a handle
// cancelled behind the broker's back (crash recovery) is pruned.
func TestReconcileReleasesDegradedAndRecoveredQuota(t *testing.T) {
	tb := garnet.New(1)
	faults.NewScenario("flap").Flap("edge1-core", time.Second, 5*time.Second).MustApply(tb.Net)
	b := New(tb.Gara, Policy{MaxBandwidth: 10 * units.Mbps, MaxDuration: time.Hour})
	r, err := b.Request("alice", netSpec(tb, 10*units.Mbps))
	if err != nil {
		t.Fatal(err)
	}
	if bw, _ := b.Usage("alice"); bw != 10*units.Mbps {
		t.Fatalf("usage = %v, want 10 Mb/s", bw)
	}

	// Fault degrades the reservation: quota released, handle retained.
	tb.K.RunUntil(2 * time.Second)
	if r.State() != gara.StateDegraded {
		t.Fatalf("state = %v, want degraded after the link fault", r.State())
	}
	if bw, _ := b.Usage("alice"); bw != 0 {
		t.Fatalf("degraded usage = %v, want 0 (quota released)", bw)
	}
	if n, ok := tb.K.Metrics().CounterValue("broker_quota_released_total"); !ok || n != 1 {
		t.Fatalf("broker_quota_released_total = %d (ok=%v), want 1", n, ok)
	}
	found := false
	for _, d := range b.Decisions() {
		if d.Who == "alice" && !d.Granted && strings.Contains(d.Reason, "reconciled") {
			found = true
		}
	}
	if !found {
		t.Fatal("no reconciliation entry in the audit log")
	}

	// Link returns; repair re-charges the principal — the broker must
	// still be tracking the handle.
	tb.K.RunUntil(6 * time.Second)
	if err := r.Reattach(); err != nil {
		t.Fatal(err)
	}
	if bw, _ := b.Usage("alice"); bw != 10*units.Mbps {
		t.Fatalf("post-repair usage = %v, want 10 Mb/s (handle lost by reconciliation?)", bw)
	}

	// A recovery pass cancels the reservation without telling the
	// broker; Reconcile notices, releases the quota, prunes the handle.
	r.Cancel()
	b.Reconcile()
	if n, _ := tb.K.Metrics().CounterValue("broker_quota_released_total"); n != 2 {
		t.Fatalf("broker_quota_released_total = %d, want 2", n)
	}
	if bw, _ := b.Usage("alice"); bw != 0 {
		t.Fatalf("post-cancel usage = %v, want 0", bw)
	}
	if _, err := b.Request("alice", netSpec(tb, 10*units.Mbps)); err != nil {
		t.Fatalf("quota not freed for a new reservation: %v", err)
	}
}

// garnetCPUTask gives the broker tests a DSRT task bound to a CPU.
func garnetCPUTask(tb *garnet.Testbed) *dsrt.Task {
	return dsrt.NewCPU(tb.K, "host").NewTask("app")
}
