// Package broker implements the bandwidth broker the paper places in
// front of the routers: "admission control is performed not by the
// router but by an external QoS system, usually referred to as a
// bandwidth broker" (§2), with GARA's "policy-driven management of a
// variety of resource types" (§4.2).
//
// The broker sits above GARA: principals (users, projects) submit
// reservation requests; the broker enforces per-principal policy
// (bandwidth quota, duration and advance-booking limits), keeps an
// auditable decision log, and only then forwards admitted requests to
// GARA's slot-table admission.
package broker

import (
	"fmt"
	"time"

	"mpichgq/internal/gara"
	"mpichgq/internal/units"
)

// Principal identifies a requesting user or project.
type Principal string

// Policy bounds one principal's reservations.
type Policy struct {
	// MaxBandwidth caps the sum of the principal's active and
	// pending network reservations. Zero means no network quota.
	MaxBandwidth units.BitRate
	// MaxDuration caps a single reservation's length; zero allows
	// indefinite reservations.
	MaxDuration time.Duration
	// MaxAdvance caps how far ahead an advance reservation may
	// start; zero allows any horizon.
	MaxAdvance time.Duration
	// MaxCPUFraction caps the sum of the principal's CPU
	// reservations across hosts. Zero means no CPU quota.
	MaxCPUFraction float64
}

// Decision is one audit-log entry.
type Decision struct {
	T       time.Duration
	Who     Principal
	Spec    gara.Spec
	Granted bool
	Reason  string
}

// Broker is a policy-enforcing front end to a Gara instance.
type Broker struct {
	g        *gara.Gara
	policies map[Principal]Policy
	fallback Policy
	active   map[Principal][]*gara.Reservation
	log      []Decision
}

// New returns a broker over g. The fallback policy applies to
// principals without an explicit one.
func New(g *gara.Gara, fallback Policy) *Broker {
	return &Broker{
		g:        g,
		policies: make(map[Principal]Policy),
		fallback: fallback,
		active:   make(map[Principal][]*gara.Reservation),
	}
}

// SetPolicy installs or replaces a principal's policy.
func (b *Broker) SetPolicy(p Principal, pol Policy) { b.policies[p] = pol }

// PolicyFor returns the effective policy for a principal.
func (b *Broker) PolicyFor(p Principal) Policy {
	if pol, ok := b.policies[p]; ok {
		return pol
	}
	return b.fallback
}

// Usage returns the principal's currently committed network bandwidth
// and CPU fraction (pending advance reservations count: they hold
// slot-table capacity).
func (b *Broker) Usage(p Principal) (units.BitRate, float64) {
	var bw units.BitRate
	var cpu float64
	for _, r := range b.live(p) {
		switch r.Spec().Type {
		case gara.ResourceNetwork:
			bw += r.Spec().Bandwidth
		case gara.ResourceCPU:
			cpu += r.Spec().Fraction
		}
	}
	return bw, cpu
}

// live prunes finished reservations and returns the remainder.
func (b *Broker) live(p Principal) []*gara.Reservation {
	kept := b.active[p][:0]
	for _, r := range b.active[p] {
		if s := r.State(); s == gara.StateActive || s == gara.StatePending {
			kept = append(kept, r)
		}
	}
	b.active[p] = kept
	return kept
}

// Request submits a reservation on behalf of a principal. Policy
// violations are rejected before GARA sees the request; admission
// failures from GARA are logged the same way.
func (b *Broker) Request(who Principal, spec gara.Spec) (*gara.Reservation, error) {
	pol := b.PolicyFor(who)
	now := b.g.Kernel().Now()
	deny := func(reason string) (*gara.Reservation, error) {
		b.log = append(b.log, Decision{T: now, Who: who, Spec: spec, Reason: reason})
		return nil, fmt.Errorf("broker: %s", reason)
	}
	if pol.MaxDuration > 0 && (spec.Duration <= 0 || spec.Duration > pol.MaxDuration) {
		return deny(fmt.Sprintf("duration %v exceeds policy limit %v", spec.Duration, pol.MaxDuration))
	}
	if pol.MaxAdvance > 0 && spec.Start > now+pol.MaxAdvance {
		return deny(fmt.Sprintf("start %v beyond advance horizon %v", spec.Start, pol.MaxAdvance))
	}
	bw, cpu := b.Usage(who)
	switch spec.Type {
	case gara.ResourceNetwork:
		if pol.MaxBandwidth > 0 && bw+spec.Bandwidth > pol.MaxBandwidth {
			return deny(fmt.Sprintf("bandwidth quota: %v in use + %v requested > %v",
				bw, spec.Bandwidth, pol.MaxBandwidth))
		}
	case gara.ResourceCPU:
		if pol.MaxCPUFraction > 0 && cpu+spec.Fraction > pol.MaxCPUFraction {
			return deny(fmt.Sprintf("CPU quota: %.2f in use + %.2f requested > %.2f",
				cpu, spec.Fraction, pol.MaxCPUFraction))
		}
	}
	r, err := b.g.Reserve(spec)
	if err != nil {
		b.log = append(b.log, Decision{T: now, Who: who, Spec: spec, Reason: err.Error()})
		return nil, err
	}
	b.active[who] = append(b.active[who], r)
	b.log = append(b.log, Decision{T: now, Who: who, Spec: spec, Granted: true, Reason: "admitted"})
	return r, nil
}

// Decisions returns the audit log.
func (b *Broker) Decisions() []Decision {
	out := make([]Decision, len(b.log))
	copy(out, b.log)
	return out
}

// Cancel cancels a reservation previously granted to the principal
// and frees its quota immediately.
func (b *Broker) Cancel(who Principal, r *gara.Reservation) {
	r.Cancel()
	b.live(who)
}
