// Package broker implements the bandwidth broker the paper places in
// front of the routers: "admission control is performed not by the
// router but by an external QoS system, usually referred to as a
// bandwidth broker" (§2), with GARA's "policy-driven management of a
// variety of resource types" (§4.2).
//
// The broker sits above GARA: principals (users, projects) submit
// reservation requests; the broker enforces per-principal policy
// (bandwidth quota, duration and advance-booking limits), keeps an
// auditable decision log, and only then forwards admitted requests to
// GARA's slot-table admission.
package broker

import (
	"errors"
	"fmt"
	"time"

	"mpichgq/internal/gara"
	"mpichgq/internal/metrics"
	"mpichgq/internal/units"
)

// ErrBrownout marks a request shed by the broker's brownout mode: the
// control plane is overloaded and the request's class is below the
// current admission bar. Match with errors.Is.
var ErrBrownout = errors.New("broker: shed by brownout")

// Principal identifies a requesting user or project.
type Principal string

// Policy bounds one principal's reservations.
type Policy struct {
	// MaxBandwidth caps the sum of the principal's active and
	// pending network reservations. Zero means no network quota.
	MaxBandwidth units.BitRate
	// MaxDuration caps a single reservation's length; zero allows
	// indefinite reservations.
	MaxDuration time.Duration
	// MaxAdvance caps how far ahead an advance reservation may
	// start; zero allows any horizon.
	MaxAdvance time.Duration
	// MaxCPUFraction caps the sum of the principal's CPU
	// reservations across hosts. Zero means no CPU quota.
	MaxCPUFraction float64
}

// Decision is one audit-log entry.
type Decision struct {
	T       time.Duration
	Who     Principal
	Spec    gara.Spec
	Granted bool
	Reason  string
}

// Broker is a policy-enforcing front end to a Gara instance.
type Broker struct {
	g        *gara.Gara
	policies map[Principal]Policy
	fallback Policy
	active   map[Principal][]*gara.Reservation
	// seen remembers the state each tracked reservation was last
	// reconciled in, so a quota release is logged exactly once per
	// transition.
	seen map[*gara.Reservation]gara.State
	log  []Decision

	// brownout is the degradation level under control-plane overload:
	// 0 admits every class, 1 sheds best-effort, 2 admits premium
	// only. Usually mirrored from the admission queue's level (see
	// ctrlplane Server.SetBrownoutSink).
	brownout int

	mReleased *metrics.Counter
	mShed     *metrics.Counter
	gBrownout *metrics.Gauge
}

// New returns a broker over g. The fallback policy applies to
// principals without an explicit one.
func New(g *gara.Gara, fallback Policy) *Broker {
	return &Broker{
		g:        g,
		policies: make(map[Principal]Policy),
		fallback: fallback,
		active:   make(map[Principal][]*gara.Reservation),
		seen:     make(map[*gara.Reservation]gara.State),
		mReleased: g.Kernel().Metrics().Counter("broker_quota_released_total",
			"reservations whose principal quota was released by reconciliation"),
		mShed: g.Kernel().Metrics().Counter("broker_brownout_shed_total",
			"requests shed by the broker's brownout mode"),
		gBrownout: g.Kernel().Metrics().Gauge("broker_brownout_level",
			"broker brownout level (0 none, 1 shed best-effort, 2 premium only)"),
	}
}

// SetBrownout sets the brownout level (clamped to 0..2). Level 1
// sheds ClassBestEffort requests, level 2 everything below
// ClassPremium — lower classes always yield first, so premium
// admission degrades last.
func (b *Broker) SetBrownout(level int) {
	if level < 0 {
		level = 0
	}
	if level > 2 {
		level = 2
	}
	b.brownout = level
	b.gBrownout.Set(float64(level))
}

// Brownout returns the current brownout level.
func (b *Broker) Brownout() int { return b.brownout }

// admitsClass reports whether the brownout level admits c.
func (b *Broker) admitsClass(c gara.Class) bool {
	switch b.brownout {
	case 0:
		return true
	case 1:
		return c >= gara.ClassNormal
	default:
		return c >= gara.ClassPremium
	}
}

// SetPolicy installs or replaces a principal's policy.
func (b *Broker) SetPolicy(p Principal, pol Policy) { b.policies[p] = pol }

// PolicyFor returns the effective policy for a principal.
func (b *Broker) PolicyFor(p Principal) Policy {
	if pol, ok := b.policies[p]; ok {
		return pol
	}
	return b.fallback
}

// Usage returns the principal's currently committed network bandwidth
// and CPU fraction (pending advance reservations count: they hold
// slot-table capacity). Degraded reservations are excluded — a
// degraded handle holds no booked capacity, so its quota is released
// until a Reattach brings it back — but they stay tracked, so a
// successful repair re-charges the principal.
func (b *Broker) Usage(p Principal) (units.BitRate, float64) {
	var bw units.BitRate
	var cpu float64
	for _, r := range b.live(p) {
		if r.State() == gara.StateDegraded {
			continue
		}
		switch r.Spec().Type {
		case gara.ResourceNetwork:
			bw += r.Spec().Bandwidth
		case gara.ResourceCPU:
			cpu += r.Spec().Fraction
		}
	}
	return bw, cpu
}

// live reconciles the principal's ledger against the reservations'
// actual states: terminal handles (expired, or cancelled — whether by
// the holder or by crash recovery) are pruned and degraded ones
// retained but flagged, each transition audited once and counted in
// broker_quota_released_total.
func (b *Broker) live(p Principal) []*gara.Reservation {
	kept := b.active[p][:0]
	for _, r := range b.active[p] {
		s := r.State()
		switch s {
		case gara.StateActive, gara.StatePending:
			kept = append(kept, r)
		case gara.StateDegraded:
			// Repairable: keep tracking, but the quota is free.
			kept = append(kept, r)
			b.noteRelease(p, r, s)
		default:
			b.noteRelease(p, r, s)
			delete(b.seen, r)
		}
		if _, tracked := b.seen[r]; tracked {
			b.seen[r] = s
		}
	}
	b.active[p] = kept
	return kept
}

// noteRelease logs a quota release the first time a reservation is
// seen in a non-chargeable state. A degraded handle that is repaired
// and degrades again is logged again: each transition releases quota.
func (b *Broker) noteRelease(p Principal, r *gara.Reservation, s gara.State) {
	if b.seen[r] == s {
		return
	}
	b.mReleased.Inc()
	b.log = append(b.log, Decision{
		T: b.g.Kernel().Now(), Who: p, Spec: r.Spec(),
		Reason: fmt.Sprintf("reconciled: reservation %s, quota released", s),
	})
}

// Reconcile sweeps every principal's ledger once, releasing quota held
// by degraded or externally-cancelled reservations (e.g. a recovery
// pass on a crashed resource manager cancelling leases behind the
// broker's back). Usage and Request reconcile lazily on their own;
// Reconcile is for callers that want the audit log and gauge current
// without issuing a request.
func (b *Broker) Reconcile() {
	for p := range b.active {
		b.live(p)
	}
}

// Request submits a reservation on behalf of a principal. Policy
// violations are rejected before GARA sees the request; admission
// failures from GARA are logged the same way.
func (b *Broker) Request(who Principal, spec gara.Spec) (*gara.Reservation, error) {
	pol := b.PolicyFor(who)
	now := b.g.Kernel().Now()
	deny := func(reason string) (*gara.Reservation, error) {
		b.log = append(b.log, Decision{T: now, Who: who, Spec: spec, Reason: reason})
		return nil, fmt.Errorf("broker: %s", reason)
	}
	if !b.admitsClass(spec.Class) {
		b.mShed.Inc()
		reason := fmt.Sprintf("brownout level %d sheds class %s", b.brownout, spec.Class)
		b.log = append(b.log, Decision{T: now, Who: who, Spec: spec, Reason: reason})
		return nil, fmt.Errorf("%w: %s", ErrBrownout, reason)
	}
	if pol.MaxDuration > 0 && (spec.Duration <= 0 || spec.Duration > pol.MaxDuration) {
		return deny(fmt.Sprintf("duration %v exceeds policy limit %v", spec.Duration, pol.MaxDuration))
	}
	if pol.MaxAdvance > 0 && spec.Start > now+pol.MaxAdvance {
		return deny(fmt.Sprintf("start %v beyond advance horizon %v", spec.Start, pol.MaxAdvance))
	}
	bw, cpu := b.Usage(who)
	switch spec.Type {
	case gara.ResourceNetwork:
		if pol.MaxBandwidth > 0 && bw+spec.Bandwidth > pol.MaxBandwidth {
			return deny(fmt.Sprintf("bandwidth quota: %v in use + %v requested > %v",
				bw, spec.Bandwidth, pol.MaxBandwidth))
		}
	case gara.ResourceCPU:
		if pol.MaxCPUFraction > 0 && cpu+spec.Fraction > pol.MaxCPUFraction {
			return deny(fmt.Sprintf("CPU quota: %.2f in use + %.2f requested > %.2f",
				cpu, spec.Fraction, pol.MaxCPUFraction))
		}
	}
	r, err := b.g.Reserve(spec)
	if err != nil {
		b.log = append(b.log, Decision{T: now, Who: who, Spec: spec, Reason: err.Error()})
		return nil, err
	}
	b.active[who] = append(b.active[who], r)
	b.seen[r] = r.State()
	b.log = append(b.log, Decision{T: now, Who: who, Spec: spec, Granted: true, Reason: "admitted"})
	return r, nil
}

// Decisions returns the audit log.
func (b *Broker) Decisions() []Decision {
	out := make([]Decision, len(b.log))
	copy(out, b.log)
	return out
}

// Cancel cancels a reservation previously granted to the principal
// and frees its quota immediately.
func (b *Broker) Cancel(who Principal, r *gara.Reservation) {
	r.Cancel()
	b.live(who)
}
