// Package netsim is a packet-level network simulator: hosts and routers
// joined by point-to-point links with finite bandwidth, propagation
// delay, and finite queues.
//
// It deliberately models the pieces of an IP network that matter for
// the MPICH-GQ experiments: per-packet serialization at link rate,
// drop-tail queueing, static shortest-path routing, and pluggable
// per-interface ingress filters and egress queues. Differentiated
// Services behaviour (classification, token-bucket policing, priority
// queueing) plugs in through those two extension points; see package
// diffserv.
package netsim

import (
	"fmt"
	"time"

	"mpichgq/internal/sim"
	"mpichgq/internal/units"
)

// Addr identifies a node. Addresses are assigned sequentially starting
// at 1 as nodes are added to a Network.
type Addr uint32

// Port identifies a transport endpoint within a node.
type Port uint16

// Proto is a transport protocol number.
type Proto uint8

// Transport protocol numbers (matching IP protocol numbers for
// familiarity).
const (
	ProtoTCP Proto = 6
	ProtoUDP Proto = 17
)

func (p Proto) String() string {
	switch p {
	case ProtoTCP:
		return "tcp"
	case ProtoUDP:
		return "udp"
	default:
		return fmt.Sprintf("proto(%d)", uint8(p))
	}
}

// DSCP is the Differentiated Services code point carried in a packet
// header.
type DSCP uint8

// Code points used by the reproduction.
const (
	// DSCPBestEffort is the default (no QoS) code point.
	DSCPBestEffort DSCP = 0
	// DSCPEF is Expedited Forwarding: packets in the expedited queue
	// are sent before any others (RFC 2598).
	DSCPEF DSCP = 46
)

func (d DSCP) String() string {
	switch d {
	case DSCPBestEffort:
		return "BE"
	case DSCPEF:
		return "EF"
	default:
		return fmt.Sprintf("dscp(%d)", uint8(d))
	}
}

// Header overheads added by transports to on-wire packet sizes.
const (
	// IPHeader is the IPv4 header size without options.
	IPHeader = 20 * units.Byte
	// TCPHeader is the TCP header size without options.
	TCPHeader = 20 * units.Byte
	// UDPHeader is the UDP header size.
	UDPHeader = 8 * units.Byte
)

// Packet is a simulated IP packet.
type Packet struct {
	ID      uint64
	Src     Addr
	Dst     Addr
	SrcPort Port
	DstPort Port
	Proto   Proto
	DSCP    DSCP
	// Size is the on-wire size including transport and IP headers.
	Size units.ByteSize
	// PayloadLen is the transport payload length in bytes.
	PayloadLen units.ByteSize
	// Payload carries transport-specific data (e.g. a TCP segment).
	Payload any
	// SentAt is the time the packet entered the network, for delay
	// accounting.
	SentAt time.Duration
}

// FlowKey identifies a unidirectional transport flow (the classic
// 5-tuple).
type FlowKey struct {
	Src     Addr
	Dst     Addr
	SrcPort Port
	DstPort Port
	Proto   Proto
}

// Key returns the packet's flow 5-tuple.
func (p *Packet) Key() FlowKey {
	return FlowKey{Src: p.Src, Dst: p.Dst, SrcPort: p.SrcPort, DstPort: p.DstPort, Proto: p.Proto}
}

// Reverse returns the key of the opposite direction of the flow.
func (k FlowKey) Reverse() FlowKey {
	return FlowKey{Src: k.Dst, Dst: k.Src, SrcPort: k.DstPort, DstPort: k.SrcPort, Proto: k.Proto}
}

func (k FlowKey) String() string {
	return fmt.Sprintf("%v %d:%d->%d:%d", k.Proto, k.Src, k.SrcPort, k.Dst, k.DstPort)
}

// Network is a collection of nodes and links sharing one simulation
// kernel.
type Network struct {
	k        *sim.Kernel
	nodes    []*Node
	byName   map[string]*Node
	links    []*Link
	nextAddr Addr
	nextPkt  uint64

	autoReroute   bool
	topoObservers []func()

	// Fluid background state; see fluid.go.
	fluidFlows  []*FluidFlow
	fluidIfaces []*Iface
	fluidGen    uint64
	nextFluid   uint64

	// pktFree is the packet freelist; see AllocPacket.
	pktFree []*Packet
}

// New returns an empty network on kernel k.
func New(k *sim.Kernel) *Network {
	return &Network{k: k, byName: make(map[string]*Node), nextAddr: 1}
}

// Kernel returns the simulation kernel.
func (n *Network) Kernel() *sim.Kernel { return n.k }

// AddNode creates a node with the given name. Node names must be
// unique within the network.
func (n *Network) AddNode(name string) *Node {
	if _, dup := n.byName[name]; dup {
		panic(fmt.Sprintf("netsim: duplicate node name %q", name))
	}
	reg := n.k.Metrics()
	node := &Node{
		net:      n,
		name:     name,
		addr:     n.nextAddr,
		handlers: make(map[Proto]Handler),
		routes:   make(map[Addr]*Iface),
		mNoRoute: reg.Counter("netsim_no_route_drops_total",
			"packets dropped for lack of a route", "node", name),
		rec: reg.Events(),
	}
	n.nextAddr++
	n.nodes = append(n.nodes, node)
	n.byName[name] = node
	return node
}

// Node returns the node with the given name, or nil.
func (n *Network) Node(name string) *Node { return n.byName[name] }

// Nodes returns all nodes in creation order.
func (n *Network) Nodes() []*Node { return n.nodes }

// Links returns all links in creation order.
func (n *Network) Links() []*Link { return n.links }

// Link returns the link with the given name ("n1-n2"), or nil.
func (n *Network) Link(name string) *Link {
	for _, l := range n.links {
		if l.name == name {
			return l
		}
	}
	return nil
}

// SetAutoReroute controls whether link state transitions trigger an
// automatic RecomputeRoutes. Off by default: without a backup path a
// recompute cannot help, and static routing keeps healthy-run results
// byte-identical to earlier versions.
func (n *Network) SetAutoReroute(on bool) { n.autoReroute = on }

// OnTopologyChange registers f to run after every link state change
// (and after RecomputeRoutes, if auto-reroute is enabled). Resource
// managers use this to re-validate reserved paths.
func (n *Network) OnTopologyChange(f func()) {
	n.topoObservers = append(n.topoObservers, f)
}

// RecomputeRoutes clears every routing table and rebuilds it from the
// current topology, skipping down links, then notifies topology
// observers.
func (n *Network) RecomputeRoutes() {
	for _, nd := range n.nodes {
		nd.routes = make(map[Addr]*Iface)
	}
	n.ComputeRoutes()
	n.notifyTopology()
}

// linkStateChanged is called by Link.SetUp after a transition.
func (n *Network) linkStateChanged(_ *Link) {
	if n.autoReroute {
		n.RecomputeRoutes() // notifies observers itself
		return
	}
	n.notifyTopology()
}

func (n *Network) notifyTopology() {
	// Fluid rates first: flows must re-resolve their paths (a down
	// link, a reroute) before observers re-validate reservations over
	// the new state.
	n.refreshFluid()
	for _, f := range n.topoObservers {
		f()
	}
}

func (n *Network) nextPacketID() uint64 {
	n.nextPkt++
	return n.nextPkt
}

// AllocPacket returns a zeroed Packet from the network's freelist, or
// a fresh one if the freelist is empty. Paired with FreePacket it
// keeps steady-state packet traffic allocation-free; see
// docs/performance.md for the ownership rules.
func (n *Network) AllocPacket() *Packet {
	if l := len(n.pktFree); l > 0 {
		p := n.pktFree[l-1]
		n.pktFree[l-1] = nil
		n.pktFree = n.pktFree[:l-1]
		return p
	}
	return &Packet{}
}

// FreePacket resets p and returns it to the freelist. Freeing is
// optional — an unfreed packet is simply garbage-collected — but a
// packet must be freed at most once, by its current owner. The
// network owns packets in flight and frees them at its drop points
// (egress reject, down-drop, ingress drop, no-route, transit loss);
// a protocol handler owns a delivered packet and frees it after
// consuming it. External handlers that retain a packet must simply
// not free it.
func (n *Network) FreePacket(p *Packet) {
	*p = Packet{}
	n.pktFree = append(n.pktFree, p)
}
