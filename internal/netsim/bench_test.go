package netsim

import (
	"testing"
	"time"

	"mpichgq/internal/sim"
)

// benchLink builds a two-node network with one 100 Mbps link and a
// sink handler that recycles delivered packets.
func benchLink(tb testing.TB) (*sim.Kernel, *Network, *Node, *Node) {
	k := sim.New(1)
	n := New(k)
	a := n.AddNode("a")
	b := n.AddNode("b")
	n.Connect(a, b, 100*1000*1000, time.Millisecond)
	n.ComputeRoutes()
	b.Handle(ProtoUDP, HandlerFunc(func(p *Packet) { n.FreePacket(p) }))
	return k, n, a, b
}

// BenchmarkLinkForward measures one packet crossing one link:
// enqueue, serialization event, propagation event, ingress, delivery,
// recycle. This is the simulator's innermost loop and must not
// allocate in steady state.
func BenchmarkLinkForward(b *testing.B) {
	k, n, src, dst := benchLink(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := n.AllocPacket()
		p.Src, p.Dst = src.Addr(), dst.Addr()
		p.Proto = ProtoUDP
		p.Size = 1500
		if err := src.Send(p); err != nil {
			b.Fatal(err)
		}
		if err := k.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// TestLinkForwardZeroAlloc is the CI guard for the packet-forward hot
// path: once pools are warm, forwarding a packet across a link must
// perform zero heap allocations.
func TestLinkForwardZeroAlloc(t *testing.T) {
	k, n, src, dst := benchLink(t)
	send := func() {
		p := n.AllocPacket()
		p.Src, p.Dst = src.Addr(), dst.Addr()
		p.Proto = ProtoUDP
		p.Size = 1500
		if err := src.Send(p); err != nil {
			t.Fatal(err)
		}
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
	}
	// Warm the event, packet, and heap pools.
	for i := 0; i < 64; i++ {
		send()
	}
	if allocs := testing.AllocsPerRun(1000, send); allocs != 0 {
		t.Fatalf("link forward allocates %.1f objects per packet, want 0", allocs)
	}
}
