package netsim

import (
	"fmt"
	"time"

	"mpichgq/internal/metrics"
	"mpichgq/internal/sim"
	"mpichgq/internal/units"
)

// IngressFilter processes a packet arriving at an interface before the
// node sees it. Filters run in registration order; returning nil drops
// the packet. A filter may modify the packet (e.g. remark its DSCP).
// DiffServ classifiers and token-bucket policers are ingress filters.
type IngressFilter interface {
	Filter(p *Packet) *Packet
}

// IngressFilterFunc adapts a function to the IngressFilter interface.
type IngressFilterFunc func(p *Packet) *Packet

// Filter calls f(p).
func (f IngressFilterFunc) Filter(p *Packet) *Packet { return f(p) }

// Iface is one end of a link. Each interface owns an egress queue and
// a transmitter that serializes one packet at a time at the link rate.
type Iface struct {
	node  *Node
	link  *Link
	side  int // 0 = link.a, 1 = link.b
	queue Queue

	ingress      []IngressFilter
	transmitting bool

	// fluid, when non-nil, is the analytic state of fluid background
	// traffic sharing this egress; see fluid.go.
	fluid *ifaceFluid

	// OnEgressDrop, if non-nil, is called when the egress queue
	// rejects a packet.
	OnEgressDrop func(p *Packet)
	// OnIngressDrop, if non-nil, is called when an ingress filter
	// drops a packet.
	OnIngressDrop func(p *Packet)

	txPackets    uint64
	txBytes      int64
	egressDrops  uint64
	ingressDrops uint64
	downDrops    uint64

	// busy accumulates serialization time for the utilization gauge.
	busy time.Duration

	// label is the interned "node[link]" string used for metric
	// labels and event subjects.
	label         string
	mTxPackets    *metrics.Counter
	mTxBytes      *metrics.Counter
	mEgressDrops  *metrics.Counter
	mIngressDrops *metrics.Counter
	mDownDrops    *metrics.Counter
	rec           *metrics.Recorder
}

// Node returns the node the interface belongs to.
func (i *Iface) Node() *Node { return i.node }

// Link returns the link the interface is attached to.
func (i *Iface) Link() *Link { return i.link }

// Queue returns the egress queue.
func (i *Iface) Queue() Queue { return i.queue }

// SetQueue replaces the egress queue. The existing queue must be empty
// (swap queues at configuration time, not mid-flight).
func (i *Iface) SetQueue(q Queue) {
	if i.queue != nil && i.queue.Len() > 0 {
		panic("netsim: SetQueue with packets in flight")
	}
	i.queue = q
}

// AddIngress appends an ingress filter.
func (i *Iface) AddIngress(f IngressFilter) { i.ingress = append(i.ingress, f) }

// InsertIngress prepends an ingress filter, giving it highest
// precedence. Fault injectors use this so that simulated wire loss
// happens before DiffServ classification sees (and polices) the
// packet.
func (i *Iface) InsertIngress(f IngressFilter) {
	i.ingress = append([]IngressFilter{f}, i.ingress...)
}

// ClearIngress removes all ingress filters.
func (i *Iface) ClearIngress() { i.ingress = nil }

// peer returns the interface at the other end of the link.
func (i *Iface) peer() *Iface {
	if i.link == nil {
		return nil
	}
	if i.side == 0 {
		return i.link.b
	}
	return i.link.a
}

// Peer returns the interface at the other end of the link.
func (i *Iface) Peer() *Iface { return i.peer() }

// String identifies the interface for diagnostics.
func (i *Iface) String() string {
	return fmt.Sprintf("%s[%s]", i.node.name, i.link.name)
}

// enqueue places p on the egress queue and kicks the transmitter. With
// fluid traffic attached, the analytic fluid backlog shares the band's
// buffer: a packet that would overflow the band including that backlog
// is rejected like any other egress drop.
func (i *Iface) enqueue(p *Packet) bool {
	if !i.fluidAdmits(p) || !i.queue.Enqueue(p) {
		i.egressDrops++
		i.mEgressDrops.Inc()
		i.rec.Emit(metrics.EvPacketDropEgress, i.label, int64(p.Size), int64(p.DSCP), 0)
		if i.OnEgressDrop != nil {
			i.OnEgressDrop(p)
		}
		i.node.net.FreePacket(p)
		return false
	}
	if fl := i.fluid; fl != nil && fl.waiting && !fl.waitEF {
		// An expedited arrival preempts a best-effort head's fluid
		// wait: strict priority means it only waits for the expedited
		// lane, so recompute with the shorter horizon.
		if eq, ok := i.queue.(ExpeditedQueue); ok && eq.Expedited(p.DSCP) {
			fl.waitTimer.Cancel()
			fl.waiting = false
		}
	}
	i.tryTransmit()
	return true
}

func (i *Iface) tryTransmit() {
	if i.transmitting || i.link.down {
		// A down link pauses the transmitter: queued packets are
		// retained and resume on SetUp(true).
		return
	}
	k := i.node.net.k
	if fl := i.fluid; fl != nil {
		if fl.waiting {
			return
		}
		fl.sync(k.Now())
		chained := fl.chained
		fl.chained = false
		if !fl.granted && i.queue.Len() > 0 {
			if w, efHead := fl.headWait(chained); w > 0 {
				fl.waiting, fl.waitEF = true, efHead
				fl.waitTimer = k.AfterPrioFunc(w, sim.PrioNet, ifaceFluidWaitDone, i, nil)
				return
			}
		}
		fl.granted = false
	}
	p := i.queue.Dequeue()
	if p == nil {
		return
	}
	i.transmitting = true
	txTime := i.link.rate.TimeToSend(p.Size)
	i.busy += txTime
	k.AfterPrioFunc(txTime, sim.PrioNet, ifaceTxDone, i, p)
}

// ifaceTxDone finishes serializing p on interface a0 and starts the
// propagation event. It is a prebound AfterPrioFunc callback so the
// per-packet forwarding path schedules without closure allocations.
func ifaceTxDone(a0, a1 any) {
	i := a0.(*Iface)
	p := a1.(*Packet)
	if fl := i.fluid; fl != nil {
		fl.sync(i.node.net.k.Now()) // the drain was paused for this serialization
		fl.chained = true           // next head competes at a band boundary
	}
	i.transmitting = false
	if i.link.down {
		// The carrier dropped mid-frame: the packet in flight is
		// lost, attributed to the transmitting direction.
		i.downDrops++
		i.mDownDrops.Inc()
		i.node.net.FreePacket(p)
		return
	}
	i.txPackets++
	i.txBytes += int64(p.Size)
	i.mTxPackets.Inc()
	i.mTxBytes.Add(int64(p.Size))
	i.node.net.k.AfterPrioFunc(i.link.delay, sim.PrioNet, ifaceArrive, i.peer(), p)
	i.tryTransmit()
}

// ifaceArrive delivers a propagated packet to the far interface.
func ifaceArrive(a0, a1 any) { a0.(*Iface).arrive(a1.(*Packet)) }

// arrive runs ingress filters and hands the packet to the node.
func (i *Iface) arrive(p *Packet) {
	for _, f := range i.ingress {
		next := f.Filter(p)
		if next == nil {
			i.ingressDrops++
			i.mIngressDrops.Inc()
			i.rec.Emit(metrics.EvPacketDropIngress, i.label, int64(p.Size), int64(p.DSCP), 0)
			if i.OnIngressDrop != nil {
				i.OnIngressDrop(p)
			}
			i.node.net.FreePacket(p)
			return
		}
		p = next
	}
	i.node.receive(i, p)
}

// Stats returns cumulative interface counters.
func (i *Iface) Stats() IfaceStats {
	return IfaceStats{
		TxPackets:    i.txPackets,
		TxBytes:      i.txBytes,
		EgressDrops:  i.egressDrops,
		IngressDrops: i.ingressDrops,
		DownDrops:    i.downDrops,
		QueueLen:     i.queue.Len(),
	}
}

// IfaceStats holds cumulative per-interface counters.
type IfaceStats struct {
	TxPackets    uint64
	TxBytes      int64
	EgressDrops  uint64
	IngressDrops uint64
	// DownDrops counts packets lost in flight because the link left
	// service while they were being serialized in this direction.
	DownDrops uint64
	QueueLen  int
}

// Link is a full-duplex point-to-point link with symmetric rate and
// one-way propagation delay.
type Link struct {
	net   *Network
	name  string
	a, b  *Iface
	rate  units.BitRate
	delay time.Duration
	down  bool

	rec *metrics.Recorder
}

// SetUp brings the link up or down. While down, both transmitters
// pause: queued packets are retained and resume when the link comes
// back up. Only a packet caught mid-serialization at the down
// transition is lost (counted as a down-drop on its direction), as on
// a real circuit losing carrier. Each transition emits a link.up /
// link.down flight-recorder event and notifies the network so
// failover routing (when enabled) can recompute paths.
func (l *Link) SetUp(up bool) {
	if l.down == !up {
		return // no change: repeated calls must not re-emit events
	}
	l.a.fluidSync()
	l.b.fluidSync()
	l.down = !up
	if up {
		l.rec.Emit(metrics.EvLinkUp, l.name,
			int64(l.a.queue.Len()), int64(l.b.queue.Len()), 0)
		l.a.tryTransmit()
		l.b.tryTransmit()
	} else {
		l.rec.Emit(metrics.EvLinkDown, l.name,
			int64(l.a.queue.Len()), int64(l.b.queue.Len()), 0)
	}
	l.net.linkStateChanged(l)
}

// Up reports whether the link is in service.
func (l *Link) Up() bool { return !l.down }

// DownDrops returns packets lost in flight at down transitions,
// summed over both directions.
func (l *Link) DownDrops() uint64 { return l.a.downDrops + l.b.downDrops }

// Name returns the link name ("n1-n2").
func (l *Link) Name() string { return l.name }

// Rate returns the link bandwidth.
func (l *Link) Rate() units.BitRate { return l.rate }

// Delay returns the one-way propagation delay.
func (l *Link) Delay() time.Duration { return l.delay }

// A returns the interface on the first-named node.
func (l *Link) A() *Iface { return l.a }

// B returns the interface on the second-named node.
func (l *Link) B() *Iface { return l.b }

// IfaceOn returns the link's interface on node nd, or nil if the link
// does not touch nd.
func (l *Link) IfaceOn(nd *Node) *Iface {
	switch nd {
	case l.a.node:
		return l.a
	case l.b.node:
		return l.b
	default:
		return nil
	}
}

// DefaultQueueCap is the egress buffer size given to new interfaces:
// roughly 64 full-size (1500 B) packets, typical of the era's router
// line cards.
const DefaultQueueCap = 96 * units.KB

// Connect joins two nodes with a full-duplex link of the given rate
// and one-way delay. Both interfaces get fresh drop-tail queues of
// DefaultQueueCap.
func (n *Network) Connect(n1, n2 *Node, rate units.BitRate, delay time.Duration) *Link {
	if n1 == n2 {
		panic("netsim: cannot connect a node to itself")
	}
	l := &Link{
		net:   n,
		name:  n1.name + "-" + n2.name,
		rate:  rate,
		delay: delay,
	}
	l.a = &Iface{node: n1, link: l, side: 0, queue: NewDropTail(DefaultQueueCap)}
	l.b = &Iface{node: n2, link: l, side: 1, queue: NewDropTail(DefaultQueueCap)}
	l.a.attachMetrics()
	l.b.attachMetrics()
	l.rec = n.k.Metrics().Events()
	n.k.Metrics().GaugeFunc("netsim_link_up",
		"1 while the link is in service, 0 while down",
		func() float64 {
			if l.down {
				return 0
			}
			return 1
		}, "link", l.name)
	n1.ifaces = append(n1.ifaces, l.a)
	n2.ifaces = append(n2.ifaces, l.b)
	n.links = append(n.links, l)
	return l
}

// attachMetrics resolves the interface's metric handles and registers
// its live gauges. Called once from Connect.
func (i *Iface) attachMetrics() {
	k := i.node.net.k
	reg := k.Metrics()
	i.label = i.String()
	i.rec = reg.Events()
	i.mTxPackets = reg.Counter("netsim_tx_packets_total",
		"packets transmitted on the link", "iface", i.label)
	i.mTxBytes = reg.Counter("netsim_tx_bytes_total",
		"bytes transmitted on the link", "iface", i.label)
	i.mEgressDrops = reg.Counter("netsim_egress_drops_total",
		"packets rejected by the egress queue", "iface", i.label)
	i.mIngressDrops = reg.Counter("netsim_ingress_drops_total",
		"packets dropped by ingress filters", "iface", i.label)
	i.mDownDrops = reg.Counter("netsim_down_drops_total",
		"packets lost in flight when the link left service", "iface", i.label)
	reg.GaugeFunc("netsim_queue_depth_packets",
		"packets currently queued for egress",
		func() float64 { return float64(i.queue.Len()) }, "iface", i.label)
	reg.GaugeFunc("netsim_queue_depth_bytes",
		"bytes currently queued for egress",
		func() float64 { return float64(i.queue.Bytes()) }, "iface", i.label)
	reg.GaugeFunc("netsim_link_utilization",
		"fraction of elapsed sim time spent serializing packets",
		func() float64 {
			now := k.Now()
			if now <= 0 {
				return 0
			}
			return i.busy.Seconds() / now.Seconds()
		}, "iface", i.label)
}
