// Hybrid fluid/packet simulation of background traffic.
//
// A FluidFlow models a constant-bit-rate background flow (the UDP
// blaster of the paper's contention experiments) as a piecewise-
// constant arrival *rate* installed at every egress queue on its path,
// instead of as individual packets. Queues integrate fluid occupancy
// analytically between packet events, so the only kernel events a
// background flow costs are its rate changes (start, stop, SetRate)
// and the topology transitions (link up/down, reroute) that move its
// path — plus one bounded "fluid wait" event per foreground packet
// that has to queue behind fluid backlog.
//
// The model, its error bound against packet-level simulation, and the
// cases it deliberately does not cover are documented in
// docs/performance.md ("Hybrid fluid/packet simulation").
package netsim

import (
	"math"
	"time"

	"mpichgq/internal/metrics"
	"mpichgq/internal/sim"
	"mpichgq/internal/spans"
	"mpichgq/internal/units"
)

// FluidComponent is one DSCP-class share of a fluid flow's rate at a
// point on its path. Policing can split a flow into at most a couple
// of components (e.g. a conforming EF share and a remarked best-effort
// share).
type FluidComponent struct {
	// Rate is the component's arrival rate in bytes per second.
	Rate float64
	// DSCP is the code point the component currently carries.
	DSCP DSCP
}

// FluidFilter is the fluid analog of IngressFilter: an ingress filter
// that also knows how to transform a steady arrival rate. The DiffServ
// classifier implements it (classify, mark, police fluid aggregates).
// Ingress filters that do not implement FluidFilter are skipped by the
// fluid solver — per-packet behaviours such as random wire loss have
// no defined steady-state rate transform.
type FluidFilter interface {
	// FilterFluid transforms the components of one flow crossing the
	// filter. gen increments once per solver pass, so filters that
	// police a shared aggregate can reset their rate budget when it
	// changes and split it across the flows of one pass in
	// deterministic order. Returning an empty slice drops the flow at
	// this hop.
	FilterFluid(gen uint64, key FlowKey, comps []FluidComponent) []FluidComponent
}

// ExpeditedQueue is implemented by egress queues that serve an
// expedited band ahead of a best-effort band (the DiffServ strict-
// priority scheduler). The fluid solver uses it to keep expedited and
// best-effort fluid in separate lanes with the right caps, and the
// transmitter uses it to compute how much fluid backlog actually
// precedes an expedited head-of-line packet.
type ExpeditedQueue interface {
	Queue
	// Expedited reports whether code point d maps to the expedited
	// band.
	Expedited(d DSCP) bool
	// BandOccupancy returns the queued bytes and byte capacity of one
	// band.
	BandOccupancy(expedited bool) (bytes, capacity units.ByteSize)
}

// FluidFlow is a background CBR flow simulated as fluid. Create one
// with Network.NewFluidFlow, then Start/Stop/SetRate it; each of those
// is a rate-change event that re-solves the fluid rates network-wide.
type FluidFlow struct {
	net      *Network
	id       uint64
	name     string
	src, dst *Node
	key      FlowKey
	dscp     DSCP
	rate     units.BitRate
	// chunk is the on-wire size of the packets the flow stands in for;
	// it sets the service quantum foreground packets see.
	chunk  units.ByteSize
	active bool

	// Solver outputs.
	deliveredBps float64 // bytes/s arriving at dst after attenuation
	hops         int

	// Lazily integrated accounting.
	lastAcct       time.Duration
	offeredBytes   float64
	deliveredBytes float64

	span *spans.Span
}

// NewFluidFlow declares a fluid background flow from src to dst with
// the given UDP destination port, offered rate, and payload size per
// notional packet (the same parameters a packet-level UDP blaster
// takes). The flow is inactive until Start.
func (n *Network) NewFluidFlow(name string, src, dst *Node, port Port, rate units.BitRate, payload units.ByteSize) *FluidFlow {
	if rate < 0 {
		panic("netsim: negative fluid flow rate")
	}
	if payload <= 0 {
		payload = 1000
	}
	n.nextFluid++
	f := &FluidFlow{
		net:  n,
		id:   n.nextFluid,
		name: name,
		src:  src,
		dst:  dst,
		key: FlowKey{
			Src:     src.addr,
			Dst:     dst.addr,
			SrcPort: Port(40000 + n.nextFluid),
			DstPort: port,
			Proto:   ProtoUDP,
		},
		dscp:     DSCPBestEffort,
		rate:     rate,
		chunk:    payload + UDPHeader + IPHeader,
		lastAcct: n.k.Now(),
	}
	n.fluidFlows = append(n.fluidFlows, f)
	return f
}

// Key returns the flow's 5-tuple (with its synthetic source port).
func (f *FluidFlow) Key() FlowKey { return f.key }

// Name returns the flow's name.
func (f *FluidFlow) Name() string { return f.name }

// Active reports whether the flow is currently offering traffic.
func (f *FluidFlow) Active() bool { return f.active }

// Rate returns the offered rate.
func (f *FluidFlow) Rate() units.BitRate { return f.rate }

// DeliveredRate returns the end-to-end delivered rate the last fluid
// solve computed for the flow.
func (f *FluidFlow) DeliveredRate() units.BitRate {
	return units.BitRate(8 * f.deliveredBps)
}

// account integrates offered/delivered byte counts up to now at the
// current rates.
func (f *FluidFlow) account(now time.Duration) {
	if dt := (now - f.lastAcct).Seconds(); dt > 0 && f.active {
		f.offeredBytes += float64(f.rate) / 8 * dt
		f.deliveredBytes += f.deliveredBps * dt
	}
	f.lastAcct = now
}

// OfferedBytes returns the bytes the flow has offered so far.
func (f *FluidFlow) OfferedBytes() units.ByteSize {
	f.account(f.net.k.Now())
	return units.ByteSize(f.offeredBytes)
}

// DeliveredBytes returns the bytes delivered end to end so far.
func (f *FluidFlow) DeliveredBytes() units.ByteSize {
	f.account(f.net.k.Now())
	return units.ByteSize(f.deliveredBytes)
}

// Start activates the flow and re-solves fluid rates. Idempotent.
func (f *FluidFlow) Start() {
	if f.active {
		return
	}
	now := f.net.k.Now()
	f.account(now)
	f.active = true
	f.net.k.Metrics().Events().Emit(metrics.EvFluidStart, f.name,
		int64(f.rate), int64(f.chunk), 0)
	if tr := f.net.k.Tracer(); tr.Enabled() {
		f.span = tr.Begin(spans.DeriveTrace(spans.NSFlow, f.traceKey()), 0, "fluid.flow", f.name)
		f.span.Int("rate_bps", int64(f.rate))
	}
	f.net.refreshFluid()
}

// Stop deactivates the flow and re-solves fluid rates. Idempotent.
func (f *FluidFlow) Stop() {
	if !f.active {
		return
	}
	now := f.net.k.Now()
	f.account(now)
	f.active = false
	f.net.k.Metrics().Events().Emit(metrics.EvFluidStop, f.name,
		int64(f.offeredBytes), int64(f.deliveredBytes), 0)
	if f.span != nil {
		f.span.Int("offered_bytes", int64(f.offeredBytes))
		f.span.Int("delivered_bytes", int64(f.deliveredBytes))
		f.span.End()
		f.span = nil
	}
	f.net.refreshFluid()
}

// SetRate changes the offered rate; accounting is settled at the old
// rate first.
func (f *FluidFlow) SetRate(r units.BitRate) {
	if r < 0 {
		panic("netsim: negative fluid flow rate")
	}
	f.account(f.net.k.Now())
	f.rate = r
	if f.active {
		f.net.refreshFluid()
	}
}

// traceKey folds the flow 5-tuple into a stable 64-bit key for
// deterministic trace IDs.
func (f *FluidFlow) traceKey() uint64 {
	return uint64(f.key.Src)<<40 | uint64(f.key.Dst)<<24 |
		uint64(f.key.SrcPort)<<8 | uint64(f.key.DstPort)<<4 | uint64(f.key.Proto)
}

// FluidFlows returns the network's fluid flows in creation order.
func (n *Network) FluidFlows() []*FluidFlow { return n.fluidFlows }

// ifaceFluid is the per-interface fluid state: arrival rates and
// analytically integrated backlogs for the expedited and best-effort
// lanes of the egress queue.
type ifaceFluid struct {
	ifc *Iface

	// Queue shape, re-read at each solve.
	banded       bool
	eq           ExpeditedQueue
	efCap, beCap float64 // lane caps, bytes

	// Installed arrival rates, bytes/s.
	efIn, beIn float64
	// Analytic backlogs, bytes.
	efQ, beQ float64
	// chunk is the service quantum in bytes: the largest on-wire
	// packet size among contributing flows.
	chunk float64
	// last is the integration frontier.
	last time.Duration

	servedBytes float64
	lossBytes   float64

	// Solver pass accumulators.
	passEF, passBE float64
	prevEF, prevBE float64
	passChunk      float64

	// Transmitter arbitration: while waiting, a fluid-wait event is
	// pending for the head-of-line packet; granted lets that packet
	// transmit without re-waiting when the event fires. chained marks
	// a service-completion instant: the next head competes with fluid
	// at a band boundary, not mid-chunk.
	waiting   bool
	waitEF    bool
	granted   bool
	chained   bool
	waitTimer sim.Timer

	mLoss        *metrics.Counter
	lossCredited int64
}

// ensureFluid attaches fluid state to an interface the first time a
// flow's path crosses it.
func (n *Network) ensureFluid(ifc *Iface) *ifaceFluid {
	if ifc.fluid == nil {
		fl := &ifaceFluid{ifc: ifc, last: n.k.Now()}
		ifc.fluid = fl
		n.fluidIfaces = append(n.fluidIfaces, ifc)
		fl.attachMetrics()
	}
	return ifc.fluid
}

func (fl *ifaceFluid) attachMetrics() {
	reg := fl.ifc.node.net.k.Metrics()
	label := fl.ifc.label
	fl.mLoss = reg.Counter("netsim_fluid_loss_bytes_total",
		"fluid background bytes dropped at the egress queue", "iface", label)
	reg.GaugeFunc("netsim_fluid_backlog_bytes",
		"analytic fluid backlog queued for egress",
		func() float64 { return fl.efQ + fl.beQ }, "iface", label)
	reg.GaugeFunc("netsim_fluid_rate_bps",
		"fluid arrival rate installed at the egress",
		func() float64 { return 8 * (fl.efIn + fl.beIn) }, "iface", label)
}

// readShape re-reads the egress queue's band structure and caps.
// Called once per solver pass so queues configured after the first
// flow started are picked up.
func (fl *ifaceFluid) readShape() {
	switch q := fl.ifc.queue.(type) {
	case ExpeditedQueue:
		fl.banded = true
		fl.eq = q
		_, efc := q.BandOccupancy(true)
		_, bec := q.BandOccupancy(false)
		fl.efCap, fl.beCap = float64(efc), float64(bec)
	case *DropTail:
		fl.banded = false
		fl.eq = nil
		fl.efCap, fl.beCap = 0, float64(q.Cap())
	default:
		fl.banded = false
		fl.eq = nil
		fl.efCap, fl.beCap = 0, float64(DefaultQueueCap)
	}
}

func (fl *ifaceFluid) beginPass() {
	fl.prevEF, fl.prevBE = fl.passEF, fl.passBE
	fl.passEF, fl.passBE = 0, 0
	fl.passChunk = 0
	fl.readShape()
}

// expedited reports whether a component of code point d lands in the
// expedited lane at this interface.
func (fl *ifaceFluid) expedited(d DSCP) bool {
	return fl.banded && fl.eq.Expedited(d)
}

func (fl *ifaceFluid) addPass(c FluidComponent, chunk float64) {
	if fl.expedited(c.DSCP) {
		fl.passEF += c.Rate
	} else {
		fl.passBE += c.Rate
	}
	if chunk > fl.passChunk {
		fl.passChunk = chunk
	}
}

// prevShare returns the previous pass's service share for a component
// of code point d at this hop: the fraction of its arrival rate the
// link can carry onward given strict priority and the competing fluid
// aggregates. Foreground packet load is ignored here — it is a small,
// bursty fraction whose effect on *downstream* fluid rates is second
// order (the backlog integration still accounts for it locally).
func (fl *ifaceFluid) prevShare(d DSCP) float64 {
	if fl.ifc.link.down {
		return 0
	}
	c := float64(fl.ifc.link.rate) / 8
	if fl.expedited(d) {
		if fl.prevEF <= c {
			return 1
		}
		return c / fl.prevEF
	}
	cbe := c - math.Min(fl.prevEF, c)
	if fl.prevBE <= cbe {
		return 1
	}
	if cbe <= 0 {
		return 0
	}
	return cbe / fl.prevBE
}

const (
	// fluidMaxPasses bounds the fixed-point iteration of the rate
	// solver. Feed-forward paths converge in two passes; the extra
	// headroom covers chains of saturated hops.
	fluidMaxPasses = 4
	// fluidRateEps is the convergence threshold in bytes/s.
	fluidRateEps = 1e-6
)

// refreshFluid re-solves all fluid rates: it settles every interface's
// backlog integration and every flow's accounting at the old rates,
// then propagates each active flow's rate along its current path —
// applying fluid-aware ingress filters and attenuating by each hop's
// service share — iterating to a fixed point. Called on every rate
// change and topology transition.
func (n *Network) refreshFluid() {
	if len(n.fluidFlows) == 0 && len(n.fluidIfaces) == 0 {
		return
	}
	now := n.k.Now()
	for _, ifc := range n.fluidIfaces {
		ifc.fluid.sync(now)
	}
	for _, f := range n.fluidFlows {
		f.account(now)
	}
	for pass := 0; pass < fluidMaxPasses; pass++ {
		// Each pass is a fresh generation: shared policer budgets
		// reset, then flows consume them again in deterministic order.
		n.fluidGen++
		// fluidIfaces can grow while walking (first time a path
		// crosses an interface); the index loop picks new ones up.
		for i := 0; i < len(n.fluidIfaces); i++ {
			n.fluidIfaces[i].fluid.beginPass()
		}
		for _, f := range n.fluidFlows {
			n.walkFluid(f)
		}
		stable := true
		for _, ifc := range n.fluidIfaces {
			fl := ifc.fluid
			if math.Abs(fl.passEF-fl.prevEF) > fluidRateEps ||
				math.Abs(fl.passBE-fl.prevBE) > fluidRateEps {
				stable = false
				break
			}
		}
		if stable {
			break
		}
	}
	rec := n.k.Metrics().Events()
	for _, ifc := range n.fluidIfaces {
		fl := ifc.fluid
		fl.efIn, fl.beIn = fl.passEF, fl.passBE
		if fl.passChunk > 0 {
			fl.chunk = fl.passChunk
		}
	}
	for _, f := range n.fluidFlows {
		if f.active {
			rec.Emit(metrics.EvFluidRate, f.name,
				int64(f.rate), int64(8*f.deliveredBps), int64(f.hops))
		}
	}
}

// walkFluid propagates one flow's rate along its path for the current
// solver pass, accumulating per-interface lane rates.
func (n *Network) walkFluid(f *FluidFlow) {
	f.deliveredBps, f.hops = 0, 0
	if !f.active {
		return
	}
	comps := []FluidComponent{{Rate: float64(f.rate) / 8, DSCP: f.dscp}}
	node := f.src
	var in *Iface
	chunk := float64(f.chunk)
	for hop := 0; hop < len(n.nodes)+1; hop++ {
		if in != nil {
			comps = applyFluidFilters(n.fluidGen, in, f.key, comps)
			if len(comps) == 0 {
				return
			}
		}
		if node == f.dst {
			for _, c := range comps {
				f.deliveredBps += c.Rate
			}
			return
		}
		out := node.RouteTo(f.dst.addr)
		if out == nil {
			return
		}
		fl := n.ensureFluid(out)
		for _, c := range comps {
			fl.addPass(c, chunk)
		}
		f.hops++
		if out.link.down {
			// The flow's bytes die at the down link; nothing arrives
			// downstream until topology notification reroutes it.
			return
		}
		live := comps[:0]
		for _, c := range comps {
			c.Rate *= fl.prevShare(c.DSCP)
			if c.Rate > 0 {
				live = append(live, c)
			}
		}
		comps = live
		if len(comps) == 0 {
			return
		}
		in = out.peer()
		node = in.node
	}
}

// applyFluidFilters runs the interface's fluid-aware ingress filters
// over the flow's components.
func applyFluidFilters(gen uint64, in *Iface, key FlowKey, comps []FluidComponent) []FluidComponent {
	for _, flt := range in.ingress {
		ff, ok := flt.(FluidFilter)
		if !ok {
			continue
		}
		comps = ff.FilterFluid(gen, key, comps)
		if len(comps) == 0 {
			return comps
		}
	}
	return comps
}

// sync integrates the fluid backlogs forward to now. The interval
// since the previous sync is guaranteed to have constant drain state:
// every transition that changes it (packet tx start/end, link up/down,
// rate change) syncs first.
func (fl *ifaceFluid) sync(now time.Duration) {
	dt := (now - fl.last).Seconds()
	if dt <= 0 {
		return
	}
	fl.last = now
	if fl.efIn == 0 && fl.beIn == 0 && fl.efQ == 0 && fl.beQ == 0 {
		return
	}
	c := 0.0
	if !fl.ifc.link.down && !fl.ifc.transmitting {
		c = float64(fl.ifc.link.rate) / 8
	}
	// Expedited lane first: it owns the full service rate until its
	// backlog empties.
	tEF := 0.0 // time the EF lane stops consuming the full rate
	if fl.efQ > 0 {
		if net := fl.efIn - c; net < 0 {
			tEF = math.Min(dt, fl.efQ/-net)
		} else {
			tEF = dt
		}
	}
	served, lost := laneStep(&fl.efQ, fl.efIn, c, fl.efCap, dt)
	fl.servedBytes += served
	fl.lossBytes += lost
	// Best-effort lane: no service while the EF backlog drains, then
	// whatever the EF inflow leaves.
	if tEF > 0 {
		served, lost = laneStep(&fl.beQ, fl.beIn, 0, fl.beCap, tEF)
		fl.servedBytes += served
		fl.lossBytes += lost
	}
	if rest := dt - tEF; rest > 0 {
		served, lost = laneStep(&fl.beQ, fl.beIn, c-math.Min(fl.efIn, c), fl.beCap, rest)
		fl.servedBytes += served
		fl.lossBytes += lost
	}
	if d := int64(fl.lossBytes) - fl.lossCredited; d > 0 {
		fl.mLoss.Add(d)
		fl.lossCredited += d
	}
}

// laneStep advances one lane by dt seconds given a constant inflow,
// service rate, and backlog cap (all bytes/s resp. bytes). It returns
// the bytes the lane actually transmitted and the bytes lost to the
// cap.
func laneStep(q *float64, in, srv, capacity, dt float64) (served, lost float64) {
	net := in - srv
	if net <= 0 {
		if *q > 0 {
			tEmpty := dt
			if net < 0 {
				tEmpty = math.Min(dt, *q/-net)
			}
			if tEmpty >= dt {
				*q += net * dt
				if *q < 0 {
					*q = 0
				}
				return srv * dt, 0
			}
			*q = 0
			return srv*tEmpty + in*(dt-tEmpty), 0
		}
		return in * dt, 0
	}
	if *q >= capacity {
		*q = capacity
		return srv * dt, net * dt
	}
	tHit := (capacity - *q) / net
	if tHit >= dt {
		*q += net * dt
		return srv * dt, 0
	}
	*q = capacity
	return srv * dt, net * (dt - tHit)
}

// headWait returns the extra delay the head-of-line packet must spend
// behind fluid traffic before the transmitter may serialize it, and
// whether that head is in the expedited band. Call after sync.
//
// Two terms: the residual of the fluid chunk "on the wire" (half a
// chunk in expectation, scaled by fluid utilization when there is no
// backlog), and the fluid backlog that precedes the packet — only the
// expedited lane's backlog for an expedited head (strict priority),
// both lanes for a best-effort head (FIFO within the band, behind the
// expedited lane).
//
// chained marks a service-completion instant: the previous foreground
// packet just finished, so no fluid chunk can be mid-service and the
// residual term vanishes. This is what makes a queued burst of
// expedited packets transmit contiguously under strict priority, as
// it does packet-level — background interleaves only once per burst,
// when a packet arrives to an idle wire.
func (fl *ifaceFluid) headWait(chained bool) (time.Duration, bool) {
	c := float64(fl.ifc.link.rate) / 8
	if c <= 0 {
		return 0, false
	}
	efHead := false
	if fl.banded && fl.eq != nil {
		if b, _ := fl.eq.BandOccupancy(true); b > 0 {
			efHead = true
		}
	}
	ahead := fl.efQ + fl.beQ
	if efHead {
		ahead = fl.efQ
	}
	totalIn := fl.efIn + fl.beIn
	var resid float64
	if !chained {
		tau := fl.chunk / c
		if fl.efQ+fl.beQ > 0 {
			resid = tau / 2
		} else if totalIn > 0 {
			resid = math.Min(1, totalIn/c) * tau / 2
		}
	}
	w := resid + ahead/c
	if w <= 0 {
		return 0, efHead
	}
	return time.Duration(w * float64(time.Second)), efHead
}

// fluidSync settles the interface's fluid integration at the current
// time, if fluid is attached. Call before any transition that changes
// the drain state.
func (i *Iface) fluidSync() {
	if i.fluid != nil {
		i.fluid.sync(i.node.net.k.Now())
	}
}

// fluidAdmits applies the fluid share of the admission decision: a
// packet is rejected when the analytic fluid backlog plus the queued
// packet bytes in its band would overflow the band's capacity. This is
// the deterministic counterpart of the drop probability the fluid
// occupancy induces at a finite buffer.
func (i *Iface) fluidAdmits(p *Packet) bool {
	fl := i.fluid
	if fl == nil {
		return true
	}
	fl.sync(i.node.net.k.Now())
	if fl.expedited(p.DSCP) {
		b, _ := fl.eq.BandOccupancy(true)
		return fl.efQ+float64(b+p.Size) <= fl.efCap
	}
	if fl.banded && fl.eq != nil {
		b, _ := fl.eq.BandOccupancy(false)
		return fl.beQ+float64(b+p.Size) <= fl.beCap
	}
	return fl.beQ+float64(i.queue.Bytes()+p.Size) <= fl.beCap
}

// ifaceFluidWaitDone fires when the head-of-line packet's fluid wait
// elapses: the packet is granted the next transmission opportunity.
func ifaceFluidWaitDone(a0, _ any) {
	i := a0.(*Iface)
	fl := i.fluid
	fl.waiting = false
	fl.granted = true
	i.tryTransmit()
}

// FluidStats reports the interface's cumulative fluid counters.
func (i *Iface) FluidStats() FluidIfaceStats {
	fl := i.fluid
	if fl == nil {
		return FluidIfaceStats{}
	}
	fl.sync(i.node.net.k.Now())
	return FluidIfaceStats{
		Rate:        units.BitRate(8 * (fl.efIn + fl.beIn)),
		Backlog:     units.ByteSize(fl.efQ + fl.beQ),
		ServedBytes: units.ByteSize(fl.servedBytes),
		LossBytes:   units.ByteSize(fl.lossBytes),
	}
}

// FluidIfaceStats holds an interface's fluid counters.
type FluidIfaceStats struct {
	// Rate is the installed fluid arrival rate.
	Rate units.BitRate
	// Backlog is the current analytic fluid backlog.
	Backlog units.ByteSize
	// ServedBytes is the cumulative fluid bytes the link carried.
	ServedBytes units.ByteSize
	// LossBytes is the cumulative fluid bytes dropped at the queue.
	LossBytes units.ByteSize
}
