package netsim

import (
	"testing"
	"time"

	"mpichgq/internal/metrics"
	"mpichgq/internal/sim"
	"mpichgq/internal/units"
)

// countEvents returns how many flight-recorder events of type ty were
// emitted for subject.
func countEvents(k *sim.Kernel, ty metrics.EventType, subject string) int {
	n := 0
	for _, e := range k.Metrics().Events().Snapshot() {
		if e.Type == ty && e.Subject == subject {
			n++
		}
	}
	return n
}

func TestLinkDownLosesInFlightPacket(t *testing.T) {
	// At 10 Mb/s a 500-byte packet serializes in 400 µs. Cutting the
	// link 200 µs in catches it mid-frame: it must be lost and the
	// loss attributed to the transmitting direction only.
	k, n, a, b := twoNodes(10*units.Mbps, time.Millisecond)
	l := n.Links()[0]
	received := 0
	b.Handle(ProtoUDP, HandlerFunc(func(p *Packet) { received++ }))
	a.Send(&Packet{Src: a.Addr(), Dst: b.Addr(), Proto: ProtoUDP, Size: 500})
	k.After(200*time.Microsecond, func() { l.SetUp(false) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if received != 0 {
		t.Fatalf("received %d packets, want 0", received)
	}
	if got := l.A().Stats().DownDrops; got != 1 {
		t.Fatalf("A-side DownDrops = %d, want 1", got)
	}
	if got := l.B().Stats().DownDrops; got != 0 {
		t.Fatalf("B-side DownDrops = %d, want 0", got)
	}
	if l.DownDrops() != 1 {
		t.Fatalf("Link.DownDrops = %d, want 1", l.DownDrops())
	}
	// The loss must show up in the per-interface drop metric.
	reg := k.Metrics()
	if got, ok := reg.CounterValue("netsim_down_drops_total", "iface", l.A().String()); !ok || got != 1 {
		t.Fatalf("netsim_down_drops_total{%s} = %v (ok=%v), want 1", l.A(), got, ok)
	}
}

func TestSetUpEmitsEventsOncePerTransition(t *testing.T) {
	k, n, a, b := twoNodes(10*units.Mbps, time.Millisecond)
	l := n.Links()[0]
	_, _ = a, b
	k.After(time.Second, func() {
		l.SetUp(false)
		l.SetUp(false) // repeated call: no transition, no event
	})
	k.After(2*time.Second, func() {
		l.SetUp(true)
		l.SetUp(true)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got := countEvents(k, metrics.EvLinkDown, l.Name()); got != 1 {
		t.Fatalf("link.down events = %d, want 1", got)
	}
	if got := countEvents(k, metrics.EvLinkUp, l.Name()); got != 1 {
		t.Fatalf("link.up events = %d, want 1", got)
	}
}

func TestLinkDownEventRecordsQueueDepth(t *testing.T) {
	k, n, a, b := twoNodes(units.Mbps, time.Millisecond)
	l := n.Links()[0]
	b.Handle(ProtoUDP, HandlerFunc(func(p *Packet) {}))
	// 1000 bytes at 1 Mb/s = 8 ms per packet; queue three and cut the
	// link at 1 ms so one is in flight and two are still queued.
	for i := 0; i < 3; i++ {
		a.Send(&Packet{Src: a.Addr(), Dst: b.Addr(), Proto: ProtoUDP, Size: 1000})
	}
	k.After(time.Millisecond, func() { l.SetUp(false) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for _, e := range k.Metrics().Events().Snapshot() {
		if e.Type == metrics.EvLinkDown && e.Subject == l.Name() {
			if e.V1 != 2 || e.V2 != 0 {
				t.Fatalf("link.down queue depths = (%d,%d), want (2,0)", e.V1, e.V2)
			}
			return
		}
	}
	t.Fatal("no link.down event recorded")
}

// diamond builds src — r1 — dst with a parallel src — r2 — dst path.
// r1 is connected first, so BFS tie-breaking prefers it while both
// paths are healthy.
func diamond() (*sim.Kernel, *Network, *Node, *Node, *Node, *Node) {
	k := sim.New(1)
	n := New(k)
	src := n.AddNode("src")
	dst := n.AddNode("dst")
	r1 := n.AddNode("r1")
	r2 := n.AddNode("r2")
	n.Connect(src, r1, 10*units.Mbps, time.Millisecond)
	n.Connect(r1, dst, 10*units.Mbps, time.Millisecond)
	n.Connect(src, r2, units.Mbps, 5*time.Millisecond)
	n.Connect(r2, dst, units.Mbps, 5*time.Millisecond)
	n.ComputeRoutes()
	return k, n, src, dst, r1, r2
}

func TestComputeRoutesSkipsDownLinks(t *testing.T) {
	_, n, src, dst, r1, r2 := diamond()
	if via := src.RouteTo(dst.Addr()).Peer().Node(); via != r1 {
		t.Fatalf("healthy route via %s, want r1", via.Name())
	}
	n.Link("src-r1").SetUp(false)
	n.RecomputeRoutes()
	if via := src.RouteTo(dst.Addr()).Peer().Node(); via != r2 {
		t.Fatalf("post-failure route via %s, want r2", via.Name())
	}
	// Recovery: recompute returns to the preferred path.
	n.Link("src-r1").SetUp(true)
	n.RecomputeRoutes()
	if via := src.RouteTo(dst.Addr()).Peer().Node(); via != r1 {
		t.Fatalf("post-recovery route via %s, want r1", via.Name())
	}
}

func TestAutoRerouteFailsOver(t *testing.T) {
	k, n, src, dst, _, r2 := diamond()
	n.SetAutoReroute(true)
	received := 0
	dst.Handle(ProtoUDP, HandlerFunc(func(p *Packet) { received++ }))
	send := func() {
		src.Send(&Packet{Src: src.Addr(), Dst: dst.Addr(), Proto: ProtoUDP, Size: 500})
	}
	var topoNotified int
	n.OnTopologyChange(func() { topoNotified++ })
	send()
	k.After(time.Second, func() {
		n.Link("src-r1").SetUp(false)
		if via := src.RouteTo(dst.Addr()).Peer().Node(); via != r2 {
			t.Errorf("auto-reroute chose %s, want r2", via.Name())
		}
		send()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if received != 2 {
		t.Fatalf("received %d packets, want 2 (second via backup path)", received)
	}
	if topoNotified != 1 {
		t.Fatalf("topology observers notified %d times, want 1", topoNotified)
	}
}
