package netsim

import (
	"testing"
	"testing/quick"
	"time"

	"mpichgq/internal/sim"
	"mpichgq/internal/units"
)

// Property: on a random connected topology (random tree plus random
// extra edges), ComputeRoutes yields a route between every node pair,
// and packets actually arrive.
func TestComputeRoutesConnectivityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := sim.NewRNG(seed)
		k := sim.New(seed)
		net := New(k)
		n := 3 + rng.Intn(10)
		nodes := make([]*Node, n)
		for i := range nodes {
			nodes[i] = net.AddNode(nodeName(i))
		}
		// Random tree: node i connects to a random earlier node.
		for i := 1; i < n; i++ {
			net.Connect(nodes[i], nodes[rng.Intn(i)], 100*units.Mbps, time.Duration(rng.Intn(5)+1)*time.Millisecond)
		}
		// A few extra edges.
		for e := 0; e < rng.Intn(3); e++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a != b && !connected(nodes[a], nodes[b]) {
				net.Connect(nodes[a], nodes[b], 100*units.Mbps, time.Millisecond)
			}
		}
		net.ComputeRoutes()
		for _, a := range nodes {
			for _, b := range nodes {
				if a != b && a.RouteTo(b.Addr()) == nil {
					return false
				}
			}
		}
		// Deliver a packet along a random pair.
		src := nodes[rng.Intn(n)]
		dst := nodes[rng.Intn(n)]
		if src == dst {
			return true
		}
		got := false
		dst.Handle(ProtoUDP, HandlerFunc(func(p *Packet) { got = true }))
		src.Send(&Packet{Src: src.Addr(), Dst: dst.Addr(), Proto: ProtoUDP, Size: 100})
		if err := k.Run(); err != nil {
			return false
		}
		return got
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func connected(a, b *Node) bool {
	for _, ifc := range a.Ifaces() {
		if ifc.Peer() != nil && ifc.Peer().Node() == b {
			return true
		}
	}
	return false
}

func nodeName(i int) string {
	const digits = "0123456789"
	if i == 0 {
		return "n0"
	}
	s := ""
	for i > 0 {
		s = string(digits[i%10]) + s
		i /= 10
	}
	return "n" + s
}

// Property: total bytes received never exceed bytes sent on a lossy
// path (conservation).
func TestConservationUnderLossProperty(t *testing.T) {
	f := func(seed int64, lossPct uint8) bool {
		k := sim.New(seed)
		net := New(k)
		a, b := net.AddNode("a"), net.AddNode("b")
		net.Connect(a, b, 10*units.Mbps, time.Millisecond)
		net.ComputeRoutes()
		loss := float64(lossPct%60) / 100
		rng := sim.NewRNG(seed)
		b.Ifaces()[0].AddIngress(IngressFilterFunc(func(p *Packet) *Packet {
			if rng.Float64() < loss {
				return nil
			}
			return p
		}))
		var rx int64
		b.Handle(ProtoUDP, HandlerFunc(func(p *Packet) { rx += int64(p.Size) }))
		var tx int64
		for i := 0; i < 50; i++ {
			size := units.ByteSize(rng.Intn(1400) + 28)
			if a.Send(&Packet{Src: a.Addr(), Dst: b.Addr(), Proto: ProtoUDP, Size: size}) == nil {
				tx += int64(size)
			}
		}
		if err := k.Run(); err != nil {
			return false
		}
		return rx <= tx
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
