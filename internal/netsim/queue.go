package netsim

import "mpichgq/internal/units"

// Queue is an egress packet queue. Implementations decide admission
// (Enqueue may drop) and service order (Dequeue). The interface's
// transmitter calls Dequeue whenever the link goes idle.
type Queue interface {
	// Enqueue offers a packet; it reports false if the packet was
	// dropped (e.g. buffer full).
	Enqueue(p *Packet) bool
	// Dequeue removes and returns the next packet to transmit, or nil
	// if the queue is empty.
	Dequeue() *Packet
	// Len returns the number of queued packets.
	Len() int
	// Bytes returns the total queued bytes.
	Bytes() units.ByteSize
}

// DropTail is a FIFO queue with a byte-capacity limit; packets that
// would overflow the buffer are dropped on arrival. The backing store
// is a power-of-two ring buffer, so a steady enqueue/dequeue cycle
// performs no allocation once the ring has grown to the working set.
type DropTail struct {
	cap   units.ByteSize
	bytes units.ByteSize
	ring  []*Packet
	head  int
	n     int
}

// NewDropTail returns a drop-tail queue holding at most capBytes of
// packet data.
func NewDropTail(capBytes units.ByteSize) *DropTail {
	if capBytes <= 0 {
		panic("netsim: non-positive queue capacity")
	}
	return &DropTail{cap: capBytes}
}

// Enqueue implements Queue.
func (q *DropTail) Enqueue(p *Packet) bool {
	if q.bytes+p.Size > q.cap {
		return false
	}
	if q.n == len(q.ring) {
		q.grow()
	}
	q.ring[(q.head+q.n)&(len(q.ring)-1)] = p
	q.n++
	q.bytes += p.Size
	return true
}

// grow doubles the ring, unrolling the wrapped contents into order.
func (q *DropTail) grow() {
	size := 2 * len(q.ring)
	if size == 0 {
		size = 8
	}
	ring := make([]*Packet, size)
	for i := 0; i < q.n; i++ {
		ring[i] = q.ring[(q.head+i)&(len(q.ring)-1)]
	}
	q.ring = ring
	q.head = 0
}

// Dequeue implements Queue.
func (q *DropTail) Dequeue() *Packet {
	if q.n == 0 {
		return nil
	}
	p := q.ring[q.head]
	q.ring[q.head] = nil
	q.head = (q.head + 1) & (len(q.ring) - 1)
	q.n--
	q.bytes -= p.Size
	return p
}

// Len implements Queue.
func (q *DropTail) Len() int { return q.n }

// Bytes implements Queue.
func (q *DropTail) Bytes() units.ByteSize { return q.bytes }

// Cap returns the configured byte capacity.
func (q *DropTail) Cap() units.ByteSize { return q.cap }
