package netsim

import "mpichgq/internal/units"

// Queue is an egress packet queue. Implementations decide admission
// (Enqueue may drop) and service order (Dequeue). The interface's
// transmitter calls Dequeue whenever the link goes idle.
type Queue interface {
	// Enqueue offers a packet; it reports false if the packet was
	// dropped (e.g. buffer full).
	Enqueue(p *Packet) bool
	// Dequeue removes and returns the next packet to transmit, or nil
	// if the queue is empty.
	Dequeue() *Packet
	// Len returns the number of queued packets.
	Len() int
	// Bytes returns the total queued bytes.
	Bytes() units.ByteSize
}

// DropTail is a FIFO queue with a byte-capacity limit; packets that
// would overflow the buffer are dropped on arrival.
type DropTail struct {
	cap   units.ByteSize
	bytes units.ByteSize
	pkts  []*Packet
}

// NewDropTail returns a drop-tail queue holding at most capBytes of
// packet data.
func NewDropTail(capBytes units.ByteSize) *DropTail {
	if capBytes <= 0 {
		panic("netsim: non-positive queue capacity")
	}
	return &DropTail{cap: capBytes}
}

// Enqueue implements Queue.
func (q *DropTail) Enqueue(p *Packet) bool {
	if q.bytes+p.Size > q.cap {
		return false
	}
	q.pkts = append(q.pkts, p)
	q.bytes += p.Size
	return true
}

// Dequeue implements Queue.
func (q *DropTail) Dequeue() *Packet {
	if len(q.pkts) == 0 {
		return nil
	}
	p := q.pkts[0]
	q.pkts[0] = nil
	q.pkts = q.pkts[1:]
	q.bytes -= p.Size
	return p
}

// Len implements Queue.
func (q *DropTail) Len() int { return len(q.pkts) }

// Bytes implements Queue.
func (q *DropTail) Bytes() units.ByteSize { return q.bytes }

// Cap returns the configured byte capacity.
func (q *DropTail) Cap() units.ByteSize { return q.cap }
