package netsim

import (
	"errors"
	"fmt"

	"mpichgq/internal/metrics"
	"mpichgq/internal/sim"
)

// NoRouteError reports a packet addressed to a destination the
// sending (or transit) node has no route for.
type NoRouteError struct {
	// Node is the name of the node that had no route.
	Node string
	// Dst is the unreachable destination address.
	Dst Addr
}

func (e *NoRouteError) Error() string {
	return fmt.Sprintf("netsim: node %q has no route to addr %d", e.Node, e.Dst)
}

// ErrEgressDrop reports that the local egress queue rejected the
// packet. Transports treat it like any other loss.
var ErrEgressDrop = errors.New("netsim: egress queue dropped packet")

// Handler receives packets addressed to a node for one transport
// protocol. A TCP stack or UDP demultiplexer registers itself here.
type Handler interface {
	HandlePacket(p *Packet)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(p *Packet)

// HandlePacket calls f(p).
func (f HandlerFunc) HandlePacket(p *Packet) { f(p) }

// Node is a host or router. Hosts originate and sink packets through
// registered protocol handlers; routers forward packets between
// interfaces according to the routing table.
type Node struct {
	net      *Network
	name     string
	addr     Addr
	ifaces   []*Iface
	routes   map[Addr]*Iface
	handlers map[Proto]Handler
	udp      *UDPStack

	// Stats.
	rxPackets, txPackets uint64
	rxBytes, txBytes     int64
	noRouteDrops         uint64

	mNoRoute *metrics.Counter
	rec      *metrics.Recorder
}

// Name returns the node's name.
func (nd *Node) Name() string { return nd.name }

// Addr returns the node's address.
func (nd *Node) Addr() Addr { return nd.addr }

// Network returns the network the node belongs to.
func (nd *Node) Network() *Network { return nd.net }

// Ifaces returns the node's interfaces in creation order.
func (nd *Node) Ifaces() []*Iface { return nd.ifaces }

// Handle registers h as the receiver for packets of protocol proto
// addressed to this node. Registering a second handler for the same
// protocol panics.
func (nd *Node) Handle(proto Proto, h Handler) {
	if _, dup := nd.handlers[proto]; dup {
		panic(fmt.Sprintf("netsim: node %q already has a %v handler", nd.name, proto))
	}
	nd.handlers[proto] = h
}

// Send originates a packet from this node. The packet's Src must be
// the node's own address; ID and SentAt are stamped here. Send looks
// up the route and enqueues on the egress interface. It returns a
// *NoRouteError if there is no route, ErrEgressDrop if the egress
// queue rejected the packet, and nil on success.
func (nd *Node) Send(p *Packet) error {
	if p.Src != nd.addr {
		panic(fmt.Sprintf("netsim: node %q sending packet with src %d", nd.name, p.Src))
	}
	p.ID = nd.net.nextPacketID()
	p.SentAt = nd.net.k.Now()
	return nd.forward(p)
}

// forward routes p out of this node. Used both for locally originated
// packets and for transit traffic.
func (nd *Node) forward(p *Packet) error {
	if p.Dst == nd.addr {
		// Loopback: deliver locally without touching any link.
		nd.net.k.AfterPrioFunc(0, sim.PrioNet, nodeDeliverLocal, nd, p)
		return nil
	}
	out := nd.routes[p.Dst]
	if out == nil {
		nd.noRouteDrops++
		nd.mNoRoute.Inc()
		nd.rec.Emit(metrics.EvNoRoute, nd.name, int64(p.Dst), int64(p.Size), 0)
		err := &NoRouteError{Node: nd.name, Dst: p.Dst}
		nd.net.FreePacket(p)
		return err
	}
	nd.txPackets++
	nd.txBytes += int64(p.Size)
	if !out.enqueue(p) {
		return ErrEgressDrop
	}
	return nil
}

// nodeDeliverLocal is the prebound loopback-delivery callback.
func nodeDeliverLocal(a0, a1 any) { a0.(*Node).receive(nil, a1.(*Packet)) }

// receive is called when a packet arrives at one of the node's
// interfaces (after the interface's ingress filters have run). The
// packet's ownership passes to the protocol handler, which frees it
// once consumed; with no handler registered the node frees it here.
func (nd *Node) receive(in *Iface, p *Packet) {
	if p.Dst == nd.addr {
		nd.rxPackets++
		nd.rxBytes += int64(p.Size)
		if h := nd.handlers[p.Proto]; h != nil {
			h.HandlePacket(p)
		} else {
			nd.net.FreePacket(p)
		}
		return
	}
	// Transit: drop accounting happens inside forward.
	_ = nd.forward(p)
}

// SetRoute installs iface as the next hop toward dst. The interface
// must belong to this node.
func (nd *Node) SetRoute(dst Addr, out *Iface) {
	if out.node != nd {
		panic(fmt.Sprintf("netsim: route on node %q via foreign interface", nd.name))
	}
	nd.routes[dst] = out
}

// RouteTo returns the next-hop interface for dst, or nil.
func (nd *Node) RouteTo(dst Addr) *Iface { return nd.routes[dst] }

// Stats returns cumulative node-level counters.
func (nd *Node) Stats() NodeStats {
	return NodeStats{
		RxPackets:    nd.rxPackets,
		TxPackets:    nd.txPackets,
		RxBytes:      nd.rxBytes,
		TxBytes:      nd.txBytes,
		NoRouteDrops: nd.noRouteDrops,
	}
}

// NodeStats holds cumulative per-node counters.
type NodeStats struct {
	RxPackets    uint64
	TxPackets    uint64
	RxBytes      int64
	TxBytes      int64
	NoRouteDrops uint64
}

// ComputeRoutes fills every node's routing table with shortest-path
// (hop count) next hops via breadth-first search from each
// destination. Call after the topology is complete; safe to call again
// after changes.
func (n *Network) ComputeRoutes() {
	for _, dst := range n.nodes {
		// BFS outward from dst; for each reached node, record the
		// interface pointing one hop back toward dst.
		visited := map[*Node]bool{dst: true}
		queue := []*Node{dst}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for _, iface := range cur.ifaces {
				peer := iface.peer()
				if peer == nil || !iface.link.Up() || visited[peer.node] {
					continue
				}
				visited[peer.node] = true
				peer.node.routes[dst.addr] = peer
				queue = append(queue, peer.node)
			}
		}
	}
}
