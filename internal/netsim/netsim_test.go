package netsim

import (
	"errors"
	"testing"
	"time"

	"mpichgq/internal/metrics"
	"mpichgq/internal/sim"
	"mpichgq/internal/units"
)

// twoNodes builds A --- B at the given rate and delay.
func twoNodes(rate units.BitRate, delay time.Duration) (*sim.Kernel, *Network, *Node, *Node) {
	k := sim.New(1)
	n := New(k)
	a := n.AddNode("a")
	b := n.AddNode("b")
	n.Connect(a, b, rate, delay)
	n.ComputeRoutes()
	return k, n, a, b
}

func TestPacketDelivery(t *testing.T) {
	k, _, a, b := twoNodes(8*units.Mbps, 1*time.Millisecond)
	var got *Packet
	var at time.Duration
	b.Handle(ProtoUDP, HandlerFunc(func(p *Packet) {
		got = p
		at = k.Now()
	}))
	// 1000-byte payload => 1028 bytes on wire. At 8 Mb/s that is
	// 1.028 ms serialization + 1 ms propagation.
	a.Send(&Packet{
		Src: a.Addr(), Dst: b.Addr(), Proto: ProtoUDP,
		Size: 1028, PayloadLen: 1000,
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got == nil {
		t.Fatal("packet not delivered")
	}
	want := 1028*time.Microsecond + time.Millisecond
	if at != want {
		t.Fatalf("delivered at %v, want %v", at, want)
	}
}

func TestSerializationSequencing(t *testing.T) {
	// Two packets sent back to back must be spaced by serialization
	// time, not delivered together.
	k, _, a, b := twoNodes(8*units.Mbps, 0)
	var arrivals []time.Duration
	b.Handle(ProtoUDP, HandlerFunc(func(p *Packet) {
		arrivals = append(arrivals, k.Now())
	}))
	for i := 0; i < 2; i++ {
		a.Send(&Packet{Src: a.Addr(), Dst: b.Addr(), Proto: ProtoUDP, Size: 1000})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(arrivals) != 2 {
		t.Fatalf("got %d arrivals, want 2", len(arrivals))
	}
	if arrivals[1]-arrivals[0] != time.Millisecond {
		t.Fatalf("spacing = %v, want 1ms", arrivals[1]-arrivals[0])
	}
}

func TestMultiHopForwarding(t *testing.T) {
	k := sim.New(1)
	n := New(k)
	a := n.AddNode("a")
	r := n.AddNode("r")
	b := n.AddNode("b")
	n.Connect(a, r, 10*units.Mbps, time.Millisecond)
	n.Connect(r, b, 10*units.Mbps, time.Millisecond)
	n.ComputeRoutes()
	delivered := false
	b.Handle(ProtoUDP, HandlerFunc(func(p *Packet) { delivered = true }))
	a.Send(&Packet{Src: a.Addr(), Dst: b.Addr(), Proto: ProtoUDP, Size: 500})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !delivered {
		t.Fatal("packet not forwarded across router")
	}
	if r.Stats().TxPackets != 1 {
		t.Fatalf("router forwarded %d packets, want 1", r.Stats().TxPackets)
	}
}

func TestShortestPathRouting(t *testing.T) {
	// Diamond: a-r1-b and a-r2-r3-b; traffic must take the short arm.
	k := sim.New(1)
	n := New(k)
	a, r1, r2, r3, b := n.AddNode("a"), n.AddNode("r1"), n.AddNode("r2"), n.AddNode("r3"), n.AddNode("b")
	n.Connect(a, r1, 10*units.Mbps, time.Millisecond)
	n.Connect(r1, b, 10*units.Mbps, time.Millisecond)
	n.Connect(a, r2, 10*units.Mbps, time.Millisecond)
	n.Connect(r2, r3, 10*units.Mbps, time.Millisecond)
	n.Connect(r3, b, 10*units.Mbps, time.Millisecond)
	n.ComputeRoutes()
	b.Handle(ProtoUDP, HandlerFunc(func(p *Packet) {}))
	a.Send(&Packet{Src: a.Addr(), Dst: b.Addr(), Proto: ProtoUDP, Size: 500})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if r1.Stats().TxPackets != 1 {
		t.Fatalf("short path carried %d packets, want 1", r1.Stats().TxPackets)
	}
	if r2.Stats().TxPackets != 0 || r3.Stats().TxPackets != 0 {
		t.Fatal("long path carried traffic")
	}
}

func TestNoRouteDrop(t *testing.T) {
	k := sim.New(1)
	n := New(k)
	a := n.AddNode("a")
	n.AddNode("island") // unconnected
	b := n.AddNode("b")
	n.Connect(a, b, 10*units.Mbps, 0)
	n.ComputeRoutes()
	island := n.Node("island")
	err := a.Send(&Packet{Src: a.Addr(), Dst: island.Addr(), Proto: ProtoUDP, Size: 100})
	var noRoute *NoRouteError
	if !errors.As(err, &noRoute) {
		t.Fatalf("send to unreachable node: err = %v, want *NoRouteError", err)
	}
	if noRoute.Node != "a" || noRoute.Dst != island.Addr() {
		t.Fatalf("NoRouteError = %+v", noRoute)
	}
	if a.Stats().NoRouteDrops != 1 {
		t.Fatalf("NoRouteDrops = %d, want 1", a.Stats().NoRouteDrops)
	}
	if v, ok := k.Metrics().CounterValue("netsim_no_route_drops_total", "node", "a"); !ok || v != 1 {
		t.Fatalf("no-route counter = %d, %v", v, ok)
	}
	evs := k.Metrics().Events().Snapshot()
	found := false
	for _, e := range evs {
		if e.Type == metrics.EvNoRoute && e.Subject == "a" && e.V1 == int64(island.Addr()) {
			found = true
		}
	}
	if !found {
		t.Fatalf("no EvNoRoute event in %+v", evs)
	}
}

func TestDropTailOverflow(t *testing.T) {
	q := NewDropTail(2500)
	p := func(size units.ByteSize) *Packet { return &Packet{Size: size} }
	if !q.Enqueue(p(1000)) || !q.Enqueue(p(1000)) {
		t.Fatal("first two packets should fit")
	}
	if q.Enqueue(p(1000)) {
		t.Fatal("third packet should be dropped")
	}
	if !q.Enqueue(p(500)) {
		t.Fatal("small packet should still fit")
	}
	if q.Len() != 3 || q.Bytes() != 2500 {
		t.Fatalf("len=%d bytes=%d, want 3/2500", q.Len(), q.Bytes())
	}
	if got := q.Dequeue(); got.Size != 1000 {
		t.Fatalf("FIFO violated: got %d", got.Size)
	}
}

func TestDropTailEmptyDequeue(t *testing.T) {
	q := NewDropTail(1000)
	if q.Dequeue() != nil {
		t.Fatal("empty dequeue should return nil")
	}
}

func TestEgressQueueDropUnderOverload(t *testing.T) {
	// Blast a slow link: most packets must be dropped at the egress
	// queue, and OnEgressDrop must fire.
	k, _, a, b := twoNodes(1*units.Mbps, 0)
	drops := 0
	a.Ifaces()[0].OnEgressDrop = func(p *Packet) { drops++ }
	received := 0
	b.Handle(ProtoUDP, HandlerFunc(func(p *Packet) { received++ }))
	for i := 0; i < 200; i++ {
		a.Send(&Packet{Src: a.Addr(), Dst: b.Addr(), Proto: ProtoUDP, Size: 1500})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if drops == 0 {
		t.Fatal("expected egress drops under overload")
	}
	if received+drops != 200 {
		t.Fatalf("received %d + dropped %d != 200", received, drops)
	}
	if a.Ifaces()[0].Stats().EgressDrops != uint64(drops) {
		t.Fatal("drop counter mismatch")
	}
}

func TestIngressFilterDropAndRemark(t *testing.T) {
	k, _, a, b := twoNodes(10*units.Mbps, 0)
	// Filter on b's interface: drop odd-size packets, remark the rest
	// to EF.
	bIface := b.Ifaces()[0]
	bIface.AddIngress(IngressFilterFunc(func(p *Packet) *Packet {
		if p.Size%2 == 1 {
			return nil
		}
		p.DSCP = DSCPEF
		return p
	}))
	var got []*Packet
	b.Handle(ProtoUDP, HandlerFunc(func(p *Packet) { got = append(got, p) }))
	a.Send(&Packet{Src: a.Addr(), Dst: b.Addr(), Proto: ProtoUDP, Size: 100})
	a.Send(&Packet{Src: a.Addr(), Dst: b.Addr(), Proto: ProtoUDP, Size: 101})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("got %d packets, want 1", len(got))
	}
	if got[0].DSCP != DSCPEF {
		t.Fatal("filter did not remark packet")
	}
	if bIface.Stats().IngressDrops != 1 {
		t.Fatalf("IngressDrops = %d, want 1", bIface.Stats().IngressDrops)
	}
}

func TestDuplicateNodeNamePanics(t *testing.T) {
	k := sim.New(1)
	n := New(k)
	n.AddNode("x")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	n.AddNode("x")
}

func TestLinkIfaceOn(t *testing.T) {
	_, n, a, b := twoNodes(units.Mbps, 0)
	l := n.Links()[0]
	if l.IfaceOn(a) != a.Ifaces()[0] || l.IfaceOn(b) != b.Ifaces()[0] {
		t.Fatal("IfaceOn returned wrong interface")
	}
	c := n.AddNode("c")
	if l.IfaceOn(c) != nil {
		t.Fatal("IfaceOn for foreign node should be nil")
	}
}

func TestFlowKeyReverse(t *testing.T) {
	k := FlowKey{Src: 1, Dst: 2, SrcPort: 10, DstPort: 20, Proto: ProtoTCP}
	r := k.Reverse()
	if r.Src != 2 || r.Dst != 1 || r.SrcPort != 20 || r.DstPort != 10 {
		t.Fatalf("Reverse = %+v", r)
	}
	if r.Reverse() != k {
		t.Fatal("double reverse should round-trip")
	}
}

func TestLoopbackDelivery(t *testing.T) {
	k, _, a, _ := twoNodes(units.Mbps, time.Millisecond)
	got := false
	a.Handle(ProtoUDP, HandlerFunc(func(p *Packet) { got = true }))
	if err := a.Send(&Packet{Src: a.Addr(), Dst: a.Addr(), Proto: ProtoUDP, Size: 100}); err != nil {
		t.Fatalf("loopback send failed: %v", err)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Fatal("loopback packet not delivered")
	}
	// Loopback must not touch the link.
	if a.Ifaces()[0].Stats().TxPackets != 0 {
		t.Fatal("loopback used the link")
	}
}

func TestLinkDownPausesTransmit(t *testing.T) {
	k, n, a, b := twoNodes(10*units.Mbps, time.Millisecond)
	l := n.Links()[0]
	received := 0
	b.Handle(ProtoUDP, HandlerFunc(func(p *Packet) { received++ }))
	send := func() {
		a.Send(&Packet{Src: a.Addr(), Dst: b.Addr(), Proto: ProtoUDP, Size: 500})
	}
	send()
	var queuedAtOutage int
	k.After(time.Second, func() {
		l.SetUp(false)
		if l.Up() {
			t.Error("link should be down")
		}
		send() // queued, not lost: transmitter is paused
		queuedAtOutage = a.Ifaces()[0].Stats().QueueLen
	})
	k.After(2*time.Second, func() { l.SetUp(true); send() })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if queuedAtOutage != 1 {
		t.Fatalf("queued during outage = %d, want 1", queuedAtOutage)
	}
	if received != 3 {
		t.Fatalf("received %d packets, want 3 (queued packet resumes on SetUp)", received)
	}
	if l.DownDrops() != 0 {
		t.Fatalf("DownDrops = %d, want 0 (no packet was mid-frame at the transition)", l.DownDrops())
	}
}
