package netsim

import (
	"errors"
	"fmt"

	"mpichgq/internal/sim"
	"mpichgq/internal/units"
)

// Datagram is a received UDP message.
type Datagram struct {
	From     Addr
	FromPort Port
	Len      units.ByteSize
	DSCP     DSCP
	Payload  any
}

// UDPStack demultiplexes UDP packets to sockets on one node.
type UDPStack struct {
	node     *Node
	sockets  map[Port]*UDPSocket
	nextPort Port

	rxDrops uint64 // datagrams for ports with no socket
}

// NewUDPStack creates the UDP stack for node nd and registers it as
// the node's UDP handler.
func NewUDPStack(nd *Node) *UDPStack {
	s := &UDPStack{node: nd, sockets: make(map[Port]*UDPSocket), nextPort: 30000}
	nd.Handle(ProtoUDP, s)
	nd.udp = s
	return s
}

// UDPStack returns the node's UDP stack, creating and registering it
// on first use.
func (nd *Node) UDPStack() *UDPStack {
	if nd.udp == nil {
		NewUDPStack(nd)
	}
	return nd.udp
}

// HandlePacket implements Handler.
func (s *UDPStack) HandlePacket(p *Packet) {
	sock := s.sockets[p.DstPort]
	if sock == nil || sock.closed {
		s.rxDrops++
		s.node.net.FreePacket(p)
		return
	}
	sock.inbox.Send(&Datagram{
		From:     p.Src,
		FromPort: p.SrcPort,
		Len:      p.PayloadLen,
		DSCP:     p.DSCP,
		Payload:  p.Payload,
	})
	s.node.net.FreePacket(p)
}

// Bind opens a socket on the given port; port 0 picks an ephemeral
// port.
func (s *UDPStack) Bind(port Port) (*UDPSocket, error) {
	if port == 0 {
		for s.sockets[s.nextPort] != nil {
			s.nextPort++
		}
		port = s.nextPort
		s.nextPort++
	} else if s.sockets[port] != nil {
		return nil, fmt.Errorf("netsim: udp port %d on %q in use", port, s.node.name)
	}
	sock := &UDPSocket{
		stack: s,
		port:  port,
		inbox: sim.NewMailbox(s.node.net.k),
	}
	s.sockets[port] = sock
	return sock, nil
}

// Node returns the node the stack runs on.
func (s *UDPStack) Node() *Node { return s.node }

// RxDrops returns the number of datagrams dropped for lack of a bound
// socket.
func (s *UDPStack) RxDrops() uint64 { return s.rxDrops }

// ErrClosed is returned by operations on a closed socket.
var ErrClosed = errors.New("netsim: socket closed")

// UDPSocket is a bound UDP endpoint.
type UDPSocket struct {
	stack  *UDPStack
	port   Port
	inbox  *sim.Mailbox
	dscp   DSCP
	closed bool

	txDatagrams uint64
	txBytes     int64
}

// Port returns the bound local port.
func (u *UDPSocket) Port() Port { return u.port }

// SetDSCP sets the DS code point stamped on outgoing datagrams.
// (Applications normally leave this at best-effort and let the edge
// router classify and mark; setting it directly models a
// "pre-marking" host.)
func (u *UDPSocket) SetDSCP(d DSCP) { u.dscp = d }

// SendTo transmits a datagram of payloadLen bytes to (dst, dstPort).
// It reports false if the datagram was dropped before leaving the
// node — like real UDP, later drops are silent. A local egress-queue
// drop is ordinary loss (false, nil); an unroutable destination also
// surfaces the *NoRouteError, like a host ENETUNREACH. payload rides
// along for the receiver and may be nil.
func (u *UDPSocket) SendTo(dst Addr, dstPort Port, payloadLen units.ByteSize, payload any) (bool, error) {
	if u.closed {
		return false, ErrClosed
	}
	if payloadLen < 0 {
		return false, fmt.Errorf("netsim: negative datagram length %d", payloadLen)
	}
	p := u.stack.node.net.AllocPacket()
	p.Src = u.stack.node.addr
	p.Dst = dst
	p.SrcPort = u.port
	p.DstPort = dstPort
	p.Proto = ProtoUDP
	p.DSCP = u.dscp
	p.Size = payloadLen + UDPHeader + IPHeader
	p.PayloadLen = payloadLen
	p.Payload = payload
	err := u.stack.node.Send(p)
	var noRoute *NoRouteError
	if errors.As(err, &noRoute) {
		return false, noRoute
	}
	if err != nil {
		return false, nil // egress drop: silent loss, as on the wire
	}
	u.txDatagrams++
	u.txBytes += int64(payloadLen)
	return true, nil
}

// Recv blocks until a datagram arrives or the socket is closed.
func (u *UDPSocket) Recv(ctx *sim.Ctx) (*Datagram, error) {
	v, ok := u.inbox.Recv(ctx)
	if !ok {
		return nil, ErrClosed
	}
	return v.(*Datagram), nil
}

// TryRecv returns a queued datagram without blocking.
func (u *UDPSocket) TryRecv() (*Datagram, bool) {
	v, ok := u.inbox.TryRecv()
	if !ok {
		return nil, false
	}
	return v.(*Datagram), true
}

// Pending returns the number of queued datagrams.
func (u *UDPSocket) Pending() int { return u.inbox.Len() }

// Close releases the port and wakes blocked receivers.
func (u *UDPSocket) Close() {
	if u.closed {
		return
	}
	u.closed = true
	delete(u.stack.sockets, u.port)
	u.inbox.Close()
}

// TxStats returns the count and total payload bytes of datagrams
// accepted by the local node.
func (u *UDPSocket) TxStats() (datagrams uint64, bytes int64) {
	return u.txDatagrams, u.txBytes
}
