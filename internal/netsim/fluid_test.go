package netsim

import (
	"testing"
	"time"

	"mpichgq/internal/sim"
	"mpichgq/internal/units"
)

// threeNodes builds A --- B --- C at the given per-link rates.
func threeNodes(r1, r2 units.BitRate) (*sim.Kernel, *Network, *Node, *Node, *Node) {
	k := sim.New(1)
	n := New(k)
	a := n.AddNode("a")
	b := n.AddNode("b")
	c := n.AddNode("c")
	n.Connect(a, b, r1, time.Millisecond)
	n.Connect(b, c, r2, time.Millisecond)
	n.ComputeRoutes()
	return k, n, a, b, c
}

func TestFluidFlowDeliversOfferedRateBelowCapacity(t *testing.T) {
	k, n, a, _, c := threeNodes(10*units.Mbps, 10*units.Mbps)
	f := n.NewFluidFlow("bg", a, c, 9000, 4*units.Mbps, 1000)
	f.Start()
	if err := k.RunUntil(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got, want := f.DeliveredRate(), 4*units.Mbps; got != want {
		t.Fatalf("delivered rate %v, want %v", got, want)
	}
	// 4 Mb/s for 10 s = 5 MB offered and delivered (no loss anywhere).
	wantBytes := units.ByteSize(4_000_000 * 10 / 8)
	if got := f.DeliveredBytes(); got < wantBytes-1 || got > wantBytes+1 {
		t.Fatalf("delivered %v bytes, want ~%v", got, wantBytes)
	}
	st := a.Ifaces()[0].FluidStats()
	if st.LossBytes != 0 {
		t.Fatalf("unexpected fluid loss %v at first hop", st.LossBytes)
	}
}

func TestFluidFlowAttenuatedAtSlowLink(t *testing.T) {
	// 10 Mb/s access feeding a 2 Mb/s second hop: the backlog at b
	// fills its finite buffer, then 8 Mb/s of fluid is lost there and
	// 2 Mb/s arrives at c.
	k, n, a, b, c := threeNodes(10*units.Mbps, 2*units.Mbps)
	f := n.NewFluidFlow("bg", a, c, 9000, 10*units.Mbps, 1000)
	f.Start()
	if err := k.RunUntil(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got, want := f.DeliveredRate(), 2*units.Mbps; got != want {
		t.Fatalf("delivered rate %v, want %v", got, want)
	}
	var bIface *Iface
	for _, ifc := range b.Ifaces() {
		if ifc.Link().Rate() == 2*units.Mbps {
			bIface = ifc
		}
	}
	st := bIface.FluidStats()
	if st.Backlog != DefaultQueueCap {
		t.Fatalf("bottleneck fluid backlog %v, want full buffer %v", st.Backlog, DefaultQueueCap)
	}
	// After the buffer fills (~0.1 s), losses accrue at 8 Mb/s = 1 MB/s.
	if st.LossBytes < 15*units.MB {
		t.Fatalf("bottleneck fluid loss %v, want >= 15 MB over ~19.9 s", st.LossBytes)
	}
}

func TestFluidBackgroundDelaysForegroundPacket(t *testing.T) {
	// A packet crossing a hop with saturated fluid must wait for the
	// fluid backlog ahead of it; with no fluid it sails through.
	deliver := func(fluid bool) time.Duration {
		k, n, a, b := twoNodes(10*units.Mbps, 0)
		var at time.Duration
		b.Handle(ProtoUDP, HandlerFunc(func(p *Packet) { at = k.Now() }))
		if fluid {
			f := n.NewFluidFlow("bg", a, b, 9000, 8*units.Mbps, 1000)
			f.Start()
			// Let fluid backlog build behind a half-full buffer.
			if err := k.RunUntil(time.Second); err != nil {
				t.Fatal(err)
			}
		} else {
			if err := k.RunUntil(time.Second); err != nil {
				t.Fatal(err)
			}
		}
		a.Send(&Packet{Src: a.Addr(), Dst: b.Addr(), Proto: ProtoUDP, Size: 1028})
		if err := k.RunUntil(10 * time.Second); err != nil {
			t.Fatal(err)
		}
		_ = n
		return at
	}
	clean := deliver(false)
	contended := deliver(true)
	if contended <= clean {
		t.Fatalf("fluid-contended delivery %v not later than clean %v", contended, clean)
	}
	// 8 Mb/s offered over a 10 Mb/s link leaves no standing backlog,
	// so the wait is the expectation residual (u*tau/2), well under a
	// full buffer drain.
	if contended-clean > 100*time.Millisecond {
		t.Fatalf("fluid wait %v implausibly large", contended-clean)
	}
}

func TestFluidBacklogRejectsForegroundPacket(t *testing.T) {
	// With the fluid backlog pinned at the buffer cap, a best-effort
	// foreground packet must be rejected at enqueue (the fluid-share
	// drop), not queued behind an eternity of fluid.
	k, n, a, b := twoNodes(2*units.Mbps, 0)
	f := n.NewFluidFlow("bg", a, b, 9000, 10*units.Mbps, 1000)
	f.Start()
	if err := k.RunUntil(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	err := a.Send(&Packet{Src: a.Addr(), Dst: b.Addr(), Proto: ProtoUDP, Size: 1028})
	if err != ErrEgressDrop {
		t.Fatalf("send with saturated fluid: err=%v, want ErrEgressDrop", err)
	}
	if st := a.Ifaces()[0].Stats(); st.EgressDrops != 1 {
		t.Fatalf("egress drops = %d, want 1", st.EgressDrops)
	}
}

func TestFluidStopsAtDownLinkAndReroutes(t *testing.T) {
	// a→b→c with a backup a→d→c path: taking b-c down must zero the
	// delivered rate under static routing, and auto-reroute must
	// restore it over the backup.
	k := sim.New(1)
	n := New(k)
	a := n.AddNode("a")
	b := n.AddNode("b")
	c := n.AddNode("c")
	d := n.AddNode("d")
	n.Connect(a, b, 10*units.Mbps, time.Millisecond)
	lbc := n.Connect(b, c, 10*units.Mbps, time.Millisecond)
	n.Connect(a, d, 10*units.Mbps, 5*time.Millisecond)
	n.Connect(d, c, 10*units.Mbps, 5*time.Millisecond)
	n.ComputeRoutes()
	n.SetAutoReroute(true)

	f := n.NewFluidFlow("bg", a, c, 9000, 4*units.Mbps, 1000)
	f.Start()
	if err := k.RunUntil(time.Second); err != nil {
		t.Fatal(err)
	}
	if got := f.DeliveredRate(); got != 4*units.Mbps {
		t.Fatalf("pre-fault delivered %v, want 4 Mb/s", got)
	}
	lbc.SetUp(false)
	if got := f.DeliveredRate(); got != 4*units.Mbps {
		t.Fatalf("post-fault delivered %v, want 4 Mb/s via backup", got)
	}
	before := f.DeliveredBytes()
	if err := k.RunUntil(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got := f.DeliveredBytes() - before; got < units.ByteSize(4_000_000/8)-1 {
		t.Fatalf("delivered only %v bytes over the backup second", got)
	}
	// The backup path's interfaces carry the rate now.
	var ad *Iface
	for _, ifc := range a.Ifaces() {
		if ifc.Peer().Node() == d {
			ad = ifc
		}
	}
	if st := ad.FluidStats(); st.Rate != 4*units.Mbps {
		t.Fatalf("backup egress fluid rate %v, want 4 Mb/s", st.Rate)
	}
}

func TestFluidRateChangeEventsOnly(t *testing.T) {
	// Steady fluid must cost zero kernel events: after start, a pure
	// fluid network runs out of events immediately.
	k, n, a, _, c := threeNodes(10*units.Mbps, 10*units.Mbps)
	f := n.NewFluidFlow("bg", a, c, 9000, 4*units.Mbps, 1000)
	k.AfterPrioFunc(0, sim.PrioNet, func(a0, _ any) { a0.(*FluidFlow).Start() }, f, nil)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got := k.EventsRun(); got != 1 {
		t.Fatalf("steady fluid ran %d events, want exactly the start event", got)
	}
	if k.Now() != 0 {
		t.Fatalf("kernel advanced to %v on pure fluid", k.Now())
	}
}
