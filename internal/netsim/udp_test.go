package netsim

import (
	"testing"
	"time"

	"mpichgq/internal/sim"
	"mpichgq/internal/units"
)

func TestUDPSendRecv(t *testing.T) {
	k, _, a, b := twoNodes(10*units.Mbps, time.Millisecond)
	sa := NewUDPStack(a)
	sb := NewUDPStack(b)
	src, err := sa.Bind(0)
	if err != nil {
		t.Fatal(err)
	}
	dst, err := sb.Bind(5000)
	if err != nil {
		t.Fatal(err)
	}
	var got *Datagram
	k.Spawn("recv", func(ctx *sim.Ctx) {
		d, err := dst.Recv(ctx)
		if err != nil {
			t.Error(err)
			return
		}
		got = d
	})
	k.Spawn("send", func(ctx *sim.Ctx) {
		ok, err := src.SendTo(b.Addr(), 5000, 1200, "hello")
		if err != nil || !ok {
			t.Errorf("SendTo: ok=%v err=%v", ok, err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got == nil {
		t.Fatal("no datagram received")
	}
	if got.Len != 1200 || got.Payload.(string) != "hello" || got.From != a.Addr() || got.FromPort != src.Port() {
		t.Fatalf("datagram = %+v", got)
	}
}

func TestUDPPortInUse(t *testing.T) {
	_, _, a, _ := twoNodes(units.Mbps, 0)
	s := NewUDPStack(a)
	if _, err := s.Bind(7); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Bind(7); err == nil {
		t.Fatal("expected port-in-use error")
	}
}

func TestUDPEphemeralPortsDistinct(t *testing.T) {
	_, _, a, _ := twoNodes(units.Mbps, 0)
	s := NewUDPStack(a)
	seen := map[Port]bool{}
	for i := 0; i < 10; i++ {
		sock, err := s.Bind(0)
		if err != nil {
			t.Fatal(err)
		}
		if seen[sock.Port()] {
			t.Fatalf("ephemeral port %d reused", sock.Port())
		}
		seen[sock.Port()] = true
	}
}

func TestUDPNoSocketDrop(t *testing.T) {
	k, _, a, b := twoNodes(units.Mbps, 0)
	sa := NewUDPStack(a)
	sb := NewUDPStack(b)
	src, _ := sa.Bind(0)
	src.SendTo(b.Addr(), 9999, 100, nil)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if sb.RxDrops() != 1 {
		t.Fatalf("RxDrops = %d, want 1", sb.RxDrops())
	}
}

func TestUDPClose(t *testing.T) {
	k, _, a, b := twoNodes(units.Mbps, 0)
	sa := NewUDPStack(a)
	NewUDPStack(b)
	sock, _ := sa.Bind(100)
	recvErr := error(nil)
	k.Spawn("recv", func(ctx *sim.Ctx) {
		_, recvErr = sock.Recv(ctx)
	})
	k.After(time.Second, func() { sock.Close() })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if recvErr != ErrClosed {
		t.Fatalf("recv error = %v, want ErrClosed", recvErr)
	}
	if _, err := sock.SendTo(b.Addr(), 1, 10, nil); err != ErrClosed {
		t.Fatalf("send after close = %v, want ErrClosed", err)
	}
	// Port is free again.
	if _, err := sa.Bind(100); err != nil {
		t.Fatalf("rebind after close failed: %v", err)
	}
}

func TestUDPTryRecvAndPending(t *testing.T) {
	k, _, a, b := twoNodes(10*units.Mbps, 0)
	sa := NewUDPStack(a)
	sb := NewUDPStack(b)
	src, _ := sa.Bind(0)
	dst, _ := sb.Bind(300)
	for i := 0; i < 3; i++ {
		src.SendTo(b.Addr(), 300, 100, i)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if dst.Pending() != 3 {
		t.Fatalf("pending = %d, want 3", dst.Pending())
	}
	d, ok := dst.TryRecv()
	if !ok || d.Payload.(int) != 0 {
		t.Fatalf("TryRecv = %+v/%v", d, ok)
	}
}

func TestUDPTxStats(t *testing.T) {
	k, _, a, b := twoNodes(10*units.Mbps, 0)
	sa := NewUDPStack(a)
	NewUDPStack(b)
	src, _ := sa.Bind(0)
	src.SendTo(b.Addr(), 1, 400, nil)
	src.SendTo(b.Addr(), 1, 600, nil)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	n, bytes := src.TxStats()
	if n != 2 || bytes != 1000 {
		t.Fatalf("TxStats = %d/%d, want 2/1000", n, bytes)
	}
}
