// Package metrics is the observability layer shared by every
// simulated subsystem: a registry of counters, gauges, and
// fixed-bucket histograms with cheap label support, plus a
// ring-buffer flight recorder of structured events timestamped with
// sim-kernel time (see recorder.go).
//
// Handles are resolved once at setup time (Registry.Counter et al.
// deduplicate by name + label set, so two subsystems asking for the
// same series share one handle) and the update paths — Counter.Inc,
// Gauge.Set, Histogram.Observe, Recorder.Emit — are allocation-free,
// making them safe to call per packet or per segment inside the
// simulator's hot loops.
//
// The package depends only on the standard library and holds no
// global state: each sim kernel owns its own Registry.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Kind discriminates the metric types held by a Registry.
type Kind uint8

// Metric kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindGaugeFunc
	KindHistogram
)

// String returns the Prometheus TYPE keyword for the kind.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge, KindGaugeFunc:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// Counter is a monotonically increasing integer metric. All methods
// are safe for concurrent use and allocation-free.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative; negative deltas are ignored so
// a counter can never run backwards).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous float64 metric. All methods are safe for
// concurrent use and allocation-free.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(floatBits(v)) }

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, floatBits(bitsFloat(old)+delta)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return bitsFloat(g.bits.Load()) }

func floatBits(v float64) uint64 { return math.Float64bits(v) }
func bitsFloat(b uint64) float64 { return math.Float64frombits(b) }

// Histogram is a fixed-bucket distribution metric. Observations are
// mutex-guarded (a single uncontended lock, no allocation); bucket
// bounds are upper bounds in ascending order, with an implicit +Inf
// bucket appended.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64
	counts []uint64 // len(bounds)+1; last is +Inf
	sum    float64
	total  uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i]++
	h.sum += v
	h.total++
	h.mu.Unlock()
}

// Bounds returns the configured upper bounds (without +Inf).
func (h *Histogram) Bounds() []float64 {
	out := make([]float64, len(h.bounds))
	copy(out, h.bounds)
	return out
}

// Snapshot returns per-bucket counts (last entry is the +Inf
// bucket), the sum of observed values, and the sample count.
func (h *Histogram) Snapshot() (counts []uint64, sum float64, count uint64) {
	h.mu.Lock()
	counts = make([]uint64, len(h.counts))
	copy(counts, h.counts)
	sum, count = h.sum, h.total
	h.mu.Unlock()
	return counts, sum, count
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.total
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// DefLatencyBuckets covers simulated network/MPI latencies from
// 100 µs to 10 s (values in seconds).
var DefLatencyBuckets = []float64{
	100e-6, 250e-6, 500e-6, 1e-3, 2.5e-3, 5e-3, 10e-3,
	25e-3, 50e-3, 100e-3, 250e-3, 500e-3, 1, 2.5, 5, 10,
}

// entry is one registered series.
type entry struct {
	kind   Kind
	name   string
	help   string
	labels []string // flattened key/value pairs, sorted by key
	ctr    *Counter
	gauge  *Gauge
	fn     func() float64
	hist   *Histogram
}

// Registry holds every registered metric plus the flight recorder.
// Registration methods are idempotent: asking again with the same
// name and label set returns the same handle, so independent
// subsystems (or a subsystem and an experiment harness) can share a
// series without plumbing handles around.
type Registry struct {
	mu      sync.Mutex
	clock   func() time.Duration
	byKey   map[string]*entry
	ordered []*entry
	events  *Recorder
}

// New creates a registry. clock supplies timestamps for flight
// recorder events — pass the sim kernel's Now. A nil clock records
// zero timestamps.
func New(clock func() time.Duration) *Registry {
	if clock == nil {
		clock = func() time.Duration { return 0 }
	}
	return &Registry{
		clock:  clock,
		byKey:  make(map[string]*entry),
		events: newRecorder(clock, DefaultRecorderCapacity),
	}
}

// Events returns the registry's flight recorder.
func (r *Registry) Events() *Recorder { return r.events }

// key canonicalizes name + label pairs; also validates and returns
// the sorted pair slice.
func metricKey(name string, labels []string) (string, []string) {
	if len(labels)%2 != 0 {
		panic(fmt.Sprintf("metrics: odd label list for %s: %v", name, labels))
	}
	pairs := make([]string, len(labels))
	copy(pairs, labels)
	// Sort pairs by key (stable insertion sort over pair indices —
	// label sets are tiny).
	n := len(pairs) / 2
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return pairs[2*idx[a]] < pairs[2*idx[b]] })
	sorted := make([]string, 0, len(pairs))
	for _, i := range idx {
		sorted = append(sorted, pairs[2*i], pairs[2*i+1])
	}
	var b strings.Builder
	b.WriteString(name)
	for i := 0; i < len(sorted); i += 2 {
		b.WriteByte('{')
		b.WriteString(sorted[i])
		b.WriteByte('=')
		b.WriteString(sorted[i+1])
		b.WriteByte('}')
	}
	return b.String(), sorted
}

// lookup finds or creates the entry for (name, labels), enforcing
// kind consistency.
func (r *Registry) lookup(kind Kind, name, help string, labels []string) *entry {
	key, sorted := metricKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if e := r.byKey[key]; e != nil {
		if e.kind != kind {
			panic(fmt.Sprintf("metrics: %s re-registered as %s (was %s)", key, kind, e.kind))
		}
		return e
	}
	e := &entry{kind: kind, name: name, help: help, labels: sorted}
	r.byKey[key] = e
	r.ordered = append(r.ordered, e)
	return e
}

// Counter registers (or finds) a counter. labels are alternating
// key/value pairs.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	e := r.lookup(KindCounter, name, help, labels)
	if e.ctr == nil {
		e.ctr = &Counter{}
	}
	return e.ctr
}

// Gauge registers (or finds) a gauge.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	e := r.lookup(KindGauge, name, help, labels)
	if e.gauge == nil {
		e.gauge = &Gauge{}
	}
	return e.gauge
}

// GaugeFunc registers a gauge whose value is computed by fn at
// export time — for cheap live views (queue depth, utilization) that
// would otherwise need a write on every mutation. Re-registering the
// same series replaces fn.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...string) {
	e := r.lookup(KindGaugeFunc, name, help, labels)
	e.fn = fn
}

// Histogram registers (or finds) a fixed-bucket histogram. buckets
// are ascending upper bounds; +Inf is implicit. On a repeat
// registration the original buckets win.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) *Histogram {
	e := r.lookup(KindHistogram, name, help, labels)
	if e.hist == nil {
		bounds := make([]float64, len(buckets))
		copy(bounds, buckets)
		sort.Float64s(bounds)
		e.hist = &Histogram{bounds: bounds, counts: make([]uint64, len(bounds)+1)}
	}
	return e.hist
}

// CounterValue reads a counter by name/labels without creating it.
func (r *Registry) CounterValue(name string, labels ...string) (int64, bool) {
	key, _ := metricKey(name, labels)
	r.mu.Lock()
	e := r.byKey[key]
	r.mu.Unlock()
	if e == nil || e.kind != KindCounter {
		return 0, false
	}
	return e.ctr.Value(), true
}

// GaugeValue reads a gauge (plain or func) by name/labels.
func (r *Registry) GaugeValue(name string, labels ...string) (float64, bool) {
	key, _ := metricKey(name, labels)
	r.mu.Lock()
	e := r.byKey[key]
	r.mu.Unlock()
	if e == nil {
		return 0, false
	}
	switch e.kind {
	case KindGauge:
		return e.gauge.Value(), true
	case KindGaugeFunc:
		return e.fn(), true
	}
	return 0, false
}

// entries snapshots the registration list for exporters.
func (r *Registry) entries() []*entry {
	r.mu.Lock()
	out := make([]*entry, len(r.ordered))
	copy(out, r.ordered)
	r.mu.Unlock()
	return out
}
