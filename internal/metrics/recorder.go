package metrics

import (
	"sync"
	"time"
)

// EventType identifies a flight-recorder event.
type EventType uint8

// Flight-recorder event types. V1..V3 carry type-specific payloads
// documented per constant; Subject identifies the emitting entity
// (an interface, node, rank, or reservation state name) and must be
// a pre-interned string so Emit stays allocation-free.
const (
	// EvNone is the zero value; never emitted.
	EvNone EventType = iota
	// EvPacketDropEgress: packet rejected by an egress queue.
	// Subject=iface, V1=size bytes, V2=DSCP.
	EvPacketDropEgress
	// EvPacketDropIngress: packet rejected by an ingress filter
	// (policer). Subject=iface, V1=size bytes, V2=DSCP.
	EvPacketDropIngress
	// EvNoRoute: packet sent toward an address with no route.
	// Subject=node, V1=destination addr, V2=size bytes.
	EvNoRoute
	// EvTokenBucketExceed: a policed packet exceeded its token
	// bucket. Subject=DSCP class, V1=size bytes, V2=exceed action
	// (0 drop, 1 remark).
	EvTokenBucketExceed
	// EvReservationState: a GARA reservation changed state.
	// Subject=new state name, V1=reservation ID.
	EvReservationState
	// EvAdmissionReject: admission control refused a reservation.
	// Subject=resource type, V1=0.
	EvAdmissionReject
	// EvTCPSegment: a data segment was transmitted. Subject=node,
	// V1=sequence number, V2=length bytes, V3=1 if a retransmit.
	EvTCPSegment
	// EvTCPRetransmit: a segment was retransmitted. Subject=node,
	// V1=sequence number, V2=length bytes.
	EvTCPRetransmit
	// EvTCPTimeout: a retransmission timer fired. Subject=node,
	// V1=oldest unacked sequence, V2=new RTO in ns.
	EvTCPTimeout
	// EvDeadlineMiss: a DSRT task's compute phase overran the time
	// its CPU reservation promised. Subject=task, V1=elapsed ns,
	// V2=allowed ns.
	EvDeadlineMiss
	// EvMPIRecv: a message was delivered to an MPI receiver.
	// Subject=rank, V1=payload bytes, V2=communicator context ID,
	// V3=one-way latency in ns (0 if unknown).
	EvMPIRecv
	// EvLinkDown: a link left service. Subject=link name, V1=packets
	// queued on side A at the transition, V2=packets queued on side B.
	EvLinkDown
	// EvLinkUp: a link returned to service. Subject=link name,
	// V1=packets queued on side A, V2=packets queued on side B.
	EvLinkUp
	// EvFaultInject: a fault-injection scenario applied an action.
	// Subject=action name, V1/V2 are action-specific.
	EvFaultInject
	// EvQosRepair: the self-healing QoS agent acted. Subject=phase
	// ("breach", "repair", "fallback", "upgrade", "gated"), V1=rank,
	// V2=communicator context ID, V3=phase-specific detail.
	EvQosRepair
	// EvCtrlMsg: a control-plane message crossed (or died on) a
	// channel. Subject=channel name, V1=request ID, V2=fate (0
	// delivered, 1 dropped, 2 duplicated).
	EvCtrlMsg
	// EvCtrlRPC: a control-plane RPC attempt resolved. Subject=method,
	// V1=request ID, V2=attempt number, V3=outcome (0 ok, 1 timeout,
	// 2 breaker-rejected).
	EvCtrlRPC
	// EvCtrlBreaker: a per-RM circuit breaker changed state.
	// Subject=new state name, V1=consecutive failures.
	EvCtrlBreaker
	// EvCtrlCrash: a resource manager's control-plane server crashed.
	// Subject=server name.
	EvCtrlCrash
	// EvCtrlRecover: a resource manager replayed its reservation
	// journal. Subject=server name, V1=bookings rebuilt, V2=expired
	// leases reclaimed, V3=enforcement rules re-installed.
	EvCtrlRecover
	// EvCtrlLease: a prepared reservation's lease changed. Subject=
	// "expired" or "reclaimed", V1=reservation ID.
	EvCtrlLease
	// EvRankCrash: an MPI rank's process failed. Subject=task name,
	// V1=world rank.
	EvRankCrash
	// EvRankRestart: a failed MPI rank rejoined the job. Subject=task
	// name, V1=world rank, V2=incarnation epoch.
	EvRankRestart
	// EvRankCkpt: a rank saved a checkpoint. Subject=task name,
	// V1=world rank, V2=application step.
	EvRankCkpt
	// EvAdmissionShed: the control-plane admission queue rejected or
	// dropped a request. Subject=rm, V1=request id, V2=shed reason
	// (see ctrlplane), V3=queue depth at the shed.
	EvAdmissionShed
	// EvBrownout: a broker changed its brownout level. Subject=rm,
	// V1=new level, V2=previous level, V3=queue depth at the change.
	EvBrownout
	// EvFluidStart: a fluid background flow became active.
	// Subject=flow name, V1=offered rate (b/s), V2=chunk bytes.
	EvFluidStart
	// EvFluidStop: a fluid background flow stopped. Subject=flow name,
	// V1=offered bytes, V2=delivered bytes.
	EvFluidStop
	// EvFluidRate: the fluid solver installed a new delivered rate for
	// a flow after a rate-change or topology event. Subject=flow name,
	// V1=offered rate (b/s), V2=delivered rate (b/s), V3=hop count.
	EvFluidRate
	evSentinel // keep last
)

var eventTypeNames = [...]string{
	EvNone:              "none",
	EvPacketDropEgress:  "packet-drop-egress",
	EvPacketDropIngress: "packet-drop-ingress",
	EvNoRoute:           "no-route",
	EvTokenBucketExceed: "token-bucket-exceed",
	EvReservationState:  "reservation-state",
	EvAdmissionReject:   "admission-reject",
	EvTCPSegment:        "tcp-segment",
	EvTCPRetransmit:     "tcp-retransmit",
	EvTCPTimeout:        "tcp-timeout",
	EvDeadlineMiss:      "deadline-miss",
	EvMPIRecv:           "mpi-recv",
	EvLinkDown:          "link.down",
	EvLinkUp:            "link.up",
	EvFaultInject:       "fault-inject",
	EvQosRepair:         "qos-repair",
	EvCtrlMsg:           "ctrl.msg",
	EvCtrlRPC:           "ctrl.rpc",
	EvCtrlBreaker:       "ctrl.breaker",
	EvCtrlCrash:         "ctrl.crash",
	EvCtrlRecover:       "ctrl.recover",
	EvCtrlLease:         "ctrl.lease",
	EvRankCrash:         "rank.crash",
	EvRankRestart:       "rank.restart",
	EvRankCkpt:          "rank.ckpt",
	EvAdmissionShed:     "admission.shed",
	EvBrownout:          "brownout",
	EvFluidStart:        "fluid.start",
	EvFluidStop:         "fluid.stop",
	EvFluidRate:         "fluid.rate",
}

// String returns the event type's wire name (used by exporters).
func (t EventType) String() string {
	if int(t) < len(eventTypeNames) && eventTypeNames[t] != "" {
		return eventTypeNames[t]
	}
	return "unknown"
}

// ParseEventType maps a wire name back to its EventType.
func ParseEventType(s string) (EventType, bool) {
	for t, name := range eventTypeNames {
		if name == s && EventType(t) != EvNone {
			return EventType(t), true
		}
	}
	return EvNone, false
}

// Event is one flight-recorder record. It is a plain value — no
// pointers beyond the interned Subject string — so the ring buffer
// is a flat allocation the GC never scans per event.
type Event struct {
	// Seq is the global emission sequence number (monotonic from 0).
	Seq uint64
	// At is the sim-kernel time of emission.
	At time.Duration
	// Type discriminates the payload.
	Type EventType
	// Subject names the emitting entity.
	Subject string
	// V1, V2, V3 are type-specific payload values.
	V1, V2, V3 int64
}

// DefaultRecorderCapacity is the ring size a fresh Registry starts
// with. Long experiment runs raise it via SetCapacity.
const DefaultRecorderCapacity = 16384

// Recorder is a fixed-capacity ring buffer of Events. Emit is
// allocation-free; when the ring is full the oldest events are
// overwritten (Overwritten reports how many).
type Recorder struct {
	mu    sync.Mutex
	clock func() time.Duration
	buf   []Event
	next  uint64 // total events ever emitted
	first uint64 // seq of the oldest retained event
}

func newRecorder(clock func() time.Duration, capacity int) *Recorder {
	return &Recorder{clock: clock, buf: make([]Event, capacity)}
}

// Emit appends an event stamped with the current sim time. subject
// must be an interned string (a constant or a field computed once at
// setup); v1..v3 are type-specific.
func (r *Recorder) Emit(t EventType, subject string, v1, v2, v3 int64) {
	now := r.clock()
	r.mu.Lock()
	if r.next-r.first == uint64(len(r.buf)) {
		r.first++ // overwrite the oldest
	}
	r.buf[r.next%uint64(len(r.buf))] = Event{
		Seq: r.next, At: now, Type: t, Subject: subject, V1: v1, V2: v2, V3: v3,
	}
	r.next++
	r.mu.Unlock()
}

// Seq returns the number of events emitted so far — i.e. the Seq the
// next event will carry. Capture it before a run and pass it to
// Since to scope a query to that run.
func (r *Recorder) Seq() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.next
}

// Len returns how many events the ring currently retains.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return int(r.next - r.first)
}

// Capacity returns the ring size.
func (r *Recorder) Capacity() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.buf)
}

// Overwritten returns how many events have been evicted by
// wraparound.
func (r *Recorder) Overwritten() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.first
}

// SetCapacity resizes the ring, retaining the most recent events.
func (r *Recorder) SetCapacity(n int) {
	if n < 1 {
		n = 1
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	old := r.retained()
	r.buf = make([]Event, n)
	if len(old) > n {
		old = old[len(old)-n:]
	}
	for _, e := range old {
		r.buf[e.Seq%uint64(n)] = e
	}
	r.first = r.next - uint64(len(old))
}

// retained returns the live events oldest-first. Caller holds mu.
func (r *Recorder) retained() []Event {
	out := make([]Event, 0, r.next-r.first)
	for i := r.first; i < r.next; i++ {
		out = append(out, r.buf[i%uint64(len(r.buf))])
	}
	return out
}

// Snapshot returns every retained event, oldest first.
func (r *Recorder) Snapshot() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.retained()
}

// Since returns retained events with Seq >= seq, oldest first. If
// older events matching seq were already overwritten they are
// silently absent — size the ring (SetCapacity) for the run.
func (r *Recorder) Since(seq uint64) []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	all := r.retained()
	i := sortSearchEvents(all, seq)
	return all[i:]
}

// EventFilter selects flight-recorder events for tail-style queries
// (gqctl events, gqd /events).
type EventFilter struct {
	// Type, when not EvNone, keeps only events of that type.
	Type EventType
	// Subject, when nonempty, keeps only events with that subject.
	Subject string
	// Since keeps only events at or after this virtual time. (The zero
	// value keeps everything: no event precedes t=0.)
	Since time.Duration
	// Last, when positive, keeps only the last N matches.
	Last int
}

// FilterEvents applies f to an event list, preserving order.
func FilterEvents(events []Event, f EventFilter) []Event {
	out := make([]Event, 0, len(events))
	for _, e := range events {
		if f.Type != EvNone && e.Type != f.Type {
			continue
		}
		if f.Subject != "" && e.Subject != f.Subject {
			continue
		}
		if e.At < f.Since {
			continue
		}
		out = append(out, e)
	}
	if f.Last > 0 && len(out) > f.Last {
		out = out[len(out)-f.Last:]
	}
	return out
}

// sortSearchEvents finds the first index with Seq >= seq (events are
// seq-ordered).
func sortSearchEvents(evs []Event, seq uint64) int {
	lo, hi := 0, len(evs)
	for lo < hi {
		mid := (lo + hi) / 2
		if evs[mid].Seq < seq {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
