package metrics

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestWritePrometheusEmptyRegistry pins the exporter's zero state: a
// registry with no metrics renders to valid (empty) exposition text
// and an empty-but-loadable JSON snapshot, so a freshly started gqd
// never 500s on /metrics.
func TestWritePrometheusEmptyRegistry(t *testing.T) {
	r := New(nil)
	var b bytes.Buffer
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatalf("WritePrometheus on empty registry: %v", err)
	}
	if got := b.String(); got != "" {
		t.Fatalf("empty registry rendered %q, want no output", got)
	}
	b.Reset()
	if err := r.WriteJSON(&b); err != nil {
		t.Fatalf("WriteJSON on empty registry: %v", err)
	}
	s, err := LoadSnapshot(&b)
	if err != nil {
		t.Fatalf("LoadSnapshot of empty registry: %v", err)
	}
	if _, ok := s.Metric("anything"); ok {
		t.Fatal("empty snapshot resolved a metric")
	}
}

// TestHistogramZeroObservations pins the exporter on a registered but
// never-observed histogram: all buckets (including +Inf), sum, and
// count must render as explicit zeros rather than being skipped.
func TestHistogramZeroObservations(t *testing.T) {
	r := New(nil)
	r.Histogram("rtt", "round trip", []float64{0.01, 0.1})
	var b bytes.Buffer
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE rtt histogram",
		`rtt_bucket{le="0.01"} 0`,
		`rtt_bucket{le="0.1"} 0`,
		`rtt_bucket{le="+Inf"} 0`,
		"rtt_sum 0",
		"rtt_count 0",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("zero-observation histogram missing %q:\n%s", want, out)
		}
	}
	s := r.TakeSnapshot()
	m, ok := s.Metric("rtt")
	if !ok || m.Count != 0 || m.Sum != 0 {
		t.Fatalf("zero-observation snapshot = %+v, %v", m, ok)
	}
}

// TestSnapshotUnderConcurrentWrites exercises the export paths while
// writers hammer every metric kind — the live situation inside gqd,
// where /metrics and /events render concurrently with the stepper.
// Run under -race; correctness assertion is that every snapshot is
// internally consistent and the final state is exact.
func TestSnapshotUnderConcurrentWrites(t *testing.T) {
	r := New(nil)
	c := r.Counter("c", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", []float64{1, 2})
	rec := r.Events()

	const writers, rounds = 4, 500
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < rounds; j++ {
				c.Inc()
				g.Set(float64(j))
				h.Observe(float64(j % 4))
				rec.Emit(EvTCPSegment, "s", int64(j), 0, 0)
			}
		}()
	}
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := r.TakeSnapshot()
			if m, ok := s.Metric("h"); ok {
				var inBuckets uint64
				for _, n := range m.Counts {
					inBuckets += n
				}
				if inBuckets != m.Count {
					t.Errorf("torn histogram snapshot: buckets sum to %d, count %d", inBuckets, m.Count)
					return
				}
			}
			var b bytes.Buffer
			if err := r.WritePrometheus(&b); err != nil {
				t.Errorf("WritePrometheus under writers: %v", err)
				return
			}
			if err := r.WriteJSON(&b); err != nil {
				t.Errorf("WriteJSON under writers: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	close(stop)
	<-readerDone

	if c.Value() != writers*rounds {
		t.Fatalf("final counter = %d", c.Value())
	}
	if h.Count() != writers*rounds {
		t.Fatalf("final histogram count = %d", h.Count())
	}
	if rec.Seq() != writers*rounds {
		t.Fatalf("final event seq = %d", rec.Seq())
	}
}

// TestFilterEvents covers the shared tail-query filter behind
// gqctl events and gqd /events.
func TestFilterEvents(t *testing.T) {
	now := time.Duration(0)
	r := New(testClock(&now))
	rec := r.Events()
	for i := 0; i < 10; i++ {
		now = time.Duration(i) * time.Second
		typ, subj := EvTCPSegment, "a"
		if i%2 == 1 {
			typ, subj = EvTCPRetransmit, "b"
		}
		rec.Emit(typ, subj, int64(i), 0, 0)
	}
	all := rec.Snapshot()

	if got := FilterEvents(all, EventFilter{}); len(got) != 10 {
		t.Fatalf("zero filter kept %d of 10", len(got))
	}
	if got := FilterEvents(all, EventFilter{Type: EvTCPRetransmit}); len(got) != 5 || got[0].Subject != "b" {
		t.Fatalf("type filter = %+v", got)
	}
	if got := FilterEvents(all, EventFilter{Subject: "a"}); len(got) != 5 || got[0].V1 != 0 {
		t.Fatalf("subject filter = %+v", got)
	}
	if got := FilterEvents(all, EventFilter{Since: 7 * time.Second}); len(got) != 3 || got[0].V1 != 7 {
		t.Fatalf("since filter = %+v", got)
	}
	got := FilterEvents(all, EventFilter{Type: EvTCPSegment, Since: 3 * time.Second, Last: 2})
	if len(got) != 2 || got[0].V1 != 6 || got[1].V1 != 8 {
		t.Fatalf("combined filter = %+v", got)
	}
	if got := FilterEvents(all, EventFilter{Subject: "nope"}); len(got) != 0 {
		t.Fatalf("non-matching filter kept %d events", len(got))
	}
	if got := FilterEvents(all, EventFilter{Last: 3}); len(got) != 3 || got[0].V1 != 7 {
		t.Fatalf("last filter = %+v", got)
	}
}
