package metrics

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

func testClock(now *time.Duration) func() time.Duration {
	return func() time.Duration { return *now }
}

func TestCounter(t *testing.T) {
	r := New(nil)
	c := r.Counter("x_total", "help")
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters never run backwards
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if c2 := r.Counter("x_total", "help"); c2 != c {
		t.Fatal("re-registration did not dedup")
	}
	if c3 := r.Counter("x_total", "help", "node", "a"); c3 == c {
		t.Fatal("different label set must be a distinct series")
	}
}

func TestCounterLabelOrderInsensitive(t *testing.T) {
	r := New(nil)
	a := r.Counter("y_total", "", "k1", "v1", "k2", "v2")
	b := r.Counter("y_total", "", "k2", "v2", "k1", "v1")
	if a != b {
		t.Fatal("label order must not create a new series")
	}
	a.Inc()
	if v, ok := r.CounterValue("y_total", "k2", "v2", "k1", "v1"); !ok || v != 1 {
		t.Fatalf("CounterValue = %d, %v", v, ok)
	}
}

func TestGauge(t *testing.T) {
	r := New(nil)
	g := r.Gauge("g", "")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}
	if v, ok := r.GaugeValue("g"); !ok || v != 1.5 {
		t.Fatalf("GaugeValue = %v, %v", v, ok)
	}
}

func TestGaugeFunc(t *testing.T) {
	r := New(nil)
	n := 7.0
	r.GaugeFunc("qdepth", "", func() float64 { return n })
	if v, ok := r.GaugeValue("qdepth"); !ok || v != 7 {
		t.Fatalf("GaugeValue = %v, %v", v, ok)
	}
	n = 9
	if v, _ := r.GaugeValue("qdepth"); v != 9 {
		t.Fatalf("GaugeFunc not live: %v", v)
	}
	// Re-registration replaces fn.
	r.GaugeFunc("qdepth", "", func() float64 { return -1 })
	if v, _ := r.GaugeValue("qdepth"); v != -1 {
		t.Fatalf("fn not replaced: %v", v)
	}
}

func TestHistogram(t *testing.T) {
	r := New(nil)
	h := r.Histogram("lat", "", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 5, 5, 50, 500} {
		h.Observe(v)
	}
	counts, sum, count := h.Snapshot()
	want := []uint64{1, 2, 1, 1}
	for i, c := range counts {
		if c != want[i] {
			t.Fatalf("bucket %d = %d, want %d (all %v)", i, c, want[i], counts)
		}
	}
	if count != 5 || sum != 560.5 {
		t.Fatalf("count=%d sum=%v", count, sum)
	}
	if h.Count() != 5 || h.Sum() != 560.5 {
		t.Fatalf("Count/Sum accessors disagree")
	}
	if b := h.Bounds(); len(b) != 3 || b[2] != 100 {
		t.Fatalf("bounds = %v", b)
	}
	// Boundary values land in the bucket they equal (le semantics).
	h2 := r.Histogram("lat2", "", []float64{1, 10})
	h2.Observe(1)
	if counts, _, _ := h2.Snapshot(); counts[0] != 1 {
		t.Fatalf("le semantics broken: %v", counts)
	}
	// Repeat registration keeps original buckets and handle.
	if h3 := r.Histogram("lat", "", []float64{42}); h3 != h {
		t.Fatal("histogram not deduped")
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := New(nil)
	r.Counter("m", "")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on kind mismatch")
		}
	}()
	r.Gauge("m", "")
}

func TestOddLabelsPanics(t *testing.T) {
	r := New(nil)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on odd label list")
		}
	}()
	r.Counter("m", "", "keyonly")
}

func TestLookupMisses(t *testing.T) {
	r := New(nil)
	if _, ok := r.CounterValue("absent"); ok {
		t.Fatal("CounterValue on absent series")
	}
	if _, ok := r.GaugeValue("absent"); ok {
		t.Fatal("GaugeValue on absent series")
	}
	r.Gauge("g", "")
	if _, ok := r.CounterValue("g"); ok {
		t.Fatal("CounterValue must reject non-counter")
	}
	r.Counter("c", "")
	if _, ok := r.GaugeValue("c"); ok {
		t.Fatal("GaugeValue must reject counter")
	}
}

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindCounter: "counter", KindGauge: "gauge",
		KindGaugeFunc: "gauge", KindHistogram: "histogram",
		Kind(99): "untyped",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Fatalf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
}

func TestRecorderBasics(t *testing.T) {
	now := 0 * time.Second
	r := New(testClock(&now))
	rec := r.Events()
	if rec.Capacity() != DefaultRecorderCapacity {
		t.Fatalf("capacity = %d", rec.Capacity())
	}
	if rec.Seq() != 0 || rec.Len() != 0 {
		t.Fatal("fresh recorder not empty")
	}
	now = 3 * time.Second
	rec.Emit(EvNoRoute, "n1", 7, 64, 0)
	evs := rec.Snapshot()
	if len(evs) != 1 {
		t.Fatalf("len = %d", len(evs))
	}
	e := evs[0]
	if e.Seq != 0 || e.At != 3*time.Second || e.Type != EvNoRoute || e.Subject != "n1" || e.V1 != 7 || e.V2 != 64 {
		t.Fatalf("event = %+v", e)
	}
	if rec.Seq() != 1 {
		t.Fatalf("Seq = %d", rec.Seq())
	}
}

func TestRecorderWrapAndSince(t *testing.T) {
	now := time.Duration(0)
	rec := newRecorder(testClock(&now), 4)
	for i := 0; i < 10; i++ {
		rec.Emit(EvTCPSegment, "s", int64(i), 0, 0)
	}
	if rec.Len() != 4 || rec.Overwritten() != 6 {
		t.Fatalf("len=%d overwritten=%d", rec.Len(), rec.Overwritten())
	}
	evs := rec.Snapshot()
	for i, e := range evs {
		if e.V1 != int64(6+i) {
			t.Fatalf("snapshot[%d].V1 = %d", i, e.V1)
		}
	}
	since := rec.Since(8)
	if len(since) != 2 || since[0].Seq != 8 || since[1].Seq != 9 {
		t.Fatalf("since = %+v", since)
	}
	// Seq older than retention returns everything retained.
	if got := rec.Since(0); len(got) != 4 {
		t.Fatalf("since(0) len = %d", len(got))
	}
	// Seq beyond the end returns nothing.
	if got := rec.Since(100); len(got) != 0 {
		t.Fatalf("since(100) len = %d", len(got))
	}
}

func TestRecorderSetCapacity(t *testing.T) {
	now := time.Duration(0)
	rec := newRecorder(testClock(&now), 8)
	for i := 0; i < 6; i++ {
		rec.Emit(EvTCPSegment, "s", int64(i), 0, 0)
	}
	rec.SetCapacity(3) // shrink: keep newest 3
	if rec.Capacity() != 3 || rec.Len() != 3 {
		t.Fatalf("cap=%d len=%d", rec.Capacity(), rec.Len())
	}
	if evs := rec.Snapshot(); evs[0].V1 != 3 || evs[2].V1 != 5 {
		t.Fatalf("shrink kept %+v", evs)
	}
	rec.SetCapacity(16) // grow: keep all retained
	if rec.Capacity() != 16 || rec.Len() != 3 {
		t.Fatalf("cap=%d len=%d after grow", rec.Capacity(), rec.Len())
	}
	rec.Emit(EvTCPSegment, "s", 6, 0, 0)
	if evs := rec.Snapshot(); len(evs) != 4 || evs[3].V1 != 6 {
		t.Fatalf("post-grow snapshot %+v", evs)
	}
	rec.SetCapacity(0) // clamps to 1
	if rec.Capacity() != 1 {
		t.Fatalf("cap = %d, want 1", rec.Capacity())
	}
}

func TestEventTypeNames(t *testing.T) {
	for ty := EvNone + 1; ty < evSentinel; ty++ {
		name := ty.String()
		if name == "unknown" || name == "" {
			t.Fatalf("event type %d has no name", ty)
		}
		back, ok := ParseEventType(name)
		if !ok || back != ty {
			t.Fatalf("round-trip %q -> %v, %v", name, back, ok)
		}
	}
	if EventType(200).String() != "unknown" {
		t.Fatal("out-of-range String")
	}
	if _, ok := ParseEventType("definitely-not"); ok {
		t.Fatal("parse of bogus name succeeded")
	}
	if _, ok := ParseEventType("none"); ok {
		t.Fatal("EvNone must not parse")
	}
}

func TestWritePrometheus(t *testing.T) {
	r := New(nil)
	r.Counter("pkts_total", "packets", "iface", "a[b]").Add(3)
	r.Gauge("depth", "queue depth").Set(1.5)
	r.GaugeFunc("util", "", func() float64 { return 0.25 })
	h := r.Histogram("rtt", "round trip", []float64{0.001, 0.01})
	h.Observe(0.0005)
	h.Observe(0.5)
	var b bytes.Buffer
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP pkts_total packets",
		"# TYPE pkts_total counter",
		`pkts_total{iface="a[b]"} 3`,
		"# TYPE depth gauge",
		"depth 1.5",
		"util 0.25",
		"# TYPE rtt histogram",
		`rtt_bucket{le="0.001"} 1`,
		`rtt_bucket{le="0.01"} 1`,
		`rtt_bucket{le="+Inf"} 2`,
		"rtt_sum 0.5005",
		"rtt_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestJSONSnapshotRoundTrip(t *testing.T) {
	now := 2 * time.Second
	r := New(testClock(&now))
	r.Counter("c_total", "", "node", "x").Add(11)
	r.Gauge("g", "").Set(3)
	r.GaugeFunc("gf", "", func() float64 { return 4 })
	h := r.Histogram("h", "", []float64{1})
	h.Observe(0.5)
	r.Events().Emit(EvMPIRecv, "rank-1", 100, 2, 5000)
	r.Events().Emit(EvTCPTimeout, "n", 1, 2, 3)

	var b bytes.Buffer
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	s, err := LoadSnapshot(&b)
	if err != nil {
		t.Fatal(err)
	}
	if s.TakenAtNs != int64(2*time.Second) {
		t.Fatalf("TakenAtNs = %d", s.TakenAtNs)
	}
	m, ok := s.Metric("c_total", "node", "x")
	if !ok || m.Value != 11 || m.Kind != "counter" {
		t.Fatalf("metric = %+v, %v", m, ok)
	}
	if _, ok := s.Metric("c_total"); ok {
		t.Fatal("label-less lookup must not match labelled series")
	}
	if _, ok := s.Metric("c_total", "node"); ok {
		t.Fatal("odd label list must not match")
	}
	if m, ok := s.Metric("h"); !ok || m.Count != 1 || len(m.Counts) != 2 {
		t.Fatalf("histogram snapshot = %+v, %v", m, ok)
	}
	if m, ok := s.Metric("gf"); !ok || m.Value != 4 {
		t.Fatalf("gaugefunc snapshot = %+v", m)
	}
	recvs := s.EventsOfType("mpi-recv")
	if len(recvs) != 1 || recvs[0].Subject != "rank-1" || recvs[0].V3 != 5000 {
		t.Fatalf("events = %+v", recvs)
	}
	first, last := s.Span()
	if first != 2*time.Second || last != 2*time.Second {
		t.Fatalf("span = %v..%v", first, last)
	}
	var empty Snapshot
	if f, l := empty.Span(); f != 0 || l != 0 {
		t.Fatal("empty span not zero")
	}
}

func TestLoadSnapshotError(t *testing.T) {
	if _, err := LoadSnapshot(strings.NewReader("{nope")); err == nil {
		t.Fatal("expected decode error")
	}
}

func TestConcurrency(t *testing.T) {
	r := New(nil)
	c := r.Counter("c", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", []float64{1, 2, 3})
	rec := r.Events()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(j % 5))
				rec.Emit(EvTCPSegment, "s", int64(j), 0, 0)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 || g.Value() != 8000 {
		t.Fatalf("counter=%d gauge=%v", c.Value(), g.Value())
	}
	if h.Count() != 8000 || rec.Seq() != 8000 {
		t.Fatalf("hist=%d seq=%d", h.Count(), rec.Seq())
	}
}

// TestFastPathAllocs is the ISSUE's allocation-freedom gate: every
// per-packet update path must not allocate.
func TestFastPathAllocs(t *testing.T) {
	r := New(nil)
	c := r.Counter("c", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", DefLatencyBuckets)
	rec := r.Events()
	cases := map[string]func(){
		"Counter.Inc":       func() { c.Inc() },
		"Counter.Add":       func() { c.Add(3) },
		"Gauge.Set":         func() { g.Set(1.25) },
		"Gauge.Add":         func() { g.Add(0.5) },
		"Histogram.Observe": func() { h.Observe(0.003) },
		"Recorder.Emit":     func() { rec.Emit(EvTCPSegment, "node", 1, 2, 0) },
	}
	for name, fn := range cases {
		if allocs := testing.AllocsPerRun(1000, fn); allocs != 0 {
			t.Errorf("%s allocates %v/op, want 0", name, allocs)
		}
	}
}

func BenchmarkCounterInc(b *testing.B) {
	c := New(nil).Counter("c", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := New(nil).Histogram("h", "", DefLatencyBuckets)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.004)
	}
}

func BenchmarkRecorderEmit(b *testing.B) {
	rec := New(nil).Events()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rec.Emit(EvTCPSegment, "node", int64(i), 1448, 0)
	}
}
