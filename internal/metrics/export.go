package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// WritePrometheus dumps every registered series in Prometheus text
// exposition format (version 0.0.4). GaugeFuncs are evaluated at
// write time.
func (r *Registry) WritePrometheus(w io.Writer) error {
	seen := make(map[string]bool)
	for _, e := range r.entries() {
		if !seen[e.name] {
			seen[e.name] = true
			if e.help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", e.name, e.help); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", e.name, e.kind); err != nil {
				return err
			}
		}
		if err := writePromEntry(w, e); err != nil {
			return err
		}
	}
	return nil
}

func writePromEntry(w io.Writer, e *entry) error {
	switch e.kind {
	case KindCounter:
		_, err := fmt.Fprintf(w, "%s%s %d\n", e.name, promLabels(e.labels, "", ""), e.ctr.Value())
		return err
	case KindGauge:
		_, err := fmt.Fprintf(w, "%s%s %s\n", e.name, promLabels(e.labels, "", ""), formatFloat(e.gauge.Value()))
		return err
	case KindGaugeFunc:
		_, err := fmt.Fprintf(w, "%s%s %s\n", e.name, promLabels(e.labels, "", ""), formatFloat(e.fn()))
		return err
	case KindHistogram:
		counts, sum, count := e.hist.Snapshot()
		bounds := e.hist.Bounds()
		var cum uint64
		for i, c := range counts {
			cum += c
			le := "+Inf"
			if i < len(bounds) {
				le = formatFloat(bounds[i])
			}
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", e.name, promLabels(e.labels, "le", le), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", e.name, promLabels(e.labels, "", ""), formatFloat(sum)); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", e.name, promLabels(e.labels, "", ""), count)
		return err
	}
	return nil
}

// promLabels renders {k="v",...}, optionally appending one extra
// pair (used for histogram le).
func promLabels(pairs []string, extraK, extraV string) string {
	if len(pairs) == 0 && extraK == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i < len(pairs); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(pairs[i])
		b.WriteString(`="`)
		b.WriteString(pairs[i+1])
		b.WriteByte('"')
	}
	if extraK != "" {
		if len(pairs) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraK)
		b.WriteString(`="`)
		b.WriteString(extraV)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// MetricSnapshot is one series in a JSON snapshot.
type MetricSnapshot struct {
	Name   string            `json:"name"`
	Kind   string            `json:"kind"`
	Labels map[string]string `json:"labels,omitempty"`
	// Value holds the counter or gauge value.
	Value float64 `json:"value"`
	// Histogram-only fields.
	Buckets []float64 `json:"buckets,omitempty"` // upper bounds
	Counts  []uint64  `json:"counts,omitempty"`  // per bucket, +Inf last
	Sum     float64   `json:"sum,omitempty"`
	Count   uint64    `json:"count,omitempty"`
}

// EventSnapshot is one flight-recorder event in a JSON snapshot.
type EventSnapshot struct {
	Seq     uint64 `json:"seq"`
	AtNs    int64  `json:"at_ns"`
	Type    string `json:"type"`
	Subject string `json:"subject"`
	V1      int64  `json:"v1,omitempty"`
	V2      int64  `json:"v2,omitempty"`
	V3      int64  `json:"v3,omitempty"`
}

// Snapshot is the JSON export of a registry: every series plus the
// retained flight-recorder events.
type Snapshot struct {
	TakenAtNs         int64            `json:"taken_at_ns"`
	Metrics           []MetricSnapshot `json:"metrics"`
	Events            []EventSnapshot  `json:"events"`
	EventsOverwritten uint64           `json:"events_overwritten,omitempty"`
}

// TakeSnapshot captures the registry's current state.
func (r *Registry) TakeSnapshot() Snapshot {
	s := Snapshot{TakenAtNs: int64(r.clock())}
	for _, e := range r.entries() {
		ms := MetricSnapshot{Name: e.name, Kind: e.kind.String()}
		if len(e.labels) > 0 {
			ms.Labels = make(map[string]string, len(e.labels)/2)
			for i := 0; i < len(e.labels); i += 2 {
				ms.Labels[e.labels[i]] = e.labels[i+1]
			}
		}
		switch e.kind {
		case KindCounter:
			ms.Value = float64(e.ctr.Value())
		case KindGauge:
			ms.Value = e.gauge.Value()
		case KindGaugeFunc:
			ms.Value = e.fn()
		case KindHistogram:
			ms.Counts, ms.Sum, ms.Count = e.hist.Snapshot()
			ms.Buckets = e.hist.Bounds()
		}
		s.Metrics = append(s.Metrics, ms)
	}
	for _, ev := range r.events.Snapshot() {
		s.Events = append(s.Events, EventSnapshot{
			Seq: ev.Seq, AtNs: int64(ev.At), Type: ev.Type.String(),
			Subject: ev.Subject, V1: ev.V1, V2: ev.V2, V3: ev.V3,
		})
	}
	s.EventsOverwritten = r.events.Overwritten()
	return s
}

// WriteJSON writes the snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.TakeSnapshot())
}

// LoadSnapshot parses a snapshot previously produced by WriteJSON —
// the input side of replay tooling like cmd/dvis -from.
func LoadSnapshot(rd io.Reader) (*Snapshot, error) {
	var s Snapshot
	if err := json.NewDecoder(rd).Decode(&s); err != nil {
		return nil, fmt.Errorf("metrics: decode snapshot: %w", err)
	}
	return &s, nil
}

// Metric finds a series in a loaded snapshot by name and labels
// (labels as alternating key/value pairs, any order).
func (s *Snapshot) Metric(name string, labels ...string) (MetricSnapshot, bool) {
	if len(labels)%2 != 0 {
		return MetricSnapshot{}, false
	}
outer:
	for _, m := range s.Metrics {
		if m.Name != name || len(m.Labels)*2 != len(labels) {
			continue
		}
		for i := 0; i < len(labels); i += 2 {
			if m.Labels[labels[i]] != labels[i+1] {
				continue outer
			}
		}
		return m, true
	}
	return MetricSnapshot{}, false
}

// EventsOfType returns the snapshot's events matching the given wire
// name (e.g. "mpi-recv"), preserving order.
func (s *Snapshot) EventsOfType(typ string) []EventSnapshot {
	var out []EventSnapshot
	for _, e := range s.Events {
		if e.Type == typ {
			out = append(out, e)
		}
	}
	return out
}

// Span returns the [first, last] event timestamps of the snapshot's
// event log, or zeros if empty.
func (s *Snapshot) Span() (first, last time.Duration) {
	if len(s.Events) == 0 {
		return 0, 0
	}
	return time.Duration(s.Events[0].AtNs), time.Duration(s.Events[len(s.Events)-1].AtNs)
}
