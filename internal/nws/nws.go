// Package nws provides Network Weather Service-style monitoring and
// forecasting (Wolski, HPDC'97 — the paper's reference [35]). §5.4
// suggests computing "the 'correct' token bucket size dynamically, by
// using application-specific information and perhaps also dynamic
// network performance data [35]"; this package supplies that data.
//
// Following NWS's design, a Forecaster runs a battery of simple
// predictors (last value, sliding means, sliding medians) over a
// measurement series and answers each query with the prediction of
// whichever predictor has the lowest cumulative error so far.
package nws

import (
	"fmt"
	"sort"
	"time"

	"mpichgq/internal/sim"
	"mpichgq/internal/tcpsim"
	"mpichgq/internal/units"
)

// predictor is one forecasting strategy over the sample history.
type predictor interface {
	name() string
	predict(history []float64) float64
}

type lastValue struct{}

func (lastValue) name() string { return "last" }
func (lastValue) predict(h []float64) float64 {
	return h[len(h)-1]
}

type slidingMean struct{ w int }

func (p slidingMean) name() string { return fmt.Sprintf("mean%d", p.w) }
func (p slidingMean) predict(h []float64) float64 {
	start := len(h) - p.w
	if start < 0 {
		start = 0
	}
	sum := 0.0
	for _, v := range h[start:] {
		sum += v
	}
	return sum / float64(len(h)-start)
}

type slidingMedian struct{ w int }

func (p slidingMedian) name() string { return fmt.Sprintf("median%d", p.w) }
func (p slidingMedian) predict(h []float64) float64 {
	start := len(h) - p.w
	if start < 0 {
		start = 0
	}
	win := append([]float64(nil), h[start:]...)
	sort.Float64s(win)
	n := len(win)
	if n%2 == 1 {
		return win[n/2]
	}
	return (win[n/2-1] + win[n/2]) / 2
}

// Forecaster runs the predictor battery over one measurement series.
type Forecaster struct {
	history    []float64
	maxHistory int
	predictors []predictor
	// errs[i] is predictor i's cumulative absolute error; pending[i]
	// its outstanding prediction awaiting the next sample.
	errs    []float64
	pending []float64
	primed  bool
}

// NewForecaster returns a forecaster with the standard NWS battery.
func NewForecaster() *Forecaster {
	ps := []predictor{
		lastValue{},
		slidingMean{w: 5}, slidingMean{w: 20},
		slidingMedian{w: 5}, slidingMedian{w: 20},
	}
	return &Forecaster{
		maxHistory: 128,
		predictors: ps,
		errs:       make([]float64, len(ps)),
		pending:    make([]float64, len(ps)),
	}
}

// Add feeds one measurement: pending predictions are scored against
// it, then fresh predictions are formed.
func (f *Forecaster) Add(v float64) {
	if f.primed {
		for i := range f.predictors {
			d := f.pending[i] - v
			if d < 0 {
				d = -d
			}
			f.errs[i] += d
		}
	}
	f.history = append(f.history, v)
	if len(f.history) > f.maxHistory {
		f.history = f.history[len(f.history)-f.maxHistory:]
	}
	for i, p := range f.predictors {
		f.pending[i] = p.predict(f.history)
	}
	f.primed = true
}

// Len returns the number of samples seen.
func (f *Forecaster) Len() int { return len(f.history) }

// best returns the index of the lowest-error predictor.
func (f *Forecaster) best() int {
	bi := 0
	for i, e := range f.errs {
		if e < f.errs[bi] {
			bi = i
		}
		_ = i
	}
	return bi
}

// Forecast returns the current prediction of the best predictor (0 if
// no samples).
func (f *Forecaster) Forecast() float64 {
	if len(f.history) == 0 {
		return 0
	}
	return f.pending[f.best()]
}

// Best names the currently winning predictor.
func (f *Forecaster) Best() string {
	return f.predictors[f.best()].name()
}

// Monitor passively samples a TCP connection's achieved throughput
// (acked bytes per interval), smoothed RTT, and loss (retransmits per
// interval), feeding per-metric forecasters.
type Monitor struct {
	k        *sim.Kernel
	conn     *tcpsim.Conn
	interval time.Duration

	Throughput *Forecaster // Kb/s
	RTT        *Forecaster // seconds
	Loss       *Forecaster // retransmitted segments per interval

	lastAcked int64
	lastRetx  uint64
	timer     sim.Timer
	stopped   bool
}

// Attach starts periodic sampling of conn every interval.
func Attach(k *sim.Kernel, conn *tcpsim.Conn, interval time.Duration) *Monitor {
	if interval <= 0 {
		panic("nws: non-positive sampling interval")
	}
	m := &Monitor{
		k: k, conn: conn, interval: interval,
		Throughput: NewForecaster(),
		RTT:        NewForecaster(),
		Loss:       NewForecaster(),
	}
	st := conn.Stats()
	m.lastAcked = st.BytesAcked
	m.lastRetx = st.Retransmits
	m.schedule()
	return m
}

func (m *Monitor) schedule() {
	m.timer = m.k.After(m.interval, func() {
		if m.stopped {
			return
		}
		m.sample()
		m.schedule()
	})
}

func (m *Monitor) sample() {
	st := m.conn.Stats()
	acked := st.BytesAcked - m.lastAcked
	m.lastAcked = st.BytesAcked
	m.Throughput.Add(units.RateOf(units.ByteSize(acked), m.interval).Kbps())
	if st.SRTT > 0 {
		m.RTT.Add(st.SRTT.Seconds())
	}
	m.Loss.Add(float64(st.Retransmits - m.lastRetx))
	m.lastRetx = st.Retransmits
}

// ThroughputForecast returns the predicted achievable rate.
func (m *Monitor) ThroughputForecast() units.BitRate {
	return units.BitRate(m.Throughput.Forecast()) * units.Kbps
}

// RTTForecast returns the predicted round-trip time.
func (m *Monitor) RTTForecast() time.Duration {
	return time.Duration(m.RTT.Forecast() * float64(time.Second))
}

// LossForecast returns the predicted retransmissions per interval.
func (m *Monitor) LossForecast() float64 { return m.Loss.Forecast() }

// Stop ends sampling.
func (m *Monitor) Stop() {
	m.stopped = true
	m.timer.Cancel()
}
