package nws

import (
	"math"
	"testing"
	"time"

	"mpichgq/internal/netsim"
	"mpichgq/internal/sim"
	"mpichgq/internal/tcpsim"
	"mpichgq/internal/units"
)

func TestForecasterConstantSeries(t *testing.T) {
	f := NewForecaster()
	for i := 0; i < 50; i++ {
		f.Add(42)
	}
	if got := f.Forecast(); got != 42 {
		t.Fatalf("forecast = %v, want 42", got)
	}
}

func TestForecasterTracksShift(t *testing.T) {
	f := NewForecaster()
	for i := 0; i < 30; i++ {
		f.Add(10)
	}
	for i := 0; i < 30; i++ {
		f.Add(100)
	}
	got := f.Forecast()
	if got < 90 || got > 110 {
		t.Fatalf("forecast after level shift = %v, want ~100", got)
	}
}

func TestForecasterMedianBeatsMeanOnSpikes(t *testing.T) {
	// A series that is 10 with occasional huge spikes: the median
	// predictors should win the battle and forecast ~10.
	f := NewForecaster()
	rng := sim.NewRNG(1)
	for i := 0; i < 200; i++ {
		v := 10.0
		if rng.Intn(10) == 0 {
			v = 1000
		}
		f.Add(v)
	}
	if got := f.Forecast(); got > 50 {
		t.Fatalf("forecast on spiky series = %v (best=%s), want near 10", got, f.Best())
	}
}

func TestForecasterNoSamples(t *testing.T) {
	f := NewForecaster()
	if f.Forecast() != 0 || f.Len() != 0 {
		t.Fatal("empty forecaster should report zero")
	}
}

func TestForecasterHistoryBounded(t *testing.T) {
	f := NewForecaster()
	for i := 0; i < 1000; i++ {
		f.Add(float64(i))
	}
	if f.Len() > 128 {
		t.Fatalf("history length %d exceeds bound", f.Len())
	}
}

func TestMonitorSamplesThroughput(t *testing.T) {
	k := sim.New(1)
	net := netsim.New(k)
	a, b := net.AddNode("a"), net.AddNode("b")
	net.Connect(a, b, 10*units.Mbps, time.Millisecond)
	net.ComputeRoutes()
	sa := tcpsim.NewStack(a, tcpsim.DefaultOptions())
	sb := tcpsim.NewStack(b, tcpsim.DefaultOptions())
	var mon *Monitor
	k.Spawn("server", func(ctx *sim.Ctx) {
		l, _ := sb.Listen(80)
		c, err := l.Accept(ctx)
		if err != nil {
			return
		}
		for {
			if _, err := c.Read(ctx, units.MB); err != nil {
				return
			}
		}
	})
	k.Spawn("client", func(ctx *sim.Ctx) {
		c, err := sa.Dial(ctx, b.Addr(), 80)
		if err != nil {
			t.Error(err)
			return
		}
		mon = Attach(k, c, 100*time.Millisecond)
		// Steady 4 Mb/s paced stream.
		gap := (4 * units.Mbps).TimeToSend(10 * units.KB)
		for ctx.Now() < 10*time.Second {
			c.Write(ctx, 10*units.KB)
			ctx.Sleep(gap)
		}
	})
	if err := k.RunUntil(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	got := mon.ThroughputForecast()
	if math.Abs(float64(got)-float64(4*units.Mbps)) > float64(units.Mbps) {
		t.Fatalf("throughput forecast = %v, want ~4 Mb/s", got)
	}
	rtt := mon.RTTForecast()
	if rtt < time.Millisecond || rtt > 10*time.Millisecond {
		t.Fatalf("RTT forecast = %v, want ~2-3 ms", rtt)
	}
	if mon.LossForecast() != 0 {
		t.Fatalf("loss forecast = %v on a clean path", mon.LossForecast())
	}
	mon.Stop()
}

func TestMonitorStopCeasesSampling(t *testing.T) {
	k := sim.New(1)
	net := netsim.New(k)
	a, b := net.AddNode("a"), net.AddNode("b")
	net.Connect(a, b, 10*units.Mbps, time.Millisecond)
	net.ComputeRoutes()
	sa := tcpsim.NewStack(a, tcpsim.DefaultOptions())
	sb := tcpsim.NewStack(b, tcpsim.DefaultOptions())
	var mon *Monitor
	k.Spawn("server", func(ctx *sim.Ctx) {
		l, _ := sb.Listen(80)
		l.Accept(ctx)
	})
	k.Spawn("client", func(ctx *sim.Ctx) {
		c, err := sa.Dial(ctx, b.Addr(), 80)
		if err != nil {
			return
		}
		mon = Attach(k, c, 100*time.Millisecond)
	})
	k.RunUntil(time.Second)
	mon.Stop()
	n := mon.Throughput.Len()
	k.RunUntil(5 * time.Second)
	if mon.Throughput.Len() != n {
		t.Fatal("monitor kept sampling after Stop")
	}
}
