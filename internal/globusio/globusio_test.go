package globusio

import (
	"testing"
	"time"

	"mpichgq/internal/dsrt"
	"mpichgq/internal/netsim"
	"mpichgq/internal/sim"
	"mpichgq/internal/tcpsim"
	"mpichgq/internal/units"
)

// pair returns two established, wrapped connections over a fast link.
func pair(t *testing.T, k *sim.Kernel, rate units.BitRate, cfgA, cfgB Config) (*IO, *IO) {
	t.Helper()
	n := netsim.New(k)
	a := n.AddNode("a")
	b := n.AddNode("b")
	n.Connect(a, b, rate, time.Millisecond)
	n.ComputeRoutes()
	sa := tcpsim.NewStack(a, tcpsim.DefaultOptions())
	sb := tcpsim.NewStack(b, tcpsim.DefaultOptions())
	var ioA, ioB *IO
	k.Spawn("accept", func(ctx *sim.Ctx) {
		l, err := sb.Listen(80)
		if err != nil {
			t.Error(err)
			return
		}
		c, err := l.Accept(ctx)
		if err != nil {
			t.Error(err)
			return
		}
		ioB = Wrap(k, c, cfgB)
	})
	k.Spawn("dial", func(ctx *sim.Ctx) {
		c, err := sa.Dial(ctx, b.Addr(), 80)
		if err != nil {
			t.Error(err)
			return
		}
		ioA = Wrap(k, c, cfgA)
	})
	if err := k.RunUntil(time.Second); err != nil {
		t.Fatal(err)
	}
	if ioA == nil || ioB == nil {
		t.Fatal("connection setup failed")
	}
	return ioA, ioB
}

func TestPlainWriteRead(t *testing.T) {
	k := sim.New(1)
	ioA, ioB := pair(t, k, 10*units.Mbps, Config{}, Config{})
	var got units.ByteSize
	k.Spawn("reader", func(ctx *sim.Ctx) {
		if err := ioB.ReadFull(ctx, 50*units.KB); err != nil {
			t.Error(err)
			return
		}
		got = 50 * units.KB
	})
	k.Spawn("writer", func(ctx *sim.Ctx) {
		if err := ioA.Write(ctx, 50*units.KB); err != nil {
			t.Error(err)
		}
	})
	if err := k.RunUntil(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got != 50*units.KB {
		t.Fatal("transfer incomplete")
	}
	if ioA.Stats().BytesWritten != 50*units.KB || ioB.Stats().BytesRead != 50*units.KB {
		t.Fatalf("stats = %+v / %+v", ioA.Stats(), ioB.Stats())
	}
}

func TestCPUChargingSlowsWriter(t *testing.T) {
	// With a hog on the CPU and a copy cost, the same transfer takes
	// about twice as long as with a dedicated CPU.
	run := func(withHog bool) time.Duration {
		k := sim.New(1)
		cpu := dsrt.NewCPU(k, "host")
		task := cpu.NewTask("writer")
		cfg := Config{Task: task, CopyCostPerKB: 100 * time.Microsecond}
		ioA, ioB := pair(t, k, 1000*units.Mbps, cfg, Config{})
		if withHog {
			hog := cpu.NewTask("hog")
			k.Spawn("hog", func(ctx *sim.Ctx) {
				for ctx.Now() < 100*time.Second {
					hog.Compute(ctx, 10*time.Millisecond)
				}
			})
		}
		var done time.Duration
		k.Spawn("reader", func(ctx *sim.Ctx) {
			if err := ioB.ReadFull(ctx, units.MB); err != nil {
				t.Error(err)
			}
		})
		k.Spawn("writer", func(ctx *sim.Ctx) {
			start := ctx.Now()
			if err := ioA.Write(ctx, units.MB); err != nil {
				t.Error(err)
				return
			}
			ioA.Drain(ctx)
			done = ctx.Now() - start
		})
		if err := k.RunUntil(100 * time.Second); err != nil {
			t.Fatal(err)
		}
		if done == 0 {
			t.Fatal("writer did not finish")
		}
		return done
	}
	solo := run(false)
	contended := run(true)
	// 1 MB at 100 µs/KB = 100 ms of CPU. Solo ~100 ms; at half share
	// ~200 ms.
	ratio := float64(contended) / float64(solo)
	if ratio < 1.7 || ratio > 2.5 {
		t.Fatalf("contention ratio = %.2f (solo %v, contended %v), want ~2", ratio, solo, contended)
	}
}

func TestShaperPacesWrites(t *testing.T) {
	// A 1 Mb/s shaper must stretch a 125 KB burst (1 Mbit) to ~1 s
	// even on a 100 Mb/s link.
	k := sim.New(1)
	sh := &ShaperConfig{Rate: units.Mbps, Depth: 10 * units.KB}
	ioA, ioB := pair(t, k, 100*units.Mbps, Config{Shaper: sh, WriteChunk: 10 * units.KB}, Config{})
	var done time.Duration
	k.Spawn("reader", func(ctx *sim.Ctx) {
		if err := ioB.ReadFull(ctx, 125*units.KB); err != nil {
			t.Error(err)
		}
		done = ctx.Now()
	})
	start := k.Now()
	k.Spawn("writer", func(ctx *sim.Ctx) {
		if err := ioA.Write(ctx, 125*units.KB); err != nil {
			t.Error(err)
		}
	})
	if err := k.RunUntil(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	elapsed := done - start
	if elapsed < 800*time.Millisecond || elapsed > 1300*time.Millisecond {
		t.Fatalf("shaped transfer took %v, want ~1s", elapsed)
	}
	if ioA.Stats().ShapeDelay == 0 {
		t.Fatal("shaper reported no pacing delay")
	}
}

func TestShaperAllowsBurstUpToDepth(t *testing.T) {
	// A write within the bucket depth goes out immediately.
	k := sim.New(1)
	sh := &ShaperConfig{Rate: units.Mbps, Depth: 50 * units.KB}
	ioA, ioB := pair(t, k, 100*units.Mbps, Config{Shaper: sh, WriteChunk: 50 * units.KB}, Config{})
	var done time.Duration
	k.Spawn("reader", func(ctx *sim.Ctx) {
		if err := ioB.ReadFull(ctx, 50*units.KB); err != nil {
			t.Error(err)
		}
		done = ctx.Now()
	})
	start := k.Now()
	k.Spawn("writer", func(ctx *sim.Ctx) {
		ioA.Write(ctx, 50*units.KB)
	})
	if err := k.RunUntil(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	// 50 KB at 100 Mb/s is ~4 ms + RTT; far below the 400 ms the
	// shaper rate alone would impose.
	if done-start > 100*time.Millisecond {
		t.Fatalf("burst within depth took %v, should be fast", done-start)
	}
	if ioA.Stats().ShapeDelay != 0 {
		t.Fatal("burst within depth should not be delayed")
	}
}

func TestWriteMsgThroughWrapper(t *testing.T) {
	k := sim.New(1)
	ioA, ioB := pair(t, k, 10*units.Mbps, Config{}, Config{})
	var n units.ByteSize
	var obj any
	k.Spawn("reader", func(ctx *sim.Ctx) {
		n, obj, _ = ioB.ReadMsg(ctx)
	})
	k.Spawn("writer", func(ctx *sim.Ctx) {
		// Message larger than one chunk: marker must arrive at the
		// very end.
		if err := ioA.WriteMsg(ctx, 200*units.KB, "tail"); err != nil {
			t.Error(err)
		}
	})
	if err := k.RunUntil(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	if n != 200*units.KB || obj != "tail" {
		t.Fatalf("ReadMsg = %d/%v, want 200KB/tail", n, obj)
	}
}

func TestSetSockBufs(t *testing.T) {
	k := sim.New(1)
	ioA, _ := pair(t, k, 10*units.Mbps, Config{}, Config{})
	ioA.SetSockBufs(8*units.KB, 16*units.KB)
	if ioA.Conn().SndBuf() != 8*units.KB {
		t.Fatalf("snd buf = %v, want 8KB", ioA.Conn().SndBuf())
	}
}
