// Package globusio is the socket wrapper layer of the MPICH-GQ stack:
// "the globus-io library provides a convenient wrapper for the
// low-level socket calls used to implement wide area transport;
// traffic shaping can also be performed here."
//
// It adds three things to a raw tcpsim connection:
//
//   - Socket-buffer tuning (the §5.5 lesson: "applications that use
//     TCP and want high performance need careful tuning (such as
//     socket buffer sizes)").
//   - CPU accounting: each write and read charges per-byte copy cost
//     to the process's DSRT task, so CPU contention throttles
//     achievable bandwidth (Figures 8 and 9).
//   - Optional end-system traffic shaping: a token-bucket pacer that
//     smooths application bursts before they reach the edge router's
//     policer — the alternative approach §5.4 proposes for dealing
//     with burstiness.
package globusio

import (
	"time"

	"mpichgq/internal/dsrt"
	"mpichgq/internal/sim"
	"mpichgq/internal/tcpsim"
	"mpichgq/internal/units"
)

// ShaperConfig configures end-system pacing: writes are released into
// the socket no faster than Rate, with bursts up to Depth.
type ShaperConfig struct {
	Rate  units.BitRate
	Depth units.ByteSize
}

// Config configures a wrapped connection.
type Config struct {
	// Task, if non-nil, is charged CPU time for socket copies.
	Task *dsrt.Task
	// CopyCostPerKB is CPU time per KB moved through the socket.
	// Zero means free I/O. (A few hundred ns/KB models a late-90s
	// hosts' copy+checksum path; see internal/experiments for the
	// calibrated values.)
	CopyCostPerKB time.Duration
	// Shaper enables end-system pacing when non-nil.
	Shaper *ShaperConfig
	// WriteChunk is the granularity of socket writes (and of CPU
	// charging). Default 64 KB.
	WriteChunk units.ByteSize
}

// IO is a QoS-aware socket: a tcpsim.Conn plus CPU accounting and
// optional pacing. Whole messages are written atomically: concurrent
// writers (e.g. nonblocking MPI sends) are serialized per connection.
type IO struct {
	conn    *tcpsim.Conn
	k       *sim.Kernel
	cfg     Config
	writeMu *sim.Mutex

	// Shaper state (token bucket in bytes).
	tokens     float64
	lastRefill time.Duration

	bytesWritten int64
	bytesRead    int64
	shapeDelay   time.Duration // cumulative time spent pacing
}

// Wrap adorns an established connection.
func Wrap(k *sim.Kernel, conn *tcpsim.Conn, cfg Config) *IO {
	if cfg.WriteChunk <= 0 {
		cfg.WriteChunk = 64 * units.KB
	}
	io := &IO{conn: conn, k: k, cfg: cfg, writeMu: sim.NewMutex(k), lastRefill: k.Now()}
	if cfg.Shaper != nil {
		io.tokens = float64(cfg.Shaper.Depth)
	}
	return io
}

// Conn returns the underlying transport connection.
func (io *IO) Conn() *tcpsim.Conn { return io.conn }

// SetSockBufs tunes both socket buffers.
func (io *IO) SetSockBufs(snd, rcv units.ByteSize) {
	io.conn.SetSndBuf(snd)
	io.conn.SetRcvBuf(rcv)
}

// chargeCPU blocks the caller while the copy cost for n bytes is
// scheduled on the task.
func (io *IO) chargeCPU(ctx *sim.Ctx, n units.ByteSize) {
	if io.cfg.Task == nil || io.cfg.CopyCostPerKB <= 0 || n <= 0 {
		return
	}
	cost := time.Duration(float64(io.cfg.CopyCostPerKB) * float64(n) / 1000)
	if cost > 0 {
		io.cfg.Task.Compute(ctx, cost)
	}
}

// pace blocks until the shaper admits n bytes.
func (io *IO) pace(ctx *sim.Ctx, n units.ByteSize) {
	sh := io.cfg.Shaper
	if sh == nil || sh.Rate <= 0 {
		return
	}
	now := io.k.Now()
	io.tokens += float64(sh.Rate) * (now - io.lastRefill).Seconds() / 8
	if io.tokens > float64(sh.Depth) {
		io.tokens = float64(sh.Depth)
	}
	io.lastRefill = now
	if deficit := float64(n) - io.tokens; deficit > 0 {
		wait := time.Duration(deficit * 8 / float64(sh.Rate) * float64(time.Second))
		io.shapeDelay += wait
		ctx.Sleep(wait)
		io.tokens += float64(sh.Rate) * (io.k.Now() - io.lastRefill).Seconds() / 8
		io.lastRefill = io.k.Now()
	}
	io.tokens -= float64(n)
}

// Write sends n bytes, charging CPU and pacing per chunk.
func (io *IO) Write(ctx *sim.Ctx, n units.ByteSize) error {
	return io.write(ctx, n, nil, false)
}

// WriteMsg sends n bytes with obj attached at the end (see
// tcpsim.Conn.WriteMsg).
func (io *IO) WriteMsg(ctx *sim.Ctx, n units.ByteSize, obj any) error {
	return io.write(ctx, n, obj, true)
}

func (io *IO) write(ctx *sim.Ctx, n units.ByteSize, obj any, mark bool) error {
	io.writeMu.Lock(ctx)
	defer io.writeMu.Unlock()
	remaining := n
	for remaining > 0 {
		chunk := io.cfg.WriteChunk
		if chunk > remaining {
			chunk = remaining
		}
		io.chargeCPU(ctx, chunk)
		io.pace(ctx, chunk)
		last := remaining == chunk
		var err error
		if mark && last {
			err = io.conn.WriteMsg(ctx, chunk, obj)
		} else {
			err = io.conn.Write(ctx, chunk)
		}
		if err != nil {
			return err
		}
		io.bytesWritten += int64(chunk)
		remaining -= chunk
	}
	return nil
}

// Read receives up to max bytes, charging CPU for the copy.
func (io *IO) Read(ctx *sim.Ctx, max units.ByteSize) (units.ByteSize, error) {
	n, err := io.conn.Read(ctx, max)
	io.chargeCPU(ctx, n)
	io.bytesRead += int64(n)
	return n, err
}

// ReadFull receives exactly n bytes.
func (io *IO) ReadFull(ctx *sim.Ctx, n units.ByteSize) error {
	for n > 0 {
		got, err := io.Read(ctx, n)
		if err != nil {
			return err
		}
		n -= got
	}
	return nil
}

// ReadMsg receives one marked message.
func (io *IO) ReadMsg(ctx *sim.Ctx) (units.ByteSize, any, error) {
	n, obj, err := io.conn.ReadMsg(ctx)
	io.chargeCPU(ctx, n)
	io.bytesRead += int64(n)
	return n, obj, err
}

// Drain blocks until all written data is acknowledged.
func (io *IO) Drain(ctx *sim.Ctx) error { return io.conn.Drain(ctx) }

// Close initiates a graceful shutdown.
func (io *IO) Close() { io.conn.Close() }

// Stats returns cumulative wrapper counters.
func (io *IO) Stats() Stats {
	return Stats{
		BytesWritten: units.ByteSize(io.bytesWritten),
		BytesRead:    units.ByteSize(io.bytesRead),
		ShapeDelay:   io.shapeDelay,
	}
}

// Stats holds wrapper-level counters.
type Stats struct {
	BytesWritten units.ByteSize
	BytesRead    units.ByteSize
	ShapeDelay   time.Duration
}
