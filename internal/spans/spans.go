// Package spans is the causal-tracing layer shared by every simulated
// subsystem: deterministic, sim-clock-timestamped spans with
// parent/child links, typed attributes, and a terminal status.
//
// A trace groups the spans of one logical story — the lifetime of a
// reservation, one two-phase co-reservation attempt, a watchdog
// breach/repair episode, a fault-injection scenario, or a TCP flow.
// Trace IDs are derived by splitmix64-style hashing of stable
// simulation identifiers (DeriveTrace / DeriveTraceString), never from
// wall clocks or ambient randomness, so two runs at the same seed
// produce bit-identical traces regardless of host or worker count.
//
// The Tracer is disabled by default: Begin returns a nil *Span and
// every *Span method is a nil-safe no-op, so instrumented hot paths
// pay one atomic load when tracing is off. Each sim kernel owns one
// Tracer (sim.Kernel.Tracer()) whose clock is the kernel's virtual
// clock; span IDs are allocated from a per-tracer counter, which is
// deterministic because a kernel admits exactly one runnable
// goroutine at a time.
//
// Completed spans land in a fixed-capacity ring (oldest evicted
// first, Dropped reports how many) that concurrent readers — the gqd
// daemon's HTTP handlers — may Snapshot or Query while the simulation
// is still running.
//
// The package depends only on the standard library and holds no
// global state.
package spans

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// TraceID identifies a trace: the set of causally related spans that
// tell one story. Zero means "no trace".
type TraceID uint64

// String renders the trace ID the way exporters and gqd print it.
func (t TraceID) String() string { return fmt.Sprintf("%016x", uint64(t)) }

// ParseTraceID parses the hex form produced by TraceID.String.
func ParseTraceID(s string) (TraceID, bool) {
	var v uint64
	if len(s) == 0 || len(s) > 16 {
		return 0, false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		var d uint64
		switch {
		case c >= '0' && c <= '9':
			d = uint64(c - '0')
		case c >= 'a' && c <= 'f':
			d = uint64(c-'a') + 10
		case c >= 'A' && c <= 'F':
			d = uint64(c-'A') + 10
		default:
			return 0, false
		}
		v = v<<4 | d
	}
	return TraceID(v), true
}

// SpanID identifies a span within its tracer. Zero means "no parent".
type SpanID uint64

// Status is a span's terminal disposition.
type Status uint8

// Span statuses. The zero value is StatusOK so the common success
// path needs no explicit SetStatus call.
const (
	// StatusOK: the operation completed as intended.
	StatusOK Status = iota
	// StatusBreached: the operation completed but a QoS promise was
	// violated during it (watchdog breach, recovery episode).
	StatusBreached
	// StatusFailed: the operation failed (RPC deadline, admission
	// reject, aborted prepare, rollback).
	StatusFailed
	// StatusLeaked: the operation was abandoned without an explicit
	// end (an expired lease reclaimed by the server).
	StatusLeaked
)

var statusNames = [...]string{
	StatusOK:       "ok",
	StatusBreached: "breached",
	StatusFailed:   "failed",
	StatusLeaked:   "leaked",
}

// String returns the status's wire name.
func (s Status) String() string {
	if int(s) < len(statusNames) {
		return statusNames[s]
	}
	return "unknown"
}

// ParseStatus maps a wire name back to its Status.
func ParseStatus(s string) (Status, bool) {
	for i, name := range statusNames {
		if name == s {
			return Status(i), true
		}
	}
	return 0, false
}

// Namespace partitions the trace-ID space so the same numeric key in
// different subsystems cannot collide.
type Namespace uint64

// Trace-ID namespaces.
const (
	// NSReservation keys traces by GARA reservation ID.
	NSReservation Namespace = iota + 1
	// NSCoReserve keys traces by coordinator attempt number.
	NSCoReserve
	// NSWatchdog keys traces by (rank, context, episode) of a QoS
	// watchdog breach/repair loop.
	NSWatchdog
	// NSFault keys traces by fault-scenario name.
	NSFault
	// NSFlow keys traces by TCP 4-tuple hash.
	NSFlow
	// NSRank keys traces by MPI world rank: one trace tells the
	// crash/restart story of one rank across its incarnations.
	NSRank
)

// mix is the splitmix64 output finalizer (same construction as
// experiments.DeriveSeed): a bijective avalanche over 64 bits.
func mix(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// DeriveTrace deterministically maps a stable simulation identifier
// (reservation ID, attempt counter, flow hash) to a trace ID. No wall
// clock, no ambient randomness: the same (ns, key) always yields the
// same ID, on any host, at any worker count.
func DeriveTrace(ns Namespace, key uint64) TraceID {
	return TraceID(mix(uint64(ns)*0x9e3779b97f4a7c15 + mix(key+0x9e3779b97f4a7c15)))
}

// DeriveTraceString is DeriveTrace for string keys (scenario names,
// link names): FNV-1a folded through the same finalizer.
func DeriveTraceString(ns Namespace, s string) TraceID {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * 1099511628211
	}
	return DeriveTrace(ns, h)
}

// Context carries a trace across a propagation boundary — a
// control-plane request struct, a server-side dispatch — so callee
// spans parent under the caller's span. The zero Context propagates
// nothing.
type Context struct {
	Trace  TraceID
	Parent SpanID
}

// Valid reports whether the context names a trace.
func (c Context) Valid() bool { return c.Trace != 0 }

// Attr is one typed span attribute. Exactly one of Str/Val is
// meaningful; Str == "" means the attribute is numeric.
type Attr struct {
	Key string
	Str string
	Val int64
}

// Span is one timed operation. Fields are populated by the Tracer;
// instrumentation sites interact through the nil-safe methods, so a
// site needs no "is tracing on?" branching of its own.
type Span struct {
	Trace   TraceID
	ID      SpanID
	Parent  SpanID
	Name    string
	Subject string
	// Start is the sim-kernel time Begin was called; Dur the virtual
	// time until End.
	Start time.Duration
	Dur   time.Duration
	Status Status
	Attrs  []Attr

	tr    *Tracer
	ended bool
}

// SpanID returns the span's ID, or zero for a nil span — the form
// instrumentation uses to parent children under a possibly-disabled
// span.
func (s *Span) SpanID() SpanID {
	if s == nil {
		return 0
	}
	return s.ID
}

// TraceID returns the span's trace, or zero for a nil span.
func (s *Span) TraceID() TraceID {
	if s == nil {
		return 0
	}
	return s.Trace
}

// Ctx returns the span's propagation context (zero for nil).
func (s *Span) Ctx() Context {
	if s == nil {
		return Context{}
	}
	return Context{Trace: s.Trace, Parent: s.ID}
}

// SetStatus records the span's terminal disposition. Nil-safe;
// returns the span for chaining.
func (s *Span) SetStatus(st Status) *Span {
	if s != nil {
		s.Status = st
	}
	return s
}

// Int attaches a numeric attribute. Nil-safe; returns the span.
func (s *Span) Int(key string, v int64) *Span {
	if s != nil {
		s.Attrs = append(s.Attrs, Attr{Key: key, Val: v})
	}
	return s
}

// Str attaches a string attribute (val must be interned or computed
// at setup time — same contract as Recorder.Emit subjects). Nil-safe.
func (s *Span) Str(key, val string) *Span {
	if s != nil {
		s.Attrs = append(s.Attrs, Attr{Key: key, Str: val})
	}
	return s
}

// Attr returns the named attribute and whether it exists.
func (s *Span) Attr(key string) (Attr, bool) {
	if s == nil {
		return Attr{}, false
	}
	for _, a := range s.Attrs {
		if a.Key == key {
			return a, true
		}
	}
	return Attr{}, false
}

// End completes the span at the current sim time and commits it to
// the tracer's ring. Idempotent and nil-safe: the second End (or an
// End on a disabled-tracer nil handle) is a no-op.
func (s *Span) End() {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	s.Dur = s.tr.clock() - s.Start
	s.tr.commit(s)
}

// EndStatus sets the status and ends the span in one call.
func (s *Span) EndStatus(st Status) {
	if s == nil {
		return
	}
	s.Status = st
	s.End()
}

// DefaultCapacity is the completed-span ring size a fresh Tracer
// starts with; long daemon runs raise it via SetCapacity.
const DefaultCapacity = 8192

// Tracer allocates span IDs, timestamps spans from an injected clock
// (the sim kernel's virtual Now), and retains completed spans in a
// ring for queries and export. Safe for one writer (the kernel
// goroutine) plus any number of concurrent readers.
type Tracer struct {
	clock   func() time.Duration
	enabled atomic.Bool

	mu     sync.Mutex
	nextID SpanID
	buf    []Span
	next   uint64 // total spans ever committed
	first  uint64 // index of the oldest retained span
	active int
}

// New creates a disabled tracer. clock supplies timestamps — pass the
// sim kernel's Now. A nil clock records zero timestamps.
func New(clock func() time.Duration) *Tracer {
	if clock == nil {
		clock = func() time.Duration { return 0 }
	}
	return &Tracer{clock: clock, buf: make([]Span, DefaultCapacity)}
}

// SetEnabled turns tracing on or off. Enable before the run starts;
// spans begun while disabled are lost (their handles are nil).
func (t *Tracer) SetEnabled(on bool) { t.enabled.Store(on) }

// Enabled reports whether Begin returns live spans.
func (t *Tracer) Enabled() bool { return t != nil && t.enabled.Load() }

// Begin opens a span. Returns nil when tracing is disabled — every
// *Span method tolerates that, so call sites never branch.
func (t *Tracer) Begin(trace TraceID, parent SpanID, name, subject string) *Span {
	if t == nil || !t.enabled.Load() {
		return nil
	}
	start := t.clock()
	t.mu.Lock()
	t.nextID++
	id := t.nextID
	t.active++
	t.mu.Unlock()
	return &Span{
		Trace: trace, ID: id, Parent: parent,
		Name: name, Subject: subject, Start: start, tr: t,
	}
}

// commit moves an ended span into the ring.
func (t *Tracer) commit(s *Span) {
	t.mu.Lock()
	if t.next-t.first == uint64(len(t.buf)) {
		t.first++ // evict the oldest
	}
	rec := *s
	rec.tr = nil
	t.buf[t.next%uint64(len(t.buf))] = rec
	t.next++
	t.active--
	t.mu.Unlock()
}

// Len returns how many completed spans the ring retains.
func (t *Tracer) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return int(t.next - t.first)
}

// Active returns how many spans are begun but not yet ended.
func (t *Tracer) Active() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.active
}

// Dropped returns how many completed spans wraparound has evicted.
func (t *Tracer) Dropped() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.first
}

// Capacity returns the ring size.
func (t *Tracer) Capacity() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.buf)
}

// SetCapacity resizes the ring, retaining the most recent spans.
func (t *Tracer) SetCapacity(n int) {
	if n < 1 {
		n = 1
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	old := t.retained()
	t.buf = make([]Span, n)
	if len(old) > n {
		old = old[len(old)-n:]
	}
	first := t.next - uint64(len(old))
	for i, s := range old {
		t.buf[(first+uint64(i))%uint64(n)] = s
	}
	t.first = first
}

// retained returns live spans in commit order. Caller holds mu.
func (t *Tracer) retained() []Span {
	out := make([]Span, 0, t.next-t.first)
	for i := t.first; i < t.next; i++ {
		out = append(out, t.buf[i%uint64(len(t.buf))])
	}
	return out
}

// Snapshot returns every retained completed span in commit order
// (which is End order — children before parents).
func (t *Tracer) Snapshot() []Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.retained()
}

// Filter selects spans for Query. The zero Filter matches everything.
type Filter struct {
	// Trace, when nonzero, matches only that trace.
	Trace TraceID
	// Name, when nonempty, matches the span name exactly.
	Name string
	// NamePrefix, when nonempty, matches span names by prefix
	// ("rpc." selects every RPC span).
	NamePrefix string
	// Subject, when nonempty, matches the span subject exactly.
	Subject string
	// Status is consulted only when HasStatus is set (StatusOK is the
	// zero value, so an explicit flag is needed to filter on it).
	Status    Status
	HasStatus bool
	// MinDur, when positive, keeps only spans at least that long.
	MinDur time.Duration
	// AttrKey, when nonempty, requires an attribute with that key
	// whose value equals AttrStr (if nonempty) or AttrVal.
	AttrKey string
	AttrStr string
	AttrVal int64
	// Limit, when positive, caps the result count (most recent kept).
	Limit int
}

func (f Filter) match(s *Span) bool {
	if f.Trace != 0 && s.Trace != f.Trace {
		return false
	}
	if f.Name != "" && s.Name != f.Name {
		return false
	}
	if f.NamePrefix != "" && (len(s.Name) < len(f.NamePrefix) || s.Name[:len(f.NamePrefix)] != f.NamePrefix) {
		return false
	}
	if f.Subject != "" && s.Subject != f.Subject {
		return false
	}
	if f.HasStatus && s.Status != f.Status {
		return false
	}
	if f.MinDur > 0 && s.Dur < f.MinDur {
		return false
	}
	if f.AttrKey != "" {
		a, ok := s.Attr(f.AttrKey)
		if !ok {
			return false
		}
		if f.AttrStr != "" {
			if a.Str != f.AttrStr {
				return false
			}
		} else if a.Val != f.AttrVal {
			return false
		}
	}
	return true
}

// Query returns retained spans matching f, in commit order. With a
// Limit it keeps the most recent matches.
func (t *Tracer) Query(f Filter) []Span {
	all := t.Snapshot()
	out := make([]Span, 0, len(all))
	for i := range all {
		if f.match(&all[i]) {
			out = append(out, all[i])
		}
	}
	if f.Limit > 0 && len(out) > f.Limit {
		out = out[len(out)-f.Limit:]
	}
	return out
}

// Trace returns every retained span of one trace, sorted by
// (Start, ID) — the order exporters and operators want.
func (t *Tracer) Trace(id TraceID) []Span {
	out := t.Query(Filter{Trace: id})
	SortSpans(out)
	return out
}
