package spans

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock is a settable virtual clock for tests.
type fakeClock struct{ now time.Duration }

func (c *fakeClock) Now() time.Duration { return c.now }

func newTestTracer() (*Tracer, *fakeClock) {
	c := &fakeClock{}
	t := New(c.Now)
	t.SetEnabled(true)
	return t, c
}

func TestDisabledTracerIsInert(t *testing.T) {
	tr := New(nil)
	sp := tr.Begin(1, 0, "op", "subj")
	if sp != nil {
		t.Fatalf("Begin on disabled tracer = %v, want nil", sp)
	}
	// Every method must tolerate the nil handle.
	sp.SetStatus(StatusFailed).Int("k", 1).Str("s", "v")
	sp.End()
	sp.EndStatus(StatusLeaked)
	if id := sp.SpanID(); id != 0 {
		t.Fatalf("nil span SpanID = %d, want 0", id)
	}
	if ctx := sp.Ctx(); ctx.Valid() {
		t.Fatalf("nil span Ctx = %+v, want invalid", ctx)
	}
	if tr.Len() != 0 || tr.Active() != 0 {
		t.Fatalf("disabled tracer retained spans: len=%d active=%d", tr.Len(), tr.Active())
	}
	var nilTracer *Tracer
	if nilTracer.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	if sp := nilTracer.Begin(1, 0, "op", ""); sp != nil {
		t.Fatal("nil tracer Begin returned a span")
	}
}

func TestBeginEndLifecycle(t *testing.T) {
	tr, clk := newTestTracer()
	clk.now = 10 * time.Millisecond
	root := tr.Begin(DeriveTrace(NSReservation, 7), 0, "gara.reserve", "net")
	if root == nil {
		t.Fatal("Begin returned nil on enabled tracer")
	}
	root.Int("res", 7)
	clk.now = 15 * time.Millisecond
	child := tr.Begin(root.TraceID(), root.SpanID(), "rpc.prepare", "dom1")
	clk.now = 20 * time.Millisecond
	child.EndStatus(StatusFailed)
	if tr.Active() != 1 {
		t.Fatalf("Active = %d, want 1", tr.Active())
	}
	clk.now = 30 * time.Millisecond
	root.End()
	root.End() // idempotent

	got := tr.Snapshot()
	if len(got) != 2 {
		t.Fatalf("Snapshot len = %d, want 2", len(got))
	}
	// Commit order is End order: child first.
	c, r := got[0], got[1]
	if c.Name != "rpc.prepare" || c.Parent != r.ID || c.Trace != r.Trace {
		t.Fatalf("child not parent-linked: child=%+v root=%+v", c, r)
	}
	if c.Status != StatusFailed || r.Status != StatusOK {
		t.Fatalf("statuses = %v/%v, want failed/ok", c.Status, r.Status)
	}
	if c.Start != 15*time.Millisecond || c.Dur != 5*time.Millisecond {
		t.Fatalf("child timing = %v+%v", c.Start, c.Dur)
	}
	if r.Start != 10*time.Millisecond || r.Dur != 20*time.Millisecond {
		t.Fatalf("root timing = %v+%v", r.Start, r.Dur)
	}
	if a, ok := r.Attr("res"); !ok || a.Val != 7 {
		t.Fatalf("root res attr = %+v ok=%v", a, ok)
	}
}

func TestDeriveTraceDeterministic(t *testing.T) {
	a := DeriveTrace(NSReservation, 42)
	b := DeriveTrace(NSReservation, 42)
	if a != b {
		t.Fatalf("DeriveTrace not deterministic: %v != %v", a, b)
	}
	if a == DeriveTrace(NSCoReserve, 42) {
		t.Fatal("namespaces collide")
	}
	if a == DeriveTrace(NSReservation, 43) {
		t.Fatal("keys collide")
	}
	if DeriveTraceString(NSFault, "figG-chaos") != DeriveTraceString(NSFault, "figG-chaos") {
		t.Fatal("DeriveTraceString not deterministic")
	}
	if DeriveTrace(NSReservation, 1) == 0 {
		t.Fatal("derived trace is zero")
	}
	// Round-trip through the hex form.
	id, ok := ParseTraceID(a.String())
	if !ok || id != a {
		t.Fatalf("ParseTraceID(%q) = %v, %v", a.String(), id, ok)
	}
	if _, ok := ParseTraceID("xyz"); ok {
		t.Fatal("ParseTraceID accepted garbage")
	}
}

func TestRingEviction(t *testing.T) {
	tr, clk := newTestTracer()
	tr.SetCapacity(4)
	for i := 0; i < 10; i++ {
		clk.now = time.Duration(i) * time.Millisecond
		tr.Begin(1, 0, "op", "s").Int("i", int64(i)).End()
	}
	if tr.Len() != 4 {
		t.Fatalf("Len = %d, want 4", tr.Len())
	}
	if tr.Dropped() != 6 {
		t.Fatalf("Dropped = %d, want 6", tr.Dropped())
	}
	got := tr.Snapshot()
	if a, _ := got[0].Attr("i"); a.Val != 6 {
		t.Fatalf("oldest retained = %d, want 6", a.Val)
	}
	// Growing the ring keeps the retained spans.
	tr.SetCapacity(16)
	if tr.Len() != 4 {
		t.Fatalf("Len after grow = %d, want 4", tr.Len())
	}
	if a, _ := tr.Snapshot()[3].Attr("i"); a.Val != 9 {
		t.Fatalf("newest after grow = %d, want 9", a.Val)
	}
}

func TestQueryFilters(t *testing.T) {
	tr, clk := newTestTracer()
	tA, tB := DeriveTrace(NSReservation, 1), DeriveTrace(NSReservation, 2)
	tr.Begin(tA, 0, "gara.lease", "net").Int("res", 1).EndStatus(StatusLeaked)
	clk.now = 5 * time.Millisecond
	sp := tr.Begin(tB, 0, "rpc.prepare", "dom2").Int("res", 2)
	clk.now = 25 * time.Millisecond
	sp.End()
	tr.Begin(tB, 0, "rpc.commit", "dom2").EndStatus(StatusFailed)

	if got := tr.Query(Filter{Trace: tA}); len(got) != 1 || got[0].Name != "gara.lease" {
		t.Fatalf("Trace filter: %+v", got)
	}
	if got := tr.Query(Filter{NamePrefix: "rpc."}); len(got) != 2 {
		t.Fatalf("NamePrefix filter: %+v", got)
	}
	if got := tr.Query(Filter{HasStatus: true, Status: StatusLeaked}); len(got) != 1 {
		t.Fatalf("Status filter: %+v", got)
	}
	if got := tr.Query(Filter{HasStatus: true, Status: StatusOK}); len(got) != 1 || got[0].Name != "rpc.prepare" {
		t.Fatalf("StatusOK filter: %+v", got)
	}
	if got := tr.Query(Filter{MinDur: 10 * time.Millisecond}); len(got) != 1 || got[0].Name != "rpc.prepare" {
		t.Fatalf("MinDur filter: %+v", got)
	}
	if got := tr.Query(Filter{AttrKey: "res", AttrVal: 2}); len(got) != 1 || got[0].Trace != tB {
		t.Fatalf("Attr filter: %+v", got)
	}
	if got := tr.Query(Filter{Subject: "dom2", Limit: 1}); len(got) != 1 || got[0].Name != "rpc.commit" {
		t.Fatalf("Limit keeps most recent: %+v", got)
	}
	if got := tr.Trace(tB); len(got) != 2 || got[0].Name != "rpc.prepare" {
		t.Fatalf("Trace() order: %+v", got)
	}
}

func TestSpanIDsDeterministic(t *testing.T) {
	run := func() []Span {
		tr, clk := newTestTracer()
		for i := 0; i < 5; i++ {
			clk.now = time.Duration(i) * time.Second
			p := tr.Begin(DeriveTrace(NSCoReserve, uint64(i)), 0, "co.reserve", "coord")
			tr.Begin(p.TraceID(), p.SpanID(), "rpc.prepare", "dom1").End()
			p.End()
		}
		return tr.Snapshot()
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		a[i].tr, b[i].tr = nil, nil
		if a[i].ID != b[i].ID || a[i].Trace != b[i].Trace || a[i].Start != b[i].Start {
			t.Fatalf("span %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestWriteChromeTrace(t *testing.T) {
	tr, clk := newTestTracer()
	trace := DeriveTrace(NSCoReserve, 1)
	root := tr.Begin(trace, 0, "co.reserve", "coord")
	clk.now = 2 * time.Millisecond
	tr.Begin(trace, root.SpanID(), "rpc.prepare", "dom1").Int("attempts", 2).End()
	clk.now = 4 * time.Millisecond
	root.End()

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, Proc{PID: 0, Label: "test", Spans: tr.Snapshot()}); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TS   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			PID  int            `json:"pid"`
			TID  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	var complete, meta int
	var sawParentLink bool
	for _, e := range decoded.TraceEvents {
		switch e.Ph {
		case "M":
			meta++
		case "X":
			complete++
			if e.Name == "rpc.prepare" {
				if p, ok := e.Args["parent"].(float64); !ok || SpanID(p) != root.SpanID() {
					t.Fatalf("rpc.prepare parent arg = %v, want %d", e.Args["parent"], root.SpanID())
				}
				if e.Args["attempts"].(float64) != 2 {
					t.Fatalf("attrs not exported: %v", e.Args)
				}
				if e.TS != 2000 { // µs
					t.Fatalf("ts = %v µs, want 2000", e.TS)
				}
				sawParentLink = true
			}
		}
	}
	if complete != 2 || meta < 2 || !sawParentLink {
		t.Fatalf("events: complete=%d meta=%d parentLink=%v", complete, meta, sawParentLink)
	}

	// Byte-determinism of the export itself.
	var buf2 bytes.Buffer
	if err := WriteChromeTrace(&buf2, Proc{PID: 0, Label: "test", Spans: tr.Snapshot()}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("WriteChromeTrace is not byte-deterministic")
	}
}

func TestWriteTree(t *testing.T) {
	tr, clk := newTestTracer()
	trace := DeriveTrace(NSWatchdog, 3)
	root := tr.Begin(trace, 0, "wd.outage", "rank0")
	clk.now = time.Millisecond
	tr.Begin(trace, root.SpanID(), "wd.repair", "rank0").Int("attempt", 1).End()
	root.EndStatus(StatusBreached)

	var buf bytes.Buffer
	if err := WriteTree(&buf, tr.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "trace "+trace.String()) {
		t.Fatalf("missing trace header:\n%s", out)
	}
	if !strings.Contains(out, "  wd.outage") || !strings.Contains(out, "    wd.repair") {
		t.Fatalf("missing nesting:\n%s", out)
	}
	if !strings.Contains(out, "breached") || !strings.Contains(out, "attempt=1") {
		t.Fatalf("missing status/attrs:\n%s", out)
	}
}

func TestWriteJSON(t *testing.T) {
	tr, _ := newTestTracer()
	tr.Begin(DeriveTrace(NSFlow, 9), 0, "tcp.connect", "hostA").EndStatus(StatusOK)
	var buf bytes.Buffer
	if err := WriteJSON(&buf, tr.Snapshot()); err != nil {
		t.Fatal(err)
	}
	var out []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0]["name"] != "tcp.connect" || out[0]["status"] != "ok" {
		t.Fatalf("JSON export: %+v", out)
	}
}

func TestCollectorDeterministicAcrossAddOrder(t *testing.T) {
	mk := func(order []int) *bytes.Buffer {
		c := NewCollector()
		var wg sync.WaitGroup
		for _, pid := range order {
			wg.Add(1)
			go func(pid int) {
				defer wg.Done()
				tr, _ := newTestTracer()
				tr.Begin(DeriveTrace(NSReservation, uint64(pid)), 0, "gara.reserve", "net").End()
				c.Add(pid, "point", tr.Snapshot())
			}(pid)
		}
		wg.Wait()
		var buf bytes.Buffer
		if err := c.WriteChromeTrace(&buf); err != nil {
			t.Fatal(err)
		}
		return &buf
	}
	a := mk([]int{0, 1, 2, 3})
	b := mk([]int{3, 1, 0, 2})
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("collector output depends on Add order")
	}
	c := NewCollector()
	if c.Len() != 0 {
		t.Fatal("fresh collector not empty")
	}
}

func TestConcurrentReadersWhileWriting(t *testing.T) {
	tr, clk := newTestTracer()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				tr.Query(Filter{NamePrefix: "op", Limit: 8})
				tr.Len()
				tr.Dropped()
			}
		}()
	}
	for i := 0; i < 2000; i++ {
		clk.now = time.Duration(i) * time.Microsecond
		tr.Begin(DeriveTrace(NSFlow, uint64(i%13)), 0, "op", "s").End()
	}
	close(stop)
	wg.Wait()
	if tr.Len() == 0 {
		t.Fatal("no spans retained")
	}
}
