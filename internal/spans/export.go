package spans

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// SortSpans orders spans by (Start, ID): the stable presentation
// order every exporter uses, independent of End/commit order.
func SortSpans(spans []Span) {
	sort.Slice(spans, func(a, b int) bool {
		if spans[a].Start != spans[b].Start {
			return spans[a].Start < spans[b].Start
		}
		return spans[a].ID < spans[b].ID
	})
}

// Proc is one process lane of a Chrome trace: the spans of one sim
// kernel (one sweep point). PID is the sweep-point index, so a
// multi-point experiment exports the same file at any -parallel
// worker count.
type Proc struct {
	PID   int
	Label string
	Spans []Span
}

// chromeEvent is one trace-event record in the Chrome/Perfetto JSON
// format. Args is a plain map: encoding/json sorts map keys, so the
// encoding is deterministic.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// category derives the event category from the span name's prefix
// ("rpc.prepare" → "rpc"), which Perfetto uses for colouring.
func category(name string) string {
	if i := strings.IndexByte(name, '.'); i > 0 {
		return name[:i]
	}
	return name
}

func micros(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

// WriteChromeTrace writes the spans of one or more processes as
// Chrome trace-event JSON, loadable in Perfetto or chrome://tracing.
// Within a process, each trace gets its own thread lane (tid) so
// causally related spans nest visually; parent links ride in
// args.parent. Output is byte-deterministic for a given input.
func WriteChromeTrace(w io.Writer, procs ...Proc) error {
	var events []chromeEvent
	for _, p := range procs {
		spans := make([]Span, len(p.Spans))
		copy(spans, p.Spans)
		SortSpans(spans)

		events = append(events, chromeEvent{
			Name: "process_name", Ph: "M", PID: p.PID, TID: 0,
			Args: map[string]any{"name": p.Label},
		})
		// Lane assignment: traces in order of first appearance.
		lane := make(map[TraceID]int, 8)
		for _, s := range spans {
			if _, ok := lane[s.Trace]; !ok {
				tid := len(lane) + 1
				lane[s.Trace] = tid
				events = append(events, chromeEvent{
					Name: "thread_name", Ph: "M", PID: p.PID, TID: tid,
					Args: map[string]any{"name": "trace " + s.Trace.String()},
				})
			}
		}
		for _, s := range spans {
			args := map[string]any{
				"trace":   s.Trace.String(),
				"span":    uint64(s.ID),
				"parent":  uint64(s.Parent),
				"subject": s.Subject,
				"status":  s.Status.String(),
			}
			for _, a := range s.Attrs {
				if a.Str != "" {
					args[a.Key] = a.Str
				} else {
					args[a.Key] = a.Val
				}
			}
			events = append(events, chromeEvent{
				Name: s.Name, Cat: category(s.Name), Ph: "X",
				TS: micros(s.Start), Dur: micros(s.Dur),
				PID: p.PID, TID: lane[s.Trace], Args: args,
			})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(chromeFile{TraceEvents: events, DisplayTimeUnit: "ms"})
}

// WriteTree renders spans as an indented text tree, one block per
// trace, children nested under parents. Spans whose parent is absent
// from the input (evicted, or still active) are promoted to roots.
func WriteTree(w io.Writer, spans []Span) error {
	sorted := make([]Span, len(spans))
	copy(sorted, spans)
	SortSpans(sorted)

	// Group by trace, preserving first-appearance order.
	var order []TraceID
	byTrace := make(map[TraceID][]Span)
	for _, s := range sorted {
		if _, ok := byTrace[s.Trace]; !ok {
			order = append(order, s.Trace)
		}
		byTrace[s.Trace] = append(byTrace[s.Trace], s)
	}
	for _, tid := range order {
		group := byTrace[tid]
		if _, err := fmt.Fprintf(w, "trace %s (%d spans)\n", tid, len(group)); err != nil {
			return err
		}
		present := make(map[SpanID]bool, len(group))
		for _, s := range group {
			present[s.ID] = true
		}
		children := make(map[SpanID][]Span)
		var roots []Span
		for _, s := range group {
			if s.Parent != 0 && present[s.Parent] {
				children[s.Parent] = append(children[s.Parent], s)
			} else {
				roots = append(roots, s)
			}
		}
		for _, r := range roots {
			if err := writeTreeNode(w, r, children, 1); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeTreeNode(w io.Writer, s Span, children map[SpanID][]Span, depth int) error {
	var b strings.Builder
	for i := 0; i < depth; i++ {
		b.WriteString("  ")
	}
	fmt.Fprintf(&b, "%s %s [%v +%v] %s", s.Name, s.Subject, s.Start, s.Dur, s.Status)
	for _, a := range s.Attrs {
		if a.Str != "" {
			fmt.Fprintf(&b, " %s=%s", a.Key, a.Str)
		} else {
			fmt.Fprintf(&b, " %s=%d", a.Key, a.Val)
		}
	}
	b.WriteByte('\n')
	if _, err := io.WriteString(w, b.String()); err != nil {
		return err
	}
	for _, c := range children[s.ID] {
		if err := writeTreeNode(w, c, children, depth+1); err != nil {
			return err
		}
	}
	return nil
}

// attrJSON mirrors Attr for the gqd JSON wire format.
type attrJSON struct {
	Key string `json:"key"`
	Str string `json:"str,omitempty"`
	Val int64  `json:"val,omitempty"`
}

// spanJSON is the gqd /traces wire format for one span.
type spanJSON struct {
	Trace   string     `json:"trace"`
	Span    uint64     `json:"span"`
	Parent  uint64     `json:"parent,omitempty"`
	Name    string     `json:"name"`
	Subject string     `json:"subject,omitempty"`
	StartNS int64      `json:"start_ns"`
	DurNS   int64      `json:"dur_ns"`
	Status  string     `json:"status"`
	Attrs   []attrJSON `json:"attrs,omitempty"`
}

// WriteJSON writes spans as a JSON array in (Start, ID) order — the
// gqd /traces format.
func WriteJSON(w io.Writer, spans []Span) error {
	sorted := make([]Span, len(spans))
	copy(sorted, spans)
	SortSpans(sorted)
	out := make([]spanJSON, 0, len(sorted))
	for _, s := range sorted {
		j := spanJSON{
			Trace: s.Trace.String(), Span: uint64(s.ID), Parent: uint64(s.Parent),
			Name: s.Name, Subject: s.Subject,
			StartNS: s.Start.Nanoseconds(), DurNS: s.Dur.Nanoseconds(),
			Status: s.Status.String(),
		}
		for _, a := range s.Attrs {
			j.Attrs = append(j.Attrs, attrJSON{Key: a.Key, Str: a.Str, Val: a.Val})
		}
		out = append(out, j)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// Collector merges the traces of a multi-kernel experiment sweep into
// one Chrome trace file, keyed by sweep-point index so the merged
// output is identical at any worker count. Add is safe to call from
// concurrent sweep workers.
type Collector struct {
	mu    sync.Mutex
	procs map[int]Proc
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{procs: make(map[int]Proc)}
}

// Add records one sweep point's completed spans under its point
// index. A second Add for the same pid replaces the first.
func (c *Collector) Add(pid int, label string, spans []Span) {
	cp := make([]Span, len(spans))
	copy(cp, spans)
	c.mu.Lock()
	c.procs[pid] = Proc{PID: pid, Label: label, Spans: cp}
	c.mu.Unlock()
}

// Len returns how many points have reported.
func (c *Collector) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.procs)
}

// Procs returns the collected points sorted by PID.
func (c *Collector) Procs() []Proc {
	c.mu.Lock()
	out := make([]Proc, 0, len(c.procs))
	for _, p := range c.procs {
		out = append(out, p)
	}
	c.mu.Unlock()
	sort.Slice(out, func(a, b int) bool { return out[a].PID < out[b].PID })
	return out
}

// WriteChromeTrace exports every collected point, ordered by PID.
func (c *Collector) WriteChromeTrace(w io.Writer) error {
	return WriteChromeTrace(w, c.Procs()...)
}
