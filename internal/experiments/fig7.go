package experiments

import (
	"time"

	gq "mpichgq/internal/core"
	"mpichgq/internal/garnet"
	"mpichgq/internal/trace"
	"mpichgq/internal/units"
)

// Figure7Result holds the two TCP sequence-number traces of Figure 7:
// both programs send 400 Kb/s, one as 10 frames/s of 40 Kb and one as
// 1 frame/s of 400 Kb.
type Figure7Result struct {
	// Smooth is the 10 fps trace; Bursty the 1 fps trace. One second
	// of steady-state execution each, as in the figure.
	Smooth, Bursty []trace.SeqPoint
	// SmoothBurst and BurstyBurst are the largest 100 ms bursts, a
	// scalar burstiness measure.
	SmoothBurst, BurstyBurst units.ByteSize
}

// RunFigure7 reproduces Figure 7: "TCP traces of two programs that
// each send at 400Kb/s, but with very different burstiness
// characteristics ... the program running at ten frames per second
// has much smaller bursts that are well spread out, while the program
// running at one frame per second sends all of its data in one much
// larger burst."
func RunFigure7(cfg Config) Figure7Result {
	cfg = cfg.withDefaults()
	// Generous reservations so no packets drop and the traces show
	// pure application burstiness (the figure corresponds to Table
	// 1's first line, after adequate reservations).
	run := func(frame units.ByteSize, fps int) *trace.SeqTrace {
		tb := garnet.New(cfg.Seed)
		cfg.blast(tb, 0, 0)
		d := &DVis{
			FrameSize: frame,
			FPS:       fps,
			Duration:  4 * time.Second,
			Attr:      &gq.QosAttribute{Class: gq.Premium, Bandwidth: 800 * units.Kbps},
			AgentMutate: func(a *gq.Agent) {
				a.OverheadFactor = 1.0
				a.DynamicBucket = true
			},
		}
		d.Attr.MaxMessageSize = frame
		return d.Run(tb).SeqTrace
	}
	traces := Sweep(cfg.Parallel, 2, func(i int) *trace.SeqTrace {
		if i == 0 {
			return run(5*units.KB, 10) // 40 Kb frames, 10 fps
		}
		return run(50*units.KB, 1) // 400 Kb frame, 1 fps
	})
	smooth, bursty := traces[0], traces[1]
	// Show one second of steady state (skip the first two: slow
	// start and agent setup).
	window := func(t *trace.SeqTrace) []trace.SeqPoint {
		return t.Between(2*time.Second, 3*time.Second)
	}
	return Figure7Result{
		Smooth:      window(smooth),
		Bursty:      window(bursty),
		SmoothBurst: smooth.BurstStats(100 * time.Millisecond),
		BurstyBurst: bursty.BurstStats(100 * time.Millisecond),
	}
}
