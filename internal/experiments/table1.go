package experiments

import (
	"fmt"
	"time"

	gq "mpichgq/internal/core"
	"mpichgq/internal/diffserv"
	"mpichgq/internal/garnet"
	"mpichgq/internal/trace"
	"mpichgq/internal/units"
)

// Table1Row is one line of Table 1: the reservation required to
// achieve a desired bandwidth under three configurations.
type Table1Row struct {
	Desired units.BitRate
	// Required reservation with the normal (bandwidth/40) bucket at
	// 10 fps and 1 fps, and with the large (bandwidth/4) bucket at
	// 1 fps.
	Normal10fps units.BitRate
	Normal1fps  units.BitRate
	Large1fps   units.BitRate
}

// Table1Result is the full table.
type Table1Result struct {
	Rows []Table1Row
}

// Table1Rates are the paper's desired bandwidths.
var Table1Rates = []units.BitRate{
	400 * units.Kbps, 800 * units.Kbps, 1600 * units.Kbps, 2400 * units.Kbps,
}

// RunTable1 reproduces Table 1 (§5.4): "the reservation required to
// achieve a specified throughput, for varying degrees of 'burstiness'
// (expressed in frames per second) and token bucket sizes". With the
// normal bucket depth, "the very bursty configuration needs an
// approximately 50% larger reservation"; the large bucket restores
// the 10 fps requirement.
func RunTable1(cfg Config) Table1Result {
	cfg = cfg.withDefaults()
	var out Table1Result
	for _, desired := range Table1Rates {
		row := Table1Row{Desired: desired}
		row.Normal10fps = requiredReservation(cfg, desired, 10, diffserv.NormalBucketDivisor)
		row.Normal1fps = requiredReservation(cfg, desired, 1, diffserv.NormalBucketDivisor)
		row.Large1fps = requiredReservation(cfg, desired, 1, diffserv.LargeBucketDivisor)
		out.Rows = append(out.Rows, row)
	}
	return out
}

// requiredReservation binary-searches the smallest reservation that
// lets the dvis stream achieve ≥95% of the desired rate. The
// transport is era-accurate (500 ms timer granularity, delayed ACKs):
// Table 1's burstiness penalty is largely a property of that era's
// loss recovery — a modern stack's fast retransmit refills the bucket
// losses within the 1 fps inter-frame gap and the penalty vanishes
// (see AblationEraTCP for the side-by-side).
func requiredReservation(cfg Config, desired units.BitRate, fps int, bucketDivisor int) units.BitRate {
	dur := cfg.scale(30 * time.Second)
	frame := desired.BytesIn(time.Second) / units.ByteSize(fps)
	era := EraTCPOptions()
	achieves := func(rsv units.BitRate) bool {
		tb := garnet.New(cfg.Seed)
		cfg.blast(tb, 0, 0)
		d := &DVis{
			FrameSize: frame,
			FPS:       fps,
			Duration:  dur,
			TCPOpts:   &era,
			Attr:      &gq.QosAttribute{Class: gq.Premium, Bandwidth: rsv},
			AgentMutate: func(a *gq.Agent) {
				a.OverheadFactor = 1.0
				a.BucketDivisor = bucketDivisor
			},
		}
		got := d.Run(tb).Achieved
		return float64(got) >= 0.95*float64(desired)
	}
	// Bracket: start at the desired rate, double until adequate.
	lo := desired / 2
	hi := desired
	for !achieves(hi) {
		lo = hi
		hi = hi * 2
		if hi > 64*desired {
			return hi // pathological; report the huge bound
		}
	}
	// Binary search to 25 Kb/s granularity (the paper reports
	// 50-100 Kb/s steps).
	step := 25 * units.Kbps
	for hi-lo > step {
		mid := (lo + hi) / 2
		if achieves(mid) {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi
}

// Table1Render formats the result like the paper's Table 1.
func Table1Render(r Table1Result) trace.Table {
	t := trace.Table{
		Title: "Table 1: reservation (Kb/s) required to achieve a desired throughput",
		Headers: []string{
			"desired", "normal bucket 10fps", "normal bucket 1fps", "large bucket 1fps",
		},
	}
	for _, row := range r.Rows {
		t.Add(
			fmt.Sprintf("%.0f", row.Desired.Kbps()),
			fmt.Sprintf("%.0f", row.Normal10fps.Kbps()),
			fmt.Sprintf("%.0f", row.Normal1fps.Kbps()),
			fmt.Sprintf("%.0f", row.Large1fps.Kbps()),
		)
	}
	return t
}
