package experiments

import (
	"testing"
	"time"

	"mpichgq/internal/units"
)

// These tests assert the qualitative shapes the paper reports, on
// abbreviated runs. cmd/garnet regenerates the full-length numbers.

func TestFigure1Oscillation(t *testing.T) {
	r := RunFigure1(Config{Seed: 1, TimeScale: 0.3})
	// "The bandwidth obtained by this program varies wildly": the
	// flow must get substantial throughput but far less than offered,
	// with a large swing.
	if r.Mean < 15*units.Mbps || r.Mean > 45*units.Mbps {
		t.Fatalf("mean = %v, want well below the 50 Mb/s offered but substantial", r.Mean)
	}
	if r.Max-r.Min < 10*units.Mbps {
		t.Fatalf("swing = %v..%v, want wild oscillation", r.Min, r.Max)
	}
	if r.Max > 60*units.Mbps {
		t.Fatalf("max %v exceeds plausibility", r.Max)
	}
}

func TestFigure5Shape(t *testing.T) {
	r := RunFigure5(Config{Seed: 1, TimeScale: 0.15})
	for _, size := range r.MessageSizes {
		curve := r.Curves[size]
		first, last := curve[0], curve[len(curve)-1]
		// Throughput rises with reservation...
		if last.Throughput < 4*first.Throughput {
			t.Errorf("size %v: %v -> %v, want strong growth with reservation",
				size, first.Throughput, last.Throughput)
		}
		// ...and plateaus near the uncontended peak.
		peak := r.NoContention[size]
		if float64(last.Throughput) < 0.8*float64(peak) {
			t.Errorf("size %v: plateau %v vs uncontended %v", size, last.Throughput, peak)
		}
	}
	// Larger messages plateau higher.
	for i := 1; i < len(r.MessageSizes); i++ {
		a, b := r.MessageSizes[i-1], r.MessageSizes[i]
		ca, cb := r.Curves[a], r.Curves[b]
		if cb[len(cb)-1].Throughput <= ca[len(ca)-1].Throughput {
			t.Errorf("plateau ordering violated: %v vs %v", a, b)
		}
	}
}

func TestFigure6Knee(t *testing.T) {
	r := RunFigure6(Config{Seed: 1, TimeScale: 0.2})
	for _, offered := range r.Offered {
		curve := r.Curves[offered]
		var at25, at106 units.BitRate
		for _, p := range curve {
			frac := float64(p.Reservation) / float64(offered)
			switch {
			case frac < 0.3:
				at25 = p.Achieved
			case frac > 1.05 && frac < 1.07:
				at106 = p.Achieved
			}
		}
		// At 1.06x the stream reaches (nearly) full rate...
		if float64(at106) < 0.9*float64(offered) {
			t.Errorf("offered %v: achieved %v at 1.06x, want ~full", offered, at106)
		}
		// ...while far below it performance is dramatically worse
		// than proportional ("making a reservation that is even a
		// little bit too small dramatically decreases throughput").
		if float64(at25) > 0.5*float64(offered) {
			t.Errorf("offered %v: achieved %v at 0.25x, want collapse", offered, at25)
		}
	}
}

func TestTable1BurstinessPenalty(t *testing.T) {
	if testing.Short() {
		t.Skip("binary-search sweep; skipped in -short")
	}
	r := RunTable1(Config{Seed: 1, TimeScale: 0.15})
	for _, row := range r.Rows {
		// The bursty (1 fps) stream with the normal bucket needs a
		// larger reservation than the smooth (10 fps) one...
		if row.Normal1fps <= row.Normal10fps {
			t.Errorf("desired %v: 1fps %v <= 10fps %v, want burstiness penalty",
				row.Desired, row.Normal1fps, row.Normal10fps)
		}
		// ...and the large bucket substantially reduces that penalty.
		if row.Large1fps >= row.Normal1fps {
			t.Errorf("desired %v: large bucket %v >= normal %v, want improvement",
				row.Desired, row.Large1fps, row.Normal1fps)
		}
		// Sanity: requirements are near the desired rate (the 95 %
		// criterion can land slightly below it) and not absurd.
		if float64(row.Normal10fps) < 0.8*float64(row.Desired) || row.Normal10fps > 2*row.Desired {
			t.Errorf("desired %v: 10fps requirement %v out of range", row.Desired, row.Normal10fps)
		}
	}
}

func TestFigure7Burstiness(t *testing.T) {
	r := RunFigure7(Config{Seed: 1, TimeScale: 1})
	if len(r.Smooth) == 0 || len(r.Bursty) == 0 {
		t.Fatal("empty traces")
	}
	// The 1 fps program concentrates its data: its max 100 ms burst
	// must be several times the 10 fps program's.
	if float64(r.BurstyBurst) < 3*float64(r.SmoothBurst) {
		t.Fatalf("bursts: smooth %v, bursty %v — want bursty >> smooth",
			r.SmoothBurst, r.BurstyBurst)
	}
	// The smooth trace spreads transmissions across the window; the
	// bursty one concentrates them in a short span.
	smoothSpan := r.Smooth[len(r.Smooth)-1].T - r.Smooth[0].T
	burstySpan := r.Bursty[len(r.Bursty)-1].T - r.Bursty[0].T
	if smoothSpan < 700*time.Millisecond {
		t.Fatalf("smooth trace spans %v of the 1 s window, want spread out", smoothSpan)
	}
	if burstySpan > smoothSpan {
		t.Fatalf("bursty span %v > smooth span %v", burstySpan, smoothSpan)
	}
}

func TestFigure8Recovery(t *testing.T) {
	r := RunFigure8(Config{Seed: 1, TimeScale: 0.5})
	if r.QuietMean < 14*units.Mbps {
		t.Fatalf("quiet = %v, want ~15 Mb/s", r.QuietMean)
	}
	if float64(r.ContendedMean) > 0.75*float64(r.QuietMean) {
		t.Fatalf("contended = %v vs quiet %v, want a significant dip", r.ContendedMean, r.QuietMean)
	}
	if float64(r.ReservedMean) < 0.9*float64(r.QuietMean) {
		t.Fatalf("reserved = %v vs quiet %v, want full recovery", r.ReservedMean, r.QuietMean)
	}
}

func TestFigure9FivePhases(t *testing.T) {
	r := RunFigure9(Config{Seed: 1, TimeScale: 0.5})
	clean := float64(r.Clean)
	if r.Clean < 30*units.Mbps {
		t.Fatalf("clean = %v, want ~35 Mb/s", r.Clean)
	}
	if float64(r.NetCongested) > 0.4*clean {
		t.Fatalf("congested = %v, want collapse", r.NetCongested)
	}
	if float64(r.NetReserved) < 0.85*clean {
		t.Fatalf("net-reserved = %v, want recovery to ~clean", r.NetReserved)
	}
	if float64(r.CPUContended) > 0.8*clean {
		t.Fatalf("cpu-contended = %v, want a dip (network reservation alone is insufficient)", r.CPUContended)
	}
	if float64(r.CPUReserved) < 0.85*clean {
		t.Fatalf("cpu-reserved = %v, want full recovery with both reservations", r.CPUReserved)
	}
}

func TestAblationsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation sweeps; skipped in -short")
	}
	cfg := Config{Seed: 1, TimeScale: 0.1}
	for name, tbl := range map[string]interface{ String() string }{
		"bucket":  ptr(AblationBucketDepth(cfg)),
		"shaping": ptr(AblationShaping(cfg)),
		"eager":   ptr(AblationEagerThreshold(cfg)),
		"sockbuf": ptr(AblationSocketBuffers(cfg)),
	} {
		if len(tbl.String()) == 0 {
			t.Errorf("ablation %s produced no output", name)
		}
	}
}

func ptr[T any](v T) *T { return &v }

func TestDVisOfferedRate(t *testing.T) {
	d := &DVis{FrameSize: 30 * units.KB, FPS: 10}
	if got := d.OfferedRate(); got != 2400*units.Kbps {
		t.Fatalf("offered = %v, want 2400 Kb/s", got)
	}
}

func TestISvsDSStateAndProtection(t *testing.T) {
	r := RunISvsDS(Config{Seed: 1, TimeScale: 0.3}, 6)
	// §2's architectural claim: IS burdens the core with per-flow
	// state; DS keeps the core stateless (aggregate EF only).
	if r.ISCoreState != 6 {
		t.Fatalf("IS core state = %d, want one entry per flow", r.ISCoreState)
	}
	if r.DSCoreRules != 0 {
		t.Fatalf("DS core rules = %d, want 0 (edge-only classification)", r.DSCoreRules)
	}
	if r.DSEdgeRules != 6 {
		t.Fatalf("DS edge rules = %d, want 6", r.DSEdgeRules)
	}
	// Both architectures must actually protect the flows.
	floor := units.BitRate(0.8 * 0.9 * float64(r.PerFlowRate))
	if r.ISAchieved < floor || r.DSAchieved < floor {
		t.Fatalf("protection failed: IS %v, DS %v", r.ISAchieved, r.DSAchieved)
	}
	if r.UnprotectedAchieved > r.DSAchieved/2 {
		t.Fatalf("contention ineffective: unprotected %v", r.UnprotectedAchieved)
	}
}

func TestLatencyClassUnderContention(t *testing.T) {
	r := RunLatency(Config{Seed: 1, TimeScale: 0.3})
	// The expedited queue keeps small-message RTT at the quiet
	// baseline; best effort queues behind the blast and hits RTO
	// tails.
	if r.LowLatency.Median > 2*r.Uncontended {
		t.Fatalf("low-latency median %v vs quiet %v, want ~equal", r.LowLatency.Median, r.Uncontended)
	}
	if r.BestEffort.Median < 2*r.LowLatency.Median {
		t.Fatalf("best-effort median %v vs low-latency %v, want queueing penalty", r.BestEffort.Median, r.LowLatency.Median)
	}
	if r.BestEffort.P99 < 10*r.LowLatency.P99 {
		t.Fatalf("best-effort p99 %v vs low-latency %v, want heavy tail", r.BestEffort.P99, r.LowLatency.P99)
	}
}
