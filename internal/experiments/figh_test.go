package experiments

import (
	"encoding/json"
	"strings"
	"testing"

	"mpichgq/internal/spans"
)

// TestFigHCheckpointingHelpsSurvival pins the figure's qualitative
// story: checkpointing dominates restart-from-scratch at harsh MTBFs,
// crashes actually happen at the short end, recovery re-reserves the
// premium flow through GARA (rebinds), and pressure relaxes as MTBF
// grows.
func TestFigHCheckpointingHelpsSurvival(t *testing.T) {
	// Network transfer time does not scale with TimeScale, so the
	// scale must leave the 80 BSP rounds comfortable slack inside the
	// scaled deadline; 0.2 keeps the run fast while preserving the
	// figure's contrast.
	res := RunFigureH(Config{Seed: 1, TimeScale: 0.2, Parallel: 8})
	if len(res.Ckpt) != len(res.MTBFs) || len(res.NoCkpt) != len(res.MTBFs) {
		t.Fatalf("points per mode = %d/%d, want %d", len(res.Ckpt), len(res.NoCkpt), len(res.MTBFs))
	}
	ckptSurv, noCkptSurv, crashes, rebinds := 0, 0, 0, 0
	for i := range res.MTBFs {
		if res.Ckpt[i].Survived < res.NoCkpt[i].Survived {
			t.Errorf("mtbf=%v: checkpointed survival %d/%d below checkpoint-free %d/%d",
				res.MTBFs[i], res.Ckpt[i].Survived, res.Ckpt[i].Trials,
				res.NoCkpt[i].Survived, res.NoCkpt[i].Trials)
		}
		ckptSurv += res.Ckpt[i].Survived
		noCkptSurv += res.NoCkpt[i].Survived
		crashes += res.Ckpt[i].Crashes + res.NoCkpt[i].Crashes
		rebinds += res.Ckpt[i].Rebinds + res.NoCkpt[i].Rebinds
	}
	if ckptSurv <= noCkptSurv {
		t.Errorf("checkpointing showed no overall advantage: %d vs %d survivals", ckptSurv, noCkptSurv)
	}
	if crashes == 0 {
		t.Error("no rank crashes across the whole sweep — the MTBF schedule is inert")
	}
	if rebinds == 0 {
		t.Error("no watchdog rebinds — restarts never closed the QoS loop through GARA")
	}
	// The harshest cell must see failures in the checkpoint-free mode,
	// otherwise the figure shows nothing.
	if res.NoCkpt[0].Survived == res.NoCkpt[0].Trials {
		t.Errorf("mtbf=%v without checkpoints survived %d/%d — figure has no contrast",
			res.MTBFs[0], res.NoCkpt[0].Survived, res.NoCkpt[0].Trials)
	}
	// Long MTBF should be benign for both modes.
	last := len(res.MTBFs) - 1
	if res.Ckpt[last].SurvivalRate < 0.8 {
		t.Errorf("mtbf=%v checkpointed survival rate %.2f, want >= 0.8",
			res.MTBFs[last], res.Ckpt[last].SurvivalRate)
	}
}

// renderFigHTrace runs figure H with tracing on and returns the merged
// Chrome trace file as a string.
func renderFigHTrace(t *testing.T, parallel int) string {
	t.Helper()
	cfg := Config{Seed: 1, TimeScale: 0.05, Parallel: parallel, Trace: spans.NewCollector()}
	RunFigureH(cfg)
	var b strings.Builder
	if err := cfg.Trace.WriteChromeTrace(&b); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	return b.String()
}

// TestFigHTraceDeterministicAcrossParallel: a traced figH run — crash
// schedules, restarts, and watchdog rebinds included — must emit
// byte-identical Chrome traces at -parallel 1 and -parallel 8, and
// the trace must carry the failure lifecycle spans.
func TestFigHTraceDeterministicAcrossParallel(t *testing.T) {
	seq := renderFigHTrace(t, 1)
	par := renderFigHTrace(t, 8)
	if seq != par {
		t.Fatalf("trace output differs between -parallel 1 and -parallel 8 (%d vs %d bytes)", len(seq), len(par))
	}
	if len(seq) == 0 {
		t.Fatal("traced figH run produced no output")
	}
	var file struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(seq), &file); err != nil {
		t.Fatalf("trace output is not valid JSON: %v", err)
	}
	want := map[string]bool{"rank.crash": false, "rank.restart": false, "wd.rebind": false}
	for _, ev := range file.TraceEvents {
		if ev.Ph == "X" {
			if _, ok := want[ev.Name]; ok {
				want[ev.Name] = true
			}
		}
	}
	for name, seen := range map[string]bool(want) {
		if !seen {
			t.Errorf("no %s span in traced figH run", name)
		}
	}
}

// TestFigHPointLayout pins the MTBF-major trial indexing that seeds
// and trace PIDs depend on: every cell aggregates exactly figHTrials
// trials and MTBFs ascend.
func TestFigHPointLayout(t *testing.T) {
	res := RunFigureH(Config{Seed: 3, TimeScale: 0.02, Parallel: 4})
	for i := 1; i < len(res.MTBFs); i++ {
		if res.MTBFs[i] <= res.MTBFs[i-1] {
			t.Fatalf("MTBFs not ascending: %v", res.MTBFs)
		}
	}
	for i, pt := range res.Ckpt {
		if !pt.Ckpt || pt.MTBF != res.MTBFs[i] || pt.Trials != figHTrials {
			t.Fatalf("Ckpt[%d] = %+v inconsistent with layout", i, pt)
		}
		if pt.Survived > pt.Trials {
			t.Fatalf("Ckpt[%d] survived %d of %d", i, pt.Survived, pt.Trials)
		}
	}
	for i, pt := range res.NoCkpt {
		if pt.Ckpt || pt.MTBF != res.MTBFs[i] || pt.Trials != figHTrials {
			t.Fatalf("NoCkpt[%d] = %+v inconsistent with layout", i, pt)
		}
	}
}
