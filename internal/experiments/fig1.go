package experiments

import (
	"fmt"
	"time"

	"mpichgq/internal/diffserv"
	"mpichgq/internal/gara"
	"mpichgq/internal/garnet"
	"mpichgq/internal/sim"
	"mpichgq/internal/tcpsim"
	"mpichgq/internal/trace"
	"mpichgq/internal/trafficgen"
	"mpichgq/internal/units"
)

// Figure1Result holds the oscillating-bandwidth trace of Figure 1.
type Figure1Result struct {
	Offered   units.BitRate
	Reserved  units.BitRate
	Bandwidth trace.Series
	Mean      units.BitRate
	Min, Max  units.BitRate
}

// RunFigure1 reproduces Figure 1: "a simple TCP program that is
// attempting to send data at approximately 50 Mb/s over a congested
// network, with a reservation that is somewhat too low (40 Mb/s). ...
// every time TCP kicks into slow start mode, the bandwidth drops
// significantly, then slowly increases until packets are dropped
// again." 100-second trace, 1-second buckets.
func RunFigure1(cfg Config) Figure1Result {
	cfg = cfg.withDefaults()
	const offered = 50 * units.Mbps
	const reserved = 40 * units.Mbps
	dur := cfg.scale(100 * time.Second)

	tb := garnet.New(cfg.Seed)

	// Figure 1's multi-second sawtooth implies a wide-area round trip
	// (GARNET connected to ESnet sites): at WAN RTTs, each slow-start
	// collapse takes seconds to climb back, producing the figure's
	// deep slow oscillation. Run the flow to a remote site at ~100 ms
	// RTT, with the contention crossing the same wide-area link.
	remote := tb.AddSite("esnet", 155*units.Mbps, 25*time.Millisecond)
	// Always packet-level: the figure measures a best-effort TCP flow,
	// and fluid contention would starve it outright instead of letting
	// it scavenge leftover capacity (see docs/performance.md).
	bl := trafficgen.NewBackground(trafficgen.BackgroundOptions{
		Rate: ContentionRate, PacketSize: 1000, Jitter: 0.1,
	})
	if err := bl.Run(tb.CompSrc, remote, 9000); err != nil {
		panic(err)
	}

	// A 2000-era stack: no congestion-window validation (RFC 2861
	// postdates it), so cwnd keeps growing while app-limited and the
	// overshoot past the policer is large. Buffers sized above the
	// 40 Mb/s × 100 ms BDP (~500 KB).
	opts := tcpsim.DefaultOptions()
	opts.DisableCWV = true
	opts.SndBuf = units.MB
	opts.RcvBuf = units.MB
	sa := tcpsim.NewStack(tb.PremSrc, opts)
	sb := tcpsim.NewStack(remote, opts)
	bw := trace.NewBandwidthTrace(cfg.scale(time.Second))

	const port = 7000
	tb.K.Spawn("fig1-server", func(ctx *sim.Ctx) {
		l, err := sb.Listen(port)
		if err != nil {
			panic(err)
		}
		c, err := l.Accept(ctx)
		if err != nil {
			return
		}
		for {
			n, err := c.Read(ctx, 256*units.KB)
			bw.Add(ctx.Now(), n)
			if err != nil {
				return
			}
		}
	})
	tb.K.Spawn("fig1-client", func(ctx *sim.Ctx) {
		c, err := sa.Dial(ctx, remote.Addr(), port)
		if err != nil {
			panic(err)
		}
		// Reserve 40 Mb/s for this flow — "somewhat too low".
		flow := c.FlowKey()
		if _, err := tb.Gara.Reserve(gara.Spec{
			Type:      gara.ResourceNetwork,
			Flow:      diffserv.MatchFlow(flow),
			Bandwidth: reserved,
		}); err != nil {
			panic(err)
		}
		// Offer ~50 Mb/s: 6250-byte application writes paced each
		// millisecond.
		const chunk = 6250 * units.Byte
		gap := offered.TimeToSend(chunk)
		for ctx.Now() < dur {
			if err := c.Write(ctx, chunk); err != nil {
				return
			}
			ctx.Sleep(gap)
		}
		c.Close()
	})
	if err := tb.K.RunUntil(dur); err != nil {
		panic(fmt.Sprintf("experiments: figure 1: %v", err))
	}
	series := bw.Series("fig1-tcp-flow")
	res := Figure1Result{
		Offered:   offered,
		Reserved:  reserved,
		Bandwidth: series,
		Mean:      bw.MeanRate(0, dur),
	}
	first := true
	for _, p := range series.Points {
		// Skip the slow-start warmup bucket when computing the swing.
		if p.T < cfg.scale(2*time.Second) {
			continue
		}
		r := units.BitRate(p.V) * units.Kbps
		if first || r < res.Min {
			res.Min = r
		}
		if first || r > res.Max {
			res.Max = r
		}
		first = false
	}
	return res
}
