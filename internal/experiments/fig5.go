package experiments

import (
	"fmt"
	"time"

	gq "mpichgq/internal/core"
	"mpichgq/internal/garnet"
	"mpichgq/internal/metrics"
	"mpichgq/internal/mpi"
	"mpichgq/internal/sim"
	"mpichgq/internal/tcpsim"
	"mpichgq/internal/trace"
	"mpichgq/internal/units"
)

// PingPongPoint is one (reservation, throughput) sample of Figure 5.
type PingPongPoint struct {
	Reservation units.BitRate
	Throughput  units.BitRate // one-way
	// Policer counts for the run, read from the diffserv metrics:
	// premium-marked packets within/outside the token-bucket profile
	// and out-of-profile drops.
	Conform, Exceed, Dropped int64
	// Events is the kernel's total executed event count for the
	// point's run — the cost metric AblationFluidValidation compares
	// across background modes.
	Events uint64
}

// Figure5Result holds, per message size, the throughput-vs-reservation
// curve of Figure 5.
type Figure5Result struct {
	// MessageSizes in the paper's units: 8, 40, 80, 120 Kb.
	MessageSizes []units.ByteSize
	Curves       map[units.ByteSize][]PingPongPoint
	// NoContention is the peak throughput per size with a quiet
	// network and no reservation — the paper notes performance then
	// matches the curves' plateaus.
	NoContention map[units.ByteSize]units.BitRate
}

// Figure5MessageSizes are the paper's four message sizes (8, 40, 80,
// 120 kilobits).
var Figure5MessageSizes = []units.ByteSize{
	8 * units.Kbit, 40 * units.Kbit, 80 * units.Kbit, 120 * units.Kbit,
}

// Figure5Reservations is the default one-way reservation sweep. The
// paper sweeps 0-12 Mb/s against GARNET's software-limited plateaus;
// our simulated hosts saturate at the RTT limit instead, so the sweep
// extends far enough to cross every plateau (see EXPERIMENTS.md).
var Figure5Reservations = []units.BitRate{
	500 * units.Kbps, 1 * units.Mbps, 2 * units.Mbps, 4 * units.Mbps,
	6 * units.Mbps, 8 * units.Mbps, 12 * units.Mbps, 16 * units.Mbps,
	24 * units.Mbps, 32 * units.Mbps, 48 * units.Mbps,
}

// RunFigure5 reproduces Figure 5: ping-pong one-way throughput as a
// function of reservation size for four message sizes under heavy UDP
// contention. "Achieved throughput improves as the applied
// reservation increases until the reservation is 'adequate' for the
// message size in question, after which further increases in
// reservation size have no significant impact."
func RunFigure5(cfg Config) Figure5Result {
	cfg = cfg.withDefaults()
	res := Figure5Result{
		MessageSizes: Figure5MessageSizes,
		Curves:       make(map[units.ByteSize][]PingPongPoint),
		NoContention: make(map[units.ByteSize]units.BitRate),
	}
	dur := cfg.scale(20 * time.Second)
	// Flatten the sweep into an explicit job list so the points can
	// fan out across workers; reassembly below preserves the original
	// sequential order exactly.
	type job struct {
		size      units.ByteSize
		rsv       units.BitRate
		contended bool
	}
	var jobs []job
	for _, size := range res.MessageSizes {
		for _, rsv := range Figure5Reservations {
			jobs = append(jobs, job{size, rsv, true})
		}
		jobs = append(jobs, job{size, 0, false})
	}
	points := Sweep(cfg.Parallel, len(jobs), func(i int) PingPongPoint {
		j := jobs[i]
		p := pingPongThroughput(cfg, i, j.size, j.rsv, j.contended, dur)
		p.Reservation = j.rsv
		return p
	})
	for i, j := range jobs {
		if j.contended {
			res.Curves[j.size] = append(res.Curves[j.size], points[i])
		} else {
			res.NoContention[j.size] = points[i].Throughput
		}
	}
	return res
}

// pingPongThroughput measures one-way ping-pong throughput for one
// (message size, reservation) point. reservation 0 = best effort.
//
// One-way goodput is read from the metrics layer rather than counted
// by hand: rank 0 receives exactly one msgSize reply per completed
// round trip, so the delta of its mpi_recv_bytes_total counter on the
// pair comm over the measurement window is the one-way byte count.
func pingPongThroughput(cfg Config, pid int, msgSize units.ByteSize, reservation units.BitRate, contended bool, dur time.Duration) PingPongPoint {
	tb := garnet.New(cfg.Seed)
	cfg.enableTrace(tb.K)
	if contended {
		cfg.blast(tb, 0, 0)
	}
	job := tb.NewMPIPair(tcpsim.DefaultOptions(), mpi.JobOptions{})
	agent := gq.NewAgent(tb.Gara, job)
	// The x-axis of Figure 5 is the raw network reservation, so
	// disable the agent's overhead scaling for this experiment.
	agent.OverheadFactor = 1.0
	var recvBytes *metrics.Counter
	var baseline int64
	job.Start(func(ctx *sim.Ctx, r *mpi.Rank) {
		pc, err := r.PairComm(ctx, 1-r.ID())
		if err != nil {
			panic(err)
		}
		if reservation > 0 {
			attr := &gq.QosAttribute{Class: gq.Premium, Bandwidth: reservation}
			// Both ranks put the attribute: both directions carry
			// data in a ping-pong, so "total throughput — and
			// reservation — is twice what is shown here, when summed
			// over both directions."
			if err := r.AttrPut(pc, agent.Keyval(), attr); err != nil {
				panic(fmt.Sprintf("fig5 reservation: %v", err))
			}
		}
		peer := 1 - r.RankIn(pc)
		if r.ID() == 0 {
			// Sample the baseline here so the PairComm handshake (and
			// any setup traffic) is excluded from the measurement.
			recvBytes = r.RecvBytesCounter(pc)
			baseline = recvBytes.Value()
		}
		for ctx.Now() < dur {
			if r.ID() == 0 {
				if err := r.Send(ctx, pc, peer, 0, msgSize, nil); err != nil {
					return
				}
				if _, err := r.Recv(ctx, pc, peer, 0); err != nil {
					return
				}
			} else {
				if _, err := r.Recv(ctx, pc, peer, 0); err != nil {
					return
				}
				if err := r.Send(ctx, pc, peer, 0, msgSize, nil); err != nil {
					return
				}
			}
		}
	})
	if err := tb.K.RunUntil(dur); err != nil {
		panic(fmt.Sprintf("experiments: figure 5: %v", err))
	}
	var oneWayBytes units.ByteSize
	if recvBytes != nil {
		oneWayBytes = units.ByteSize(recvBytes.Value() - baseline)
	}
	cfg.collectTrace(tb.K, pid, fmt.Sprintf("fig5 msg=%dKb rsv=%.0fKb/s", msgSize.Bits()/1000, reservation.Kbps()))
	reg := tb.K.Metrics()
	conform, _ := reg.CounterValue("diffserv_conform_packets_total", "dscp", "EF")
	exceed, _ := reg.CounterValue("diffserv_exceed_packets_total", "dscp", "EF")
	dropped, _ := reg.CounterValue("diffserv_police_drops_total", "dscp", "EF")
	return PingPongPoint{
		Throughput: units.RateOf(oneWayBytes, dur),
		Conform:    conform, Exceed: exceed, Dropped: dropped,
		Events: tb.K.EventsRun(),
	}
}

// Figure5Table renders the result like the paper's plot, one row per
// reservation with a column per message size.
func Figure5Table(r Figure5Result) trace.Table {
	t := trace.Table{
		Title:   "Figure 5: ping-pong one-way throughput (Kb/s) vs one-way reservation",
		Headers: []string{"reservation"},
	}
	for _, s := range r.MessageSizes {
		t.Headers = append(t.Headers, fmt.Sprintf("%dKb msgs", s.Bits()/1000))
	}
	for i := range r.Curves[r.MessageSizes[0]] {
		row := []string{fmt.Sprintf("%.0f", r.Curves[r.MessageSizes[0]][i].Reservation.Kbps())}
		for _, s := range r.MessageSizes {
			row = append(row, fmt.Sprintf("%.0f", r.Curves[s][i].Throughput.Kbps()))
		}
		t.Add(row...)
	}
	row := []string{"no-contention"}
	for _, s := range r.MessageSizes {
		row = append(row, fmt.Sprintf("%.0f", r.NoContention[s].Kbps()))
	}
	t.Add(row...)
	return t
}
