package experiments

import (
	"fmt"
	"time"

	"mpichgq/internal/ctrlplane"
	"mpichgq/internal/diffserv"
	"mpichgq/internal/faults"
	"mpichgq/internal/gara"
	"mpichgq/internal/netsim"
	"mpichgq/internal/sim"
	"mpichgq/internal/trace"
	"mpichgq/internal/units"
)

// figGBandwidth is each co-reservation's per-segment bandwidth.
const figGBandwidth = 10 * units.Mbps

// figGAttempts is how many sequential co-reservations each run issues.
const figGAttempts = 30

// FigureGPoint is one (loss probability, protocol) cell: how often
// two-domain co-reservation succeeded, and how much EF capacity sat
// orphaned — booked in a domain's slot table while the coordinator held
// no reservation (a failed attempt's or failed cancel's leftovers).
type FigureGPoint struct {
	Loss      float64
	Attempts  int
	Successes int
	// SuccessRate is Successes / Attempts.
	SuccessRate float64
	// LeakMB integrates orphaned committed capacity over the run, in
	// megabytes of EF capacity that no live reservation was entitled to.
	LeakMB float64
}

// FigureGResult compares the two-phase lease-backed protocol against
// naive one-shot co-reservation across control-channel loss rates, both
// runs including an RM crash/restart mid-experiment.
type FigureGResult struct {
	Losses   []float64
	TwoPhase []FigureGPoint
	Naive    []FigureGPoint
}

// RunFigureG runs the control-plane robustness figure: two
// administrative domains behind a lossy control channel (plus one RM
// crash/restart), issuing sequential finite-window co-reservations
// under increasing loss. The two-phase protocol prepares under a lease
// and commits, so a lost reply or a crash strands at most one lease
// TTL of capacity; the naive protocol books immediately and relies on
// best-effort cancels, so every lost rollback orphans a segment until
// its window expires.
func RunFigureG(cfg Config) FigureGResult {
	cfg = cfg.withDefaults()
	res := FigureGResult{Losses: []float64{0, 0.2, 0.4, 0.6}}
	// Two protocol variants per loss rate, every point on its own
	// kernel. Seeds keep the historical per-loss derivation (both
	// protocols see identical fault schedules at each loss rate).
	points := Sweep(cfg.Parallel, 2*len(res.Losses), func(i int) FigureGPoint {
		loss := res.Losses[i/2]
		seed := cfg.Seed + int64(100*(i/2))
		return runFigGPoint(cfg, i, seed, loss, i%2 == 0)
	})
	for i := range res.Losses {
		res.TwoPhase = append(res.TwoPhase, points[2*i])
		res.Naive = append(res.Naive, points[2*i+1])
	}
	return res
}

// runFigGPoint runs one protocol variant at one loss rate.
func runFigGPoint(cfg Config, pid int, seed int64, loss float64, twoPhase bool) FigureGPoint {
	hold := cfg.scale(time.Second)
	gap := cfg.scale(1500 * time.Millisecond)
	// Long windows against a short lease TTL: an orphaned two-phase
	// lease expires within the TTL, while a naive orphan stays booked
	// for the rest of its window.
	window := cfg.scale(40 * time.Second)
	dur := cfg.scale(160 * time.Second)

	// Same two-domain topology as the ctrlplane tests:
	//
	//	hostA - e1 - c1 ===border=== c2 - e2 - hostB
	k := sim.New(seed)
	cfg.enableTrace(k)
	n := netsim.New(k)
	hostA, e1, c1 := n.AddNode("hostA"), n.AddNode("e1"), n.AddNode("c1")
	c2, e2, hostB := n.AddNode("c2"), n.AddNode("e2"), n.AddNode("hostB")
	l1 := n.Connect(hostA, e1, 100*units.Mbps, time.Millisecond)
	l2 := n.Connect(e1, c1, 100*units.Mbps, time.Millisecond)
	border := n.Connect(c1, c2, 50*units.Mbps, 2*time.Millisecond)
	l4 := n.Connect(c2, e2, 100*units.Mbps, time.Millisecond)
	l5 := n.Connect(e2, hostB, 100*units.Mbps, time.Millisecond)
	n.ComputeRoutes()
	dom1 := diffserv.NewDomain(k)
	dom1.EnableEFAll(e1, c1)
	dom2 := diffserv.NewDomain(k)
	dom2.EnableEFAll(c2, e2)
	rm1 := gara.NewNetworkRM(n, dom1, 0.5)
	rm1.Scope = gara.LinkScope(l1, l2, border)
	rm2 := gara.NewNetworkRM(n, dom2, 0.5)
	rm2.Scope = gara.LinkScope(l4, l5)
	g1, g2 := gara.New(k), gara.New(k)
	g1.Register(rm1)
	g2.Register(rm2)

	// Protocol timescales are fixed constants — channel delay, RPC
	// timeout, and lease TTL are properties of the control plane, not
	// of the experiment length, so the figure keeps its character under
	// -scale.
	plane := ctrlplane.NewPlane(k, ctrlplane.Options{
		Timeout:  50 * time.Millisecond,
		Deadline: 500 * time.Millisecond,
		LeaseTTL: 3 * time.Second,
	})
	plane.AddDomain("dom1", g1, rm1)
	plane.AddDomain("dom2", g2, rm2)
	co := plane.Coordinator()

	sc := faults.NewScenario("figG-chaos").
		CtrlLoss("dom1", 0, dur, loss).
		CtrlLoss("dom2", 0, dur, loss).
		CtrlCrash(cfg.scale(25*time.Second), "dom2").
		CtrlRestart(cfg.scale(28*time.Second), "dom2")
	sc.MustApplyWith(n, plane)

	pt := FigureGPoint{Loss: loss}
	// holding is true while the driver legitimately owns capacity — from
	// the start of an attempt until its cancel returns. Outside those
	// windows any committed EF capacity is a leak.
	holding := false
	k.Spawn("figG-driver", func(ctx *sim.Ctx) {
		for i := 0; i < figGAttempts; i++ {
			spec := gara.Spec{
				Type:      gara.ResourceNetwork,
				Flow:      diffserv.MatchHostPair(hostA.Addr(), hostB.Addr(), netsim.ProtoUDP),
				Bandwidth: figGBandwidth,
				Start:     ctx.Now(),
				Duration:  window,
			}
			holding = true
			var mr *ctrlplane.MultiRes
			var err error
			if twoPhase {
				mr, err = co.Reserve(ctx, spec)
			} else {
				mr, err = co.ReserveNaive(ctx, spec)
			}
			pt.Attempts++
			if err == nil {
				pt.Successes++
				ctx.Sleep(hold)
				// Cancel is idempotent and survives an RM restart (the
				// recovered tables release by id), so a driver that
				// retries a failed cancel bounds the orphan to the retry
				// horizon instead of the window end.
				for try := 0; ; try++ {
					if cerr := mr.Cancel(ctx); cerr == nil || try == 2 {
						break
					}
					ctx.Sleep(gap)
				}
			}
			holding = false
			ctx.Sleep(gap)
		}
	})

	// Sampler: integrate committed-but-unowned EF capacity.
	leakBits := 0.0
	sample := cfg.scale(250 * time.Millisecond)
	k.Spawn("figG-sampler", func(ctx *sim.Ctx) {
		for ctx.Now() < dur {
			ctx.Sleep(sample)
			if holding {
				continue
			}
			committed := 0.0
			for _, l := range n.Links() {
				for _, out := range []*netsim.Iface{l.A(), l.B()} {
					committed += rm1.Table(out).CommittedAt(ctx.Now())
					committed += rm2.Table(out).CommittedAt(ctx.Now())
				}
			}
			leakBits += committed * sample.Seconds()
		}
	})

	if err := k.RunUntil(dur); err != nil {
		panic(fmt.Sprintf("experiments: figure G (loss %.2f): %v", loss, err))
	}
	mode := "naive"
	if twoPhase {
		mode = "two-phase"
	}
	cfg.collectTrace(k, pid, fmt.Sprintf("figG loss=%.0f%% %s", 100*loss, mode))
	pt.SuccessRate = float64(pt.Successes) / float64(pt.Attempts)
	pt.LeakMB = leakBits / 8e6
	return pt
}

// FigureGTable renders the per-loss comparison.
func FigureGTable(r FigureGResult) trace.Table {
	t := trace.Table{Headers: []string{
		"ctrl loss", "2-phase ok", "2-phase leak", "naive ok", "naive leak",
	}}
	for i := range r.Losses {
		tp, nv := r.TwoPhase[i], r.Naive[i]
		t.Add(fmt.Sprintf("%.0f%%", 100*r.Losses[i]),
			fmt.Sprintf("%d/%d", tp.Successes, tp.Attempts),
			fmt.Sprintf("%.1f MB", tp.LeakMB),
			fmt.Sprintf("%d/%d", nv.Successes, nv.Attempts),
			fmt.Sprintf("%.1f MB", nv.LeakMB))
	}
	return t
}
