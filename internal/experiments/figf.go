package experiments

import (
	"fmt"
	"time"

	gq "mpichgq/internal/core"
	"mpichgq/internal/faults"
	"mpichgq/internal/garnet"
	"mpichgq/internal/mpi"
	"mpichgq/internal/netsim"
	"mpichgq/internal/sim"
	"mpichgq/internal/tcpsim"
	"mpichgq/internal/trace"
	"mpichgq/internal/trafficgen"
	"mpichgq/internal/units"
)

// figFTarget is the premium flow's payload goodput target. It is sized
// to fit the primary WAN path's EF budget (0.7 x 45 Mb/s) but not the
// quarter-rate backup path's (0.7 x 11.25 Mb/s), so re-admission over
// the failover route is refused and the self-healing agent has to fall
// back to best effort until the primary link returns.
const figFTarget = 16 * units.Mbps

// figFReserve is the premium reservation. The headroom over the
// pacing target is Table 1's lesson applied: after the outage the TCP
// flow is burstier than a steady-state one, and a reservation cut
// exactly to the mean lets the policer clip its recovery bursts.
const figFReserve = 18 * units.Mbps

// figFWANRate is the remote site's primary WAN capacity.
const figFWANRate = 45 * units.Mbps

// FigureFCurve is one goodput timeline through the WAN flap.
type FigureFCurve struct {
	Name   string
	Series trace.Series
	// Mean payload goodput before the flap, during the outage, and in
	// the recovery window after repairs have settled.
	PreFlap, Outage, Recovery units.BitRate
	// RecoveryFrac is Recovery divided by the goodput target.
	RecoveryFrac float64
}

// FigureFResult holds the robustness figure: the same premium MPI flow
// run through a WAN link flap under three policies.
type FigureFResult struct {
	Target   units.BitRate
	Down, Up time.Duration
	Dur      time.Duration

	NoQoS  FigureFCurve // best effort throughout
	Static FigureFCurve // premium reservation, no self-healing
	Healed FigureFCurve // premium reservation + watchdog repair loop

	// Watchdog activity during the self-healing run.
	Repairs, Fallbacks, Upgrades int
}

// RunFigureF runs the fault-injection experiment: a 16 Mb/s premium
// MPI flow to a remote site whose primary WAN link flaps down for 12
// seconds, with a UDP generator overwhelming the same path throughout.
// The testbed is built with backup paths, so when the link fails
// traffic re-routes onto a quarter-capacity standby route.
//
// Three runs, identical except for QoS policy:
//
//   - no QoS: best effort before, during, and after the outage — the
//     generator crushes it everywhere.
//   - static QoS: a premium reservation that degrades when its path
//     breaks and is never repaired, so the flow is effectively best
//     effort from the outage onward.
//   - self-healing: the watchdog notices the breach, retries
//     re-admission with backoff (refused: the target exceeds the
//     backup path's EF budget), falls back to best effort, and
//     upgrades back to premium once the primary link recovers.
func RunFigureF(cfg Config) FigureFResult {
	cfg = cfg.withDefaults()
	res := FigureFResult{
		Target: figFTarget,
		Down:   cfg.scale(20 * time.Second),
		Up:     cfg.scale(32 * time.Second),
		Dur:    cfg.scale(60 * time.Second),
	}
	type out struct {
		curve FigureFCurve
		wd    *gq.Watchdog
	}
	variants := []struct {
		name          string
		reserve, heal bool
	}{
		{"no QoS", false, false},
		{"static QoS", true, false},
		{"self-healing QoS", true, true},
	}
	outs := Sweep(cfg.Parallel, len(variants), func(i int) out {
		v := variants[i]
		c, wd := runFigFCurve(cfg, v.name, v.reserve, v.heal)
		return out{c, wd}
	})
	res.NoQoS, res.Static, res.Healed = outs[0].curve, outs[1].curve, outs[2].curve
	wd := outs[2].wd
	res.Repairs = wd.Repairs()
	res.Fallbacks = wd.Fallbacks()
	res.Upgrades = wd.Upgrades()
	return res
}

// runFigFCurve runs one policy variant and reduces its timeline to the
// three phase means.
func runFigFCurve(cfg Config, name string, reserve, heal bool) (FigureFCurve, *gq.Watchdog) {
	const msg = 25 * units.KB
	down, up, dur := cfg.scale(20*time.Second), cfg.scale(32*time.Second), cfg.scale(60*time.Second)

	tb := garnet.NewWithOptions(garnet.Options{Seed: cfg.Seed, BackupPaths: true})
	far := tb.AddSite("far", figFWANRate, 5*time.Millisecond)
	faults.NewScenario("figF-wan-flap").
		Flap("core-far-edge", down, up).
		MustApply(tb.Net)

	// The generator shares the premium flow's whole path, including
	// the flapping WAN link and its backup.
	bl := trafficgen.NewBackground(trafficgen.BackgroundOptions{
		Rate: ContentionRate, PacketSize: 1000, Jitter: 0.1,
		Fluid: cfg.FluidBackground,
	})
	if err := bl.Run(tb.CompSrc, far, 9000); err != nil {
		panic(err)
	}

	// Buffers above the ~23 KB bandwidth-delay product of the 11.5 ms
	// round trip, so the premium flow is never window-limited.
	opts := tcpsim.DefaultOptions()
	opts.SndBuf = units.MB
	opts.RcvBuf = units.MB
	job := tb.NewMPIJob([]*netsim.Node{tb.PremSrc, far}, opts, mpi.JobOptions{EagerThreshold: units.MB})
	agent := gq.NewAgent(tb.Gara, job)
	bw := trace.NewBandwidthTrace(cfg.scale(time.Second))
	var wd *gq.Watchdog

	job.Start(func(ctx *sim.Ctx, r *mpi.Rank) {
		pc, err := r.PairComm(ctx, 1-r.ID())
		if err != nil {
			panic(err)
		}
		peer := 1 - r.RankIn(pc)
		if r.ID() == 0 {
			if reserve {
				attr := &gq.QosAttribute{Class: gq.Premium, Bandwidth: figFReserve}
				if err := r.AttrPut(pc, agent.Keyval(), attr); err != nil {
					panic(err)
				}
			}
			if heal {
				w, err := agent.NewWatchdog(r, pc, figFTarget)
				if err != nil {
					panic(err)
				}
				// Pace repair attempts on the experiment's own clock.
				w.Backoff = gq.NewBackoff(sim.NewRNG(tb.K.RNG().Int63()),
					cfg.scale(500*time.Millisecond), cfg.scale(4*time.Second))
				wd = w
				ctx.SpawnChild("figF-watchdog", func(wctx *sim.Ctx) {
					w.Run(wctx, cfg.scale(250*time.Millisecond), dur)
				})
			}
			gap := figFTarget.TimeToSend(msg)
			for ctx.Now() < dur {
				if err := r.Send(ctx, pc, peer, 0, msg, nil); err != nil {
					return
				}
				ctx.Sleep(gap)
			}
			return
		}
		for {
			m, err := r.Recv(ctx, pc, peer, 0)
			if err != nil {
				return
			}
			bw.Add(ctx.Now(), m.Len)
		}
	})
	if err := tb.K.RunUntil(dur); err != nil {
		panic(fmt.Sprintf("experiments: figure F (%s): %v", name, err))
	}

	c := FigureFCurve{
		Name:     name,
		Series:   bw.Series(name),
		PreFlap:  bw.MeanRate(cfg.scale(5*time.Second), down),
		Outage:   bw.MeanRate(down+cfg.scale(2*time.Second), up),
		Recovery: bw.MeanRate(cfg.scale(45*time.Second), dur),
	}
	c.RecoveryFrac = float64(c.Recovery) / float64(figFTarget)
	return c, wd
}

// FigureFTable renders the per-phase goodput means.
func FigureFTable(r FigureFResult) trace.Table {
	t := trace.Table{Headers: []string{"policy", "pre-flap", "outage", "recovery", "recovered"}}
	for _, c := range []FigureFCurve{r.NoQoS, r.Static, r.Healed} {
		t.Add(c.Name, c.PreFlap.String(), c.Outage.String(), c.Recovery.String(),
			fmt.Sprintf("%.0f%%", 100*c.RecoveryFrac))
	}
	return t
}
