package experiments

import (
	"sort"
	"time"

	gq "mpichgq/internal/core"
	"mpichgq/internal/garnet"
	"mpichgq/internal/mpi"
	"mpichgq/internal/sim"
	"mpichgq/internal/tcpsim"
	"mpichgq/internal/trace"
	"mpichgq/internal/trafficgen"
	"mpichgq/internal/units"
)

// LatencyResult measures the low-latency QoS class, which §4.1 defines
// ("suitable for small message traffic: e.g., certain collective
// operations") but the paper never evaluates: small-message round-trip
// times under full contention, best effort versus low-latency.
type LatencyResult struct {
	// RTT distributions (mean / median / p99) per class.
	BestEffort, LowLatency LatencyStats
	// Uncontended is the baseline RTT on a quiet network.
	Uncontended time.Duration
}

// LatencyStats summarizes one RTT sample set.
type LatencyStats struct {
	Mean, Median, P99 time.Duration
	Rounds            int
}

func summarize(samples []time.Duration) LatencyStats {
	if len(samples) == 0 {
		return LatencyStats{}
	}
	sorted := append([]time.Duration(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var total time.Duration
	for _, s := range sorted {
		total += s
	}
	p99 := sorted[len(sorted)*99/100]
	return LatencyStats{
		Mean:   total / time.Duration(len(sorted)),
		Median: sorted[len(sorted)/2],
		P99:    p99,
		Rounds: len(sorted),
	}
}

// RunLatency measures 1 KB ping-pong RTTs under saturating contention
// with and without the low-latency class, plus the quiet baseline.
func RunLatency(cfg Config) LatencyResult {
	cfg = cfg.withDefaults()
	rounds := int(100 * cfg.TimeScale)
	if rounds < 20 {
		rounds = 20
	}
	measure := func(class gq.QosClass, contended bool) []time.Duration {
		// OC12 access links: with access = bottleneck rate, the
		// blaster's own access link would absorb the overload and the
		// shared router queue would never build. Faster access moves
		// the contention onto the shared hop, where queueing delay —
		// the thing the expedited queue bypasses — accumulates.
		tb := garnet.NewWithOptions(garnet.Options{Seed: cfg.Seed, AccessRate: 622 * units.Mbps})
		if contended {
			// Always packet-level: the best-effort RTT distribution
			// being measured is exactly the per-packet queueing that
			// fluid mode abstracts away.
			b := trafficgen.NewBackground(trafficgen.BackgroundOptions{
				Rate: 175 * units.Mbps, PacketSize: 1000, Jitter: 0.05,
			})
			if err := b.Run(tb.CompSrc, tb.CompDst, 9000); err != nil {
				panic(err)
			}
		}
		job := tb.NewMPIPair(tcpsim.DefaultOptions(), mpi.JobOptions{})
		agent := gq.NewAgent(tb.Gara, job)
		var samples []time.Duration
		job.Start(func(ctx *sim.Ctx, r *mpi.Rank) {
			pc, err := r.PairComm(ctx, 1-r.ID())
			if err != nil {
				panic(err)
			}
			if class != gq.BestEffort {
				attr := &gq.QosAttribute{Class: class, Bandwidth: 200 * units.Kbps, MaxMessageSize: units.KB}
				if err := r.AttrPut(pc, agent.Keyval(), attr); err != nil {
					panic(err)
				}
			}
			peer := 1 - r.RankIn(pc)
			for i := 0; i < rounds; i++ {
				if r.ID() == 0 {
					start := ctx.Now()
					if err := r.Send(ctx, pc, peer, 0, units.KB, nil); err != nil {
						return
					}
					if _, err := r.Recv(ctx, pc, peer, 0); err != nil {
						return
					}
					samples = append(samples, ctx.Now()-start)
					ctx.Sleep(50 * time.Millisecond)
				} else {
					if _, err := r.Recv(ctx, pc, peer, 0); err != nil {
						return
					}
					if err := r.Send(ctx, pc, peer, 0, units.KB, nil); err != nil {
						return
					}
				}
			}
		})
		// Generous deadline: best-effort rounds can take RTO-scale
		// times each.
		if err := tb.K.RunUntil(time.Duration(2*rounds) * time.Second); err != nil {
			panic(err)
		}
		return samples
	}
	return LatencyResult{
		BestEffort:  summarize(measure(gq.BestEffort, true)),
		LowLatency:  summarize(measure(gq.LowLatency, true)),
		Uncontended: summarize(measure(gq.BestEffort, false)).Median,
	}
}

// LatencyTable renders the result.
func LatencyTable(r LatencyResult) trace.Table {
	t := trace.Table{
		Title:   "Low-latency class: 1 KB ping-pong RTT under saturating contention",
		Headers: []string{"class", "rounds", "mean", "median", "p99"},
	}
	add := func(name string, s LatencyStats) {
		t.Add(name, itoa(s.Rounds), s.Mean.String(), s.Median.String(), s.P99.String())
	}
	add("best effort", r.BestEffort)
	add("low latency", r.LowLatency)
	t.Add("(quiet baseline)", "", "", r.Uncontended.String(), "")
	return t
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}
