package experiments

import (
	"fmt"
	"time"

	gq "mpichgq/internal/core"
	"mpichgq/internal/garnet"
	"mpichgq/internal/trace"
	"mpichgq/internal/units"
)

// Figure6Point is one (reservation, achieved) sample.
type Figure6Point struct {
	Reservation units.BitRate
	Achieved    units.BitRate
}

// Figure6Result holds one achieved-vs-reservation curve per offered
// rate.
type Figure6Result struct {
	// Offered rates: 400/800/1600/2400 Kb/s (5/10/20/30 KB frames at
	// 10 fps).
	Offered []units.BitRate
	Curves  map[units.BitRate][]Figure6Point
}

// Figure6FrameSizes are the paper's frame sizes at 10 fps.
var Figure6FrameSizes = []units.ByteSize{5 * units.KB, 10 * units.KB, 20 * units.KB, 30 * units.KB}

// RunFigure6 reproduces Figure 6: the visualization application
// attempting 400/800/1600/2400 Kb/s under contention, as a function
// of reservation. "Achieved throughput increases with reservation
// until the reservation is 'adequate'. However ... the performance at
// lower reservations is significantly worse than we would expect from
// simple scaling ... due to TCP congestion control strategies. We
// also see that we require a reservation value of around 1.06 of the
// sending rate, because of TCP packet overheads."
func RunFigure6(cfg Config) Figure6Result {
	cfg = cfg.withDefaults()
	res := Figure6Result{Curves: make(map[units.BitRate][]Figure6Point)}
	dur := cfg.scale(30 * time.Second)
	// Flatten the (frame, reservation) grid so the points fan out
	// across workers like the other sweep figures; every point runs
	// its own kernel at the same seed as before, and reassembly below
	// preserves the sequential order exactly. The reservation fracs
	// bracket the offered rate: well below, slightly below, at
	// ~1.06x, and above.
	fracs := []float64{0.25, 0.5, 0.75, 0.9, 1.0, 1.06, 1.25, 1.5}
	type job struct {
		frame units.ByteSize
		rsv   units.BitRate
	}
	var jobs []job
	for _, frame := range Figure6FrameSizes {
		offered := units.RateOf(frame*10, time.Second)
		res.Offered = append(res.Offered, offered)
		for _, frac := range fracs {
			jobs = append(jobs, job{frame, units.BitRate(float64(offered) * frac)})
		}
	}
	achieved := Sweep(cfg.Parallel, len(jobs), func(i int) units.BitRate {
		return dvisAchieved(cfg, jobs[i].frame, 10, jobs[i].rsv, dur)
	})
	for i, j := range jobs {
		offered := units.RateOf(j.frame*10, time.Second)
		res.Curves[offered] = append(res.Curves[offered], Figure6Point{Reservation: j.rsv, Achieved: achieved[i]})
	}
	return res
}

// dvisAchieved measures the visualization app's achieved rate with a
// given reservation under standard contention.
func dvisAchieved(cfg Config, frame units.ByteSize, fps int, reservation units.BitRate, dur time.Duration) units.BitRate {
	tb := garnet.New(cfg.Seed)
	cfg.blast(tb, 0, 0)
	d := &DVis{
		FrameSize: frame,
		FPS:       fps,
		Duration:  dur,
	}
	if reservation > 0 {
		d.Attr = &gq.QosAttribute{Class: gq.Premium, Bandwidth: reservation}
		// Sweep the raw reservation: the 1.06 requirement must
		// emerge from TCP, not be applied by the agent.
		d.AgentMutate = func(a *gq.Agent) { a.OverheadFactor = 1.0 }
	}
	return d.Run(tb).Achieved
}

// Figure6Table renders the curves.
func Figure6Table(r Figure6Result) trace.Table {
	t := trace.Table{
		Title:   "Figure 6: visualization app achieved bandwidth (Kb/s) vs reservation (Kb/s)",
		Headers: []string{"res/offered"},
	}
	for _, o := range r.Offered {
		t.Headers = append(t.Headers, fmt.Sprintf("attempting %.0f", o.Kbps()))
	}
	n := len(r.Curves[r.Offered[0]])
	for i := 0; i < n; i++ {
		frac := r.Curves[r.Offered[0]][i].Reservation.Kbps() / r.Offered[0].Kbps()
		row := []string{fmt.Sprintf("%.2fx", frac)}
		for _, o := range r.Offered {
			p := r.Curves[o][i]
			row = append(row, fmt.Sprintf("%.0f", p.Achieved.Kbps()))
		}
		t.Add(row...)
	}
	return t
}
