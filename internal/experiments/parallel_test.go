package experiments

import (
	"fmt"
	"strings"
	"testing"
)

func TestSweepOrderAndWidths(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 8, 100} {
		got := Sweep(workers, 37, func(i int) int { return i * i })
		for i, v := range got {
			if v != i*i {
				t.Fatalf("parallel=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
	if n := len(Sweep(4, 0, func(i int) int { return i })); n != 0 {
		t.Fatalf("empty sweep returned %d results", n)
	}
}

func TestSweepPanicPropagates(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("sweep swallowed the panic")
		}
		if s, ok := r.(string); !ok || !strings.Contains(s, "boom") {
			t.Fatalf("panic payload = %v, want the point's message", r)
		}
	}()
	Sweep(4, 16, func(i int) int {
		if i == 7 {
			panic("boom")
		}
		return i
	})
}

func TestDeriveSeedStable(t *testing.T) {
	// Pinned values: changing DeriveSeed silently re-seeds every sweep
	// built on it, which would invalidate committed results.
	if got := DeriveSeed(1, 0); got != DeriveSeed(1, 0) {
		t.Fatal("DeriveSeed not deterministic")
	}
	seen := map[int64]bool{}
	for i := 0; i < 1000; i++ {
		s := DeriveSeed(1, i)
		if seen[s] {
			t.Fatalf("DeriveSeed collision at point %d", i)
		}
		seen[s] = true
	}
	if DeriveSeed(1, 0) == DeriveSeed(2, 0) {
		t.Fatal("root seed does not decorrelate streams")
	}
}

// TestFiguresDeterministicAcrossParallel is the regression test for
// the parallel sweep's core invariant: fig5/fig7/figF/figG render
// byte-identically for -parallel 1 and -parallel 8, and across two
// runs at the same seed. Worker count must only ever change
// wall-clock time.
func TestFiguresDeterministicAcrossParallel(t *testing.T) {
	scale := 0.05
	if testing.Short() {
		scale = 0.02
	}
	figures := []struct {
		name   string
		render func(cfg Config) string
	}{
		{"fig5", func(cfg Config) string { return Figure5Table(RunFigure5(cfg)).String() }},
		{"fig7", func(cfg Config) string { return fmt.Sprintf("%+v", RunFigure7(cfg)) }},
		{"figF", func(cfg Config) string {
			r := RunFigureF(cfg)
			return FigureFTable(r).String() + fmt.Sprintf("%d/%d/%d", r.Repairs, r.Fallbacks, r.Upgrades)
		}},
		{"figG", func(cfg Config) string { return FigureGTable(RunFigureG(cfg)).String() }},
		// Fluid-background variants: the hybrid model must hold the
		// same invariant. Its lazy queue integration and fixed-point
		// rate solver run inside each point's own kernel, so worker
		// count must not leak into the analytic state.
		{"fig5-fluid", func(cfg Config) string {
			cfg.FluidBackground = true
			return Figure5Table(RunFigure5(cfg)).String()
		}},
		{"figF-fluid", func(cfg Config) string {
			cfg.FluidBackground = true
			r := RunFigureF(cfg)
			return FigureFTable(r).String() + fmt.Sprintf("%d/%d/%d", r.Repairs, r.Fallbacks, r.Upgrades)
		}},
	}
	for _, fig := range figures {
		fig := fig
		t.Run(fig.name, func(t *testing.T) {
			seq := fig.render(Config{Seed: 1, TimeScale: scale, Parallel: 1})
			par := fig.render(Config{Seed: 1, TimeScale: scale, Parallel: 8})
			if seq != par {
				t.Errorf("output differs between -parallel 1 and -parallel 8:\n--- parallel 1 ---\n%s\n--- parallel 8 ---\n%s", seq, par)
			}
			again := fig.render(Config{Seed: 1, TimeScale: scale, Parallel: 8})
			if par != again {
				t.Errorf("two runs at the same seed differ:\n--- first ---\n%s\n--- second ---\n%s", par, again)
			}
		})
	}
}
