package experiments

import (
	"testing"
)

// TestFigureFSelfHealingRecovers asserts the robustness figure's
// acceptance shape on an abbreviated run: after the WAN flap the
// self-healing curve climbs back to at least 90% of the 16 Mb/s
// target, while the static-QoS curve (reservation degraded, never
// repaired) and the no-QoS curve stay crushed by the generator.
func TestFigureFSelfHealingRecovers(t *testing.T) {
	r := RunFigureF(QuickConfig())
	if r.Healed.RecoveryFrac < 0.9 {
		t.Fatalf("self-healing recovery = %v (%.0f%% of target), want >= 90%%",
			r.Healed.Recovery, 100*r.Healed.RecoveryFrac)
	}
	if r.Repairs+r.Upgrades < 1 {
		t.Fatalf("watchdog made no repairs (repairs=%d fallbacks=%d upgrades=%d)",
			r.Repairs, r.Fallbacks, r.Upgrades)
	}
	for _, c := range []FigureFCurve{r.NoQoS, r.Static} {
		if c.RecoveryFrac > 0.5*r.Healed.RecoveryFrac {
			t.Fatalf("%s recovery %v rivals self-healing %v — healing adds nothing",
				c.Name, c.Recovery, r.Healed.Recovery)
		}
	}
	// Both reserved runs hold the target before the flap; without a
	// reservation the generator dominates from the start.
	for _, c := range []FigureFCurve{r.Static, r.Healed} {
		if float64(c.PreFlap) < 0.9*float64(r.Target) {
			t.Fatalf("%s pre-flap goodput = %v, want near %v", c.Name, c.PreFlap, r.Target)
		}
	}
	if float64(r.NoQoS.PreFlap) > 0.7*float64(r.Target) {
		t.Fatalf("no-QoS pre-flap goodput = %v, expected contention to dominate", r.NoQoS.PreFlap)
	}
}

// TestFigureFDeterministic replays the abbreviated run and requires
// identical phase means.
func TestFigureFDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("second full figF run")
	}
	a := RunFigureF(QuickConfig())
	b := RunFigureF(QuickConfig())
	for i, pair := range [][2]FigureFCurve{{a.NoQoS, b.NoQoS}, {a.Static, b.Static}, {a.Healed, b.Healed}} {
		if pair[0].PreFlap != pair[1].PreFlap || pair[0].Outage != pair[1].Outage || pair[0].Recovery != pair[1].Recovery {
			t.Fatalf("curve %d: same seed, different means:\n  %+v\n  %+v", i, pair[0], pair[1])
		}
	}
}
