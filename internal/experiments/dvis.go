package experiments

import (
	"fmt"
	"time"

	gq "mpichgq/internal/core"
	"mpichgq/internal/garnet"
	"mpichgq/internal/globusio"
	"mpichgq/internal/metrics"
	"mpichgq/internal/mpi"
	"mpichgq/internal/sim"
	"mpichgq/internal/tcpsim"
	"mpichgq/internal/trace"
	"mpichgq/internal/units"
)

// DVis is the paper's distance-visualization pipeline (§5.3): an MPI
// program that "communicates a stream of fixed-sized messages from a
// sender to a receiver at a fixed rate; both the rate ('frames per
// second') and the message size ('frame size') can be adjusted, hence
// varying both the generated bandwidth and the burstiness of the
// traffic."
type DVis struct {
	// FrameSize and FPS define the stream; offered bandwidth is
	// FrameSize × FPS.
	FrameSize units.ByteSize
	FPS       int
	// Duration of the run.
	Duration time.Duration
	// WorkPerKB is application "work" (rendering) per KB of frame,
	// charged to the sender's CPU between frames. The paper added
	// this after noticing their first version ("sent a chunk of
	// data, slept, repeated") was an inaccurate simulation (§5.5).
	WorkPerKB time.Duration
	// CopyCostPerKB is the per-KB socket copy cost (globus-io).
	CopyCostPerKB time.Duration
	// SockBuf overrides MPI socket buffers (0 = default 64 KB).
	SockBuf units.ByteSize
	// EagerThreshold overrides the job's eager/rendezvous switch
	// (0 = 1 MB: MPICH's TCP devices of the era pushed even large
	// messages eagerly; rendezvous stalls at frame tails interact
	// badly with policers — see AblationEagerThreshold).
	EagerThreshold units.ByteSize
	// TCPOpts overrides the transport options (nil = defaults). The
	// era-TCP ablation uses this to set 500 ms timer granularity and
	// delayed ACKs.
	TCPOpts *tcpsim.Options
	// Attr, if non-nil, is put on the pair communicator before
	// streaming (by both ranks).
	Attr *gq.QosAttribute
	// AgentMutate tweaks the agent before the run (bucket policy
	// etc.).
	AgentMutate func(*gq.Agent)
	// TraceBucket sizes the bandwidth trace buckets. Default 1 s.
	TraceBucket time.Duration
	// Shaper enables end-system traffic shaping on the MPI
	// connections.
	Shaper bool
	// JobHook runs after the MPI job is created but before it starts
	// (e.g. to attach a CPU hog to the sender's host).
	JobHook func(job *mpi.Job)
	// SenderEvents runs alongside the sender (reservations mid-run
	// etc.); it receives the agent, the sender rank, and the pair
	// communicator once streaming begins.
	SenderEvents func(ctx *sim.Ctx, agent *gq.Agent, sender *mpi.Rank, pc *mpi.Comm)
}

// DVisResult summarizes one run.
type DVisResult struct {
	Offered   units.BitRate
	Achieved  units.BitRate // mean over the full run
	Bandwidth trace.Series  // receiver-side bandwidth trace
	SeqTrace  *trace.SeqTrace
	Frames    int
	// SenderStats is the sender-side TCP connection state at the end
	// of the run (diagnostics).
	SenderStats tcpsim.ConnStats
}

// OfferedRate returns the configured stream rate.
func (d *DVis) OfferedRate() units.BitRate {
	return units.RateOf(d.FrameSize*units.ByteSize(d.FPS), time.Second)
}

// Run executes the pipeline on a fresh testbed and returns the
// result. The testbed is returned for callers that want to inspect
// router state.
func (d *DVis) Run(tb *garnet.Testbed) DVisResult {
	if d.TraceBucket == 0 {
		d.TraceBucket = time.Second
	}
	jobOpts := mpi.JobOptions{
		CopyCostPerKB:  d.CopyCostPerKB,
		SockBuf:        d.SockBuf,
		EagerThreshold: d.EagerThreshold,
	}
	if jobOpts.EagerThreshold == 0 {
		jobOpts.EagerThreshold = units.MB
	}
	if d.Shaper {
		reserved := d.OfferedRate()
		if d.Attr != nil && d.Attr.Bandwidth > 0 {
			reserved = d.Attr.Bandwidth
		}
		jobOpts.Shaper = shaperFor(reserved)
	}
	tcpOpts := tcpsim.DefaultOptions()
	if d.TCPOpts != nil {
		tcpOpts = *d.TCPOpts
	}
	job := tb.NewMPIPair(tcpOpts, jobOpts)
	if d.JobHook != nil {
		d.JobHook(job)
	}
	agent := gq.NewAgent(tb.Gara, job)
	if d.AgentMutate != nil {
		d.AgentMutate(agent)
	}
	bw := trace.NewBandwidthTrace(d.TraceBucket)
	frames := 0
	interval := time.Second / time.Duration(d.FPS)
	// The TCP sequence trace is reconstructed from the flight
	// recorder's tcp-segment events after the run. Size the ring for a
	// multi-second run with background blast traffic, and note where
	// this run's events begin.
	rec := tb.K.Metrics().Events()
	rec.SetCapacity(1 << 16)
	var evStart uint64
	var senderNode string
	job.Start(func(ctx *sim.Ctx, r *mpi.Rank) {
		pc, err := r.PairComm(ctx, 1-r.ID())
		if err != nil {
			panic(err)
		}
		if d.Attr != nil {
			a := *d.Attr
			if err := r.AttrPut(pc, agent.Keyval(), &a); err != nil {
				// Reservation failures leave the run best-effort;
				// the result will show it.
				_ = err
			}
		}
		peer := 1 - r.RankIn(pc)
		if r.ID() == 0 {
			// Sender: the sequence trace starts here — setup traffic
			// (connection establishment, PairComm handshake) stays out
			// of the figure.
			evStart = rec.Seq()
			senderNode = r.Host().Node.Name()
			if d.SenderEvents != nil {
				ctx.SpawnChild("dvis-events", func(ectx *sim.Ctx) {
					d.SenderEvents(ectx, agent, r, pc)
				})
			}
			frameKB := float64(d.FrameSize) / 1000
			for ctx.Now() < d.Duration {
				next := ctx.Now() + interval
				if d.WorkPerKB > 0 {
					r.Compute(ctx, time.Duration(float64(d.WorkPerKB)*frameKB))
				}
				if err := r.Send(ctx, pc, peer, 0, d.FrameSize, nil); err != nil {
					return
				}
				frames++
				if wait := next - ctx.Now(); wait > 0 {
					ctx.Sleep(wait)
				}
			}
			return
		}
		// Receiver.
		for {
			m, err := r.Recv(ctx, pc, peer, 0)
			if err != nil {
				return
			}
			bw.Add(ctx.Now(), m.Len)
		}
	})
	if err := tb.K.RunUntil(d.Duration + time.Second); err != nil {
		panic(fmt.Sprintf("experiments: dvis run: %v", err))
	}
	seq := &trace.SeqTrace{}
	for _, e := range rec.Since(evStart) {
		if e.Type == metrics.EvTCPSegment && e.Subject == senderNode {
			seq.Record(e.At, e.V1, units.ByteSize(e.V2), e.V3 != 0)
		}
	}
	res := DVisResult{
		Offered:   d.OfferedRate(),
		Achieved:  units.RateOf(bw.Total(), d.Duration),
		Bandwidth: bw.Series(fmt.Sprintf("dvis-%v@%dfps", d.FrameSize, d.FPS)),
		SeqTrace:  seq,
		Frames:    frames,
	}
	if conn := job.Rank(0).Conn(1); conn != nil {
		res.SenderStats = conn.Conn().Stats()
	}
	return res
}

// shaperFor builds an end-system shaping profile matching a
// reservation: pace at the reserved rate with a 20 ms burst
// allowance, comfortably within the router's bandwidth/40 (25 ms)
// bucket.
func shaperFor(rate units.BitRate) *globusio.ShaperConfig {
	return &globusio.ShaperConfig{Rate: rate, Depth: rate.BytesIn(20 * time.Millisecond)}
}
