package experiments

import (
	"fmt"
	"time"

	gq "mpichgq/internal/core"
	"mpichgq/internal/diffserv"
	"mpichgq/internal/garnet"
	"mpichgq/internal/mpi"
	"mpichgq/internal/sim"
	"mpichgq/internal/tcpsim"
	"mpichgq/internal/trace"
	"mpichgq/internal/trafficgen"
	"mpichgq/internal/units"
)

// The ablations quantify the design choices DESIGN.md calls out: the
// token-bucket depth rule, end-system shaping, the eager/rendezvous
// threshold, socket buffer sizing under CPU contention, and the
// protocol overhead factor.

// AblationBucketDepth measures the bursty 1 fps / 400 Kb stream's
// achieved rate (reservation fixed at 1.25x offered) across bucket
// depth rules.
func AblationBucketDepth(cfg Config) trace.Table {
	cfg = cfg.withDefaults()
	dur := cfg.scale(30 * time.Second)
	t := trace.Table{
		Title:   "Ablation: bucket depth rule vs achieved rate (1 fps, 400 Kb frames, 500 Kb/s reservation)",
		Headers: []string{"depth rule", "depth", "achieved Kb/s"},
	}
	for _, div := range []struct {
		name string
		div  int
	}{
		{"bandwidth/62 (rtt)", diffserv.RTTBucketDivisor},
		{"bandwidth/40 (normal)", diffserv.NormalBucketDivisor},
		{"bandwidth/10", 10},
		{"bandwidth/4 (large)", diffserv.LargeBucketDivisor},
	} {
		tb := garnet.New(cfg.Seed)
		cfg.blast(tb, 0, 0)
		d := &DVis{
			FrameSize: 50 * units.KB,
			FPS:       1,
			Duration:  dur,
			Attr:      &gq.QosAttribute{Class: gq.Premium, Bandwidth: 500 * units.Kbps},
			AgentMutate: func(a *gq.Agent) {
				a.OverheadFactor = 1.0
				a.BucketDivisor = div.div
			},
		}
		got := d.Run(tb)
		depth := diffserv.DepthForRate(500*units.Kbps, div.div)
		t.Add(div.name, depth.String(), fmt.Sprintf("%.0f", got.Achieved.Kbps()))
	}
	return t
}

// AblationShaping compares router-only policing against end-system
// traffic shaping (§5.4's proposed alternative) for the bursty 1 fps
// workload with the normal (small) bucket.
func AblationShaping(cfg Config) trace.Table {
	cfg = cfg.withDefaults()
	dur := cfg.scale(30 * time.Second)
	t := trace.Table{
		Title:   "Ablation: end-system shaping (1 fps, 400 Kb frames, normal bucket, 500 Kb/s reservation)",
		Headers: []string{"config", "achieved Kb/s"},
	}
	for _, shaped := range []bool{false, true} {
		tb := garnet.New(cfg.Seed)
		cfg.blast(tb, 0, 0)
		d := &DVis{
			FrameSize: 50 * units.KB,
			FPS:       1,
			Duration:  dur,
			Shaper:    shaped,
			Attr:      &gq.QosAttribute{Class: gq.Premium, Bandwidth: 500 * units.Kbps},
			AgentMutate: func(a *gq.Agent) {
				a.OverheadFactor = 1.0
				a.BucketDivisor = diffserv.NormalBucketDivisor
			},
		}
		got := d.Run(tb)
		name := "router policing only"
		if shaped {
			name = "with end-system shaper"
		}
		t.Add(name, fmt.Sprintf("%.0f", got.Achieved.Kbps()))
	}
	return t
}

// AblationEagerThreshold measures ping-pong throughput for a 100 KB
// message across eager thresholds (rendezvous adds a control
// round-trip but avoids unexpected-message buffering).
func AblationEagerThreshold(cfg Config) trace.Table {
	cfg = cfg.withDefaults()
	dur := cfg.scale(10 * time.Second)
	t := trace.Table{
		Title:   "Ablation: eager/rendezvous threshold, 100 KB ping-pong, quiet network",
		Headers: []string{"threshold", "one-way throughput Mb/s"},
	}
	for _, thr := range []units.ByteSize{16 * units.KB, 128 * units.KB, units.MB} {
		tb := garnet.New(cfg.Seed)
		job := tb.NewMPIPair(tcpsim.DefaultOptions(), mpi.JobOptions{EagerThreshold: thr})
		var oneWay units.ByteSize
		const msg = 100 * units.KB
		job.Start(func(ctx *sim.Ctx, r *mpi.Rank) {
			w := r.World()
			for ctx.Now() < dur {
				if r.ID() == 0 {
					if err := r.Send(ctx, w, 1, 0, msg, nil); err != nil {
						return
					}
					if _, err := r.Recv(ctx, w, 1, 0); err != nil {
						return
					}
					oneWay += msg
				} else {
					if _, err := r.Recv(ctx, w, 0, 0); err != nil {
						return
					}
					if err := r.Send(ctx, w, 0, 0, msg, nil); err != nil {
						return
					}
				}
			}
		})
		if err := tb.K.RunUntil(dur); err != nil {
			panic(err)
		}
		mode := "rendezvous"
		if msg <= thr {
			mode = "eager"
		}
		t.Add(fmt.Sprintf("%v (%s)", thr, mode), fmt.Sprintf("%.1f", units.RateOf(oneWay, dur).Mbps()))
	}
	return t
}

// AblationSocketBuffers reproduces the §5.5 anecdote: with small (8 KB)
// socket buffers versus large (256 KB) ones, measure the dvis stream
// at 15 Mb/s with and without CPU contention.
func AblationSocketBuffers(cfg Config) trace.Table {
	cfg = cfg.withDefaults()
	dur := cfg.scale(20 * time.Second)
	t := trace.Table{
		Title:   "Ablation: socket buffer size x CPU contention (15 Mb/s dvis)",
		Headers: []string{"sockbuf", "contended", "achieved Mb/s"},
	}
	for _, buf := range []units.ByteSize{8 * units.KB, 64 * units.KB, 256 * units.KB} {
		for _, hog := range []bool{false, true} {
			tb := garnet.New(cfg.Seed)
			d := &DVis{
				FrameSize:     187500,
				FPS:           10,
				Duration:      dur,
				WorkPerKB:     350 * time.Microsecond,
				CopyCostPerKB: 100 * time.Microsecond,
				SockBuf:       buf,
			}
			if hog {
				d.JobHook = func(job *mpi.Job) {
					h := &trafficgen.CPUHog{}
					h.Run(tb.K, job.Rank(0).Host().CPU)
				}
			}
			got := d.Run(tb)
			t.Add(buf.String(), fmt.Sprintf("%v", hog), fmt.Sprintf("%.1f", got.Achieved.Mbps()))
		}
	}
	return t
}

// AblationOverheadFactor measures the dvis achieved/offered ratio as
// the reservation scales from 1.00x to 1.10x of the offered rate,
// locating the paper's ≈1.06 requirement.
func AblationOverheadFactor(cfg Config) trace.Table {
	cfg = cfg.withDefaults()
	dur := cfg.scale(30 * time.Second)
	t := trace.Table{
		Title:   "Ablation: reservation/offered factor (2400 Kb/s dvis, 10 fps)",
		Headers: []string{"factor", "achieved Kb/s", "achieved/offered"},
	}
	offered := 2400 * units.Kbps
	for _, f := range []float64{1.00, 1.02, 1.04, 1.06, 1.08, 1.10} {
		got := dvisAchieved(cfg, 30*units.KB, 10, units.BitRate(float64(offered)*f), dur)
		t.Add(
			fmt.Sprintf("%.2f", f),
			fmt.Sprintf("%.0f", got.Kbps()),
			fmt.Sprintf("%.2f", float64(got)/float64(offered)),
		)
	}
	return t
}

// EraTCPOptions approximates a 2000-era stack: 500 ms retransmission
// timer granularity and delayed ACKs. Table 1's large burstiness
// penalty depends on this: each lossy frame costs a coarse RTO.
func EraTCPOptions() tcpsim.Options {
	o := tcpsim.DefaultOptions()
	o.MinRTO = 500 * time.Millisecond
	o.InitialRTO = 3 * time.Second
	o.DelayedAck = true
	return o
}

// AblationEraTCP compares the bursty 1 fps stream's achieved rate
// under a modern transport and an era-accurate one, at the normal and
// large buckets. The era stack suffers much more from the small
// bucket, reproducing the magnitude (not just the sign) of Table 1's
// penalty.
func AblationEraTCP(cfg Config) trace.Table {
	cfg = cfg.withDefaults()
	dur := cfg.scale(30 * time.Second)
	t := trace.Table{
		Title:   "Ablation: era-accurate TCP (1 fps, 400 Kb frames, 500 Kb/s reservation)",
		Headers: []string{"transport", "bucket", "achieved Kb/s"},
	}
	era := EraTCPOptions()
	for _, tc := range []struct {
		name string
		opts *tcpsim.Options
		div  int
	}{
		{"modern", nil, diffserv.NormalBucketDivisor},
		{"modern", nil, diffserv.LargeBucketDivisor},
		{"era (500ms timers, delack)", &era, diffserv.NormalBucketDivisor},
		{"era (500ms timers, delack)", &era, diffserv.LargeBucketDivisor},
	} {
		tb := garnet.New(cfg.Seed)
		cfg.blast(tb, 0, 0)
		d := &DVis{
			FrameSize: 50 * units.KB,
			FPS:       1,
			Duration:  dur,
			TCPOpts:   tc.opts,
			Attr:      &gq.QosAttribute{Class: gq.Premium, Bandwidth: 500 * units.Kbps},
			AgentMutate: func(a *gq.Agent) {
				a.OverheadFactor = 1.0
				a.BucketDivisor = tc.div
			},
		}
		got := d.Run(tb)
		bucket := "normal"
		if tc.div == diffserv.LargeBucketDivisor {
			bucket = "large"
		}
		t.Add(tc.name, bucket, fmt.Sprintf("%.0f", got.Achieved.Kbps()))
	}
	return t
}

// AblationFluidValidation validates the hybrid fluid/packet background
// mode (Config.FluidBackground) against the packet-level reference.
// For each Figure 5 message size it measures the plateau point — the
// sweep's largest reservation, past the knee where throughput no
// longer depends on reservation size — under both background modes
// and reports the throughputs, the relative error, and the kernel
// event volume. The model's acceptance bound is a plateau error
// within 2% of packet level (docs/performance.md derives it); the
// event columns show where the speedup comes from: steady fluid
// contention costs zero kernel events between rate changes.
func AblationFluidValidation(cfg Config) trace.Table {
	cfg = cfg.withDefaults()
	dur := cfg.scale(20 * time.Second)
	rsv := Figure5Reservations[len(Figure5Reservations)-1]
	t := trace.Table{
		Title:   "Ablation: fluid background vs packet background (Figure 5 plateau point)",
		Headers: []string{"msg size", "packet Mb/s", "fluid Mb/s", "error", "packet events", "fluid events", "event ratio"},
	}
	type job struct {
		size  units.ByteSize
		fluid bool
	}
	var jobs []job
	for _, size := range Figure5MessageSizes {
		jobs = append(jobs, job{size, false}, job{size, true})
	}
	points := Sweep(cfg.Parallel, len(jobs), func(i int) PingPongPoint {
		c := cfg
		c.FluidBackground = jobs[i].fluid
		return pingPongThroughput(c, i, jobs[i].size, rsv, true, dur)
	})
	for i := 0; i < len(jobs); i += 2 {
		pkt, flu := points[i], points[i+1]
		errFrac := (flu.Throughput.Mbps() - pkt.Throughput.Mbps()) / pkt.Throughput.Mbps()
		t.Add(
			fmt.Sprintf("%dKb", jobs[i].size.Bits()/1000),
			fmt.Sprintf("%.2f", pkt.Throughput.Mbps()),
			fmt.Sprintf("%.2f", flu.Throughput.Mbps()),
			fmt.Sprintf("%+.2f%%", 100*errFrac),
			fmt.Sprintf("%d", pkt.Events),
			fmt.Sprintf("%d", flu.Events),
			fmt.Sprintf("%.1fx", float64(pkt.Events)/float64(flu.Events)),
		)
	}
	return t
}
