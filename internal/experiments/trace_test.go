package experiments

import (
	"encoding/json"
	"strings"
	"testing"

	"mpichgq/internal/spans"
)

// renderFigGTrace runs figure G with tracing on and returns the merged
// Chrome trace file as a string.
func renderFigGTrace(t *testing.T, parallel int) string {
	t.Helper()
	cfg := Config{Seed: 1, TimeScale: 0.05, Parallel: parallel, Trace: spans.NewCollector()}
	RunFigureG(cfg)
	var b strings.Builder
	if err := cfg.Trace.WriteChromeTrace(&b); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	return b.String()
}

// TestFigGTraceDeterministicAcrossParallel pins the tracing layer's
// core promise: a traced figG run produces byte-identical Chrome trace
// output — same span IDs, same virtual timestamps — across runs at the
// same seed and at any -parallel worker count.
func TestFigGTraceDeterministicAcrossParallel(t *testing.T) {
	seq := renderFigGTrace(t, 1)
	par := renderFigGTrace(t, 8)
	if seq != par {
		t.Fatalf("trace output differs between -parallel 1 and -parallel 8 (%d vs %d bytes)", len(seq), len(par))
	}
	if len(seq) == 0 {
		t.Fatal("traced figG run produced no output")
	}

	// The trace must contain a parent-linked two-phase story: a
	// co.reserve root whose trace carries prepare and commit RPC spans
	// parented under it, plus evidence of the protocol coping with the
	// lossy channel (a rollback span or a multi-attempt RPC).
	var file struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(seq), &file); err != nil {
		t.Fatalf("trace output is not valid JSON: %v", err)
	}
	// roots maps (trace, span id) of every co.reserve span.
	type key struct {
		trace string
		span  float64
	}
	roots := make(map[key]bool)
	for _, ev := range file.TraceEvents {
		if ev.Ph == "X" && ev.Name == "co.reserve" {
			roots[key{ev.Args["trace"].(string), ev.Args["span"].(float64)}] = true
		}
	}
	if len(roots) == 0 {
		t.Fatal("no co.reserve spans in traced figG run")
	}
	prepared, committed, coped := false, false, false
	for _, ev := range file.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		if ev.Name == "co.rollback" {
			coped = true
		}
		parent, ok := ev.Args["parent"].(float64)
		if !ok {
			continue
		}
		under := roots[key{ev.Args["trace"].(string), parent}]
		switch ev.Name {
		case "rpc.prepare":
			if under {
				prepared = true
			}
		case "rpc.commit":
			if under {
				committed = true
			}
		}
		if att, ok := ev.Args["attempts"].(float64); ok && att > 1 {
			coped = true
		}
	}
	if !prepared || !committed {
		t.Fatalf("missing parent-linked two-phase spans: prepare=%v commit=%v", prepared, committed)
	}
	if !coped {
		t.Fatal("no rollback or retried RPC in a run with up to 60%% control loss")
	}
}
