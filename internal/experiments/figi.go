package experiments

import (
	"fmt"
	"sort"
	"time"

	"mpichgq/internal/ctrlplane"
	"mpichgq/internal/diffserv"
	"mpichgq/internal/gara"
	"mpichgq/internal/netsim"
	"mpichgq/internal/sim"
	"mpichgq/internal/trace"
	"mpichgq/internal/trafficgen"
	"mpichgq/internal/units"
)

// figIServiceTime is the broker's per-request execution time; the
// domain's admission capacity is its inverse, ~100 requests/s.
const figIServiceTime = 10 * time.Millisecond

// figICapacityRPS is the nominal broker capacity the load multipliers
// are expressed against.
const figICapacityRPS = 100.0

// FigureIPoint is one (offered load, controls) cell of the overload
// figure.
type FigureIPoint struct {
	// Mult is the offered load as a multiple of broker capacity.
	Mult float64
	// OfferedRPS is the open-loop arrival rate.
	OfferedRPS float64
	// Offered/OK count logical requests issued and admitted.
	Offered, OK int
	// GoodputRPS is admitted requests per second of storm time —
	// replies that reached a still-waiting client.
	GoodputRPS float64
	// P99 is the 99th-percentile admission latency over successful
	// requests (0 when none succeeded).
	P99 time.Duration
	// Sheds counts admission-control rejections and drops server-side;
	// Deadlines counts client calls that burned their whole deadline.
	Sheds, Deadlines int
	// PremiumOK / PremiumOffered isolate the protected class.
	PremiumOK, PremiumOffered int
}

// FigureIResult holds the goodput-vs-load curves with overload
// controls on and off.
type FigureIResult struct {
	Mults    []float64
	Controls []FigureIPoint
	NoCtrl   []FigureIPoint
}

// RunFigureI runs the admission-storm figure: one administrative
// domain with a finite-capacity broker (10ms per request) behind the
// usual lossy control channel, slammed by a seeded Poisson
// reservation storm plus closed-loop retrying clients at 0.5×–10×
// capacity. With overload controls off (unbounded FIFO queue, naive
// immediate-retry clients) goodput collapses as offered load grows:
// the queue's sojourn outruns every client deadline, so the broker
// spends its capacity on dead work and duplicate retransmissions.
// With controls on (bounded fair queue, deadline-expired drop, CoDel
// shedding, brownout, AIMD clients honoring retry-after) goodput
// holds near capacity and degrades gracefully, shedding best-effort
// classes first.
func RunFigureI(cfg Config) FigureIResult {
	cfg = cfg.withDefaults()
	res := FigureIResult{Mults: []float64{0.5, 1, 2, 5, 10}}
	points := Sweep(cfg.Parallel, 2*len(res.Mults), func(i int) FigureIPoint {
		mult := res.Mults[i/2]
		// Both variants at one load level share a seed, so they face
		// the identical arrival process.
		seed := DeriveSeed(cfg.Seed, i/2)
		return runFigIPoint(cfg, i, seed, mult, i%2 == 0)
	})
	for i := range res.Mults {
		res.Controls = append(res.Controls, points[2*i])
		res.NoCtrl = append(res.NoCtrl, points[2*i+1])
	}
	return res
}

// runFigIPoint runs one (load, controls) cell on its own kernel.
func runFigIPoint(cfg Config, pid int, seed int64, mult float64, controls bool) FigureIPoint {
	stop := cfg.scale(16 * time.Second)
	dur := cfg.scale(20 * time.Second)

	// Single-domain serving topology: hostA - e1 - c1, the domain's RM
	// scoped over both links.
	k := sim.New(seed)
	cfg.enableTrace(k)
	n := netsim.New(k)
	hostA, e1, c1 := n.AddNode("hostA"), n.AddNode("e1"), n.AddNode("c1")
	l1 := n.Connect(hostA, e1, units.Gbps, time.Millisecond)
	l2 := n.Connect(e1, c1, units.Gbps, time.Millisecond)
	n.ComputeRoutes()
	dom := diffserv.NewDomain(k)
	dom.EnableEFAll(hostA, e1, c1)
	rm := gara.NewNetworkRM(n, dom, 0.5)
	rm.Scope = gara.LinkScope(l1, l2)
	g := gara.New(k)
	g.Register(rm)

	// Protocol timescales are fixed constants (see figG). The
	// per-attempt timeout must cover a full healthy queue drain
	// (QueueLimit×ServiceTime + service + channel), else retransmitted
	// duplicates of still-queued requests burn extra service slots.
	opts := ctrlplane.Options{
		Timeout:  400 * time.Millisecond,
		Deadline: 1200 * time.Millisecond,
	}
	if controls {
		opts.Admission = ctrlplane.Admission{
			ServiceTime:   figIServiceTime,
			QueueLimit:    20,
			CoDelTarget:   50 * time.Millisecond,
			CoDelInterval: 200 * time.Millisecond,
			DropExpired:   true,
			BrownoutHi:    16,
			BrownoutLo:    4,
			BrownoutHold:  500 * time.Millisecond,
		}
	} else {
		// The collapse configuration: same finite capacity, but an
		// unbounded FIFO with no shedding, no expired-drop, no
		// brownout.
		opts.Admission = ctrlplane.Admission{ServiceTime: figIServiceTime}
	}
	plane := ctrlplane.NewPlane(k, opts)
	plane.AddDomain("dom", g, rm)

	// Three competing tenants share the domain.
	conns := []*ctrlplane.Conn{
		plane.AddTenantConn("dom", "t0"),
		plane.AddTenantConn("dom", "t1"),
		plane.AddTenantConn("dom", "t2"),
	}

	pt := FigureIPoint{Mult: mult, OfferedRPS: mult * figICapacityRPS}
	classOf := func(i int) gara.Class {
		switch i % 5 {
		case 0:
			return gara.ClassPremium
		case 1, 2:
			return gara.ClassNormal
		default:
			return gara.ClassBestEffort
		}
	}
	storm := &trafficgen.ReservationStorm{
		Conns:    conns,
		Rate:     pt.OfferedRPS,
		Clients:  6,
		Adaptive: controls,
		Retries:  2,
		Think:    cfg.scale(200 * time.Millisecond),
		Stop:     stop,
		Spec: func(i int) gara.Spec {
			return gara.Spec{
				Type:      gara.ResourceNetwork,
				Class:     classOf(i),
				Flow:      diffserv.MatchHostPair(hostA.Addr(), c1.Addr(), netsim.ProtoUDP),
				Bandwidth: units.Mbps,
				Duration:  2 * time.Second,
			}
		},
	}
	storm.Run(k)

	if err := k.RunUntil(dur); err != nil {
		panic(fmt.Sprintf("experiments: figure I (mult %.1f controls %v): %v", mult, controls, err))
	}

	st := storm.Stats()
	pt.Offered, pt.OK = st.Offered, st.OK
	pt.Deadlines = st.Deadlines
	pt.PremiumOK = st.OKByClass[gara.ClassPremium]
	pt.PremiumOffered = st.OfferedByClass[gara.ClassPremium]
	pt.GoodputRPS = float64(st.OK) / stop.Seconds()
	if len(st.Latencies) > 0 {
		lat := make([]time.Duration, len(st.Latencies))
		copy(lat, st.Latencies)
		sort.Slice(lat, func(a, b int) bool { return lat[a] < lat[b] })
		pt.P99 = lat[len(lat)*99/100]
	}
	reg := k.Metrics()
	for _, reason := range []string{"full", "codel", "brownout", "expired", "evict"} {
		if v, ok := reg.CounterValue("admission_shed_total", "rm", "dom", "reason", reason); ok {
			pt.Sheds += int(v)
		}
	}
	mode := "no-controls"
	if controls {
		mode = "controls"
	}
	cfg.collectTrace(k, pid, fmt.Sprintf("figI mult=%.1f %s", mult, mode))
	return pt
}

// FigureITable renders the per-load comparison.
func FigureITable(r FigureIResult) trace.Table {
	t := trace.Table{Headers: []string{
		"offered", "ctl goodput", "ctl p99", "ctl shed", "ctl prem",
		"raw goodput", "raw p99", "raw dead",
	}}
	for i := range r.Mults {
		on, off := r.Controls[i], r.NoCtrl[i]
		prem := "-"
		if on.PremiumOffered > 0 {
			prem = fmt.Sprintf("%.0f%%", 100*float64(on.PremiumOK)/float64(on.PremiumOffered))
		}
		t.Add(fmt.Sprintf("%.1fx (%.0f/s)", r.Mults[i], on.OfferedRPS),
			fmt.Sprintf("%.1f/s", on.GoodputRPS),
			fmt.Sprintf("%d ms", on.P99.Milliseconds()),
			fmt.Sprintf("%d", on.Sheds),
			prem,
			fmt.Sprintf("%.1f/s", off.GoodputRPS),
			fmt.Sprintf("%d ms", off.P99.Milliseconds()),
			fmt.Sprintf("%d", off.Deadlines))
	}
	return t
}
