package experiments

import (
	"math"
	"testing"
	"time"

	"mpichgq/internal/units"
)

// TestFluidValidationBound pins the hybrid model's acceptance bound:
// at the Figure 5 plateau point (largest message, largest
// reservation) fluid-mode throughput must land within 2% of the
// packet-level reference, while executing a small fraction of its
// kernel events. This is the regression guard for the error analysis
// in docs/performance.md — if a fluid-model change pushes the plateau
// outside the bound, this fails before the figures drift.
func TestFluidValidationBound(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale comparison run")
	}
	// The bench scale: long enough that both modes reach steady state
	// and slow-start/warm-up transients are amortized away.
	cfg := Config{Seed: 1, TimeScale: 0.2}.withDefaults()
	size := Figure5MessageSizes[len(Figure5MessageSizes)-1]
	rsv := Figure5Reservations[len(Figure5Reservations)-1]
	dur := cfg.scale(20 * time.Second)

	run := func(fluid bool) PingPongPoint {
		c := cfg
		c.FluidBackground = fluid
		return pingPongThroughput(c, 0, size, rsv, true, dur)
	}
	pkt := run(false)
	flu := run(true)

	errFrac := (flu.Throughput.Mbps() - pkt.Throughput.Mbps()) / pkt.Throughput.Mbps()
	t.Logf("plateau: packet=%.3f Mb/s (%d events), fluid=%.3f Mb/s (%d events), error=%+.2f%%",
		pkt.Throughput.Mbps(), pkt.Events, flu.Throughput.Mbps(), flu.Events, 100*errFrac)
	if math.Abs(errFrac) > 0.02 {
		t.Errorf("fluid plateau error %.2f%% exceeds the 2%% bound (packet %.3f Mb/s, fluid %.3f Mb/s)",
			100*errFrac, pkt.Throughput.Mbps(), flu.Throughput.Mbps())
	}
	// The point of the mode is the event-volume reduction. The
	// foreground TCP flow keeps its own per-packet events (~60% of
	// the fluid run), so the bound here is on the total: fluid must
	// at least halve it, which requires the background's share to
	// vanish almost entirely.
	if flu.Events*2 > pkt.Events {
		t.Errorf("fluid mode ran %d events vs packet %d — expected at least a 2x reduction", flu.Events, pkt.Events)
	}
}

// TestAblationFluidValidationShape checks the ablation renders one
// row per message size with the full column set at test scale.
func TestAblationFluidValidationShape(t *testing.T) {
	scale := 0.05
	if testing.Short() {
		scale = 0.02
	}
	tbl := AblationFluidValidation(Config{Seed: 1, TimeScale: scale})
	if got, want := len(tbl.Rows), len(Figure5MessageSizes); got != want {
		t.Fatalf("ablation rows = %d, want %d", got, want)
	}
	for _, row := range tbl.Rows {
		if len(row) != len(tbl.Headers) {
			t.Fatalf("row %v has %d cells, want %d", row, len(row), len(tbl.Headers))
		}
	}
}

// TestFluidBackgroundChangesContention is a cheap sanity check that
// FluidBackground actually engages: the fluid run must report far
// fewer kernel events than the packet run even at tiny scale.
func TestFluidBackgroundChangesContention(t *testing.T) {
	cfg := Config{Seed: 1, TimeScale: 0.02}.withDefaults()
	size := Figure5MessageSizes[0]
	dur := cfg.scale(20 * time.Second)
	pc := cfg
	fc := cfg
	fc.FluidBackground = true
	pkt := pingPongThroughput(pc, 0, size, 8*units.Mbps, true, dur)
	flu := pingPongThroughput(fc, 0, size, 8*units.Mbps, true, dur)
	if flu.Events >= pkt.Events {
		t.Errorf("fluid run executed %d events, packet run %d — fluid mode did not engage", flu.Events, pkt.Events)
	}
}
