package experiments

import (
	"fmt"
	"time"

	"mpichgq/internal/diffserv"
	"mpichgq/internal/gara"
	"mpichgq/internal/garnet"
	"mpichgq/internal/intserv"
	"mpichgq/internal/netsim"
	"mpichgq/internal/sim"
	"mpichgq/internal/trace"
	"mpichgq/internal/units"
)

// ISvsDSResult quantifies §2's architectural comparison: Integrated
// Services holds per-flow state at every router ("too heavy"), while
// Differentiated Services keeps per-flow state only at the edge and
// treats the core as an aggregate — yet both protect premium flows.
type ISvsDSResult struct {
	Flows int
	// Router-state entries per node under each architecture.
	ISCoreState, ISEdgeState int
	DSCoreRules, DSEdgeRules int
	// Mean achieved rate across premium flows, each offered
	// PerFlowRate under full contention.
	PerFlowRate         units.BitRate
	ISAchieved          units.BitRate
	DSAchieved          units.BitRate
	UnprotectedAchieved units.BitRate
}

// RunISvsDS runs nFlows premium UDP streams across the testbed under
// contention, three ways: RSVP/WFQ at every router (IS), GARA/EF (DS),
// and unprotected, reporting state counts and delivered bandwidth.
func RunISvsDS(cfg Config, nFlows int) ISvsDSResult {
	cfg = cfg.withDefaults()
	dur := cfg.scale(10 * time.Second)
	const perFlow = 2 * units.Mbps
	res := ISvsDSResult{Flows: nFlows, PerFlowRate: perFlow}

	run := func(mode string) (units.BitRate, *garnet.Testbed, any) {
		tb := garnet.NewWithOptions(garnet.Options{Seed: cfg.Seed})
		cfg.blast(tb, 0, 0)
		var rsvp *intserv.RSVP
		if mode == "is" {
			// Replace the DS queues with WFQ at every router egress
			// as RSVP installs state; fresh testbed so EF queues from
			// the DS domain are irrelevant for these flows.
			rsvp = intserv.NewRSVP(tb.Net)
		}
		var rx int64
		sink := tb.PremDst.UDPStack()
		for i := 0; i < nFlows; i++ {
			port := netsim.Port(6000 + i)
			s, err := sink.Bind(port)
			if err != nil {
				panic(err)
			}
			tb.K.Spawn(fmt.Sprintf("sink-%d", i), func(ctx *sim.Ctx) {
				for {
					dg, err := s.Recv(ctx)
					if err != nil {
						return
					}
					rx += int64(dg.Len)
				}
			})
		}
		src := tb.PremSrc.UDPStack()
		for i := 0; i < nFlows; i++ {
			port := netsim.Port(6000 + i)
			sock, err := src.Bind(port)
			if err != nil {
				panic(err)
			}
			flow := netsim.FlowKey{
				Src: tb.PremSrc.Addr(), Dst: tb.PremDst.Addr(),
				SrcPort: port, DstPort: port, Proto: netsim.ProtoUDP,
			}
			switch mode {
			case "is":
				if _, err := rsvp.Reserve(flow, perFlow); err != nil {
					panic(err)
				}
			case "ds":
				if _, err := tb.Gara.Reserve(gara.Spec{
					Type: gara.ResourceNetwork, Flow: diffserv.MatchFlow(flow), Bandwidth: perFlow,
				}); err != nil {
					panic(err)
				}
			}
			tb.K.Spawn(fmt.Sprintf("flow-%d", i), func(ctx *sim.Ctx) {
				const payload = units.KB
				gap := units.BitRate(float64(perFlow) * 0.9).TimeToSend(payload + netsim.UDPHeader + netsim.IPHeader)
				for ctx.Now() < dur {
					sock.SendTo(tb.PremDst.Addr(), port, payload, nil)
					ctx.Sleep(gap)
				}
			})
		}
		if err := tb.K.RunUntil(dur); err != nil {
			panic(err)
		}
		perFlowAchieved := units.RateOf(units.ByteSize(rx), dur) / units.BitRate(nFlows)
		return perFlowAchieved, tb, rsvp
	}

	isRate, isTB, rsvpAny := run("is")
	rsvp := rsvpAny.(*intserv.RSVP)
	res.ISAchieved = isRate
	res.ISCoreState = rsvp.StateAt(isTB.Core)
	res.ISEdgeState = rsvp.StateAt(isTB.Edge1)

	dsRate, dsTB, _ := run("ds")
	res.DSAchieved = dsRate
	// DS core state: classifier rules installed on core/edge2
	// interfaces (none — classification happens at edge1's ingress).
	res.DSCoreRules = dsRulesAt(dsTB, dsTB.Core)
	res.DSEdgeRules = dsRulesAt(dsTB, dsTB.Edge1)

	beRate, _, _ := run("none")
	res.UnprotectedAchieved = beRate
	return res
}

// dsRulesAt counts classifier rules installed on a node's interfaces.
func dsRulesAt(tb *garnet.Testbed, nd *netsim.Node) int {
	n := 0
	for _, ifc := range nd.Ifaces() {
		n += len(tb.Domain.Classifier(ifc).Rules())
	}
	return n
}

// ISvsDSTable renders the comparison.
func ISvsDSTable(r ISvsDSResult) trace.Table {
	t := trace.Table{
		Title: fmt.Sprintf("IS vs DS: %d premium flows at %v each under contention (§2's architectural comparison)",
			r.Flows, r.PerFlowRate),
		Headers: []string{"architecture", "core state", "edge state", "per-flow achieved"},
	}
	t.Add("IntServ (RSVP+WFQ)", fmt.Sprint(r.ISCoreState), fmt.Sprint(r.ISEdgeState), r.ISAchieved.String())
	t.Add("DiffServ (GARA+EF)", fmt.Sprint(r.DSCoreRules), fmt.Sprint(r.DSEdgeRules), r.DSAchieved.String())
	t.Add("best effort", "0", "0", r.UnprotectedAchieved.String())
	return t
}
