// Package experiments reproduces every table and figure of the
// paper's evaluation (§5). Each RunFigureN/RunTableN function builds a
// fresh GARNET testbed, runs the workload, and returns the series or
// rows the paper plots. cmd/garnet prints them; bench_test.go wraps
// them as benchmarks; the package tests assert the qualitative shape
// the paper reports.
package experiments

import (
	"time"

	"mpichgq/internal/garnet"
	"mpichgq/internal/sim"
	"mpichgq/internal/spans"
	"mpichgq/internal/trafficgen"
	"mpichgq/internal/units"
)

// Config scales experiment durations so tests can run abbreviated
// versions while cmd/garnet runs the paper-length ones.
type Config struct {
	// Seed for the deterministic kernel.
	Seed int64
	// TimeScale multiplies every experiment duration (1.0 = the
	// paper's timelines; tests use less).
	TimeScale float64
	// Parallel caps the worker count for sweep-style experiments
	// (fig5, fig6, fig7, figF, figG). <= 0 means one worker per CPU. The
	// worker count never changes experiment output, only wall-clock
	// time: every sweep point runs on its own kernel.
	Parallel int
	// Trace, when non-nil, enables causal tracing on every sweep
	// point's kernel and collects the completed spans keyed by point
	// index, so the merged Chrome trace is byte-identical at any
	// Parallel. cmd/garnet's -trace flag plumbs this.
	Trace *spans.Collector
	// FluidBackground runs the background contention generator in
	// hybrid fluid/packet mode: the blaster becomes a fluid rate
	// installed at queues instead of per-packet events, cutting kernel
	// event volume by an order of magnitude. Foreground MPI/TCP
	// traffic stays packet-level. Results shift slightly (see the
	// AblationFluidValidation error bound: plateau throughput within
	// 2% of packet mode); output stays byte-identical at any Parallel
	// within each mode.
	FluidBackground bool
}

// traceCapacity is the completed-span ring size used for traced
// experiment kernels — generous enough that a paper-length point
// retains its whole story.
const traceCapacity = 1 << 15

// enableTrace turns on k's tracer when the config collects traces.
func (c Config) enableTrace(k *sim.Kernel) {
	if c.Trace != nil {
		k.Tracer().SetCapacity(traceCapacity)
		k.Tracer().SetEnabled(true)
	}
}

// collectTrace reports a finished point's spans under its sweep index.
func (c Config) collectTrace(k *sim.Kernel, pid int, label string) {
	if c.Trace != nil {
		c.Trace.Add(pid, label, k.Tracer().Snapshot())
	}
}

// DefaultConfig runs experiments at paper length.
func DefaultConfig() Config { return Config{Seed: 1, TimeScale: 1.0} }

// QuickConfig runs abbreviated experiments for tests.
func QuickConfig() Config { return Config{Seed: 1, TimeScale: 0.2} }

func (c Config) withDefaults() Config {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.TimeScale <= 0 {
		c.TimeScale = 1
	}
	return c
}

// scale applies the config's time scale to a paper duration.
func (c Config) scale(d time.Duration) time.Duration {
	return time.Duration(float64(d) * c.TimeScale)
}

// ContentionRate is the UDP generator's offered load: enough to
// saturate the 155 Mb/s bottleneck, "quite capable of overwhelming any
// TCP application that does not have a reservation".
const ContentionRate = 160 * units.Mbps

// blast starts the standard contention generator on the competitive
// host pair, packet-level or fluid per the config.
func (c Config) blast(tb *garnet.Testbed, from, to time.Duration) trafficgen.Background {
	b := trafficgen.NewBackground(trafficgen.BackgroundOptions{
		Rate:       ContentionRate,
		PacketSize: 1000,
		Jitter:     0.1,
		Start:      from,
		Stop:       to,
		Fluid:      c.FluidBackground,
	})
	if err := b.Run(tb.CompSrc, tb.CompDst, 9000); err != nil {
		panic(err)
	}
	return b
}
