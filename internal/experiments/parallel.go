package experiments

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// MaxParallel is the default sweep width: one worker per available
// CPU.
func MaxParallel() int { return runtime.GOMAXPROCS(0) }

// Sweep runs fn(0..n-1) on up to parallel concurrent workers and
// returns the results in index order. Each sweep point must build its
// own sim.Kernel (and everything hanging off it): kernels are
// single-runner and share nothing, which is exactly what makes the
// fan-out safe. Because every point is a self-contained deterministic
// simulation, the assembled result is byte-identical for any worker
// count — parallelism changes only wall-clock time, never output.
//
// parallel <= 0 means MaxParallel(). A panic inside fn is captured
// and re-raised in the caller after all workers drain, so a failing
// point behaves like it would under sequential execution.
func Sweep[T any](parallel, n int, fn func(point int) T) []T {
	out := make([]T, n)
	if n == 0 {
		return out
	}
	if parallel <= 0 {
		parallel = MaxParallel()
	}
	if parallel > n {
		parallel = n
	}
	if parallel == 1 {
		for i := 0; i < n; i++ {
			out[i] = fn(i)
		}
		return out
	}
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicked atomic.Value
	)
	for w := 0; w < parallel; w++ {
		wg.Add(1)
		//lint:ignore determinism sweep workers each own a whole kernel instance seeded via DeriveSeed; cross-worker interleaving cannot touch any single simulation's event order (the parallel-vs-serial byte-identity test pins this)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || panicked.Load() != nil {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							panicked.CompareAndSwap(nil, fmt.Sprintf("experiments: sweep point %d: %v", i, r))
						}
					}()
					out[i] = fn(i)
				}()
			}
		}()
	}
	wg.Wait()
	if r := panicked.Load(); r != nil {
		panic(r)
	}
	return out
}

// DeriveSeed maps (rootSeed, pointIndex) to an independent kernel
// seed via a splitmix64 round, so neighbouring sweep points get
// decorrelated RNG streams while the whole sweep stays a pure
// function of the root seed. New sweeps should use this; the
// pre-existing figures keep their historical per-point seed choices
// to stay byte-identical with earlier releases (see
// docs/performance.md).
func DeriveSeed(root int64, point int) int64 {
	z := uint64(root) + 0x9e3779b97f4a7c15*uint64(point+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}
