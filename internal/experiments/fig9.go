package experiments

import (
	"time"

	gq "mpichgq/internal/core"
	"mpichgq/internal/garnet"
	"mpichgq/internal/mpi"
	"mpichgq/internal/sim"
	"mpichgq/internal/trace"
	"mpichgq/internal/trafficgen"
	"mpichgq/internal/units"
)

// Figure9Result holds the five-phase timeline of Figure 9.
type Figure9Result struct {
	Bandwidth trace.Series
	// Per-phase mean bandwidth: clean (0-10 s), network congestion
	// (10-20 s), network reservation (20-30 s), CPU contention added
	// (30-40 s), CPU reservation added (40-50 s).
	Clean, NetCongested, NetReserved, CPUContended, CPUReserved units.BitRate
}

// RunFigure9 reproduces Figure 9: the visualization application
// attempts a constant 35 Mb/s. "Initially it runs well (0-10
// seconds), then network congestion affects its bandwidth (11-20
// seconds) until a network reservation is made (21-30 seconds).
// Bandwidth again decreases when there is CPU contention at the
// sender (31-40 seconds) until there is a CPU reservation (41-50
// seconds). ... it is insufficient to make just a network reservation
// or a CPU reservation: both reservations are needed."
func RunFigure9(cfg Config) Figure9Result {
	cfg = cfg.withDefaults()
	dur := cfg.scale(50 * time.Second)
	t10 := cfg.scale(10 * time.Second)
	t20 := cfg.scale(20 * time.Second)
	t30 := cfg.scale(30 * time.Second)
	t40 := cfg.scale(40 * time.Second)

	tb := garnet.New(cfg.Seed)
	// Network congestion begins at 10 s and continues to the end. It
	// is heavy but not a total blackout (as in the paper's Figure 9,
	// where the congested flow limps along at a few Mb/s): a fully
	// starved TCP backs its RTO off so far that recovery after the
	// reservation would be delayed by the timer, not the network.
	// Always packet-level: the timeline's middle phases measure an
	// unreserved flow limping through the congestion, which fluid
	// contention would starve outright (see docs/performance.md).
	bl := trafficgen.NewBackground(trafficgen.BackgroundOptions{
		Rate:       150 * units.Mbps,
		PacketSize: 1000,
		Jitter:     0.1,
		Start:      t10,
	})
	if err := bl.Run(tb.CompSrc, tb.CompDst, 9000); err != nil {
		panic(err)
	}

	d := &DVis{
		// 35 Mb/s: 437.5 KB frames at 10 fps.
		FrameSize:     437500,
		FPS:           10,
		Duration:      dur,
		WorkPerKB:     130 * time.Microsecond,
		CopyCostPerKB: 50 * time.Microsecond,
		// Large socket buffers (the §5.5 tuning): the whole frame
		// buffers at once so per-frame compute overlaps the network
		// drain; without this the app serializes work and transfer
		// and cannot reach 35 Mb/s at all.
		SockBuf:     512 * units.KB,
		TraceBucket: cfg.scale(time.Second),
		JobHook: func(job *mpi.Job) {
			// CPU contention begins at 30 s and continues to the end.
			hog := &trafficgen.CPUHog{Start: t30}
			hog.Run(tb.K, job.Rank(0).Host().CPU)
		},
		SenderEvents: func(ctx *sim.Ctx, agent *gq.Agent, sender *mpi.Rank, pc *mpi.Comm) {
			// Network reservation at 20 s: put the premium attribute
			// (the agent applies its 1.06 overhead rule).
			ctx.Sleep(t20 - ctx.Now())
			// No MaxMessageSize: the agent's measured 1.06 overhead
			// rule applies (the exact per-segment computation is too
			// tight — it leaves no slack for congestion-control
			// sawtooth, which is precisely why the paper measured
			// 1.06 rather than the theoretical ~1.03).
			attr := &gq.QosAttribute{
				Class:     gq.Premium,
				Bandwidth: 35 * units.Mbps,
			}
			if err := sender.AttrPut(pc, agent.Keyval(), attr); err != nil {
				panic(err)
			}
			// CPU reservation at 40 s.
			ctx.Sleep(t40 - ctx.Now())
			if _, err := agent.ReserveCPU(sender, 0.9); err != nil {
				panic(err)
			}
		},
	}
	r := d.Run(tb)
	bw := r.Bandwidth
	phase := func(from, to time.Duration) units.BitRate {
		return units.BitRate(bw.Between(from, to).Mean()) * units.Kbps
	}
	margin := cfg.scale(time.Second)
	return Figure9Result{
		Bandwidth:    bw,
		Clean:        phase(cfg.scale(2*time.Second), t10),
		NetCongested: phase(t10+margin, t20),
		NetReserved:  phase(t20+margin, t30),
		CPUContended: phase(t30+margin, t40),
		CPUReserved:  phase(t40+margin, dur),
	}
}
