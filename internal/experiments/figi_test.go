package experiments

import (
	"encoding/json"
	"strings"
	"testing"

	"mpichgq/internal/spans"
)

// TestFigIOverloadControlsPreventCollapse pins the figure's qualitative
// story: without overload controls goodput collapses under offered
// load well past capacity, while with controls it degrades gracefully,
// sheds visibly, and protects the premium class.
func TestFigIOverloadControlsPreventCollapse(t *testing.T) {
	// The protocol time constants (service time, deadline, queue
	// limits) are unscaled, so a shorter storm window preserves the
	// collapse dynamics while keeping the test fast.
	res := RunFigureI(Config{Seed: 1, TimeScale: 0.25, Parallel: 8})
	if len(res.Controls) != len(res.Mults) || len(res.NoCtrl) != len(res.Mults) {
		t.Fatalf("points per mode = %d/%d, want %d", len(res.Controls), len(res.NoCtrl), len(res.Mults))
	}
	for i := 1; i < len(res.Mults); i++ {
		if res.Mults[i] <= res.Mults[i-1] {
			t.Fatalf("multipliers not ascending: %v", res.Mults)
		}
	}
	last := len(res.Mults) - 1
	if res.Mults[last] < 10 {
		t.Fatalf("sweep tops out at %.1fx, want >= 10x overload", res.Mults[last])
	}
	ctlPeak, rawPeak := 0.0, 0.0
	for i := range res.Mults {
		if g := res.Controls[i].GoodputRPS; g > ctlPeak {
			ctlPeak = g
		}
		if g := res.NoCtrl[i].GoodputRPS; g > rawPeak {
			rawPeak = g
		}
	}
	ctl10, raw10 := res.Controls[last], res.NoCtrl[last]
	// Collapse without controls: goodput at 10x far below the
	// uncontrolled configuration's own peak.
	if rawPeak <= 0 || raw10.GoodputRPS > 0.5*rawPeak {
		t.Errorf("no-controls goodput did not collapse: %.1f/s at %.0fx vs peak %.1f/s",
			raw10.GoodputRPS, res.Mults[last], rawPeak)
	}
	// Graceful degradation with controls: goodput at 10x holds near the
	// controlled peak and dominates the collapsed configuration.
	if ctl10.GoodputRPS < 0.75*ctlPeak {
		t.Errorf("controls goodput sagged at %.0fx: %.1f/s vs peak %.1f/s",
			res.Mults[last], ctl10.GoodputRPS, ctlPeak)
	}
	if ctl10.GoodputRPS < 3*raw10.GoodputRPS {
		t.Errorf("controls goodput %.1f/s does not dominate collapsed %.1f/s at %.0fx",
			ctl10.GoodputRPS, raw10.GoodputRPS, res.Mults[last])
	}
	// The controls must actually be doing something: sheds at overload,
	// none far below capacity.
	if ctl10.Sheds == 0 {
		t.Error("controls shed nothing at 10x offered load")
	}
	// Below capacity only transient Poisson bursts may shed — more than
	// a few percent of offered load means the controls misfire at idle.
	if lo := res.Controls[0]; lo.Sheds > lo.Offered/20 {
		t.Errorf("controls shed %d of %d requests at %.1fx (below capacity)",
			lo.Sheds, lo.Offered, res.Mults[0])
	}
	// The collapse mechanism is dead work: uncontrolled clients burn
	// whole deadlines.
	if raw10.Deadlines == 0 {
		t.Error("no deadline exhaustion without controls at 10x — no collapse mechanism visible")
	}
	// Class protection: under brownout the premium class must be
	// admitted at a higher rate than traffic overall.
	if ctl10.PremiumOffered == 0 || ctl10.Offered == 0 {
		t.Fatal("no premium traffic offered at 10x")
	}
	premRate := float64(ctl10.PremiumOK) / float64(ctl10.PremiumOffered)
	overallRate := float64(ctl10.OK) / float64(ctl10.Offered)
	if premRate <= overallRate {
		t.Errorf("premium admit rate %.2f not above overall %.2f at 10x — no class protection",
			premRate, overallRate)
	}
}

// renderFigITrace runs figure I with tracing on and returns the merged
// Chrome trace file as a string.
func renderFigITrace(t *testing.T, parallel int) string {
	t.Helper()
	cfg := Config{Seed: 1, TimeScale: 0.05, Parallel: parallel, Trace: spans.NewCollector()}
	RunFigureI(cfg)
	var b strings.Builder
	if err := cfg.Trace.WriteChromeTrace(&b); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	return b.String()
}

// TestFigITraceDeterministicAcrossParallel: a traced figI run — Poisson
// storms, admission queues, sheds, brownout transitions — must emit
// byte-identical Chrome traces at -parallel 1 and -parallel 8, and the
// trace must carry the admission lifecycle spans.
func TestFigITraceDeterministicAcrossParallel(t *testing.T) {
	seq := renderFigITrace(t, 1)
	par := renderFigITrace(t, 8)
	if seq != par {
		t.Fatalf("trace output differs between -parallel 1 and -parallel 8 (%d vs %d bytes)", len(seq), len(par))
	}
	if len(seq) == 0 {
		t.Fatal("traced figI run produced no output")
	}
	var file struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(seq), &file); err != nil {
		t.Fatalf("trace output is not valid JSON: %v", err)
	}
	want := map[string]bool{"admission.queue": false, "admission.shed": false}
	for _, ev := range file.TraceEvents {
		if ev.Ph == "X" {
			if _, ok := want[ev.Name]; ok {
				want[ev.Name] = true
			}
		}
	}
	for name, seen := range map[string]bool(want) {
		if !seen {
			t.Errorf("no %s span in traced figI run", name)
		}
	}
}
