package experiments

import (
	"fmt"
	"time"

	gq "mpichgq/internal/core"
	"mpichgq/internal/faults"
	"mpichgq/internal/garnet"
	"mpichgq/internal/mpi"
	"mpichgq/internal/netsim"
	"mpichgq/internal/sim"
	"mpichgq/internal/tcpsim"
	"mpichgq/internal/trace"
	"mpichgq/internal/units"
)

// Figure H: job survival rate and time-to-recover under rank failures.
//
// A four-rank master/worker job runs a fixed number of BSP steps
// against a deadline while workers crash and restart on an
// exponential MTBF schedule. Worker 1 receives its task data over a
// premium pair communicator whose reservation the QoS watchdog
// re-reserves through GARA after each restart (the rebind path); the
// other workers ride best effort. Each (MTBF, checkpointing) cell
// runs several seeded trials; the figure plots the fraction of trials
// that finish every step before the deadline, and the mean
// crash-to-recovery time, with and without periodic checkpoints.

// figHSteps is the number of BSP steps a trial must complete to count
// as survived.
const figHSteps = 80

// figHCkptEvery is the checkpoint cadence in steps (checkpointing
// trials only); a restart rolls the job back at most this far.
const figHCkptEvery = 8

// figHTrials is the number of seeded trials per (MTBF, mode) cell.
const figHTrials = 5

// figHChunk is worker 1's per-step task payload — above the eager
// threshold so every premium step exercises the rendezvous protocol
// (the hardest path to keep hang-free across a crash).
const figHChunk = 192 * units.KB

// figHTaskSize is the best-effort workers' per-step task payload.
const figHTaskSize = 8 * units.KB

// figHCtl is the size of the ready/done control messages.
const figHCtl = units.KB

// figHReserve is the premium reservation for worker 1's task stream.
const figHReserve = 20 * units.Mbps

// figHTarget is the watchdog's goodput target for that stream, set
// below the stream's bursty steady-state mean so only a real outage
// breaches.
const figHTarget = 2 * units.Mbps

// Control-protocol tags.
const (
	tagHReady = 1<<19 + 0
	tagHTask  = 1<<19 + 1
	tagHDone  = 1<<19 + 2
)

// FigureHPoint aggregates one (MTBF, checkpointing) cell.
type FigureHPoint struct {
	MTBF time.Duration
	Ckpt bool
	// Trials and how many of them completed all steps in time.
	Trials   int
	Survived int
	// SurvivalRate is Survived / Trials.
	SurvivalRate float64
	// Crashes counts rank-crash events across the cell's trials.
	Crashes int
	// MeanTTR is the mean time from a crash to the job's first
	// progress past its pre-crash high-water step (0 when no crash
	// recovered within a trial).
	MeanTTR time.Duration
	// Rebinds counts watchdog premium re-reservations after restarts.
	Rebinds int
}

// FigureHResult holds the survival figure: checkpointed and
// checkpoint-free runs across rank MTBFs.
type FigureHResult struct {
	MTBFs  []time.Duration
	Ckpt   []FigureHPoint
	NoCkpt []FigureHPoint
}

// figHTrialOut is one trial's raw outcome.
type figHTrialOut struct {
	survived bool
	steps    int
	crashes  int
	ttrSum   time.Duration
	ttrN     int
	rebinds  int
}

// figHState is the per-worker checkpoint payload: the premium pair
// communicator handle (worker 1 only) a restarted incarnation needs.
type figHState struct {
	pc *mpi.Comm
}

// RunFigureH runs the rank-failure survival figure.
func RunFigureH(cfg Config) FigureHResult {
	cfg = cfg.withDefaults()
	res := FigureHResult{MTBFs: []time.Duration{
		20 * time.Second, 45 * time.Second, 90 * time.Second, 180 * time.Second,
	}}
	// Point layout: MTBF-major, then mode (ckpt first), then trial, so
	// every trial owns a stable index for seeding and tracing.
	n := len(res.MTBFs) * 2 * figHTrials
	outs := Sweep(cfg.Parallel, n, func(i int) figHTrialOut {
		mi := i / (2 * figHTrials)
		rest := i % (2 * figHTrials)
		ckpt := rest/figHTrials == 0
		return runFigHTrial(cfg, i, DeriveSeed(cfg.Seed, i), res.MTBFs[mi], ckpt)
	})
	for mi, mtbf := range res.MTBFs {
		for mode := 0; mode < 2; mode++ {
			pt := FigureHPoint{MTBF: mtbf, Ckpt: mode == 0, Trials: figHTrials}
			ttrSum := time.Duration(0)
			ttrN := 0
			for t := 0; t < figHTrials; t++ {
				o := outs[mi*2*figHTrials+mode*figHTrials+t]
				if o.survived {
					pt.Survived++
				}
				pt.Crashes += o.crashes
				pt.Rebinds += o.rebinds
				ttrSum += o.ttrSum
				ttrN += o.ttrN
			}
			pt.SurvivalRate = float64(pt.Survived) / float64(pt.Trials)
			if ttrN > 0 {
				pt.MeanTTR = ttrSum / time.Duration(ttrN)
			}
			if pt.Ckpt {
				res.Ckpt = append(res.Ckpt, pt)
			} else {
				res.NoCkpt = append(res.NoCkpt, pt)
			}
		}
	}
	return res
}

// runFigHTrial runs one seeded trial: a 4-rank job (coordinator on
// the premium source; workers on the premium destination and both
// competitive hosts) racing figHSteps BSP steps against the deadline
// while the MTBF schedule crashes and restarts workers.
func runFigHTrial(cfg Config, pid int, seed int64, mtbf time.Duration, ckpt bool) figHTrialOut {
	dur := cfg.scale(60 * time.Second)
	stepWork := cfg.scale(250 * time.Millisecond)
	repair := cfg.scale(3 * time.Second)
	poll := cfg.scale(100 * time.Millisecond)

	tb := garnet.NewWithOptions(garnet.Options{Seed: seed})
	cfg.enableTrace(tb.K)
	job := tb.NewMPIJob(
		[]*netsim.Node{tb.PremSrc, tb.PremDst, tb.CompSrc, tb.CompDst},
		tcpsim.DefaultOptions(), mpi.JobOptions{})
	agent := gq.NewAgent(tb.Gara, job)

	// The failure schedule: workers only — the coordinator holds the
	// job's global state and is assumed reliable (a restartable
	// coordinator is a different paper).
	sc := faults.RankMTBF(sim.NewRNG(tb.K.RNG().Int63()),
		[]string{"rank-1", "rank-2", "rank-3"},
		cfg.scale(mtbf), repair, dur)
	sc.MustApplyTargets(tb.Net, faults.Targets{Ranks: job})

	out := figHTrialOut{}
	// TTR bookkeeping: every crash opens an outage stamped with the
	// job's current high-water step; the first progress past that mark
	// closes it.
	type outage struct {
		at time.Duration
		hw int
	}
	var open []outage
	highWater := 0
	job.Notify(func(rank int, ev mpi.RankEvent) {
		if ev == mpi.RankCrashed {
			out.crashes++
			open = append(open, outage{at: tb.K.Now(), hw: highWater})
		}
	})

	var wd *gq.Watchdog
	job.Start(func(ctx *sim.Ctx, r *mpi.Rank) {
		world := r.World()
		if r.ID() != 0 {
			figHWorker(ctx, r, world, stepWork, ckpt)
			return
		}

		// Coordinator. Establish the premium pair with worker 1,
		// retrying across crash-during-handshake (each retry pairs with
		// the next incarnation's attempt).
		var pc *mpi.Comm
		for {
			c, err := r.PairComm(ctx, 1)
			if err == nil {
				pc = c
				break
			}
			for job.Failed(1) && ctx.Now() < dur {
				ctx.Sleep(poll)
			}
			if ctx.Now() >= dur {
				return
			}
		}
		peer1 := 1 - r.RankIn(pc)
		attr := &gq.QosAttribute{Class: gq.Premium, Bandwidth: figHReserve}
		if err := r.AttrPut(pc, agent.Keyval(), attr); err != nil {
			panic(err)
		}
		w, err := agent.NewWatchdog(r, pc, figHTarget)
		if err != nil {
			panic(err)
		}
		w.Backoff = gq.NewBackoff(sim.NewRNG(tb.K.RNG().Int63()),
			cfg.scale(500*time.Millisecond), cfg.scale(4*time.Second))
		wd = w
		ctx.SpawnChild("figH-watchdog", func(wctx *sim.Ctx) {
			w.Run(wctx, cfg.scale(250*time.Millisecond), dur)
		})

		// awaitReady blocks until worker w's (re)start announcement,
		// rolling the global step back to the step it resumes from.
		g := 0
		awaitReady := func(w int) bool {
			for ctx.Now() < dur {
				m, err := r.Recv(ctx, world, w, mpi.AnyTag)
				if err != nil {
					ctx.Sleep(poll) // still down; poll for the restart
					continue
				}
				if m.Tag == tagHReady {
					if s := m.Data.(int); s < g {
						g = s
					}
					return true
				}
				// A stale done from the previous incarnation: discard.
			}
			return false
		}
		for w := 1; w <= 3; w++ {
			if !awaitReady(w) {
				return
			}
		}

		// BSP rounds.
		for g < figHSteps && ctx.Now() < dur {
			lost := [4]bool{}
			for w := 1; w <= 3; w++ {
				var err error
				if w == 1 {
					err = r.Send(ctx, pc, peer1, tagHTask, figHChunk, g)
				} else {
					err = r.Send(ctx, world, w, tagHTask, figHTaskSize, g)
				}
				if err != nil {
					lost[w] = true
				}
			}
			recovered := false
			for w := 1; w <= 3; w++ {
				if lost[w] {
					if !awaitReady(w) {
						return
					}
					recovered = true
					continue
				}
				m, err := r.Recv(ctx, world, w, mpi.AnyTag)
				if err != nil || m.Tag == tagHReady {
					if err == nil {
						// The worker already restarted and announced.
						if s := m.Data.(int); s < g {
							g = s
						}
					} else if !awaitReady(w) {
						return
					}
					recovered = true
				}
				// tagHDone: the round step completed on w.
			}
			if recovered {
				continue // redo the (rolled-back) round
			}
			g++
			if g > highWater {
				highWater = g
				kept := open[:0]
				for _, o := range open {
					if g > o.hw {
						out.ttrSum += ctx.Now() - o.at
						out.ttrN++
						continue
					}
					kept = append(kept, o)
				}
				open = kept
			}
		}
		if g >= figHSteps {
			out.survived = true
			for w := 1; w <= 3; w++ {
				if job.Failed(w) {
					continue
				}
				if w == 1 {
					_ = r.Send(ctx, pc, peer1, tagHTask, figHCtl, -1)
				} else {
					_ = r.Send(ctx, world, w, tagHTask, figHCtl, -1)
				}
			}
		}
		out.steps = highWater
	})

	if err := tb.K.RunUntil(dur); err != nil {
		panic(fmt.Sprintf("experiments: figure H (mtbf %v ckpt %v): %v", mtbf, ckpt, err))
	}
	if wd != nil {
		out.rebinds = wd.Rebinds()
	}
	mode := "no-ckpt"
	if ckpt {
		mode = "ckpt"
	}
	cfg.collectTrace(tb.K, pid, fmt.Sprintf("figH mtbf=%v %s", mtbf, mode))
	return out
}

// figHWorker is the worker main, shared by first incarnations and
// restarts: recover state from the last checkpoint, announce
// readiness, then serve task rounds until stopped or crashed.
func figHWorker(ctx *sim.Ctx, r *mpi.Rank, world *mpi.Comm, stepWork time.Duration, ckpt bool) {
	step := 0
	var pc *mpi.Comm
	if ck, ok := r.LastCheckpoint(); ok {
		// Restarted incarnation: resume from the snapshot.
		step = ck.Step
		if st, ok2 := ck.State.(figHState); ok2 {
			pc = st.pc
		}
	} else if r.ID() == 1 {
		// First incarnation of the premium worker: pair with the
		// coordinator before announcing ready, so the handle is in the
		// init snapshot every later incarnation recovers.
		c, err := r.PairComm(ctx, 0)
		if err != nil {
			return // crashed mid-handshake; the restart retries
		}
		pc = c
	}
	r.SaveInitState(figHState{pc: pc})
	if err := r.Send(ctx, world, 0, tagHReady, figHCtl, step); err != nil {
		return
	}
	for {
		var m *mpi.Message
		var err error
		if r.ID() == 1 {
			m, err = r.Recv(ctx, pc, 1-r.RankIn(pc), tagHTask)
		} else {
			m, err = r.Recv(ctx, world, 0, tagHTask)
		}
		if err != nil {
			return // crashed (the coordinator never fails)
		}
		s := m.Data.(int)
		if s < 0 {
			return // stop marker: the job completed
		}
		r.Compute(ctx, stepWork)
		if r.Crashed() {
			return
		}
		if ckpt && (s+1)%figHCkptEvery == 0 {
			r.SaveCheckpoint(ctx, s+1, figHState{pc: pc})
		}
		if err := r.Send(ctx, world, 0, tagHDone, figHCtl, s); err != nil {
			return
		}
	}
}

// FigureHTable renders the survival comparison.
func FigureHTable(r FigureHResult) trace.Table {
	t := trace.Table{Headers: []string{
		"rank MTBF", "ckpt survival", "ckpt TTR", "no-ckpt survival", "no-ckpt TTR", "crashes", "rebinds",
	}}
	for i := range r.MTBFs {
		ck, nc := r.Ckpt[i], r.NoCkpt[i]
		t.Add(r.MTBFs[i].String(),
			fmt.Sprintf("%d/%d", ck.Survived, ck.Trials),
			ck.MeanTTR.Round(time.Millisecond).String(),
			fmt.Sprintf("%d/%d", nc.Survived, nc.Trials),
			nc.MeanTTR.Round(time.Millisecond).String(),
			fmt.Sprintf("%d", ck.Crashes+nc.Crashes),
			fmt.Sprintf("%d", ck.Rebinds+nc.Rebinds))
	}
	return t
}
