package experiments

import (
	"time"

	gq "mpichgq/internal/core"
	"mpichgq/internal/garnet"
	"mpichgq/internal/mpi"
	"mpichgq/internal/sim"
	"mpichgq/internal/trace"
	"mpichgq/internal/trafficgen"
	"mpichgq/internal/units"
)

// Figure8Result holds the CPU-contention timeline of Figure 8.
type Figure8Result struct {
	Bandwidth trace.Series
	// Phase means: quiet (0-10 s), CPU contention (10-20 s), CPU
	// reservation (20-30 s).
	QuietMean, ContendedMean, ReservedMean units.BitRate
}

// RunFigure8 reproduces Figure 8: the visualization application
// maintains "a fairly steady throughput of 15Mb/s. However at 10
// seconds, a CPU-intensive application begins running on the same
// machine as the sending side. This reduces the bandwidth
// significantly, so a CPU reservation for 90% of the CPU is made at
// 20 seconds, and the visualization application again is able to
// achieve its full bandwidth."
//
// The sender does real "work" per frame plus per-byte socket copies
// (§5.5's lesson), calibrated so 15 Mb/s needs ~84% of the CPU:
// contention halves its share and throughput collapses; the 90% DSRT
// reservation restores it.
func RunFigure8(cfg Config) Figure8Result {
	cfg = cfg.withDefaults()
	dur := cfg.scale(30 * time.Second)
	hogStart := cfg.scale(10 * time.Second)
	resAt := cfg.scale(20 * time.Second)

	tb := garnet.New(cfg.Seed)
	d := &DVis{
		// 15 Mb/s: 187.5 KB frames at 10 fps.
		FrameSize:     187500,
		FPS:           10,
		Duration:      dur,
		WorkPerKB:     350 * time.Microsecond,
		CopyCostPerKB: 100 * time.Microsecond,
		TraceBucket:   cfg.scale(time.Second),
		JobHook: func(job *mpi.Job) {
			hog := &trafficgen.CPUHog{Start: hogStart}
			hog.Run(tb.K, job.Rank(0).Host().CPU)
		},
		SenderEvents: func(ctx *sim.Ctx, agent *gq.Agent, sender *mpi.Rank, _ *mpi.Comm) {
			ctx.Sleep(resAt - ctx.Now())
			if _, err := agent.ReserveCPU(sender, 0.9); err != nil {
				panic(err)
			}
		},
	}
	r := d.Run(tb)
	bw := r.Bandwidth
	phase := func(from, to time.Duration) units.BitRate {
		return units.BitRate(bw.Between(from, to).Mean()) * units.Kbps
	}
	return Figure8Result{
		Bandwidth:     bw,
		QuietMean:     phase(cfg.scale(2*time.Second), hogStart),
		ContendedMean: phase(hogStart+cfg.scale(time.Second), resAt),
		ReservedMean:  phase(resAt+cfg.scale(time.Second), dur),
	}
}
