// Package units defines the bandwidth, data-size, and time conventions
// used throughout the MPICH-GQ reproduction.
//
// The paper expresses bandwidths in Kb/s and Mb/s with decimal (SI)
// prefixes: 1 Kb/s = 1000 bit/s, 1 Mb/s = 1000 Kb/s. Message and frame
// sizes are given in KB (1 KB = 1000 bytes) except where the paper
// clearly means kilobits (e.g. "8 Kb messages" in Figure 5); callers
// choose the constant that matches the paper's usage.
package units

import (
	"fmt"
	"time"
)

// BitRate is a bandwidth in bits per second.
type BitRate float64

// Bandwidth constants with SI (decimal) prefixes, as used in the paper.
const (
	BitPerSec BitRate = 1
	Kbps              = 1000 * BitPerSec
	Mbps              = 1000 * Kbps
	Gbps              = 1000 * Mbps
)

// Kbps returns the rate in kilobits per second.
func (r BitRate) Kbps() float64 { return float64(r) / float64(Kbps) }

// Mbps returns the rate in megabits per second.
func (r BitRate) Mbps() float64 { return float64(r) / float64(Mbps) }

// String formats the rate with an appropriate SI prefix.
func (r BitRate) String() string {
	switch {
	case r >= Gbps:
		return fmt.Sprintf("%.2fGb/s", float64(r)/float64(Gbps))
	case r >= Mbps:
		return fmt.Sprintf("%.2fMb/s", float64(r)/float64(Mbps))
	case r >= Kbps:
		return fmt.Sprintf("%.2fKb/s", float64(r)/float64(Kbps))
	default:
		return fmt.Sprintf("%.0fb/s", float64(r))
	}
}

// TimeToSend returns the serialization time for n bytes at rate r.
// A zero or negative rate is treated as infinitely fast.
func (r BitRate) TimeToSend(n ByteSize) time.Duration {
	if r <= 0 {
		return 0
	}
	bits := float64(n) * 8
	sec := bits / float64(r)
	return time.Duration(sec * float64(time.Second))
}

// BytesIn returns how many whole bytes rate r delivers in d.
func (r BitRate) BytesIn(d time.Duration) ByteSize {
	if r <= 0 || d <= 0 {
		return 0
	}
	bits := float64(r) * d.Seconds()
	return ByteSize(bits / 8)
}

// ByteSize is a data size in bytes.
type ByteSize int64

// Size constants. The paper uses decimal sizes (KB = 1000 bytes) for
// frame sizes and kilobits (Kb = 125 bytes) for message sizes.
const (
	Byte ByteSize = 1
	KB            = 1000 * Byte
	MB            = 1000 * KB
	GB            = 1000 * MB

	// Kbit is the size of one kilobit of payload expressed in bytes.
	Kbit = 125 * Byte
	Mbit = 1000 * Kbit
)

// Bits returns the size in bits.
func (s ByteSize) Bits() int64 { return int64(s) * 8 }

// String formats the size with an appropriate SI prefix.
func (s ByteSize) String() string {
	switch {
	case s >= GB:
		return fmt.Sprintf("%.2fGB", float64(s)/float64(GB))
	case s >= MB:
		return fmt.Sprintf("%.2fMB", float64(s)/float64(MB))
	case s >= KB:
		return fmt.Sprintf("%.2fKB", float64(s)/float64(KB))
	default:
		return fmt.Sprintf("%dB", int64(s))
	}
}

// RateOf returns the average bit rate achieved by transferring n bytes
// in d. A non-positive duration yields zero.
func RateOf(n ByteSize, d time.Duration) BitRate {
	if d <= 0 {
		return 0
	}
	return BitRate(float64(n.Bits()) / d.Seconds())
}
