package units

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestBitRateString(t *testing.T) {
	cases := []struct {
		r    BitRate
		want string
	}{
		{500 * BitPerSec, "500b/s"},
		{64 * Kbps, "64.00Kb/s"},
		{40 * Mbps, "40.00Mb/s"},
		{2500 * Kbps, "2.50Mb/s"},
		{1 * Gbps, "1.00Gb/s"},
	}
	for _, c := range cases {
		if got := c.r.String(); got != c.want {
			t.Errorf("%v.String() = %q, want %q", float64(c.r), got, c.want)
		}
	}
}

func TestByteSizeString(t *testing.T) {
	cases := []struct {
		s    ByteSize
		want string
	}{
		{100 * Byte, "100B"},
		{40 * KB, "40.00KB"},
		{5 * MB, "5.00MB"},
		{2 * GB, "2.00GB"},
	}
	for _, c := range cases {
		if got := c.s.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestTimeToSend(t *testing.T) {
	// 100 KB at 8 Mb/s: 800,000 bits / 8,000,000 b/s = 100 ms.
	got := (8 * Mbps).TimeToSend(100 * KB)
	if got != 100*time.Millisecond {
		t.Fatalf("TimeToSend = %v, want 100ms", got)
	}
}

func TestTimeToSendZeroRate(t *testing.T) {
	if d := BitRate(0).TimeToSend(MB); d != 0 {
		t.Fatalf("zero rate should send instantly, got %v", d)
	}
}

func TestBytesIn(t *testing.T) {
	// 64 Kb/s for 1 s = 8000 bytes.
	got := (64 * Kbps).BytesIn(time.Second)
	if got != 8000 {
		t.Fatalf("BytesIn = %d, want 8000", got)
	}
	if (64 * Kbps).BytesIn(-time.Second) != 0 {
		t.Fatal("negative duration should give 0 bytes")
	}
}

func TestRateOf(t *testing.T) {
	// 1 MB in 1 s = 8 Mb/s.
	got := RateOf(MB, time.Second)
	if math.Abs(float64(got)-float64(8*Mbps)) > 1 {
		t.Fatalf("RateOf = %v, want 8Mb/s", got)
	}
	if RateOf(MB, 0) != 0 {
		t.Fatal("zero duration should give 0 rate")
	}
}

func TestKbitConstant(t *testing.T) {
	if Kbit != 125 {
		t.Fatalf("Kbit = %d bytes, want 125", Kbit)
	}
	if (8 * Kbit).Bits() != 8000 {
		t.Fatalf("8 Kbit = %d bits, want 8000", (8 * Kbit).Bits())
	}
}

// TimeToSend and RateOf are inverse operations (up to rounding).
func TestTimeToSendRateOfRoundTrip(t *testing.T) {
	f := func(kb uint16, mbps uint8) bool {
		if kb == 0 || mbps == 0 {
			return true
		}
		size := ByteSize(kb) * KB
		rate := BitRate(mbps) * Mbps
		d := rate.TimeToSend(size)
		back := RateOf(size, d)
		return math.Abs(float64(back)-float64(rate)) < float64(rate)*1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// BytesIn is monotone in duration.
func TestBytesInMonotone(t *testing.T) {
	f := func(a, b uint32) bool {
		r := 10 * Mbps
		da := time.Duration(a) * time.Microsecond
		db := time.Duration(b) * time.Microsecond
		if da > db {
			da, db = db, da
		}
		return r.BytesIn(da) <= r.BytesIn(db)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
