package trafficgen

import (
	"errors"
	"fmt"
	"time"

	"mpichgq/internal/ctrlplane"
	"mpichgq/internal/gara"
	"mpichgq/internal/sim"
)

// ReservationStorm slams a control-plane domain with reservation
// requests: seeded open-loop Poisson arrivals (demand that does not
// slow down when the broker does — the overload regime) plus
// closed-loop retrying clients (demand that comes back after every
// answer). The closed-loop half models the dangerous part of a real
// admission storm — MPICH-G2-style co-allocating jobs that retry on
// failure — in two temperaments: naive (retry immediately, amplifying
// the storm) and adaptive (AIMD in-flight window, honoring
// retry-after, the well-behaved client the overload controls assume).
type ReservationStorm struct {
	// Conns are the tenant stubs to spread arrivals across. Required.
	Conns []*ctrlplane.Conn
	// Rate is the open-loop mean arrival rate per second (Poisson;
	// 0 disables the open-loop half).
	Rate float64
	// Clients is the number of closed-loop clients (round-robin over
	// Conns; 0 disables the closed-loop half).
	Clients int
	// Adaptive switches clients from naive immediate retry to AIMD
	// adaptive concurrency with retry-after holds.
	Adaptive bool
	// Retries is how many times a client re-submits a failed request
	// (default 2). Retries re-enter the deadline-bounded call path, so
	// each retry is a fresh storm contribution.
	Retries int
	// Think is the closed-loop think time between requests (default
	// 50ms).
	Think time.Duration
	// WindowMax caps the adaptive clients' AIMD window (default 32).
	WindowMax float64
	// Spec builds the i-th request (class mix, bandwidth, window).
	// Required.
	Spec func(i int) gara.Spec
	// Stop ends request generation (required; in-flight calls drain on
	// their own deadlines).
	Stop time.Duration

	n int // arrival counter, shared by both halves
	// limiters is indexed [conn][class]: each class keeps its own AIMD
	// window, so brownout sheds aimed at best-effort traffic collapse
	// only the best-effort window while premium keeps flowing.
	limiters [][]*ctrlplane.Limiter
	stats    StormStats
}

// StormStats aggregates the storm's client-side view. All counts are
// whole logical requests (a deadline-bounded call with its internal
// RPC retries is one request; a client-level re-submission is
// another).
type StormStats struct {
	// Offered: requests initiated.
	Offered int
	// OK: requests answered with an admitted reservation before Stop
	// (completions in the drain tail are not counted, so rates over
	// the generation window are unbiased).
	OK int
	// OfferedByClass/OKByClass break the counts down by request class
	// (indexed by gara.Class), isolating how each class fares under
	// brownout.
	OfferedByClass, OKByClass [3]int
	// Overloads: requests that died with ErrOverloaded.
	Overloads int
	// Deadlines: requests that burned their whole call deadline.
	Deadlines int
	// Refused: server-side refusals (policy, no capacity) — final, not
	// retried.
	Refused int
	// Latencies holds each successful request's admission latency, in
	// completion order.
	Latencies []time.Duration
}

// Run spawns the storm's processes. Arrivals and clients stop at
// Stop; calls in flight at that point drain on their own deadlines.
func (s *ReservationStorm) Run(k *sim.Kernel) {
	if len(s.Conns) == 0 || s.Spec == nil || s.Stop <= 0 {
		panic("trafficgen: ReservationStorm needs Conns, Spec, and Stop")
	}
	if s.Retries == 0 {
		s.Retries = 2
	}
	if s.Think <= 0 {
		s.Think = 50 * time.Millisecond
	}
	if s.WindowMax <= 0 {
		s.WindowMax = 32
	}
	if s.Adaptive {
		s.limiters = make([][]*ctrlplane.Limiter, len(s.Conns))
		for i, cn := range s.Conns {
			s.limiters[i] = make([]*ctrlplane.Limiter, 3)
			for cl := range s.limiters[i] {
				s.limiters[i][cl] = ctrlplane.NewLimiter(k,
					fmt.Sprintf("%s/%d/%s", cn.Name(), i, gara.Class(cl)), 1, s.WindowMax)
			}
		}
	}
	if s.Rate > 0 {
		k.Spawn("storm-arrivals", func(ctx *sim.Ctx) {
			mean := float64(time.Second) / s.Rate
			for i := 0; ; i++ {
				gap := time.Duration(ctx.RNG().ExpFloat64() * mean)
				if gap < time.Microsecond {
					gap = time.Microsecond
				}
				ctx.Sleep(gap)
				if ctx.Now() >= s.Stop {
					return
				}
				ci := i % len(s.Conns)
				ctx.SpawnChild(fmt.Sprintf("storm-arrival-%d", i), func(cctx *sim.Ctx) {
					s.oneRequest(cctx, ci)
				})
			}
		})
	}
	for c := 0; c < s.Clients; c++ {
		ci := c % len(s.Conns)
		k.Spawn(fmt.Sprintf("storm-client-%d", c), func(ctx *sim.Ctx) {
			for ctx.Now() < s.Stop {
				s.oneRequest(ctx, ci)
				ctx.Sleep(s.Think)
			}
		})
	}
}

// oneRequest submits one logical reservation request through conn ci,
// with up to Retries client-level re-submissions on retryable
// failures.
func (s *ReservationStorm) oneRequest(ctx *sim.Ctx, ci int) {
	conn := s.Conns[ci]
	spec := s.Spec(s.n)
	var lim *ctrlplane.Limiter
	if s.limiters != nil {
		lim = s.limiters[ci][spec.Class]
	}
	s.n++
	s.stats.Offered++
	s.stats.OfferedByClass[spec.Class]++
	for attempt := 0; ; attempt++ {
		if lim != nil {
			lim.Acquire(ctx)
			// The window can hold a backlog of waiters far past Stop;
			// a request that never got to send its first attempt is
			// abandoned rather than issued into the drain tail.
			if attempt == 0 && ctx.Now() >= s.Stop {
				lim.Cancel()
				return
			}
		}
		start := ctx.Now()
		_, err := conn.Reserve(ctx, spec)
		if err == nil {
			if lim != nil {
				lim.Release(true, false, 0)
			}
			if ctx.Now() <= s.Stop {
				s.stats.OK++
				s.stats.OKByClass[spec.Class]++
				s.stats.Latencies = append(s.stats.Latencies, ctx.Now()-start)
			}
			return
		}
		var oe *ctrlplane.OverloadedError
		overloaded := errors.As(err, &oe)
		expired := errors.Is(err, ctrlplane.ErrDeadline)
		if lim != nil {
			var ra time.Duration
			if overloaded {
				ra = oe.RetryAfter
			}
			// Only congestion signals shrink the window. A definitive
			// refusal (policy, slot table full) is a healthy server
			// answering at full speed; halving on it would pin a
			// mostly-refused workload at the window floor and hide real
			// overload from the broker entirely.
			lim.Release(!overloaded && !expired, overloaded, ra)
		}
		switch {
		case overloaded:
			s.stats.Overloads++
		case expired:
			s.stats.Deadlines++
		default:
			// A definitive refusal (policy, slot table full): retrying
			// the identical spec cannot succeed.
			s.stats.Refused++
			return
		}
		if attempt >= s.Retries || ctx.Now() >= s.Stop {
			return
		}
		// Naive clients turn right back around — this immediate retry
		// is what amplifies transient overload into a storm. Adaptive
		// clients are paced by the limiter's window and retry-after
		// hold instead.
	}
}

// Stats returns the storm's client-side counters.
func (s *ReservationStorm) Stats() *StormStats { return &s.stats }
