package trafficgen

import (
	"reflect"
	"testing"
	"time"

	"mpichgq/internal/ctrlplane"
	"mpichgq/internal/diffserv"
	"mpichgq/internal/faults"
	"mpichgq/internal/gara"
	"mpichgq/internal/netsim"
	"mpichgq/internal/sim"
	"mpichgq/internal/units"
)

// stormRig is a single-domain serving testbed (hostA - e1 - c1) with an
// admission-controlled control plane, mirroring the figure I topology.
type stormRig struct {
	k     *sim.Kernel
	net   *netsim.Network
	rm    *gara.NetworkRM
	links []*netsim.Link
	plane *ctrlplane.Plane
	storm *ReservationStorm
}

func newStormRig(seed int64, rate float64, adaptive bool, stop time.Duration) *stormRig {
	k := sim.New(seed)
	n := netsim.New(k)
	hostA, e1, c1 := n.AddNode("hostA"), n.AddNode("e1"), n.AddNode("c1")
	l1 := n.Connect(hostA, e1, units.Gbps, time.Millisecond)
	l2 := n.Connect(e1, c1, units.Gbps, time.Millisecond)
	n.ComputeRoutes()
	dom := diffserv.NewDomain(k)
	dom.EnableEFAll(hostA, e1, c1)
	rm := gara.NewNetworkRM(n, dom, 0.5)
	rm.Scope = gara.LinkScope(l1, l2)
	g := gara.New(k)
	g.Register(rm)
	plane := ctrlplane.NewPlane(k, ctrlplane.Options{
		Timeout:  400 * time.Millisecond,
		Deadline: 1200 * time.Millisecond,
		Admission: ctrlplane.Admission{
			ServiceTime:   10 * time.Millisecond,
			QueueLimit:    20,
			CoDelTarget:   50 * time.Millisecond,
			CoDelInterval: 200 * time.Millisecond,
			DropExpired:   true,
			BrownoutHi:    16,
			BrownoutLo:    4,
			BrownoutHold:  500 * time.Millisecond,
		},
	})
	plane.AddDomain("dom", g, rm)
	conns := []*ctrlplane.Conn{
		plane.AddTenantConn("dom", "t0"),
		plane.AddTenantConn("dom", "t1"),
	}
	storm := &ReservationStorm{
		Conns:    conns,
		Rate:     rate,
		Clients:  4,
		Adaptive: adaptive,
		Think:    100 * time.Millisecond,
		Stop:     stop,
		Spec: func(i int) gara.Spec {
			cls := gara.ClassBestEffort
			switch i % 3 {
			case 0:
				cls = gara.ClassPremium
			case 1:
				cls = gara.ClassNormal
			}
			return gara.Spec{
				Type:      gara.ResourceNetwork,
				Class:     cls,
				Flow:      diffserv.MatchHostPair(hostA.Addr(), c1.Addr(), netsim.ProtoUDP),
				Bandwidth: units.Mbps,
				Duration:  2 * time.Second,
			}
		},
	}
	return &stormRig{k: k, net: n, rm: rm, links: []*netsim.Link{l1, l2}, plane: plane, storm: storm}
}

// leaked sums booked EF fractions across the domain's links; once every
// reservation window has lapsed it must be zero.
func (r *stormRig) leaked() float64 {
	total := 0.0
	for _, l := range r.links {
		total += r.rm.Utilization(l, r.k.Now())
	}
	return total
}

// runStormSoak drives one full chaos soak — an admission storm at 5x
// capacity under rolling control-channel loss and a crash/restart mid
// storm — and returns the storm's stats for determinism comparison.
func runStormSoak(t *testing.T, seed int64) *StormStats {
	t.Helper()
	r := newStormRig(seed, 500, true, 12*time.Second)
	sc := faults.NewScenario("admission-storm-soak").
		CtrlLoss("dom", 0, 12*time.Second, 0.2).
		CtrlCrash(5*time.Second, "dom").
		CtrlRestart(6*time.Second, "dom")
	if _, err := sc.ApplyWith(r.net, r.plane); err != nil {
		t.Fatal(err)
	}
	r.storm.Run(r.k)
	// Past storm stop + call deadline + the 2s reservation window, the
	// links must be clean again.
	if err := r.k.RunUntil(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	return r.storm.Stats()
}

// TestAdmissionStormChaosSoak slams one admission-controlled domain at
// 5x capacity while the control channel drops 20% of messages and the
// server crashes and restarts mid-storm. The invariants: requests keep
// succeeding, overload sheds actually happen, nothing stays booked once
// every window lapses, and the admission queue drains to idle.
func TestAdmissionStormChaosSoak(t *testing.T) {
	r := newStormRig(21, 500, true, 12*time.Second)
	sc := faults.NewScenario("admission-storm-soak").
		CtrlLoss("dom", 0, 12*time.Second, 0.2).
		CtrlCrash(5*time.Second, "dom").
		CtrlRestart(6*time.Second, "dom")
	if _, err := sc.ApplyWith(r.net, r.plane); err != nil {
		t.Fatal(err)
	}
	r.storm.Run(r.k)
	if err := r.k.RunUntil(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	st := r.storm.Stats()
	if st.OK == 0 {
		t.Fatal("soak admitted nothing at all")
	}
	if st.Overloads == 0 {
		t.Fatal("5x storm produced no overload sheds — admission control inert?")
	}
	if got := r.leaked(); got != 0 {
		t.Fatalf("leaked %v of EF capacity after every window lapsed", got)
	}
	srv := r.plane.Conn("dom").Server()
	if d := srv.QueueDepth(); d != 0 {
		t.Fatalf("admission queue depth = %d after drain, want 0", d)
	}
	if l := srv.BrownoutLevel(); l != 0 {
		t.Fatalf("brownout level = %d after drain, want 0", l)
	}
	// The crash must have wiped the queue visibly: every queued request
	// at crash time counts as a shed with reason "crash".
	reg := r.k.Metrics()
	if v, ok := reg.CounterValue("admission_shed_total", "rm", "dom", "reason", "crash"); !ok || v == 0 {
		t.Error("server crash mid-storm wiped no queued requests")
	}
	t.Logf("soak: %d offered, %d ok, %d overloads, %d deadlines, %d refused",
		st.Offered, st.OK, st.Overloads, st.Deadlines, st.Refused)
}

// TestAdmissionStormSoakDeterministic runs the identical chaos soak
// twice from one seed: the storm's client-visible stats — counts and
// every individual latency — must match exactly.
func TestAdmissionStormSoakDeterministic(t *testing.T) {
	a := runStormSoak(t, 77)
	b := runStormSoak(t, 77)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different storms:\n a=%+v\n b=%+v", a, b)
	}
}

// TestStormNaiveVsAdaptiveClients pins the client-behavior contrast the
// figure rests on: with the same arrival process, adaptive AIMD clients
// extract at least as much goodput as naive immediate-retry clients
// from an overloaded domain, while suffering no deadline burns.
func TestStormNaiveVsAdaptiveClients(t *testing.T) {
	run := func(adaptive bool) *StormStats {
		r := newStormRig(5, 400, adaptive, 10*time.Second)
		r.storm.Run(r.k)
		if err := r.k.RunUntil(14 * time.Second); err != nil {
			t.Fatal(err)
		}
		return r.storm.Stats()
	}
	naive, adaptive := run(false), run(true)
	if naive.OK == 0 || adaptive.OK == 0 {
		t.Fatalf("storm starved: naive %d ok, adaptive %d ok", naive.OK, adaptive.OK)
	}
	if adaptive.OK < naive.OK {
		t.Errorf("adaptive clients admitted less than naive ones: %d vs %d", adaptive.OK, naive.OK)
	}
}
