// Package trafficgen provides the contention generators the paper's
// experiments use: a UDP blaster "quite capable of overwhelming any
// TCP application that does not have a reservation" (§5.2) and a
// CPU-intensive hog process (§5.5).
package trafficgen

import (
	"fmt"
	"time"

	"mpichgq/internal/dsrt"
	"mpichgq/internal/netsim"
	"mpichgq/internal/sim"
	"mpichgq/internal/units"
)

// UDPBlaster floods a destination with best-effort UDP datagrams at a
// configured rate.
type UDPBlaster struct {
	// Rate is the offered load. Required.
	Rate units.BitRate
	// PacketSize is the datagram payload size. Default 1000 bytes.
	PacketSize units.ByteSize
	// Jitter randomizes inter-packet gaps by ±fraction (0 = perfectly
	// paced CBR). A little jitter avoids phase-locking with the
	// victim's packets.
	Jitter float64
	// Start and Stop bound the blasting window; Stop 0 = forever.
	Start, Stop time.Duration

	sent int64
}

// Run attaches the blaster to src targeting dst's port. It spawns the
// generator process and returns immediately.
func (b *UDPBlaster) Run(src, dst *netsim.Node, port netsim.Port) error {
	if b.Rate <= 0 {
		return fmt.Errorf("trafficgen: blaster needs a positive rate")
	}
	if b.PacketSize == 0 {
		b.PacketSize = 1000
	}
	k := src.Network().Kernel()
	sock, err := src.UDPStack().Bind(0)
	if err != nil {
		return err
	}
	// Make sure something sinks the datagrams (drops at the stack are
	// fine too, but a bound sink keeps counters meaningful).
	dstStack := dst.UDPStack()
	if sink, err := dstStack.Bind(port); err == nil {
		k.Spawn(fmt.Sprintf("blaster-sink-%s", dst.Name()), func(ctx *sim.Ctx) {
			for {
				if _, err := sink.Recv(ctx); err != nil {
					return
				}
			}
		})
	}
	gap := b.Rate.TimeToSend(b.PacketSize + netsim.UDPHeader + netsim.IPHeader)
	k.SpawnAt(b.Start, fmt.Sprintf("blaster-%s->%s", src.Name(), dst.Name()), func(ctx *sim.Ctx) {
		for b.Stop == 0 || ctx.Now() < b.Stop {
			sock.SendTo(dst.Addr(), port, b.PacketSize, nil)
			b.sent++
			d := gap
			if b.Jitter > 0 {
				d = time.Duration(float64(gap) * ctx.RNG().Jitter(b.Jitter))
			}
			ctx.Sleep(d)
		}
	})
	return nil
}

// Sent returns the number of datagrams offered so far.
func (b *UDPBlaster) Sent() int64 { return b.sent }

// CPUHog occupies a CPU with continuous best-effort computation
// between Start and Stop (Stop 0 = forever), emulating "a
// CPU-intensive application ... running on the same machine as the
// sending side" (§5.5).
type CPUHog struct {
	Start, Stop time.Duration
	// Slice is the length of each compute burst. Default 10 ms.
	Slice time.Duration

	task *dsrt.Task
}

// Run attaches the hog to a CPU and spawns its process.
func (h *CPUHog) Run(k *sim.Kernel, cpu *dsrt.CPU) {
	if h.Slice == 0 {
		h.Slice = 10 * time.Millisecond
	}
	h.task = cpu.NewTask("cpu-hog")
	k.SpawnAt(h.Start, fmt.Sprintf("cpu-hog-%s", cpu.Name()), func(ctx *sim.Ctx) {
		for h.Stop == 0 || ctx.Now() < h.Stop {
			h.task.Compute(ctx, h.Slice)
		}
		h.task.Close()
	})
}

// Task returns the hog's DSRT task (for inspection).
func (h *CPUHog) Task() *dsrt.Task { return h.task }
