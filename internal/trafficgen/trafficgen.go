// Package trafficgen provides the contention generators the paper's
// experiments use: a UDP blaster "quite capable of overwhelming any
// TCP application that does not have a reservation" (§5.2) and a
// CPU-intensive hog process (§5.5).
package trafficgen

import (
	"fmt"
	"time"

	"mpichgq/internal/dsrt"
	"mpichgq/internal/netsim"
	"mpichgq/internal/sim"
	"mpichgq/internal/units"
)

// Background is a background contention generator: the packet-level
// UDP blaster and the fluid blaster implement it, so figure configs
// select the simulation mode instead of constructing blasters inline.
type Background interface {
	// Run attaches the generator to src targeting dst's port and
	// schedules its traffic. It returns immediately.
	Run(src, dst *netsim.Node, port netsim.Port) error
	// Sent returns the datagrams (or datagram-equivalents) offered so
	// far.
	Sent() int64
}

// BackgroundOptions parameterizes NewBackground.
type BackgroundOptions struct {
	// Rate is the offered load. Required.
	Rate units.BitRate
	// PacketSize is the datagram payload size. Default 1000 bytes.
	PacketSize units.ByteSize
	// Jitter randomizes packet-mode inter-packet gaps by ±fraction.
	// Fluid mode has no per-packet events to jitter; it is ignored
	// there.
	Jitter float64
	// Start and Stop bound the blasting window; Stop 0 = forever.
	Start, Stop time.Duration
	// Fluid selects the fluid blaster (rate installed analytically at
	// queues) instead of the packet-level one.
	Fluid bool
}

// NewBackground returns the blaster the options select: the same
// seeded schedule runs either packet-level or as fluid.
func NewBackground(o BackgroundOptions) Background {
	if o.Fluid {
		return &FluidBlaster{Rate: o.Rate, PacketSize: o.PacketSize, Start: o.Start, Stop: o.Stop}
	}
	return &UDPBlaster{Rate: o.Rate, PacketSize: o.PacketSize, Jitter: o.Jitter, Start: o.Start, Stop: o.Stop}
}

// UDPBlaster floods a destination with best-effort UDP datagrams at a
// configured rate.
type UDPBlaster struct {
	// Rate is the offered load. Required.
	Rate units.BitRate
	// PacketSize is the datagram payload size. Default 1000 bytes.
	PacketSize units.ByteSize
	// Jitter randomizes inter-packet gaps by ±fraction (0 = perfectly
	// paced CBR). A little jitter avoids phase-locking with the
	// victim's packets.
	Jitter float64
	// Start and Stop bound the blasting window; Stop 0 = forever.
	Start, Stop time.Duration

	sent int64
}

// Run attaches the blaster to src targeting dst's port. It spawns the
// generator process and returns immediately.
func (b *UDPBlaster) Run(src, dst *netsim.Node, port netsim.Port) error {
	if b.Rate <= 0 {
		return fmt.Errorf("trafficgen: blaster needs a positive rate")
	}
	if b.PacketSize == 0 {
		b.PacketSize = 1000
	}
	k := src.Network().Kernel()
	sock, err := src.UDPStack().Bind(0)
	if err != nil {
		return err
	}
	// Make sure something sinks the datagrams (drops at the stack are
	// fine too, but a bound sink keeps counters meaningful).
	dstStack := dst.UDPStack()
	if sink, err := dstStack.Bind(port); err == nil {
		k.Spawn(fmt.Sprintf("blaster-sink-%s", dst.Name()), func(ctx *sim.Ctx) {
			for {
				if _, err := sink.Recv(ctx); err != nil {
					return
				}
			}
		})
	}
	gap := b.Rate.TimeToSend(b.PacketSize + netsim.UDPHeader + netsim.IPHeader)
	k.SpawnAt(b.Start, fmt.Sprintf("blaster-%s->%s", src.Name(), dst.Name()), func(ctx *sim.Ctx) {
		for b.Stop == 0 || ctx.Now() < b.Stop {
			sock.SendTo(dst.Addr(), port, b.PacketSize, nil)
			b.sent++
			d := gap
			if b.Jitter > 0 {
				d = time.Duration(float64(gap) * ctx.RNG().Jitter(b.Jitter))
			}
			ctx.Sleep(d)
		}
	})
	return nil
}

// Sent returns the number of datagrams offered so far.
func (b *UDPBlaster) Sent() int64 { return b.sent }

// FluidBlaster is the fluid-mode counterpart of UDPBlaster: the same
// offered rate over the same window, but modeled as a netsim.FluidFlow
// whose rate is installed analytically at every queue on the path. Its
// only kernel events are the start and stop rate changes.
type FluidBlaster struct {
	// Rate is the offered load. Required.
	Rate units.BitRate
	// PacketSize is the payload size of the notional datagrams; it
	// sets the service quantum foreground packets see. Default 1000.
	PacketSize units.ByteSize
	// Start and Stop bound the blasting window; Stop 0 = forever.
	Start, Stop time.Duration

	flow *netsim.FluidFlow
}

// Run declares the fluid flow and schedules its start/stop rate
// changes. It returns immediately.
func (b *FluidBlaster) Run(src, dst *netsim.Node, port netsim.Port) error {
	if b.Rate <= 0 {
		return fmt.Errorf("trafficgen: blaster needs a positive rate")
	}
	if b.PacketSize == 0 {
		b.PacketSize = 1000
	}
	net := src.Network()
	k := net.Kernel()
	name := fmt.Sprintf("blaster-%s->%s", src.Name(), dst.Name())
	b.flow = net.NewFluidFlow(name, src, dst, port, b.Rate, b.PacketSize)
	k.AtFunc(b.Start, sim.PrioNet, fluidBlasterStart, b.flow, nil)
	if b.Stop > 0 {
		k.AtFunc(b.Stop, sim.PrioNet, fluidBlasterStop, b.flow, nil)
	}
	return nil
}

// fluidBlasterStart and fluidBlasterStop are prebound rate-change
// callbacks.
func fluidBlasterStart(a0, _ any) { a0.(*netsim.FluidFlow).Start() }
func fluidBlasterStop(a0, _ any)  { a0.(*netsim.FluidFlow).Stop() }

// Sent returns the datagram-equivalents offered so far (offered bytes
// divided by the payload size).
func (b *FluidBlaster) Sent() int64 {
	if b.flow == nil {
		return 0
	}
	return int64(b.flow.OfferedBytes() / b.PacketSize)
}

// Flow returns the underlying fluid flow (nil before Run).
func (b *FluidBlaster) Flow() *netsim.FluidFlow { return b.flow }

// CPUHog occupies a CPU with continuous best-effort computation
// between Start and Stop (Stop 0 = forever), emulating "a
// CPU-intensive application ... running on the same machine as the
// sending side" (§5.5).
type CPUHog struct {
	Start, Stop time.Duration
	// Slice is the length of each compute burst. Default 10 ms.
	Slice time.Duration

	task *dsrt.Task
}

// Run attaches the hog to a CPU and spawns its process.
func (h *CPUHog) Run(k *sim.Kernel, cpu *dsrt.CPU) {
	if h.Slice == 0 {
		h.Slice = 10 * time.Millisecond
	}
	h.task = cpu.NewTask("cpu-hog")
	k.SpawnAt(h.Start, fmt.Sprintf("cpu-hog-%s", cpu.Name()), func(ctx *sim.Ctx) {
		for h.Stop == 0 || ctx.Now() < h.Stop {
			h.task.Compute(ctx, h.Slice)
		}
		h.task.Close()
	})
}

// Task returns the hog's DSRT task (for inspection).
func (h *CPUHog) Task() *dsrt.Task { return h.task }
