package trafficgen

import (
	"testing"
	"time"

	"mpichgq/internal/dsrt"
	"mpichgq/internal/netsim"
	"mpichgq/internal/sim"
	"mpichgq/internal/units"
)

func TestBlasterOfferedRate(t *testing.T) {
	k := sim.New(1)
	n := netsim.New(k)
	a, b := n.AddNode("a"), n.AddNode("b")
	n.Connect(a, b, 100*units.Mbps, time.Millisecond)
	n.ComputeRoutes()
	bl := &UDPBlaster{Rate: 20 * units.Mbps, PacketSize: 1000}
	if err := bl.Run(a, b, 9000); err != nil {
		t.Fatal(err)
	}
	if err := k.RunUntil(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	// 20 Mb/s in 1028-byte wire packets for 10 s ≈ 24320 packets.
	wantF := 10 * 20e6 / (1028 * 8.0)
	want := int64(wantF)
	if bl.Sent() < want*95/100 || bl.Sent() > want*105/100 {
		t.Fatalf("sent %d datagrams, want ~%d", bl.Sent(), want)
	}
}

func TestBlasterWindow(t *testing.T) {
	k := sim.New(1)
	n := netsim.New(k)
	a, b := n.AddNode("a"), n.AddNode("b")
	n.Connect(a, b, 100*units.Mbps, 0)
	n.ComputeRoutes()
	bl := &UDPBlaster{Rate: 10 * units.Mbps, Start: 2 * time.Second, Stop: 4 * time.Second}
	if err := bl.Run(a, b, 9000); err != nil {
		t.Fatal(err)
	}
	if err := k.RunUntil(time.Second); err != nil {
		t.Fatal(err)
	}
	if bl.Sent() != 0 {
		t.Fatal("blaster started early")
	}
	if err := k.RunUntil(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	sent := bl.Sent()
	if sent == 0 {
		t.Fatal("blaster never ran")
	}
	if err := k.RunUntil(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	if bl.Sent() != sent {
		t.Fatal("blaster kept sending after Stop")
	}
}

func TestBlasterJitterDeterministic(t *testing.T) {
	run := func() int64 {
		k := sim.New(7)
		n := netsim.New(k)
		a, b := n.AddNode("a"), n.AddNode("b")
		n.Connect(a, b, 100*units.Mbps, 0)
		n.ComputeRoutes()
		bl := &UDPBlaster{Rate: 10 * units.Mbps, Jitter: 0.2}
		bl.Run(a, b, 9000)
		k.RunUntil(5 * time.Second)
		return bl.Sent()
	}
	if run() != run() {
		t.Fatal("jittered blaster not deterministic across same-seed runs")
	}
}

func TestBlasterValidation(t *testing.T) {
	k := sim.New(1)
	n := netsim.New(k)
	a, b := n.AddNode("a"), n.AddNode("b")
	n.Connect(a, b, units.Mbps, 0)
	n.ComputeRoutes()
	bl := &UDPBlaster{}
	if err := bl.Run(a, b, 9); err == nil {
		t.Fatal("zero-rate blaster should be rejected")
	}
}

func TestCPUHogStealsShare(t *testing.T) {
	k := sim.New(1)
	cpu := dsrt.NewCPU(k, "host")
	app := cpu.NewTask("app")
	hog := &CPUHog{Start: time.Second, Stop: 3 * time.Second}
	hog.Run(k, cpu)
	var done time.Duration
	k.Spawn("app", func(ctx *sim.Ctx) {
		app.Compute(ctx, 2*time.Second)
		done = ctx.Now()
	})
	if err := k.RunUntil(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	// App alone 0-1s (1s of work done), contended 1-3s (1s more at
	// half speed -> finishes at 3s).
	if done < 2900*time.Millisecond || done > 3100*time.Millisecond {
		t.Fatalf("app finished at %v, want ~3s", done)
	}
}
