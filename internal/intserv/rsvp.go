package intserv

import (
	"fmt"
	"time"

	"mpichgq/internal/netsim"
	"mpichgq/internal/sim"
	"mpichgq/internal/units"
)

// RSVP manages per-flow reservations hop by hop, in the style of the
// Resource ReSerVation Protocol (RFC 2205): a reservation installs
// WFQ flow state at every router egress along the path, and the state
// is *soft* — it must be refreshed periodically or the routers time
// it out.
type RSVP struct {
	k   *sim.Kernel
	net *netsim.Network
	// queues holds the WFQ installed at each managed egress
	// interface (installed lazily on first reservation through it).
	queues map[*netsim.Iface]*WFQ
	// Fraction of each link reservable by guaranteed flows.
	Fraction float64
	// RefreshPeriod between soft-state refreshes; state expires after
	// 3 missed refreshes. Default 5 s.
	RefreshPeriod time.Duration
}

// NewRSVP returns a manager over net.
func NewRSVP(net *netsim.Network) *RSVP {
	return &RSVP{
		k:             net.Kernel(),
		net:           net,
		queues:        make(map[*netsim.Iface]*WFQ),
		Fraction:      0.9,
		RefreshPeriod: 5 * time.Second,
	}
}

// queueAt returns (installing if needed) the WFQ on an egress iface.
func (r *RSVP) queueAt(out *netsim.Iface) *WFQ {
	if q, ok := r.queues[out]; ok {
		return q
	}
	q := NewWFQ(units.BitRate(float64(out.Link().Rate())*r.Fraction), netsim.DefaultQueueCap)
	out.SetQueue(q)
	r.queues[out] = q
	return q
}

// Session is one end-to-end guaranteed reservation.
type Session struct {
	rsvp *RSVP
	flow netsim.FlowKey
	rate units.BitRate
	hops []*hopState
	done bool

	refreshTimer sim.Timer
	// AutoRefresh keeps the soft state alive (default). Disable to
	// observe soft-state expiry.
	AutoRefresh bool
}

type hopState struct {
	q       *WFQ
	expires time.Duration
}

// Reserve walks the flow's path, performing admission control and
// installing WFQ state at each hop — the per-router burden the DS
// approach avoids. All-or-nothing: a mid-path rejection rolls back.
func (r *RSVP) Reserve(flow netsim.FlowKey, rate units.BitRate) (*Session, error) {
	if rate <= 0 {
		return nil, fmt.Errorf("intserv: non-positive rate %v", rate)
	}
	var srcNode *netsim.Node
	for _, nd := range r.net.Nodes() {
		if nd.Addr() == flow.Src {
			srcNode = nd
			break
		}
	}
	if srcNode == nil {
		return nil, fmt.Errorf("intserv: unknown source %d", flow.Src)
	}
	s := &Session{rsvp: r, flow: flow, rate: rate, AutoRefresh: true}
	node := srcNode
	for node.Addr() != flow.Dst {
		out := node.RouteTo(flow.Dst)
		if out == nil {
			s.rollback()
			return nil, fmt.Errorf("intserv: no route from %q", node.Name())
		}
		q := r.queueAt(out)
		if err := q.AddFlow(flow, rate); err != nil {
			s.rollback()
			return nil, err
		}
		s.hops = append(s.hops, &hopState{q: q, expires: r.k.Now() + 3*r.RefreshPeriod})
		node = out.Peer().Node()
		if len(s.hops) > len(r.net.Nodes()) {
			s.rollback()
			return nil, fmt.Errorf("intserv: routing loop")
		}
	}
	if len(s.hops) == 0 {
		return nil, fmt.Errorf("intserv: source and destination are the same node")
	}
	s.scheduleRefresh()
	return s, nil
}

// scheduleRefresh arms the soft-state timer chain.
func (s *Session) scheduleRefresh() {
	s.refreshTimer = s.rsvp.k.After(s.rsvp.RefreshPeriod, func() {
		if s.done {
			return
		}
		now := s.rsvp.k.Now()
		if s.AutoRefresh {
			for _, h := range s.hops {
				h.expires = now + 3*s.rsvp.RefreshPeriod
			}
			s.scheduleRefresh()
			return
		}
		// Refreshes stopped: expire hops whose timers ran out.
		expired := false
		for _, h := range s.hops {
			if now >= h.expires {
				expired = true
			}
		}
		if expired {
			s.Teardown()
			return
		}
		s.scheduleRefresh()
	})
}

// Active reports whether the session still holds state.
func (s *Session) Active() bool { return !s.done }

// Hops returns the number of routers holding this flow's state.
func (s *Session) Hops() int { return len(s.hops) }

// Teardown releases the reservation at every hop (PathTear).
func (s *Session) Teardown() {
	if s.done {
		return
	}
	s.done = true
	s.refreshTimer.Cancel()
	s.rollback()
}

func (s *Session) rollback() {
	for _, h := range s.hops {
		h.q.RemoveFlow(s.flow)
	}
	s.hops = nil
}

// StateAt returns the number of per-flow entries a node currently
// holds across its egress interfaces — the "too heavy" metric.
func (r *RSVP) StateAt(nd *netsim.Node) int {
	n := 0
	for _, ifc := range nd.Ifaces() {
		if q, ok := r.queues[ifc]; ok {
			n += q.FlowCount()
		}
	}
	return n
}

// TotalState sums per-flow entries across all routers.
func (r *RSVP) TotalState() int {
	n := 0
	for _, q := range r.queues {
		n += q.FlowCount()
	}
	return n
}
