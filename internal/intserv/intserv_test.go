package intserv

import (
	"testing"
	"testing/quick"
	"time"

	"mpichgq/internal/netsim"
	"mpichgq/internal/sim"
	"mpichgq/internal/units"
)

func TestWFQFairShares(t *testing.T) {
	// Two reserved flows at 3:1 weights plus best effort, all
	// backlogged on a 4 Mb/s link: service must follow the weights.
	k := sim.New(1)
	n := netsim.New(k)
	a, b := n.AddNode("a"), n.AddNode("b")
	l := n.Connect(a, b, 4*units.Mbps, time.Millisecond)
	n.ComputeRoutes()
	w := NewWFQ(4*units.Mbps, units.MB)
	l.IfaceOn(a).SetQueue(w)

	f1 := netsim.FlowKey{Src: a.Addr(), Dst: b.Addr(), SrcPort: 1, DstPort: 1, Proto: netsim.ProtoUDP}
	f2 := netsim.FlowKey{Src: a.Addr(), Dst: b.Addr(), SrcPort: 2, DstPort: 2, Proto: netsim.ProtoUDP}
	if err := w.AddFlow(f1, 3*units.Mbps); err != nil {
		t.Fatal(err)
	}
	if err := w.AddFlow(f2, units.Mbps); err != nil {
		t.Fatal(err)
	}
	var got [3]int64 // bytes per flow (f1, f2, best effort)
	b.Handle(netsim.ProtoUDP, netsim.HandlerFunc(func(p *netsim.Packet) {
		switch p.SrcPort {
		case 1:
			got[0] += int64(p.Size)
		case 2:
			got[1] += int64(p.Size)
		default:
			got[2] += int64(p.Size)
		}
	}))
	// Saturate all three classes.
	mk := func(sport netsim.Port) *netsim.Packet {
		return &netsim.Packet{Src: a.Addr(), Dst: b.Addr(), SrcPort: sport, DstPort: sport, Proto: netsim.ProtoUDP, Size: 1000}
	}
	k.Spawn("src", func(ctx *sim.Ctx) {
		for ctx.Now() < 10*time.Second {
			a.Send(mk(1))
			a.Send(mk(2))
			a.Send(mk(9))
			ctx.Sleep(time.Millisecond) // 24 Mb/s offered total, 6x the link
		}
	})
	if err := k.RunUntil(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	// Weights 3 : 1 : leftover(0.04Mb floor->1%). f1/f2 ≈ 3.
	ratio := float64(got[0]) / float64(got[1])
	if ratio < 2.5 || ratio > 3.5 {
		t.Fatalf("f1/f2 service ratio = %.2f, want ~3", ratio)
	}
	if got[2] == 0 {
		t.Fatal("best effort fully starved; WFQ should leave it a trickle")
	}
}

func TestWFQAdmissionLimit(t *testing.T) {
	w := NewWFQ(10*units.Mbps, units.MB)
	f := func(sport netsim.Port) netsim.FlowKey {
		return netsim.FlowKey{Src: 1, Dst: 2, SrcPort: sport, DstPort: 1, Proto: netsim.ProtoTCP}
	}
	if err := w.AddFlow(f(1), 6*units.Mbps); err != nil {
		t.Fatal(err)
	}
	if err := w.AddFlow(f(2), 6*units.Mbps); err == nil {
		t.Fatal("6+6 over a 10 Mb/s link should fail")
	}
	if err := w.AddFlow(f(1), units.Mbps); err == nil {
		t.Fatal("duplicate flow should fail")
	}
	if !w.RemoveFlow(f(1)) || w.RemoveFlow(f(1)) {
		t.Fatal("remove semantics broken")
	}
	if w.FlowCount() != 0 {
		t.Fatal("flow count should be zero")
	}
}

// Work conservation: with only one backlogged flow, it gets the whole
// link regardless of its small reservation.
func TestWFQWorkConserving(t *testing.T) {
	k := sim.New(1)
	n := netsim.New(k)
	a, b := n.AddNode("a"), n.AddNode("b")
	l := n.Connect(a, b, 10*units.Mbps, time.Millisecond)
	n.ComputeRoutes()
	w := NewWFQ(10*units.Mbps, units.MB)
	l.IfaceOn(a).SetQueue(w)
	f1 := netsim.FlowKey{Src: a.Addr(), Dst: b.Addr(), SrcPort: 1, DstPort: 1, Proto: netsim.ProtoUDP}
	w.AddFlow(f1, units.Mbps) // only 1 Mb/s reserved
	var rx int64
	b.Handle(netsim.ProtoUDP, netsim.HandlerFunc(func(p *netsim.Packet) { rx += int64(p.Size) }))
	k.Spawn("src", func(ctx *sim.Ctx) {
		for ctx.Now() < 5*time.Second {
			a.Send(&netsim.Packet{Src: a.Addr(), Dst: b.Addr(), SrcPort: 1, DstPort: 1, Proto: netsim.ProtoUDP, Size: 1000})
			ctx.Sleep(500 * time.Microsecond) // 16 Mb/s offered
		}
	})
	if err := k.RunUntil(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	rate := units.RateOf(units.ByteSize(rx), 5*time.Second)
	if rate < 9*units.Mbps {
		t.Fatalf("lone flow got %v of a 10 Mb/s link, want ~all of it", rate)
	}
}

// Property: WFQ conserves packets — everything enqueued is eventually
// dequeued exactly once, in a valid order.
func TestWFQConservationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := sim.NewRNG(seed)
		w := NewWFQ(10*units.Mbps, units.MB)
		flows := []netsim.FlowKey{
			{Src: 1, Dst: 2, SrcPort: 1, DstPort: 1, Proto: netsim.ProtoUDP},
			{Src: 1, Dst: 2, SrcPort: 2, DstPort: 2, Proto: netsim.ProtoUDP},
		}
		w.AddFlow(flows[0], 4*units.Mbps)
		w.AddFlow(flows[1], 2*units.Mbps)
		in, out := 0, 0
		for op := 0; op < 300; op++ {
			if rng.Intn(2) == 0 {
				p := &netsim.Packet{
					Src: 1, Dst: 2, Proto: netsim.ProtoUDP,
					SrcPort: netsim.Port(rng.Intn(4)), DstPort: netsim.Port(rng.Intn(4)),
					Size: units.ByteSize(rng.Intn(1400) + 100),
				}
				p.SrcPort = p.DstPort // align flow keys occasionally
				if w.Enqueue(p) {
					in++
				}
			} else if w.Dequeue() != nil {
				out++
			}
		}
		for w.Dequeue() != nil {
			out++
		}
		return in == out && w.Len() == 0 && w.Bytes() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// linear builds src -- r1 -- r2 -- dst.
func linear(k *sim.Kernel) (*netsim.Network, *netsim.Node, *netsim.Node, *netsim.Node, *netsim.Node) {
	n := netsim.New(k)
	src, r1, r2, dst := n.AddNode("src"), n.AddNode("r1"), n.AddNode("r2"), n.AddNode("dst")
	n.Connect(src, r1, 100*units.Mbps, time.Millisecond)
	n.Connect(r1, r2, 10*units.Mbps, time.Millisecond)
	n.Connect(r2, dst, 100*units.Mbps, time.Millisecond)
	n.ComputeRoutes()
	return n, src, r1, r2, dst
}

func TestRSVPInstallsStatePerHop(t *testing.T) {
	k := sim.New(1)
	n, src, r1, r2, dst := linear(k)
	r := NewRSVP(n)
	flow := netsim.FlowKey{Src: src.Addr(), Dst: dst.Addr(), SrcPort: 5, DstPort: 5, Proto: netsim.ProtoUDP}
	s, err := r.Reserve(flow, 2*units.Mbps)
	if err != nil {
		t.Fatal(err)
	}
	if s.Hops() != 3 {
		t.Fatalf("hops = %d, want 3 (src, r1, r2 egresses)", s.Hops())
	}
	if r.StateAt(r1) != 1 || r.StateAt(r2) != 1 {
		t.Fatal("core routers should each hold one flow entry")
	}
	s.Teardown()
	if r.TotalState() != 0 {
		t.Fatal("teardown left state behind")
	}
	if s.Active() {
		t.Fatal("session should be inactive after teardown")
	}
}

func TestRSVPAdmissionRollsBack(t *testing.T) {
	k := sim.New(1)
	n, src, _, _, dst := linear(k)
	r := NewRSVP(n)
	mk := func(port netsim.Port) netsim.FlowKey {
		return netsim.FlowKey{Src: src.Addr(), Dst: dst.Addr(), SrcPort: port, DstPort: port, Proto: netsim.ProtoUDP}
	}
	// Bottleneck reservable: 0.9 * 10 = 9 Mb/s.
	if _, err := r.Reserve(mk(1), 6*units.Mbps); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Reserve(mk(2), 6*units.Mbps); err == nil {
		t.Fatal("over-subscription should fail")
	}
	// The failed attempt must not leave partial state on the first
	// hop (access link admits, bottleneck refuses, rollback).
	if r.TotalState() != 3 {
		t.Fatalf("state = %d, want only the first session's 3 hops", r.TotalState())
	}
}

func TestRSVPSoftStateExpires(t *testing.T) {
	k := sim.New(1)
	n, src, _, _, dst := linear(k)
	r := NewRSVP(n)
	flow := netsim.FlowKey{Src: src.Addr(), Dst: dst.Addr(), SrcPort: 5, DstPort: 5, Proto: netsim.ProtoUDP}
	s, err := r.Reserve(flow, 2*units.Mbps)
	if err != nil {
		t.Fatal(err)
	}
	s.AutoRefresh = false // sender dies; refreshes stop
	k.RunUntil(4 * r.RefreshPeriod)
	if s.Active() || r.TotalState() != 0 {
		t.Fatalf("soft state should expire without refreshes (state=%d)", r.TotalState())
	}
}

func TestRSVPRefreshKeepsStateAlive(t *testing.T) {
	k := sim.New(1)
	n, src, _, _, dst := linear(k)
	r := NewRSVP(n)
	flow := netsim.FlowKey{Src: src.Addr(), Dst: dst.Addr(), SrcPort: 5, DstPort: 5, Proto: netsim.ProtoUDP}
	s, err := r.Reserve(flow, 2*units.Mbps)
	if err != nil {
		t.Fatal(err)
	}
	k.RunUntil(20 * r.RefreshPeriod)
	if !s.Active() || r.TotalState() != 3 {
		t.Fatal("auto-refreshed state should persist")
	}
}

func TestRSVPProtectsFlowUnderContention(t *testing.T) {
	// The IS baseline must actually work: a reserved UDP stream keeps
	// its rate while a blast fills the best-effort share.
	k := sim.New(1)
	n, src, _, _, dst := linear(k)
	r := NewRSVP(n)
	prem := netsim.FlowKey{Src: src.Addr(), Dst: dst.Addr(), SrcPort: 5, DstPort: 5, Proto: netsim.ProtoUDP}
	if _, err := r.Reserve(prem, 4*units.Mbps); err != nil {
		t.Fatal(err)
	}
	var premBytes int64
	dst.Handle(netsim.ProtoUDP, netsim.HandlerFunc(func(p *netsim.Packet) {
		if p.SrcPort == 5 {
			premBytes += int64(p.Size)
		}
	}))
	k.Spawn("prem", func(ctx *sim.Ctx) {
		gap := (3500 * units.Kbps).TimeToSend(1028)
		for ctx.Now() < 10*time.Second {
			src.Send(&netsim.Packet{Src: src.Addr(), Dst: dst.Addr(), SrcPort: 5, DstPort: 5, Proto: netsim.ProtoUDP, Size: 1028})
			ctx.Sleep(gap)
		}
	})
	k.Spawn("blast", func(ctx *sim.Ctx) {
		gap := (50 * units.Mbps).TimeToSend(1028)
		for ctx.Now() < 10*time.Second {
			src.Send(&netsim.Packet{Src: src.Addr(), Dst: dst.Addr(), SrcPort: 9, DstPort: 9, Proto: netsim.ProtoUDP, Size: 1028})
			ctx.Sleep(gap)
		}
	})
	if err := k.RunUntil(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	rate := units.RateOf(units.ByteSize(premBytes), 10*time.Second)
	if rate < 3*units.Mbps {
		t.Fatalf("reserved flow got %v, want ~3.5 Mb/s", rate)
	}
}
