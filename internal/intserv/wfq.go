// Package intserv implements the Integrated Services architecture the
// paper contrasts with Differentiated Services (§2): per-flow
// reservations at *every* router via RSVP-style signaling, enforced
// by weighted fair queueing. "The IS approach has been criticized as
// being too 'heavy' ... each router is required to recognize and
// treat each application-level flow separately."
//
// The package exists as a baseline: the comparison tests and
// benchmarks quantify exactly that per-router state burden against
// GARA/DS's edge-only state, while showing both approaches protect
// premium flows.
package intserv

import (
	"container/heap"
	"fmt"

	"mpichgq/internal/netsim"
	"mpichgq/internal/units"
)

// WFQ is a start-time fair queueing scheduler (an O(log n) WFQ
// approximation): each reserved flow has its own queue served in
// proportion to its reserved rate, and all unreserved traffic shares
// a best-effort queue with the leftover weight.
type WFQ struct {
	linkRate units.BitRate
	flows    map[netsim.FlowKey]*wfqFlow
	be       *wfqFlow // best-effort aggregate
	vtime    float64
	heapq    wfqHeap
	seq      uint64

	perFlowCap units.ByteSize
}

type wfqFlow struct {
	key        netsim.FlowKey
	rate       units.BitRate // weight
	pkts       []*taggedPkt
	bytes      units.ByteSize
	lastFinish float64
	reserved   bool
}

type taggedPkt struct {
	p      *netsim.Packet
	flow   *wfqFlow
	start  float64
	finish float64
	seq    uint64
	index  int
}

type wfqHeap []*taggedPkt

func (h wfqHeap) Len() int { return len(h) }
func (h wfqHeap) Less(i, j int) bool {
	if h[i].finish != h[j].finish {
		return h[i].finish < h[j].finish
	}
	return h[i].seq < h[j].seq
}
func (h wfqHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *wfqHeap) Push(x any) {
	t := x.(*taggedPkt)
	t.index = len(*h)
	*h = append(*h, t)
}
func (h *wfqHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return t
}

// NewWFQ returns a scheduler for a link of the given rate. Each flow
// queue (and the best-effort queue) holds at most perFlowCap bytes.
func NewWFQ(linkRate units.BitRate, perFlowCap units.ByteSize) *WFQ {
	if perFlowCap <= 0 {
		perFlowCap = netsim.DefaultQueueCap
	}
	w := &WFQ{
		linkRate:   linkRate,
		flows:      make(map[netsim.FlowKey]*wfqFlow),
		perFlowCap: perFlowCap,
	}
	w.be = &wfqFlow{rate: linkRate} // weight adjusted as flows come and go
	return w
}

// AddFlow installs a per-flow reservation. The sum of reserved rates
// may not exceed the link rate.
func (w *WFQ) AddFlow(key netsim.FlowKey, rate units.BitRate) error {
	if _, dup := w.flows[key]; dup {
		return fmt.Errorf("intserv: flow %v already reserved", key)
	}
	total := rate
	for _, f := range w.flows {
		total += f.rate
	}
	if total > w.linkRate {
		return fmt.Errorf("intserv: reservations %v exceed link rate %v", total, w.linkRate)
	}
	w.flows[key] = &wfqFlow{key: key, rate: rate, reserved: true}
	w.rebalance()
	return nil
}

// RemoveFlow releases a reservation; queued packets of the flow are
// re-classified as best effort at their next service.
func (w *WFQ) RemoveFlow(key netsim.FlowKey) bool {
	f, ok := w.flows[key]
	if !ok {
		return false
	}
	delete(w.flows, key)
	f.reserved = false
	w.rebalance()
	return true
}

// FlowCount returns the number of installed per-flow reservations —
// the router-state metric of the IS-vs-DS comparison.
func (w *WFQ) FlowCount() int { return len(w.flows) }

// rebalance gives the best-effort aggregate the leftover weight.
func (w *WFQ) rebalance() {
	total := units.BitRate(0)
	for _, f := range w.flows {
		total += f.rate
	}
	left := w.linkRate - total
	if left < w.linkRate/100 {
		left = w.linkRate / 100 // never fully starve best effort
	}
	w.be.rate = left
}

func (w *WFQ) flowFor(p *netsim.Packet) *wfqFlow {
	if f, ok := w.flows[p.Key()]; ok {
		return f
	}
	return w.be
}

// Enqueue implements netsim.Queue.
func (w *WFQ) Enqueue(p *netsim.Packet) bool {
	f := w.flowFor(p)
	if f.bytes+p.Size > w.perFlowCap {
		return false
	}
	start := w.vtime
	if f.lastFinish > start {
		start = f.lastFinish
	}
	finish := start + float64(p.Size.Bits())/float64(f.rate)
	f.lastFinish = finish
	w.seq++
	t := &taggedPkt{p: p, flow: f, start: start, finish: finish, seq: w.seq}
	f.pkts = append(f.pkts, t)
	f.bytes += p.Size
	heap.Push(&w.heapq, t)
	return true
}

// Dequeue implements netsim.Queue: serve the smallest finish tag.
func (w *WFQ) Dequeue() *netsim.Packet {
	if len(w.heapq) == 0 {
		return nil
	}
	t := heap.Pop(&w.heapq).(*taggedPkt)
	w.vtime = t.start
	f := t.flow
	f.bytes -= t.p.Size
	for i, x := range f.pkts {
		if x == t {
			f.pkts = append(f.pkts[:i], f.pkts[i+1:]...)
			break
		}
	}
	return t.p
}

// Len implements netsim.Queue.
func (w *WFQ) Len() int { return len(w.heapq) }

// Bytes implements netsim.Queue.
func (w *WFQ) Bytes() units.ByteSize {
	total := w.be.bytes
	for _, f := range w.flows {
		total += f.bytes
	}
	return total
}
