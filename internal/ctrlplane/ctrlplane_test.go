package ctrlplane

import (
	"errors"
	"testing"
	"time"

	"mpichgq/internal/diffserv"
	"mpichgq/internal/faults"
	"mpichgq/internal/gara"
	"mpichgq/internal/netsim"
	"mpichgq/internal/sim"
	"mpichgq/internal/units"
)

// rig is a two-domain testbed with a control plane:
//
//	hostA - e1 - c1 ===border=== c2 - e2 - hostB
//
// domain "dom1" owns {hostA-e1, e1-c1, border}, "dom2" the rest.
type rig struct {
	k            *sim.Kernel
	net          *netsim.Network
	hostA, hostB *netsim.Node
	border       *netsim.Link
	rm1, rm2     *gara.NetworkRM
	plane        *Plane
	co           *Coordinator
}

func newRig(seed int64, opts Options) *rig {
	k := sim.New(seed)
	n := netsim.New(k)
	hostA, e1, c1 := n.AddNode("hostA"), n.AddNode("e1"), n.AddNode("c1")
	c2, e2, hostB := n.AddNode("c2"), n.AddNode("e2"), n.AddNode("hostB")
	l1 := n.Connect(hostA, e1, 100*units.Mbps, time.Millisecond)
	l2 := n.Connect(e1, c1, 100*units.Mbps, time.Millisecond)
	border := n.Connect(c1, c2, 50*units.Mbps, 2*time.Millisecond)
	l4 := n.Connect(c2, e2, 100*units.Mbps, time.Millisecond)
	l5 := n.Connect(e2, hostB, 100*units.Mbps, time.Millisecond)
	n.ComputeRoutes()

	dom1 := diffserv.NewDomain(k)
	dom1.EnableEFAll(e1, c1)
	dom2 := diffserv.NewDomain(k)
	dom2.EnableEFAll(c2, e2)

	rm1 := gara.NewNetworkRM(n, dom1, 0.5)
	rm1.Scope = gara.LinkScope(l1, l2, border)
	rm2 := gara.NewNetworkRM(n, dom2, 0.5)
	rm2.Scope = gara.LinkScope(l4, l5)
	g1, g2 := gara.New(k), gara.New(k)
	g1.Register(rm1)
	g2.Register(rm2)

	plane := NewPlane(k, opts)
	plane.AddDomain("dom1", g1, rm1)
	plane.AddDomain("dom2", g2, rm2)
	return &rig{
		k: k, net: n, hostA: hostA, hostB: hostB, border: border,
		rm1: rm1, rm2: rm2, plane: plane, co: plane.Coordinator(),
	}
}

func (r *rig) spec(bw units.BitRate) gara.Spec {
	return gara.Spec{
		Type:      gara.ResourceNetwork,
		Flow:      diffserv.MatchHostPair(r.hostA.Addr(), r.hostB.Addr(), netsim.ProtoUDP),
		Bandwidth: bw,
	}
}

// leaked sums booked EF fractions across every link and both RMs; a
// clean control plane leaves it at zero once nothing should be booked.
func (r *rig) leaked() float64 {
	total := 0.0
	for _, l := range r.net.Links() {
		total += r.rm1.Utilization(l, r.k.Now())
		total += r.rm2.Utilization(l, r.k.Now())
	}
	return total
}

func TestReserveOverHealthyControlPlane(t *testing.T) {
	r := newRig(1, Options{})
	var mr *MultiRes
	var rerr error
	r.k.Spawn("coord", func(ctx *sim.Ctx) {
		mr, rerr = r.co.Reserve(ctx, r.spec(10*units.Mbps))
	})
	if err := r.k.RunUntil(time.Second); err != nil {
		t.Fatal(err)
	}
	if rerr != nil {
		t.Fatal(rerr)
	}
	if len(mr.IDs()) != 2 {
		t.Fatalf("segments = %v, want both domains", mr.IDs())
	}
	if r.rm1.Utilization(r.border, r.k.Now()) == 0 {
		t.Fatal("dom1 did not book the border link")
	}
	r.k.Spawn("cancel", func(ctx *sim.Ctx) {
		if err := mr.Cancel(ctx); err != nil {
			t.Errorf("cancel: %v", err)
		}
	})
	if err := r.k.RunUntil(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got := r.leaked(); got != 0 {
		t.Fatalf("leaked %v after cancel", got)
	}
}

func TestRetriesSurviveChannelLoss(t *testing.T) {
	// A generous per-call budget: under 40% bidirectional loss each
	// attempt succeeds with p≈0.36, so the call needs room to retry.
	r := newRig(7, Options{Deadline: 2 * time.Second})
	// 40% loss in both directions on both domains' channels.
	for _, name := range r.plane.Names() {
		r.plane.CtrlTarget(name).SetCtrlLoss(0.4)
	}
	var mr *MultiRes
	var rerr error
	r.k.Spawn("coord", func(ctx *sim.Ctx) {
		mr, rerr = r.co.Reserve(ctx, r.spec(10*units.Mbps))
	})
	if err := r.k.RunUntil(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if rerr != nil {
		t.Fatalf("reserve should survive 40%% loss via retries: %v", rerr)
	}
	_ = mr
	reg := r.k.Metrics()
	retries := int64(0)
	for _, name := range r.plane.Names() {
		v, _ := reg.CounterValue("ctrl_rpc_retries_total", "rm", name)
		retries += v
	}
	if retries == 0 {
		t.Fatal("expected at least one retransmission under 40% loss")
	}
}

func TestDuplicateRequestsAnsweredIdempotently(t *testing.T) {
	r := newRig(3, Options{})
	// Duplicate every request; the server must execute each once.
	r.plane.Conn("dom1").toSrv.SetDup(1.0)
	r.plane.Conn("dom2").toSrv.SetDup(1.0)
	var rerr error
	r.k.Spawn("coord", func(ctx *sim.Ctx) {
		_, rerr = r.co.Reserve(ctx, r.spec(10*units.Mbps))
	})
	if err := r.k.RunUntil(time.Second); err != nil {
		t.Fatal(err)
	}
	if rerr != nil {
		t.Fatal(rerr)
	}
	reg := r.k.Metrics()
	if v, _ := reg.CounterValue("gara_prepares_total"); v != 2 {
		t.Fatalf("prepares executed = %d, want exactly one per domain", v)
	}
	dups := int64(0)
	for _, name := range r.plane.Names() {
		v, _ := reg.CounterValue("ctrl_server_dup_requests_total", "rm", name)
		dups += v
	}
	if dups == 0 {
		t.Fatal("expected duplicate requests to hit the reply cache")
	}
}

func TestBreakerTripsAndRecovers(t *testing.T) {
	// Threshold 1: a single deadline-exhausted call trips the breaker.
	r := newRig(5, Options{BreakerThreshold: 1})
	br := r.plane.Breaker("dom2")
	r.plane.CtrlTarget("dom2").CtrlCrash()

	var firstErr, fastErr error
	r.k.Spawn("coord", func(ctx *sim.Ctx) {
		// First call burns its deadline on timeouts and trips the
		// breaker; the second fails fast without touching the wire.
		_, firstErr = r.plane.Conn("dom2").call(ctx, methodPrepare,
			request{spec: r.spec(5 * units.Mbps)})
		sent, _ := r.k.Metrics().CounterValue("ctrl_rpc_attempts_total", "rm", "dom2")
		_, fastErr = r.plane.Conn("dom2").call(ctx, methodPrepare,
			request{spec: r.spec(5 * units.Mbps)})
		after, _ := r.k.Metrics().CounterValue("ctrl_rpc_attempts_total", "rm", "dom2")
		if after != sent {
			t.Errorf("breaker-rejected call still sent %d attempts", after-sent)
		}
	})
	if err := r.k.RunUntil(time.Second); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(firstErr, ErrDeadline) && !errors.Is(firstErr, ErrBreakerOpen) {
		t.Fatalf("first call error = %v, want deadline/breaker", firstErr)
	}
	if !errors.Is(fastErr, ErrBreakerOpen) {
		t.Fatalf("second call error = %v, want ErrBreakerOpen", fastErr)
	}
	if br.State() != BreakerOpen {
		t.Fatalf("breaker state = %v, want open", br.State())
	}

	// Restart the server; after the cooldown a probe closes the loop.
	r.plane.CtrlTarget("dom2").CtrlRestart()
	var probeErr error
	r.k.Spawn("probe", func(ctx *sim.Ctx) {
		ctx.Sleep(br.Cooldown)
		_, probeErr = r.plane.Conn("dom2").call(ctx, methodPrepare,
			request{spec: r.spec(5 * units.Mbps)})
	})
	if err := r.k.RunUntil(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if probeErr != nil {
		t.Fatalf("probe after restart: %v", probeErr)
	}
	if br.State() != BreakerClosed {
		t.Fatalf("breaker state after probe = %v, want closed", br.State())
	}
}

// The ctrlplane chaos acceptance test: dom2's server crashes between
// the prepare and commit phases of a co-reservation, injected through
// a faults scenario. The reservation fails, the crashed domain replays
// its journal on restart, and after lease expiry not a byte of booked
// bandwidth is leaked in either domain.
func TestChaosCrashMidCoReservationLeaksNothing(t *testing.T) {
	r := newRig(11, Options{})
	sc := faults.NewScenario("ctrl-crash-mid-reserve").
		CtrlCrash(22*time.Millisecond, "dom2").
		CtrlRestart(1500*time.Millisecond, "dom2")
	if _, err := sc.ApplyWith(r.net, r.plane); err != nil {
		t.Fatal(err)
	}
	var rerr error
	r.k.Spawn("coord", func(ctx *sim.Ctx) {
		_, rerr = r.co.Reserve(ctx, r.spec(10*units.Mbps))
	})
	// Run long enough for restart, journal recovery, and lease expiry.
	if err := r.k.RunUntil(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	if rerr == nil {
		t.Fatal("reserve should fail when a domain crashes mid-protocol")
	}
	if got := r.leaked(); got != 0 {
		t.Fatalf("leaked %v of EF capacity after crash + lease expiry", got)
	}
	reg := r.k.Metrics()
	if v, _ := reg.CounterValue("netrm_crashes_total", "rm", "dom2"); v != 1 {
		t.Fatalf("netrm_crashes_total = %d, want 1", v)
	}
	// Recovery ran (journal replay) — asserted via metrics, and the
	// orphaned prepare was reconciled against its lease one way or the
	// other (reclaimed during recovery if the lease lapsed while down,
	// or by the re-armed timer after).
	rebooked, _ := reg.CounterValue("netrm_recover_rebooked_total", "rm", "dom2")
	recovReclaimed, _ := reg.CounterValue("netrm_recover_reclaimed_total", "rm", "dom2")
	timerReclaimed, _ := reg.CounterValue("netrm_leases_reclaimed_total", "rm", "dom2")
	garaExpired, _ := reg.CounterValue("gara_leases_expired_total")
	if rebooked+recovReclaimed == 0 {
		t.Fatal("journal recovery should have seen the orphaned prepare")
	}
	// A rebooked lease is reclaimed by whichever timer fires first:
	// the RM's re-armed reclaim timer or the gara-side expiry.
	if rebooked > 0 && recovReclaimed+timerReclaimed+garaExpired == 0 {
		t.Fatal("a rebooked lease must eventually be reclaimed")
	}
	if v, _ := reg.CounterValue("ctrl_rpc_timeouts_total", "rm", "dom2"); v == 0 {
		t.Fatal("commit against the crashed server should have timed out")
	}
}

// Soak test for the CI chaos job: many sequential co-reservations under
// rolling control-plane loss and periodic crash/restart of both
// domains. The invariant at the end — after cancelling every success
// and letting leases expire — is zero booked capacity anywhere.
func TestControlPlaneSoak(t *testing.T) {
	r := newRig(42, Options{})
	sc := faults.NewScenario("ctrl-soak").
		CtrlLoss("dom1", 0, 60*time.Second, 0.25).
		CtrlLoss("dom2", 0, 60*time.Second, 0.25).
		CtrlCrash(9*time.Second, "dom2").
		CtrlRestart(11*time.Second, "dom2").
		CtrlCrash(23*time.Second, "dom1").
		CtrlRestart(26*time.Second, "dom1").
		CtrlCrash(41*time.Second, "dom2").
		CtrlRestart(44*time.Second, "dom2")
	if _, err := sc.ApplyWith(r.net, r.plane); err != nil {
		t.Fatal(err)
	}
	successes, failures := 0, 0
	// Finite windows: a committed segment whose cancel is lost in a
	// crash stays booked until its window ends (the protocol's
	// documented residual risk), so an infinite window would make the
	// zero-leak invariant unreachable by design.
	spec := r.spec(5 * units.Mbps)
	spec.Duration = 2 * time.Second
	r.k.Spawn("soak", func(ctx *sim.Ctx) {
		for ctx.Now() < 60*time.Second {
			spec.Start = ctx.Now()
			mr, err := r.co.Reserve(ctx, spec)
			if err != nil {
				failures++
			} else {
				successes++
				ctx.Sleep(500 * time.Millisecond)
				_ = mr.Cancel(ctx)
			}
			ctx.Sleep(time.Second)
		}
	})
	if err := r.k.RunUntil(120 * time.Second); err != nil {
		t.Fatal(err)
	}
	if successes == 0 {
		t.Fatal("soak made no successful co-reservations at all")
	}
	if failures == 0 {
		t.Fatal("soak injected faults but saw no failures — scenario inert?")
	}
	if got := r.leaked(); got != 0 {
		t.Fatalf("soak leaked %v of EF capacity (%d ok / %d failed)",
			got, successes, failures)
	}
	t.Logf("soak: %d ok, %d failed, zero leak", successes, failures)
}
