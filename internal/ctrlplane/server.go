package ctrlplane

import (
	"errors"
	"fmt"

	"mpichgq/internal/gara"
	"mpichgq/internal/metrics"
	"mpichgq/internal/sim"
	"mpichgq/internal/spans"
)

// Server is a domain RM's control-plane front end: it executes
// reservation requests against the domain's Gara and answers
// idempotently via a request-ID reply cache. Crash models the broker
// process dying — session state (reply cache, reservation handles) is
// lost along with the RM's tables; Restart replays the RM's journal.
// A crashed server drops requests silently, which is exactly what a
// client-side timeout looks like.
type Server struct {
	k    *sim.Kernel
	name string
	g    *gara.Gara
	rm   *gara.NetworkRM

	crashed bool
	// adm, when non-nil, is the overload-control layer: requests go
	// through a bounded fair admission queue and a finite-capacity
	// service loop instead of executing inline on channel delivery.
	adm *admitQueue
	// seen is the reply cache: a retried request gets its original
	// answer instead of a second execution. Session state — lost on
	// crash; correctness then rests on lease expiry, not on dedup.
	seen map[uint64]response
	// prepared/committed map reservation ids to live handles (session
	// state, lost on crash).
	prepared  map[uint64]*gara.Prepared
	committed map[uint64]*gara.Reservation

	mHandled, mDuped *metrics.Counter
	rec              *metrics.Recorder
	tr               *spans.Tracer
}

// NewServer wraps a domain's Gara + NetworkRM behind a control-plane
// endpoint named name (also stamped on the RM for its journal/recovery
// metrics).
func NewServer(k *sim.Kernel, name string, g *gara.Gara, rm *gara.NetworkRM) *Server {
	rm.Name = name
	reg := k.Metrics()
	return &Server{
		k: k, name: name, g: g, rm: rm,
		seen:      make(map[uint64]response),
		prepared:  make(map[uint64]*gara.Prepared),
		committed: make(map[uint64]*gara.Reservation),
		mHandled: reg.Counter("ctrl_server_requests_total",
			"control requests executed", "rm", name),
		mDuped: reg.Counter("ctrl_server_dup_requests_total",
			"duplicate control requests answered from the reply cache", "rm", name),
		rec: reg.Events(),
		tr:  k.Tracer(),
	}
}

// Name returns the server's domain name.
func (s *Server) Name() string { return s.name }

// RM returns the wrapped resource manager.
func (s *Server) RM() *gara.NetworkRM { return s.rm }

// Crashed reports whether the server is currently down.
func (s *Server) Crashed() bool { return s.crashed }

// EnableAdmission puts the overload-control layer in front of the
// server: a bounded admission queue with per-tenant fair dequeue,
// deadline-expired drop, CoDel shedding, and brownout. Must be called
// before traffic flows; cfg.ServiceTime must be > 0.
func (s *Server) EnableAdmission(cfg Admission) {
	if cfg.ServiceTime <= 0 {
		panic("ctrlplane: EnableAdmission needs ServiceTime > 0")
	}
	s.adm = newAdmitQueue(s.k, s.name, s, cfg)
}

// Admission returns the overload-control layer, or nil when disabled.
func (s *Server) Admission() *admitQueue { return s.adm }

// SetBrownoutSink mirrors admission brownout-level changes into the
// policy broker above this domain's Gara (e.g. *broker.Broker), so
// quota decisions follow the same degradation ladder.
func (s *Server) SetBrownoutSink(sink interface{ SetBrownout(int) }) {
	if s.adm != nil {
		s.adm.sink = sink
	}
}

// QueueDepth returns the admission queue depth (0 when admission is
// disabled).
func (s *Server) QueueDepth() int {
	if s.adm == nil {
		return 0
	}
	return s.adm.Depth()
}

// BrownoutLevel returns the current brownout level (0 when admission
// is disabled).
func (s *Server) BrownoutLevel() int {
	if s.adm == nil {
		return 0
	}
	return s.adm.Level()
}

// dispatch routes one delivered request: through the admission queue
// when overload control is enabled, else the legacy synchronous
// execution. reply is invoked with the response if one is produced (a
// crashed server produces none — the client sees a timeout).
func (s *Server) dispatch(req request, reply func(response)) {
	if s.adm != nil {
		if s.crashed {
			return
		}
		s.adm.enqueue(req, reply)
		return
	}
	resp, alive := s.handle(req)
	if alive {
		reply(resp)
	}
}

// handle executes (or replays) one request. ok=false means the server
// is down and produced no reply at all.
func (s *Server) handle(req request) (response, bool) {
	if s.crashed {
		return response{}, false
	}
	if resp, dup := s.seen[req.reqID]; dup {
		s.mDuped.Inc()
		s.tr.Begin(req.trace, req.parent, "server.dup", s.name).
			Int("req", int64(req.reqID)).End()
		return resp, true
	}
	sp := s.tr.Begin(req.trace, req.parent, spanName(serverSpanNames, req.method), s.name)
	// Bracket the dispatch so reservation spans created inside the Gara
	// (gara.prepare, gara.lease, ...) parent under this server span.
	prev := s.g.SetSpanContext(sp.Ctx())
	resp := s.apply(req)
	s.g.SetSpanContext(prev)
	sp.Int("res", int64(resp.resID))
	if resp.ok {
		sp.End()
	} else {
		sp.EndStatus(spans.StatusFailed)
	}
	s.seen[req.reqID] = resp
	s.mHandled.Inc()
	return resp, true
}

func (s *Server) apply(req request) response {
	resp := response{reqID: req.reqID}
	fail := func(err error) response {
		resp.errText = err.Error()
		resp.notInDomain = errors.Is(err, gara.ErrNotInDomain)
		return resp
	}
	switch req.method {
	case methodPrepare:
		p, err := s.g.Prepare(req.spec, req.ttl)
		if err != nil {
			return fail(err)
		}
		s.prepared[p.ID()] = p
		resp.ok, resp.resID = true, p.ID()
	case methodCommit:
		p := s.prepared[req.resID]
		if p == nil {
			// Unknown prepare: either never arrived or the crash wiped
			// the session. The booking (if any) dies with its lease.
			return fail(fmt.Errorf("ctrlplane: %s: no prepared reservation %d", s.name, req.resID))
		}
		r, err := p.Commit()
		if err != nil {
			return fail(err)
		}
		delete(s.prepared, req.resID)
		s.committed[req.resID] = r
		resp.ok, resp.resID = true, req.resID
	case methodAbort:
		// Idempotent rollback: release whatever the id still holds. A
		// commit that was applied but whose ack was lost sits in
		// committed — the coordinator's abort must still undo it, or the
		// segment stays booked until its window ends. An id unknown to
		// both maps (session lost in a crash) is released straight from
		// the recovered tables; a never-booked id is a no-op.
		if p := s.prepared[req.resID]; p != nil {
			p.Abort()
			delete(s.prepared, req.resID)
		} else if r := s.committed[req.resID]; r != nil {
			r.Cancel()
			delete(s.committed, req.resID)
		} else {
			s.rm.ReleaseID(req.resID)
		}
		resp.ok = true
	case methodReserve:
		// The naive one-shot path (no lease, no two-phase): what the
		// figG experiment contrasts the protocol against.
		r, err := s.g.Reserve(req.spec)
		if err != nil {
			return fail(err)
		}
		s.committed[r.ID()] = r
		resp.ok, resp.resID = true, r.ID()
	case methodCancel:
		if r := s.committed[req.resID]; r != nil {
			r.Cancel()
			delete(s.committed, req.resID)
		} else {
			// Handle lost in a crash: release straight from the
			// recovered tables so cancel stays effective post-restart.
			s.rm.ReleaseID(req.resID)
		}
		resp.ok = true
	default:
		resp.errText = "ctrlplane: unknown method " + req.method
	}
	return resp
}

// Crash kills the server: session state is wiped, the RM's in-memory
// state is lost (see NetworkRM.Crash), and until Restart every request
// is dropped without a reply.
func (s *Server) Crash() {
	if s.crashed {
		return
	}
	s.crashed = true
	s.seen = make(map[uint64]response)
	s.prepared = make(map[uint64]*gara.Prepared)
	s.committed = make(map[uint64]*gara.Reservation)
	if s.adm != nil {
		s.adm.wipe()
	}
	s.rm.Crash()
}

// Restart brings the server back: the RM replays its journal (if it
// has one) and requests flow again. The reply cache starts empty — a
// request retried across the restart re-executes, which is safe for
// the idempotent methods and lease-bounded for prepare.
func (s *Server) Restart() (gara.RecoverStats, error) {
	if !s.crashed {
		return gara.RecoverStats{}, nil
	}
	s.crashed = false
	if s.rm.Journal == nil {
		return gara.RecoverStats{}, nil
	}
	return s.rm.Recover()
}
