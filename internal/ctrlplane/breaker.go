package ctrlplane

import (
	"time"

	gq "mpichgq/internal/core"
	"mpichgq/internal/metrics"
	"mpichgq/internal/sim"
)

// BreakerState is a circuit breaker's position.
type BreakerState int

// Breaker states. The gauge ctrl_breaker_state exports the numeric
// value.
const (
	// BreakerClosed: calls flow normally.
	BreakerClosed BreakerState = iota
	// BreakerOpen: calls are rejected without touching the RM until
	// the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen: the cooldown elapsed; probe calls are let
	// through. A success closes the breaker, a failure re-opens it.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// Interned state names for EvCtrlBreaker events.
var breakerStateNames = [...]string{
	BreakerClosed:   "closed",
	BreakerOpen:     "open",
	BreakerHalfOpen: "half-open",
}

// Breaker is a per-RM circuit breaker: Threshold consecutive failed
// calls (whole RPCs that exhausted their deadline, not individual
// attempt timeouts) trip it open; after Cooldown it half-opens and
// lets a probe through; the probe's outcome closes or re-opens it.
// Allow is also the watchdog's RepairGate — a tripped breaker stops
// the self-healing loop from hammering an RM that is already timing
// out.
type Breaker struct {
	k    *sim.Kernel
	name string // RM/domain name, interned

	// Threshold is the consecutive-failure count that trips the
	// breaker (default 4).
	Threshold int
	// Cooldown is how long the breaker stays open before allowing a
	// probe (default 2s).
	Cooldown time.Duration

	state    BreakerState
	fails    int
	openedAt time.Duration

	gauge  *metrics.Gauge
	mTrips *metrics.Counter
	rec    *metrics.Recorder
}

// Breaker satisfies the watchdog's repair gate.
var _ gq.RepairGate = (*Breaker)(nil)

// NewBreaker returns a closed breaker for the named RM.
func NewBreaker(k *sim.Kernel, name string, threshold int, cooldown time.Duration) *Breaker {
	if threshold <= 0 {
		threshold = 4
	}
	if cooldown <= 0 {
		cooldown = 2 * time.Second
	}
	reg := k.Metrics()
	b := &Breaker{
		k: k, name: name, Threshold: threshold, Cooldown: cooldown,
		gauge: reg.Gauge("ctrl_breaker_state",
			"per-RM circuit breaker position (0 closed, 1 open, 2 half-open)", "rm", name),
		mTrips: reg.Counter("ctrl_breaker_trips_total",
			"circuit breaker trips", "rm", name),
		rec: reg.Events(),
	}
	b.gauge.Set(0)
	return b
}

// Name returns the RM name the breaker guards.
func (b *Breaker) Name() string { return b.name }

// State returns the breaker's current position (open transitions to
// half-open lazily, on the first Allow after the cooldown).
func (b *Breaker) State() BreakerState { return b.state }

// Failures returns the current consecutive-failure count.
func (b *Breaker) Failures() int { return b.fails }

// Allow reports whether a call may proceed. While open it rejects
// until the cooldown elapses, then half-opens and admits probes.
// Implements gq.RepairGate.
func (b *Breaker) Allow() bool {
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.k.Now() >= b.openedAt+b.Cooldown {
			b.set(BreakerHalfOpen)
			return true
		}
		return false
	default: // half-open: probes allowed
		return true
	}
}

// Success records a successful call, closing the breaker.
func (b *Breaker) Success() {
	b.fails = 0
	if b.state != BreakerClosed {
		b.set(BreakerClosed)
	}
}

// Failure records a failed (timed-out) call. A half-open probe failure
// re-opens immediately; Threshold consecutive failures trip a closed
// breaker.
func (b *Breaker) Failure() {
	b.fails++
	if b.state == BreakerHalfOpen || (b.state == BreakerClosed && b.fails >= b.Threshold) {
		b.openedAt = b.k.Now()
		b.mTrips.Inc()
		b.set(BreakerOpen)
	}
}

func (b *Breaker) set(s BreakerState) {
	b.state = s
	b.gauge.Set(float64(s))
	b.rec.Emit(metrics.EvCtrlBreaker, breakerStateNames[s], int64(b.fails), 0, 0)
}
