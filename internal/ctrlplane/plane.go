package ctrlplane

import (
	"time"

	gq "mpichgq/internal/core"
	"mpichgq/internal/faults"
	"mpichgq/internal/gara"
	"mpichgq/internal/sim"
)

// Options tunes a Plane's channels and reliability layer. Zero values
// take the defaults noted per field.
type Options struct {
	// Delay is the one-way control-channel delay (default 5ms — a
	// wide-area control connection, not a LAN).
	Delay time.Duration
	// Jitter is the channel delay's multiplicative noise (default 0.1).
	Jitter float64
	// Timeout is the client's per-attempt reply timeout (default
	// 4×Delay + 10ms).
	Timeout time.Duration
	// Deadline is the per-call retry budget (default 8×Timeout).
	Deadline time.Duration
	// BreakerThreshold trips the per-RM breaker after this many
	// consecutive failures (default 4).
	BreakerThreshold int
	// BreakerCooldown holds the breaker open this long (default 2s).
	BreakerCooldown time.Duration
	// LeaseTTL is the coordinator's prepare-lease length (default
	// 2×Deadline×domains at Coordinator build time; 0 here defers to
	// gara.DefaultLeaseTTL).
	LeaseTTL time.Duration
	// Admission, when ServiceTime > 0, puts the overload-control layer
	// (bounded fair queue, CoDel shedding, brownout) in front of every
	// domain server. The zero value keeps the legacy infinite-capacity
	// synchronous dispatch.
	Admission Admission
}

func (o Options) withDefaults() Options {
	if o.Delay <= 0 {
		o.Delay = 5 * time.Millisecond
	}
	if o.Jitter == 0 {
		o.Jitter = 0.1
	}
	if o.Timeout <= 0 {
		o.Timeout = 4*o.Delay + 10*time.Millisecond
	}
	if o.Deadline <= 0 {
		o.Deadline = 8 * o.Timeout
	}
	if o.BreakerThreshold <= 0 {
		o.BreakerThreshold = 4
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = 2 * time.Second
	}
	return o
}

// Plane assembles the control plane for a set of administrative
// domains: per-domain channel pairs, servers, breakers, and client
// stubs, plus the faults.CtrlResolver hook so chaos scenarios can
// impair any domain by name.
type Plane struct {
	k     *sim.Kernel
	opts  Options
	names []string
	conns map[string]*Conn
}

// Plane resolves control-plane fault targets.
var _ faults.CtrlResolver = (*Plane)(nil)

// NewPlane returns an empty control plane with the given options.
func NewPlane(k *sim.Kernel, opts Options) *Plane {
	return &Plane{k: k, opts: opts.withDefaults(), conns: make(map[string]*Conn)}
}

// AddDomain wires one administrative domain into the plane: its Gara
// and NetworkRM go behind a Server, reached through a fresh channel
// pair, client stub, and circuit breaker. The RM gets a journal if it
// does not have one (crash recovery needs it). Returns the stub.
func (p *Plane) AddDomain(name string, g *gara.Gara, rm *gara.NetworkRM) *Conn {
	if _, dup := p.conns[name]; dup {
		panic("ctrlplane: duplicate domain " + name)
	}
	if rm.Journal == nil {
		rm.Journal = gara.NewJournal()
	}
	srv := NewServer(p.k, name, g, rm)
	if p.opts.Admission.ServiceTime > 0 {
		srv.EnableAdmission(p.opts.Admission)
	}
	conn := p.newConn(srv, name, "")
	p.names = append(p.names, name)
	p.conns[name] = conn
	return conn
}

// newConn builds a client stub (channels, breaker, backoff) for srv.
func (p *Plane) newConn(srv *Server, chanName, tenant string) *Conn {
	toSrv := newChan(p.k, chanName+"/req", p.opts.Delay, p.opts.Jitter)
	fromSrv := newChan(p.k, chanName+"/rep", p.opts.Delay, p.opts.Jitter)
	breaker := NewBreaker(p.k, chanName, p.opts.BreakerThreshold, p.opts.BreakerCooldown)
	backoff := gq.NewBackoff(sim.NewRNG(p.k.RNG().Int63()),
		p.opts.Timeout/2, 4*p.opts.Timeout)
	conn := NewConn(p.k, srv, toSrv, fromSrv, p.opts.Timeout, p.opts.Deadline, backoff, breaker)
	conn.Tenant = tenant
	return conn
}

// AddTenantConn wires an additional client stub for an existing
// domain, representing a distinct tenant: its own channel pair,
// breaker, and backoff schedule, sharing the domain's server — so the
// admission queue sees (and fair-queues) competing principals. The
// stub is not registered in the plane's conn map (Conn(domain) stays
// the primary stub) and fault targeting applies per stub.
func (p *Plane) AddTenantConn(domain, tenant string) *Conn {
	primary := p.conns[domain]
	if primary == nil {
		panic("ctrlplane: AddTenantConn on unknown domain " + domain)
	}
	return p.newConn(primary.srv, domain+"/"+tenant, tenant)
}

// Names returns the domain names in the order added.
func (p *Plane) Names() []string {
	out := make([]string, len(p.names))
	copy(out, p.names)
	return out
}

// Conn returns the named domain's client stub, or nil.
func (p *Plane) Conn(name string) *Conn { return p.conns[name] }

// Server returns the named domain's server, or nil.
func (p *Plane) Server(name string) *Server {
	if c := p.conns[name]; c != nil {
		return c.srv
	}
	return nil
}

// Breaker returns the named domain's circuit breaker, or nil.
func (p *Plane) Breaker(name string) *Breaker {
	if c := p.conns[name]; c != nil {
		return c.Breaker
	}
	return nil
}

// Coordinator builds a two-phase coordinator over every domain, in the
// order added. The lease TTL is Options.LeaseTTL, or — when unset —
// twice the worst-case protocol round (Deadline per call, two calls
// per domain), so healthy-but-slow commits never lose their lease.
func (p *Plane) Coordinator() *Coordinator {
	conns := make([]*Conn, 0, len(p.names))
	for _, n := range p.names {
		conns = append(conns, p.conns[n])
	}
	co := NewCoordinator(conns...)
	co.LeaseTTL = p.opts.LeaseTTL
	if co.LeaseTTL <= 0 {
		co.LeaseTTL = 2 * p.opts.Deadline * time.Duration(2*len(conns))
	}
	return co
}

// ctrlTarget adapts one domain to faults.CtrlTarget.
type ctrlTarget struct{ conn *Conn }

func (t *ctrlTarget) SetCtrlLoss(prob float64) {
	t.conn.toSrv.SetLoss(prob)
	t.conn.fromSrv.SetLoss(prob)
}
func (t *ctrlTarget) CtrlCrash() { t.conn.srv.Crash() }
func (t *ctrlTarget) CtrlRestart() {
	_, _ = t.conn.srv.Restart()
}

// CtrlTarget implements faults.CtrlResolver.
func (p *Plane) CtrlTarget(name string) faults.CtrlTarget {
	c := p.conns[name]
	if c == nil {
		return nil
	}
	return &ctrlTarget{conn: c}
}
