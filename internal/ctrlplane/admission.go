package ctrlplane

import (
	"time"

	"mpichgq/internal/gara"
	"mpichgq/internal/metrics"
	"mpichgq/internal/sim"
	"mpichgq/internal/spans"
)

// Admission tunes the server-side overload-control layer. The zero
// value (ServiceTime 0) disables the layer entirely: requests execute
// synchronously on channel delivery, exactly as before this layer
// existed — infinite capacity, no queueing, no shedding. That is the
// right model for protocol-correctness tests; a serving system sets
// ServiceTime > 0 and gets a bounded, fair, deadline- and
// delay-shedding admission queue in front of the broker.
type Admission struct {
	// ServiceTime is the broker's per-request execution time; it is
	// what makes capacity finite (throughput ceiling = 1/ServiceTime).
	// Zero disables the admission layer.
	ServiceTime time.Duration
	// QueueLimit bounds the admission queue; arrivals beyond it are
	// rejected with ErrOverloaded. 0 means unbounded (the classic
	// collapse configuration figI contrasts against).
	QueueLimit int
	// CoDelTarget is the acceptable standing queue delay: when the
	// dequeue-time sojourn stays above it for a full CoDelInterval,
	// the head request is shed. 0 disables delay-based shedding.
	CoDelTarget time.Duration
	// CoDelInterval is the grace window before (and between) delay
	// sheds (default 10×CoDelTarget).
	CoDelInterval time.Duration
	// DropExpired drops requests whose client deadline has already
	// passed at dequeue — serving them is dead work no client waits
	// for, and under overload dead work is what turns saturation into
	// collapse.
	DropExpired bool
	// BrownoutHi escalates the brownout level when queue depth reaches
	// it: level 1 sheds best-effort arrivals, level 2 admits premium
	// only. 0 disables brownout.
	BrownoutHi int
	// BrownoutLo de-escalates when depth falls back to it (default
	// BrownoutHi/4).
	BrownoutLo int
	// BrownoutHold is the minimum time between level changes (default
	// 500ms) so the level doesn't flap with the queue.
	BrownoutHold time.Duration
}

func (a Admission) withDefaults() Admission {
	if a.CoDelTarget > 0 && a.CoDelInterval <= 0 {
		a.CoDelInterval = 10 * a.CoDelTarget
	}
	if a.BrownoutHi > 0 && a.BrownoutLo <= 0 {
		a.BrownoutLo = a.BrownoutHi / 4
	}
	if a.BrownoutHi > 0 && a.BrownoutHold <= 0 {
		a.BrownoutHold = 500 * time.Millisecond
	}
	return a
}

// Shed reasons (EvAdmissionShed.V2 and the admission_shed_total
// "reason" label).
const (
	shedFull     = 0
	shedCoDel    = 1
	shedBrownout = 2
	shedExpired  = 3
	shedCrash    = 4
	shedEvict    = 5
)

var shedReasonNames = [...]string{
	shedFull:     "full",
	shedCoDel:    "codel",
	shedBrownout: "brownout",
	shedExpired:  "expired",
	shedCrash:    "crash",
	shedEvict:    "evict",
}

// queuedReq is one request parked in the admission queue, with the
// reply path captured so service can answer whenever it gets there.
type queuedReq struct {
	req   request
	reply func(response)
	enqAt time.Duration
	sp    *spans.Span // admission.queue span, enqueue → serve/shed
}

// tenantQ is one tenant's FIFO. head indexes the next element so pops
// are O(1); the slice is compacted when fully drained.
type tenantQ struct {
	name  string
	items []queuedReq
	head  int
}

func (t *tenantQ) len() int { return len(t.items) - t.head }

func (t *tenantQ) pop() queuedReq {
	it := t.items[t.head]
	t.items[t.head] = queuedReq{} // release references
	t.head++
	if t.head == len(t.items) {
		t.items = t.items[:0]
		t.head = 0
	}
	return it
}

// admitQueue is the overload-control layer in front of one Server: a
// bounded admission queue with per-tenant round-robin dequeue,
// deadline-expired drop, CoDel-style sojourn shedding, and a brownout
// level that sheds lower reservation classes first. All state is
// mutated from kernel callbacks only, so runs are deterministic.
type admitQueue struct {
	k    *sim.Kernel
	name string
	srv  *Server
	cfg  Admission

	// tenants in first-appearance order (deterministic round-robin);
	// byTenant indexes into it.
	tenants  []*tenantQ
	byTenant map[string]*tenantQ
	rr       int // next tenant index to dequeue from
	depth    int
	busy     bool // a request is in service

	// CoDel state: aboveAt is when the sojourn-over-target episode
	// began (0 = not in one).
	aboveAt time.Duration

	level       int // brownout level 0..2
	levelSince  time.Duration
	sink        brownoutSink // mirrors level changes into the policy broker

	mShed       [len(shedReasonNames)]*metrics.Counter
	mServed     *metrics.Counter
	mExpiredSrv *metrics.Counter
	gDepth      *metrics.Gauge
	gLevel      *metrics.Gauge
	rec         *metrics.Recorder
	tr          *spans.Tracer
}

func newAdmitQueue(k *sim.Kernel, name string, srv *Server, cfg Admission) *admitQueue {
	reg := k.Metrics()
	q := &admitQueue{
		k: k, name: name, srv: srv, cfg: cfg.withDefaults(),
		byTenant: make(map[string]*tenantQ),
		mServed: reg.Counter("admission_served_total",
			"requests dequeued and executed by the broker", "rm", name),
		gDepth: reg.Gauge("admission_queue_depth",
			"requests waiting in the admission queue", "rm", name),
		gLevel: reg.Gauge("admission_brownout_level",
			"brownout level (0 none, 1 shed best-effort, 2 premium only)", "rm", name),
		rec: reg.Events(),
		tr:  k.Tracer(),
	}
	for r, reason := range shedReasonNames {
		q.mShed[r] = reg.Counter("admission_shed_total",
			"admission-queue rejections and drops", "rm", name, "reason", reason)
	}
	return q
}

// Level returns the current brownout level.
func (q *admitQueue) Level() int { return q.level }

// Depth returns the current queue depth.
func (q *admitQueue) Depth() int { return q.depth }

// admitsClass reports whether the current brownout level admits c.
func (q *admitQueue) admitsClass(c gara.Class) bool {
	switch q.level {
	case 0:
		return true
	case 1:
		return c >= gara.ClassNormal
	default:
		return c >= gara.ClassPremium
	}
}

// retryAfter estimates when the queue will have drained enough to
// admit a retry: the backlog's service time, floored at one service
// slot so hints never tell a client "retry immediately".
func (q *admitQueue) retryAfter() time.Duration {
	d := time.Duration(q.depth+1) * q.cfg.ServiceTime
	if d < q.cfg.ServiceTime {
		d = q.cfg.ServiceTime
	}
	return d
}

// enqueue is the admission decision point. A rejected request gets an
// overloaded reply (the client's cue to back off); an admitted one
// parks in its tenant's FIFO until the service loop reaches it.
func (q *admitQueue) enqueue(req request, reply func(response)) {
	q.evalBrownout()
	if !q.admitsClass(req.spec.Class) {
		q.shedArrival(req, reply, shedBrownout)
		return
	}
	if q.cfg.QueueLimit > 0 && q.depth >= q.cfg.QueueLimit {
		// A higher-class arrival can displace the youngest lower-class
		// entry instead of being turned away — this is what "premium
		// degrades last" means at the queue, not just at the door.
		if !q.evictFor(req.spec.Class) {
			q.shedArrival(req, reply, shedFull)
			return
		}
	}
	t := q.byTenant[req.from]
	if t == nil {
		t = &tenantQ{name: req.from}
		q.byTenant[req.from] = t
		q.tenants = append(q.tenants, t)
	}
	sp := q.tr.Begin(req.trace, req.parent, "admission.queue", q.name)
	sp.Int("req", int64(req.reqID))
	t.items = append(t.items, queuedReq{req: req, reply: reply, enqAt: q.k.Now(), sp: sp})
	q.depth++
	q.gDepth.Set(float64(q.depth))
	q.kick()
}

// shedArrival rejects a request at the door with a retry-after hint.
func (q *admitQueue) shedArrival(req request, reply func(response), reason int) {
	q.countShed(req, reason)
	reply(response{
		reqID:        req.reqID,
		errText:      "ctrlplane: admission shed (" + shedReasonNames[reason] + ")",
		overloaded:   true,
		retryAfterNS: int64(q.retryAfter()),
	})
}

func (q *admitQueue) countShed(req request, reason int) {
	q.mShed[reason].Inc()
	q.rec.Emit(metrics.EvAdmissionShed, q.name,
		int64(req.reqID), int64(reason), int64(q.depth))
	q.tr.Begin(req.trace, req.parent, "admission.shed", q.name).
		Int("req", int64(req.reqID)).
		Str("reason", shedReasonNames[reason]).
		EndStatus(spans.StatusFailed)
}

// evictFor sheds the queued entry with the lowest class below c —
// youngest first among equals, so the least-sunk waiting cost is
// wasted — to make room for a class-c arrival. Returns false when
// nothing below c is queued.
func (q *admitQueue) evictFor(c gara.Class) bool {
	var vt *tenantQ
	vi := -1
	var vClass gara.Class
	var vAt time.Duration
	for _, t := range q.tenants {
		for i := t.head; i < len(t.items); i++ {
			it := &t.items[i]
			cl := it.req.spec.Class
			if cl >= c {
				continue
			}
			if vi == -1 || cl < vClass || (cl == vClass && it.enqAt > vAt) {
				vt, vi, vClass, vAt = t, i, cl, it.enqAt
			}
		}
	}
	if vi == -1 {
		return false
	}
	victim := vt.items[vi]
	vt.items = append(vt.items[:vi], vt.items[vi+1:]...)
	q.depth--
	q.gDepth.Set(float64(q.depth))
	victim.sp.EndStatus(spans.StatusFailed)
	q.countShed(victim.req, shedEvict)
	victim.reply(response{
		reqID:        victim.req.reqID,
		errText:      "ctrlplane: admission shed (evict)",
		overloaded:   true,
		retryAfterNS: int64(q.retryAfter()),
	})
	return true
}

// nextTenant returns the next non-empty tenant queue round-robin, or
// nil when the whole queue is empty.
func (q *admitQueue) nextTenant() *tenantQ {
	for i := 0; i < len(q.tenants); i++ {
		t := q.tenants[q.rr%len(q.tenants)]
		q.rr = (q.rr + 1) % len(q.tenants)
		if t.len() > 0 {
			return t
		}
	}
	return nil
}

// kick advances the service loop: while the server is idle, pull the
// next request (fairly across tenants), shed what is expired or has
// sat past the CoDel bar, and put one request into service.
func (q *admitQueue) kick() {
	for !q.busy && q.depth > 0 && !q.srv.crashed {
		t := q.nextTenant()
		if t == nil {
			return
		}
		it := t.pop()
		q.depth--
		q.gDepth.Set(float64(q.depth))
		now := q.k.Now()

		// Dead-work drop: the client's call deadline already passed, so
		// no reply can be used — don't spend a service slot on it.
		if q.cfg.DropExpired && it.req.deadline > 0 && now >= it.req.deadline {
			it.sp.Int("sojourn_us", int64((now-it.enqAt)/time.Microsecond))
			it.sp.EndStatus(spans.StatusFailed)
			q.countShed(it.req, shedExpired)
			continue
		}

		// CoDel-lite: shed at most one request per interval while the
		// dequeue sojourn stays above target. Keeps the standing queue
		// delay near CoDelTarget without tail-dropping whole bursts.
		if q.cfg.CoDelTarget > 0 {
			soj := now - it.enqAt
			if soj <= q.cfg.CoDelTarget {
				q.aboveAt = 0
			} else if q.aboveAt == 0 {
				q.aboveAt = now
			} else if now-q.aboveAt >= q.cfg.CoDelInterval {
				q.aboveAt = now
				it.sp.Int("sojourn_us", int64(soj/time.Microsecond))
				it.sp.EndStatus(spans.StatusFailed)
				q.countShed(it.req, shedCoDel)
				it.reply(response{
					reqID:        it.req.reqID,
					errText:      "ctrlplane: admission shed (codel)",
					overloaded:   true,
					retryAfterNS: int64(q.retryAfter()),
				})
				continue
			}
		}

		it.sp.Int("sojourn_us", int64((now-it.enqAt)/time.Microsecond))
		it.sp.End()
		q.busy = true
		q.k.After(q.cfg.ServiceTime, func() { q.finish(it.req, it.reply) })
		return
	}
}

// finish completes one service slot: execute against the broker, send
// the reply (unless the server crashed mid-service), and pull the next
// request.
func (q *admitQueue) finish(req request, reply func(response)) {
	q.busy = false
	resp, alive := q.srv.handle(req)
	if alive {
		q.mServed.Inc()
		reply(resp)
	}
	q.evalBrownout()
	q.kick()
}

// evalBrownout moves the brownout level with queue-depth hysteresis:
// escalate at BrownoutHi, de-escalate at BrownoutLo, at most one step
// per BrownoutHold.
func (q *admitQueue) evalBrownout() {
	if q.cfg.BrownoutHi <= 0 {
		return
	}
	now := q.k.Now()
	if now-q.levelSince < q.cfg.BrownoutHold {
		return
	}
	switch {
	case q.depth >= q.cfg.BrownoutHi && q.level < 2:
		q.setLevel(q.level + 1)
	case q.depth <= q.cfg.BrownoutLo && q.level > 0:
		q.setLevel(q.level - 1)
	}
}

func (q *admitQueue) setLevel(level int) {
	prev := q.level
	q.level = level
	q.levelSince = q.k.Now()
	q.gLevel.Set(float64(level))
	q.rec.Emit(metrics.EvBrownout, q.name, int64(level), int64(prev), int64(q.depth))
	if q.sink != nil {
		q.sink.SetBrownout(level)
	}
}

// brownoutSink lets the admission queue mirror its level into the
// policy broker above the Gara (internal/broker), so quota decisions
// follow the same degradation ladder. Declared structurally to avoid
// an import cycle; wire one with Server.SetBrownoutSink.
type brownoutSink interface{ SetBrownout(int) }

// wipe drops every queued request without replies — the server
// crashed, so from the clients' side everything in flight simply
// times out.
func (q *admitQueue) wipe() {
	for _, t := range q.tenants {
		for t.len() > 0 {
			it := t.pop()
			it.sp.EndStatus(spans.StatusLeaked)
			q.countShed(it.req, shedCrash)
		}
	}
	q.depth = 0
	q.gDepth.Set(0)
	if q.level != 0 {
		q.setLevel(0)
	}
	q.levelSince = q.k.Now()
}
