package ctrlplane

import (
	"errors"
	"fmt"
	"time"

	"mpichgq/internal/gara"
	"mpichgq/internal/sim"
	"mpichgq/internal/spans"
)

// Coordinator drives GARA's two-phase co-reservation over the control
// plane: prepare every domain's segment under a lease, then commit
// them all. Any step can time out, hit an open breaker, or be refused;
// the coordinator rolls back best-effort and relies on lease expiry
// for whatever its rollback messages fail to reach.
type Coordinator struct {
	conns []*Conn
	// LeaseTTL is the prepare-lease length requested from each domain
	// (zero lets the domain default apply). It must comfortably exceed
	// the worst-case commit round: Deadline per prepare/commit times
	// the number of domains.
	LeaseTTL time.Duration
	// RollbackRetries is how many extra whole calls a rollback
	// cancel/abort gets after its first fails. A lost rollback on a
	// *committed* segment orphans capacity until the window ends — the
	// one leak the lease cannot bound — so rollback is worth retrying
	// harder than the happy path (default 2).
	RollbackRetries int

	tr *spans.Tracer
	// nextAttempt numbers Reserve/ReserveNaive calls; each gets its own
	// trace derived from this counter, which is deterministic because
	// the coordinator runs inside the single-threaded kernel.
	nextAttempt uint64
}

// NewCoordinator returns a coordinator over the given domain stubs.
func NewCoordinator(conns ...*Conn) *Coordinator {
	if len(conns) == 0 {
		panic("ctrlplane: coordinator needs at least one domain")
	}
	return &Coordinator{conns: conns, RollbackRetries: 2, tr: conns[0].k.Tracer()}
}

// segment is one domain's share of a co-reservation.
type segment struct {
	conn  *Conn
	resID uint64
}

// MultiRes is a committed cross-domain reservation.
type MultiRes struct {
	segs  []segment
	trace spans.TraceID
}

// Trace returns the trace ID the co-reservation's spans were recorded
// under (zero when tracing was disabled at reserve time — the ID is
// still derived, so it is always usable for queries).
func (m *MultiRes) Trace() spans.TraceID { return m.trace }

// IDs returns the per-domain reservation ids, in domain order.
func (m *MultiRes) IDs() map[string]uint64 {
	out := make(map[string]uint64, len(m.segs))
	for _, sg := range m.segs {
		out[sg.conn.Name()] = sg.resID
	}
	return out
}

// Reserve books spec across every domain that owns part of the path,
// all or nothing, from inside a sim process. On failure it aborts or
// cancels what it can reach; unreachable segments are reclaimed by
// their lease (prepared) or stay booked until their window ends
// (committed, a risk the protocol bounds by committing last).
func (co *Coordinator) Reserve(ctx *sim.Ctx, spec gara.Spec) (*MultiRes, error) {
	trace := co.newTrace()
	root := co.tr.Begin(trace, 0, "co.reserve", "coordinator")
	root.Str("mode", "two-phase")
	var prepped []segment
	for _, cn := range co.conns {
		resp, err := cn.call(ctx, methodPrepare,
			request{spec: spec, ttl: co.LeaseTTL, trace: trace, parent: root.SpanID()})
		if err != nil {
			co.rollback(ctx, trace, root, nil, prepped)
			return nil, fmt.Errorf("ctrlplane: prepare on %s: %w", cn.Name(), err)
		}
		if !resp.ok {
			if resp.notInDomain {
				continue
			}
			co.rollback(ctx, trace, root, nil, prepped)
			return nil, fmt.Errorf("ctrlplane: %s refused: %s", cn.Name(), resp.errText)
		}
		prepped = append(prepped, segment{conn: cn, resID: resp.resID})
	}
	if len(prepped) == 0 {
		root.EndStatus(spans.StatusFailed)
		return nil, errors.New("ctrlplane: no domain owns any hop of the flow's path")
	}
	for i, sg := range prepped {
		resp, err := sg.conn.call(ctx, methodCommit,
			request{resID: sg.resID, trace: trace, parent: root.SpanID()})
		if err == nil {
			err = rpcError(resp)
		}
		if err != nil {
			// Roll back: cancel what committed, abort what did not.
			co.rollback(ctx, trace, root, prepped[:i], prepped[i:])
			return nil, fmt.Errorf("ctrlplane: commit on %s: %w", sg.conn.Name(), err)
		}
	}
	root.Int("segments", int64(len(prepped)))
	root.End()
	return &MultiRes{segs: prepped, trace: trace}, nil
}

// newTrace derives the next co-reservation attempt's trace ID.
func (co *Coordinator) newTrace() spans.TraceID {
	co.nextAttempt++
	return spans.DeriveTrace(spans.NSCoReserve, co.nextAttempt)
}

// rollback undoes a partial co-reservation under a co.rollback span —
// cancelling committed segments, aborting merely prepared ones — and
// closes the root span as failed.
func (co *Coordinator) rollback(ctx *sim.Ctx, trace spans.TraceID, root *spans.Span, committed, prepped []segment) {
	rb := co.tr.Begin(trace, root.SpanID(), "co.rollback", "coordinator")
	rb.Int("cancel", int64(len(committed))).Int("abort", int64(len(prepped)))
	for _, done := range committed {
		co.release(ctx, done, methodCancel, trace, rb.SpanID())
	}
	for _, sg := range prepped {
		co.release(ctx, sg, methodAbort, trace, rb.SpanID())
	}
	rb.End()
	root.EndStatus(spans.StatusFailed)
}

// ReserveNaive is the unprotected baseline: a single one-shot reserve
// RPC per domain with no lease and no second phase. A lost reply (the
// reservation was made but the client never learns its id) or a lost
// cancel orphans booked capacity — the leak figG measures.
func (co *Coordinator) ReserveNaive(ctx *sim.Ctx, spec gara.Spec) (*MultiRes, error) {
	trace := co.newTrace()
	root := co.tr.Begin(trace, 0, "co.reserve", "coordinator")
	root.Str("mode", "naive")
	var got []segment
	for _, cn := range co.conns {
		resp, err := cn.call(ctx, methodReserve,
			request{spec: spec, trace: trace, parent: root.SpanID()})
		if err != nil {
			// Rollback of what we know about (with the same retry
			// budget two-phase rollback gets); anything the reply loss
			// hid from us has no id to cancel and stays booked.
			co.rollback(ctx, trace, root, got, nil)
			return nil, fmt.Errorf("ctrlplane: reserve on %s: %w", cn.Name(), err)
		}
		if !resp.ok {
			if resp.notInDomain {
				continue
			}
			co.rollback(ctx, trace, root, got, nil)
			return nil, fmt.Errorf("ctrlplane: %s refused: %s", cn.Name(), resp.errText)
		}
		got = append(got, segment{conn: cn, resID: resp.resID})
	}
	if len(got) == 0 {
		root.EndStatus(spans.StatusFailed)
		return nil, errors.New("ctrlplane: no domain owns any hop of the flow's path")
	}
	root.Int("segments", int64(len(got)))
	root.End()
	return &MultiRes{segs: got, trace: trace}, nil
}

// release drives one rollback cancel/abort with retries. Both methods
// are idempotent server-side (any reply means the capacity is gone),
// so the loop stops at the first answered call. Retries are spaced so
// they do not all land inside one bad spell: a breaker-rejected call
// waits out the cooldown (otherwise every retry fails fast against the
// same open breaker), a deadline failure waits one more deadline.
func (co *Coordinator) release(ctx *sim.Ctx, sg segment, method string, trace spans.TraceID, parent spans.SpanID) {
	for try := 0; ; try++ {
		_, err := sg.conn.call(ctx, method,
			request{resID: sg.resID, trace: trace, parent: parent})
		if err == nil || try >= co.RollbackRetries {
			return
		}
		pause := sg.conn.Deadline
		if errors.Is(err, ErrBreakerOpen) && sg.conn.Breaker != nil {
			pause = sg.conn.Breaker.Cooldown
		}
		ctx.Sleep(pause)
	}
}

// Cancel releases every segment of a committed co-reservation,
// best-effort; it returns the first error encountered (the capacity of
// a domain that cannot be reached stays booked until its window ends
// or recovery reconciles it).
func (m *MultiRes) Cancel(ctx *sim.Ctx) error {
	var first error
	sp := m.segs[0].conn.tr.Begin(m.trace, 0, "co.cancel", "coordinator")
	for _, sg := range m.segs {
		resp, err := sg.conn.call(ctx, methodCancel,
			request{resID: sg.resID, trace: m.trace, parent: sp.SpanID()})
		if err == nil {
			err = rpcError(resp)
		}
		if err != nil && first == nil {
			first = err
		}
	}
	if first != nil {
		sp.EndStatus(spans.StatusFailed)
	} else {
		sp.End()
	}
	return first
}
