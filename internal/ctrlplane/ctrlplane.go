// Package ctrlplane simulates the wide-area control channel between
// GARA's co-reservation coordinator and each administrative domain's
// bandwidth broker (NetworkRM). The paper's GARA coordinates
// "resources spanning multiple administrative domains" over Globus
// control connections — slow, lossy, and failure-prone compared to an
// in-process call. This package makes that explicit: every
// reservation operation becomes a request/reply exchange over a
// channel with injectable delay, loss, and duplication, against a
// server that can crash (losing its session state) and restart
// (replaying its journal).
//
// Reliability is layered the way real brokers do it:
//
//   - requests carry request IDs; servers keep a reply cache, so a
//     retried request is answered idempotently rather than re-executed;
//   - clients retry under a per-attempt timeout and a per-call
//     deadline, paced by gq.Backoff;
//   - a per-RM circuit breaker trips after consecutive timeouts,
//     sheds load while the RM is down, and doubles as the watchdog's
//     RepairGate;
//   - the two-phase prepare/commit protocol (gara.Prepared) bounds
//     what an ill-timed crash can leak: uncommitted bookings expire
//     with their lease, and a crashed server's journal replay
//     (NetworkRM.Recover) reconciles what its memory forgot.
package ctrlplane

import (
	"time"

	"mpichgq/internal/gara"
	"mpichgq/internal/metrics"
	"mpichgq/internal/sim"
	"mpichgq/internal/spans"
)

// request is one control-plane message from coordinator to server.
// Retries of the same logical operation reuse the request ID, which is
// what makes the server's reply cache give idempotency.
type request struct {
	reqID  uint64
	method string // "prepare", "commit", "abort", "reserve", "cancel"
	resID  uint64 // commit/abort/cancel: the reservation being acted on
	spec   gara.Spec
	ttl    time.Duration // prepare: lease TTL
	// from names the requesting tenant; the admission queue dequeues
	// fairly across tenants so one storming client cannot starve the
	// rest.
	from string
	// deadline is the client's absolute call deadline (kernel time).
	// The admission queue drops requests already past it at dequeue —
	// serving them would be dead work the client can no longer use.
	deadline time.Duration
	// trace/parent propagate the coordinator's span context so
	// client-attempt and server-execution spans link into one causal
	// trace per co-reservation.
	trace  spans.TraceID
	parent spans.SpanID
}

// response is the server's reply.
type response struct {
	reqID       uint64
	ok          bool
	errText     string
	notInDomain bool   // prepare/reserve refusal because no hop is owned
	resID       uint64 // prepare/reserve: the reservation id created
	// overloaded marks an admission-control rejection (queue full,
	// CoDel shed, brownout); retryAfterNS tells the client when the
	// server expects to have drained enough capacity to admit it.
	overloaded   bool
	retryAfterNS int64
}

// Interned method and fate names for ctrl.* flight-recorder events.
const (
	methodPrepare = "prepare"
	methodCommit  = "commit"
	methodAbort   = "abort"
	methodReserve = "reserve"
	methodCancel  = "cancel"
)

// Fates for EvCtrlMsg.V2.
const (
	msgDelivered = 0
	msgDropped   = 1
	msgDuplicate = 2
)

// Outcomes for EvCtrlRPC.V3.
const (
	rpcOK       = 0
	rpcTimeout  = 1
	rpcRejected = 2
	rpcShed     = 3
)

// Interned span names per method, client ("rpc.") and server
// ("server.") side, so the tracing hot path never concatenates.
var (
	rpcSpanNames = map[string]string{
		methodPrepare: "rpc.prepare",
		methodCommit:  "rpc.commit",
		methodAbort:   "rpc.abort",
		methodReserve: "rpc.reserve",
		methodCancel:  "rpc.cancel",
	}
	serverSpanNames = map[string]string{
		methodPrepare: "server.prepare",
		methodCommit:  "server.commit",
		methodAbort:   "server.abort",
		methodReserve: "server.reserve",
		methodCancel:  "server.cancel",
	}
)

func spanName(names map[string]string, method string) string {
	if n, ok := names[method]; ok {
		return n
	}
	return "rpc.call"
}

// Chan is one direction of a control channel: it delivers scheduled
// callbacks after a (jittered) propagation delay, dropping or
// duplicating each message per the current impairment settings. All
// randomness comes from its own child RNG so control-plane draws never
// perturb the data plane's sequence.
type Chan struct {
	k    *sim.Kernel
	name string // interned: "<domain>/req" or "<domain>/rep"
	rng  *sim.RNG
	rec  *metrics.Recorder

	// Delay is the one-way propagation delay; Jitter its multiplicative
	// noise bound (each delivery scaled by [1-Jitter, 1+Jitter]).
	Delay  time.Duration
	Jitter float64

	loss float64
	dup  float64

	mDelivered, mDropped, mDup *metrics.Counter
}

func newChan(k *sim.Kernel, name string, delay time.Duration, jitter float64) *Chan {
	reg := k.Metrics()
	return &Chan{
		k: k, name: name,
		rng:   sim.NewRNG(k.RNG().Int63()),
		rec:   reg.Events(),
		Delay: delay, Jitter: jitter,
		mDelivered: reg.Counter("ctrl_msgs_delivered_total",
			"control messages delivered", "chan", name),
		mDropped: reg.Counter("ctrl_msgs_dropped_total",
			"control messages lost in transit", "chan", name),
		mDup: reg.Counter("ctrl_msgs_duplicated_total",
			"control messages duplicated in transit", "chan", name),
	}
}

// SetLoss sets the per-message drop probability.
func (c *Chan) SetLoss(p float64) { c.loss = p }

// SetDup sets the per-message duplication probability.
func (c *Chan) SetDup(p float64) { c.dup = p }

// send schedules deliver after the channel delay, subject to loss and
// duplication. reqID only labels the flight-recorder event.
func (c *Chan) send(reqID uint64, deliver func()) {
	if c.loss > 0 && c.rng.Float64() < c.loss {
		c.mDropped.Inc()
		c.rec.Emit(metrics.EvCtrlMsg, c.name, int64(reqID), msgDropped, 0)
		return
	}
	c.k.After(c.delay(), deliver)
	c.mDelivered.Inc()
	c.rec.Emit(metrics.EvCtrlMsg, c.name, int64(reqID), msgDelivered, 0)
	if c.dup > 0 && c.rng.Float64() < c.dup {
		c.k.After(c.delay(), deliver)
		c.mDup.Inc()
		c.rec.Emit(metrics.EvCtrlMsg, c.name, int64(reqID), msgDuplicate, 0)
	}
}

func (c *Chan) delay() time.Duration {
	d := c.Delay
	if c.Jitter > 0 {
		d = time.Duration(float64(d) * c.rng.Jitter(c.Jitter))
	}
	return d
}
