package ctrlplane

import (
	"errors"
	"fmt"
	"time"

	gq "mpichgq/internal/core"
	"mpichgq/internal/gara"
	"mpichgq/internal/metrics"
	"mpichgq/internal/sim"
	"mpichgq/internal/spans"
)

// Errors a Call can fail with locally (as opposed to an error the
// server answered).
var (
	// ErrBreakerOpen: the per-RM circuit breaker rejected the call
	// without sending anything.
	ErrBreakerOpen = errors.New("ctrlplane: circuit breaker open")
	// ErrDeadline: no reply arrived within the call deadline across
	// all retries.
	ErrDeadline = errors.New("ctrlplane: call deadline exceeded")
	// ErrOverloaded: the server's admission control shed the call and
	// the retry budget ran out. Match with errors.Is; the concrete
	// *OverloadedError carries the server's retry-after hint.
	ErrOverloaded = errors.New("ctrlplane: server overloaded")
)

// OverloadedError is an admission-control rejection: the server is up
// but shedding load, and RetryAfter is its estimate of when it will
// have drained enough backlog to admit a retry. errors.Is(err,
// ErrOverloaded) matches it.
type OverloadedError struct {
	RM         string
	RetryAfter time.Duration
}

func (e *OverloadedError) Error() string {
	return fmt.Sprintf("ctrlplane: server overloaded (rm %s, retry after %v)",
		e.RM, e.RetryAfter)
}

// Is makes errors.Is(err, ErrOverloaded) succeed.
func (e *OverloadedError) Is(target error) bool { return target == ErrOverloaded }

// Conn is the coordinator's client stub for one domain: it sends
// requests over the lossy channel pair and implements the reliability
// layer — per-attempt timeout, deadline-bounded retries paced by
// gq.Backoff, and the circuit breaker. Retries reuse the request ID,
// so the server's reply cache keeps retried operations idempotent.
type Conn struct {
	k    *sim.Kernel
	name string
	srv  *Server
	// toSrv carries requests, fromSrv replies; loss on either leg
	// looks identical to the client (a timeout).
	toSrv, fromSrv *Chan

	// Timeout is the per-attempt reply timeout.
	Timeout time.Duration
	// Deadline is the total budget for one Call across all retries.
	Deadline time.Duration
	// Backoff paces the retries.
	Backoff *gq.Backoff
	// Breaker, when set, short-circuits calls while the RM is bad.
	Breaker *Breaker
	// Tenant names the requesting principal for the server's fair
	// admission queue; empty means the domain name (a single shared
	// client).
	Tenant string

	nextReq uint64
	idHash  uint64 // lazy FNV of name/tenant, keys direct-call traces
	waiting map[uint64]*pendingCall

	mAttempts, mRetries, mTimeouts, mFailures, mRejected, mOverloads *metrics.Counter
	rec                                                              *metrics.Recorder
	tr                                                               *spans.Tracer
}

type pendingCall struct {
	cond *sim.Cond
	resp *response
}

// NewConn wires a client stub for srv over the given channel pair.
func NewConn(k *sim.Kernel, srv *Server, toSrv, fromSrv *Chan,
	timeout, deadline time.Duration, backoff *gq.Backoff, breaker *Breaker) *Conn {
	reg := k.Metrics()
	name := srv.Name()
	return &Conn{
		k: k, name: name, srv: srv, toSrv: toSrv, fromSrv: fromSrv,
		Timeout: timeout, Deadline: deadline, Backoff: backoff, Breaker: breaker,
		waiting: make(map[uint64]*pendingCall),
		mAttempts: reg.Counter("ctrl_rpc_attempts_total",
			"control RPC attempts (including retries)", "rm", name),
		mRetries: reg.Counter("ctrl_rpc_retries_total",
			"control RPC retransmissions", "rm", name),
		mTimeouts: reg.Counter("ctrl_rpc_timeouts_total",
			"control RPC attempts that timed out", "rm", name),
		mFailures: reg.Counter("ctrl_rpc_failures_total",
			"control RPCs abandoned at their deadline", "rm", name),
		mRejected: reg.Counter("ctrl_rpc_breaker_rejects_total",
			"control RPCs rejected by an open circuit breaker", "rm", name),
		mOverloads: reg.Counter("ctrl_rpc_overloads_total",
			"control RPC attempts shed by server admission control", "rm", name),
		rec: reg.Events(),
		tr:  k.Tracer(),
	}
}

// Name returns the domain this stub talks to.
func (c *Conn) Name() string { return c.name }

// Server returns the wrapped server (tests and gqctl reach through).
func (c *Conn) Server() *Server { return c.srv }

// call runs one reliable request/reply exchange from inside a sim
// process. It retries under the per-attempt Timeout until the Deadline
// and trips the breaker bookkeeping on the way.
func (c *Conn) call(ctx *sim.Ctx, method string, req request) (response, error) {
	sp := c.tr.Begin(req.trace, req.parent, spanName(rpcSpanNames, method), c.name)
	if c.Breaker != nil && !c.Breaker.Allow() {
		c.mRejected.Inc()
		c.rec.Emit(metrics.EvCtrlRPC, method, 0, 0, rpcRejected)
		sp.Int("breaker_open", 1)
		sp.EndStatus(spans.StatusFailed)
		return response{}, fmt.Errorf("%w (rm %s)", ErrBreakerOpen, c.name)
	}
	c.nextReq++
	req.reqID = c.nextReq
	req.method = method
	req.parent = sp.SpanID()
	req.from = c.Tenant
	if req.from == "" {
		req.from = c.name
	}
	sp.Int("req", int64(req.reqID))
	deadline := c.k.Now() + c.Deadline
	req.deadline = deadline
	pc := &pendingCall{cond: sim.NewCond(c.k)}
	c.waiting[req.reqID] = pc
	defer delete(c.waiting, req.reqID)
	c.Backoff.Reset()
	for attempt := 1; ; attempt++ {
		c.mAttempts.Inc()
		c.transmit(req)
		wait := c.Timeout
		if remain := deadline - c.k.Now(); wait > remain {
			wait = remain
		}
		if wait > 0 {
			pc.cond.WaitTimeout(ctx, wait)
		}
		if pc.resp != nil && pc.resp.overloaded {
			// Admission control shed the call: the server is alive (no
			// breaker failure), just saturated. Honor its retry-after
			// hint — backing off to exactly when the server expects
			// capacity is what keeps retries from becoming the storm.
			c.mOverloads.Inc()
			c.rec.Emit(metrics.EvCtrlRPC, method, int64(req.reqID), int64(attempt), rpcShed)
			if c.Breaker != nil {
				c.Breaker.Success()
			}
			retryAfter := time.Duration(pc.resp.retryAfterNS)
			pc.resp = nil
			c.Backoff.Hint(retryAfter)
			sleep := c.Backoff.Next()
			if over := c.k.Now() + sleep; over > deadline {
				sleep = deadline - c.k.Now()
			}
			if sleep > 0 {
				ctx.Sleep(sleep)
			}
			if c.k.Now() >= deadline {
				c.mFailures.Inc()
				sp.Int("attempts", int64(attempt))
				sp.Int("overloaded", 1)
				sp.EndStatus(spans.StatusFailed)
				return response{}, &OverloadedError{RM: c.name, RetryAfter: retryAfter}
			}
			c.mRetries.Inc()
			continue
		}
		if pc.resp != nil {
			if c.Breaker != nil {
				c.Breaker.Success()
			}
			c.rec.Emit(metrics.EvCtrlRPC, method, int64(req.reqID), int64(attempt), rpcOK)
			sp.Int("attempts", int64(attempt))
			if pc.resp.ok {
				sp.End()
			} else {
				sp.EndStatus(spans.StatusFailed)
			}
			return *pc.resp, nil
		}
		c.mTimeouts.Inc()
		c.rec.Emit(metrics.EvCtrlRPC, method, int64(req.reqID), int64(attempt), rpcTimeout)
		if c.k.Now() >= deadline {
			// The breaker counts whole failed calls, not individual
			// attempt timeouts: retries absorbing channel loss are the
			// reliability layer working, while a call that burns its
			// entire deadline means the RM itself is unresponsive.
			c.mFailures.Inc()
			if c.Breaker != nil {
				c.Breaker.Failure()
			}
			sp.Int("attempts", int64(attempt))
			sp.EndStatus(spans.StatusFailed)
			return response{}, fmt.Errorf("%w (rm %s, %s, %d attempts)",
				ErrDeadline, c.name, method, attempt)
		}
		sleep := c.Backoff.Next()
		if over := c.k.Now() + sleep; over > deadline {
			sleep = deadline - c.k.Now()
		}
		if sleep > 0 {
			ctx.Sleep(sleep)
		}
		c.mRetries.Inc()
	}
}

// transmit ships req to the server and wires the reply path. The
// server dispatches the request when the channel delivers it — inline
// when admission control is off, through the admission queue when on
// (the reply then comes whenever service reaches it); a crashed server
// produces no reply at all.
func (c *Conn) transmit(req request) {
	c.toSrv.send(req.reqID, func() {
		c.srv.dispatch(req, func(resp response) {
			c.fromSrv.send(req.reqID, func() { c.deliver(resp) })
		})
	})
}

// deliver completes a pending call; late and duplicate replies (the
// call already answered, timed out, or abandoned) are dropped.
func (c *Conn) deliver(resp response) {
	pc := c.waiting[resp.reqID]
	if pc == nil || pc.resp != nil {
		return
	}
	r := resp
	pc.resp = &r
	pc.cond.Broadcast()
}

// Reserve books a single-domain one-shot reservation through this
// stub (the serving-system path: no two-phase coordination, just this
// domain's broker). It returns the reservation id; errors are either
// local (ErrBreakerOpen, ErrDeadline, ErrOverloaded) or the server's
// refusal text.
func (c *Conn) Reserve(ctx *sim.Ctx, spec gara.Spec) (uint64, error) {
	resp, err := c.call(ctx, methodReserve, request{spec: spec, trace: c.nextCallTrace()})
	if err != nil {
		return 0, err
	}
	if !resp.ok {
		return 0, fmt.Errorf("ctrlplane: %s refused: %s", c.name, resp.errText)
	}
	return resp.resID, nil
}

// Cancel releases a reservation previously created with Reserve.
func (c *Conn) Cancel(ctx *sim.Ctx, resID uint64) error {
	resp, err := c.call(ctx, methodCancel, request{resID: resID, trace: c.nextCallTrace()})
	if err != nil {
		return err
	}
	return rpcError(resp)
}

// nextCallTrace derives a deterministic per-call trace ID for direct
// Conn calls (coordinator calls derive theirs per co-reservation).
// The key mixes the stub's identity hash with the upcoming request
// id, so tenants sharing a domain get distinct traces.
func (c *Conn) nextCallTrace() spans.TraceID {
	if c.idHash == 0 {
		c.idHash = strHash(c.name + "/" + c.Tenant)
	}
	return spans.DeriveTrace(spans.NSReservation, c.idHash^(c.nextReq+1))
}

// strHash is FNV-1a, for deterministic trace keying by stub identity.
func strHash(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// rpcError converts a server-side refusal into an error.
func rpcError(resp response) error {
	if resp.ok {
		return nil
	}
	return errors.New(resp.errText)
}
