package ctrlplane

import (
	"time"

	"mpichgq/internal/metrics"
	"mpichgq/internal/sim"
)

// Limiter is client-side adaptive concurrency: an AIMD window on
// in-flight calls, the client half of the overload-control contract.
// Successes grow the window additively (+1/window per completion, the
// TCP-Reno shape); an overload or deadline failure halves it. An
// overload's retry-after hint pauses new acquisitions entirely until
// the server's estimate of drain time has passed, so a fleet of
// adaptive clients converges on the server's capacity instead of
// storming it.
type Limiter struct {
	k    *sim.Kernel
	cond *sim.Cond

	// MinWindow..MaxWindow bound the AIMD window.
	MinWindow, MaxWindow float64

	window    float64
	inflight  int
	holdUntil time.Duration // no new acquisitions before this

	gWindow *metrics.Gauge
}

// NewLimiter returns a Limiter starting at min concurrency.
func NewLimiter(k *sim.Kernel, name string, min, max float64) *Limiter {
	if min < 1 {
		min = 1
	}
	if max < min {
		max = min
	}
	return &Limiter{
		k: k, cond: sim.NewCond(k),
		MinWindow: min, MaxWindow: max, window: min,
		gWindow: k.Metrics().Gauge("ctrl_aimd_window",
			"client AIMD concurrency window", "client", name),
	}
}

// Window returns the current window size.
func (l *Limiter) Window() float64 { return l.window }

// Inflight returns the current in-flight count.
func (l *Limiter) Inflight() int { return l.inflight }

// Acquire blocks until an in-flight slot is available and any
// retry-after hold has passed, then takes the slot.
func (l *Limiter) Acquire(ctx *sim.Ctx) {
	for {
		if hold := l.holdUntil - l.k.Now(); hold > 0 {
			ctx.Sleep(hold)
			continue
		}
		if l.inflight < int(l.window) {
			l.inflight++
			return
		}
		l.cond.Wait(ctx)
	}
}

// Cancel returns a slot without an AIMD signal: the caller abandoned
// the request before sending anything, so the exchange says nothing
// about server health.
func (l *Limiter) Cancel() {
	l.inflight--
	l.cond.Broadcast()
}

// Release returns a slot and adapts the window: additive increase on
// success, multiplicative decrease on failure. overloaded failures
// also install the server's retry-after as an acquisition hold.
func (l *Limiter) Release(ok bool, overloaded bool, retryAfter time.Duration) {
	l.inflight--
	if ok {
		l.window += 1 / l.window
		if l.window > l.MaxWindow {
			l.window = l.MaxWindow
		}
	} else {
		l.window /= 2
		if l.window < l.MinWindow {
			l.window = l.MinWindow
		}
		if overloaded && retryAfter > 0 {
			if until := l.k.Now() + retryAfter; until > l.holdUntil {
				l.holdUntil = until
			}
		}
	}
	l.gWindow.Set(l.window)
	l.cond.Broadcast()
}
