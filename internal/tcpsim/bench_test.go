package tcpsim

import (
	"io"
	"testing"
	"time"

	"mpichgq/internal/netsim"
	"mpichgq/internal/sim"
	"mpichgq/internal/units"
)

// BenchmarkTCPTransfer measures a complete 1 MB connection lifecycle:
// handshake, windowed transfer across a 100 Mbps / 4 ms link, and
// teardown. The allocs/op figure tracks the per-segment cost of the
// whole stack (segments, packets, timers, ACK clock).
func BenchmarkTCPTransfer(b *testing.B) {
	const total = 1 * units.MB
	k, sa, sb := testNet(100*units.Mbps, time.Millisecond, DefaultOptions())
	var port netsim.Port = netPortBase
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// A fresh port per iteration keeps connections distinct while
		// reusing the same kernel, stacks, and pools.
		port++
		p := port
		var received units.ByteSize
		k.Spawn("server", func(ctx *sim.Ctx) {
			l, err := sb.Listen(p)
			if err != nil {
				b.Error(err)
				return
			}
			defer l.Close()
			c, err := l.Accept(ctx)
			if err != nil {
				b.Error(err)
				return
			}
			for {
				n, err := c.Read(ctx, 64*units.KB)
				received += n
				if err == io.EOF {
					return
				}
				if err != nil {
					b.Error(err)
					return
				}
			}
		})
		k.Spawn("client", func(ctx *sim.Ctx) {
			c, err := sa.Dial(ctx, sb.Node().Addr(), p)
			if err != nil {
				b.Error(err)
				return
			}
			if err := c.Write(ctx, total); err != nil {
				b.Error(err)
				return
			}
			if err := c.Drain(ctx); err != nil {
				b.Error(err)
				return
			}
			c.Close()
		})
		if err := k.Run(); err != nil {
			b.Fatal(err)
		}
		if received != total {
			b.Fatalf("received %v, want %v", received, total)
		}
	}
}

// netPortBase keeps benchmark ports clear of the stacks' ephemeral
// range.
const netPortBase = 2000
