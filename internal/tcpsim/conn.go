package tcpsim

import (
	"fmt"
	"io"
	"time"

	"mpichgq/internal/netsim"
	"mpichgq/internal/sim"
	"mpichgq/internal/spans"
	"mpichgq/internal/units"
)

// Segment flags.
const (
	flagSYN = 1 << iota
	flagACK
	flagFIN
	flagRST
)

// marker attaches an application object to a stream position; it is
// delivered to the receiving application once the stream has been read
// up to pos.
type marker struct {
	pos int64
	obj any
}

// segment is the TCP payload carried inside a netsim.Packet.
type segment struct {
	seq     int64
	ack     int64
	flags   uint8
	length  units.ByteSize
	wnd     units.ByteSize
	markers []marker
}

func (s *segment) String() string {
	return fmt.Sprintf("seg{seq=%d ack=%d len=%d fl=%b}", s.seq, s.ack, s.length, s.flags)
}

type connState int

const (
	stateClosed connState = iota
	stateSynSent
	stateSynRcvd
	stateEstablished
)

// Conn is one TCP connection endpoint.
type Conn struct {
	stack    *Stack
	lport    netsim.Port
	raddr    netsim.Addr
	rport    netsim.Port
	state    connState
	listener *Listener
	err      error
	dscp     netsim.DSCP

	mss units.ByteSize

	// Handshake.
	iss, irs    int64
	established *sim.Cond

	// Sender.
	sndUna, sndNxt int64
	sndMax         int64 // highest sequence ever transmitted
	sndBufEnd      int64 // stream position after the last byte the app wrote
	sndBufCap      units.ByteSize
	cwnd           float64 // bytes
	ssthresh       float64 // bytes
	rwnd           units.ByteSize
	dupAcks        int
	inRecovery     bool
	recover        int64
	rtxTimer       sim.Timer
	rto            time.Duration
	srtt, rttvar   time.Duration
	hasRTT         bool
	rttTiming      bool
	rttSeq         int64
	rttStart       time.Duration
	sndCond        *sim.Cond
	sndMarkers     []marker
	closeRequested bool
	finSeq         int64 // stream position of FIN, -1 until Close
	finAcked       bool
	persistTimer   sim.Timer
	lastSend       time.Duration // last data transmission (for SSR)

	// Receiver.
	rcvNxt     int64
	readPos    int64
	rcvBufCap  units.ByteSize
	ooo        []interval
	rcvMarkers map[int64]any
	seenMarker map[int64]bool
	rcvCond    *sim.Cond
	peerFin    int64 // seq of peer's FIN, -1 if none
	eof        bool
	delack     sim.Timer
	unacked    int // segments received since last ACK sent

	stats ConnStats

	// Causal tracing: trace is the flow's trace ID (shared by both
	// endpoints — the 4-tuple is ordered canonically before hashing);
	// connect is the handshake span, kept after End so recovery spans
	// can parent under it; recSpan is the open fast-recovery episode.
	tr      *spans.Tracer
	trace   spans.TraceID
	connect *spans.Span
	recSpan *spans.Span

	// TraceSend, if non-nil, is called for every data segment
	// transmission (including retransmissions); Figure 7's
	// sequence-number traces hook in here.
	TraceSend func(now time.Duration, seq int64, length units.ByteSize, retx bool)
}

// interval is a received out-of-order byte range [start, end).
type interval struct {
	start, end int64
}

// ConnStats holds cumulative counters and instantaneous congestion
// state.
type ConnStats struct {
	BytesSent      int64 // payload bytes transmitted, incl. retransmits
	BytesAcked     int64
	BytesReceived  int64 // in-order payload bytes delivered toward the app
	SegmentsSent   uint64
	Retransmits    uint64
	Timeouts       uint64
	FastRetransmit uint64
	DupAcksSeen    uint64
	Cwnd           units.ByteSize
	Ssthresh       units.ByteSize
	SRTT           time.Duration
	RTO            time.Duration
}

func newConn(s *Stack, lport netsim.Port, raddr netsim.Addr, rport netsim.Port) *Conn {
	o := s.opts
	c := &Conn{
		stack:       s,
		lport:       lport,
		raddr:       raddr,
		rport:       rport,
		mss:         o.MSS,
		established: sim.NewCond(s.k),
		sndBufCap:   o.SndBuf,
		rcvBufCap:   o.RcvBuf,
		cwnd:        float64(o.MSS) * float64(o.InitialCwndSegs),
		ssthresh:    1 << 30,
		rwnd:        o.RcvBuf,
		rto:         o.InitialRTO,
		sndCond:     sim.NewCond(s.k),
		rcvCond:     sim.NewCond(s.k),
		finSeq:      -1,
		peerFin:     -1,
		rcvMarkers:  make(map[int64]any),
		seenMarker:  make(map[int64]bool),
	}
	// Sequence space: ISS 0 on both sides; the SYN consumes seq 0 so
	// the byte stream starts at position 1.
	c.sndUna, c.sndNxt, c.sndBufEnd = 0, 0, 1
	c.rcvNxt, c.readPos = 0, 1
	c.tr = s.k.Tracer()
	c.trace = flowTrace(s.node.Addr(), lport, raddr, rport)
	return c
}

// flowTrace derives the flow's trace ID from its 4-tuple, ordered
// canonically so both endpoints of a connection land in one trace.
func flowTrace(laddr netsim.Addr, lport netsim.Port, raddr netsim.Addr, rport netsim.Port) spans.TraceID {
	lo := uint64(laddr)<<16 | uint64(lport)
	hi := uint64(raddr)<<16 | uint64(rport)
	if lo > hi {
		lo, hi = hi, lo
	}
	return spans.DeriveTrace(spans.NSFlow, lo*0x9e3779b97f4a7c15^hi)
}

// LocalPort returns the connection's local port.
func (c *Conn) LocalPort() netsim.Port { return c.lport }

// RemoteAddr returns the peer's node address.
func (c *Conn) RemoteAddr() netsim.Addr { return c.raddr }

// RemotePort returns the peer's port.
func (c *Conn) RemotePort() netsim.Port { return c.rport }

// LocalAddr returns this endpoint's node address.
func (c *Conn) LocalAddr() netsim.Addr { return c.stack.node.Addr() }

// FlowKey returns the 5-tuple of this connection's outgoing direction.
func (c *Conn) FlowKey() netsim.FlowKey {
	return netsim.FlowKey{
		Src: c.LocalAddr(), Dst: c.raddr,
		SrcPort: c.lport, DstPort: c.rport,
		Proto: netsim.ProtoTCP,
	}
}

// SetDSCP sets the code point stamped on outgoing packets.
func (c *Conn) SetDSCP(d netsim.DSCP) { c.dscp = d }

// SetSndBuf resizes the send socket buffer (the §5.5 tuning knob).
func (c *Conn) SetSndBuf(n units.ByteSize) {
	if n < c.mss {
		n = c.mss
	}
	c.sndBufCap = n
	c.sndCond.Broadcast()
}

// SetRcvBuf resizes the receive socket buffer.
func (c *Conn) SetRcvBuf(n units.ByteSize) {
	if n < c.mss {
		n = c.mss
	}
	c.rcvBufCap = n
}

// SndBuf returns the send buffer capacity.
func (c *Conn) SndBuf() units.ByteSize { return c.sndBufCap }

// Stats returns a snapshot of the connection's counters.
func (c *Conn) Stats() ConnStats {
	st := c.stats
	st.Cwnd = units.ByteSize(c.cwnd)
	st.Ssthresh = units.ByteSize(c.ssthresh)
	st.SRTT = c.srtt
	st.RTO = c.rto
	return st
}

// BufferedSend returns the bytes written but not yet acknowledged.
func (c *Conn) BufferedSend() units.ByteSize {
	return units.ByteSize(c.sndBufEnd - maxI64(c.sndUna, 1))
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Write blocks the calling process until n bytes have been accepted
// into the send buffer (not necessarily acknowledged). This mirrors a
// blocking write(2) on a socket with a finite SO_SNDBUF.
func (c *Conn) Write(ctx *sim.Ctx, n units.ByteSize) error {
	return c.write(ctx, n, nil)
}

// WriteMsg writes n bytes and attaches obj at the end of those bytes;
// the receiver's ReadMsg returns obj after consuming the stream up to
// that point. This is how the MPI layer moves structured messages over
// the byte stream.
func (c *Conn) WriteMsg(ctx *sim.Ctx, n units.ByteSize, obj any) error {
	if n <= 0 {
		return fmt.Errorf("tcpsim: WriteMsg with non-positive length %d", n)
	}
	return c.write(ctx, n, obj)
}

func (c *Conn) write(ctx *sim.Ctx, n units.ByteSize, obj any) error {
	if n < 0 {
		return fmt.Errorf("tcpsim: negative write length %d", n)
	}
	if c.state != stateEstablished || c.closeRequested {
		if c.err != nil {
			return c.err
		}
		return ErrClosed
	}
	if obj != nil {
		// Register the marker before any byte of the message can be
		// transmitted, so the segment that carries the final byte
		// always carries the marker too.
		c.sndMarkers = append(c.sndMarkers, marker{pos: c.sndBufEnd + int64(n), obj: obj})
	}
	remaining := n
	for remaining > 0 {
		if c.state != stateEstablished || c.closeRequested {
			if c.err != nil {
				return c.err
			}
			return ErrClosed
		}
		inBuf := units.ByteSize(c.sndBufEnd - maxI64(c.sndUna, 1))
		space := c.sndBufCap - inBuf
		if space <= 0 {
			c.sndCond.Wait(ctx)
			continue
		}
		chunk := remaining
		if chunk > space {
			chunk = space
		}
		c.sndBufEnd += int64(chunk)
		remaining -= chunk
		c.trySend()
	}
	return nil
}

// Read blocks until at least one byte is available, then consumes up
// to max bytes and returns the count. io.EOF signals a clean shutdown
// by the peer.
func (c *Conn) Read(ctx *sim.Ctx, max units.ByteSize) (units.ByteSize, error) {
	if max <= 0 {
		return 0, fmt.Errorf("tcpsim: non-positive read size %d", max)
	}
	for {
		if avail := units.ByteSize(c.dataLimit() - c.readPos); avail > 0 {
			n := max
			if n > avail {
				n = avail
			}
			c.consume(int64(n))
			return n, nil
		}
		if c.eof {
			return 0, io.EOF
		}
		if c.err != nil {
			return 0, c.err
		}
		if c.state == stateClosed {
			return 0, ErrClosed
		}
		c.rcvCond.Wait(ctx)
	}
}

// ReadFull blocks until exactly n bytes have been consumed.
func (c *Conn) ReadFull(ctx *sim.Ctx, n units.ByteSize) error {
	for n > 0 {
		got, err := c.Read(ctx, n)
		if err != nil {
			return err
		}
		n -= got
	}
	return nil
}

// ReadMsg blocks until the next marker is reached, consuming the
// stream up to it, and returns the consumed byte count (the message
// length) and the attached object. Data is consumed incrementally as
// it arrives, so messages larger than the receive buffer flow through
// without deadlock.
func (c *Conn) ReadMsg(ctx *sim.Ctx) (units.ByteSize, any, error) {
	var consumed units.ByteSize
	for {
		pos, obj, ok := c.nextMarker()
		if ok && pos <= c.rcvNxt {
			// Whole message available: consume through the marker.
			consumed += units.ByteSize(pos - c.readPos)
			c.consume(pos - c.readPos)
			delete(c.rcvMarkers, pos)
			return consumed, obj, nil
		}
		// Marker not yet reached. Everything buffered belongs to the
		// current message (markers arrive with the segment that ends
		// the message, and the stream is in order), so drain it to
		// keep the window open.
		limit := c.dataLimit()
		if ok && pos < limit {
			limit = pos
		}
		if n := limit - c.readPos; n > 0 {
			consumed += units.ByteSize(n)
			c.consume(n)
			continue
		}
		if c.eof {
			return consumed, nil, io.EOF
		}
		if c.err != nil {
			return consumed, nil, c.err
		}
		if c.state == stateClosed {
			return consumed, nil, ErrClosed
		}
		c.rcvCond.Wait(ctx)
	}
}

// nextMarker returns the earliest pending marker.
func (c *Conn) nextMarker() (int64, any, bool) {
	best := int64(-1)
	var obj any
	for pos, o := range c.rcvMarkers {
		if best == -1 || pos < best {
			best, obj = pos, o
		}
	}
	if best == -1 {
		return 0, nil, false
	}
	return best, obj, true
}

// dataLimit returns the stream position after the last readable data
// byte: rcvNxt, minus the phantom sequence slot the peer's FIN
// consumed.
func (c *Conn) dataLimit() int64 {
	if c.eof {
		return c.peerFin
	}
	return c.rcvNxt
}

// consume advances the app read position and sends a window update if
// the advertised window was nearly closed.
func (c *Conn) consume(n int64) {
	wasSmall := c.advertisedWnd() < c.mss
	c.readPos += n
	if wasSmall && c.advertisedWnd() >= c.mss {
		c.sendAck()
	}
}

func (c *Conn) advertisedWnd() units.ByteSize {
	used := units.ByteSize(c.rcvNxt - c.readPos)
	if used >= c.rcvBufCap {
		return 0
	}
	return c.rcvBufCap - used
}

// Buffered returns the bytes received and not yet read by the app.
func (c *Conn) Buffered() units.ByteSize { return units.ByteSize(c.rcvNxt - c.readPos) }

// Drain blocks until every written byte has been acknowledged.
func (c *Conn) Drain(ctx *sim.Ctx) error {
	for c.sndUna < c.sndBufEnd {
		if c.err != nil {
			return c.err
		}
		if c.state != stateEstablished {
			return ErrClosed
		}
		c.sndCond.Wait(ctx)
	}
	return nil
}

// Close initiates a graceful shutdown: queued data is delivered, then
// a FIN. Close does not block; use Drain first for synchronous
// semantics.
func (c *Conn) Close() {
	if c.closeRequested || c.state == stateClosed {
		return
	}
	c.closeRequested = true
	c.finSeq = c.sndBufEnd
	c.trySend()
}

// abort resets the connection immediately.
func (c *Conn) abort(err error) {
	if c.state == stateClosed {
		return
	}
	seg := c.stack.allocSeg()
	seg.flags, seg.seq = flagRST, c.sndNxt
	c.sendSegment(seg)
	c.destroy(err)
}

// destroy tears down local state and wakes all blocked operations.
func (c *Conn) destroy(err error) {
	if c.state == stateClosed && c.err != nil {
		return
	}
	c.state = stateClosed
	if c.err == nil {
		c.err = err
	}
	// A handshake that never completed failed; an interrupted recovery
	// episode ends with the connection. (End is idempotent, so a
	// connect span already closed at establishment is untouched.)
	c.connect.EndStatus(spans.StatusFailed)
	c.recSpan.EndStatus(spans.StatusFailed)
	c.recSpan = nil
	c.rtxTimer.Cancel()
	c.delack.Cancel()
	c.persistTimer.Cancel()
	delete(c.stack.conns, connKey{localPort: c.lport, remoteAddr: c.raddr, remotePort: c.rport})
	c.established.Broadcast()
	c.sndCond.Broadcast()
	c.rcvCond.Broadcast()
}

func (c *Conn) String() string {
	return fmt.Sprintf("conn{%s:%d->%d:%d}", c.stack.node.Name(), c.lport, c.raddr, c.rport)
}
