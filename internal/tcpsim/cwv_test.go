package tcpsim

import (
	"testing"
	"time"

	"mpichgq/internal/sim"
	"mpichgq/internal/units"
)

// appLimitedCwnd measures the sender's cwnd after a paced, app-limited
// stream with CWV either on or off.
func appLimitedCwnd(t *testing.T, disableCWV bool) units.ByteSize {
	t.Helper()
	opts := DefaultOptions()
	opts.DisableCWV = disableCWV
	opts.DisableSSR = true // isolate CWV
	opts.SndBuf = 512 * units.KB
	opts.RcvBuf = 512 * units.KB
	k, sa, sb := testNet(100*units.Mbps, 2*time.Millisecond, opts)
	var conn *Conn
	k.Spawn("server", func(ctx *sim.Ctx) {
		l, _ := sb.Listen(80)
		c, err := l.Accept(ctx)
		if err != nil {
			return
		}
		for {
			if _, err := c.Read(ctx, units.MB); err != nil {
				return
			}
		}
	})
	k.Spawn("client", func(ctx *sim.Ctx) {
		c, err := sa.Dial(ctx, sb.Node().Addr(), 80)
		if err != nil {
			t.Error(err)
			return
		}
		conn = c
		// 10 KB every 10 ms = 8 Mb/s: far below the 100 Mb/s link.
		for ctx.Now() < 5*time.Second {
			c.Write(ctx, 10*units.KB)
			ctx.Sleep(10 * time.Millisecond)
		}
	})
	if err := k.RunUntil(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	return conn.Stats().Cwnd
}

func TestCWVLimitsAppLimitedGrowth(t *testing.T) {
	withCWV := appLimitedCwnd(t, false)
	withoutCWV := appLimitedCwnd(t, true)
	// With CWV the cwnd stays near actual usage (~10-20 KB); without
	// it the window balloons on every ACK.
	if withCWV > 40*units.KB {
		t.Fatalf("cwnd with CWV = %v, want bounded near usage", withCWV)
	}
	if withoutCWV < 2*withCWV {
		t.Fatalf("cwnd without CWV = %v vs %v with, want much larger", withoutCWV, withCWV)
	}
}

func TestSlowStartRestartAfterIdle(t *testing.T) {
	opts := DefaultOptions()
	opts.SndBuf = 512 * units.KB
	opts.RcvBuf = 512 * units.KB
	k, sa, sb := testNet(100*units.Mbps, 2*time.Millisecond, opts)
	var conn *Conn
	var cwndBeforeIdle, cwndAfterIdle units.ByteSize
	k.Spawn("server", func(ctx *sim.Ctx) {
		l, _ := sb.Listen(80)
		c, err := l.Accept(ctx)
		if err != nil {
			return
		}
		for {
			if _, err := c.Read(ctx, units.MB); err != nil {
				return
			}
		}
	})
	k.Spawn("client", func(ctx *sim.Ctx) {
		c, err := sa.Dial(ctx, sb.Node().Addr(), 80)
		if err != nil {
			t.Error(err)
			return
		}
		conn = c
		// Bulk phase grows cwnd.
		c.Write(ctx, 2*units.MB)
		c.Drain(ctx)
		cwndBeforeIdle = c.Stats().Cwnd
		// Idle for 2 s (>> RTO), then send again.
		ctx.Sleep(2 * time.Second)
		c.Write(ctx, 10*units.KB)
		ctx.Yield()
		cwndAfterIdle = c.Stats().Cwnd
	})
	if err := k.RunUntil(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	_ = conn
	if cwndBeforeIdle < 50*units.KB {
		t.Fatalf("bulk cwnd = %v, expected growth", cwndBeforeIdle)
	}
	iw := 2 * 1460 * units.Byte
	if cwndAfterIdle > iw+1460 {
		t.Fatalf("cwnd after idle = %v, want collapsed to ~initial window %v", cwndAfterIdle, iw)
	}
}

func TestSSRDisabled(t *testing.T) {
	opts := DefaultOptions()
	opts.DisableSSR = true
	opts.SndBuf = 512 * units.KB
	opts.RcvBuf = 512 * units.KB
	k, sa, sb := testNet(100*units.Mbps, 2*time.Millisecond, opts)
	var cwndAfterIdle units.ByteSize
	k.Spawn("server", func(ctx *sim.Ctx) {
		l, _ := sb.Listen(80)
		c, err := l.Accept(ctx)
		if err != nil {
			return
		}
		for {
			if _, err := c.Read(ctx, units.MB); err != nil {
				return
			}
		}
	})
	k.Spawn("client", func(ctx *sim.Ctx) {
		c, err := sa.Dial(ctx, sb.Node().Addr(), 80)
		if err != nil {
			t.Error(err)
			return
		}
		c.Write(ctx, 2*units.MB)
		c.Drain(ctx)
		ctx.Sleep(2 * time.Second)
		c.Write(ctx, 10*units.KB)
		ctx.Yield()
		cwndAfterIdle = c.Stats().Cwnd
	})
	if err := k.RunUntil(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if cwndAfterIdle < 50*units.KB {
		t.Fatalf("cwnd after idle with SSR disabled = %v, want retained", cwndAfterIdle)
	}
}

func TestDelayedAckReducesAckTraffic(t *testing.T) {
	count := func(delayed bool) uint64 {
		opts := DefaultOptions()
		opts.DelayedAck = delayed
		k, sa, sb := testNet(10*units.Mbps, 2*time.Millisecond, opts)
		var srv *Conn
		k.Spawn("server", func(ctx *sim.Ctx) {
			l, _ := sb.Listen(80)
			c, err := l.Accept(ctx)
			if err != nil {
				return
			}
			srv = c
			for {
				if _, err := c.Read(ctx, units.MB); err != nil {
					return
				}
			}
		})
		k.Spawn("client", func(ctx *sim.Ctx) {
			c, err := sa.Dial(ctx, sb.Node().Addr(), 80)
			if err != nil {
				t.Error(err)
				return
			}
			c.Write(ctx, 500*units.KB)
			c.Drain(ctx)
			c.Close()
		})
		if err := k.RunUntil(30 * time.Second); err != nil {
			t.Fatal(err)
		}
		return srv.Stats().SegmentsSent // server only sends ACKs
	}
	imm := count(false)
	del := count(true)
	if del*3 > imm*2 {
		t.Fatalf("delayed ACKs sent %d segments vs %d immediate, want ~half", del, imm)
	}
}

func TestTCPSurvivesLinkFlap(t *testing.T) {
	opts := DefaultOptions()
	k, sa, sb := testNet(10*units.Mbps, 2*time.Millisecond, opts)
	link := sa.Node().Network().Links()[0]
	var received units.ByteSize
	k.Spawn("server", func(ctx *sim.Ctx) {
		l, _ := sb.Listen(80)
		c, err := l.Accept(ctx)
		if err != nil {
			return
		}
		for {
			n, err := c.Read(ctx, units.MB)
			received += n
			if err != nil {
				return
			}
		}
	})
	k.Spawn("client", func(ctx *sim.Ctx) {
		c, err := sa.Dial(ctx, sb.Node().Addr(), 80)
		if err != nil {
			t.Error(err)
			return
		}
		c.Write(ctx, 500*units.KB)
		c.Drain(ctx)
		c.Close()
	})
	// 2-second outage mid-transfer.
	k.After(50*time.Millisecond, func() { link.SetUp(false) })
	k.After(2050*time.Millisecond, func() { link.SetUp(true) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if received != 500*units.KB {
		t.Fatalf("received %v, want full 500KB despite the outage", received)
	}
}
