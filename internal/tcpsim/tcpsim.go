// Package tcpsim implements a TCP transport (Reno/NewReno congestion
// control) over the netsim packet network.
//
// The paper's central difficulty is TCP's reaction to token-bucket
// policing: "TCP kicks into slow start mode and starts sending more
// slowly, gradually building up its send rate until packets are
// dropped again" (§3). Reproducing Figures 1, 5, and 6 therefore
// requires a faithful congestion-control implementation: slow start,
// congestion avoidance, fast retransmit/fast recovery, retransmission
// timeouts with exponential backoff, and Jacobson/Karn RTT estimation.
//
// Data is modelled as byte counts, not buffers: Write(n) injects n
// bytes of stream, Read returns byte counts. Applications that need to
// move structured messages (the MPI library) attach *markers* to
// stream positions with WriteMsg/ReadMsg; markers ride inside segments
// and are delivered exactly once, in stream order, when the receiver
// has consumed the stream past them.
package tcpsim

import (
	"errors"
	"fmt"
	"time"

	"mpichgq/internal/metrics"
	"mpichgq/internal/netsim"
	"mpichgq/internal/sim"
	"mpichgq/internal/units"
)

// Errors returned by connection operations.
var (
	ErrClosed       = errors.New("tcpsim: connection closed")
	ErrReset        = errors.New("tcpsim: connection reset by peer")
	ErrRefused      = errors.New("tcpsim: connection refused")
	ErrTimeout      = errors.New("tcpsim: connection timed out")
	ErrPortInUse    = errors.New("tcpsim: port in use")
	ErrListenClosed = errors.New("tcpsim: listener closed")
)

// Options configure a stack's default connection parameters.
// Individual connections can override buffers and DSCP after creation.
type Options struct {
	// MSS is the maximum segment (payload) size. Default 1460 bytes.
	MSS units.ByteSize
	// SndBuf is the send socket buffer size. Default 64 KB. The
	// paper's §5.5 anecdote used 8 KB before tuning.
	SndBuf units.ByteSize
	// RcvBuf is the receive socket buffer size. Default 64 KB.
	RcvBuf units.ByteSize
	// InitialCwnd is the initial congestion window in segments.
	// Default 2 (RFC 2581).
	InitialCwndSegs int
	// MinRTO / MaxRTO / InitialRTO bound the retransmission timer.
	// Defaults 200 ms / 60 s / 1 s.
	MinRTO, MaxRTO, InitialRTO time.Duration
	// NewReno enables partial-ACK retransmission during fast
	// recovery (RFC 2582). Default true.
	NewReno bool
	// DelayedAck enables a 40 ms delayed-ACK timer with
	// ack-every-other-segment. Default false (immediate ACKs).
	DelayedAck bool
	// DisableCWV turns off congestion-window validation (RFC 2861):
	// with CWV on (default), cwnd only grows while the window is
	// actually being filled, so app-limited flows do not accumulate
	// a huge cwnd and then dump line-rate bursts into policers.
	DisableCWV bool
	// DisableSSR turns off slow-start restart after idle: with SSR
	// on (default), a connection idle for longer than its RTO
	// collapses cwnd back to the initial window, as 2000-era stacks
	// did. This is a large part of why very bursty (1 fps) flows
	// need bigger reservations (§5.4).
	DisableSSR bool
	// SynRetries is the number of SYN (re)transmissions before Dial
	// fails with ErrTimeout. Default 5.
	SynRetries int
}

func (o Options) withDefaults() Options {
	if o.MSS == 0 {
		o.MSS = 1460
	}
	if o.SndBuf == 0 {
		o.SndBuf = 64 * units.KB
	}
	if o.RcvBuf == 0 {
		o.RcvBuf = 64 * units.KB
	}
	if o.InitialCwndSegs == 0 {
		o.InitialCwndSegs = 2
	}
	if o.MinRTO == 0 {
		o.MinRTO = 200 * time.Millisecond
	}
	if o.MaxRTO == 0 {
		o.MaxRTO = 60 * time.Second
	}
	if o.InitialRTO == 0 {
		o.InitialRTO = time.Second
	}
	if o.SynRetries == 0 {
		o.SynRetries = 5
	}
	return o
}

// DefaultOptions returns the stack defaults (NewReno enabled).
func DefaultOptions() Options {
	o := Options{NewReno: true}
	return o.withDefaults()
}

type connKey struct {
	localPort  netsim.Port
	remoteAddr netsim.Addr
	remotePort netsim.Port
}

// Stack is the TCP transport instance on one node.
type Stack struct {
	k         *sim.Kernel
	node      *netsim.Node
	opts      Options
	conns     map[connKey]*Conn
	listeners map[netsim.Port]*Listener
	nextPort  netsim.Port

	rstSent uint64
	m       stackMetrics

	// segFree is the segment freelist; see allocSeg.
	segFree []*segment
}

// allocSeg returns a zeroed segment from the stack's freelist (its
// markers slice keeps its capacity), or a fresh one. Segments travel
// inside packets and are recycled by the receiving stack in
// HandlePacket; a segment lost with its packet in the network is
// simply garbage-collected.
func (s *Stack) allocSeg() *segment {
	if l := len(s.segFree); l > 0 {
		seg := s.segFree[l-1]
		s.segFree[l-1] = nil
		s.segFree = s.segFree[:l-1]
		return seg
	}
	return &segment{}
}

// freeSeg resets seg (releasing marker payload references) and
// returns it to the freelist.
func (s *Stack) freeSeg(seg *segment) {
	for i := range seg.markers {
		seg.markers[i] = marker{}
	}
	mk := seg.markers[:0]
	*seg = segment{}
	seg.markers = mk
	s.segFree = append(s.segFree, seg)
}

// stackMetrics holds the per-node metric handles every connection on
// a stack shares (resolved once in NewStack; co-located stacks on one
// node share series through registry dedup).
type stackMetrics struct {
	nodeName string
	segments *metrics.Counter
	retx     *metrics.Counter
	timeouts *metrics.Counter
	fastRetx *metrics.Counter
	rtt      *metrics.Histogram
	cwnd     *metrics.Gauge
	rec      *metrics.Recorder
}

// NewStack creates a TCP stack on node nd and registers it as the
// node's TCP handler. Zero-valued Options fields get defaults;
// DefaultOptions().NewReno is only applied when opts is entirely zero,
// so pass DefaultOptions() (or set NewReno explicitly) for NewReno.
func NewStack(nd *netsim.Node, opts Options) *Stack {
	s := &Stack{
		k:         nd.Network().Kernel(),
		node:      nd,
		opts:      opts.withDefaults(),
		conns:     make(map[connKey]*Conn),
		listeners: make(map[netsim.Port]*Listener),
		nextPort:  40000,
	}
	reg := s.k.Metrics()
	name := nd.Name()
	s.m = stackMetrics{
		nodeName: name,
		segments: reg.Counter("tcp_segments_sent_total",
			"TCP segments handed to the network", "node", name),
		retx: reg.Counter("tcp_retransmits_total",
			"TCP data retransmissions", "node", name),
		timeouts: reg.Counter("tcp_timeouts_total",
			"TCP retransmission-timer expiries", "node", name),
		fastRetx: reg.Counter("tcp_fast_retransmits_total",
			"TCP fast-retransmit events", "node", name),
		rtt: reg.Histogram("tcp_rtt_seconds",
			"smoothed TCP round-trip samples", metrics.DefLatencyBuckets, "node", name),
		cwnd: reg.Gauge("tcp_cwnd_bytes",
			"congestion window of the node's most recently active connection", "node", name),
		rec: reg.Events(),
	}
	nd.Handle(netsim.ProtoTCP, s)
	return s
}

// Node returns the node the stack runs on.
func (s *Stack) Node() *netsim.Node { return s.node }

// Options returns the stack's default options.
func (s *Stack) Options() Options { return s.opts }

func (s *Stack) allocPort() netsim.Port {
	for {
		p := s.nextPort
		s.nextPort++
		if s.nextPort == 0 {
			s.nextPort = 40000
		}
		if _, used := s.listeners[p]; used {
			continue
		}
		inUse := false
		for k := range s.conns {
			if k.localPort == p {
				inUse = true
				break
			}
		}
		if !inUse {
			return p
		}
	}
}

// HandlePacket implements netsim.Handler: demultiplex to an existing
// connection, a listener (SYN), or answer with RST.
func (s *Stack) HandlePacket(p *netsim.Packet) {
	seg, ok := p.Payload.(*segment)
	if !ok {
		return
	}
	key := connKey{localPort: p.DstPort, remoteAddr: p.Src, remotePort: p.SrcPort}
	l := s.listeners[p.DstPort]
	isSyn := seg.flags&flagSYN != 0 && seg.flags&flagACK == 0
	switch {
	case s.conns[key] != nil:
		s.conns[key].handleSegment(seg, p)
	case isSyn && l != nil && !l.closed:
		l.handleSyn(seg, p)
	case seg.flags&flagRST == 0:
		s.sendRST(p)
	}
	// Segment handling is synchronous and copies everything it keeps,
	// so both the segment and its packet recycle here.
	s.freeSeg(seg)
	s.node.Network().FreePacket(p)
}

func (s *Stack) sendRST(orig *netsim.Packet) {
	s.rstSent++
	seg := s.allocSeg()
	seg.flags = flagRST
	seg.ack = orig.Payload.(*segment).seq + 1
	pkt := s.node.Network().AllocPacket()
	pkt.Src = s.node.Addr()
	pkt.Dst = orig.Src
	pkt.SrcPort = orig.DstPort
	pkt.DstPort = orig.SrcPort
	pkt.Proto = netsim.ProtoTCP
	pkt.Size = netsim.TCPHeader + netsim.IPHeader
	pkt.Payload = seg
	_ = s.node.Send(pkt)
}

// Dial opens a connection to (raddr, rport), blocking the calling
// process until the handshake completes or fails.
func (s *Stack) Dial(ctx *sim.Ctx, raddr netsim.Addr, rport netsim.Port) (*Conn, error) {
	return s.DialFrom(ctx, 0, raddr, rport)
}

// DialFrom is Dial with an explicit local port (0 = ephemeral).
func (s *Stack) DialFrom(ctx *sim.Ctx, lport netsim.Port, raddr netsim.Addr, rport netsim.Port) (*Conn, error) {
	if lport == 0 {
		lport = s.allocPort()
	}
	key := connKey{localPort: lport, remoteAddr: raddr, remotePort: rport}
	if s.conns[key] != nil {
		return nil, ErrPortInUse
	}
	c := newConn(s, lport, raddr, rport)
	s.conns[key] = c
	c.state = stateSynSent
	c.connect = c.tr.Begin(c.trace, 0, "tcp.connect", s.m.nodeName)
	c.connect.Int("lport", int64(lport)).Int("rport", int64(rport))
	rto := s.opts.InitialRTO
	for attempt := 0; attempt < s.opts.SynRetries; attempt++ {
		c.sendFlags(flagSYN, c.iss, 0)
		if c.established.WaitTimeout(ctx, rto) {
			break
		}
		rto *= 2
	}
	switch c.state {
	case stateEstablished:
		return c, nil
	case stateClosed:
		err := c.err
		if err == nil {
			err = ErrRefused
		}
		delete(s.conns, key)
		return nil, err
	default:
		c.destroy(ErrTimeout)
		return nil, ErrTimeout
	}
}

// Listen opens a listener on port (0 = ephemeral).
func (s *Stack) Listen(port netsim.Port) (*Listener, error) {
	if port == 0 {
		port = s.allocPort()
	}
	if s.listeners[port] != nil {
		return nil, ErrPortInUse
	}
	l := &Listener{stack: s, port: port, backlog: sim.NewMailbox(s.k)}
	s.listeners[port] = l
	return l, nil
}

// ConnCount returns the number of live connections (diagnostics).
func (s *Stack) ConnCount() int { return len(s.conns) }

// Listener accepts incoming connections on one port.
type Listener struct {
	stack   *Stack
	port    netsim.Port
	backlog *sim.Mailbox
	closed  bool
}

// Port returns the listening port.
func (l *Listener) Port() netsim.Port { return l.port }

// Accept blocks until a fully established connection is available.
func (l *Listener) Accept(ctx *sim.Ctx) (*Conn, error) {
	v, ok := l.backlog.Recv(ctx)
	if !ok {
		return nil, ErrListenClosed
	}
	return v.(*Conn), nil
}

// Close stops accepting. Established-but-unaccepted connections are
// reset.
func (l *Listener) Close() {
	if l.closed {
		return
	}
	l.closed = true
	delete(l.stack.listeners, l.port)
	for {
		v, ok := l.backlog.TryRecv()
		if !ok {
			break
		}
		v.(*Conn).abort(ErrReset)
	}
	l.backlog.Close()
}

// handleSyn creates a half-open connection and replies SYN|ACK.
func (l *Listener) handleSyn(seg *segment, p *netsim.Packet) {
	s := l.stack
	key := connKey{localPort: p.DstPort, remoteAddr: p.Src, remotePort: p.SrcPort}
	if s.conns[key] != nil {
		return // duplicate SYN; conn will handle retransmit
	}
	c := newConn(s, p.DstPort, p.Src, p.SrcPort)
	s.conns[key] = c
	c.listener = l
	c.state = stateSynRcvd
	c.connect = c.tr.Begin(c.trace, 0, "tcp.accept", s.m.nodeName)
	c.connect.Int("lport", int64(p.DstPort)).Int("rport", int64(p.SrcPort))
	c.rcvNxt = seg.seq + 1
	c.irs = seg.seq
	c.sendFlags(flagSYN|flagACK, c.iss, c.rcvNxt)
	// If the handshake ACK is lost the client's data segment will
	// also complete it; no SYN|ACK retransmit timer for simplicity.
}

func (s *Stack) String() string {
	return fmt.Sprintf("tcp@%s(%d conns)", s.node.Name(), len(s.conns))
}
