package tcpsim

import (
	"time"

	"mpichgq/internal/metrics"
	"mpichgq/internal/netsim"
	"mpichgq/internal/spans"
	"mpichgq/internal/units"
)

// sendFlags transmits a zero-length control segment.
func (c *Conn) sendFlags(flags uint8, seq, ack int64) {
	seg := c.stack.allocSeg()
	seg.flags, seg.seq, seg.ack, seg.wnd = flags, seq, ack, c.advertisedWnd()
	c.sendSegment(seg)
}

// sendFin transmits the FIN|ACK segment at stream position seq.
func (c *Conn) sendFin(seq int64) {
	seg := c.stack.allocSeg()
	seg.flags = flagFIN | flagACK
	seg.seq, seg.ack, seg.wnd = seq, c.rcvNxt, c.advertisedWnd()
	c.sendDataSegment(seg)
}

// sendAck transmits a pure ACK for the current receive state.
func (c *Conn) sendAck() {
	c.delack.Cancel()
	c.unacked = 0
	c.sendFlags(flagACK, c.sndNxt, c.rcvNxt)
}

// scheduleAck implements the delayed-ACK policy: immediate by default,
// or ack-every-other-segment with a 40 ms cap when enabled.
func (c *Conn) scheduleAck() {
	if !c.stack.opts.DelayedAck {
		c.sendAck()
		return
	}
	c.unacked++
	if c.unacked >= 2 {
		c.sendAck()
		return
	}
	if !c.delack.Pending() {
		c.delack = c.stack.k.AfterFunc(40*time.Millisecond, connDelack, c, nil)
	}
}

// connDelack is the prebound delayed-ACK callback; scheduling it
// through AfterFunc avoids a closure allocation per armed timer.
func connDelack(a0, _ any) {
	c := a0.(*Conn)
	if c.unacked > 0 {
		c.sendAck()
	}
}

// sendSegment wraps a segment into a packet and hands it to the node.
func (c *Conn) sendSegment(seg *segment) {
	p := c.stack.node.Network().AllocPacket()
	p.Src = c.LocalAddr()
	p.Dst = c.raddr
	p.SrcPort = c.lport
	p.DstPort = c.rport
	p.Proto = netsim.ProtoTCP
	p.DSCP = c.dscp
	p.Size = seg.length + netsim.TCPHeader + netsim.IPHeader
	p.PayloadLen = seg.length
	p.Payload = seg
	c.stats.SegmentsSent++
	c.stack.m.segments.Inc()
	c.stack.m.cwnd.Set(c.cwnd)
	// A local egress drop is just loss; retransmission recovers it.
	_ = c.stack.node.Send(p)
}

// effectiveWnd returns the sender's usable window in bytes.
func (c *Conn) effectiveWnd() int64 {
	w := int64(c.cwnd)
	if r := int64(c.rwnd); r < w && !c.inRecovery {
		w = r
	}
	return w
}

// trySend transmits as much new data (and the FIN) as window allows.
func (c *Conn) trySend() {
	if c.state != stateEstablished {
		return
	}
	// Slow-start restart: a connection idle past its RTO loses its
	// ACK clock; collapse cwnd to the initial window and ramp again.
	if !c.stack.opts.DisableSSR && c.sndNxt == c.sndUna && c.sndNxt < c.sndBufEnd &&
		c.lastSend > 0 && c.stack.k.Now()-c.lastSend > c.rto {
		if iw := float64(c.mss) * float64(c.stack.opts.InitialCwndSegs); c.cwnd > iw {
			c.cwnd = iw
		}
	}
	for {
		avail := c.sndUna + c.effectiveWnd() - c.sndNxt
		if avail <= 0 {
			// Zero-window with nothing in flight: arm the persist
			// timer so a lost window update cannot deadlock us.
			if c.sndNxt == c.sndUna && c.sndNxt < c.sndBufEnd {
				c.armPersist()
			}
			break
		}
		dataEnd := c.sndBufEnd
		if c.sndNxt < dataEnd {
			n := int64(c.mss)
			if rem := dataEnd - c.sndNxt; rem < n {
				n = rem
			}
			if avail < n {
				// Don't send a runt mid-stream unless it is all we
				// may send and nothing is in flight (avoid silly
				// window syndrome, keep ACK clock alive).
				if c.sndNxt != c.sndUna {
					break
				}
				n = avail
			}
			c.transmitRange(c.sndNxt, units.ByteSize(n), false)
			c.sndNxt += n
			c.armRtx()
			continue
		}
		if c.closeRequested && c.sndNxt == c.finSeq {
			c.sendFin(c.sndNxt)
			c.sndNxt = c.finSeq + 1
			if c.sndNxt > c.sndMax {
				c.sndMax = c.sndNxt
			}
			c.armRtx()
		}
		break
	}
}

// transmitRange sends payload bytes [seq, seq+n) with any markers in
// that range attached.
func (c *Conn) transmitRange(seq int64, n units.ByteSize, retx bool) {
	seg := c.stack.allocSeg()
	seg.flags = flagACK
	seg.seq, seg.ack = seq, c.rcvNxt
	seg.length = n
	seg.wnd = c.advertisedWnd()
	end := seq + int64(n)
	if end > c.sndMax {
		c.sndMax = end
	}
	for _, m := range c.sndMarkers {
		if m.pos > seq && m.pos <= end {
			seg.markers = append(seg.markers, m)
		}
	}
	c.stats.BytesSent += int64(n)
	m := &c.stack.m
	retxFlag := int64(0)
	if retx {
		c.stats.Retransmits++
		m.retx.Inc()
		m.rec.Emit(metrics.EvTCPRetransmit, m.nodeName, seq, int64(n), 0)
		retxFlag = 1
	} else if !c.rttTiming {
		// Karn's algorithm: time only segments sent once.
		c.rttTiming = true
		c.rttSeq = end
		c.rttStart = c.stack.k.Now()
	}
	m.rec.Emit(metrics.EvTCPSegment, m.nodeName, seq, int64(n), retxFlag)
	if c.TraceSend != nil {
		c.TraceSend(c.stack.k.Now(), seq, n, retx)
	}
	c.sendDataSegment(seg)
}

func (c *Conn) sendDataSegment(seg *segment) {
	c.sendSegment(seg)
	c.lastSend = c.stack.k.Now()
	c.unacked = 0 // data segments piggyback the ACK
}

// armPersist schedules a one-byte zero-window probe.
func (c *Conn) armPersist() {
	if c.persistTimer.Pending() {
		return
	}
	c.persistTimer = c.stack.k.AfterFunc(c.rto, connPersist, c, nil)
}

// connPersist is the prebound persist-timer callback.
func connPersist(a0, _ any) {
	c := a0.(*Conn)
	if c.state != stateEstablished || c.sndNxt != c.sndUna ||
		c.sndNxt >= c.sndBufEnd || c.effectiveWnd() > 0 {
		c.trySend()
		return
	}
	c.transmitRange(c.sndNxt, units.Byte, false)
	c.sndNxt++
	c.armRtx()
}

// armRtx starts the retransmission timer if it is not running.
func (c *Conn) armRtx() {
	if c.rtxTimer.Pending() {
		return
	}
	c.rtxTimer = c.stack.k.AfterFunc(c.rto, connRTO, c, nil)
}

// connRTO is the prebound retransmission-timeout callback; using it
// instead of the method value c.onRTO keeps timer (re)arming
// allocation-free on the data path.
func connRTO(a0, _ any) { a0.(*Conn).onRTO() }

// restartRtx restarts the timer (after an ACK advancing sndUna).
func (c *Conn) restartRtx() {
	c.rtxTimer.Cancel()
	if c.sndNxt > c.sndUna {
		c.rtxTimer = c.stack.k.AfterFunc(c.rto, connRTO, c, nil)
	}
}

// onRTO handles a retransmission timeout: multiplicative backoff,
// collapse to slow start, go-back-N from sndUna. This is the "TCP
// kicks into slow start mode" behaviour at the heart of the paper's
// Figures 1 and 6.
func (c *Conn) onRTO() {
	if c.state != stateEstablished || c.sndNxt == c.sndUna {
		return
	}
	c.stats.Timeouts++
	flight := float64(c.sndNxt - c.sndUna)
	c.ssthresh = flight / 2
	if min := 2 * float64(c.mss); c.ssthresh < min {
		c.ssthresh = min
	}
	c.cwnd = float64(c.mss)
	c.inRecovery = false
	// An RTO during fast recovery means recovery failed; either way the
	// timeout itself is an instant span on the flow's trace.
	c.recSpan.EndStatus(spans.StatusFailed)
	c.recSpan = nil
	c.tr.Begin(c.trace, c.connect.SpanID(), "tcp.rto", c.stack.m.nodeName).
		Int("seq", c.sndUna).Int("rto_ns", int64(c.rto)).
		EndStatus(spans.StatusBreached)
	c.dupAcks = 0
	c.rttTiming = false
	c.rto *= 2
	if c.rto > c.stack.opts.MaxRTO {
		c.rto = c.stack.opts.MaxRTO
	}
	c.stack.m.timeouts.Inc()
	c.stack.m.rec.Emit(metrics.EvTCPTimeout, c.stack.m.nodeName, c.sndUna, int64(c.rto), 0)
	// Go-back-N: always retransmit the first outstanding segment,
	// regardless of the advertised window (a zero window must not
	// block recovery of already-sent data).
	c.sndNxt = c.sndUna
	n := int64(c.mss)
	if rem := c.sndBufEnd - c.sndUna; rem < n {
		n = rem
	}
	if n > 0 {
		c.transmitRange(c.sndUna, units.ByteSize(n), true)
		c.sndNxt = c.sndUna + n
	} else if c.closeRequested && c.sndUna == c.finSeq {
		c.stats.Retransmits++
		c.sendFin(c.finSeq)
		c.sndNxt = c.finSeq + 1
	}
	c.trySend()
	c.armRtx()
}

// sampleRTT folds a measurement into srtt/rttvar per RFC 6298.
func (c *Conn) sampleRTT(r time.Duration) {
	c.stack.m.rtt.Observe(r.Seconds())
	if !c.hasRTT {
		c.srtt = r
		c.rttvar = r / 2
		c.hasRTT = true
	} else {
		d := c.srtt - r
		if d < 0 {
			d = -d
		}
		c.rttvar = (3*c.rttvar + d) / 4
		c.srtt = (7*c.srtt + r) / 8
	}
	c.rto = c.srtt + 4*c.rttvar
	if c.rto < c.stack.opts.MinRTO {
		c.rto = c.stack.opts.MinRTO
	}
	if c.rto > c.stack.opts.MaxRTO {
		c.rto = c.stack.opts.MaxRTO
	}
}

// handleSegment is the per-connection packet entry point.
func (c *Conn) handleSegment(seg *segment, p *netsim.Packet) {
	switch c.state {
	case stateClosed:
		return
	case stateSynSent:
		if seg.flags&flagRST != 0 {
			c.destroy(ErrRefused)
			return
		}
		if seg.flags&(flagSYN|flagACK) == flagSYN|flagACK && seg.ack == c.iss+1 {
			c.irs = seg.seq
			c.rcvNxt = seg.seq + 1
			c.sndUna = seg.ack
			c.sndNxt = seg.ack
			c.sndMax = seg.ack
			c.rwnd = seg.wnd
			c.state = stateEstablished
			c.connect.End()
			c.sendAck()
			c.established.Broadcast()
		}
		return
	case stateSynRcvd:
		if seg.flags&flagRST != 0 {
			c.destroy(ErrReset)
			return
		}
		if seg.flags&flagACK != 0 && seg.ack == c.iss+1 {
			c.sndUna = seg.ack
			c.sndNxt = seg.ack
			c.sndMax = seg.ack
			c.rwnd = seg.wnd
			c.state = stateEstablished
			c.connect.End()
			c.established.Broadcast()
			if c.listener != nil {
				if c.listener.closed {
					c.abort(ErrReset)
					return
				}
				c.listener.backlog.Send(c)
			}
			// Fall through: the completing segment may carry data.
		} else if seg.flags&flagSYN != 0 {
			// Retransmitted SYN: repeat the SYN|ACK.
			c.sendFlags(flagSYN|flagACK, c.iss, c.rcvNxt)
			return
		} else {
			return
		}
	}
	// Established.
	if seg.flags&flagRST != 0 {
		c.destroy(ErrReset)
		return
	}
	if seg.flags&flagSYN != 0 && seg.flags&flagACK != 0 {
		// Duplicate SYN|ACK (our handshake ACK was lost).
		c.sendAck()
		return
	}
	if seg.flags&flagACK != 0 {
		c.processAck(seg)
	}
	if seg.length > 0 {
		c.processData(seg)
	}
	if seg.flags&flagFIN != 0 {
		c.processFin(seg)
	}
}

// processAck implements Reno/NewReno ACK processing.
func (c *Conn) processAck(seg *segment) {
	ack := seg.ack
	if ack > c.sndMax {
		return // acks data we never sent
	}
	wndChanged := seg.wnd != c.rwnd
	c.rwnd = seg.wnd
	if ack > c.sndUna {
		acked := ack - c.sndUna
		c.sndUna = ack
		if c.sndNxt < ack {
			// An ACK for data sent before a go-back-N reset: skip
			// ahead rather than re-sending what the peer has.
			c.sndNxt = ack
		}
		c.stats.BytesAcked += acked
		c.trimMarkers()
		if c.rttTiming && ack >= c.rttSeq {
			c.sampleRTT(c.stack.k.Now() - c.rttStart)
			c.rttTiming = false
		}
		mss := float64(c.mss)
		if c.inRecovery {
			if !c.stack.opts.NewReno || ack > c.recover {
				// Full ACK: leave fast recovery.
				c.inRecovery = false
				c.recSpan.Int("cwnd_exit", int64(c.ssthresh))
				c.recSpan.End()
				c.recSpan = nil
				c.cwnd = c.ssthresh
				c.dupAcks = 0
			} else {
				// Partial ACK (NewReno): retransmit the next hole,
				// deflate by the amount acked.
				c.retransmitHole()
				c.cwnd -= float64(acked)
				c.cwnd += mss
				if c.cwnd < mss {
					c.cwnd = mss
				}
				c.restartRtx()
			}
		} else {
			c.dupAcks = 0
			// Congestion window validation: only grow cwnd if the
			// window was essentially full when this data was sent —
			// an app-limited flow keeps its cwnd matched to actual
			// usage.
			wasLimited := c.stack.opts.DisableCWV ||
				float64(acked)+float64(c.sndNxt-c.sndUna) >= c.cwnd-mss
			if wasLimited {
				if c.cwnd < c.ssthresh {
					c.cwnd += mss // slow start
				} else {
					c.cwnd += mss * mss / c.cwnd // congestion avoidance
				}
			}
		}
		c.restartRtx()
		if c.closeRequested && c.finSeq >= 0 && ack > c.finSeq && !c.finAcked {
			c.finAcked = true
			c.sndCond.Broadcast()
			c.maybeTeardown()
			return
		}
		c.sndCond.Broadcast()
		c.trySend()
		return
	}
	// Duplicate ACK detection: same ack, no payload, unchanged
	// window, data outstanding.
	if ack == c.sndUna && seg.length == 0 && !wndChanged && c.sndNxt > c.sndUna {
		c.stats.DupAcksSeen++
		c.dupAcks++
		mss := float64(c.mss)
		if c.inRecovery {
			c.cwnd += mss // inflate
			c.trySend()
			return
		}
		if c.dupAcks == 3 {
			// Fast retransmit + fast recovery.
			c.stats.FastRetransmit++
			c.stack.m.fastRetx.Inc()
			flight := float64(c.sndNxt - c.sndUna)
			c.ssthresh = flight / 2
			if min := 2 * mss; c.ssthresh < min {
				c.ssthresh = min
			}
			c.recover = c.sndNxt
			c.inRecovery = true
			c.recSpan = c.tr.Begin(c.trace, c.connect.SpanID(), "tcp.recovery", c.stack.m.nodeName)
			c.recSpan.Int("seq", c.sndUna).Int("cwnd_entry", int64(c.cwnd))
			c.cwnd = c.ssthresh + 3*mss
			c.retransmitHole()
			c.restartRtx()
		}
	} else {
		// Window update or simultaneous data: may unblock sending.
		c.trySend()
	}
}

// retransmitHole resends the segment (or FIN) starting at sndUna.
func (c *Conn) retransmitHole() {
	n := int64(c.mss)
	if rem := c.sndBufEnd - c.sndUna; rem < n {
		n = rem
	}
	if n > 0 {
		c.transmitRange(c.sndUna, units.ByteSize(n), true)
		return
	}
	if c.closeRequested && c.sndUna == c.finSeq {
		c.stats.Retransmits++
		c.sendFin(c.finSeq)
	}
}

// trimMarkers discards sender-side markers at or below sndUna (they
// have been delivered).
func (c *Conn) trimMarkers() {
	i := 0
	for _, m := range c.sndMarkers {
		if m.pos > c.sndUna {
			c.sndMarkers[i] = m
			i++
		}
	}
	c.sndMarkers = c.sndMarkers[:i]
}

// processData handles an arriving payload range.
func (c *Conn) processData(seg *segment) {
	start, end := seg.seq, seg.seq+int64(seg.length)
	// Absorb markers (dedup on position; retransmits repeat them).
	for _, m := range seg.markers {
		if !c.seenMarker[m.pos] {
			c.seenMarker[m.pos] = true
			c.rcvMarkers[m.pos] = m.obj
		}
	}
	switch {
	case end <= c.rcvNxt:
		// Pure duplicate; re-ACK immediately so the sender's dup-ack
		// machinery sees it.
		c.sendAck()
		return
	case start <= c.rcvNxt:
		// In-order (possibly overlapping) data.
		if units.ByteSize(end-c.readPos) > c.rcvBufCap {
			// Beyond our buffer: truncate to what fits.
			limit := c.readPos + int64(c.rcvBufCap)
			if limit <= c.rcvNxt {
				c.sendAck()
				return
			}
			end = limit
		}
		advanced := end - c.rcvNxt
		c.rcvNxt = end
		c.stats.BytesReceived += advanced
		c.mergeOOO()
		c.checkPeerFin()
		c.scheduleAck()
		c.rcvCond.Broadcast()
	default:
		// Out of order: store the interval, ACK the old rcvNxt (a
		// duplicate ACK that triggers the sender's fast retransmit).
		if units.ByteSize(end-c.readPos) <= c.rcvBufCap {
			c.insertOOO(interval{start: start, end: end})
		}
		c.sendAck()
	}
}

// insertOOO records an out-of-order range, merging overlaps.
func (c *Conn) insertOOO(iv interval) {
	merged := []interval{}
	for _, x := range c.ooo {
		if x.end < iv.start || x.start > iv.end {
			merged = append(merged, x)
			continue
		}
		if x.start < iv.start {
			iv.start = x.start
		}
		if x.end > iv.end {
			iv.end = x.end
		}
	}
	merged = append(merged, iv)
	c.ooo = merged
}

// mergeOOO advances rcvNxt across any stored ranges it now reaches.
func (c *Conn) mergeOOO() {
	for changed := true; changed; {
		changed = false
		keep := c.ooo[:0]
		for _, iv := range c.ooo {
			switch {
			case iv.end <= c.rcvNxt:
				// Fully consumed.
			case iv.start <= c.rcvNxt:
				adv := iv.end - c.rcvNxt
				c.rcvNxt = iv.end
				c.stats.BytesReceived += adv
				changed = true
			default:
				keep = append(keep, iv)
			}
		}
		c.ooo = keep
	}
}

// processFin handles the peer's FIN.
func (c *Conn) processFin(seg *segment) {
	if c.peerFin < 0 {
		c.peerFin = seg.seq
	}
	c.checkPeerFin()
	c.sendAck()
}

// checkPeerFin delivers EOF once all data before the FIN has arrived.
func (c *Conn) checkPeerFin() {
	if c.peerFin >= 0 && c.rcvNxt >= c.peerFin && !c.eof {
		c.rcvNxt = c.peerFin + 1
		c.eof = true
		c.rcvCond.Broadcast()
		c.maybeTeardown()
	}
}

// maybeTeardown removes the connection once both directions have shut
// down cleanly (our FIN acked, peer's FIN received). Lingering until
// then avoids spurious RSTs when the two sides close at different
// times.
func (c *Conn) maybeTeardown() {
	if c.finAcked && c.eof {
		c.destroy(ErrClosed)
	}
}
