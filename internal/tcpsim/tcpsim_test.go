package tcpsim

import (
	"io"
	"testing"
	"time"

	"mpichgq/internal/netsim"
	"mpichgq/internal/sim"
	"mpichgq/internal/units"
)

// testNet builds a two-host network with TCP stacks:
// a --- b at the given rate/delay.
func testNet(rate units.BitRate, delay time.Duration, opts Options) (*sim.Kernel, *Stack, *Stack) {
	k := sim.New(1)
	n := netsim.New(k)
	a := n.AddNode("a")
	b := n.AddNode("b")
	n.Connect(a, b, rate, delay)
	n.ComputeRoutes()
	return k, NewStack(a, opts), NewStack(b, opts)
}

// testNetBottleneck builds a --- r1 --- r2 --- b with a bottleneck
// link r1-r2 and returns the stacks plus the bottleneck link.
func testNetBottleneck(access, bottleneck units.BitRate, delay time.Duration, opts Options) (*sim.Kernel, *Stack, *Stack, *netsim.Link) {
	k := sim.New(1)
	n := netsim.New(k)
	a, r1, r2, b := n.AddNode("a"), n.AddNode("r1"), n.AddNode("r2"), n.AddNode("b")
	n.Connect(a, r1, access, delay/4)
	l := n.Connect(r1, r2, bottleneck, delay/4)
	n.Connect(r2, b, access, delay/4)
	n.ComputeRoutes()
	return k, NewStack(a, opts), NewStack(b, opts), l
}

func TestHandshakeAndTransfer(t *testing.T) {
	k, sa, sb := testNet(10*units.Mbps, time.Millisecond, DefaultOptions())
	const total = 100 * units.KB
	var received units.ByteSize
	k.Spawn("server", func(ctx *sim.Ctx) {
		l, err := sb.Listen(80)
		if err != nil {
			t.Error(err)
			return
		}
		c, err := l.Accept(ctx)
		if err != nil {
			t.Error(err)
			return
		}
		for {
			n, err := c.Read(ctx, 32*units.KB)
			received += n
			if err == io.EOF {
				return
			}
			if err != nil {
				t.Error(err)
				return
			}
		}
	})
	k.Spawn("client", func(ctx *sim.Ctx) {
		c, err := sa.Dial(ctx, sb.Node().Addr(), 80)
		if err != nil {
			t.Error(err)
			return
		}
		if err := c.Write(ctx, total); err != nil {
			t.Error(err)
			return
		}
		if err := c.Drain(ctx); err != nil {
			t.Error(err)
			return
		}
		c.Close()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if received != total {
		t.Fatalf("received %d bytes, want %d", received, total)
	}
}

func TestDialRefused(t *testing.T) {
	k, sa, sb := testNet(10*units.Mbps, time.Millisecond, DefaultOptions())
	var dialErr error
	k.Spawn("client", func(ctx *sim.Ctx) {
		_, dialErr = sa.Dial(ctx, sb.Node().Addr(), 81)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if dialErr != ErrRefused {
		t.Fatalf("dial error = %v, want ErrRefused", dialErr)
	}
}

func TestDialTimeoutUnreachable(t *testing.T) {
	// Destination exists but no route (island node).
	k := sim.New(1)
	n := netsim.New(k)
	a := n.AddNode("a")
	island := n.AddNode("island")
	b := n.AddNode("b")
	n.Connect(a, b, units.Mbps, 0)
	n.ComputeRoutes()
	sa := NewStack(a, DefaultOptions())
	NewStack(island, DefaultOptions())
	var dialErr error
	k.Spawn("client", func(ctx *sim.Ctx) {
		_, dialErr = sa.Dial(ctx, island.Addr(), 80)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if dialErr != ErrTimeout {
		t.Fatalf("dial error = %v, want ErrTimeout", dialErr)
	}
}

func TestThroughputApproachesLinkRate(t *testing.T) {
	// Long-lived bulk transfer on a clean 10 Mb/s path should reach
	// most of the link rate (goodput ~ rate * 1460/1500).
	opts := DefaultOptions()
	opts.SndBuf = 256 * units.KB
	opts.RcvBuf = 256 * units.KB
	k, sa, sb, _ := testNetBottleneck(100*units.Mbps, 10*units.Mbps, 4*time.Millisecond, opts)
	var received units.ByteSize
	start, end := time.Duration(0), time.Duration(0)
	k.Spawn("server", func(ctx *sim.Ctx) {
		l, _ := sb.Listen(80)
		c, err := l.Accept(ctx)
		if err != nil {
			t.Error(err)
			return
		}
		start = ctx.Now()
		for {
			n, err := c.Read(ctx, 64*units.KB)
			received += n
			end = ctx.Now()
			if err != nil {
				return
			}
		}
	})
	k.Spawn("client", func(ctx *sim.Ctx) {
		c, err := sa.Dial(ctx, sb.Node().Addr(), 80)
		if err != nil {
			t.Error(err)
			return
		}
		c.Write(ctx, 10*units.MB)
		c.Drain(ctx)
		c.Close()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	rate := units.RateOf(received, end-start)
	if rate < 8*units.Mbps {
		t.Fatalf("bulk throughput %v, want > 8 Mb/s of a 10 Mb/s link", rate)
	}
	if rate > 10*units.Mbps {
		t.Fatalf("throughput %v exceeds link rate", rate)
	}
}

func TestReliableDeliveryUnderLoss(t *testing.T) {
	// Random 5% ingress loss on the receiver side; all bytes must
	// still arrive, via retransmission.
	opts := DefaultOptions()
	k, sa, sb := testNet(10*units.Mbps, 2*time.Millisecond, opts)
	rng := sim.NewRNG(42)
	bIface := sb.Node().Ifaces()[0]
	bIface.AddIngress(netsim.IngressFilterFunc(func(p *netsim.Packet) *netsim.Packet {
		if p.PayloadLen > 0 && rng.Float64() < 0.05 {
			return nil
		}
		return p
	}))
	const total = 500 * units.KB
	var received units.ByteSize
	var clientConn *Conn
	k.Spawn("server", func(ctx *sim.Ctx) {
		l, _ := sb.Listen(80)
		c, err := l.Accept(ctx)
		if err != nil {
			t.Error(err)
			return
		}
		for {
			n, err := c.Read(ctx, 64*units.KB)
			received += n
			if err != nil {
				return
			}
		}
	})
	k.Spawn("client", func(ctx *sim.Ctx) {
		c, err := sa.Dial(ctx, sb.Node().Addr(), 80)
		if err != nil {
			t.Error(err)
			return
		}
		clientConn = c
		c.Write(ctx, total)
		c.Drain(ctx)
		c.Close()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if received != total {
		t.Fatalf("received %d bytes, want %d", received, total)
	}
	if clientConn.Stats().Retransmits == 0 {
		t.Fatal("expected retransmissions under 5% loss")
	}
}

func TestInOrderDeliveryProperty(t *testing.T) {
	// Markers written in order must be read in order despite loss.
	opts := DefaultOptions()
	k, sa, sb := testNet(10*units.Mbps, 2*time.Millisecond, opts)
	rng := sim.NewRNG(7)
	sb.Node().Ifaces()[0].AddIngress(netsim.IngressFilterFunc(func(p *netsim.Packet) *netsim.Packet {
		if p.PayloadLen > 0 && rng.Float64() < 0.1 {
			return nil
		}
		return p
	}))
	const nMsgs = 50
	var got []int
	k.Spawn("server", func(ctx *sim.Ctx) {
		l, _ := sb.Listen(80)
		c, err := l.Accept(ctx)
		if err != nil {
			t.Error(err)
			return
		}
		for {
			_, obj, err := c.ReadMsg(ctx)
			if err != nil {
				return
			}
			got = append(got, obj.(int))
		}
	})
	k.Spawn("client", func(ctx *sim.Ctx) {
		c, err := sa.Dial(ctx, sb.Node().Addr(), 80)
		if err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < nMsgs; i++ {
			size := units.ByteSize(rng.Intn(20000) + 1)
			if err := c.WriteMsg(ctx, size, i); err != nil {
				t.Error(err)
				return
			}
		}
		c.Drain(ctx)
		c.Close()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != nMsgs {
		t.Fatalf("received %d messages, want %d", len(got), nMsgs)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("message %d out of order: got %d", i, v)
		}
	}
}

func TestSlowStartGrowth(t *testing.T) {
	// cwnd should double per RTT during slow start.
	opts := DefaultOptions()
	opts.SndBuf = units.MB
	opts.RcvBuf = units.MB
	k, sa, sb := testNet(100*units.Mbps, 10*time.Millisecond, opts)
	var cwndAt50ms, cwndAt100ms units.ByteSize
	var conn *Conn
	k.Spawn("server", func(ctx *sim.Ctx) {
		l, _ := sb.Listen(80)
		c, err := l.Accept(ctx)
		if err != nil {
			return
		}
		for {
			if _, err := c.Read(ctx, units.MB); err != nil {
				return
			}
		}
	})
	k.Spawn("client", func(ctx *sim.Ctx) {
		c, err := sa.Dial(ctx, sb.Node().Addr(), 80)
		if err != nil {
			t.Error(err)
			return
		}
		conn = c
		c.Write(ctx, 5*units.MB)
	})
	k.After(70*time.Millisecond, func() { cwndAt50ms = conn.Stats().Cwnd })
	k.After(130*time.Millisecond, func() { cwndAt100ms = conn.Stats().Cwnd })
	if err := k.RunUntil(200 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if cwndAt100ms < 2*cwndAt50ms {
		t.Fatalf("cwnd not growing exponentially: %d then %d", cwndAt50ms, cwndAt100ms)
	}
}

func TestFastRetransmitOnSingleLoss(t *testing.T) {
	// Drop exactly one data packet mid-stream: recovery should use
	// fast retransmit (not a timeout).
	opts := DefaultOptions()
	opts.SndBuf = 256 * units.KB
	opts.RcvBuf = 256 * units.KB
	k, sa, sb := testNet(10*units.Mbps, 2*time.Millisecond, opts)
	dropped := false
	count := 0
	sb.Node().Ifaces()[0].AddIngress(netsim.IngressFilterFunc(func(p *netsim.Packet) *netsim.Packet {
		if p.PayloadLen > 0 {
			count++
			if count == 20 && !dropped {
				dropped = true
				return nil
			}
		}
		return p
	}))
	var conn *Conn
	var received units.ByteSize
	k.Spawn("server", func(ctx *sim.Ctx) {
		l, _ := sb.Listen(80)
		c, err := l.Accept(ctx)
		if err != nil {
			return
		}
		for {
			n, err := c.Read(ctx, units.MB)
			received += n
			if err != nil {
				return
			}
		}
	})
	k.Spawn("client", func(ctx *sim.Ctx) {
		c, err := sa.Dial(ctx, sb.Node().Addr(), 80)
		if err != nil {
			t.Error(err)
			return
		}
		conn = c
		c.Write(ctx, 500*units.KB)
		c.Drain(ctx)
		c.Close()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	st := conn.Stats()
	if received != 500*units.KB {
		t.Fatalf("received %d, want %d", received, 500*units.KB)
	}
	if st.FastRetransmit == 0 {
		t.Fatal("expected a fast retransmit")
	}
	if st.Timeouts != 0 {
		t.Fatalf("expected no RTO for an isolated loss, got %d", st.Timeouts)
	}
}

func TestRTOAfterTotalBlackout(t *testing.T) {
	// Drop everything for a while: sender must hit RTOs and recover
	// when the path heals.
	opts := DefaultOptions()
	k, sa, sb := testNet(10*units.Mbps, time.Millisecond, opts)
	blackout := false
	sb.Node().Ifaces()[0].AddIngress(netsim.IngressFilterFunc(func(p *netsim.Packet) *netsim.Packet {
		if blackout {
			return nil
		}
		return p
	}))
	var conn *Conn
	var received units.ByteSize
	k.Spawn("server", func(ctx *sim.Ctx) {
		l, _ := sb.Listen(80)
		c, err := l.Accept(ctx)
		if err != nil {
			return
		}
		for {
			n, err := c.Read(ctx, units.MB)
			received += n
			if err != nil {
				return
			}
		}
	})
	k.Spawn("client", func(ctx *sim.Ctx) {
		c, err := sa.Dial(ctx, sb.Node().Addr(), 80)
		if err != nil {
			t.Error(err)
			return
		}
		conn = c
		c.Write(ctx, 200*units.KB)
		c.Drain(ctx)
		c.Close()
	})
	k.After(20*time.Millisecond, func() { blackout = true })
	k.After(3*time.Second, func() { blackout = false })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if received != 200*units.KB {
		t.Fatalf("received %d, want %d", received, 200*units.KB)
	}
	if conn.Stats().Timeouts == 0 {
		t.Fatal("expected RTOs during blackout")
	}
}

func TestSendBufferBlocksWriter(t *testing.T) {
	// With an 8 KB send buffer and a slow link, a large write must
	// block and complete only as data drains.
	opts := DefaultOptions()
	opts.SndBuf = 8 * units.KB
	k, sa, sb := testNet(800*units.Kbps, time.Millisecond, opts)
	var writeDone time.Duration
	k.Spawn("server", func(ctx *sim.Ctx) {
		l, _ := sb.Listen(80)
		c, err := l.Accept(ctx)
		if err != nil {
			return
		}
		for {
			if _, err := c.Read(ctx, units.MB); err != nil {
				return
			}
		}
	})
	k.Spawn("client", func(ctx *sim.Ctx) {
		c, err := sa.Dial(ctx, sb.Node().Addr(), 80)
		if err != nil {
			t.Error(err)
			return
		}
		c.Write(ctx, 100*units.KB)
		writeDone = ctx.Now()
		c.Close()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// 100 KB at 800 Kb/s takes ~1 s; an unblocked write would return
	// almost immediately.
	if writeDone < 500*time.Millisecond {
		t.Fatalf("write returned at %v; should have blocked on the 8KB buffer", writeDone)
	}
}

func TestReceiverWindowBackpressure(t *testing.T) {
	// Receiver app reads slowly: sender must be flow-controlled and
	// not lose data.
	opts := DefaultOptions()
	opts.RcvBuf = 16 * units.KB
	opts.SndBuf = 256 * units.KB
	k, sa, sb := testNet(100*units.Mbps, time.Millisecond, opts)
	const total = 200 * units.KB
	var received units.ByteSize
	k.Spawn("server", func(ctx *sim.Ctx) {
		l, _ := sb.Listen(80)
		c, err := l.Accept(ctx)
		if err != nil {
			return
		}
		for {
			n, err := c.Read(ctx, 4*units.KB)
			received += n
			if err != nil {
				return
			}
			ctx.Sleep(5 * time.Millisecond) // slow consumer
		}
	})
	k.Spawn("client", func(ctx *sim.Ctx) {
		c, err := sa.Dial(ctx, sb.Node().Addr(), 80)
		if err != nil {
			t.Error(err)
			return
		}
		c.Write(ctx, total)
		c.Drain(ctx)
		c.Close()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if received != total {
		t.Fatalf("received %d, want %d", received, total)
	}
}

func TestBidirectionalTransfer(t *testing.T) {
	// Ping-pong without MPI: both directions carry data on one conn.
	opts := DefaultOptions()
	k, sa, sb := testNet(10*units.Mbps, 2*time.Millisecond, opts)
	const rounds = 20
	const msg = 10 * units.KB
	done := 0
	k.Spawn("server", func(ctx *sim.Ctx) {
		l, _ := sb.Listen(80)
		c, err := l.Accept(ctx)
		if err != nil {
			return
		}
		for i := 0; i < rounds; i++ {
			if err := c.ReadFull(ctx, msg); err != nil {
				t.Error(err)
				return
			}
			if err := c.Write(ctx, msg); err != nil {
				t.Error(err)
				return
			}
		}
		done++
	})
	k.Spawn("client", func(ctx *sim.Ctx) {
		c, err := sa.Dial(ctx, sb.Node().Addr(), 80)
		if err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < rounds; i++ {
			if err := c.Write(ctx, msg); err != nil {
				t.Error(err)
				return
			}
			if err := c.ReadFull(ctx, msg); err != nil {
				t.Error(err)
				return
			}
		}
		done++
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if done != 2 {
		t.Fatalf("done = %d, want 2", done)
	}
}

func TestGracefulCloseBothSides(t *testing.T) {
	k, sa, sb := testNet(10*units.Mbps, time.Millisecond, DefaultOptions())
	var srvReadErr error
	k.Spawn("server", func(ctx *sim.Ctx) {
		l, _ := sb.Listen(80)
		c, err := l.Accept(ctx)
		if err != nil {
			return
		}
		for {
			_, err := c.Read(ctx, units.KB)
			if err != nil {
				srvReadErr = err
				c.Close()
				return
			}
		}
	})
	k.Spawn("client", func(ctx *sim.Ctx) {
		c, err := sa.Dial(ctx, sb.Node().Addr(), 80)
		if err != nil {
			t.Error(err)
			return
		}
		c.Write(ctx, 5*units.KB)
		c.Drain(ctx)
		c.Close()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if srvReadErr != io.EOF {
		t.Fatalf("server read error = %v, want io.EOF", srvReadErr)
	}
	if sa.ConnCount() != 0 || sb.ConnCount() != 0 {
		t.Fatalf("connections leaked: %d/%d", sa.ConnCount(), sb.ConnCount())
	}
}

func TestRTTEstimate(t *testing.T) {
	opts := DefaultOptions()
	k, sa, sb := testNet(100*units.Mbps, 5*time.Millisecond, opts)
	var conn *Conn
	k.Spawn("server", func(ctx *sim.Ctx) {
		l, _ := sb.Listen(80)
		c, err := l.Accept(ctx)
		if err != nil {
			return
		}
		for {
			if _, err := c.Read(ctx, units.MB); err != nil {
				return
			}
		}
	})
	k.Spawn("client", func(ctx *sim.Ctx) {
		c, err := sa.Dial(ctx, sb.Node().Addr(), 80)
		if err != nil {
			t.Error(err)
			return
		}
		conn = c
		for i := 0; i < 50; i++ {
			c.Write(ctx, units.KB)
			ctx.Sleep(20 * time.Millisecond)
		}
		c.Drain(ctx)
		c.Close()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	srtt := conn.Stats().SRTT
	// One-way 10 ms => RTT ~10 ms (5 ms each way) plus serialization.
	if srtt < 9*time.Millisecond || srtt > 15*time.Millisecond {
		t.Fatalf("SRTT = %v, want ~10ms", srtt)
	}
}

func TestEphemeralPortsAndConcurrentConns(t *testing.T) {
	k, sa, sb := testNet(100*units.Mbps, time.Millisecond, DefaultOptions())
	const nConns = 8
	accepted := 0
	k.Spawn("server", func(ctx *sim.Ctx) {
		l, _ := sb.Listen(80)
		for i := 0; i < nConns; i++ {
			c, err := l.Accept(ctx)
			if err != nil {
				return
			}
			accepted++
			_ = c // connections just sit
		}
	})
	for i := 0; i < nConns; i++ {
		k.Spawn("client", func(ctx *sim.Ctx) {
			if _, err := sa.Dial(ctx, sb.Node().Addr(), 80); err != nil {
				t.Error(err)
			}
		})
	}
	if err := k.RunUntil(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if accepted != nConns {
		t.Fatalf("accepted %d, want %d", accepted, nConns)
	}
}

func TestListenerClose(t *testing.T) {
	k, _, sb := testNet(10*units.Mbps, time.Millisecond, DefaultOptions())
	var acceptErr error
	k.Spawn("server", func(ctx *sim.Ctx) {
		l, _ := sb.Listen(80)
		ctx.SpawnChild("closer", func(c2 *sim.Ctx) {
			c2.Sleep(time.Second)
			l.Close()
		})
		_, acceptErr = l.Accept(ctx)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if acceptErr != ErrListenClosed {
		t.Fatalf("accept error = %v, want ErrListenClosed", acceptErr)
	}
}

func TestWriteAfterCloseFails(t *testing.T) {
	k, sa, sb := testNet(10*units.Mbps, time.Millisecond, DefaultOptions())
	var werr error
	k.Spawn("server", func(ctx *sim.Ctx) {
		l, _ := sb.Listen(80)
		l.Accept(ctx)
	})
	k.Spawn("client", func(ctx *sim.Ctx) {
		c, err := sa.Dial(ctx, sb.Node().Addr(), 80)
		if err != nil {
			t.Error(err)
			return
		}
		c.Close()
		werr = c.Write(ctx, units.KB)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if werr != ErrClosed {
		t.Fatalf("write after close = %v, want ErrClosed", werr)
	}
}

func TestDupListenFails(t *testing.T) {
	_, sa, _ := testNet(10*units.Mbps, 0, DefaultOptions())
	if _, err := sa.Listen(80); err != nil {
		t.Fatal(err)
	}
	if _, err := sa.Listen(80); err != ErrPortInUse {
		t.Fatalf("second listen = %v, want ErrPortInUse", err)
	}
}

func TestMsgMarkerAcrossSegments(t *testing.T) {
	// One 100 KB message spanning ~70 segments must deliver exactly
	// one marker, after all bytes.
	k, sa, sb := testNet(10*units.Mbps, time.Millisecond, DefaultOptions())
	var n units.ByteSize
	var obj any
	k.Spawn("server", func(ctx *sim.Ctx) {
		l, _ := sb.Listen(80)
		c, err := l.Accept(ctx)
		if err != nil {
			return
		}
		n, obj, _ = c.ReadMsg(ctx)
	})
	k.Spawn("client", func(ctx *sim.Ctx) {
		c, err := sa.Dial(ctx, sb.Node().Addr(), 80)
		if err != nil {
			t.Error(err)
			return
		}
		c.WriteMsg(ctx, 100*units.KB, "payload")
		c.Drain(ctx)
		c.Close()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if n != 100*units.KB || obj != "payload" {
		t.Fatalf("ReadMsg = %d/%v", n, obj)
	}
}
