// Package faults is a deterministic fault-injection subsystem for
// netsim networks: scheduled link flaps, router (node) failures, and
// windows of random per-link packet loss or corruption, all driven by
// the sim kernel so every run with the same seed replays the same
// fault sequence.
//
// A Scenario is built with a fluent API —
//
//	sc := faults.NewScenario("wan-flap").
//		LinkDown(20*time.Second, "edge1-core").
//		LinkUp(32*time.Second, "edge1-core")
//	sc.Apply(net)
//
// — or fetched from the registry by name (see Register/Build), which
// is how `cmd/garnet` and the chaos tests share canned scenarios.
// Faults reference links and nodes by name and resolve them at Apply
// time, so one scenario can run against any topology that has them.
package faults

import (
	"fmt"
	"sort"
	"time"

	"mpichgq/internal/metrics"
	"mpichgq/internal/netsim"
	"mpichgq/internal/sim"
	"mpichgq/internal/spans"
)

// Interned flight-recorder subjects for EvFaultInject, one per action
// kind.
const (
	actLinkDown    = "link-down"
	actLinkUp      = "link-up"
	actNodeDown    = "node-down"
	actNodeUp      = "node-up"
	actLossStart   = "loss-start"
	actLossEnd     = "loss-end"
	actCorruptDrop = "corrupt"
	actLossDrop    = "loss"
	actCtrlLoss    = "ctrl-loss"
	actCtrlLossEnd = "ctrl-loss-end"
	actCtrlCrash   = "ctrl-crash"
	actCtrlRestart = "ctrl-restart"
	actRankCrash   = "rank-crash"
	actRankRestart = "rank-restart"
)

// CtrlTarget is one domain's control-plane endpoint as the fault
// injector sees it: message loss on its control channel, and crash/
// restart of its resource-manager server. Implemented by
// ctrlplane.Plane targets; defined here so faults does not import
// ctrlplane.
type CtrlTarget interface {
	// SetCtrlLoss sets the control channel's per-message drop
	// probability (both directions); 0 restores a reliable channel.
	SetCtrlLoss(prob float64)
	// CtrlCrash kills the domain's RM server (in-flight and future
	// requests are silently dropped; RM state is lost).
	CtrlCrash()
	// CtrlRestart brings the RM server back, replaying its journal.
	CtrlRestart()
}

// CtrlResolver resolves control-plane targets by domain name at Apply
// time, the way links and nodes resolve against the network.
type CtrlResolver interface {
	// CtrlTarget returns the named domain's endpoint, or nil.
	CtrlTarget(name string) CtrlTarget
}

// RankTarget is one MPI rank's process as the fault injector sees it:
// abrupt crash (the process dies, its connections abort, peers observe
// MPI_ERRORS_RETURN-style typed errors) and restart (a fresh
// incarnation rejoins the job, resuming from its last checkpoint).
// Implemented by mpi.Job targets; defined here so faults does not
// import mpi.
type RankTarget interface {
	// RankCrash kills the rank's process immediately.
	RankCrash()
	// RankRestart brings a crashed rank back as a new incarnation.
	RankRestart()
}

// RankResolver resolves rank targets by task name ("rank-3") at Apply
// time, the way links and nodes resolve against the network.
type RankResolver interface {
	// RankTarget returns the named rank's endpoint, or nil.
	RankTarget(name string) RankTarget
}

// Targets bundles the non-network fault surfaces a scenario may act
// on. Either field may be nil when the scenario has no actions of
// that family.
type Targets struct {
	Ctrl  CtrlResolver
	Ranks RankResolver
}

// action is one scheduled fault event.
type action struct {
	at   time.Duration
	kind string
	// link or node name, depending on kind.
	target string
	// prob and until apply to loss/corruption windows.
	prob    float64
	until   time.Duration
	corrupt bool
}

// Scenario is an ordered set of scheduled fault actions.
type Scenario struct {
	name    string
	actions []action
}

// NewScenario returns an empty scenario with the given name.
func NewScenario(name string) *Scenario { return &Scenario{name: name} }

// Name returns the scenario's name.
func (s *Scenario) Name() string { return s.name }

// Len returns the number of scheduled actions.
func (s *Scenario) Len() int { return len(s.actions) }

// LinkDown schedules the named link to leave service at t.
func (s *Scenario) LinkDown(t time.Duration, link string) *Scenario {
	s.actions = append(s.actions, action{at: t, kind: actLinkDown, target: link})
	return s
}

// LinkUp schedules the named link to return to service at t.
func (s *Scenario) LinkUp(t time.Duration, link string) *Scenario {
	s.actions = append(s.actions, action{at: t, kind: actLinkUp, target: link})
	return s
}

// Flap schedules a down/up cycle on the named link.
func (s *Scenario) Flap(link string, down, up time.Duration) *Scenario {
	return s.LinkDown(down, link).LinkUp(up, link)
}

// NodeDown schedules a router failure at t: every link touching the
// named node leaves service.
func (s *Scenario) NodeDown(t time.Duration, node string) *Scenario {
	s.actions = append(s.actions, action{at: t, kind: actNodeDown, target: node})
	return s
}

// NodeUp schedules the named node's recovery at t: every link
// touching it returns to service.
func (s *Scenario) NodeUp(t time.Duration, node string) *Scenario {
	s.actions = append(s.actions, action{at: t, kind: actNodeUp, target: node})
	return s
}

// Loss schedules a window [from, to) of random packet loss on the
// named link: each packet arriving at either end is dropped with
// probability prob, drawn from the injection's deterministic RNG.
func (s *Scenario) Loss(link string, from, to time.Duration, prob float64) *Scenario {
	s.actions = append(s.actions, action{
		at: from, until: to, kind: actLossStart, target: link, prob: prob,
	})
	return s
}

// Corrupt schedules a window [from, to) of random packet corruption
// on the named link. A corrupted packet fails its checksum at the
// receiving interface and is dropped there; it differs from Loss only
// in how the drop is reported.
func (s *Scenario) Corrupt(link string, from, to time.Duration, prob float64) *Scenario {
	s.actions = append(s.actions, action{
		at: from, until: to, kind: actLossStart, target: link, prob: prob, corrupt: true,
	})
	return s
}

// CtrlLoss schedules a window [from, to) of control-message loss on
// the named domain's control channel: each request or reply is dropped
// with probability prob. Scenarios using control-plane actions must be
// applied with ApplyWith.
func (s *Scenario) CtrlLoss(domain string, from, to time.Duration, prob float64) *Scenario {
	s.actions = append(s.actions, action{
		at: from, until: to, kind: actCtrlLoss, target: domain, prob: prob,
	})
	return s
}

// CtrlCrash schedules the named domain's RM server to crash at t.
func (s *Scenario) CtrlCrash(t time.Duration, domain string) *Scenario {
	s.actions = append(s.actions, action{at: t, kind: actCtrlCrash, target: domain})
	return s
}

// CtrlRestart schedules the named domain's RM server to restart (and
// replay its journal) at t.
func (s *Scenario) CtrlRestart(t time.Duration, domain string) *Scenario {
	s.actions = append(s.actions, action{at: t, kind: actCtrlRestart, target: domain})
	return s
}

// RankCrash schedules the named MPI rank (task name, e.g. "rank-3") to
// fail at t. Scenarios using rank actions must be applied with
// ApplyTargets.
func (s *Scenario) RankCrash(t time.Duration, rank string) *Scenario {
	s.actions = append(s.actions, action{at: t, kind: actRankCrash, target: rank})
	return s
}

// RankRestart schedules the named crashed rank's recovery at t: a
// fresh incarnation rejoins the job and resumes from its last
// checkpoint.
func (s *Scenario) RankRestart(t time.Duration, rank string) *Scenario {
	s.actions = append(s.actions, action{at: t, kind: actRankRestart, target: rank})
	return s
}

// Injection is a scenario applied to one network: it tracks the
// scheduled timers and impairment filters so tests can inspect drop
// counts.
type Injection struct {
	net *netsim.Network
	k   *sim.Kernel
	rng *sim.RNG
	rec *metrics.Recorder
	tr  *spans.Tracer
	// trace groups every span of this scenario's actions, keyed by the
	// scenario name.
	trace spans.TraceID

	lossDrops    uint64
	corruptDrops uint64
}

// Trace returns the trace ID the injection's fault spans are recorded
// under.
func (in *Injection) Trace() spans.TraceID { return in.trace }

// instant records a zero-duration fault span at the current sim time.
func (in *Injection) instant(name, target string) {
	in.tr.Begin(in.trace, 0, name, target).End()
}

// LossDrops returns packets dropped by random-loss windows so far.
func (in *Injection) LossDrops() uint64 { return in.lossDrops }

// CorruptDrops returns packets dropped by corruption windows so far.
func (in *Injection) CorruptDrops() uint64 { return in.corruptDrops }

// Apply schedules every action of the scenario on net's kernel and
// returns the injection handle. It validates that every referenced
// link and node exists, so a typo fails fast instead of silently
// injecting nothing. Randomness is drawn from a dedicated RNG seeded
// from the kernel's, keeping fault draws independent of (and the run
// reproducible alongside) other stochastic components. Scenarios with
// control-plane actions must use ApplyWith.
func (s *Scenario) Apply(net *netsim.Network) (*Injection, error) {
	return s.ApplyWith(net, nil)
}

// ApplyWith is Apply plus a control-plane resolver for CtrlLoss /
// CtrlCrash / CtrlRestart actions (nil is allowed when the scenario
// has none).
func (s *Scenario) ApplyWith(net *netsim.Network, ctrl CtrlResolver) (*Injection, error) {
	return s.ApplyTargets(net, Targets{Ctrl: ctrl})
}

// ApplyTargets is Apply plus resolvers for every non-network fault
// family: control-plane actions resolve through t.Ctrl, rank crash/
// restart actions through t.Ranks. A nil resolver is allowed when the
// scenario has no actions of that family.
func (s *Scenario) ApplyTargets(net *netsim.Network, tg Targets) (*Injection, error) {
	ctrl := tg.Ctrl
	k := net.Kernel()
	in := &Injection{
		net:   net,
		k:     k,
		rng:   sim.NewRNG(k.RNG().Int63()),
		rec:   k.Metrics().Events(),
		tr:    k.Tracer(),
		trace: spans.DeriveTraceString(spans.NSFault, s.name),
	}
	// Sort by time (stable: same-time actions keep builder order) so
	// scheduling order is deterministic regardless of builder style.
	acts := make([]action, len(s.actions))
	copy(acts, s.actions)
	sort.SliceStable(acts, func(i, j int) bool { return acts[i].at < acts[j].at })
	for _, a := range acts {
		a := a
		switch a.kind {
		case actLinkDown, actLinkUp:
			l := net.Link(a.target)
			if l == nil {
				return nil, fmt.Errorf("faults: scenario %q: no link %q", s.name, a.target)
			}
			up := a.kind == actLinkUp
			span := "fault." + a.kind
			k.At(a.at, sim.PrioNormal, func() {
				in.rec.Emit(metrics.EvFaultInject, a.kind, 0, 0, 0)
				in.instant(span, a.target)
				l.SetUp(up)
			})
		case actNodeDown, actNodeUp:
			nd := net.Node(a.target)
			if nd == nil {
				return nil, fmt.Errorf("faults: scenario %q: no node %q", s.name, a.target)
			}
			up := a.kind == actNodeUp
			span := "fault." + a.kind
			k.At(a.at, sim.PrioNormal, func() {
				in.rec.Emit(metrics.EvFaultInject, a.kind, 0, 0, 0)
				in.instant(span, a.target)
				for _, iface := range nd.Ifaces() {
					iface.Link().SetUp(up)
				}
			})
		case actLossStart:
			l := net.Link(a.target)
			if l == nil {
				return nil, fmt.Errorf("faults: scenario %q: no link %q", s.name, a.target)
			}
			in.installImpairment(l, a)
		case actRankCrash, actRankRestart:
			if tg.Ranks == nil {
				return nil, fmt.Errorf("faults: scenario %q has rank actions; use ApplyTargets", s.name)
			}
			t := tg.Ranks.RankTarget(a.target)
			if t == nil {
				return nil, fmt.Errorf("faults: scenario %q: no rank %q", s.name, a.target)
			}
			crash := a.kind == actRankCrash
			span := "fault." + a.kind
			k.At(a.at, sim.PrioNormal, func() {
				in.rec.Emit(metrics.EvFaultInject, a.kind, 0, 0, 0)
				in.instant(span, a.target)
				if crash {
					t.RankCrash()
				} else {
					t.RankRestart()
				}
			})
		case actCtrlLoss, actCtrlCrash, actCtrlRestart:
			if ctrl == nil {
				return nil, fmt.Errorf("faults: scenario %q has control-plane actions; use ApplyWith", s.name)
			}
			t := ctrl.CtrlTarget(a.target)
			if t == nil {
				return nil, fmt.Errorf("faults: scenario %q: no control-plane domain %q", s.name, a.target)
			}
			switch a.kind {
			case actCtrlLoss:
				// The loss window is one span: Begin when the impairment
				// arms, End when it clears. Open-ended windows get an
				// instant marker instead (the span would never end).
				var wsp *spans.Span
				windowed := a.until > a.at
				k.At(a.at, sim.PrioNormal, func() {
					in.rec.Emit(metrics.EvFaultInject, actCtrlLoss, int64(a.prob*1e6), 0, 0)
					if windowed {
						wsp = in.tr.Begin(in.trace, 0, "fault.ctrl-loss", a.target)
						wsp.Int("prob_ppm", int64(a.prob*1e6))
					} else {
						in.instant("fault.ctrl-loss", a.target)
					}
					t.SetCtrlLoss(a.prob)
				})
				if windowed {
					k.At(a.until, sim.PrioNormal, func() {
						in.rec.Emit(metrics.EvFaultInject, actCtrlLossEnd, 0, 0, 0)
						wsp.End()
						t.SetCtrlLoss(0)
					})
				}
			case actCtrlCrash:
				k.At(a.at, sim.PrioNormal, func() {
					in.rec.Emit(metrics.EvFaultInject, actCtrlCrash, 0, 0, 0)
					in.instant("fault.ctrl-crash", a.target)
					t.CtrlCrash()
				})
			case actCtrlRestart:
				k.At(a.at, sim.PrioNormal, func() {
					in.rec.Emit(metrics.EvFaultInject, actCtrlRestart, 0, 0, 0)
					in.instant("fault.ctrl-restart", a.target)
					t.CtrlRestart()
				})
			}
		default:
			panic("faults: unknown action kind " + a.kind)
		}
	}
	return in, nil
}

// MustApply is Apply panicking on error, for experiment code whose
// scenarios are static.
func (s *Scenario) MustApply(net *netsim.Network) *Injection {
	in, err := s.Apply(net)
	if err != nil {
		panic(err)
	}
	return in
}

// MustApplyWith is ApplyWith panicking on error.
func (s *Scenario) MustApplyWith(net *netsim.Network, ctrl CtrlResolver) *Injection {
	in, err := s.ApplyWith(net, ctrl)
	if err != nil {
		panic(err)
	}
	return in
}

// MustApplyTargets is ApplyTargets panicking on error.
func (s *Scenario) MustApplyTargets(net *netsim.Network, tg Targets) *Injection {
	in, err := s.ApplyTargets(net, tg)
	if err != nil {
		panic(err)
	}
	return in
}

// installImpairment adds a random-drop ingress filter to both ends of
// l, active during [a.at, a.until). The filter is installed
// immediately (inactive) and armed/disarmed by scheduled events, since
// interfaces have no filter-removal API.
func (in *Injection) installImpairment(l *netsim.Link, a action) {
	imp := &impairment{in: in, prob: a.prob, corrupt: a.corrupt}
	// Wire loss must precede classification/policing, so prepend.
	l.A().InsertIngress(imp)
	l.B().InsertIngress(imp)
	startKind, endKind := actLossStart, actLossEnd
	spanName := "fault.loss"
	if a.corrupt {
		spanName = "fault.corrupt"
	}
	windowed := a.until > a.at
	in.k.At(a.at, sim.PrioNormal, func() {
		in.rec.Emit(metrics.EvFaultInject, startKind, int64(a.prob*1e6), 0, 0)
		if windowed {
			imp.span = in.tr.Begin(in.trace, 0, spanName, a.target)
			imp.span.Int("prob_ppm", int64(a.prob*1e6))
		} else {
			in.instant(spanName, a.target)
		}
		imp.active = true
	})
	if windowed {
		in.k.At(a.until, sim.PrioNormal, func() {
			in.rec.Emit(metrics.EvFaultInject, endKind, 0, 0, 0)
			imp.span.Int("drops", int64(imp.drops))
			imp.span.End()
			imp.active = false
		})
	}
}

// impairment is the ingress filter implementing loss/corruption
// windows.
type impairment struct {
	in      *Injection
	prob    float64
	corrupt bool
	active  bool
	// span covers the active window; drops counts packets this filter
	// killed during it (exported as a span attribute at window end).
	span  *spans.Span
	drops uint64
}

// Filter implements netsim.IngressFilter.
func (im *impairment) Filter(p *netsim.Packet) *netsim.Packet {
	if !im.active || im.in.rng.Float64() >= im.prob {
		return p
	}
	im.drops++
	if im.corrupt {
		im.in.corruptDrops++
		im.in.rec.Emit(metrics.EvFaultInject, actCorruptDrop, int64(p.Size), int64(p.DSCP), 0)
	} else {
		im.in.lossDrops++
		im.in.rec.Emit(metrics.EvFaultInject, actLossDrop, int64(p.Size), int64(p.DSCP), 0)
	}
	return nil
}
