package faults

import (
	"testing"
	"time"

	"mpichgq/internal/metrics"
	"mpichgq/internal/netsim"
	"mpichgq/internal/sim"
	"mpichgq/internal/units"
)

// line builds a — b — c with 10 Mb/s links.
func line(seed int64) (*sim.Kernel, *netsim.Network) {
	k := sim.New(seed)
	n := netsim.New(k)
	a, b, c := n.AddNode("a"), n.AddNode("b"), n.AddNode("c")
	n.Connect(a, b, 10*units.Mbps, time.Millisecond)
	n.Connect(b, c, 10*units.Mbps, time.Millisecond)
	n.ComputeRoutes()
	return k, n
}

func TestFlapSchedulesTransitions(t *testing.T) {
	k, n := line(1)
	sc := NewScenario("t").Flap("a-b", 2*time.Second, 5*time.Second)
	if _, err := sc.Apply(n); err != nil {
		t.Fatal(err)
	}
	l := n.Link("a-b")
	k.After(3*time.Second, func() {
		if l.Up() {
			t.Error("link should be down at t=3s")
		}
	})
	k.After(6*time.Second, func() {
		if !l.Up() {
			t.Error("link should be back up at t=6s")
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	var injects int
	for _, e := range k.Metrics().Events().Snapshot() {
		if e.Type == metrics.EvFaultInject {
			injects++
		}
	}
	if injects != 2 {
		t.Fatalf("fault-inject events = %d, want 2", injects)
	}
}

func TestNodeDownTakesAllLinks(t *testing.T) {
	k, n := line(1)
	sc := NewScenario("t").
		NodeDown(time.Second, "b").
		NodeUp(2*time.Second, "b")
	if _, err := sc.Apply(n); err != nil {
		t.Fatal(err)
	}
	k.After(1500*time.Millisecond, func() {
		if n.Link("a-b").Up() || n.Link("b-c").Up() {
			t.Error("both of b's links should be down")
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !n.Link("a-b").Up() || !n.Link("b-c").Up() {
		t.Fatal("links should be restored after NodeUp")
	}
}

func TestUnknownTargetsFailFast(t *testing.T) {
	_, n := line(1)
	if _, err := NewScenario("t").LinkDown(0, "nope").Apply(n); err == nil {
		t.Fatal("unknown link should fail Apply")
	}
	if _, err := NewScenario("t").NodeDown(0, "nope").Apply(n); err == nil {
		t.Fatal("unknown node should fail Apply")
	}
	if _, err := NewScenario("t").Loss("nope", 0, time.Second, 0.5).Apply(n); err == nil {
		t.Fatal("unknown loss link should fail Apply")
	}
}

// lossDrops runs a fixed UDP stream through a loss window and returns
// the injection's drop count.
func lossDrops(t *testing.T, seed int64, corrupt bool) (uint64, uint64) {
	t.Helper()
	k, n := line(seed)
	a, c := n.Node("a"), n.Node("c")
	c.Handle(netsim.ProtoUDP, netsim.HandlerFunc(func(p *netsim.Packet) {}))
	sc := NewScenario("t")
	if corrupt {
		sc.Corrupt("b-c", 0, 10*time.Second, 0.3)
	} else {
		sc.Loss("b-c", 0, 10*time.Second, 0.3)
	}
	in, err := sc.Apply(n)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		at := time.Duration(i) * 10 * time.Millisecond
		k.At(at, sim.PrioNormal, func() {
			a.Send(&netsim.Packet{Src: a.Addr(), Dst: c.Addr(), Proto: netsim.ProtoUDP, Size: 500})
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	return in.LossDrops(), in.CorruptDrops()
}

func TestLossWindowIsDeterministic(t *testing.T) {
	loss1, corr1 := lossDrops(t, 7, false)
	loss2, corr2 := lossDrops(t, 7, false)
	if loss1 != loss2 {
		t.Fatalf("same seed, different loss counts: %d vs %d", loss1, loss2)
	}
	if corr1 != 0 || corr2 != 0 {
		t.Fatal("loss window must not report corruption drops")
	}
	// ~30% of 200 packets; allow a wide band but reject degenerate
	// filters that drop nothing or everything.
	if loss1 < 20 || loss1 > 120 {
		t.Fatalf("loss drops = %d, outside plausible band for p=0.3", loss1)
	}
}

func TestCorruptionCountsSeparately(t *testing.T) {
	loss, corr := lossDrops(t, 7, true)
	if loss != 0 {
		t.Fatal("corruption window must not report loss drops")
	}
	if corr < 20 || corr > 120 {
		t.Fatalf("corrupt drops = %d, outside plausible band for p=0.3", corr)
	}
}

func TestRegistry(t *testing.T) {
	sc, ok := Build("wan-flap")
	if !ok || sc.Len() != 2 {
		t.Fatalf("wan-flap = %v (ok=%v), want 2-action scenario", sc, ok)
	}
	if _, ok := Build("nope"); ok {
		t.Fatal("unknown scenario should not build")
	}
	names := Names()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("names not sorted: %v", names)
		}
	}
}

func TestRandomScenarioDeterministic(t *testing.T) {
	links := []string{"a-b", "b-c"}
	s1 := RandomScenario(sim.NewRNG(42), links, 8, time.Minute)
	s2 := RandomScenario(sim.NewRNG(42), links, 8, time.Minute)
	if len(s1.actions) != len(s2.actions) {
		t.Fatalf("action counts differ: %d vs %d", len(s1.actions), len(s2.actions))
	}
	for i := range s1.actions {
		if s1.actions[i] != s2.actions[i] {
			t.Fatalf("action %d differs: %+v vs %+v", i, s1.actions[i], s2.actions[i])
		}
	}
	// All faults must be repaired by the horizon.
	for _, a := range s1.actions {
		if a.at > time.Minute || a.until > time.Minute {
			t.Fatalf("action extends past horizon: %+v", a)
		}
	}
}
