package faults_test

import (
	"fmt"
	"testing"
	"time"

	gq "mpichgq/internal/core"
	"mpichgq/internal/experiments"
	"mpichgq/internal/faults"
	"mpichgq/internal/garnet"
	"mpichgq/internal/mpi"
	"mpichgq/internal/sim"
	"mpichgq/internal/tcpsim"
	"mpichgq/internal/trafficgen"
	"mpichgq/internal/units"
)

// chaosResult is what one randomized soak run reports for invariant
// checking.
type chaosResult struct {
	recvBytes  units.ByteSize // total premium payload received
	finalBytes units.ByteSize // received in the settle window after faults end
	repairs    int
	allActive  bool // every premium reservation Active at the end
}

// chaosRun drives a premium MPI flow (with self-healing watchdog)
// under blaster contention through a randomized fault scenario, then
// lets the network settle and reports the outcome. The scenario is
// drawn from its own RNG so a fixed seed replays exactly.
//
// Failures report through t.Error (goroutine-safe), never t.Fatal:
// the soak fans runs out across workers via experiments.Sweep, and
// FailNow must only be called from the test goroutine.
func chaosRun(t *testing.T, seed int64, nFaults int, horizon, settle time.Duration) chaosResult {
	const target = 10 * units.Mbps
	const msg = 25 * units.KB
	dur := horizon + settle
	tb := garnet.New(seed)
	links := []string{"edge1-core", "core-edge2", "prem-src-edge1"}
	sc := faults.RandomScenario(sim.NewRNG(seed*1000+7), links, nFaults, horizon)
	if _, err := sc.Apply(tb.Net); err != nil {
		t.Error(err)
		return chaosResult{}
	}
	bl := &trafficgen.UDPBlaster{Rate: 120 * units.Mbps, Jitter: 0.1}
	if err := bl.Run(tb.CompSrc, tb.CompDst, 9000); err != nil {
		t.Error(err)
		return chaosResult{}
	}
	job := tb.NewMPIPair(tcpsim.DefaultOptions(), mpi.JobOptions{EagerThreshold: units.MB})
	agent := gq.NewAgent(tb.Gara, job)
	var res chaosResult
	var wd *gq.Watchdog
	var sender *mpi.Rank
	var senderComm *mpi.Comm
	job.Start(func(ctx *sim.Ctx, r *mpi.Rank) {
		pc, err := r.PairComm(ctx, 1-r.ID())
		if err != nil {
			t.Error(err)
			return
		}
		peer := 1 - r.RankIn(pc)
		if r.ID() == 0 {
			sender, senderComm = r, pc
			attr := &gq.QosAttribute{Class: gq.Premium, Bandwidth: target}
			if err := r.AttrPut(pc, agent.Keyval(), attr); err != nil {
				t.Error(err)
				return
			}
			w, err := agent.NewWatchdog(r, pc, target)
			if err != nil {
				t.Error(err)
				return
			}
			wd = w
			ctx.SpawnChild("watchdog", func(wctx *sim.Ctx) {
				w.Run(wctx, 250*time.Millisecond, dur)
			})
			gap := target.TimeToSend(msg)
			for ctx.Now() < dur {
				if err := r.Send(ctx, pc, peer, 0, msg, nil); err != nil {
					return
				}
				ctx.Sleep(gap)
			}
			return
		}
		for {
			m, err := r.Recv(ctx, pc, peer, 0)
			if err != nil {
				return
			}
			res.recvBytes += m.Len
			if ctx.Now() >= horizon+settle/2 {
				res.finalBytes += m.Len
			}
		}
	})
	// Invariant: the kernel never deadlocks or errors mid-chaos.
	if err := tb.K.RunUntil(dur); err != nil {
		t.Errorf("seed %d: kernel error under chaos: %v", seed, err)
		return chaosResult{}
	}
	res.repairs = wd.Repairs() + wd.Upgrades()
	// Invariant: after the last fault is repaired the agent converges
	// back to a fully Active premium binding.
	if b, ok := agent.Binding(sender, senderComm); ok {
		res.allActive = true
		for _, r := range b.Reservations {
			if r.State().String() != "active" {
				res.allActive = false
			}
		}
	}
	// Invariant: reservation accounting is conserved — after releasing
	// everything, no link direction retains committed EF capacity.
	agent.ReleaseAll()
	now := tb.K.Now()
	for _, l := range tb.Net.Links() {
		if u := tb.NetRM.Utilization(l, now); u != 0 {
			t.Errorf("seed %d: link %s retains EF commitment %v after release",
				seed, l.Name(), u)
		}
	}
	return res
}

// TestChaosSoak sweeps randomized fault scenarios and asserts the
// self-healing invariants hold for every seed. -short runs a reduced
// sweep for CI; the full run covers more seeds and a longer horizon.
func TestChaosSoak(t *testing.T) {
	seeds := []int64{1, 2, 3, 4, 5}
	nFaults, horizon, settle := 6, 25*time.Second, 15*time.Second
	if testing.Short() {
		seeds = []int64{1, 2}
		nFaults, horizon, settle = 3, 12*time.Second, 8*time.Second
	}
	// The runs fan out across workers (each on its own kernel), and
	// the per-seed assertions then run sequentially in seed order —
	// same invariants and output order as the old sequential sweep.
	results := experiments.Sweep(0, len(seeds), func(i int) chaosResult {
		return chaosRun(t, seeds[i], nFaults, horizon, settle)
	})
	for i, res := range results {
		res := res
		t.Run(fmt.Sprintf("seed%d", seeds[i]), func(t *testing.T) {
			if res.recvBytes == 0 {
				t.Fatal("premium flow made no progress under chaos")
			}
			if !res.allActive {
				t.Fatal("premium binding did not converge to Active after final repair")
			}
			// The settle window is fault-free; a converged agent must
			// be moving real traffic again.
			rate := units.RateOf(res.finalBytes, settle/2)
			if rate < 5*units.Mbps {
				t.Fatalf("post-chaos goodput = %v, want at least half the 10 Mb/s target", rate)
			}
		})
	}
}

// TestChaosDeterministic replays one seed and requires bit-identical
// traffic and repair outcomes.
func TestChaosDeterministic(t *testing.T) {
	nFaults, horizon, settle := 3, 12*time.Second, 8*time.Second
	a := chaosRun(t, 9, nFaults, horizon, settle)
	b := chaosRun(t, 9, nFaults, horizon, settle)
	if a != b {
		t.Fatalf("same seed, different outcomes:\n  %+v\n  %+v", a, b)
	}
}
