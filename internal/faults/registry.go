package faults

import (
	"math"
	"sort"
	"time"

	"mpichgq/internal/sim"
)

// registry maps scenario names to builders. Builders (not instances)
// are registered so each Build returns a fresh scenario.
var registry = map[string]func() *Scenario{}

// Register adds a named scenario builder. Duplicate names panic:
// scenarios are registered at init time and a collision is a bug.
func Register(name string, build func() *Scenario) {
	if _, dup := registry[name]; dup {
		panic("faults: duplicate scenario " + name)
	}
	//lint:ignore shardsafety Register is only called from init functions, before any kernel exists; the registry is read-only for the rest of the process
	registry[name] = build
}

// Build returns a fresh instance of the named scenario, or false.
func Build(name string) (*Scenario, bool) {
	b, ok := registry[name]
	if !ok {
		return nil, false
	}
	return b(), true
}

// Names returns the registered scenario names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Canned scenarios against the GARNET testbed's link and node names
// (package garnet). Times are virtual seconds from the start of the
// run; experiments that scale time build their own scenarios instead.
func init() {
	Register("wan-flap", func() *Scenario {
		return NewScenario("wan-flap").
			Flap("edge1-core", 20*time.Second, 32*time.Second)
	})
	Register("core-outage", func() *Scenario {
		return NewScenario("core-outage").
			NodeDown(20*time.Second, "core").
			NodeUp(32*time.Second, "core")
	})
	Register("lossy-wan", func() *Scenario {
		return NewScenario("lossy-wan").
			Loss("edge1-core", 10*time.Second, 40*time.Second, 0.02)
	})
}

// RankMTBF builds a randomized rank-failure scenario: each named rank
// fails at exponentially distributed intervals with the given mean
// time between failures, and restarts repair later. Failures whose
// repair would land past horizon are not scheduled, so the job always
// ends with every scheduled crash repaired. Draws come from rng only,
// so a fixed seed replays the same failure schedule. Apply with
// Scenario.ApplyTargets and a RankResolver (an mpi.Job).
func RankMTBF(rng *sim.RNG, ranks []string, mtbf, repair, horizon time.Duration) *Scenario {
	s := NewScenario("rank-mtbf")
	if mtbf <= 0 {
		return s
	}
	for _, rank := range ranks {
		t := time.Duration(0)
		for {
			// Exponential inter-failure gap with mean mtbf. 1-U keeps the
			// argument in (0,1].
			gap := time.Duration(-float64(mtbf) * math.Log(1-rng.Float64()))
			t += gap
			if t+repair >= horizon {
				break
			}
			s.RankCrash(t, rank)
			s.RankRestart(t+repair, rank)
			t += repair
		}
	}
	return s
}

// RandomScenario builds a randomized chaos scenario over the given
// links: n fault cycles — link flaps, loss windows, corruption
// windows — placed in [0, horizon) and all repaired by horizon, so
// the network always ends healthy. Draws come from rng only, so a
// fixed seed replays the same scenario.
func RandomScenario(rng *sim.RNG, links []string, n int, horizon time.Duration) *Scenario {
	s := NewScenario("random")
	for i := 0; i < n; i++ {
		link := links[rng.Intn(len(links))]
		start := time.Duration(rng.Float64() * 0.7 * float64(horizon))
		dur := time.Duration((0.05 + 0.15*rng.Float64()) * float64(horizon))
		end := start + dur
		if end > horizon {
			end = horizon
		}
		switch rng.Intn(3) {
		case 0:
			s.Flap(link, start, end)
		case 1:
			s.Loss(link, start, end, 0.01+0.09*rng.Float64())
		case 2:
			s.Corrupt(link, start, end, 0.01+0.09*rng.Float64())
		}
	}
	return s
}
