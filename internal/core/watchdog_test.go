package gq_test

import (
	gq "mpichgq/internal/core"
	"testing"
	"time"

	"mpichgq/internal/faults"
	"mpichgq/internal/garnet"
	"mpichgq/internal/mpi"
	"mpichgq/internal/sim"
	"mpichgq/internal/spans"
	"mpichgq/internal/tcpsim"
	"mpichgq/internal/trafficgen"
	"mpichgq/internal/units"
)

// healingRun streams a 10 Mb/s premium flow under blaster contention
// through a bottleneck flap [downAt, upAt), with or without the
// self-healing watchdog, and returns the payload bytes received after
// measureFrom plus the watchdog (nil when heal is false). mkGate, when
// non-nil, builds a RepairGate for the watchdog from the testbed's
// kernel (the control-plane breaker hookup).
func healingRun(t *testing.T, heal bool, downAt, upAt, measureFrom, dur time.Duration,
	mkGate func(*sim.Kernel) gq.RepairGate) (units.ByteSize, *gq.Watchdog) {
	t.Helper()
	const target = 10 * units.Mbps
	const msg = 25 * units.KB
	tb := garnet.New(1)
	faults.NewScenario("flap").Flap("edge1-core", downAt, upAt).MustApply(tb.Net)
	bl := &trafficgen.UDPBlaster{Rate: 160 * units.Mbps, Jitter: 0.1}
	if err := bl.Run(tb.CompSrc, tb.CompDst, 9000); err != nil {
		t.Fatal(err)
	}
	job := tb.NewMPIPair(tcpsim.DefaultOptions(), mpi.JobOptions{EagerThreshold: units.MB})
	agent := gq.NewAgent(tb.Gara, job)
	var lateBytes units.ByteSize
	var w *gq.Watchdog
	job.Start(func(ctx *sim.Ctx, r *mpi.Rank) {
		pc, err := r.PairComm(ctx, 1-r.ID())
		if err != nil {
			t.Error(err)
			return
		}
		peer := 1 - r.RankIn(pc)
		if r.ID() == 0 {
			attr := &gq.QosAttribute{Class: gq.Premium, Bandwidth: target}
			if err := r.AttrPut(pc, agent.Keyval(), attr); err != nil {
				t.Error(err)
				return
			}
			if heal {
				wd, err := agent.NewWatchdog(r, pc, target)
				if err != nil {
					t.Error(err)
					return
				}
				if mkGate != nil {
					wd.Gate = mkGate(tb.K)
				}
				w = wd
				ctx.SpawnChild("watchdog", func(wctx *sim.Ctx) {
					wd.Run(wctx, 250*time.Millisecond, dur)
				})
			}
			gap := target.TimeToSend(msg)
			for ctx.Now() < dur {
				if err := r.Send(ctx, pc, peer, 0, msg, nil); err != nil {
					return
				}
				ctx.Sleep(gap)
			}
			return
		}
		for {
			m, err := r.Recv(ctx, pc, peer, 0)
			if err != nil {
				return
			}
			if ctx.Now() >= measureFrom {
				lateBytes += m.Len
			}
		}
	})
	if err := tb.K.RunUntil(dur); err != nil {
		t.Fatal(err)
	}
	return lateBytes, w
}

func TestWatchdogRepairsAfterFlap(t *testing.T) {
	const downAt, upAt = 6 * time.Second, 10 * time.Second
	const measureFrom, dur = 12 * time.Second, 20 * time.Second
	window := dur - measureFrom
	healed, w := healingRun(t, true, downAt, upAt, measureFrom, dur, nil)
	plain, _ := healingRun(t, false, downAt, upAt, measureFrom, dur, nil)
	healedRate := units.RateOf(healed, window)
	plainRate := units.RateOf(plain, window)
	if w.Repairs()+w.Upgrades() < 1 {
		t.Fatalf("watchdog made no repairs (repairs=%d upgrades=%d)", w.Repairs(), w.Fallbacks())
	}
	// Post-recovery the healed flow must be near its 10 Mb/s target
	// again; the unhealed one lost enforcement when the reservation
	// degraded and stays crushed by the blaster.
	if healedRate < 7*units.Mbps {
		t.Fatalf("healed post-recovery rate = %v, want near 10 Mb/s", healedRate)
	}
	if float64(plainRate) > 0.5*float64(healedRate) {
		t.Fatalf("healing ineffective: healed %v vs unhealed %v", healedRate, plainRate)
	}
}

// TestWatchdogRebindRacesRepairEpisode pins the race between the
// rank-restart observer and an in-flight repair episode. A bottleneck
// flap degrades the premium reservation and puts the watchdog into
// repairLoop (failing wd.attempt spans on the backoff schedule); while
// that episode is still open, the peer rank crashes and restarts, so
// RankRestarted sets the rebind flag mid-episode. The contract: the
// episode resolves on its own terms first, and the rebind is processed
// exactly once afterward — neither lost (the flag survives the
// episode) nor doubled (one restart, one rebuild).
func TestWatchdogRebindRacesRepairEpisode(t *testing.T) {
	const (
		downAt, upAt       = 2 * time.Second, 8 * time.Second
		crashAt, restartAt = 4 * time.Second, 5 * time.Second
		dur                = 12 * time.Second
	)
	const target = 10 * units.Mbps
	const msg = 25 * units.KB
	tb := garnet.New(1)
	tb.K.Tracer().SetCapacity(1 << 16)
	tb.K.Tracer().SetEnabled(true)
	faults.NewScenario("flap").Flap("edge1-core", downAt, upAt).MustApply(tb.Net)
	job := tb.NewMPIPair(tcpsim.DefaultOptions(), mpi.JobOptions{EagerThreshold: units.MB})
	agent := gq.NewAgent(tb.Gara, job)

	var w *gq.Watchdog
	// The pair comm outlives rank incarnations (the figure H idiom):
	// the restarted peer rejoins the same handle.
	var comms [2]*mpi.Comm
	job.Start(func(ctx *sim.Ctx, r *mpi.Rank) {
		id := r.ID()
		if r.Epoch() == 0 {
			c, err := r.PairComm(ctx, 1-id)
			if err != nil {
				t.Error(err)
				return
			}
			comms[id] = c
		}
		pc := comms[id]
		peer := 1 - r.RankIn(pc)
		if id == 0 {
			attr := &gq.QosAttribute{Class: gq.Premium, Bandwidth: target}
			if err := r.AttrPut(pc, agent.Keyval(), attr); err != nil {
				t.Error(err)
				return
			}
			wd, err := agent.NewWatchdog(r, pc, target)
			if err != nil {
				t.Error(err)
				return
			}
			// A dense backoff keeps wd.attempt spans flowing across the
			// whole outage, so the restart provably lands between two
			// failed attempts of the same episode.
			wd.Backoff = gq.NewBackoff(sim.NewRNG(tb.K.RNG().Int63()),
				250*time.Millisecond, time.Second)
			w = wd
			ctx.SpawnChild("watchdog", func(wctx *sim.Ctx) {
				wd.Run(wctx, 250*time.Millisecond, dur)
			})
			gap := target.TimeToSend(msg)
			for ctx.Now() < dur {
				if err := r.Send(ctx, pc, peer, 0, msg, nil); err != nil {
					ctx.Sleep(100 * time.Millisecond)
					continue
				}
				ctx.Sleep(gap)
			}
			return
		}
		for ctx.Now() < dur && !r.Crashed() {
			if _, err := r.Recv(ctx, pc, peer, 0); err != nil {
				ctx.Sleep(100 * time.Millisecond)
			}
		}
	})
	tb.K.At(crashAt, sim.PrioNormal, func() { job.CrashRank(1) })
	tb.K.At(restartAt, sim.PrioNormal, func() { job.RestartRank(1, nil) })
	if err := tb.K.RunUntil(dur); err != nil {
		t.Fatal(err)
	}

	// Counters: one resolved repair episode, one rebind — in that order,
	// with the rebind neither dropped nor processed twice.
	if got := w.Repairs() + w.Upgrades(); got != 1 {
		t.Fatalf("resolved episodes = %d (repairs=%d upgrades=%d), want exactly 1",
			got, w.Repairs(), w.Upgrades())
	}
	if w.Rebinds() != 1 {
		t.Fatalf("rebinds = %d, want exactly 1 (flag lost or double-processed)", w.Rebinds())
	}

	// Spans carry the ordering proof. The single outage must bracket the
	// restart (the race actually happened mid-episode) and resolve as
	// breached; the single rebind must begin only after the outage ends.
	tr := tb.K.Tracer()
	outages := tr.Query(spans.Filter{Name: "wd.outage"})
	if len(outages) != 1 {
		t.Fatalf("wd.outage spans = %d, want 1", len(outages))
	}
	outage := outages[0]
	if outage.Status != spans.StatusBreached {
		t.Fatalf("outage status = %v, want breached (resolved episode)", outage.Status)
	}
	if outage.Start >= restartAt || outage.Start+outage.Dur <= restartAt {
		t.Fatalf("restart at %v did not land inside the episode [%v, %v)",
			restartAt, outage.Start, outage.Start+outage.Dur)
	}
	attempts := tr.Query(spans.Filter{Trace: outage.Trace, Name: "wd.attempt"})
	before := 0
	for _, a := range attempts {
		if a.Start < restartAt {
			before++
		}
	}
	if len(attempts) == 0 || before == 0 || before == len(attempts) {
		t.Fatalf("wd.attempt spans do not straddle the restart: %d total, %d before %v",
			len(attempts), before, restartAt)
	}
	rebinds := tr.Query(spans.Filter{Name: "wd.rebind"})
	if len(rebinds) != 1 {
		t.Fatalf("wd.rebind spans = %d, want 1", len(rebinds))
	}
	if rebinds[0].Start < outage.Start+outage.Dur {
		t.Fatalf("rebind began at %v, inside the still-open episode ending %v",
			rebinds[0].Start, outage.Start+outage.Dur)
	}
	if rebinds[0].Status != spans.StatusOK {
		t.Fatalf("rebind status = %v, want ok (rebuild must succeed post-flap)", rebinds[0].Status)
	}
}

func TestWatchdogFallsBackThenUpgrades(t *testing.T) {
	if testing.Short() {
		t.Skip("long outage run")
	}
	// An outage long enough that FallbackAfter repair attempts fail:
	// the watchdog demotes the flow to best effort, keeps probing at
	// the capped interval, and upgrades once the link returns.
	const downAt, upAt = 6 * time.Second, 16 * time.Second
	const measureFrom, dur = 19 * time.Second, 26 * time.Second
	healed, w := healingRun(t, true, downAt, upAt, measureFrom, dur, nil)
	if w.Fallbacks() != 1 {
		t.Fatalf("fallbacks = %d, want 1", w.Fallbacks())
	}
	if w.Upgrades() != 1 {
		t.Fatalf("upgrades = %d, want 1", w.Upgrades())
	}
	rate := units.RateOf(healed, dur-measureFrom)
	if rate < 7*units.Mbps {
		t.Fatalf("post-upgrade rate = %v, want near 10 Mb/s", rate)
	}
}
