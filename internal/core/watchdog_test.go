package gq

import (
	"testing"
	"time"

	"mpichgq/internal/faults"
	"mpichgq/internal/garnet"
	"mpichgq/internal/mpi"
	"mpichgq/internal/sim"
	"mpichgq/internal/tcpsim"
	"mpichgq/internal/trafficgen"
	"mpichgq/internal/units"
)

// healingRun streams a 10 Mb/s premium flow under blaster contention
// through a bottleneck flap [downAt, upAt), with or without the
// self-healing watchdog, and returns the payload bytes received after
// measureFrom plus the watchdog (nil when heal is false). mkGate, when
// non-nil, builds a RepairGate for the watchdog from the testbed's
// kernel (the control-plane breaker hookup).
func healingRun(t *testing.T, heal bool, downAt, upAt, measureFrom, dur time.Duration,
	mkGate func(*sim.Kernel) RepairGate) (units.ByteSize, *Watchdog) {
	t.Helper()
	const target = 10 * units.Mbps
	const msg = 25 * units.KB
	tb := garnet.New(1)
	faults.NewScenario("flap").Flap("edge1-core", downAt, upAt).MustApply(tb.Net)
	bl := &trafficgen.UDPBlaster{Rate: 160 * units.Mbps, Jitter: 0.1}
	if err := bl.Run(tb.CompSrc, tb.CompDst, 9000); err != nil {
		t.Fatal(err)
	}
	job := tb.NewMPIPair(tcpsim.DefaultOptions(), mpi.JobOptions{EagerThreshold: units.MB})
	agent := NewAgent(tb.Gara, job)
	var lateBytes units.ByteSize
	var w *Watchdog
	job.Start(func(ctx *sim.Ctx, r *mpi.Rank) {
		pc, err := r.PairComm(ctx, 1-r.ID())
		if err != nil {
			t.Error(err)
			return
		}
		peer := 1 - r.RankIn(pc)
		if r.ID() == 0 {
			attr := &QosAttribute{Class: Premium, Bandwidth: target}
			if err := r.AttrPut(pc, agent.Keyval(), attr); err != nil {
				t.Error(err)
				return
			}
			if heal {
				wd, err := agent.NewWatchdog(r, pc, target)
				if err != nil {
					t.Error(err)
					return
				}
				if mkGate != nil {
					wd.Gate = mkGate(tb.K)
				}
				w = wd
				ctx.SpawnChild("watchdog", func(wctx *sim.Ctx) {
					wd.Run(wctx, 250*time.Millisecond, dur)
				})
			}
			gap := target.TimeToSend(msg)
			for ctx.Now() < dur {
				if err := r.Send(ctx, pc, peer, 0, msg, nil); err != nil {
					return
				}
				ctx.Sleep(gap)
			}
			return
		}
		for {
			m, err := r.Recv(ctx, pc, peer, 0)
			if err != nil {
				return
			}
			if ctx.Now() >= measureFrom {
				lateBytes += m.Len
			}
		}
	})
	if err := tb.K.RunUntil(dur); err != nil {
		t.Fatal(err)
	}
	return lateBytes, w
}

func TestWatchdogRepairsAfterFlap(t *testing.T) {
	const downAt, upAt = 6 * time.Second, 10 * time.Second
	const measureFrom, dur = 12 * time.Second, 20 * time.Second
	window := dur - measureFrom
	healed, w := healingRun(t, true, downAt, upAt, measureFrom, dur, nil)
	plain, _ := healingRun(t, false, downAt, upAt, measureFrom, dur, nil)
	healedRate := units.RateOf(healed, window)
	plainRate := units.RateOf(plain, window)
	if w.Repairs()+w.Upgrades() < 1 {
		t.Fatalf("watchdog made no repairs (repairs=%d upgrades=%d)", w.Repairs(), w.Fallbacks())
	}
	// Post-recovery the healed flow must be near its 10 Mb/s target
	// again; the unhealed one lost enforcement when the reservation
	// degraded and stays crushed by the blaster.
	if healedRate < 7*units.Mbps {
		t.Fatalf("healed post-recovery rate = %v, want near 10 Mb/s", healedRate)
	}
	if float64(plainRate) > 0.5*float64(healedRate) {
		t.Fatalf("healing ineffective: healed %v vs unhealed %v", healedRate, plainRate)
	}
}

func TestWatchdogFallsBackThenUpgrades(t *testing.T) {
	if testing.Short() {
		t.Skip("long outage run")
	}
	// An outage long enough that FallbackAfter repair attempts fail:
	// the watchdog demotes the flow to best effort, keeps probing at
	// the capped interval, and upgrades once the link returns.
	const downAt, upAt = 6 * time.Second, 16 * time.Second
	const measureFrom, dur = 19 * time.Second, 26 * time.Second
	healed, w := healingRun(t, true, downAt, upAt, measureFrom, dur, nil)
	if w.Fallbacks() != 1 {
		t.Fatalf("fallbacks = %d, want 1", w.Fallbacks())
	}
	if w.Upgrades() != 1 {
		t.Fatalf("upgrades = %d, want 1", w.Upgrades())
	}
	rate := units.RateOf(healed, dur-measureFrom)
	if rate < 7*units.Mbps {
		t.Fatalf("post-upgrade rate = %v, want near 10 Mb/s", rate)
	}
}
