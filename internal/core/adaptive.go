package gq

import (
	"fmt"
	"time"

	"mpichgq/internal/mpi"
	"mpichgq/internal/nws"
	"mpichgq/internal/sim"
	"mpichgq/internal/units"
)

// Adapter implements the paper's §5.4 proposal to "compute the
// 'correct' token bucket size dynamically, by using
// application-specific information and perhaps also dynamic network
// performance data": an NWS monitor watches the flow's achieved
// throughput and loss, and a control loop grows the reservation (and
// with it the bucket) while the application's target is not met, and
// decays it when the flow is over-provisioned — since an oversized
// reservation "is also expending scarce system resources".
type Adapter struct {
	agent *Agent
	rank  *mpi.Rank
	comm  *mpi.Comm
	// Target is the application's actual desired payload rate.
	Target units.BitRate
	// GrowFactor scales the reservation up on each starved interval
	// (default 1.15); DecayFactor scales it down when comfortably
	// over-provisioned (default 0.95).
	GrowFactor, DecayFactor float64
	// Headroom is the over-provisioning ratio above which decay
	// kicks in (default 1.3).
	Headroom float64

	monitor *nws.Monitor
	stopped bool

	adjustments int
}

// NewAdapter prepares adaptation of rank r's binding on c toward
// target. The binding must already exist (AttrPut first).
func (a *Agent) NewAdapter(r *mpi.Rank, c *mpi.Comm, target units.BitRate) (*Adapter, error) {
	if _, ok := a.Binding(r, c); !ok {
		return nil, fmt.Errorf("gq: no QoS binding to adapt on this communicator")
	}
	return &Adapter{
		agent:      a,
		rank:       r,
		comm:       c,
		Target:     target,
		GrowFactor: 1.15, DecayFactor: 0.95, Headroom: 1.3,
	}, nil
}

// Run executes the control loop in the calling process until dur
// elapses (or Stop). interval is both the NWS sampling period and the
// adjustment period.
func (ad *Adapter) Run(ctx *sim.Ctx, interval, dur time.Duration) {
	peer := ad.peerRank()
	conn := ad.rank.Conn(peer)
	if conn == nil {
		return
	}
	k := ad.agent.g.Kernel()
	ad.monitor = nws.Attach(k, conn.Conn(), interval)
	defer ad.monitor.Stop()
	deadline := k.Now() + dur
	for k.Now() < deadline && !ad.stopped {
		ctx.Sleep(interval)
		ad.step()
	}
}

// peerRank returns the world rank of the other endpoint of a
// two-party communicator.
func (ad *Adapter) peerRank() int {
	for _, g := range ad.comm.Group() {
		if g != ad.rank.ID() {
			return g
		}
	}
	return -1
}

// step makes one control decision.
func (ad *Adapter) step() {
	b, ok := ad.agent.Binding(ad.rank, ad.comm)
	if !ok || ad.monitor.Throughput.Len() < 2 {
		return
	}
	achieved := ad.monitor.ThroughputForecast()
	loss := ad.monitor.LossForecast()
	attr := b.Attr
	switch {
	case float64(achieved) < 0.95*float64(ad.Target) && loss > 0:
		// Starved and dropping: the reservation/bucket is too small.
		attr.Bandwidth = units.BitRate(float64(attr.Bandwidth) * ad.GrowFactor)
		if err := ad.agent.Apply(ad.rank, ad.comm, &attr); err == nil {
			ad.adjustments++
		}
		// On admission failure, keep the current reservation.
	case float64(attr.Bandwidth) > ad.Headroom*float64(ad.Target) && loss == 0:
		// Comfortably over-provisioned: release scarce EF capacity.
		next := units.BitRate(float64(attr.Bandwidth) * ad.DecayFactor)
		if float64(next) < float64(ad.Target)*1.06 {
			next = units.BitRate(float64(ad.Target) * 1.06)
		}
		if next < attr.Bandwidth {
			attr.Bandwidth = next
			if err := ad.agent.Apply(ad.rank, ad.comm, &attr); err == nil {
				ad.adjustments++
			}
		}
	}
}

// Adjustments returns how many reservation changes the adapter made.
func (ad *Adapter) Adjustments() int { return ad.adjustments }

// Current returns the binding's current reserved bandwidth.
func (ad *Adapter) Current() (units.BitRate, bool) {
	b, ok := ad.agent.Binding(ad.rank, ad.comm)
	if !ok {
		return 0, false
	}
	return b.Attr.Bandwidth, true
}

// Stop ends the control loop at the next interval.
func (ad *Adapter) Stop() { ad.stopped = true }
