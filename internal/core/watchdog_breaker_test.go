// Integration between the self-healing watchdog and the control-plane
// circuit breaker. Lives in an external test package: ctrlplane imports
// core (for Backoff and RepairGate), so wiring a real Breaker into a
// Watchdog can only be tested from outside package gq.
package gq_test

import (
	"testing"
	"time"

	gq "mpichgq/internal/core"
	"mpichgq/internal/ctrlplane"
	"mpichgq/internal/faults"
	"mpichgq/internal/garnet"
	"mpichgq/internal/metrics"
	"mpichgq/internal/mpi"
	"mpichgq/internal/sim"
	"mpichgq/internal/tcpsim"
	"mpichgq/internal/trafficgen"
	"mpichgq/internal/units"
)

// A ctrlplane.Breaker is usable as the watchdog's repair gate: open
// rejects, half-open admits a probe after the cooldown, a probe success
// closes it again.
func TestBreakerImplementsRepairGate(t *testing.T) {
	k := sim.New(1)
	b := ctrlplane.NewBreaker(k, "dom1", 2, time.Second)
	var gate gq.RepairGate = b
	if !gate.Allow() {
		t.Fatal("closed breaker must allow repairs")
	}
	b.Failure()
	if !gate.Allow() {
		t.Fatal("one failure below threshold must not gate repairs")
	}
	b.Failure()
	if gate.Allow() {
		t.Fatal("tripped breaker must gate repairs")
	}
	if b.State() != ctrlplane.BreakerOpen {
		t.Fatalf("state = %v, want open", b.State())
	}
	if err := k.RunUntil(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if !gate.Allow() {
		t.Fatal("breaker past its cooldown must admit a probe")
	}
	if b.State() != ctrlplane.BreakerHalfOpen {
		t.Fatalf("state = %v, want half-open", b.State())
	}
	b.Success()
	if b.State() != ctrlplane.BreakerClosed {
		t.Fatalf("state = %v, want closed after probe success", b.State())
	}
}

// countingGate wraps the breaker so the test can see how often the
// repair loop consulted it without relying on the flight recorder.
type countingGate struct {
	b               *ctrlplane.Breaker
	denials, allows int
}

func (g *countingGate) Allow() bool {
	if g.b.Allow() {
		g.allows++
		return true
	}
	g.denials++
	return false
}

// Full-stack run: a link flap degrades the premium flow while the
// domain's circuit breaker is tripped (the RM is timing out on the
// control plane). The watchdog must not hammer the RM — every attempt
// is vetoed by the breaker, the flow falls back to best effort, and
// once the cooldown admits a probe after the link returns, the flow is
// upgraded back to premium.
func TestWatchdogRespectsCircuitBreaker(t *testing.T) {
	if testing.Short() {
		t.Skip("long outage run")
	}
	const target = 10 * units.Mbps
	const msg = 25 * units.KB
	const downAt, upAt = 6 * time.Second, 16 * time.Second
	const measureFrom, dur = 19 * time.Second, 26 * time.Second

	tb := garnet.New(1)
	tb.K.Metrics().Events().SetCapacity(1 << 20) // keep every event of the run
	faults.NewScenario("flap").Flap("edge1-core", downAt, upAt).MustApply(tb.Net)
	bl := &trafficgen.UDPBlaster{Rate: 160 * units.Mbps, Jitter: 0.1}
	if err := bl.Run(tb.CompSrc, tb.CompDst, 9000); err != nil {
		t.Fatal(err)
	}

	// Threshold 1: the first deadline-exhausted control call trips the
	// breaker. The cooldown is sized so the first half-open probe lands
	// after the link is back.
	br := ctrlplane.NewBreaker(tb.K, "campus", 1, upAt-downAt+500*time.Millisecond)
	gate := &countingGate{b: br}
	// The RM goes dark with the link: a control call fails its deadline
	// shortly after the outage starts and trips the breaker.
	tb.K.At(downAt+200*time.Millisecond, sim.PrioNormal, func() { br.Failure() })

	job := tb.NewMPIPair(tcpsim.DefaultOptions(), mpi.JobOptions{EagerThreshold: units.MB})
	agent := gq.NewAgent(tb.Gara, job)
	var w *gq.Watchdog
	var lateBytes units.ByteSize
	job.Start(func(ctx *sim.Ctx, r *mpi.Rank) {
		pc, err := r.PairComm(ctx, 1-r.ID())
		if err != nil {
			t.Error(err)
			return
		}
		peer := 1 - r.RankIn(pc)
		if r.ID() == 0 {
			attr := &gq.QosAttribute{Class: gq.Premium, Bandwidth: target}
			if err := r.AttrPut(pc, agent.Keyval(), attr); err != nil {
				t.Error(err)
				return
			}
			wd, err := agent.NewWatchdog(r, pc, target)
			if err != nil {
				t.Error(err)
				return
			}
			wd.Gate = gate
			w = wd
			ctx.SpawnChild("watchdog", func(wctx *sim.Ctx) {
				wd.Run(wctx, 250*time.Millisecond, dur)
			})
			gap := target.TimeToSend(msg)
			for ctx.Now() < dur {
				if err := r.Send(ctx, pc, peer, 0, msg, nil); err != nil {
					return
				}
				ctx.Sleep(gap)
			}
			return
		}
		for {
			m, err := r.Recv(ctx, pc, peer, 0)
			if err != nil {
				return
			}
			if ctx.Now() >= measureFrom {
				lateBytes += m.Len
			}
		}
	})
	if err := tb.K.RunUntil(dur); err != nil {
		t.Fatal(err)
	}

	if gate.denials < w.FallbackAfter {
		t.Fatalf("breaker denied %d attempts, want at least FallbackAfter=%d",
			gate.denials, w.FallbackAfter)
	}
	if gate.denials > 64 {
		t.Fatalf("gate consulted %d times during the outage: repair loop is hot-looping",
			gate.denials)
	}
	// Until the cooldown admitted the half-open probe, no repair attempt
	// may have reached the RM.
	gateOpensAt := downAt + 200*time.Millisecond + br.Cooldown
	gated := 0
	for _, ev := range tb.K.Metrics().Events().Snapshot() {
		if ev.Type != metrics.EvQosRepair {
			continue
		}
		switch ev.Subject {
		case "gated":
			gated++
		case "repair", "upgrade":
			if ev.At < gateOpensAt {
				t.Fatalf("%s at %v: repair attempt reached the RM while the breaker was open",
					ev.Subject, ev.At)
			}
		}
	}
	if gated < w.FallbackAfter {
		t.Fatalf("recorded %d gated events, want at least %d", gated, w.FallbackAfter)
	}
	if w.Fallbacks() != 1 {
		t.Fatalf("fallbacks = %d, want 1", w.Fallbacks())
	}
	if w.Upgrades() != 1 {
		t.Fatalf("upgrades = %d, want 1 after the half-open probe", w.Upgrades())
	}
	if trips, ok := tb.K.Metrics().CounterValue("ctrl_breaker_trips_total", "rm", "campus"); !ok || trips != 1 {
		t.Fatalf("ctrl_breaker_trips_total{campus} = %d (ok=%v), want 1", trips, ok)
	}
	if br.State() == ctrlplane.BreakerOpen {
		t.Fatalf("breaker still open at end of run, want half-open or closed")
	}
	rate := units.RateOf(lateBytes, dur-measureFrom)
	if rate < 7*units.Mbps {
		t.Fatalf("post-upgrade rate = %v, want near 10 Mb/s", rate)
	}
}
